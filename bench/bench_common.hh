/**
 * @file
 * Shared plumbing for the experiment harness binaries.
 *
 * Every bench regenerates one of the paper's result families: it
 * prints the rows/series the paper reports and mirrors them to a CSV
 * file next to the binary for replotting.
 */

#ifndef OVLSIM_BENCH_BENCH_COMMON_HH
#define OVLSIM_BENCH_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "apps/app.hh"
#include "core/analysis.hh"
#include "core/study.hh"
#include "sim/engine.hh"
#include "tracer/tracer.hh"
#include "util/options.hh"
#include "util/strings.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace ovlsim::bench {

/**
 * Parse the shared bench command line and return the worker count
 * for sweeps/bisections/batches: `--threads N`, where 0 (the
 * default) means all hardware cores. Every experiment driver runs
 * the same campaign regardless of N — parallelism never changes
 * results, only wall-clock.
 */
inline int
parseThreads(int argc, const char *const *argv)
{
    Options options;
    options.declare("threads", "0",
                    "worker threads for replay campaigns "
                    "(0 = all hardware cores)");
    options.parse(argc, argv);
    return ThreadPool::resolveThreads(
        static_cast<int>(options.getInt("threads")));
}

/** The six applications of the paper's evaluation, in its order. */
inline const std::vector<std::string> &
paperApps()
{
    static const std::vector<std::string> apps{
        "nas-bt", "nas-cg", "pop", "alya", "specfem", "sweep3d"};
    return apps;
}

/** Paper-reported ideal-pattern speedup at intermediate bandwidth
 * (Sec. III), in percent. */
inline double
paperIntermediateSpeedupPct(const std::string &app)
{
    if (app == "nas-bt") return 30.0;
    if (app == "nas-cg") return 10.0;
    if (app == "pop") return 10.0;
    if (app == "alya") return 40.0;
    if (app == "specfem") return 65.0;
    if (app == "sweep3d") return 160.0;
    return 0.0;
}

/** Trace an application with its default parameters. */
inline tracer::TraceBundle
traceApp(const std::string &name, int iterations = 0)
{
    const auto &app = apps::findApp(name);
    auto params = app.defaults();
    if (iterations > 0)
        params.iterations = iterations;
    tracer::TracerConfig config;
    config.appName = name;
    return tracer::traceApplication(params.ranks,
                                    app.program(params), config);
}

/** Speedup of b over a as a percentage (+30 = 30% faster). */
inline double
speedupPct(SimTime original, SimTime overlapped)
{
    if (overlapped.ns() <= 0)
        return 0.0;
    return (static_cast<double>(original.ns()) /
                static_cast<double>(overlapped.ns()) -
            1.0) *
        100.0;
}

/** Format a speedup percentage. */
inline std::string
pct(double value)
{
    return strformat("%+.1f%%", value);
}

/** Format a bandwidth in MB/s. */
inline std::string
mbps(double value)
{
    return strformat("%.2f", value);
}

} // namespace ovlsim::bench

#endif // OVLSIM_BENCH_BENCH_COMMON_HH
