/**
 * @file
 * Experiments M1-M3: engineering microbenchmarks of the
 * environment itself (google-benchmark).
 *
 *  - M1: replay-engine throughput (events per second),
 *  - M2: tracing-tool throughput (records traced per second),
 *  - M3: overlap-transformation and trace-serialization speed.
 */

#include <benchmark/benchmark.h>

#include <sstream>

#include "bench/bench_common.hh"
#include "core/transform.hh"
#include "trace/trace_io.hh"

using namespace ovlsim;
using namespace ovlsim::bench;

namespace {

/** Cached bundle so setup cost is paid once per binary run. */
const tracer::TraceBundle &
cachedBundle()
{
    static const tracer::TraceBundle bundle =
        traceApp("sweep3d");
    return bundle;
}

void
simulatorThroughput(benchmark::State &state)
{
    const auto &bundle = cachedBundle();
    auto platform = sim::platforms::defaultCluster();
    platform.bandwidthMBps =
        static_cast<double>(state.range(0));

    std::uint64_t events = 0;
    for (auto _ : state) {
        const auto result =
            sim::simulate(bundle.traces, platform);
        events += result.eventsProcessed;
        benchmark::DoNotOptimize(result.totalTime);
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(events),
        benchmark::Counter::kIsRate);
}

void
tracerThroughput(benchmark::State &state)
{
    const auto &app = apps::findApp("nas-bt");
    auto params = app.defaults();
    params.iterations = static_cast<int>(state.range(0));
    const auto program = app.program(params);

    std::size_t records = 0;
    for (auto _ : state) {
        tracer::TracerConfig config;
        const auto bundle = tracer::traceApplication(
            params.ranks, program, config);
        records += bundle.traces.totalRecords();
        benchmark::DoNotOptimize(bundle.overlap.size());
    }
    state.counters["records/s"] = benchmark::Counter(
        static_cast<double>(records),
        benchmark::Counter::kIsRate);
}

void
transformThroughput(benchmark::State &state)
{
    const auto &bundle = cachedBundle();
    core::TransformConfig config;
    config.pattern = core::PatternModel::idealLinear;
    config.chunks = static_cast<std::size_t>(state.range(0));

    std::size_t chunks = 0;
    for (auto _ : state) {
        const auto result = core::buildOverlappedTrace(
            bundle.traces, bundle.overlap, config);
        chunks += result.totalChunks;
        benchmark::DoNotOptimize(result.traces.totalRecords());
    }
    state.counters["chunks/s"] = benchmark::Counter(
        static_cast<double>(chunks),
        benchmark::Counter::kIsRate);
}

void
traceSerialization(benchmark::State &state)
{
    const auto &bundle = cachedBundle();
    std::string text;
    {
        std::ostringstream os;
        trace::writeTraceText(bundle.traces, os);
        text = os.str();
    }
    std::size_t bytes = 0;
    for (auto _ : state) {
        std::ostringstream os;
        trace::writeTraceText(bundle.traces, os);
        std::istringstream is(os.str());
        const auto parsed = trace::readTraceText(is);
        benchmark::DoNotOptimize(parsed.totalRecords());
        bytes += text.size();
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(bytes));
}

} // namespace

BENCHMARK(simulatorThroughput)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(tracerThroughput)->Arg(1)->Arg(2);
BENCHMARK(transformThroughput)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(traceSerialization);

BENCHMARK_MAIN();
