/**
 * @file
 * Experiments M1-M4: engineering microbenchmarks of the
 * environment itself (google-benchmark).
 *
 *  - M1: replay-engine throughput (events per second) on compiled
 *    replay programs — each trace is lowered once and replayed
 *    through a reusable session, the campaign hot path,
 *  - M2: trace-lowering throughput (records compiled per second by
 *    sim::compileTrace),
 *  - M3: overlap-transformation throughput (records per second
 *    through core::buildOverlappedTrace — the dominant per-variant
 *    setup cost of a sweep campaign now that replay is compiled),
 *  - M4: study-campaign throughput (bandwidth-sweep points per
 *    second on the parallel runtime),
 *  - M5: contended-topology replay throughput (events per second
 *    replaying through the link-contention network model of
 *    src/net/ on a tapered fat tree),
 *  - M6: algorithmic-collective replay throughput (events per
 *    second replaying nas-cg-x8 on the tapered fat tree with
 *    collectives lowered into point-to-point schedules, src/coll/),
 *  - M7: dynamic-scenario replay throughput (events per second
 *    replaying sweep3d-x8 on the tapered fat tree while a scenario
 *    degrades and recovers the whole fabric mid-run, src/scen/),
 *  - M8: resilient replay throughput (events per second replaying
 *    sweep3d-x8 on the tapered fat tree under generated fail-stop
 *    faults with checkpoint/restart, so every run pays checkpoint
 *    freezes and at least one rollback, src/res/),
 *  - M9: generated-workload throughput (events per second through
 *    the full synthetic path: generating a 1024-rank ML-training
 *    trace from src/gen/, lowering it, and replaying it on the
 *    tapered fat tree with recursive-doubling allreduces — the
 *    scale no recorded trace reaches).
 *
 * Besides the google-benchmark suite, `--json[=PATH]` runs the M1
 * replay-engine configurations standalone plus the M2 compile, M3
 * transform, M4 sweep, M5 topology, M6 collective, M7 scenario,
 * M8 resilience and M9 generator configurations, and appends the
 * largest M1 figure (events/sec, ns/event, peak RSS), the M2
 * figure (records/sec), the M3 figure (transform records/sec),
 * the M4 figure (sweep points/sec at `--threads` workers, default
 * all cores), the M5 figure (topology events/sec), the M6 figure
 * (collective events/sec), the M7 figure (scenario events/sec),
 * the M8 figure (resilience events/sec) and the M9 figure
 * (generated events/sec) to the perf trajectory file (default
 * BENCH_engine.json), giving every PR nine comparable data
 * points. See ROADMAP.md "Performance methodology".
 *
 * Trajectory points also carry selected engine counters from
 * src/obs/ (heap pushes, arena high water, rate recomputes,
 * collective steps, rollback rework, cache hit rates) next to each
 * figure; these are informational — the regression gate
 * (scripts/bench_check.sh) keys on the throughput figures only, so
 * old baselines stay valid.
 */

// google-benchmark drives the M1-M3 suite; the --json trajectory
// mode needs none of it, so hosts without the library still get the
// perf gate (CMake defines OVLSIM_HAVE_GBENCH when it is found).
#ifdef OVLSIM_HAVE_GBENCH
#include <benchmark/benchmark.h>
#endif
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/bench_common.hh"
#include "core/transform.hh"
#include "gen/gen.hh"
#include "obs/stats.hh"
#include "res/fault_model.hh"
#include "trace/trace_io.hh"

using namespace ovlsim;
using namespace ovlsim::bench;

namespace {

#ifdef OVLSIM_HAVE_GBENCH

/** Cached bundle so setup cost is paid once per binary run. */
const tracer::TraceBundle &
cachedBundle()
{
    static const tracer::TraceBundle bundle =
        traceApp("sweep3d");
    return bundle;
}

void
simulatorThroughput(benchmark::State &state)
{
    const auto &bundle = cachedBundle();
    auto platform = sim::platforms::defaultCluster();
    platform.bandwidthMBps =
        static_cast<double>(state.range(0));

    // Mirror the --json M1 measurement: lower once, replay through
    // a reusable session (per-replay lowering is its own benchmark,
    // programCompileThroughput).
    const auto program = sim::compileShared(bundle.traces);
    sim::ReplaySession session;

    std::uint64_t events = 0;
    for (auto _ : state) {
        const auto result = session.run(*program, platform);
        events += result.eventsProcessed;
        benchmark::DoNotOptimize(result.totalTime);
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(events),
        benchmark::Counter::kIsRate);
}

void
programCompileThroughput(benchmark::State &state)
{
    const auto &bundle = cachedBundle();

    std::size_t records = 0;
    for (auto _ : state) {
        const auto program = sim::compileTrace(bundle.traces);
        records += program.totalOps();
        benchmark::DoNotOptimize(program.totalSends());
    }
    state.counters["records/s"] = benchmark::Counter(
        static_cast<double>(records),
        benchmark::Counter::kIsRate);
}

void
tracerThroughput(benchmark::State &state)
{
    const auto &app = apps::findApp("nas-bt");
    auto params = app.defaults();
    params.iterations = static_cast<int>(state.range(0));
    const auto program = app.program(params);

    std::size_t records = 0;
    for (auto _ : state) {
        tracer::TracerConfig config;
        const auto bundle = tracer::traceApplication(
            params.ranks, program, config);
        records += bundle.traces.totalRecords();
        benchmark::DoNotOptimize(bundle.overlap.size());
    }
    state.counters["records/s"] = benchmark::Counter(
        static_cast<double>(records),
        benchmark::Counter::kIsRate);
}

void
transformThroughput(benchmark::State &state)
{
    const auto &bundle = cachedBundle();
    core::TransformConfig config;
    config.pattern = core::PatternModel::idealLinear;
    config.chunks = static_cast<std::size_t>(state.range(0));

    std::size_t chunks = 0;
    for (auto _ : state) {
        const auto result = core::buildOverlappedTrace(
            bundle.traces, bundle.overlap, config);
        chunks += result.totalChunks;
        benchmark::DoNotOptimize(result.traces.totalRecords());
    }
    state.counters["chunks/s"] = benchmark::Counter(
        static_cast<double>(chunks),
        benchmark::Counter::kIsRate);
}

void
traceSerialization(benchmark::State &state)
{
    const auto &bundle = cachedBundle();
    std::string text;
    {
        std::ostringstream os;
        trace::writeTraceText(bundle.traces, os);
        text = os.str();
    }
    std::size_t bytes = 0;
    for (auto _ : state) {
        std::ostringstream os;
        trace::writeTraceText(bundle.traces, os);
        std::istringstream is(os.str());
        const auto parsed = trace::readTraceText(is);
        benchmark::DoNotOptimize(parsed.totalRecords());
        bytes += text.size();
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(bytes));
}

#endif // OVLSIM_HAVE_GBENCH

/** One M1 configuration of the standalone --json runner. */
struct JsonConfig
{
    const char *name;
    int iterations; // 0 = application default
    double bandwidthMBps;
};

/**
 * The --json configurations, smallest to largest. The last entry is
 * "the largest configuration" whose figures feed the trajectory; the
 * 3x acceptance target and the bench_check.sh regression gate both
 * refer to it.
 */
constexpr JsonConfig jsonConfigs[] = {
    {"sweep3d-x1/bw4096", 0, 4096.0},
    {"sweep3d-x8/bw4096", 8, 4096.0},
    {"sweep3d-x64/bw4096", 64, 4096.0},
};

struct JsonPoint
{
    std::string config;
    std::size_t records = 0;
    std::uint64_t eventsPerRun = 0;
    std::uint64_t runs = 0;
    double eventsPerSec = 0.0;
    double nsPerEvent = 0.0;
    /**
     * Process-wide ru_maxrss high-water mark at the end of this
     * config's runs — cumulative over earlier (smaller) configs,
     * not per-config. The configs run smallest to largest, so the
     * largest config's figure is in practice its own footprint.
     */
    long peakRssKb = 0;
    /** Per-run engine counters (deterministic across runs). */
    obs::EngineStats stats;
};

JsonPoint
measureConfig(const JsonConfig &config, double min_seconds)
{
    const auto bundle = traceApp("sweep3d", config.iterations);
    auto platform = sim::platforms::defaultCluster();
    platform.bandwidthMBps = config.bandwidthMBps;

    // M1 measures the replay engine proper: the trace is lowered
    // once (that stage is M2) and replayed through one reusable
    // session, exactly how campaigns drive the engine. The warm-up
    // run pays trace/page-cache setup outside the timing.
    const auto program = sim::compileShared(bundle.traces);
    sim::ReplaySession session;
    const auto warmup = session.run(*program, platform);
    const std::uint64_t events_per_run = warmup.eventsProcessed;

    std::uint64_t events = 0;
    std::uint64_t runs = 0;
    const auto start = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
        const auto result = session.run(*program, platform);
        events += result.eventsProcessed;
        ++runs;
        elapsed = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    } while (elapsed < min_seconds);

    JsonPoint point;
    point.config = config.name;
    point.records = bundle.traces.totalRecords();
    point.eventsPerRun = events_per_run;
    point.stats = warmup.stats;
    point.runs = runs;
    point.eventsPerSec =
        static_cast<double>(events) / elapsed;
    point.nsPerEvent =
        elapsed * 1e9 / static_cast<double>(events);
    struct rusage usage{};
    getrusage(RUSAGE_SELF, &usage);
    point.peakRssKb = usage.ru_maxrss;
    return point;
}

std::string
pointToJson(const JsonPoint &point)
{
    char stamp[32] = "unknown";
    const std::time_t now = std::time(nullptr);
    if (std::tm tm_utc{}; gmtime_r(&now, &tm_utc) != nullptr)
        std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ",
                      &tm_utc);
    return strformat(
        "{\n"
        "    \"bench\": \"bench_micro.simulatorThroughput\",\n"
        "    \"config\": \"%s\",\n"
        "    \"records\": %zu,\n"
        "    \"events_per_run\": %llu,\n"
        "    \"runs\": %llu,\n"
        "    \"events_per_sec\": %.0f,\n"
        "    \"ns_per_event\": %.2f,\n"
        "    \"heap_pushes\": %llu,\n"
        "    \"arena_high_water\": %llu,\n"
        "    \"peak_rss_kb\": %ld,\n"
        "    \"timestamp\": \"%s\"\n"
        "  }",
        point.config.c_str(), point.records,
        static_cast<unsigned long long>(point.eventsPerRun),
        static_cast<unsigned long long>(point.runs),
        point.eventsPerSec, point.nsPerEvent,
        static_cast<unsigned long long>(point.stats.heapPushes),
        static_cast<unsigned long long>(
            point.stats.arenaHighWater),
        point.peakRssKb, stamp);
}

/**
 * The M2 configuration: lower the sweep3d-x8 trace into a
 * ReplayProgram repeatedly. The figure of merit is records compiled
 * per second — the one-time cost every campaign pays per trace
 * variant before the engine replays it, and the whole cost
 * simulate() adds over a pre-compiled replay.
 */
struct CompileJsonPoint
{
    std::string config;
    std::size_t records = 0;
    std::uint64_t runs = 0;
    double recordsPerSec = 0.0;
    double nsPerRecord = 0.0;
    long peakRssKb = 0;
};

CompileJsonPoint
measureCompileConfig(double min_seconds)
{
    const auto bundle = traceApp("sweep3d", 8);

    // Warm-up compile (pays page faults outside the timing); the
    // totalSends sink keeps the loop's programs observable.
    volatile std::size_t sink =
        sim::compileTrace(bundle.traces).totalSends();

    std::size_t records = 0;
    std::uint64_t runs = 0;
    const auto start = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
        const auto program = sim::compileTrace(bundle.traces);
        sink = program.totalSends();
        records += program.totalOps();
        ++runs;
        elapsed = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    } while (elapsed < min_seconds);
    (void)sink;

    CompileJsonPoint point;
    point.config = "sweep3d-x8/compile";
    point.records = bundle.traces.totalRecords();
    point.runs = runs;
    point.recordsPerSec =
        static_cast<double>(records) / elapsed;
    point.nsPerRecord =
        elapsed * 1e9 / static_cast<double>(records);
    struct rusage usage{};
    getrusage(RUSAGE_SELF, &usage);
    point.peakRssKb = usage.ru_maxrss;
    return point;
}

std::string
compilePointToJson(const CompileJsonPoint &point)
{
    char stamp[32] = "unknown";
    const std::time_t now = std::time(nullptr);
    if (std::tm tm_utc{}; gmtime_r(&now, &tm_utc) != nullptr)
        std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ",
                      &tm_utc);
    return strformat(
        "{\n"
        "    \"bench\": \"bench_micro.programCompile\",\n"
        "    \"config\": \"%s\",\n"
        "    \"records\": %zu,\n"
        "    \"runs\": %llu,\n"
        "    \"compile_records_per_sec\": %.0f,\n"
        "    \"ns_per_record\": %.2f,\n"
        "    \"peak_rss_kb\": %ld,\n"
        "    \"timestamp\": \"%s\"\n"
        "  }",
        point.config.c_str(), point.records,
        static_cast<unsigned long long>(point.runs),
        point.recordsPerSec, point.nsPerRecord, point.peakRssKb,
        stamp);
}

/**
 * The M3 configuration: rebuild the standard real-pattern
 * overlapped variant of the sweep3d-x8 trace repeatedly. The figure
 * of merit is source records transformed per second — with replay
 * compiled and programs shared, buildOverlappedTrace is the
 * dominant per-variant setup cost a campaign pays (ROADMAP Open
 * items), so the trajectory tracks it next to M2.
 */
struct TransformJsonPoint
{
    std::string config;
    std::size_t records = 0;
    std::uint64_t runs = 0;
    double recordsPerSec = 0.0;
    double nsPerRecord = 0.0;
    long peakRssKb = 0;
};

TransformJsonPoint
measureTransformConfig(double min_seconds)
{
    const auto bundle = traceApp("sweep3d", 8);
    core::TransformConfig config;
    config.pattern = core::PatternModel::real;
    config.mechanism = core::Mechanism::both;
    config.chunks = 16;

    // Warm-up build outside the timing; the chunk sink keeps the
    // loop's results observable.
    volatile std::size_t sink =
        core::buildOverlappedTrace(bundle.traces, bundle.overlap,
                                   config)
            .totalChunks;

    std::size_t records = 0;
    std::uint64_t runs = 0;
    const auto start = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
        const auto result = core::buildOverlappedTrace(
            bundle.traces, bundle.overlap, config);
        sink = result.totalChunks;
        records += bundle.traces.totalRecords();
        ++runs;
        elapsed = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    } while (elapsed < min_seconds);
    (void)sink;

    TransformJsonPoint point;
    point.config = "sweep3d-x8/transform-real16";
    point.records = bundle.traces.totalRecords();
    point.runs = runs;
    point.recordsPerSec = static_cast<double>(records) / elapsed;
    point.nsPerRecord =
        elapsed * 1e9 / static_cast<double>(records);
    struct rusage usage{};
    getrusage(RUSAGE_SELF, &usage);
    point.peakRssKb = usage.ru_maxrss;
    return point;
}

std::string
transformPointToJson(const TransformJsonPoint &point)
{
    char stamp[32] = "unknown";
    const std::time_t now = std::time(nullptr);
    if (std::tm tm_utc{}; gmtime_r(&now, &tm_utc) != nullptr)
        std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ",
                      &tm_utc);
    return strformat(
        "{\n"
        "    \"bench\": \"bench_micro.transformThroughput\",\n"
        "    \"config\": \"%s\",\n"
        "    \"records\": %zu,\n"
        "    \"runs\": %llu,\n"
        "    \"transform_records_per_sec\": %.0f,\n"
        "    \"ns_per_record\": %.2f,\n"
        "    \"peak_rss_kb\": %ld,\n"
        "    \"timestamp\": \"%s\"\n"
        "  }",
        point.config.c_str(), point.records,
        static_cast<unsigned long long>(point.runs),
        point.recordsPerSec, point.nsPerRecord, point.peakRssKb,
        stamp);
}

/**
 * The M5 configuration: replay the sweep3d-x8 trace through the
 * link-contention network model on a 2:1-per-level tapered fat
 * tree (the congested-fabric scenario topology campaigns sweep).
 * The figure of merit is events per second — directly comparable
 * to M1's flat-bus figure, so the trajectory shows the cost of
 * per-link contention on the same workload. The program is lowered
 * once and the session's compiled-topology cache is hot after the
 * warm-up run, matching how topologySweep drives the engine.
 */
struct TopoJsonPoint
{
    std::string config;
    std::size_t records = 0;
    std::uint64_t eventsPerRun = 0;
    std::uint64_t runs = 0;
    double eventsPerSec = 0.0;
    double nsPerEvent = 0.0;
    long peakRssKb = 0;
    /** Per-run engine counters (deterministic across runs). */
    obs::EngineStats stats;
    /** Process-wide compiled-topology cache hit rate so far. */
    double topoCacheHitRate = 0.0;
};

TopoJsonPoint
measureTopoConfig(double min_seconds)
{
    const auto bundle = traceApp("sweep3d", 8);
    auto platform = sim::platforms::defaultCluster();
    platform.bandwidthMBps = 4096.0;
    platform.topology = net::topologies::taperedFatTree(4, 0.5);

    const auto program = sim::compileShared(bundle.traces);
    sim::ReplaySession session;
    const auto warmup = session.run(*program, platform);
    const std::uint64_t events_per_run = warmup.eventsProcessed;

    std::uint64_t events = 0;
    std::uint64_t runs = 0;
    const auto start = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
        const auto result = session.run(*program, platform);
        events += result.eventsProcessed;
        ++runs;
        elapsed = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    } while (elapsed < min_seconds);

    TopoJsonPoint point;
    point.config = "sweep3d-x8/fat-tree-taper2/bw4096";
    point.records = bundle.traces.totalRecords();
    point.eventsPerRun = events_per_run;
    point.stats = warmup.stats;
    point.topoCacheHitRate = obs::cacheReport()[1].hitRate();
    point.runs = runs;
    point.eventsPerSec = static_cast<double>(events) / elapsed;
    point.nsPerEvent =
        elapsed * 1e9 / static_cast<double>(events);
    struct rusage usage{};
    getrusage(RUSAGE_SELF, &usage);
    point.peakRssKb = usage.ru_maxrss;
    return point;
}

std::string
topoPointToJson(const TopoJsonPoint &point)
{
    char stamp[32] = "unknown";
    const std::time_t now = std::time(nullptr);
    if (std::tm tm_utc{}; gmtime_r(&now, &tm_utc) != nullptr)
        std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ",
                      &tm_utc);
    return strformat(
        "{\n"
        "    \"bench\": \"bench_micro.topologyReplay\",\n"
        "    \"config\": \"%s\",\n"
        "    \"records\": %zu,\n"
        "    \"events_per_run\": %llu,\n"
        "    \"runs\": %llu,\n"
        "    \"topo_events_per_sec\": %.0f,\n"
        "    \"ns_per_event\": %.2f,\n"
        "    \"rate_recomputes\": %llu,\n"
        "    \"recomputes_skipped\": %llu,\n"
        "    \"topo_cache_hit_rate\": %.4f,\n"
        "    \"peak_rss_kb\": %ld,\n"
        "    \"timestamp\": \"%s\"\n"
        "  }",
        point.config.c_str(), point.records,
        static_cast<unsigned long long>(point.eventsPerRun),
        static_cast<unsigned long long>(point.runs),
        point.eventsPerSec, point.nsPerEvent,
        static_cast<unsigned long long>(
            point.stats.rateRecomputes),
        static_cast<unsigned long long>(
            point.stats.recomputesSkipped),
        point.topoCacheHitRate, point.peakRssKb, stamp);
}

/**
 * The M6 configuration: replay the nas-cg-x8 trace — the
 * collective-heavy proxy — with algorithmic collectives on the
 * 2:1-per-level tapered fat tree. Every allreduce lowers into its
 * compiled point-to-point schedule (src/coll/) and contends on the
 * fabric's links next to the transpose-exchange traffic, so the
 * figure prices the schedule-execution seam plus the extra
 * contention events, directly comparable to M5's analytic-collective
 * contended replay. Schedules resolve once per session (and shape
 * compiles once per process), matching how collectiveSweep drives
 * the engine.
 */
struct CollJsonPoint
{
    std::string config;
    std::size_t records = 0;
    std::uint64_t eventsPerRun = 0;
    std::uint64_t runs = 0;
    double eventsPerSec = 0.0;
    double nsPerEvent = 0.0;
    long peakRssKb = 0;
    /** Per-run engine counters (deterministic across runs). */
    obs::EngineStats stats;
    /** Process-wide collective-schedule cache hit rate so far. */
    double schedCacheHitRate = 0.0;
};

CollJsonPoint
measureCollConfig(double min_seconds)
{
    const auto bundle = traceApp("nas-cg", 8);
    auto platform = sim::platforms::defaultCluster();
    platform.bandwidthMBps = 4096.0;
    platform.topology = net::topologies::taperedFatTree(4, 0.5);
    platform.collectiveModel = coll::CollectiveModel::algorithmic;

    const auto program = sim::compileShared(bundle.traces);
    sim::ReplaySession session;
    const auto warmup = session.run(*program, platform);
    const std::uint64_t events_per_run = warmup.eventsProcessed;

    std::uint64_t events = 0;
    std::uint64_t runs = 0;
    const auto start = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
        const auto result = session.run(*program, platform);
        events += result.eventsProcessed;
        ++runs;
        elapsed = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    } while (elapsed < min_seconds);

    CollJsonPoint point;
    point.config = "nas-cg-x8/fat-tree-taper2/algorithmic/bw4096";
    point.records = bundle.traces.totalRecords();
    point.eventsPerRun = events_per_run;
    point.stats = warmup.stats;
    point.schedCacheHitRate = obs::cacheReport()[2].hitRate();
    point.runs = runs;
    point.eventsPerSec = static_cast<double>(events) / elapsed;
    point.nsPerEvent =
        elapsed * 1e9 / static_cast<double>(events);
    struct rusage usage{};
    getrusage(RUSAGE_SELF, &usage);
    point.peakRssKb = usage.ru_maxrss;
    return point;
}

std::string
collPointToJson(const CollJsonPoint &point)
{
    char stamp[32] = "unknown";
    const std::time_t now = std::time(nullptr);
    if (std::tm tm_utc{}; gmtime_r(&now, &tm_utc) != nullptr)
        std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ",
                      &tm_utc);
    return strformat(
        "{\n"
        "    \"bench\": \"bench_micro.collectiveReplay\",\n"
        "    \"config\": \"%s\",\n"
        "    \"records\": %zu,\n"
        "    \"events_per_run\": %llu,\n"
        "    \"runs\": %llu,\n"
        "    \"coll_events_per_sec\": %.0f,\n"
        "    \"ns_per_event\": %.2f,\n"
        "    \"coll_steps\": %llu,\n"
        "    \"sched_cache_hit_rate\": %.4f,\n"
        "    \"peak_rss_kb\": %ld,\n"
        "    \"timestamp\": \"%s\"\n"
        "  }",
        point.config.c_str(), point.records,
        static_cast<unsigned long long>(point.eventsPerRun),
        static_cast<unsigned long long>(point.runs),
        point.eventsPerSec, point.nsPerEvent,
        static_cast<unsigned long long>(point.stats.collSteps),
        point.schedCacheHitRate, point.peakRssKb, stamp);
}

/**
 * The M7 configuration: the M5 contended replay with a dynamic
 * scenario installed — the whole fabric degrades to quarter
 * capacity (and doubled per-hop latency) over the middle half of
 * the run and recovers, so every replay pays the scenario seam:
 * per-link scale commits, frozen-finish re-arms and the flat/net
 * cost-path multiplier checks (src/scen/). The figure is directly
 * comparable to M5's scenario-free events/sec on the same workload
 * and fabric, so the trajectory prices what fault injection costs
 * the engine. The window is scaled once from a nominal warm-up
 * run, matching how degradation campaigns build their scenarios.
 */
struct ScenJsonPoint
{
    std::string config;
    std::size_t records = 0;
    std::uint64_t eventsPerRun = 0;
    std::uint64_t runs = 0;
    double eventsPerSec = 0.0;
    double nsPerEvent = 0.0;
    long peakRssKb = 0;
};

ScenJsonPoint
measureScenConfig(double min_seconds)
{
    const auto bundle = traceApp("sweep3d", 8);
    auto platform = sim::platforms::defaultCluster();
    platform.bandwidthMBps = 4096.0;
    platform.topology = net::topologies::taperedFatTree(4, 0.5);

    const auto program = sim::compileShared(bundle.traces);
    sim::ReplaySession session;
    const SimTime nominal =
        session.run(*program, platform).totalTime;

    scen::ScenarioEvent degrade;
    degrade.time = SimTime::fromNs(nominal.ns() / 4);
    degrade.kind = scen::ScenEventKind::degrade;
    degrade.target = scen::ScenTarget::all;
    degrade.bandwidthFactor = 0.25;
    degrade.latencyFactor = 2.0;
    platform.scenario.events.push_back(degrade);
    scen::ScenarioEvent recover;
    recover.time = SimTime::fromNs(3 * (nominal.ns() / 4));
    recover.kind = scen::ScenEventKind::recover;
    recover.target = scen::ScenTarget::all;
    platform.scenario.events.push_back(recover);

    const std::uint64_t events_per_run =
        session.run(*program, platform).eventsProcessed;

    std::uint64_t events = 0;
    std::uint64_t runs = 0;
    const auto start = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
        const auto result = session.run(*program, platform);
        events += result.eventsProcessed;
        ++runs;
        elapsed = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    } while (elapsed < min_seconds);

    ScenJsonPoint point;
    point.config = "sweep3d-x8/fat-tree-taper2/mid-degrade/bw4096";
    point.records = bundle.traces.totalRecords();
    point.eventsPerRun = events_per_run;
    point.runs = runs;
    point.eventsPerSec = static_cast<double>(events) / elapsed;
    point.nsPerEvent =
        elapsed * 1e9 / static_cast<double>(events);
    struct rusage usage{};
    getrusage(RUSAGE_SELF, &usage);
    point.peakRssKb = usage.ru_maxrss;
    return point;
}

std::string
scenPointToJson(const ScenJsonPoint &point)
{
    char stamp[32] = "unknown";
    const std::time_t now = std::time(nullptr);
    if (std::tm tm_utc{}; gmtime_r(&now, &tm_utc) != nullptr)
        std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ",
                      &tm_utc);
    return strformat(
        "{\n"
        "    \"bench\": \"bench_micro.scenarioReplay\",\n"
        "    \"config\": \"%s\",\n"
        "    \"records\": %zu,\n"
        "    \"events_per_run\": %llu,\n"
        "    \"runs\": %llu,\n"
        "    \"scen_events_per_sec\": %.0f,\n"
        "    \"ns_per_event\": %.2f,\n"
        "    \"peak_rss_kb\": %ld,\n"
        "    \"timestamp\": \"%s\"\n"
        "  }",
        point.config.c_str(), point.records,
        static_cast<unsigned long long>(point.eventsPerRun),
        static_cast<unsigned long long>(point.runs),
        point.eventsPerSec, point.nsPerEvent, point.peakRssKb,
        stamp);
}

/**
 * The M8 configuration: the M7 workload and fabric under the
 * resilience engine (src/res/) — a seeded per-node fail-stop fault
 * model expanded into a scenario, a checkpoint/restart cost model
 * on the platform, and at least one rollback per replay. Every run
 * pays checkpoint freezes (heap shift + machine snapshot) and a
 * restart (cancel in-flight flows, restore the snapshot, rebuild
 * the heap), so the figure prices what surviving failures costs
 * the engine next to M7's terminate-on-failure scenario seam.
 */
struct ResJsonPoint
{
    std::string config;
    std::size_t records = 0;
    std::uint64_t eventsPerRun = 0;
    std::uint64_t restartsPerRun = 0;
    std::uint64_t runs = 0;
    double eventsPerSec = 0.0;
    double nsPerEvent = 0.0;
    long peakRssKb = 0;
    /** Per-run engine counters (deterministic across runs). */
    obs::EngineStats stats;
};

ResJsonPoint
measureResConfig(double min_seconds)
{
    const auto bundle = traceApp("sweep3d", 8);
    auto platform = sim::platforms::defaultCluster();
    platform.bandwidthMBps = 4096.0;
    platform.topology = net::topologies::taperedFatTree(4, 0.5);

    const auto program = sim::compileShared(bundle.traces);
    sim::ReplaySession session;
    const SimTime nominal =
        session.run(*program, platform).totalTime;

    // Checkpoint five times per nominal run; a per-node MTBF equal
    // to the run length makes an 8-node machine essentially certain
    // to fail at least once, so the rollback path is always paid.
    platform.checkpointIntervalUs = nominal.toUs() / 5.0;
    platform.checkpointCostUs = nominal.toUs() / 200.0;
    platform.restartCostUs = nominal.toUs() / 50.0;
    res::FaultModel model;
    for (int n = 0; n < 8; ++n) {
        res::FaultProcess proc;
        proc.target = scen::ScenTarget::node;
        proc.nodeA = n;
        proc.effect = res::FaultEffect::failStop;
        proc.mtbfUs = nominal.toUs();
        model.processes.push_back(proc);
    }
    platform.scenario =
        res::generateScenario(model, 1, nominal * 4);

    const auto probe = session.run(*program, platform);
    if (probe.restarts == 0)
        std::abort(); // the rollback path must be on the clock

    std::uint64_t events = 0;
    std::uint64_t runs = 0;
    const auto start = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
        const auto result = session.run(*program, platform);
        events += result.eventsProcessed;
        ++runs;
        elapsed = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    } while (elapsed < min_seconds);

    ResJsonPoint point;
    point.config =
        "sweep3d-x8/fat-tree-taper2/fail-stop-ckpt/bw4096";
    point.records = bundle.traces.totalRecords();
    point.eventsPerRun = probe.eventsProcessed;
    point.restartsPerRun = probe.restarts;
    point.stats = probe.stats;
    point.runs = runs;
    point.eventsPerSec = static_cast<double>(events) / elapsed;
    point.nsPerEvent =
        elapsed * 1e9 / static_cast<double>(events);
    struct rusage usage{};
    getrusage(RUSAGE_SELF, &usage);
    point.peakRssKb = usage.ru_maxrss;
    return point;
}

std::string
resPointToJson(const ResJsonPoint &point)
{
    char stamp[32] = "unknown";
    const std::time_t now = std::time(nullptr);
    if (std::tm tm_utc{}; gmtime_r(&now, &tm_utc) != nullptr)
        std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ",
                      &tm_utc);
    return strformat(
        "{\n"
        "    \"bench\": \"bench_micro.resilienceReplay\",\n"
        "    \"config\": \"%s\",\n"
        "    \"records\": %zu,\n"
        "    \"events_per_run\": %llu,\n"
        "    \"restarts_per_run\": %llu,\n"
        "    \"runs\": %llu,\n"
        "    \"res_events_per_sec\": %.0f,\n"
        "    \"ns_per_event\": %.2f,\n"
        "    \"scenario_events\": %llu,\n"
        "    \"rollback_rework_ns\": %llu,\n"
        "    \"peak_rss_kb\": %ld,\n"
        "    \"timestamp\": \"%s\"\n"
        "  }",
        point.config.c_str(), point.records,
        static_cast<unsigned long long>(point.eventsPerRun),
        static_cast<unsigned long long>(point.restartsPerRun),
        static_cast<unsigned long long>(point.runs),
        point.eventsPerSec, point.nsPerEvent,
        static_cast<unsigned long long>(
            point.stats.scenarioEvents),
        static_cast<unsigned long long>(
            point.stats.rollbackReworkNs),
        point.peakRssKb, stamp);
}

/**
 * The M9 configuration: the full synthetic-workload path at a
 * scale no recorded trace reaches — a 1024-rank ML-training loop
 * (two steps, four gradient buckets of a 64 MiB gradient) is
 * generated from src/gen/, lowered by sim::compileTrace, and
 * replayed on the tapered fat tree with algorithmic collectives.
 * Every timed run pays generation + lowering + contended replay,
 * pricing exactly what a scaling campaign pays per grid point.
 * The allreduce algorithm is pinned to recursive doubling: `auto`
 * switches to the ring above coll::ringCutoffBytes, which at 1024
 * ranks turns every allreduce into an O(N)-transfer chain and
 * would swamp the figure with a pathological schedule.
 */
struct GenJsonPoint
{
    std::string config;
    std::size_t records = 0;
    std::uint64_t eventsPerRun = 0;
    std::uint64_t runs = 0;
    double eventsPerSec = 0.0;
    double nsPerEvent = 0.0;
    long peakRssKb = 0;
    /** Per-run engine counters (deterministic across runs). */
    obs::EngineStats stats;
};

GenJsonPoint
measureGenConfig(double min_seconds)
{
    gen::WorkloadConfig workload;
    workload.kind = gen::WorkloadKind::mlTraining;
    workload.name = "gen-ml";
    workload.ranks = 1024;
    workload.iterations = 2;
    workload.gradientBuckets = 4;
    workload.gradientBytes = Bytes(64) * 1024 * 1024;
    workload.stepInstr = 50'000'000;

    auto platform = sim::platforms::defaultCluster();
    platform.bandwidthMBps = 4096.0;
    platform.topology = net::topologies::taperedFatTree(4, 0.5);
    platform.collectiveModel =
        coll::CollectiveModel::algorithmic;
    platform.collectiveAlgorithms.set(
        trace::CollOp::allReduce,
        coll::Algorithm::recursiveDoubling);

    sim::ReplaySession session;
    // Warm-up run: pages in the fabric's compiled routes and the
    // session arenas outside the timing.
    const auto probeTraces = gen::generateTrace(workload, 1);
    const auto probe =
        session.run(sim::compileTrace(probeTraces), platform);

    std::uint64_t events = 0;
    std::uint64_t runs = 0;
    const auto start = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
        const auto traces = gen::generateTrace(workload, 1);
        const auto program = sim::compileTrace(traces);
        events += session.run(program, platform).eventsProcessed;
        ++runs;
        elapsed = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    } while (elapsed < min_seconds);

    GenJsonPoint point;
    point.config =
        "gen-ml-1024/fat-tree-taper2/rd-allreduce/bw4096";
    point.records = probeTraces.totalRecords();
    point.eventsPerRun = probe.eventsProcessed;
    point.stats = probe.stats;
    point.runs = runs;
    point.eventsPerSec = static_cast<double>(events) / elapsed;
    point.nsPerEvent =
        elapsed * 1e9 / static_cast<double>(events);
    struct rusage usage{};
    getrusage(RUSAGE_SELF, &usage);
    point.peakRssKb = usage.ru_maxrss;
    return point;
}

std::string
genPointToJson(const GenJsonPoint &point)
{
    char stamp[32] = "unknown";
    const std::time_t now = std::time(nullptr);
    if (std::tm tm_utc{}; gmtime_r(&now, &tm_utc) != nullptr)
        std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ",
                      &tm_utc);
    return strformat(
        "{\n"
        "    \"bench\": \"bench_micro.generatedReplay\",\n"
        "    \"config\": \"%s\",\n"
        "    \"records\": %zu,\n"
        "    \"events_per_run\": %llu,\n"
        "    \"runs\": %llu,\n"
        "    \"gen_events_per_sec\": %.0f,\n"
        "    \"ns_per_event\": %.2f,\n"
        "    \"arena_high_water\": %llu,\n"
        "    \"peak_rss_kb\": %ld,\n"
        "    \"timestamp\": \"%s\"\n"
        "  }",
        point.config.c_str(), point.records,
        static_cast<unsigned long long>(point.eventsPerRun),
        static_cast<unsigned long long>(point.runs),
        point.eventsPerSec, point.nsPerEvent,
        static_cast<unsigned long long>(
            point.stats.arenaHighWater),
        point.peakRssKb, stamp);
}

/**
 * The M4 configuration: one R1-style bandwidth sweep of the sweep3d
 * proxy (original + the two standard variants per grid point),
 * repeated until the clock budget runs out. The figure of merit is
 * sweep points per second — the rate the campaign engine retires
 * (bandwidth, trace-variant) replay bundles. Since the sweep engine
 * lowers each variant once and shares the compiled program across
 * all grid points, this figure reflects program-replay speed plus
 * the amortized variant construction.
 */
struct SweepJsonPoint
{
    std::string config;
    int threads = 0;
    std::size_t gridPoints = 0;
    std::uint64_t sweeps = 0;
    double pointsPerSec = 0.0;
    double msPerPoint = 0.0;
    long peakRssKb = 0;
};

SweepJsonPoint
measureSweepConfig(int threads, double min_seconds)
{
    const auto bundle = traceApp("sweep3d", 8);
    auto platform = sim::platforms::defaultCluster();
    const auto grid = core::logBandwidthGrid(1.0, 65536.0, 4);
    const auto variants = core::standardVariants(16);

    // Warm-up sweep (pays variant construction, page faults and
    // thread spawning outside the timing).
    core::bandwidthSweep(bundle, platform, grid, variants,
                         threads);

    std::uint64_t sweeps = 0;
    const auto start = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
        const auto sweep = core::bandwidthSweep(
            bundle, platform, grid, variants, threads);
        if (sweep.points.size() != grid.size())
            std::abort(); // keep the replays observable
        ++sweeps;
        elapsed = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    } while (elapsed < min_seconds);

    SweepJsonPoint point;
    point.config = strformat("sweep3d-x8/grid%zux%zu",
                             grid.size(), variants.size() + 1);
    point.threads = threads;
    point.gridPoints = grid.size();
    point.sweeps = sweeps;
    const double points =
        static_cast<double>(sweeps * grid.size());
    point.pointsPerSec = points / elapsed;
    point.msPerPoint = elapsed * 1e3 / points;
    struct rusage usage{};
    getrusage(RUSAGE_SELF, &usage);
    point.peakRssKb = usage.ru_maxrss;
    return point;
}

std::string
sweepPointToJson(const SweepJsonPoint &point)
{
    char stamp[32] = "unknown";
    const std::time_t now = std::time(nullptr);
    if (std::tm tm_utc{}; gmtime_r(&now, &tm_utc) != nullptr)
        std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ",
                      &tm_utc);
    return strformat(
        "{\n"
        "    \"bench\": \"bench_micro.sweepThroughput\",\n"
        "    \"config\": \"%s\",\n"
        "    \"threads\": %d,\n"
        "    \"grid_points\": %zu,\n"
        "    \"sweeps\": %llu,\n"
        "    \"sweep_points_per_sec\": %.2f,\n"
        "    \"ms_per_point\": %.3f,\n"
        "    \"peak_rss_kb\": %ld,\n"
        "    \"timestamp\": \"%s\"\n"
        "  }",
        point.config.c_str(), point.threads, point.gridPoints,
        static_cast<unsigned long long>(point.sweeps),
        point.pointsPerSec, point.msPerPoint, point.peakRssKb,
        stamp);
}

/** Append a point to the JSON-array trajectory file in place. */
void
appendToTrajectory(const std::string &path,
                   const std::string &point_json)
{
    std::string existing;
    {
        std::ifstream in(path);
        if (in) {
            std::ostringstream os;
            os << in.rdbuf();
            existing = os.str();
        }
    }
    const std::size_t close = existing.rfind(']');
    const bool fresh =
        existing.find_first_not_of(" \t\r\n") == std::string::npos;
    if (!fresh && close == std::string::npos) {
        // Refuse to clobber a non-empty file that is not a JSON
        // array (typo'd path, or a trajectory truncated by a crash).
        std::fprintf(stderr,
                     "bench_micro: %s exists but is not a JSON "
                     "array; refusing to overwrite it\n",
                     path.c_str());
        std::exit(1);
    }
    // Write to a sibling temp file and rename so a crash mid-write
    // cannot truncate the committed trajectory history.
    const std::string tmp_path = path + ".tmp";
    {
        std::ofstream out(tmp_path, std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "bench_micro: cannot write %s\n",
                         tmp_path.c_str());
            std::exit(1);
        }
        if (fresh) {
            // Missing or empty trajectory: start a fresh array.
            out << "[\n  " << point_json << "\n]\n";
        } else {
            std::string head = existing.substr(0, close);
            // Trim trailing whitespace before the closing bracket.
            while (!head.empty() &&
                   (head.back() == ' ' || head.back() == '\n' ||
                    head.back() == '\t' || head.back() == '\r')) {
                head.pop_back();
            }
            const bool empty_array = head.ends_with("[");
            out << head << (empty_array ? "\n  " : ",\n  ")
                << point_json << "\n]\n";
        }
    }
    if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
        std::fprintf(stderr,
                     "bench_micro: cannot rename %s to %s\n",
                     tmp_path.c_str(), path.c_str());
        std::exit(1);
    }
}

int
runJsonMode(const std::string &path, int threads)
{
    JsonPoint largest;
    for (const auto &config : jsonConfigs) {
        const JsonPoint point = measureConfig(config, 1.5);
        std::printf(
            "%-22s %9.2f M events/s  %6.2f ns/event  "
            "(%llu runs x %llu events, rss %ld KB)\n",
            point.config.c_str(), point.eventsPerSec / 1e6,
            point.nsPerEvent,
            static_cast<unsigned long long>(point.runs),
            static_cast<unsigned long long>(point.eventsPerRun),
            point.peakRssKb);
        largest = point;
    }
    const CompileJsonPoint compile = measureCompileConfig(1.5);
    std::printf(
        "%-22s %9.2f M records/s  %6.2f ns/record  "
        "(%llu compiles x %zu records, rss %ld KB)\n",
        compile.config.c_str(), compile.recordsPerSec / 1e6,
        compile.nsPerRecord,
        static_cast<unsigned long long>(compile.runs),
        compile.records, compile.peakRssKb);
    const TransformJsonPoint transform =
        measureTransformConfig(1.5);
    std::printf(
        "%-22s %9.2f M records/s  %6.2f ns/record  "
        "(%llu builds x %zu records, rss %ld KB)\n",
        transform.config.c_str(),
        transform.recordsPerSec / 1e6, transform.nsPerRecord,
        static_cast<unsigned long long>(transform.runs),
        transform.records, transform.peakRssKb);
    const SweepJsonPoint sweep =
        measureSweepConfig(threads, 1.5);
    std::printf(
        "%-22s %9.2f sweep points/s  %6.3f ms/point  "
        "(%llu sweeps @ %d threads, rss %ld KB)\n",
        sweep.config.c_str(), sweep.pointsPerSec,
        sweep.msPerPoint,
        static_cast<unsigned long long>(sweep.sweeps),
        sweep.threads, sweep.peakRssKb);
    const TopoJsonPoint topo = measureTopoConfig(1.5);
    std::printf(
        "%-22s %9.2f M events/s  %6.2f ns/event  "
        "(%llu runs x %llu events, rss %ld KB)\n",
        topo.config.c_str(), topo.eventsPerSec / 1e6,
        topo.nsPerEvent,
        static_cast<unsigned long long>(topo.runs),
        static_cast<unsigned long long>(topo.eventsPerRun),
        topo.peakRssKb);
    const CollJsonPoint coll = measureCollConfig(1.5);
    std::printf(
        "%-22s %9.2f M events/s  %6.2f ns/event  "
        "(%llu runs x %llu events, rss %ld KB)\n",
        coll.config.c_str(), coll.eventsPerSec / 1e6,
        coll.nsPerEvent,
        static_cast<unsigned long long>(coll.runs),
        static_cast<unsigned long long>(coll.eventsPerRun),
        coll.peakRssKb);
    const ScenJsonPoint scen = measureScenConfig(1.5);
    std::printf(
        "%-22s %9.2f M events/s  %6.2f ns/event  "
        "(%llu runs x %llu events, rss %ld KB)\n",
        scen.config.c_str(), scen.eventsPerSec / 1e6,
        scen.nsPerEvent,
        static_cast<unsigned long long>(scen.runs),
        static_cast<unsigned long long>(scen.eventsPerRun),
        scen.peakRssKb);
    const ResJsonPoint res = measureResConfig(1.5);
    std::printf(
        "%-22s %9.2f M events/s  %6.2f ns/event  "
        "(%llu runs x %llu events, %llu restarts/run, rss %ld "
        "KB)\n",
        res.config.c_str(), res.eventsPerSec / 1e6,
        res.nsPerEvent,
        static_cast<unsigned long long>(res.runs),
        static_cast<unsigned long long>(res.eventsPerRun),
        static_cast<unsigned long long>(res.restartsPerRun),
        res.peakRssKb);
    const GenJsonPoint genPoint = measureGenConfig(1.5);
    std::printf(
        "%-22s %9.2f M events/s  %6.2f ns/event  "
        "(%llu runs x %llu events, rss %ld KB)\n",
        genPoint.config.c_str(), genPoint.eventsPerSec / 1e6,
        genPoint.nsPerEvent,
        static_cast<unsigned long long>(genPoint.runs),
        static_cast<unsigned long long>(genPoint.eventsPerRun),
        genPoint.peakRssKb);
    appendToTrajectory(path, pointToJson(largest));
    appendToTrajectory(path, compilePointToJson(compile));
    appendToTrajectory(path, transformPointToJson(transform));
    appendToTrajectory(path, sweepPointToJson(sweep));
    appendToTrajectory(path, topoPointToJson(topo));
    appendToTrajectory(path, collPointToJson(coll));
    appendToTrajectory(path, scenPointToJson(scen));
    appendToTrajectory(path, resPointToJson(res));
    appendToTrajectory(path, genPointToJson(genPoint));
    std::printf(
        "trajectory points (%s, %s, %s, %s, %s, %s, %s, %s, %s) "
        "appended to %s\n",
        largest.config.c_str(), compile.config.c_str(),
        transform.config.c_str(), sweep.config.c_str(),
        topo.config.c_str(), coll.config.c_str(),
        scen.config.c_str(), res.config.c_str(),
        genPoint.config.c_str(), path.c_str());
    return 0;
}

} // namespace

#ifdef OVLSIM_HAVE_GBENCH
BENCHMARK(simulatorThroughput)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(programCompileThroughput);
BENCHMARK(tracerThroughput)->Arg(1)->Arg(2);
BENCHMARK(transformThroughput)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(traceSerialization);
#endif

int
main(int argc, char **argv)
{
    // M4 worker count for --json mode (0 = all hardware cores).
    // The flag is consumed here (compacted out of argv) so plain
    // google-benchmark runs don't trip on an unrecognized option.
    int threads = 0;
    std::string json_path;
    bool json_mode = false;
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json_mode = true;
            json_path = "BENCH_engine.json";
        } else if (arg.rfind("--json=", 0) == 0) {
            json_mode = true;
            json_path = arg.substr(7);
        } else if (arg.rfind("--threads=", 0) == 0) {
            threads = std::atoi(arg.c_str() + 10);
        } else {
            argv[kept++] = argv[i];
        }
    }
    argc = kept;
    if (json_mode) {
        return runJsonMode(json_path,
                           ThreadPool::resolveThreads(threads));
    }
#ifdef OVLSIM_HAVE_GBENCH
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
#else
    std::fprintf(stderr,
                 "bench_micro: built without google-benchmark; "
                 "only --json[=PATH] is available\n");
    return 1;
#endif
}
