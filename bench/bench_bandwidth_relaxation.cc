/**
 * @file
 * Experiment R3 (paper Sec. III, finding 3).
 *
 * "Our results show that in the range of high bandwidths, the
 *  overlapped execution will need less bandwidth than the original
 *  execution to achieve the same performance. In fact, for achieving
 *  the performance of the original execution on some high bandwidth,
 *  the overlapped execution needs bandwidth that is couple of orders
 *  of magnitude lower."
 *
 * For every application this bench measures the original execution
 * at a high reference bandwidth, then searches for the minimal
 * bandwidth at which (a) the original and (b) the ideal-pattern
 * overlapped execution still reach that performance (within 5%).
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"

using namespace ovlsim;
using namespace ovlsim::bench;

int
main(int argc, char **argv)
{
    const int threads = parseThreads(argc, argv);
    constexpr double reference = 65536.0; // MB/s
    std::printf("R3: bandwidth needed to match the original's "
                "performance at %.0f MB/s\n", reference);
    std::printf("(ideal pattern, 16 chunks, 5%% tolerance; "
                "%d threads)\n\n", threads);

    TablePrinter table({"app", "t @ reference",
                        "original needs MB/s",
                        "overlapped needs MB/s", "reduction",
                        "orders of magnitude"});
    CsvWriter csv("bench_bandwidth_relaxation.csv",
                  {"app", "reference_mbps", "t_reference_us",
                   "original_needs_mbps",
                   "overlapped_needs_mbps", "reduction_factor",
                   "orders_of_magnitude"});

    for (const auto &name : paperApps()) {
        const auto bundle = traceApp(name);
        core::TransformConfig ideal;
        ideal.pattern = core::PatternModel::idealLinear;

        const auto iso = core::isoPerformance(
            bundle, sim::platforms::defaultCluster(), ideal,
            reference, 0.05, 1e-2, threads);

        const double reduction = iso.reductionFactor();
        const double orders =
            reduction > 0.0 ? std::log10(reduction) : 0.0;
        table.addRow({name, humanTime(iso.originalTime),
                      mbps(iso.originalRequiredBandwidth),
                      mbps(iso.overlappedRequiredBandwidth),
                      strformat("%.1fx", reduction),
                      strformat("%.2f", orders)});
        csv.addRow({name, strformat("%.0f", reference),
                    strformat("%.3f", iso.originalTime.toUs()),
                    strformat("%.4f",
                              iso.originalRequiredBandwidth),
                    strformat("%.4f",
                              iso.overlappedRequiredBandwidth),
                    strformat("%.2f", reduction),
                    strformat("%.3f", orders)});
    }
    table.print(std::cout);
    std::printf(
        "\nThe paper's claim holds when the reduction spans one "
        "to a couple of orders\nof magnitude.\n");
    std::printf(
        "CSV written to bench_bandwidth_relaxation.csv\n");
    return 0;
}
