/**
 * @file
 * Experiment A2 (paper Sec. II-B): chunk-granularity sensitivity.
 *
 * The mechanism "partitions every original message into independent
 * chunks". This bench sweeps the chunk count per message for the two
 * extreme applications — NAS-BT (halo exchanges) and Sweep3D
 * (pipelined wavefronts) — at their intermediate bandwidths, showing
 * diminishing returns and the per-chunk latency penalty.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"

using namespace ovlsim;
using namespace ovlsim::bench;

int
main(int argc, char **argv)
{
    const int threads = parseThreads(argc, argv);
    std::printf("A2: ideal-pattern speedup vs chunks per "
                "message (%d threads)\n\n", threads);

    const std::vector<std::size_t> chunk_counts{1, 2, 4, 8,
                                                16, 32, 64};
    CsvWriter csv("bench_chunk_granularity.csv",
                  {"app", "chunks", "speedup_pct"});

    for (const std::string name : {"nas-bt", "sweep3d"}) {
        core::OverlapStudy study(traceApp(name));
        auto platform = sim::platforms::defaultCluster();
        platform.bandwidthMBps = core::findIntermediateBandwidth(
            *study.originalProgram(), platform);
        const auto original = study.simulateOriginal(platform);

        // One job per chunk granularity; the variant constructions
        // and lowerings fan over the pool and each job carries the
        // study's cached compiled program (no re-lowering in the
        // batch).
        std::vector<sim::SimJob> jobs(chunk_counts.size());
        {
            ThreadPool pool(std::min(
                threads, static_cast<int>(chunk_counts.size())));
            pool.parallelFor(
                chunk_counts.size(), [&](std::size_t i, int) {
                    core::TransformConfig config;
                    config.pattern =
                        core::PatternModel::idealLinear;
                    config.chunks = chunk_counts[i];
                    jobs[i] = {study.overlappedProgram(config),
                               platform};
                });
        }
        const auto results = sim::simulateBatch(jobs, threads);

        TablePrinter table({"chunks", "t overlap-ideal",
                            "speedup"});
        for (std::size_t i = 0; i < chunk_counts.size(); ++i) {
            const auto t = results[i].totalTime;
            const double speedup =
                speedupPct(original.totalTime, t);
            table.addRow({strformat("%zu", chunk_counts[i]),
                          humanTime(t), pct(speedup)});
            csv.addRow({name,
                        strformat("%zu", chunk_counts[i]),
                        strformat("%.2f", speedup)});
        }
        std::printf("--- %s @ %.2f MB/s ---\n", name.c_str(),
                    platform.bandwidthMBps);
        table.print(std::cout);
        std::printf("\n");
    }
    std::printf("CSV written to bench_chunk_granularity.csv\n");
    return 0;
}
