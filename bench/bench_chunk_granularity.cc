/**
 * @file
 * Experiment A2 (paper Sec. II-B): chunk-granularity sensitivity.
 *
 * The mechanism "partitions every original message into independent
 * chunks". This bench sweeps the chunk count per message for the two
 * extreme applications — NAS-BT (halo exchanges) and Sweep3D
 * (pipelined wavefronts) — at their intermediate bandwidths, showing
 * diminishing returns and the per-chunk latency penalty.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"

using namespace ovlsim;
using namespace ovlsim::bench;

int
main()
{
    std::printf("A2: ideal-pattern speedup vs chunks per "
                "message\n\n");

    const std::vector<std::size_t> chunk_counts{1, 2, 4, 8,
                                                16, 32, 64};
    CsvWriter csv("bench_chunk_granularity.csv",
                  {"app", "chunks", "speedup_pct"});

    for (const std::string name : {"nas-bt", "sweep3d"}) {
        core::OverlapStudy study(traceApp(name));
        auto platform = sim::platforms::defaultCluster();
        platform.bandwidthMBps = core::findIntermediateBandwidth(
            study.originalTrace(), platform);
        const auto original = study.simulateOriginal(platform);

        TablePrinter table({"chunks", "t overlap-ideal",
                            "speedup"});
        for (const auto chunks : chunk_counts) {
            core::TransformConfig config;
            config.pattern = core::PatternModel::idealLinear;
            config.chunks = chunks;
            const auto t =
                study.simulateOverlapped(config, platform)
                    .totalTime;
            const double speedup =
                speedupPct(original.totalTime, t);
            table.addRow({strformat("%zu", chunks),
                          humanTime(t), pct(speedup)});
            csv.addRow({name, strformat("%zu", chunks),
                        strformat("%.2f", speedup)});
        }
        std::printf("--- %s @ %.2f MB/s ---\n", name.c_str(),
                    platform.bandwidthMBps);
        table.print(std::cout);
        std::printf("\n");
    }
    std::printf("CSV written to bench_chunk_granularity.csv\n");
    return 0;
}
