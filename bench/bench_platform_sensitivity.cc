/**
 * @file
 * Experiment A3 (paper Sec. II): the configurable platform.
 *
 * The environment replays traces on a configurable parallel platform
 * (latency, contention, protocol). This bench shows how the overlap
 * benefit reacts to (a) network latency, (b) a finite number of
 * buses, and (c) eager vs rendezvous baseline protocols, for the
 * NAS-BT proxy at its intermediate bandwidth.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"

using namespace ovlsim;
using namespace ovlsim::bench;

namespace {

double
idealSpeedupOn(core::OverlapStudy &study,
               const sim::PlatformConfig &platform, int threads)
{
    core::TransformConfig ideal;
    ideal.pattern = core::PatternModel::idealLinear;
    // The study caches one compiled program per variant; handing
    // those to the batch replays them directly instead of
    // re-lowering both trace sets on every sweep step.
    const std::vector<sim::SimJob> jobs{
        {study.originalProgram(), platform},
        {study.overlappedProgram(ideal), platform},
    };
    const auto results = sim::simulateBatch(jobs, threads);
    return speedupPct(results[0].totalTime,
                      results[1].totalTime);
}

} // namespace

int
main(int argc, char **argv)
{
    const int threads = parseThreads(argc, argv);
    std::printf("A3: platform sensitivity of the ideal-pattern "
                "benefit (NAS-BT; %d threads)\n\n", threads);

    core::OverlapStudy study(traceApp("nas-bt"));
    auto base = sim::platforms::defaultCluster();
    base.bandwidthMBps = core::findIntermediateBandwidth(
        *study.originalProgram(), base);
    std::printf("operating point: %.2f MB/s\n\n",
                base.bandwidthMBps);

    CsvWriter csv("bench_platform_sensitivity.csv",
                  {"dimension", "value", "speedup_ideal_pct"});

    {
        TablePrinter table({"latency us", "ideal speedup"});
        for (const double latency : {0.1, 1.0, 8.0, 50.0, 200.0}) {
            auto platform = base;
            platform.latencyUs = latency;
            const double speedup =
                idealSpeedupOn(study, platform, threads);
            table.addRow({strformat("%.1f", latency),
                          pct(speedup)});
            csv.addRow({"latency_us",
                        strformat("%.1f", latency),
                        strformat("%.2f", speedup)});
        }
        std::printf("--- latency sweep ---\n");
        table.print(std::cout);
        std::printf("\n");
    }

    {
        TablePrinter table({"buses", "ideal speedup"});
        for (const int buses : {1, 2, 4, 8, 0}) {
            auto platform = base;
            platform.buses = buses;
            const double speedup =
                idealSpeedupOn(study, platform, threads);
            table.addRow({buses == 0 ? "unlimited"
                                     : strformat("%d", buses),
                          pct(speedup)});
            csv.addRow({"buses",
                        buses == 0 ? "0"
                                   : strformat("%d", buses),
                        strformat("%.2f", speedup)});
        }
        std::printf("--- bus-contention sweep ---\n");
        table.print(std::cout);
        std::printf("\n");
    }

    {
        // Faster CPUs shrink the computation that overlap hides
        // behind; slower CPUs hide the network entirely.
        TablePrinter table({"cpu ratio", "ideal speedup"});
        for (const double ratio : {0.25, 0.5, 1.0, 2.0, 4.0}) {
            auto platform = base;
            platform.cpuRatio = ratio;
            const double speedup =
                idealSpeedupOn(study, platform, threads);
            table.addRow({strformat("%.2fx", ratio),
                          pct(speedup)});
            csv.addRow({"cpu_ratio", strformat("%.2f", ratio),
                        strformat("%.2f", speedup)});
        }
        std::printf("--- CPU-speed sweep ---\n");
        table.print(std::cout);
        std::printf("\n");
    }
    std::printf(
        "CSV written to bench_platform_sensitivity.csv\n");
    return 0;
}
