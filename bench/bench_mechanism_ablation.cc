/**
 * @file
 * Experiment A1 (paper Sec. II-B).
 *
 * "Moreover, due to its flexibility, the tool can make traces for
 *  executions that enforce only a subset of the overlapping
 *  mechanisms, so each of the mechanisms can be studied separately."
 *
 * For every application, at its intermediate bandwidth, this bench
 * compares the ideal-pattern speedup of the sender-side half (chunks
 * leave at production time), the receiver-side half (waits move to
 * consumption time) and the full mechanism.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"

using namespace ovlsim;
using namespace ovlsim::bench;

int
main(int argc, char **argv)
{
    const int threads = parseThreads(argc, argv);
    std::printf("A1: mechanism ablation at the intermediate "
                "bandwidth (ideal pattern, 16 chunks; "
                "%d threads)\n\n", threads);

    TablePrinter table({"app", "MB/s", "send-side only",
                        "recv-side only", "both"});
    CsvWriter csv("bench_mechanism_ablation.csv",
                  {"app", "intermediate_mbps",
                   "speedup_send_side_pct",
                   "speedup_recv_side_pct", "speedup_both_pct"});

    for (const auto &name : paperApps()) {
        core::OverlapStudy study(traceApp(name));
        auto platform = sim::platforms::defaultCluster();
        platform.bandwidthMBps = core::findIntermediateBandwidth(
            *study.originalProgram(), platform);

        // Original plus the three mechanism variants, batched over
        // the study's cached compiled programs.
        std::vector<sim::SimJob> jobs{
            {study.originalProgram(), platform}};
        for (const auto mechanism :
             {core::Mechanism::sendSide,
              core::Mechanism::recvSide,
              core::Mechanism::both}) {
            core::TransformConfig config;
            config.pattern = core::PatternModel::idealLinear;
            config.mechanism = mechanism;
            jobs.push_back(
                {study.overlappedProgram(config), platform});
        }
        const auto results = sim::simulateBatch(jobs, threads);
        const auto &original = results[0];
        std::vector<double> speedups;
        for (std::size_t v = 1; v < results.size(); ++v) {
            speedups.push_back(speedupPct(
                original.totalTime, results[v].totalTime));
        }
        table.addRow({name, mbps(platform.bandwidthMBps),
                      pct(speedups[0]), pct(speedups[1]),
                      pct(speedups[2])});
        csv.addRow({name,
                    strformat("%.3f", platform.bandwidthMBps),
                    strformat("%.2f", speedups[0]),
                    strformat("%.2f", speedups[1]),
                    strformat("%.2f", speedups[2])});
    }
    table.print(std::cout);
    std::printf(
        "\nCSV written to bench_mechanism_ablation.csv\n");
    return 0;
}
