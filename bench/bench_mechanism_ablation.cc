/**
 * @file
 * Experiment A1 (paper Sec. II-B).
 *
 * "Moreover, due to its flexibility, the tool can make traces for
 *  executions that enforce only a subset of the overlapping
 *  mechanisms, so each of the mechanisms can be studied separately."
 *
 * For every application, at its intermediate bandwidth, this bench
 * compares the ideal-pattern speedup of the sender-side half (chunks
 * leave at production time), the receiver-side half (waits move to
 * consumption time) and the full mechanism.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"

using namespace ovlsim;
using namespace ovlsim::bench;

int
main()
{
    std::printf("A1: mechanism ablation at the intermediate "
                "bandwidth (ideal pattern, 16 chunks)\n\n");

    TablePrinter table({"app", "MB/s", "send-side only",
                        "recv-side only", "both"});
    CsvWriter csv("bench_mechanism_ablation.csv",
                  {"app", "intermediate_mbps",
                   "speedup_send_side_pct",
                   "speedup_recv_side_pct", "speedup_both_pct"});

    for (const auto &name : paperApps()) {
        core::OverlapStudy study(traceApp(name));
        auto platform = sim::platforms::defaultCluster();
        platform.bandwidthMBps = core::findIntermediateBandwidth(
            study.originalTrace(), platform);

        const auto original = study.simulateOriginal(platform);
        std::vector<double> speedups;
        for (const auto mechanism :
             {core::Mechanism::sendSide,
              core::Mechanism::recvSide,
              core::Mechanism::both}) {
            core::TransformConfig config;
            config.pattern = core::PatternModel::idealLinear;
            config.mechanism = mechanism;
            const auto t =
                study.simulateOverlapped(config, platform)
                    .totalTime;
            speedups.push_back(
                speedupPct(original.totalTime, t));
        }
        table.addRow({name, mbps(platform.bandwidthMBps),
                      pct(speedups[0]), pct(speedups[1]),
                      pct(speedups[2])});
        csv.addRow({name,
                    strformat("%.3f", platform.bandwidthMBps),
                    strformat("%.2f", speedups[0]),
                    strformat("%.2f", speedups[1]),
                    strformat("%.2f", speedups[2])});
    }
    table.print(std::cout);
    std::printf(
        "\nCSV written to bench_mechanism_ablation.csv\n");
    return 0;
}
