/**
 * @file
 * Experiment F1 (paper Figure 1): the environment itself.
 *
 * Exercises the full pipeline the figure depicts — application runs
 * on one virtual machine per process, the tracing tool emits the
 * original and the potential (overlapped) traces, the Dimemas-like
 * simulator reconstructs both time-behaviours on a configurable
 * platform, and the Paraver-like back end renders them for visual
 * comparison. Artifacts (trace files, .prv/.pcf timelines) are
 * written to the working directory.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"
#include "core/potential.hh"
#include "trace/trace_io.hh"
#include "trace/trace_stats.hh"
#include "viz/ascii_gantt.hh"
#include "viz/paraver.hh"
#include "viz/profile.hh"

using namespace ovlsim;
using namespace ovlsim::bench;

int
main(int argc, char **argv)
{
    const int threads = parseThreads(argc, argv);
    std::printf("F1: the simulation environment of Figure 1, end "
                "to end (NAS-BT proxy, 1 iteration)\n\n");

    // Stage 1: application on per-process virtual machines, traced.
    const auto bundle = traceApp("nas-bt", 1);
    std::printf("[tracing tool] original trace:\n%s\n",
                trace::computeTraceStats(bundle.traces)
                    .toString()
                    .c_str());
    trace::writeTraceFile(bundle.traces, "fig1_original.trace");
    trace::writeOverlapFile(bundle.overlap,
                            "fig1_overlap.meta");
    std::printf("[tracing tool] wrote fig1_original.trace and "
                "fig1_overlap.meta\n\n");

    // Static potential analysis from the measured profiles alone.
    std::printf("[analysis] %s\n",
                core::analyzePotential(bundle.overlap)
                    .toString()
                    .c_str());

    // Stage 2: the tool's potential (overlapped) trace.
    core::TransformConfig ideal;
    ideal.pattern = core::PatternModel::idealLinear;
    const auto overlapped = core::buildOverlappedTrace(
        bundle.traces, bundle.overlap, ideal);
    std::printf("[transformation] %zu messages split into %zu "
                "chunk transfers (%s)\n\n",
                overlapped.chunkedMessages,
                overlapped.totalChunks, ideal.label().c_str());

    // Stage 3: Dimemas-like reconstruction on a configurable
    // platform, near the intermediate bandwidth. Both traces are
    // lowered once into shared compiled programs; the bisection
    // and the replays below all run from them.
    const auto original_program =
        sim::compileShared(bundle.traces);
    const auto overlapped_program =
        sim::compileShared(overlapped.traces);
    auto platform = sim::platforms::defaultCluster();
    platform.bandwidthMBps = core::findIntermediateBandwidth(
        *original_program, platform);
    platform.captureTimeline = true;
    std::printf("[replay] platform: %.2f MB/s, %.1f us latency, "
                "%s buses\n\n",
                platform.bandwidthMBps, platform.latencyUs,
                platform.buses == 0
                    ? "unlimited"
                    : strformat("%d", platform.buses).c_str());

    // The original and overlapped replays are independent; batch
    // them over the worker pool like every other driver, sharing
    // the pre-compiled programs.
    const std::vector<sim::SimJob> jobs{
        {original_program, platform},
        {overlapped_program, platform},
    };
    const auto results = sim::simulateBatch(jobs, threads);
    const auto &original_result = results[0];
    const auto &overlapped_result = results[1];

    // Stage 4: Paraver-like visualization of both behaviours.
    viz::GanttOptions options;
    options.width = 96;
    options.legend = false;
    options.title = "original (non-overlapped):";
    std::printf("%s\n",
                viz::renderGantt(original_result.timeline,
                                 options)
                    .c_str());
    options.title = "overlapped (ideal pattern):";
    options.legend = true;
    std::printf("%s\n",
                viz::renderGantt(overlapped_result.timeline,
                                 options)
                    .c_str());

    std::printf("%s\n",
                viz::renderComparison("original",
                                      original_result,
                                      "overlapped",
                                      overlapped_result)
                    .c_str());

    viz::writeParaverFiles(original_result.timeline,
                           "fig1_original");
    viz::writeParaverFiles(overlapped_result.timeline,
                           "fig1_overlapped");
    std::printf("[paraver] wrote fig1_original.prv/.pcf and "
                "fig1_overlapped.prv/.pcf\n");
    return 0;
}
