/**
 * @file
 * Experiment R1 (paper Sec. III, finding 1).
 *
 * "We found that the overlapping potential can be very limited by
 *  pattern by which the processes internally compute on the data
 *  involved in communication. Considering the real computation
 *  patterns, the potential for automatic overlap in the applications
 *  is negligible. Still, if the computation phases were restructured
 *  such that the data was produced and consumed in an ideal
 *  sequential order, automatic overlap could achieve benefits in a
 *  wide range of network bandwidth."
 *
 * For each of the six applications this bench sweeps the network
 * bandwidth over five decades and prints the execution time of the
 * original trace and of the real-pattern and ideal-pattern
 * overlapped traces, plus their speedups.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"

using namespace ovlsim;
using namespace ovlsim::bench;

int
main(int argc, char **argv)
{
    const int threads = parseThreads(argc, argv);
    std::printf("R1: real vs ideal computation patterns across "
                "bandwidths\n");
    std::printf("(speedups vs the original, non-overlapped "
                "execution; 16 chunks/message; %d threads)\n\n",
                threads);

    const auto grid = core::logBandwidthGrid(1.0, 65536.0, 1);
    const auto variants = core::standardVariants(16);
    CsvWriter csv("bench_real_vs_ideal.csv",
                  {"app", "bandwidth_mbps", "t_original_us",
                   "t_real_us", "speedup_real_pct", "t_ideal_us",
                   "speedup_ideal_pct"});

    for (const auto &name : paperApps()) {
        const auto bundle = traceApp(name);
        const auto sweep = core::bandwidthSweep(
            bundle, sim::platforms::defaultCluster(), grid,
            variants, threads);

        TablePrinter table({"bandwidth MB/s", "original",
                            "overlap-real", "real speedup",
                            "overlap-ideal", "ideal speedup"});
        for (const auto &point : sweep.points) {
            const double real_pct =
                (point.speedup(0) - 1.0) * 100.0;
            const double ideal_pct =
                (point.speedup(1) - 1.0) * 100.0;
            table.addRow(
                {mbps(point.bandwidthMBps),
                 humanTime(point.originalTime),
                 humanTime(point.variantTimes[0]),
                 pct(real_pct),
                 humanTime(point.variantTimes[1]),
                 pct(ideal_pct)});
            csv.addRow({name,
                        strformat("%.4f", point.bandwidthMBps),
                        strformat("%.3f",
                                  point.originalTime.toUs()),
                        strformat("%.3f",
                                  point.variantTimes[0].toUs()),
                        strformat("%.2f", real_pct),
                        strformat("%.3f",
                                  point.variantTimes[1].toUs()),
                        strformat("%.2f", ideal_pct)});
        }
        std::printf("--- %s ---\n", name.c_str());
        table.print(std::cout);
        std::printf("\n");
    }
    std::printf("CSV written to bench_real_vs_ideal.csv\n");
    return 0;
}
