/**
 * @file
 * Experiment R2 (paper Sec. III, finding 2).
 *
 * "For intermediate bandwidths, where time spent in communication is
 *  comparable to time spent in computation, overlapping can achieve
 *  a significant speedup, such as: 30% in NAS-BT, 10% in NAS-CG, 10%
 *  in POP, 40% in Alya, 65% in SPECFEM and 160% in Sweep3D."
 *
 * For every application this bench locates its intermediate
 * bandwidth (where the original execution spends as much time
 * blocked on communication as computing), replays the original and
 * the overlapped variants there, and prints the measured speedups
 * next to the paper's reported numbers.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"

using namespace ovlsim;
using namespace ovlsim::bench;

int
main(int argc, char **argv)
{
    const int threads = parseThreads(argc, argv);
    std::printf("R2: ideal-pattern overlap speedup at the "
                "intermediate bandwidth\n");
    std::printf("(comm time == compute time in the original "
                "execution; 16 chunks/message; %d threads)\n\n",
                threads);

    TablePrinter table({"app", "intermediate MB/s",
                        "t original", "t overlap-ideal",
                        "ideal speedup", "paper",
                        "real speedup"});
    CsvWriter csv("bench_intermediate_speedup.csv",
                  {"app", "intermediate_mbps", "t_original_us",
                   "t_ideal_us", "speedup_ideal_pct",
                   "paper_pct", "speedup_real_pct"});

    for (const auto &name : paperApps()) {
        core::OverlapStudy study(traceApp(name));
        auto platform = sim::platforms::defaultCluster();
        const double ib = core::findIntermediateBandwidth(
            *study.originalProgram(), platform);
        platform.bandwidthMBps = ib;

        core::TransformConfig ideal;
        ideal.pattern = core::PatternModel::idealLinear;
        core::TransformConfig real;
        real.pattern = core::PatternModel::real;

        // The three replays at the operating point are independent;
        // batch the study's cached compiled programs over the pool
        // (the bisection above already paid the original's
        // lowering).
        const std::vector<sim::SimJob> jobs{
            {study.originalProgram(), platform},
            {study.overlappedProgram(ideal), platform},
            {study.overlappedProgram(real), platform},
        };
        const auto results = sim::simulateBatch(jobs, threads);
        const auto &original = results[0];
        const auto t_ideal = results[1].totalTime;
        const auto t_real = results[2].totalTime;

        const double ideal_pct =
            speedupPct(original.totalTime, t_ideal);
        const double real_pct =
            speedupPct(original.totalTime, t_real);

        table.addRow({name, mbps(ib),
                      humanTime(original.totalTime),
                      humanTime(t_ideal), pct(ideal_pct),
                      strformat("+%.0f%%",
                                paperIntermediateSpeedupPct(
                                    name)),
                      pct(real_pct)});
        csv.addRow({name, strformat("%.3f", ib),
                    strformat("%.3f", original.totalTime.toUs()),
                    strformat("%.3f", t_ideal.toUs()),
                    strformat("%.2f", ideal_pct),
                    strformat("%.0f",
                              paperIntermediateSpeedupPct(name)),
                    strformat("%.2f", real_pct)});
    }
    table.print(std::cout);
    std::printf(
        "\nThe paper column is the ISPASS 2010 reported value; "
        "the shape to reproduce\nis the ladder (sweep3d >> "
        "specfem > alya > nas-bt > pop ~ nas-cg) and the\n"
        "negligible real-pattern column.\n");
    std::printf("CSV written to bench_intermediate_speedup.csv\n");
    return 0;
}
