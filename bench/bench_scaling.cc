/**
 * @file
 * Experiment S1 (extension; paper Sec. IV future work).
 *
 * The paper plans to use the environment "to estimate the potential
 * of new to-appear features of network systems" on larger machines.
 * This bench scales the process count of two contrasting proxies —
 * NAS-BT (halo) and Sweep3D (pipeline) — and reports how the
 * ideal-pattern benefit at the intermediate bandwidth evolves: halo
 * codes keep a roughly constant benefit while pipelined wavefronts
 * gain with depth.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"

using namespace ovlsim;
using namespace ovlsim::bench;

int
main(int argc, char **argv)
{
    const int threads = parseThreads(argc, argv);
    std::printf("S1: ideal-pattern benefit vs machine size "
                "(%d threads)\n\n", threads);

    CsvWriter csv("bench_scaling.csv",
                  {"app", "ranks", "intermediate_mbps",
                   "speedup_ideal_pct"});

    for (const std::string name : {"nas-bt", "sweep3d"}) {
        TablePrinter table({"ranks", "intermediate MB/s",
                            "t original", "ideal speedup"});
        for (const int ranks : {4, 16, 36, 64}) {
            const auto &app = apps::findApp(name);
            auto params = app.defaults();
            params.ranks = ranks;
            params.iterations =
                std::min(params.iterations, 2);
            tracer::TracerConfig config;
            config.appName = name;
            core::OverlapStudy study(tracer::traceApplication(
                ranks, app.program(params), config));

            auto platform = sim::platforms::defaultCluster();
            platform.bandwidthMBps =
                core::findIntermediateBandwidth(
                    *study.originalProgram(), platform);

            core::TransformConfig ideal;
            ideal.pattern = core::PatternModel::idealLinear;
            const std::vector<sim::SimJob> jobs{
                {study.originalProgram(), platform},
                {study.overlappedProgram(ideal), platform},
            };
            const auto results =
                sim::simulateBatch(jobs, threads);
            const auto &original = results[0];
            const double speedup = speedupPct(
                original.totalTime, results[1].totalTime);

            table.addRow({strformat("%d", ranks),
                          mbps(platform.bandwidthMBps),
                          humanTime(original.totalTime),
                          pct(speedup)});
            csv.addRow({name, strformat("%d", ranks),
                        strformat("%.3f",
                                  platform.bandwidthMBps),
                        strformat("%.2f", speedup)});
        }
        std::printf("--- %s ---\n", name.c_str());
        table.print(std::cout);
        std::printf("\n");
    }
    std::printf("CSV written to bench_scaling.csv\n");
    return 0;
}
