/**
 * @file
 * Unit tests for the hot-path containers behind the replay engine:
 * the open-addressing FlatMap and the 4-ary event heap.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/dary_heap.hh"
#include "util/flat_map.hh"

namespace ovlsim {
namespace {

/** Deterministic xorshift generator for the randomized tests. */
struct Rng
{
    std::uint64_t state;

    explicit Rng(std::uint64_t seed) : state(seed | 1) {}

    std::uint64_t
    next()
    {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    }
};

TEST(FlatMapTest, EmptyMapBasics)
{
    FlatMap<std::uint64_t, int> map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.find(42), nullptr);
    EXPECT_FALSE(map.contains(42));
    EXPECT_FALSE(map.erase(42));
}

TEST(FlatMapTest, InsertFindEraseRoundTrip)
{
    FlatMap<std::uint64_t, int> map;
    EXPECT_TRUE(map.insertOrAssign(7, 70));
    EXPECT_TRUE(map.insertOrAssign(9, 90));
    EXPECT_FALSE(map.insertOrAssign(7, 71)); // overwrite
    EXPECT_EQ(map.size(), 2u);
    ASSERT_NE(map.find(7), nullptr);
    EXPECT_EQ(*map.find(7), 71);
    ASSERT_NE(map.find(9), nullptr);
    EXPECT_EQ(*map.find(9), 90);
    EXPECT_TRUE(map.erase(7));
    EXPECT_EQ(map.find(7), nullptr);
    EXPECT_EQ(map.size(), 1u);
    EXPECT_FALSE(map.erase(7));
}

TEST(FlatMapTest, SubscriptDefaultConstructs)
{
    FlatMap<std::uint64_t, int> map;
    EXPECT_EQ(map[5], 0);
    map[5] = 55;
    EXPECT_EQ(map[5], 55);
    EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMapTest, GrowthPreservesAllEntries)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    constexpr std::uint64_t n = 10'000;
    for (std::uint64_t key = 0; key < n; ++key)
        map.insertOrAssign(key * 977, key);
    EXPECT_EQ(map.size(), n);
    for (std::uint64_t key = 0; key < n; ++key) {
        const auto *value = map.find(key * 977);
        ASSERT_NE(value, nullptr) << "key " << key;
        EXPECT_EQ(*value, key);
    }
}

TEST(FlatMapTest, ReserveAvoidsLaterInvalidation)
{
    FlatMap<std::uint64_t, int> map;
    map.reserve(1000);
    const std::size_t cap = map.capacity();
    for (std::uint64_t key = 0; key < 1000; ++key)
        map.insertOrAssign(key, 1);
    EXPECT_EQ(map.capacity(), cap);
}

TEST(FlatMapTest, ClearKeepsAllocationDropsEntries)
{
    FlatMap<std::uint64_t, int> map;
    for (std::uint64_t key = 0; key < 100; ++key)
        map.insertOrAssign(key, 1);
    const std::size_t cap = map.capacity();
    map.clear();
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.capacity(), cap);
    EXPECT_EQ(map.find(50), nullptr);
    map.insertOrAssign(50, 2);
    EXPECT_EQ(*map.find(50), 2);
}

TEST(FlatMapTest, ForEachVisitsEveryLiveEntry)
{
    FlatMap<std::uint64_t, int> map;
    for (std::uint64_t key = 1; key <= 64; ++key)
        map.insertOrAssign(key, static_cast<int>(key));
    map.erase(10);
    map.erase(20);
    std::uint64_t key_sum = 0;
    std::size_t count = 0;
    map.forEach([&](std::uint64_t key, int &value) {
        key_sum += key;
        EXPECT_EQ(static_cast<int>(key), value);
        ++count;
    });
    EXPECT_EQ(count, 62u);
    EXPECT_EQ(key_sum, 64u * 65u / 2 - 30u);
}

/** Hash that sends every key to one bucket: worst-case clustering. */
struct CollidingHash
{
    std::size_t operator()(std::uint64_t) const { return 0; }
};

TEST(FlatMapTest, BackwardShiftSurvivesFullCollisionChains)
{
    FlatMap<std::uint64_t, int, CollidingHash> map;
    for (std::uint64_t key = 1; key <= 40; ++key)
        map.insertOrAssign(key, static_cast<int>(key * 3));
    // Erase from the middle of the probe chain, then verify every
    // remaining key is still reachable.
    for (std::uint64_t key = 10; key <= 30; key += 2)
        EXPECT_TRUE(map.erase(key));
    for (std::uint64_t key = 1; key <= 40; ++key) {
        const bool erased = key >= 10 && key <= 30 && key % 2 == 0;
        const auto *value = map.find(key);
        if (erased) {
            EXPECT_EQ(value, nullptr) << "key " << key;
        } else {
            ASSERT_NE(value, nullptr) << "key " << key;
            EXPECT_EQ(*value, static_cast<int>(key * 3));
        }
    }
}

TEST(FlatMapTest, RandomizedDifferentialAgainstUnorderedMap)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    std::unordered_map<std::uint64_t, std::uint64_t> reference;
    Rng rng(0xbeefcafe);
    for (int op = 0; op < 200'000; ++op) {
        const std::uint64_t key = rng.next() % 512;
        switch (rng.next() % 3) {
          case 0: {
            const std::uint64_t value = rng.next();
            map.insertOrAssign(key, value);
            reference[key] = value;
            break;
          }
          case 1: {
            EXPECT_EQ(map.erase(key), reference.erase(key) > 0);
            break;
          }
          case 2: {
            const auto *found = map.find(key);
            const auto it = reference.find(key);
            if (it == reference.end()) {
                EXPECT_EQ(found, nullptr);
            } else {
                ASSERT_NE(found, nullptr);
                EXPECT_EQ(*found, it->second);
            }
            break;
          }
        }
        EXPECT_EQ(map.size(), reference.size());
    }
}

TEST(DaryHeapTest, EmptyAndSize)
{
    DaryHeap<int> heap;
    EXPECT_TRUE(heap.empty());
    EXPECT_EQ(heap.size(), 0u);
    heap.push(3);
    EXPECT_FALSE(heap.empty());
    EXPECT_EQ(heap.size(), 1u);
    EXPECT_EQ(heap.top(), 3);
    heap.pop();
    EXPECT_TRUE(heap.empty());
}

TEST(DaryHeapTest, PopsInAscendingOrder)
{
    DaryHeap<int> heap;
    const std::vector<int> values{9, 1, 8, 2, 7, 3, 6, 4, 5, 5, 0};
    for (int v : values)
        heap.push(v);
    std::vector<int> drained;
    while (!heap.empty()) {
        drained.push_back(heap.top());
        heap.pop();
    }
    std::vector<int> expected = values;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(drained, expected);
}

TEST(DaryHeapTest, MatchesPriorityQueueOnRandomStream)
{
    DaryHeap<std::uint64_t> heap;
    std::priority_queue<std::uint64_t,
                        std::vector<std::uint64_t>,
                        std::greater<std::uint64_t>>
        reference;
    Rng rng(0x5eed);
    for (int op = 0; op < 100'000; ++op) {
        if (reference.empty() || rng.next() % 3 != 0) {
            const std::uint64_t value = rng.next() % 1000;
            heap.push(value);
            reference.push(value);
        } else {
            ASSERT_EQ(heap.top(), reference.top());
            heap.pop();
            reference.pop();
        }
        ASSERT_EQ(heap.size(), reference.size());
    }
    while (!reference.empty()) {
        ASSERT_EQ(heap.top(), reference.top());
        heap.pop();
        reference.pop();
    }
    EXPECT_TRUE(heap.empty());
}

/** Mimics the engine's Event ordering: time, then sequence number. */
struct FakeEvent
{
    int time;
    int seq;

    bool
    operator>(const FakeEvent &other) const
    {
        if (time != other.time)
            return time > other.time;
        return seq > other.seq;
    }
};

TEST(DaryHeapTest, TieBreaksBySequenceLikeTheEventQueue)
{
    DaryHeap<FakeEvent, 4, std::greater<FakeEvent>> heap;
    heap.push({5, 2});
    heap.push({5, 0});
    heap.push({3, 3});
    heap.push({5, 1});
    heap.push({3, 4});
    std::vector<std::pair<int, int>> drained;
    while (!heap.empty()) {
        drained.emplace_back(heap.top().time, heap.top().seq);
        heap.pop();
    }
    const std::vector<std::pair<int, int>> expected{
        {3, 3}, {3, 4}, {5, 0}, {5, 1}, {5, 2}};
    EXPECT_EQ(drained, expected);
}

TEST(DaryHeapTest, ClearEmptiesTheHeap)
{
    DaryHeap<int> heap;
    for (int v = 0; v < 16; ++v)
        heap.push(v);
    heap.clear();
    EXPECT_TRUE(heap.empty());
    heap.push(7);
    EXPECT_EQ(heap.top(), 7);
}

} // namespace
} // namespace ovlsim
