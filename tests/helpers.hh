/**
 * @file
 * Shared fixtures and mini-applications for the test suite.
 */

#ifndef OVLSIM_TESTS_HELPERS_HH
#define OVLSIM_TESTS_HELPERS_HH

#include <gtest/gtest.h>

#include <string>

#include "sim/platform.hh"
#include "sim/result.hh"
#include "trace/trace.hh"
#include "tracer/tracer.hh"
#include "vm/vm.hh"

namespace ovlsim::testing {

/**
 * Assert full structural equality of two replay results — the
 * bit-identical contract every determinism/parallelism test pins.
 */
inline void
expectIdentical(const sim::SimResult &a, const sim::SimResult &b)
{
    EXPECT_EQ(a.totalTime.ns(), b.totalTime.ns());
    EXPECT_EQ(a.eventsProcessed, b.eventsProcessed);
    EXPECT_EQ(a.transfers, b.transfers);
    ASSERT_EQ(a.perRank.size(), b.perRank.size());
    for (std::size_t r = 0; r < a.perRank.size(); ++r) {
        const auto &ra = a.perRank[r];
        const auto &rb = b.perRank[r];
        EXPECT_EQ(ra.endTime.ns(), rb.endTime.ns()) << "rank " << r;
        EXPECT_EQ(ra.computeTime.ns(), rb.computeTime.ns())
            << "rank " << r;
        EXPECT_EQ(ra.sendBlockedTime.ns(), rb.sendBlockedTime.ns())
            << "rank " << r;
        EXPECT_EQ(ra.recvBlockedTime.ns(), rb.recvBlockedTime.ns())
            << "rank " << r;
        EXPECT_EQ(ra.waitBlockedTime.ns(), rb.waitBlockedTime.ns())
            << "rank " << r;
        EXPECT_EQ(ra.collectiveTime.ns(), rb.collectiveTime.ns())
            << "rank " << r;
        EXPECT_EQ(ra.messagesSent, rb.messagesSent) << "rank " << r;
        EXPECT_EQ(ra.messagesReceived, rb.messagesReceived)
            << "rank " << r;
        EXPECT_EQ(ra.bytesSent, rb.bytesSent) << "rank " << r;
    }
}

/**
 * Two-rank producer/consumer: rank 0 computes `instr` instructions
 * while storing a `bytes`-sized buffer uniformly, then sends it;
 * rank 1 receives and consumes it uniformly across `instr`
 * instructions. The analytically simplest overlap scenario.
 */
inline vm::RankProgram
producerConsumer(Bytes bytes, Instr instr, int pieces = 8)
{
    return [bytes, instr, pieces](vm::VmContext &ctx) {
        if (ctx.rank() == 0) {
            const auto buf = ctx.allocBuffer("payload", bytes);
            ctx.computeStore(buf, 0, bytes,
                             static_cast<double>(instr) /
                                 static_cast<double>(bytes),
                             pieces);
            ctx.send(buf, 0, bytes, 1, 7);
        } else if (ctx.rank() == 1) {
            const auto buf = ctx.allocBuffer("payload", bytes);
            ctx.recv(buf, 0, bytes, 0, 7);
            ctx.computeLoad(buf, 0, bytes,
                            static_cast<double>(instr) /
                                static_cast<double>(bytes),
                            pieces);
        } else {
            ctx.compute(1);
        }
    };
}

/**
 * Two-rank pack-at-end variant: production happens in a tiny copy
 * loop right before the send and consumption in a tiny unpack right
 * after the receive (the pessimal "real" pattern).
 */
inline vm::RankProgram
packedExchange(Bytes bytes, Instr instr)
{
    return [bytes, instr](vm::VmContext &ctx) {
        if (ctx.rank() == 0) {
            const auto buf = ctx.allocBuffer("payload", bytes);
            ctx.compute(instr);
            ctx.computeStore(buf, 0, bytes, 0.1, 4);
            ctx.send(buf, 0, bytes, 1, 9);
        } else if (ctx.rank() == 1) {
            const auto buf = ctx.allocBuffer("payload", bytes);
            ctx.recv(buf, 0, bytes, 0, 9);
            ctx.computeLoad(buf, 0, bytes, 0.1, 4);
            ctx.compute(instr);
        } else {
            ctx.compute(1);
        }
    };
}

/** Symmetric ring exchange over `ranks` ranks, `iters` iterations. */
inline vm::RankProgram
ringExchange(Bytes bytes, Instr instr, int iters)
{
    return [bytes, instr, iters](vm::VmContext &ctx) {
        const Rank right = (ctx.rank() + 1) % ctx.ranks();
        const Rank left =
            (ctx.rank() + ctx.ranks() - 1) % ctx.ranks();
        const auto sbuf = ctx.allocBuffer("ring-send", bytes);
        const auto rbuf = ctx.allocBuffer("ring-recv", bytes);
        for (int it = 0; it < iters; ++it) {
            ctx.compute(instr);
            ctx.computeStore(sbuf, 0, bytes, 0.2, 4);
            ctx.send(sbuf, 0, bytes, right, 5);
            ctx.recv(rbuf, 0, bytes, left, 5);
            ctx.touchLoad(rbuf, 0, bytes);
        }
    };
}

/** Trace the program with compact defaults. */
inline tracer::TraceBundle
traceOf(int ranks, const vm::RankProgram &program,
        const std::string &name = "test-app")
{
    tracer::TracerConfig config;
    config.appName = name;
    return tracer::traceApplication(ranks, program, config);
}

/** Platform with a specific bandwidth, everything else default. */
inline sim::PlatformConfig
platformAt(double bandwidth_mbps)
{
    auto platform = sim::platforms::defaultCluster();
    platform.bandwidthMBps = bandwidth_mbps;
    return platform;
}

} // namespace ovlsim::testing

#endif // OVLSIM_TESTS_HELPERS_HH
