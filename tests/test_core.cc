/**
 * @file
 * Tests for the analysis layer and the study facade.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.hh"
#include "core/study.hh"
#include "tests/helpers.hh"
#include "util/logging.hh"

namespace ovlsim::core {
namespace {

tracer::TraceBundle
ringBundle()
{
    return testing::traceOf(
        4, testing::ringExchange(128 * 1024, 800'000, 2));
}

TEST(BandwidthGridTest, LogSpacedAndInclusive)
{
    const auto grid = logBandwidthGrid(1.0, 1000.0, 1);
    ASSERT_GE(grid.size(), 4u);
    EXPECT_DOUBLE_EQ(grid.front(), 1.0);
    EXPECT_NEAR(grid.back(), 1000.0, 1e-6);
    for (std::size_t i = 1; i < grid.size(); ++i)
        EXPECT_GT(grid[i], grid[i - 1]);
    EXPECT_THROW(logBandwidthGrid(0.0, 10.0, 1), PanicError);
    EXPECT_THROW(logBandwidthGrid(10.0, 1.0, 1), PanicError);
}

TEST(StandardVariantsTest, RealAndIdeal)
{
    const auto variants = standardVariants(8);
    ASSERT_EQ(variants.size(), 2u);
    EXPECT_EQ(variants[0].name, "overlap-real");
    EXPECT_EQ(variants[0].config.pattern, PatternModel::real);
    EXPECT_EQ(variants[1].name, "overlap-ideal");
    EXPECT_EQ(variants[1].config.pattern,
              PatternModel::idealLinear);
    EXPECT_EQ(variants[0].config.chunks, 8u);
}

TEST(BandwidthSweepTest, OriginalTimesMonotoneNonIncreasing)
{
    const auto bundle = ringBundle();
    const auto grid = logBandwidthGrid(4.0, 4096.0, 1);
    const auto sweep =
        bandwidthSweep(bundle, sim::platforms::defaultCluster(),
                       grid, standardVariants(8));

    ASSERT_EQ(sweep.points.size(), grid.size());
    for (std::size_t i = 1; i < sweep.points.size(); ++i) {
        EXPECT_LE(sweep.points[i].originalTime.ns(),
                  sweep.points[i - 1].originalTime.ns());
    }
}

TEST(BandwidthSweepTest, SpeedupAccessorsAndBounds)
{
    const auto bundle = ringBundle();
    const auto sweep = bandwidthSweep(
        bundle, sim::platforms::defaultCluster(),
        {64.0, 512.0}, standardVariants(8));
    for (const auto &point : sweep.points) {
        ASSERT_EQ(point.variantTimes.size(), 2u);
        for (std::size_t v = 0; v < 2; ++v) {
            EXPECT_GT(point.speedup(v), 0.5);
            EXPECT_LT(point.speedup(v), 10.0);
        }
    }
}

TEST(IntermediateBandwidthTest, BalancesCommAndCompute)
{
    const auto bundle = ringBundle();
    const auto platform = sim::platforms::defaultCluster();
    const double mbps = findIntermediateBandwidth(
        bundle.traces, platform, 0.25, 1 << 20);

    auto at = platform;
    at.bandwidthMBps = mbps;
    const auto result = sim::simulate(bundle.traces, at);
    EXPECT_NEAR(result.commFraction(),
                result.computeFraction(), 0.08);
}

TEST(MinBandwidthTest, FindsThresholdBandwidth)
{
    const auto bundle = ringBundle();
    const auto platform = sim::platforms::defaultCluster();

    auto fast = platform;
    fast.bandwidthMBps = 4096.0;
    const auto fast_time =
        sim::simulate(bundle.traces, fast).totalTime;
    // Allow 10% slack over the fast execution.
    const auto target = SimTime::fromNs(
        fast_time.ns() + fast_time.ns() / 10);

    const double mbps = minBandwidthForTime(
        bundle.traces, platform, target, 0.5, 4096.0);
    ASSERT_GT(mbps, 0.5);

    auto at = platform;
    at.bandwidthMBps = mbps;
    EXPECT_LE(sim::simulate(bundle.traces, at).totalTime.ns(),
              target.ns());
    // Slightly below the threshold the target must be missed
    // (unless the search bottomed out).
    at.bandwidthMBps = mbps / 1.5;
    EXPECT_GT(sim::simulate(bundle.traces, at).totalTime.ns(),
              target.ns());
}

TEST(IsoPerformanceTest, OverlappedNeedsLessBandwidth)
{
    const auto bundle = testing::traceOf(
        2, testing::producerConsumer(512 * 1024, 2'000'000, 16));

    TransformConfig ideal;
    ideal.pattern = PatternModel::idealLinear;
    const auto iso =
        isoPerformance(bundle, sim::platforms::defaultCluster(),
                       ideal, 16384.0, 0.05, 0.25);

    EXPECT_GT(iso.originalTime.ns(), 0);
    EXPECT_GT(iso.originalRequiredBandwidth, 0.0);
    EXPECT_GT(iso.overlappedRequiredBandwidth, 0.0);
    EXPECT_LE(iso.overlappedRequiredBandwidth,
              iso.originalRequiredBandwidth);
    EXPECT_GE(iso.reductionFactor(), 1.0);
}

TEST(StudyTest, FacadeMatchesDirectPipeline)
{
    auto study = OverlapStudy::fromProgram(
        2, testing::producerConsumer(256 * 1024, 1'000'000, 8));
    const auto platform = testing::platformAt(256.0);

    const auto original = study.simulateOriginal(platform);
    EXPECT_GT(original.totalTime.ns(), 0);

    TransformConfig ideal;
    ideal.pattern = PatternModel::idealLinear;
    const auto overlapped =
        study.simulateOverlapped(ideal, platform);
    const double speedup = study.speedup(ideal, platform);
    EXPECT_NEAR(speedup,
                static_cast<double>(original.totalTime.ns()) /
                    static_cast<double>(
                        overlapped.totalTime.ns()),
                1e-9);
}

TEST(StudyTest, VariantTracesAreCached)
{
    auto study = OverlapStudy::fromProgram(
        2, testing::producerConsumer(64 * 1024, 100'000, 8));
    TransformConfig config;
    const auto &first = study.overlappedTrace(config);
    const auto &second = study.overlappedTrace(config);
    EXPECT_EQ(&first, &second);

    config.chunks = 4;
    const auto &third = study.overlappedTrace(config);
    EXPECT_NE(&first, &third);
}

TEST(StudyTest, SpeedupAboveOneAtIntermediateBandwidth)
{
    auto study = OverlapStudy::fromProgram(
        2, testing::producerConsumer(256 * 1024, 1'000'000, 16));
    auto platform = sim::platforms::defaultCluster();
    platform.bandwidthMBps = findIntermediateBandwidth(
        study.originalTrace(), platform);

    TransformConfig ideal;
    ideal.pattern = PatternModel::idealLinear;
    EXPECT_GT(study.speedup(ideal, platform), 1.2);
}

} // namespace
} // namespace ovlsim::core
