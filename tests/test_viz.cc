/**
 * @file
 * Tests for the visualization layer (ASCII Gantt, Paraver export,
 * state profiles).
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "sim/engine.hh"
#include "tests/helpers.hh"
#include "viz/ascii_gantt.hh"
#include "viz/paraver.hh"
#include "viz/profile.hh"

namespace ovlsim::viz {
namespace {

sim::SimResult
timelineResult()
{
    const auto bundle = testing::traceOf(
        2, testing::packedExchange(128 * 1024, 1'000'000));
    auto platform = sim::platforms::defaultCluster();
    platform.captureTimeline = true;
    return sim::simulate(bundle.traces, platform);
}

TEST(GanttTest, RendersOneRowPerRank)
{
    const auto result = timelineResult();
    GanttOptions options;
    options.width = 60;
    const std::string out = renderGantt(result.timeline, options);

    std::size_t rows = 0;
    std::istringstream lines(out);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.find('|') != std::string::npos &&
            line.back() == '|') {
            ++rows;
            const auto open = line.find('|');
            const auto close = line.rfind('|');
            EXPECT_EQ(close - open - 1, options.width);
        }
    }
    EXPECT_EQ(rows, 2u);
    EXPECT_NE(out.find("legend:"), std::string::npos);
}

TEST(GanttTest, ComputeDominatedRowsShowComputeCode)
{
    const auto result = timelineResult();
    GanttOptions options;
    options.width = 40;
    options.legend = false;
    const std::string out = renderGantt(result.timeline, options);
    EXPECT_NE(out.find('#'), std::string::npos);
    EXPECT_EQ(out.find("legend:"), std::string::npos);
}

TEST(GanttTest, TitleAndEmptyTimeline)
{
    sim::Timeline empty(2);
    GanttOptions options;
    options.title = "my-title";
    const std::string out = renderGantt(empty, options);
    EXPECT_NE(out.find("my-title"), std::string::npos);
    EXPECT_NE(out.find("(empty timeline)"), std::string::npos);
}

TEST(ParaverTest, HeaderAndRecordCounts)
{
    const auto result = timelineResult();
    std::ostringstream os;
    writeParaverTrace(result.timeline, os);
    const std::string text = os.str();

    ASSERT_TRUE(text.rfind("#Paraver", 0) == 0);

    std::size_t state_records = 0;
    std::size_t comm_records = 0;
    std::istringstream lines(text);
    std::string line;
    std::getline(lines, line); // header
    while (std::getline(lines, line)) {
        if (line.rfind("1:", 0) == 0)
            ++state_records;
        else if (line.rfind("3:", 0) == 0)
            ++comm_records;
    }
    std::size_t intervals = 0;
    for (Rank r = 0; r < result.timeline.ranks(); ++r)
        intervals += result.timeline.intervals(r).size();
    EXPECT_EQ(state_records, intervals);
    EXPECT_EQ(comm_records, result.timeline.comms().size());
    EXPECT_GT(comm_records, 0u);
}

TEST(ParaverTest, WritesPrvAndPcfFiles)
{
    const auto result = timelineResult();
    const std::string base =
        ::testing::TempDir() + "ovl_paraver_test";
    writeParaverFiles(result.timeline, base);

    std::ifstream prv(base + ".prv");
    ASSERT_TRUE(prv.good());
    std::string first;
    std::getline(prv, first);
    EXPECT_TRUE(first.rfind("#Paraver", 0) == 0);

    std::ifstream pcf(base + ".pcf");
    ASSERT_TRUE(pcf.good());
    std::stringstream pcf_text;
    pcf_text << pcf.rdbuf();
    EXPECT_NE(pcf_text.str().find("STATES"), std::string::npos);
    EXPECT_NE(pcf_text.str().find("Running"), std::string::npos);
}

TEST(ParaverTest, DeterministicOutput)
{
    const auto result = timelineResult();
    std::ostringstream a;
    std::ostringstream b;
    writeParaverTrace(result.timeline, a);
    writeParaverTrace(result.timeline, b);
    EXPECT_EQ(a.str(), b.str());
}

TEST(ProfileTest, HasRowPerRankPlusTotal)
{
    const auto result = timelineResult();
    const std::string out = renderStateProfile(result);
    std::size_t lines = 0;
    std::istringstream stream(out);
    std::string line;
    while (std::getline(stream, line))
        ++lines;
    // header + underline + one row per rank + "all" row
    EXPECT_EQ(lines,
              2u + static_cast<std::size_t>(
                       result.perRank.size()) +
                  1u);
    EXPECT_NE(out.find("all"), std::string::npos);
}

TEST(ProfileTest, ComparisonReportsSpeedupDirection)
{
    const auto bundle = testing::traceOf(
        2, testing::producerConsumer(256 * 1024, 1'000'000, 8));
    const auto slow = sim::simulate(
        bundle.traces, testing::platformAt(32.0));
    const auto fast = sim::simulate(
        bundle.traces, testing::platformAt(2048.0));

    const std::string out =
        renderComparison("slow", slow, "fast", fast);
    EXPECT_NE(out.find("faster"), std::string::npos);

    const std::string reverse =
        renderComparison("fast", fast, "slow", slow);
    EXPECT_NE(reverse.find("slower"), std::string::npos);
}

} // namespace
} // namespace ovlsim::viz
