/**
 * @file
 * Dynamic platform scenarios: the event-list format, scenario
 * compilation, the LinkNetwork degradation seam and the engine's
 * failure semantics.
 *
 * Key contracts pinned here:
 *  - exact degrade/recover round trips: a flow degraded to half
 *    capacity and recovered finishes at precisely the undegraded
 *    time plus the capacity lost, on both the LinkNetwork seam and
 *    the full engine path,
 *  - fail-stop produces a structured FailureDiagnosis naming the
 *    event and every unfinished rank,
 *  - reroute conserves per-link occupancy while migrating in-flight
 *    flows, and is fatal where the topology has no diversity,
 *  - stall + recover completes with no lost bytes; an unrecovered
 *    stall deadlocks with the scenario named in the diagnosis,
 *  - a scenario-free or not-yet-fired scenario leaves the replay
 *    untouched (the bit-identity seam),
 *  - degradedSweep campaigns are bit-identical across thread counts,
 *  - platform files reject duplicate keys and name the file and
 *    line in every parse error (the scenario_file key included).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <queue>
#include <sstream>
#include <string>
#include <vector>

#include "core/analysis.hh"
#include "helpers.hh"
#include "net/network.hh"
#include "net/topology.hh"
#include "scen/scenario.hh"
#include "sim/engine.hh"
#include "sim/platform_file.hh"
#include "util/counter_rng.hh"

namespace ovlsim {
namespace {

using net::LinkNetwork;
using scen::FailSemantics;
using scen::ScenarioConfig;
using scen::ScenarioEvent;
using scen::ScenEventKind;
using scen::ScenTarget;
using testing::expectIdentical;

ScenarioEvent
degradeAll(double us, double bw, double lat = 1.0)
{
    ScenarioEvent ev;
    ev.time = SimTime::fromUs(us);
    ev.kind = ScenEventKind::degrade;
    ev.target = ScenTarget::all;
    ev.bandwidthFactor = bw;
    ev.latencyFactor = lat;
    return ev;
}

ScenarioEvent
recoverAll(double us)
{
    ScenarioEvent ev;
    ev.time = SimTime::fromUs(us);
    ev.kind = ScenEventKind::recover;
    ev.target = ScenTarget::all;
    return ev;
}

ScenarioEvent
failEvent(double us, ScenTarget target, int a, int b,
          FailSemantics semantics)
{
    ScenarioEvent ev;
    ev.time = SimTime::fromUs(us);
    ev.kind = ScenEventKind::fail;
    ev.target = target;
    ev.nodeA = a;
    ev.nodeB = b;
    ev.semantics = semantics;
    return ev;
}

ScenarioEvent
recoverEvent(double us, ScenTarget target, int a, int b = -1)
{
    ScenarioEvent ev;
    ev.time = SimTime::fromUs(us);
    ev.kind = ScenEventKind::recover;
    ev.target = target;
    ev.nodeA = a;
    ev.nodeB = b;
    return ev;
}

ScenarioEvent
backgroundFlow(double us, int src, int dst, Bytes bytes)
{
    ScenarioEvent ev;
    ev.time = SimTime::fromUs(us);
    ev.kind = ScenEventKind::background;
    ev.target = ScenTarget::route;
    ev.nodeA = src;
    ev.nodeB = dst;
    ev.bytes = bytes;
    return ev;
}

TEST(ScenNamesTest, RoundTrip)
{
    for (const auto semantics :
         {FailSemantics::failStop, FailSemantics::stall,
          FailSemantics::reroute}) {
        EXPECT_EQ(scen::failSemanticsFromName(
                      scen::failSemanticsName(semantics)),
                  semantics);
    }
    EXPECT_THROW(scen::failSemanticsFromName("explode"),
                 FatalError);
}

TEST(ScenParserTest, RoundTripPreservesEvents)
{
    ScenarioConfig config;
    config.events.push_back(degradeAll(10.0, 0.5, 2.0));
    config.events.push_back(recoverAll(20.0));
    config.events.push_back(failEvent(5.0, ScenTarget::link, 0, 3,
                                      FailSemantics::stall));
    config.events.push_back(
        failEvent(7.0, ScenTarget::node, 2, -1,
                  FailSemantics::failStop));
    config.events.push_back(backgroundFlow(1.0, 0, 7, 1 << 20));
    config.validate();

    std::stringstream text;
    scen::writeScenario(config, text);
    const ScenarioConfig back = scen::readScenario(text);
    EXPECT_EQ(back.events, config.events);
}

/**
 * Fuzzed write -> read round trip: 200 random scenarios drawn from
 * a counter-based RNG (one substream per iteration, so a failure
 * reproduces from its iteration index alone) must re-read to the
 * exact event list — arbitrary ns-clock times, full-precision
 * degrade factors and every target/kind/semantics combination.
 */
TEST(ScenParserTest, FuzzedRoundTripPreservesEvents)
{
    const CounterRng root(0x5eed, 0);
    for (std::uint64_t iter = 0; iter < 200; ++iter) {
        CounterRng rng = root.substream(iter);
        ScenarioConfig config;
        const int count = static_cast<int>(rng.nextBelow(8)) + 1;
        for (int i = 0; i < count; ++i) {
            ScenarioEvent ev;
            ev.time = SimTime::fromNs(static_cast<std::int64_t>(
                rng.nextBelow(1'000'000'000)));
            switch (rng.nextBelow(4)) {
              case 0:
                ev.target = ScenTarget::all;
                break;
              case 1:
                ev.target = ScenTarget::node;
                ev.nodeA = static_cast<int>(rng.nextBelow(64));
                break;
              case 2:
                ev.target = ScenTarget::route;
                break;
              default:
                ev.target = ScenTarget::link;
                break;
            }
            if (ev.target == ScenTarget::route ||
                ev.target == ScenTarget::link) {
                ev.nodeA = static_cast<int>(rng.nextBelow(64));
                do {
                    ev.nodeB = static_cast<int>(rng.nextBelow(64));
                } while (ev.nodeB == ev.nodeA);
            }
            switch (rng.nextBelow(4)) {
              case 0:
                ev.kind = ScenEventKind::degrade;
                ev.bandwidthFactor = rng.nextDouble(1e-6, 4.0);
                ev.latencyFactor = rng.nextDouble(1e-6, 4.0);
                break;
              case 1:
                ev.kind = ScenEventKind::recover;
                break;
              case 2:
                ev.kind = ScenEventKind::fail;
                ev.semantics = static_cast<FailSemantics>(
                    rng.nextBelow(3));
                break;
              default:
                // Background flows are always route-scoped pairs.
                ev.kind = ScenEventKind::background;
                ev.target = ScenTarget::route;
                ev.nodeA = static_cast<int>(rng.nextBelow(64));
                do {
                    ev.nodeB = static_cast<int>(rng.nextBelow(64));
                } while (ev.nodeB == ev.nodeA);
                ev.bytes =
                    static_cast<Bytes>(rng.nextBelow(1 << 24)) + 1;
                break;
            }
            config.events.push_back(ev);
        }
        config.validate();

        std::stringstream text;
        scen::writeScenario(config, text);
        const ScenarioConfig back = scen::readScenario(text);
        EXPECT_EQ(back.events, config.events) << "iteration " << iter;
    }
}

TEST(ScenParserTest, ErrorsNameSourceAndLine)
{
    const auto expectError = [](const std::string &text,
                                const std::string &needle) {
        std::istringstream in(text);
        try {
            scen::readScenario(in, "test.scen");
            FAIL() << "expected a parse error for: " << text;
        } catch (const FatalError &err) {
            EXPECT_NE(std::string(err.what()).find(needle),
                      std::string::npos)
                << err.what();
        }
    };
    expectError("# fine\nat 5 degrade all bw\n",
                "test.scen line 2");
    expectError("at 5 explode all\n", "test.scen line 1");
    expectError("degrade all bw 0.5\n", "test.scen line 1");
}

TEST(ScenParserTest, ValidateRejectsNonsense)
{
    ScenarioConfig zero;
    zero.events.push_back(degradeAll(1.0, 0.0));
    EXPECT_THROW(zero.validate(), FatalError);

    ScenarioConfig empty;
    empty.events.push_back(backgroundFlow(1.0, 0, 1, 0));
    EXPECT_THROW(empty.validate(), FatalError);

    ScenarioConfig loop;
    loop.events.push_back(backgroundFlow(1.0, 2, 2, 4096));
    EXPECT_THROW(loop.validate(), FatalError);

    ScenarioConfig pair;
    pair.events.push_back(failEvent(1.0, ScenTarget::link, 3, 3,
                                    FailSemantics::stall));
    EXPECT_THROW(pair.validate(), FatalError);
}

TEST(ScenCompileTest, MatchesRecoversByScope)
{
    ScenarioConfig config;
    config.events.push_back(degradeAll(10.0, 0.5));
    config.events.push_back(recoverAll(20.0));
    config.events.push_back(degradeAll(30.0, 0.25));
    const auto compiled =
        scen::compileScenario(config, nullptr, 4);
    ASSERT_EQ(compiled.eventCount(), 3u);
    EXPECT_EQ(compiled.matchOf(0), 1u);
    EXPECT_EQ(compiled.matchOf(1), 0u);
    EXPECT_EQ(compiled.matchOf(2), scen::CompiledScenario::npos);
    EXPECT_EQ(compiled.recoveryTimeOf(0).ns(), 20'000);
    EXPECT_EQ(compiled.recoveryTimeOf(2), SimTime::max());
}

TEST(ScenCompileTest, RejectsNonsense)
{
    // A recover with nothing to undo.
    ScenarioConfig dangling;
    dangling.events.push_back(recoverAll(5.0));
    EXPECT_THROW(scen::compileScenario(dangling, nullptr, 4),
                 FatalError);

    // Recovering a fail-stop: the replay is already gone.
    ScenarioConfig undead;
    undead.events.push_back(failEvent(1.0, ScenTarget::node, 0, -1,
                                      FailSemantics::failStop));
    undead.events.push_back(recoverEvent(2.0, ScenTarget::node, 0));
    EXPECT_THROW(scen::compileScenario(undead, nullptr, 4),
                 FatalError);

    // Reroute needs a routed fabric, not the flat bus.
    ScenarioConfig flat;
    flat.events.push_back(failEvent(1.0, ScenTarget::node, 0, -1,
                                    FailSemantics::reroute));
    EXPECT_THROW(scen::compileScenario(flat, nullptr, 4),
                 FatalError);

    // Out-of-range nodes are fatal at compile, not at replay.
    ScenarioConfig range;
    range.events.push_back(failEvent(1.0, ScenTarget::node, 9, -1,
                                     FailSemantics::stall));
    EXPECT_THROW(scen::compileScenario(range, nullptr, 4),
                 FatalError);
}

TEST(ScenCompileTest, ResolvesLinkSetsAgainstTheTopology)
{
    const auto topo =
        net::compileTopology(net::topologies::fatTree(2), 4);

    ScenarioConfig config;
    config.events.push_back(degradeAll(1.0, 0.5));
    config.events.push_back(
        failEvent(2.0, ScenTarget::node, 0, -1,
                  FailSemantics::stall));
    config.events.push_back(failEvent(3.0, ScenTarget::link, 0, 2,
                                      FailSemantics::stall));
    config.events.push_back(failEvent(4.0, ScenTarget::route, 0, 2,
                                      FailSemantics::stall));
    const auto compiled = scen::compileScenario(config, &topo, 4);

    // `all` covers the whole fabric.
    EXPECT_EQ(compiled.linksOf(0).size(), topo.linkCount());
    // `node` is exactly the NIC links: host links touching node 0.
    ASSERT_FALSE(compiled.linksOf(1).empty());
    for (const std::uint32_t link : compiled.linksOf(1))
        EXPECT_TRUE(topo.isHostLink(link)) << "link " << link;
    // `link` keeps only the fabric legs of the route...
    ASSERT_FALSE(compiled.linksOf(2).empty());
    for (const std::uint32_t link : compiled.linksOf(2))
        EXPECT_FALSE(topo.isHostLink(link)) << "link " << link;
    // ...while `route` includes the NICs too.
    EXPECT_EQ(compiled.linksOf(3).size(), topo.route(0, 2).size());
    EXPECT_GT(compiled.linksOf(3).size(),
              compiled.linksOf(2).size());

    // Nodes under one switch have no fabric links between them:
    // a `link` target there is a scenario bug worth naming.
    ScenarioConfig sibling;
    sibling.events.push_back(
        failEvent(1.0, ScenTarget::link, 0, 1,
                  FailSemantics::stall));
    EXPECT_THROW(scen::compileScenario(sibling, &topo, 4),
                 FatalError);
}

/**
 * The LinkNetwork degradation seam, driven the way the engine
 * drives it: 1000 MB/s = 1 B/ns, one 1000-byte flow 0 -> 1.
 * Degrading every link to half capacity over [200, 400) ns costs
 * the flow exactly the 100 bytes it could not move: finish 1000 ->
 * 1100 ns. A flow admitted after recovery is back to the exact
 * undegraded finish time.
 */
TEST(LinkNetworkScenTest, DegradeRecoverRoundTripIsExact)
{
    const auto topo =
        net::compileTopology(net::topologies::fatTree(2), 4);
    LinkNetwork net;
    net.configure(&topo, 1000.0);

    const SimTime armed =
        net.start(0, 0, 1, 1000, SimTime::zero());
    EXPECT_EQ(armed.ns(), 1000);

    // Slowdowns are lazy: no reschedule until the stale event.
    for (std::uint32_t l = 0; l < topo.linkCount(); ++l)
        net.setLinkScale(l, 0.5);
    net.applyScales(SimTime::fromNs(200));
    EXPECT_TRUE(net.pendingReschedules().empty());

    // Recovery at 400 is a speedup, but the armed event at 1000
    // still precedes the corrected finish, so the re-arm waits for
    // the stale event too.
    for (std::uint32_t l = 0; l < topo.linkCount(); ++l)
        net.setLinkScale(l, 1.0);
    net.applyScales(SimTime::fromNs(400));
    EXPECT_TRUE(net.pendingReschedules().empty());

    auto check = net.onFinishEvent(0, SimTime::fromNs(1000));
    EXPECT_FALSE(check.done);
    ASSERT_TRUE(check.reschedule);
    EXPECT_EQ(check.retry.ns(), 1100);
    check = net.onFinishEvent(0, SimTime::fromNs(1100));
    EXPECT_TRUE(check.done);
    EXPECT_EQ(net.activeFlows(), 0u);

    // Post-recovery flows see the compiled capacity again.
    const SimTime after =
        net.start(1, 0, 1, 1000, SimTime::fromNs(2000));
    EXPECT_EQ(after.ns(), 3000);
}

/** A frozen route parks the flow; recovery re-arms it eagerly. */
TEST(LinkNetworkScenTest, FreezeParksAndRecoveryRearms)
{
    const auto topo =
        net::compileTopology(net::topologies::fatTree(2), 4);
    LinkNetwork net;
    net.configure(&topo, 1000.0);

    const SimTime armed =
        net.start(0, 0, 1, 1000, SimTime::zero());
    for (std::uint32_t l = 0; l < topo.linkCount(); ++l)
        net.setLinkScale(l, 0.0);
    net.applyScales(SimTime::fromNs(100));

    // The stale event fires into the freeze: park, no reschedule.
    auto check = net.onFinishEvent(0, armed);
    EXPECT_FALSE(check.done);
    EXPECT_FALSE(check.reschedule);
    EXPECT_EQ(check.retry, SimTime::max());

    // A flow admitted during the freeze parks immediately.
    EXPECT_EQ(net.start(1, 2, 3, 500, SimTime::fromNs(1200)),
              SimTime::max());

    // Recovery re-arms both: 900 remaining bytes of flow 0 and all
    // 500 of flow 1, both at full rate again.
    for (std::uint32_t l = 0; l < topo.linkCount(); ++l)
        net.setLinkScale(l, 1.0);
    net.applyScales(SimTime::fromNs(2000));
    const auto pending = net.pendingReschedules();
    ASSERT_EQ(pending.size(), 2u);
    for (const auto &[id, finish] : pending) {
        if (id == 0)
            EXPECT_EQ(finish.ns(), 2900);
        else
            EXPECT_EQ(finish.ns(), 2500);
    }
    net.clearPendingReschedules();
    EXPECT_TRUE(net.onFinishEvent(0, SimTime::fromNs(2900)).done);
    EXPECT_TRUE(net.onFinishEvent(1, SimTime::fromNs(2500)).done);
    EXPECT_EQ(net.totalLoad(), 0u);
}

/**
 * Killing the direct ring link migrates the in-flight flow onto
 * the surviving detour, conserving per-link occupancy: the summed
 * link loads equal the new route's length, and the dead link
 * carries nothing.
 */
TEST(LinkNetworkScenTest, RerouteConservesOccupancy)
{
    net::TopologyConfig ring = net::topologies::torus2d();
    ring.torusDims = {4};
    const auto topo = net::compileTopology(ring, 4);
    LinkNetwork net;
    net.configure(&topo, 1000.0);

    net.start(0, 0, 1, 100'000, SimTime::zero());
    const auto compiled = topo.route(0, 1);
    EXPECT_EQ(net.totalLoad(), compiled.size());

    // Kill the fabric leg of the direct 0 -> 1 route.
    std::uint32_t dead = 0;
    bool found = false;
    for (const std::uint32_t link : compiled) {
        if (!topo.isHostLink(link)) {
            dead = link;
            found = true;
            break;
        }
    }
    ASSERT_TRUE(found);
    net.setLinkScale(dead, 0.0);
    net.applyScales(SimTime::fromNs(100));
    const auto report = net.rerouteDeadLinks(SimTime::fromNs(100));
    EXPECT_TRUE(report.ok);

    // The detour goes the long way round the ring and the flow's
    // occupancy moved with it.
    const auto detour = net.routeOf(0, 1);
    EXPECT_GT(detour.size(), compiled.size());
    EXPECT_EQ(net.totalLoad(), detour.size());
    EXPECT_EQ(net.linkLoad(dead), 0u);
    for (const std::uint32_t link : detour)
        EXPECT_NE(link, dead);

    // The flow still finishes; drain it through its stale event.
    std::priority_queue<std::int64_t, std::vector<std::int64_t>,
                        std::greater<std::int64_t>>
        events;
    events.push(100'000);
    for (const auto &[id, finish] : net.pendingReschedules())
        events.push(finish.ns());
    net.clearPendingReschedules();
    bool done = false;
    while (!events.empty() && !done) {
        const std::int64_t now = events.top();
        events.pop();
        const auto check =
            net.onFinishEvent(0, SimTime::fromNs(now));
        done = check.done;
        if (!done && check.reschedule)
            events.push(check.retry.ns());
    }
    EXPECT_TRUE(done);
    EXPECT_EQ(net.totalLoad(), 0u);
}

TEST(LinkNetworkScenTest, RerouteFailsWithoutDiversity)
{
    // A NIC has no detour: killing node 0's injection link makes
    // every 0 -> * pair unroutable.
    const auto topo =
        net::compileTopology(net::topologies::fatTree(2), 4);
    LinkNetwork net;
    net.configure(&topo, 1000.0);
    const auto route = topo.route(0, 2);
    ASSERT_TRUE(topo.isHostLink(route.front()));
    net.setLinkScale(route.front(), 0.0);
    net.applyScales(SimTime::zero());
    const auto report = net.rerouteDeadLinks(SimTime::zero());
    EXPECT_FALSE(report.ok);
    EXPECT_EQ(report.src, 0);
}

/**
 * Bit-identity seam: a scenario whose first event fires after the
 * replay ends leaves every replay observable untouched, on the
 * flat bus and on a routed fabric alike.
 */
TEST(EngineScenTest, UnfiredScenarioLeavesTheReplayUntouched)
{
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(64 * 1024, 400'000, 3));
    for (const bool routed : {false, true}) {
        auto base = testing::platformAt(512.0);
        if (routed)
            base.topology = net::topologies::taperedFatTree(2);
        auto scenful = base;
        scenful.scenario.events.push_back(
            degradeAll(1e9, 0.5));

        const auto a = sim::simulate(bundle.traces, base);
        const auto b = sim::simulate(bundle.traces, scenful);
        EXPECT_EQ(a.totalTime.ns(), b.totalTime.ns())
            << "routed=" << routed;
        ASSERT_EQ(a.perRank.size(), b.perRank.size());
        for (std::size_t r = 0; r < a.perRank.size(); ++r) {
            EXPECT_EQ(a.perRank[r].endTime.ns(),
                      b.perRank[r].endTime.ns())
                << "rank " << r;
            EXPECT_EQ(a.perRank[r].bytesSent,
                      b.perRank[r].bytesSent)
                << "rank " << r;
        }
    }
}

/**
 * Flat-bus degrade semantics are analytic: the multiplier is
 * sampled at transfer begin. A half-capacity degrade active from
 * t = 0 doubles the 1 MB serialization exactly (1 ms extra at
 * 1000 MB/s); one that starts after the transfer began changes
 * nothing.
 */
TEST(EngineScenTest, FlatDegradeSamplesAtTransferBegin)
{
    const auto bundle = testing::traceOf(
        2, testing::producerConsumer(1'000'000, 0, 1));
    const auto base = testing::platformAt(1000.0);
    const SimTime nominal =
        sim::simulate(bundle.traces, base).totalTime;

    auto degraded = base;
    degraded.scenario.events.push_back(degradeAll(0.0, 0.5));
    EXPECT_EQ(
        sim::simulate(bundle.traces, degraded).totalTime.ns(),
        nominal.ns() + 1'000'000);

    auto late = base;
    late.scenario.events.push_back(degradeAll(100.0, 0.5));
    late.scenario.events.push_back(recoverAll(200.0));
    EXPECT_EQ(sim::simulate(bundle.traces, late).totalTime.ns(),
              nominal.ns());
}

/**
 * A flat-bus stall freezes the payload for exactly the window: the
 * 10 ms serialization (1 MB at 100 MB/s) crosses a [1 ms, 3 ms)
 * stall and finishes 2 ms late, with every byte accounted for.
 */
TEST(EngineScenTest, FlatStallShiftsTheFinishByTheWindow)
{
    const auto bundle = testing::traceOf(
        2, testing::producerConsumer(1'000'000, 0, 1));
    const auto base = testing::platformAt(100.0);
    const auto nominal = sim::simulate(bundle.traces, base);

    auto stalled = base;
    stalled.scenario.events.push_back(failEvent(
        1000.0, ScenTarget::all, -1, -1, FailSemantics::stall));
    stalled.scenario.events.push_back(recoverAll(3000.0));
    const auto result = sim::simulate(bundle.traces, stalled);
    EXPECT_EQ(result.totalTime.ns(),
              nominal.totalTime.ns() + 2'000'000);
    ASSERT_EQ(result.perRank.size(), nominal.perRank.size());
    for (std::size_t r = 0; r < result.perRank.size(); ++r) {
        EXPECT_EQ(result.perRank[r].bytesSent,
                  nominal.perRank[r].bytesSent)
            << "rank " << r;
    }
}

/**
 * The same round trip through the fluid model: a [200 us, 400 us)
 * full freeze on a routed fabric shifts the 1 ms flow (1 MB at
 * 1000 MB/s) out by exactly the window, and recovery loses no
 * bytes.
 */
TEST(EngineScenTest, NetStallRoundTripLosesNoBytes)
{
    const auto bundle = testing::traceOf(
        2, testing::producerConsumer(1'000'000, 0, 1));
    auto base = testing::platformAt(1000.0);
    base.topology = net::topologies::fatTree(4);
    const auto nominal = sim::simulate(bundle.traces, base);

    auto stalled = base;
    stalled.scenario.events.push_back(failEvent(
        200.0, ScenTarget::all, -1, -1, FailSemantics::stall));
    stalled.scenario.events.push_back(recoverAll(400.0));
    const auto result = sim::simulate(bundle.traces, stalled);
    EXPECT_EQ(result.totalTime.ns(),
              nominal.totalTime.ns() + 200'000);
    for (std::size_t r = 0; r < result.perRank.size(); ++r) {
        EXPECT_EQ(result.perRank[r].bytesSent,
                  nominal.perRank[r].bytesSent)
            << "rank " << r;
        EXPECT_EQ(result.perRank[r].messagesReceived,
                  nominal.perRank[r].messagesReceived)
            << "rank " << r;
    }

    // And the exact degrade analogue: half capacity over the same
    // window costs exactly the 100 us of lost progress.
    auto degraded = base;
    degraded.scenario.events.push_back(degradeAll(200.0, 0.5));
    degraded.scenario.events.push_back(recoverAll(400.0));
    EXPECT_EQ(
        sim::simulate(bundle.traces, degraded).totalTime.ns(),
        nominal.totalTime.ns() + 100'000);
}

TEST(EngineScenTest, FailStopReportsEveryUnfinishedRank)
{
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(64 * 1024, 1'000'000, 4));
    for (const bool routed : {false, true}) {
        auto platform = testing::platformAt(256.0);
        if (routed)
            platform.topology = net::topologies::fatTree(2);
        platform.scenario.events.push_back(
            failEvent(1.0, ScenTarget::node, 0, -1,
                      FailSemantics::failStop));
        try {
            sim::simulate(bundle.traces, platform);
            FAIL() << "fail-stop did not fire (routed="
                   << routed << ")";
        } catch (const scen::FailureError &err) {
            const auto &diagnosis = err.diagnosis();
            EXPECT_EQ(diagnosis.time.ns(), 1000);
            EXPECT_NE(diagnosis.event.find("fail-stop"),
                      std::string::npos);
            // Nobody finished after one microsecond: the diagnosis
            // must list all four ranks.
            ASSERT_EQ(diagnosis.blockedRanks.size(), 4u);
            for (Rank r = 0; r < 4; ++r)
                EXPECT_EQ(diagnosis.blockedRanks[r].rank, r);
            EXPECT_NE(diagnosis.toString().find("unfinished"),
                      std::string::npos);
            EXPECT_NE(std::string(err.what()).find("fail-stop"),
                      std::string::npos);
        }
    }
}

TEST(EngineScenTest, UnrecoveredStallDeadlocksWithDiagnosis)
{
    const auto bundle = testing::traceOf(
        2, testing::producerConsumer(1'000'000, 0, 1));
    auto platform = testing::platformAt(1000.0);
    platform.scenario.events.push_back(failEvent(
        0.0, ScenTarget::all, -1, -1, FailSemantics::stall));
    try {
        sim::simulate(bundle.traces, platform);
        FAIL() << "expected the stalled replay to deadlock";
    } catch (const scen::FailureError &) {
        FAIL() << "a stall is not a fail-stop";
    } catch (const FatalError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("deadlocked"), std::string::npos)
            << what;
        EXPECT_NE(what.find("never recovers"), std::string::npos)
            << what;
    }
}

TEST(EngineScenTest, RerouteRunsToCompletion)
{
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(64 * 1024, 400'000, 4));
    net::TopologyConfig ring = net::topologies::torus2d();
    ring.torusDims = {4};
    auto base = testing::platformAt(512.0);
    base.topology = ring;
    const auto nominal = sim::simulate(bundle.traces, base);

    auto rerouted = base;
    rerouted.scenario.events.push_back(
        failEvent(10.0, ScenTarget::link, 0, 1,
                  FailSemantics::reroute));
    const auto a = sim::simulate(bundle.traces, rerouted);
    // Traffic detours the long way round the ring: never faster,
    // and every byte still arrives.
    EXPECT_GE(a.totalTime.ns(), nominal.totalTime.ns());
    for (std::size_t r = 0; r < a.perRank.size(); ++r) {
        EXPECT_EQ(a.perRank[r].bytesSent,
                  nominal.perRank[r].bytesSent)
            << "rank " << r;
    }
    expectIdentical(a, sim::simulate(bundle.traces, rerouted));

    // Recovery restores the compiled routes mid-run.
    auto recovered = rerouted;
    recovered.scenario.events.push_back(
        recoverEvent(400.0, ScenTarget::link, 0, 1));
    const auto b = sim::simulate(bundle.traces, recovered);
    expectIdentical(b, sim::simulate(bundle.traces, recovered));
}

TEST(EngineScenTest, RerouteWithoutDiversityIsFatal)
{
    const auto bundle = testing::traceOf(
        2, testing::producerConsumer(256 * 1024, 100'000));
    auto platform = testing::platformAt(512.0);
    platform.topology = net::topologies::fatTree(2);
    // Killing a NIC leaves no surviving route to reroute onto.
    platform.scenario.events.push_back(
        failEvent(1.0, ScenTarget::node, 0, -1,
                  FailSemantics::reroute));
    try {
        sim::simulate(bundle.traces, platform);
        FAIL() << "expected the reroute to fail";
    } catch (const FatalError &err) {
        EXPECT_NE(
            std::string(err.what()).find("no surviving route"),
            std::string::npos)
            << err.what();
    }
}

TEST(EngineScenTest, BackgroundFlowsDelayTheApp)
{
    const auto bundle = testing::traceOf(
        2, testing::producerConsumer(1'000'000, 500'000, 1));
    for (const bool routed : {false, true}) {
        auto base = testing::platformAt(256.0);
        if (routed)
            base.topology = net::topologies::taperedFatTree(2);
        const auto nominal = sim::simulate(bundle.traces, base);

        auto busy = base;
        busy.scenario.events.push_back(
            backgroundFlow(0.001, 0, 1, 4 << 20));
        const auto result = sim::simulate(bundle.traces, busy);
        EXPECT_GT(result.totalTime.ns(), nominal.totalTime.ns())
            << "routed=" << routed;
        expectIdentical(result, sim::simulate(bundle.traces, busy));
    }
}

/**
 * A wedged algorithmic collective names the schedule step: freeze
 * the whole fabric under an allreduce and the deadlock diagnosis
 * must say which step of which operation never completed.
 */
TEST(EngineScenTest, CollectiveWedgeNamesTheScheduleStep)
{
    const auto bundle = testing::traceOf(
        4, [](vm::VmContext &ctx) {
            ctx.compute(10'000);
            ctx.allReduce(256 * 1024);
        });
    auto platform = testing::platformAt(1000.0);
    platform.topology = net::topologies::fatTree(4);
    platform.collectiveModel = coll::CollectiveModel::algorithmic;
    platform.scenario.events.push_back(failEvent(
        0.0, ScenTarget::all, -1, -1, FailSemantics::stall));
    try {
        sim::simulate(bundle.traces, platform);
        FAIL() << "expected the frozen collective to deadlock";
    } catch (const FatalError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("deadlocked"), std::string::npos)
            << what;
        EXPECT_NE(what.find("collective=allreduce"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("step="), std::string::npos) << what;
        EXPECT_NE(what.find("never recovers"), std::string::npos)
            << what;
    }
}

/** Bit-exact equality of two sweep results. */
void
expectIdenticalSweep(const core::SweepResult &a,
                     const core::SweepResult &b)
{
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_EQ(a.points[i].originalTime.ns(),
                  b.points[i].originalTime.ns())
            << "point " << i;
        ASSERT_EQ(a.points[i].variantTimes.size(),
                  b.points[i].variantTimes.size());
        for (std::size_t v = 0;
             v < a.points[i].variantTimes.size(); ++v) {
            EXPECT_EQ(a.points[i].variantTimes[v].ns(),
                      b.points[i].variantTimes[v].ns())
                << "point " << i << " variant " << v;
        }
    }
}

TEST(ScenSweepTest, DegradedSweepMatchesSequentialAcrossThreads)
{
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(64 * 1024, 400'000, 3));
    auto base = testing::platformAt(256.0);
    base.topology = net::topologies::taperedFatTree(2);
    const std::vector<double> grid = {64.0, 512.0};
    const auto variants = core::standardVariants(4);

    std::vector<core::ScenarioSpec> scenarios;
    scenarios.push_back({"nominal", {}});
    {
        ScenarioConfig mid;
        mid.events.push_back(degradeAll(50.0, 0.25, 2.0));
        mid.events.push_back(recoverAll(500.0));
        scenarios.push_back({"mid-degrade", mid});
    }
    {
        ScenarioConfig bg;
        bg.events.push_back(backgroundFlow(10.0, 0, 2, 1 << 20));
        bg.events.push_back(backgroundFlow(20.0, 1, 3, 1 << 20));
        scenarios.push_back({"background", bg});
    }

    const auto sequential = core::degradedSweep(
        bundle, base, grid, variants, scenarios, 1);
    ASSERT_EQ(sequential.sweeps.size(), scenarios.size());
    // The degraded scenarios actually bite: at least one sweep
    // point must be slower than its nominal twin.
    EXPECT_GT(sequential.sweeps[1].points[0].originalTime.ns(),
              sequential.sweeps[0].points[0].originalTime.ns());

    for (const int threads : {2, 8}) {
        const auto parallel = core::degradedSweep(
            bundle, base, grid, variants, scenarios, threads);
        ASSERT_EQ(parallel.sweeps.size(), sequential.sweeps.size())
            << threads << " threads";
        for (std::size_t s = 0; s < parallel.sweeps.size(); ++s)
            expectIdenticalSweep(parallel.sweeps[s],
                                 sequential.sweeps[s]);
    }
}

TEST(ScenPlatformFileTest, DuplicateKeysAreRejected)
{
    std::istringstream in(
        "bandwidth_mbps = 100\nlatency_us = 4\n"
        "bandwidth_mbps = 200\n");
    try {
        sim::readPlatformConfig(in, "dup.platform");
        FAIL() << "expected the duplicate key to be fatal";
    } catch (const FatalError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("dup.platform line 3"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("duplicate key 'bandwidth_mbps'"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("first set on line 1"),
                  std::string::npos)
            << what;
    }
}

TEST(ScenPlatformFileTest, ErrorsNameFileAndLine)
{
    const std::string path =
        ::testing::TempDir() + "scen_bad.platform";
    {
        std::ofstream os(path);
        os << "# comment\nbandwidth_mbps = 100\nnonsense\n";
    }
    try {
        sim::readPlatformConfigFile(path);
        FAIL() << "expected the malformed line to be fatal";
    } catch (const FatalError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find(path), std::string::npos) << what;
        EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    }
    std::remove(path.c_str());
}

TEST(ScenPlatformFileTest, ScenarioFileKeyLoadsAndRoundTrips)
{
    const std::string scenPath =
        ::testing::TempDir() + "scen_events.scen";
    {
        ScenarioConfig config;
        config.events.push_back(degradeAll(10.0, 0.5, 2.0));
        config.events.push_back(recoverAll(20.0));
        std::ofstream os(scenPath);
        scen::writeScenario(config, os);
    }

    std::istringstream in("bandwidth_mbps = 512\nscenario_file = " +
                          scenPath + "\n");
    const auto config = sim::readPlatformConfig(in, "scenful");
    ASSERT_EQ(config.scenario.events.size(), 2u);
    EXPECT_EQ(config.scenario.sourcePath, scenPath);
    EXPECT_EQ(config.scenario.events[0].bandwidthFactor, 0.5);

    // The writer re-emits the reference and the round trip holds.
    std::stringstream text;
    sim::writePlatformConfig(config, text);
    EXPECT_NE(text.str().find("scenario_file = " + scenPath),
              std::string::npos);
    const auto back =
        sim::readPlatformConfig(text, "round-trip");
    EXPECT_EQ(back.scenario, config.scenario);

    // A dangling reference is fatal and names the referencing line.
    std::istringstream bad(
        "scenario_file = /nonexistent/evil.scen\n");
    try {
        sim::readPlatformConfig(bad, "dangling");
        FAIL() << "expected the missing scenario file to be fatal";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("dangling line 1"),
                  std::string::npos)
            << err.what();
    }
    std::remove(scenPath.c_str());
}

TEST(ScenEngineDeterminismTest, ScenariosReplayDeterministically)
{
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(128 * 1024, 400'000, 4));
    auto base = testing::platformAt(512.0);
    base.topology = net::topologies::taperedFatTree(2);
    base.scenario.events.push_back(degradeAll(20.0, 0.25));
    base.scenario.events.push_back(recoverAll(200.0));
    base.scenario.events.push_back(
        backgroundFlow(50.0, 0, 3, 2 << 20));

    const auto reference = sim::simulate(bundle.traces, base);
    sim::ReplaySession session;
    for (int repeat = 0; repeat < 3; ++repeat) {
        expectIdentical(reference,
                        sim::simulate(bundle.traces, base));
        expectIdentical(reference,
                        session.run(bundle.traces, base));
    }
}

} // namespace
} // namespace ovlsim
