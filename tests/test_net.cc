/**
 * @file
 * The topology-aware network subsystem: route compilation, the
 * link-contention model's invariants, platform-file coverage of the
 * topology fields, and the engine seam.
 *
 * Key contracts pinned here:
 *  - per-link occupancy conservation: while flows are in flight the
 *    summed link loads equal the summed route lengths, and a
 *    drained network holds zero load,
 *  - route symmetry: route(a, b) and route(b, a) traverse the same
 *    number of links in every compiled topology,
 *  - bus-model bit-identity: a platform carrying the default
 *    flat-bus topology replays exactly like the pre-topology
 *    engine path (same struct, same code path — pinned against the
 *    compile-on-entry reference),
 *  - uncontended equivalence: a lone transfer through a
 *    full-bisection fabric costs exactly the flat model's
 *    serialization + latency,
 *  - determinism: every topology replays bit-identically across
 *    repeats, sessions and the one-shot entry point.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <sstream>
#include <vector>

#include "core/analysis.hh"
#include "helpers.hh"
#include "net/network.hh"
#include "net/topology.hh"
#include "sim/engine.hh"
#include "sim/platform_file.hh"

namespace ovlsim {
namespace {

using net::CompiledTopology;
using net::LinkNetwork;
using net::TopologyConfig;
using net::TopologyKind;
using testing::expectIdentical;

TEST(TopologyKindTest, NamesRoundTrip)
{
    for (const auto kind :
         {TopologyKind::flatBus, TopologyKind::fatTree,
          TopologyKind::torus, TopologyKind::dragonfly}) {
        EXPECT_EQ(net::topologyKindFromName(
                      net::topologyKindName(kind)),
                  kind);
    }
    EXPECT_THROW(net::topologyKindFromName("hypercube"),
                 FatalError);
}

TEST(TopologyConfigTest, ValidateRejectsNonsense)
{
    TopologyConfig tree = net::topologies::fatTree();
    tree.fatTreeRadix = 3; // not a power of two
    EXPECT_THROW(tree.validate(), FatalError);
    tree.fatTreeRadix = 1;
    EXPECT_THROW(tree.validate(), FatalError);
    tree = net::topologies::fatTree();
    tree.fatTreeTaper = 0.0;
    EXPECT_THROW(tree.validate(), FatalError);

    TopologyConfig torus = net::topologies::torus2d();
    torus.torusDims = {4, 0};
    EXPECT_THROW(torus.validate(), FatalError);

    TopologyConfig fly = net::topologies::dragonfly();
    fly.dragonflyRoutersPerGroup = 0;
    EXPECT_THROW(fly.validate(), FatalError);

    TopologyConfig bad = net::topologies::fatTree();
    bad.linkBandwidthMBps = -1.0;
    EXPECT_THROW(bad.validate(), FatalError);
    bad = net::topologies::fatTree();
    bad.hopLatencyUs = -0.5;
    EXPECT_THROW(bad.validate(), FatalError);
}

TEST(TopologyConfigTest, PlatformValidateCoversTopology)
{
    auto platform = sim::platforms::topologyCluster(
        net::topologies::fatTree());
    platform.topology.fatTreeRadix = 6;
    EXPECT_THROW(platform.validate(), FatalError);
}

TEST(PlatformFileTopologyTest, RoundTripPreservesTopology)
{
    auto config = sim::platforms::defaultCluster(2);
    config.topology = net::topologies::taperedFatTree(8, 0.25);
    config.topology.linkBandwidthMBps = 512.0;
    config.topology.hopLatencyUs = 0.75;

    std::stringstream stream;
    sim::writePlatformConfig(config, stream);
    const auto parsed = sim::readPlatformConfig(stream);
    EXPECT_TRUE(parsed.topology == config.topology);

    auto torus = sim::platforms::defaultCluster();
    torus.topology = net::topologies::torus2d();
    torus.topology.torusDims = {4, 2, 2};
    torus.topology.torusWrap = false;
    std::stringstream stream2;
    sim::writePlatformConfig(torus, stream2);
    EXPECT_TRUE(sim::readPlatformConfig(stream2).topology ==
                torus.topology);
}

TEST(PlatformFileTopologyTest, RejectsBadTopologyValues)
{
    std::stringstream unknown("topology = moebius-strip\n");
    EXPECT_THROW(sim::readPlatformConfig(unknown), FatalError);

    std::stringstream radix("topology = fat-tree\n"
                            "fat_tree_radix = 6\n");
    EXPECT_THROW(sim::readPlatformConfig(radix), FatalError);

    std::stringstream zerobw("topology = torus\n"
                             "link_bandwidth_mbps = 0\n");
    EXPECT_THROW(sim::readPlatformConfig(zerobw), FatalError);

    std::stringstream dims("topology = torus\n"
                           "torus_dims = 4x0\n");
    EXPECT_THROW(sim::readPlatformConfig(dims), FatalError);
}

/** Route length of every ordered pair, for symmetry checks. */
void
expectRouteSymmetry(const CompiledTopology &topo)
{
    for (int a = 0; a < topo.nodes(); ++a) {
        for (int b = 0; b < topo.nodes(); ++b) {
            EXPECT_EQ(topo.route(a, b).size(),
                      topo.route(b, a).size())
                << "pair " << a << "<->" << b;
        }
    }
}

TEST(RouteCompilerTest, FatTreeRoutes)
{
    const auto topo = net::compileTopology(
        net::topologies::fatTree(2), 8);
    EXPECT_EQ(topo.nodes(), 8);
    // Same leaf: injection + reception only.
    EXPECT_EQ(topo.route(0, 1).size(), 2u);
    // Opposite halves of an 8-node radix-2 tree: 2 up, 2 down.
    EXPECT_EQ(topo.route(0, 7).size(), 6u);
    // Intra-node traffic never touches the network.
    EXPECT_TRUE(topo.route(3, 3).empty());
    expectRouteSymmetry(topo);
}

TEST(RouteCompilerTest, TorusRoutesUseShortestDirection)
{
    TopologyConfig config = net::topologies::torus2d();
    config.torusDims = {4};
    const auto topo = net::compileTopology(config, 4);
    // Ring of 4: 0 -> 1 is one hop (+ inject/eject), 0 -> 3 wraps
    // backwards in one hop, 0 -> 2 ties and takes two.
    EXPECT_EQ(topo.route(0, 1).size(), 3u);
    EXPECT_EQ(topo.route(0, 3).size(), 3u);
    EXPECT_EQ(topo.route(0, 2).size(), 4u);
    expectRouteSymmetry(topo);

    config.torusWrap = false;
    const auto mesh = net::compileTopology(config, 4);
    // Mesh: no wrap, 0 -> 3 walks the full line.
    EXPECT_EQ(mesh.route(0, 3).size(), 5u);
    expectRouteSymmetry(mesh);
}

TEST(RouteCompilerTest, DragonflyRoutes)
{
    TopologyConfig config = net::topologies::dragonfly();
    config.dragonflyGroups = 3;
    config.dragonflyRoutersPerGroup = 2;
    config.dragonflyNodesPerRouter = 2;
    const auto topo = net::compileTopology(config, 12);
    // Same router: inject + eject.
    EXPECT_EQ(topo.route(0, 1).size(), 2u);
    // Same group, different router: one local hop.
    EXPECT_EQ(topo.route(0, 2).size(), 3u);
    expectRouteSymmetry(topo);
    // Cross-group routes take at most local-global-local + NIC.
    for (int a = 0; a < 12; ++a) {
        for (int b = 0; b < 12; ++b) {
            if (a != b) {
                EXPECT_LE(topo.route(a, b).size(), 5u);
            }
        }
    }
}

TEST(RouteCompilerTest, AutoSizingCoversTheNodeCount)
{
    for (const int nodes : {1, 2, 5, 16, 33}) {
        const auto torus = net::compileTopology(
            net::topologies::torus2d(), nodes);
        const auto fly = net::compileTopology(
            net::topologies::dragonfly(), nodes);
        EXPECT_EQ(torus.nodes(), nodes);
        EXPECT_EQ(fly.nodes(), nodes);
    }
    // Explicit sizing that cannot host the machine is fatal.
    TopologyConfig small = net::topologies::torus2d();
    small.torusDims = {2, 2};
    EXPECT_THROW(net::compileTopology(small, 5), FatalError);
    TopologyConfig fly = net::topologies::dragonfly();
    fly.dragonflyGroups = 1;
    EXPECT_THROW(net::compileTopology(fly, 5), FatalError);
}

/**
 * Mini event loop over a LinkNetwork: drives every armed finish
 * event in time order, checking occupancy conservation throughout.
 */
struct NetHarness
{
    explicit NetHarness(const CompiledTopology &topo,
                        double base_mbps)
        : topo_(topo)
    {
        net.configure(&topo_, base_mbps);
    }

    void
    start(std::uint32_t id, int src, int dst, Bytes bytes,
          SimTime now)
    {
        expectedLoad += topo_.route(src, dst).size();
        const SimTime finish = net.start(id, src, dst, bytes, now);
        events.push({finish.ns(), id});
        EXPECT_EQ(net.totalLoad(), expectedLoad);
    }

    /** Run until drained; returns the completion time per flow id. */
    std::vector<std::pair<std::uint32_t, SimTime>>
    drain()
    {
        std::vector<std::pair<std::uint32_t, SimTime>> done;
        std::vector<std::uint32_t> finished;
        while (!events.empty()) {
            const auto [ns, id] = events.top();
            events.pop();
            // Leftover events of completed flows are dropped, the
            // way the engine's tfInNet flag drops them.
            if (std::find(finished.begin(), finished.end(), id) !=
                finished.end())
                continue;
            const SimTime now = SimTime::fromNs(ns);
            const auto check = net.onFinishEvent(id, now);
            if (!check.done) {
                if (check.reschedule)
                    events.push({check.retry.ns(), id});
                continue;
            }
            done.emplace_back(id, now);
            finished.push_back(id);
            for (const auto &[flow, finish] :
                 net.pendingReschedules())
                events.push({finish.ns(), flow});
            net.clearPendingReschedules();
        }
        EXPECT_EQ(net.activeFlows(), 0u);
        EXPECT_EQ(net.totalLoad(), 0u);
        return done;
    }

    const CompiledTopology &topo_;
    LinkNetwork net;
    std::uint64_t expectedLoad = 0;
    using Ev = std::pair<std::int64_t, std::uint32_t>;
    std::priority_queue<Ev, std::vector<Ev>, std::greater<Ev>>
        events;
};

TEST(LinkNetworkTest, OccupancyConservation)
{
    const auto topo = net::compileTopology(
        net::topologies::fatTree(2), 8);
    NetHarness h(topo, 1000.0); // 1 B/ns
    h.start(0, 0, 7, 64 * 1024, SimTime::zero());
    h.start(1, 1, 6, 32 * 1024, SimTime::fromNs(100));
    h.start(2, 4, 3, 16 * 1024, SimTime::fromNs(200));
    const auto done = h.drain();
    EXPECT_EQ(done.size(), 3u);
}

TEST(LinkNetworkTest, UncontendedFlowMatchesSerialization)
{
    // 1000 MB/s = 1 B/ns: a lone 4096-byte flow through a
    // full-bisection tree serializes in exactly 4096 ns.
    const auto topo = net::compileTopology(
        net::topologies::fatTree(2), 4);
    NetHarness h(topo, 1000.0);
    h.start(0, 0, 3, 4096, SimTime::zero());
    const auto done = h.drain();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].second.ns(), 4096);
}

TEST(LinkNetworkTest, SharedBottleneckHalvesTheRate)
{
    // Radix-2 tapered tree over 4 nodes: flows 0->2 and 1->3 both
    // cross the leaf0->root and root->leaf1 aggregate links, whose
    // taper-0.5 factor gives them exactly the base capacity. Two
    // equal flows admitted together must each take twice the lone
    // serialization; with full bisection (factor 2) they must not
    // contend at all.
    TopologyConfig tapered = net::topologies::taperedFatTree(2);
    const auto topo = net::compileTopology(tapered, 4);
    NetHarness both(topo, 1000.0);
    both.start(0, 0, 2, 4096, SimTime::zero());
    both.start(1, 1, 3, 4096, SimTime::zero());
    auto done = both.drain();
    ASSERT_EQ(done.size(), 2u);
    for (const auto &[id, finish] : done)
        EXPECT_EQ(finish.ns(), 8192) << "flow " << id;

    const auto full = net::compileTopology(
        net::topologies::fatTree(2), 4);
    NetHarness wide(full, 1000.0);
    wide.start(0, 0, 2, 4096, SimTime::zero());
    wide.start(1, 1, 3, 4096, SimTime::zero());
    done = wide.drain();
    ASSERT_EQ(done.size(), 2u);
    for (const auto &[id, finish] : done)
        EXPECT_EQ(finish.ns(), 4096) << "flow " << id;
}

TEST(LinkNetworkTest, CancelFreesOccupancyAndSpeedsSurvivors)
{
    // Two equal flows share the tapered bottleneck at 0.5 B/ns
    // each. Cancelling one at 2048 ns (resilience rollback seam)
    // must free exactly its route's occupancy and hand the survivor
    // the full link: 3072 bytes remain at 1 B/ns, finish at 5120.
    TopologyConfig tapered = net::topologies::taperedFatTree(2);
    const auto topo = net::compileTopology(tapered, 4);
    LinkNetwork net;
    net.configure(&topo, 1000.0);
    net.start(0, 0, 2, 4096, SimTime::zero());
    net.start(1, 1, 3, 4096, SimTime::zero());
    const std::uint64_t both =
        topo.route(0, 2).size() + topo.route(1, 3).size();
    EXPECT_EQ(net.totalLoad(), both);

    net.cancel(1, SimTime::fromNs(2048));
    EXPECT_EQ(net.activeFlows(), 1u);
    EXPECT_EQ(net.totalLoad(), topo.route(0, 2).size());
    // The survivor's stale armed event (4096, from its 1 B/ns
    // admission) already covers the speedup, so no reschedule is
    // emitted; firing it reports the corrected finish instead.
    EXPECT_TRUE(net.pendingReschedules().empty());
    const auto early = net.onFinishEvent(0, SimTime::fromNs(4096));
    EXPECT_FALSE(early.done);
    ASSERT_TRUE(early.reschedule);
    EXPECT_EQ(early.retry.ns(), 5120);

    const auto check =
        net.onFinishEvent(0, SimTime::fromNs(5120));
    EXPECT_TRUE(check.done);
    EXPECT_EQ(net.totalLoad(), 0u);
}

TEST(LinkNetworkTest, CancelAllDrainsTheNetwork)
{
    // A whole-replay rollback cancels everything in flight; the
    // network must come back drained and immediately reusable.
    const auto topo = net::compileTopology(
        net::topologies::fatTree(2), 8);
    LinkNetwork net;
    net.configure(&topo, 1000.0);
    net.start(0, 0, 7, 64 * 1024, SimTime::zero());
    net.start(1, 1, 6, 32 * 1024, SimTime::fromNs(100));
    net.start(2, 4, 3, 16 * 1024, SimTime::fromNs(200));
    EXPECT_EQ(net.activeFlows(), 3u);

    net.cancelAll(SimTime::fromNs(300));
    EXPECT_EQ(net.activeFlows(), 0u);
    EXPECT_EQ(net.totalLoad(), 0u);
    EXPECT_TRUE(net.pendingReschedules().empty());

    // Reuse after the rollback behaves like a fresh network.
    const SimTime finish =
        net.start(3, 0, 3, 4096, SimTime::fromNs(400));
    EXPECT_EQ(finish.ns(), 400 + 4096);
    const auto check = net.onFinishEvent(3, finish);
    EXPECT_TRUE(check.done);
    EXPECT_EQ(net.totalLoad(), 0u);
}

TEST(LinkNetworkTest, LateArrivalSlowsAndCompletionSpeedsUp)
{
    // One flow runs alone for 2048 ns, shares the fabric with a
    // second for its remaining 2048 bytes (at half rate: 4096 ns),
    // then the second finishes alone at full rate again:
    //   flow 0: 2048 + 4096 = 6144 ns total.
    //   flow 1: 2048 shared bytes + 2048 solo = 6144 + 2048.
    TopologyConfig tapered = net::topologies::taperedFatTree(2);
    const auto topo = net::compileTopology(tapered, 4);
    NetHarness h(topo, 1000.0);
    h.start(0, 0, 2, 4096, SimTime::zero());
    h.start(1, 1, 3, 4096, SimTime::fromNs(2048));
    const auto done = h.drain();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0].first, 0u);
    EXPECT_EQ(done[0].second.ns(), 6144);
    EXPECT_EQ(done[1].first, 1u);
    EXPECT_EQ(done[1].second.ns(), 8192);
}

TEST(EngineSeamTest, FlatBusTopologyIsBitIdentical)
{
    // A platform carrying an explicit flat-bus TopologyConfig is
    // the same struct as one that predates the field; both must
    // take the classic engine path and replay identically.
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(64 * 1024, 400'000, 5));
    const auto plain = testing::platformAt(256.0);
    auto tagged = plain;
    tagged.topology = net::topologies::flatBus();
    expectIdentical(simulate(bundle.traces, tagged),
                    simulate(bundle.traces, plain));
}

TEST(EngineSeamTest, UncontendedFatTreeMatchesFlatModel)
{
    // One lone remote message: link-shared serialization over a
    // full-bisection tree with zero hop latency degenerates to the
    // flat model's bytes/bandwidth + latency. 1000 MB/s = 1 B/ns
    // keeps both paths' integer rounding exact.
    const auto bundle = testing::traceOf(
        2, testing::producerConsumer(256 * 1024, 1'000'000));
    auto flat = testing::platformAt(1000.0);
    auto tree = flat;
    tree.topology = net::topologies::fatTree(4);
    const auto a = simulate(bundle.traces, flat);
    const auto b = simulate(bundle.traces, tree);
    EXPECT_EQ(a.totalTime.ns(), b.totalTime.ns());
}

TEST(EngineSeamTest, HopLatencyAddsPerHop)
{
    const auto bundle = testing::traceOf(
        2, testing::producerConsumer(256 * 1024, 1'000'000));
    auto tree = testing::platformAt(1000.0);
    tree.topology = net::topologies::fatTree(4);
    const auto base = simulate(bundle.traces, tree);
    // Nodes 0 and 1 share a radix-4 leaf: 2 links, 1 extra hop.
    tree.topology.hopLatencyUs = 3.0;
    const auto slowed = simulate(bundle.traces, tree);
    EXPECT_EQ(slowed.totalTime.ns() - base.totalTime.ns(),
              SimTime::fromUs(3.0).ns());
}

TEST(EngineSeamTest, ContentionNeverBeatsTheFlatModel)
{
    // The flat bus (unlimited buses) serializes every transfer at
    // full bandwidth; link sharing can only slow them down.
    const auto bundle = testing::traceOf(
        8, testing::ringExchange(128 * 1024, 200'000, 4));
    const auto flat = testing::platformAt(1000.0);
    const auto flat_time =
        simulate(bundle.traces, flat).totalTime;
    for (const auto &spec : core::standardTopologies()) {
        auto platform = flat;
        platform.topology = spec.topology;
        const auto result = simulate(bundle.traces, platform);
        EXPECT_GE(result.totalTime.ns(), flat_time.ns())
            << spec.name;
        EXPECT_GT(result.totalTime.ns(), 0) << spec.name;
    }
}

TEST(EngineSeamTest, TopologiesReplayDeterministically)
{
    const auto bundle = testing::traceOf(
        8, testing::ringExchange(96 * 1024, 300'000, 4));
    for (const auto &spec : core::standardTopologies()) {
        auto platform = testing::platformAt(512.0);
        platform.topology = spec.topology;
        const auto reference = simulate(bundle.traces, platform);
        // Repeats, the one-shot path and a reused session agree.
        expectIdentical(simulate(bundle.traces, platform),
                        reference);
        sim::ReplaySession session;
        expectIdentical(session.run(bundle.traces, platform),
                        reference);
        expectIdentical(session.run(bundle.traces, platform),
                        reference);
    }
}

TEST(EngineSeamTest, RendezvousOverTopology)
{
    // Rendezvous protocol (tiny eager threshold) across the
    // contention model: deterministic and deadlock-free. (A ring
    // of blocking rendezvous sends would deadlock on any model;
    // producer/consumer is the protocol-safe shape.)
    const auto bundle = testing::traceOf(
        2, testing::producerConsumer(256 * 1024, 800'000));
    auto platform = sim::platforms::rendezvousCluster(4 * 1024);
    platform.topology = net::topologies::taperedFatTree(2);
    const auto reference = simulate(bundle.traces, platform);
    EXPECT_GT(reference.totalTime.ns(), 0);
    sim::ReplaySession session;
    expectIdentical(session.run(bundle.traces, platform),
                    reference);
}

TEST(EngineSeamTest, SessionReusesAcrossTopologiesAndBandwidths)
{
    // One session sweeping platforms (the campaign pattern): the
    // compiled-topology cache must never leak state between runs.
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(48 * 1024, 350'000, 3));
    sim::ReplaySession session;
    for (const double bandwidth : {64.0, 1024.0}) {
        for (const auto &spec : core::standardTopologies()) {
            auto platform = testing::platformAt(bandwidth);
            platform.topology = spec.topology;
            expectIdentical(session.run(bundle.traces, platform),
                            simulate(bundle.traces, platform));
        }
    }
}

} // namespace
} // namespace ovlsim
