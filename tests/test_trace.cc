/**
 * @file
 * Unit tests for the trace model, serialization, validation and
 * linking.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "trace/link.hh"
#include "trace/record.hh"
#include "trace/trace.hh"
#include "trace/trace_io.hh"
#include "trace/trace_stats.hh"
#include "trace/validate.hh"
#include "util/logging.hh"

namespace ovlsim::trace {
namespace {

/** Two-rank trace: r0 computes then sends; r1 receives then
 * computes; both join a barrier. */
TraceSet
makeSimpleTrace()
{
    TraceSet traces("simple", 2, 1000.0);
    auto &r0 = traces.rankTrace(0);
    r0.append(CpuBurst{1000});
    r0.append(SendRec{1, 5, 4096, 1});
    r0.append(CollectiveRec{CollOp::barrier, 0, 0, 0});
    auto &r1 = traces.rankTrace(1);
    r1.append(RecvRec{0, 5, 4096, 1});
    r1.append(CpuBurst{2000});
    r1.append(CollectiveRec{CollOp::barrier, 0, 0, 0});
    return traces;
}

/** Exercise every record kind on two ranks, structurally valid. */
TraceSet
makeFullTrace()
{
    TraceSet traces("full", 2, 1500.0);
    auto &r0 = traces.rankTrace(0);
    r0.append(CpuBurst{10});
    r0.append(ISendRec{1, 1, 100, 1, 11});
    r0.append(CpuBurst{20});
    r0.append(WaitRec{11});
    r0.append(SendRec{1, 2, 200, 2});
    r0.append(IRecvRec{1, 3, 300, 3, 12});
    r0.append(WaitAllRec{});
    r0.append(CollectiveRec{CollOp::allReduce, 8, 8, 0});
    auto &r1 = traces.rankTrace(1);
    r1.append(IRecvRec{0, 1, 100, 1, 21});
    r1.append(WaitRec{21});
    r1.append(RecvRec{0, 2, 200, 2});
    r1.append(CpuBurst{30});
    r1.append(SendRec{0, 3, 300, 3});
    r1.append(CollectiveRec{CollOp::allReduce, 8, 8, 0});
    return traces;
}

TEST(RecordTest, CollOpNamesRoundTrip)
{
    for (const auto op :
         {CollOp::barrier, CollOp::broadcast, CollOp::reduce,
          CollOp::allReduce, CollOp::gather, CollOp::allGather,
          CollOp::scatter, CollOp::allToAll}) {
        EXPECT_EQ(collOpFromName(collOpName(op)), op);
    }
    EXPECT_EQ(collOpFromName("bcast"), CollOp::broadcast);
    EXPECT_THROW(collOpFromName("frobnicate"), FatalError);
}

TEST(RecordTest, Classification)
{
    EXPECT_FALSE(isCommRecord(CpuBurst{5}));
    EXPECT_TRUE(isCommRecord(SendRec{}));
    EXPECT_TRUE(isBlockingRecord(RecvRec{}));
    EXPECT_TRUE(isBlockingRecord(WaitRec{}));
    EXPECT_FALSE(isBlockingRecord(IRecvRec{}));
    EXPECT_FALSE(isBlockingRecord(CpuBurst{1}));
}

TEST(RecordTest, ToStringMentionsFields)
{
    const std::string s =
        recordToString(SendRec{3, 7, 1024, 99});
    EXPECT_NE(s.find("dst=3"), std::string::npos);
    EXPECT_NE(s.find("tag=7"), std::string::npos);
    EXPECT_NE(s.find("1024"), std::string::npos);
}

TEST(TraceTest, RankTraceTotals)
{
    const auto traces = makeSimpleTrace();
    EXPECT_EQ(traces.rankTrace(0).totalInstructions(), 1000u);
    EXPECT_EQ(traces.rankTrace(0).commRecordCount(), 2u);
    EXPECT_EQ(traces.rankTrace(1).totalInstructions(), 2000u);
}

TEST(TraceTest, TraceSetAggregates)
{
    const auto traces = makeSimpleTrace();
    EXPECT_EQ(traces.ranks(), 2);
    EXPECT_EQ(traces.totalRecords(), 6u);
    EXPECT_EQ(traces.totalSentBytes(), 4096u);
    EXPECT_EQ(traces.totalMessages(), 1u);
    EXPECT_THROW(traces.rankTrace(2), PanicError);
    EXPECT_THROW(traces.rankTrace(-1), PanicError);
}

TEST(TraceTest, RejectsBadConstruction)
{
    EXPECT_THROW(TraceSet("x", 0), PanicError);
    EXPECT_THROW(TraceSet("x", 2, -1.0), PanicError);
}

TEST(TraceIoTest, RoundTripPreservesEverything)
{
    const auto original = makeFullTrace();
    std::stringstream stream;
    writeTraceText(original, stream);
    const auto parsed = readTraceText(stream);

    EXPECT_EQ(parsed.name(), original.name());
    EXPECT_DOUBLE_EQ(parsed.mips(), original.mips());
    ASSERT_EQ(parsed.ranks(), original.ranks());
    for (Rank r = 0; r < original.ranks(); ++r) {
        const auto &a = original.rankTrace(r).records();
        const auto &b = parsed.rankTrace(r).records();
        ASSERT_EQ(a.size(), b.size()) << "rank " << r;
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(recordToString(a[i]), recordToString(b[i]))
                << "rank " << r << " record " << i;
        }
    }
}

TEST(TraceIoTest, RejectsBadMagic)
{
    std::stringstream stream("not a trace\n");
    EXPECT_THROW(readTraceText(stream), FatalError);
}

TEST(TraceIoTest, RejectsGarbageRecords)
{
    std::stringstream stream(
        "#OVLSIM-TRACE 1\nranks 1\nrank 0\nzz 12\n");
    EXPECT_THROW(readTraceText(stream), FatalError);
}

TEST(TraceIoTest, RejectsRecordBeforeRankHeader)
{
    std::stringstream stream("#OVLSIM-TRACE 1\nranks 1\nc 10\n");
    EXPECT_THROW(readTraceText(stream), FatalError);
}

TEST(TraceIoTest, RejectsRankOutOfRange)
{
    std::stringstream stream("#OVLSIM-TRACE 1\nranks 1\nrank 3\n");
    EXPECT_THROW(readTraceText(stream), FatalError);
}

TEST(OverlapIoTest, RoundTrip)
{
    OverlapSet overlap;
    MessageOverlapInfo info;
    info.id = 42;
    info.src = 0;
    info.dst = 1;
    info.tag = 9;
    info.bytes = 8192;
    info.sendInstr = 5000;
    info.recvInstr = 100;
    info.prodWindowBegin = 1000;
    info.consWindowEnd = 9000;
    info.blockBytes = 2048;
    info.blockLastStore = {1500, 2500, 4500, 5000};
    info.blockFirstLoad = {100, 200, 8000, 9000};
    overlap.add(info);

    std::stringstream stream;
    writeOverlapText(overlap, stream);
    const auto parsed = readOverlapText(stream);

    ASSERT_EQ(parsed.size(), 1u);
    const auto &p = parsed.get(42);
    EXPECT_EQ(p.src, 0);
    EXPECT_EQ(p.dst, 1);
    EXPECT_EQ(p.bytes, 8192u);
    EXPECT_EQ(p.sendInstr, 5000u);
    EXPECT_EQ(p.prodWindowBegin, 1000u);
    EXPECT_EQ(p.consWindowEnd, 9000u);
    EXPECT_EQ(p.blockBytes, 2048u);
    EXPECT_EQ(p.blockLastStore, info.blockLastStore);
    EXPECT_EQ(p.blockFirstLoad, info.blockFirstLoad);
}

TEST(OverlapSetTest, DuplicateAndMissingIds)
{
    OverlapSet overlap;
    MessageOverlapInfo info;
    info.id = 7;
    overlap.add(info);
    EXPECT_THROW(overlap.add(info), PanicError);
    EXPECT_THROW(overlap.get(8), PanicError);
    EXPECT_TRUE(overlap.contains(7));
}

TEST(ValidateTest, AcceptsWellFormedTraces)
{
    EXPECT_TRUE(validateTraceSet(makeSimpleTrace()).valid());
    EXPECT_TRUE(validateTraceSet(makeFullTrace()).valid());
}

TEST(ValidateTest, DetectsUnmatchedSend)
{
    auto traces = makeSimpleTrace();
    traces.rankTrace(0).append(SendRec{1, 99, 64, 0});
    const auto report = validateTraceSet(traces);
    EXPECT_FALSE(report.valid());
    EXPECT_NE(report.toString().find("tag 99"),
              std::string::npos);
}

TEST(ValidateTest, DetectsByteMismatch)
{
    TraceSet traces("bad", 2);
    traces.rankTrace(0).append(SendRec{1, 1, 100, 0});
    traces.rankTrace(1).append(RecvRec{0, 1, 200, 0});
    const auto report = validateTraceSet(traces);
    EXPECT_FALSE(report.valid());
    EXPECT_NE(report.toString().find("100"), std::string::npos);
}

TEST(ValidateTest, DetectsReusedRequest)
{
    TraceSet traces("bad", 2);
    auto &r0 = traces.rankTrace(0);
    r0.append(ISendRec{1, 1, 10, 0, 5});
    r0.append(ISendRec{1, 1, 10, 0, 5});
    r0.append(WaitAllRec{});
    auto &r1 = traces.rankTrace(1);
    r1.append(RecvRec{0, 1, 10, 0});
    r1.append(RecvRec{0, 1, 10, 0});
    const auto report = validateTraceSet(traces);
    EXPECT_FALSE(report.valid());
    EXPECT_NE(report.toString().find("reused"),
              std::string::npos);
}

TEST(ValidateTest, DetectsUnwaitedRequest)
{
    TraceSet traces("bad", 2);
    traces.rankTrace(0).append(ISendRec{1, 1, 10, 0, 5});
    traces.rankTrace(1).append(RecvRec{0, 1, 10, 0});
    const auto report = validateTraceSet(traces);
    EXPECT_FALSE(report.valid());
    EXPECT_NE(report.toString().find("never completed"),
              std::string::npos);
}

TEST(ValidateTest, DetectsCollectiveMismatch)
{
    TraceSet traces("bad", 2);
    traces.rankTrace(0).append(
        CollectiveRec{CollOp::barrier, 0, 0, 0});
    traces.rankTrace(1).append(
        CollectiveRec{CollOp::allReduce, 8, 8, 0});
    EXPECT_FALSE(validateTraceSet(traces).valid());
}

TEST(ValidateTest, DetectsCollectiveCountMismatch)
{
    TraceSet traces("bad", 2);
    traces.rankTrace(0).append(
        CollectiveRec{CollOp::barrier, 0, 0, 0});
    EXPECT_FALSE(validateTraceSet(traces).valid());
}

TEST(ValidateTest, DetectsWaitOnUnknownRequest)
{
    TraceSet traces("bad", 1);
    traces.rankTrace(0).append(WaitRec{77});
    const auto report = validateTraceSet(traces);
    EXPECT_FALSE(report.valid());
    EXPECT_NE(report.toString().find("unknown request"),
              std::string::npos);
}

TEST(ValidateTest, FlagsWildcardSentinels)
{
    // The engine has no wildcard matching; the validator must call
    // out anyRank/anyTag explicitly instead of a generic
    // invalid-rank complaint (and anyTag would otherwise slip
    // through entirely).
    {
        auto traces = makeSimpleTrace();
        traces.rankTrace(1).append(RecvRec{anyRank, 5, 64, 0});
        const auto report = validateTraceSet(traces);
        EXPECT_FALSE(report.valid());
        EXPECT_NE(report.toString().find("anyRank wildcard"),
                  std::string::npos);
    }
    {
        auto traces = makeSimpleTrace();
        traces.rankTrace(1).append(
            IRecvRec{0, anyTag, 64, 0, 99});
        const auto report = validateTraceSet(traces);
        EXPECT_FALSE(report.valid());
        EXPECT_NE(report.toString().find("anyTag wildcard"),
                  std::string::npos);
    }
    {
        auto traces = makeSimpleTrace();
        traces.rankTrace(0).append(SendRec{1, anyTag, 64, 0});
        const auto report = validateTraceSet(traces);
        EXPECT_FALSE(report.valid());
        EXPECT_NE(report.toString().find("anyTag wildcard"),
                  std::string::npos);
    }
}

TEST(LinkTest, AssignsSharedIdsInFifoOrder)
{
    TraceSet traces("link", 2);
    auto &r0 = traces.rankTrace(0);
    r0.append(SendRec{1, 4, 100, 900});
    r0.append(SendRec{1, 4, 200, 901});
    auto &r1 = traces.rankTrace(1);
    r1.append(RecvRec{0, 4, 100, 800});
    r1.append(RecvRec{0, 4, 200, 801});

    const auto result = linkTraceSet(traces, nullptr, nullptr,
                                     nullptr);
    EXPECT_EQ(result.linkedMessages, 2u);

    const auto &send0 =
        std::get<SendRec>(traces.rankTrace(0).records()[0]);
    const auto &send1 =
        std::get<SendRec>(traces.rankTrace(0).records()[1]);
    const auto &recv0 =
        std::get<RecvRec>(traces.rankTrace(1).records()[0]);
    const auto &recv1 =
        std::get<RecvRec>(traces.rankTrace(1).records()[1]);
    EXPECT_EQ(send0.message, recv0.message);
    EXPECT_EQ(send1.message, recv1.message);
    EXPECT_NE(send0.message, send1.message);
    EXPECT_NE(send0.message, invalidMessageId);
}

TEST(LinkTest, MergesEndpointProfiles)
{
    TraceSet traces("link", 2);
    traces.rankTrace(0).append(SendRec{1, 1, 100, 900});
    traces.rankTrace(1).append(RecvRec{0, 1, 100, 800});

    OverlapSet senders;
    MessageOverlapInfo sp;
    sp.id = 900;
    sp.sendInstr = 555;
    sp.prodWindowBegin = 100;
    sp.blockBytes = 50;
    sp.blockLastStore = {400, 555};
    senders.add(sp);

    OverlapSet receivers;
    MessageOverlapInfo rp;
    rp.id = 800;
    rp.recvInstr = 10;
    rp.consWindowEnd = 300;
    rp.blockFirstLoad = {20, 250};
    receivers.add(rp);

    OverlapSet merged;
    linkTraceSet(traces, &senders, &receivers, &merged);
    ASSERT_EQ(merged.size(), 1u);
    const auto &info = merged.all().begin()->second;
    EXPECT_EQ(info.sendInstr, 555u);
    EXPECT_EQ(info.recvInstr, 10u);
    EXPECT_EQ(info.prodWindowBegin, 100u);
    EXPECT_EQ(info.consWindowEnd, 300u);
    EXPECT_EQ(info.blockLastStore.size(), 2u);
    EXPECT_EQ(info.blockFirstLoad.size(), 2u);
    EXPECT_EQ(info.bytes, 100u);
}

TEST(LinkTest, FailsOnUnmatchedTraffic)
{
    TraceSet traces("bad", 2);
    traces.rankTrace(0).append(SendRec{1, 1, 100, 0});
    EXPECT_THROW(linkTraceSet(traces, nullptr, nullptr, nullptr),
                 FatalError);
}

TEST(LinkTest, FailsOnSizeMismatch)
{
    TraceSet traces("bad", 2);
    traces.rankTrace(0).append(SendRec{1, 1, 100, 0});
    traces.rankTrace(1).append(RecvRec{0, 1, 999, 0});
    EXPECT_THROW(linkTraceSet(traces, nullptr, nullptr, nullptr),
                 FatalError);
}

TEST(TraceStatsTest, CountsPerRankAndMatrix)
{
    const auto stats = computeTraceStats(makeFullTrace());
    ASSERT_EQ(stats.perRank.size(), 2u);
    EXPECT_EQ(stats.perRank[0].sends, 2u);
    EXPECT_EQ(stats.perRank[0].recvs, 1u);
    EXPECT_EQ(stats.perRank[0].sentBytes, 300u);
    EXPECT_EQ(stats.perRank[1].sends, 1u);
    EXPECT_EQ(stats.perRank[1].recvs, 2u);
    EXPECT_EQ(stats.totalMessages, 3u);
    EXPECT_EQ(stats.totalBytes, 600u);
    EXPECT_EQ(stats.totalCollectives, 2u);
    EXPECT_EQ((stats.commMatrix.at({0, 1})), 300u);
    EXPECT_EQ((stats.commMatrix.at({1, 0})), 300u);
    EXPECT_DOUBLE_EQ(stats.avgMessageBytes(), 200.0);
    EXPECT_FALSE(stats.toString().empty());
}

} // namespace
} // namespace ovlsim::trace
