/**
 * @file
 * Tests for the potential-analysis report and platform config files.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/potential.hh"
#include "sim/engine.hh"
#include "sim/platform_file.hh"
#include "tests/helpers.hh"
#include "util/logging.hh"

namespace ovlsim {
namespace {

TEST(PotentialTest, PackedPatternsHaveNoSlack)
{
    const auto bundle = testing::traceOf(
        2, testing::packedExchange(128 * 1024, 1'000'000));
    const auto report =
        core::analyzePotential(bundle.overlap);
    ASSERT_EQ(report.messages.size(), 1u);
    // Pack right before the send, unpack right after the recv:
    // both slack fractions are tiny.
    EXPECT_LT(report.productionSlack.mean(), 0.05);
    EXPECT_LT(report.consumptionSlack.mean(), 0.15);
}

TEST(PotentialTest, ProgressivePatternsHaveLargeSlack)
{
    const auto bundle = testing::traceOf(
        2, testing::producerConsumer(128 * 1024, 1'000'000, 16));
    const auto report =
        core::analyzePotential(bundle.overlap);
    ASSERT_EQ(report.messages.size(), 1u);
    // Uniform production: mean completion is mid-window, so mean
    // slack is around half the window on both sides.
    EXPECT_GT(report.productionSlack.mean(), 0.3);
    EXPECT_GT(report.consumptionSlack.mean(), 0.3);
    EXPECT_LE(report.productionSlack.max(), 1.0);
    EXPECT_FALSE(report.toString().empty());
}

TEST(PotentialTest, SlackFractionsAreBounded)
{
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(64 * 1024, 400'000, 2));
    const auto report =
        core::analyzePotential(bundle.overlap);
    for (const auto &m : report.messages) {
        EXPECT_GE(m.productionSlackFraction(), 0.0);
        EXPECT_LE(m.productionSlackFraction(), 1.0);
        EXPECT_GE(m.consumptionSlackFraction(), 0.0);
        EXPECT_LE(m.consumptionSlackFraction(), 1.0);
    }
}

TEST(PotentialTest, EmptyOverlapSet)
{
    const trace::OverlapSet empty;
    const auto report = core::analyzePotential(empty);
    EXPECT_TRUE(report.messages.empty());
    EXPECT_FALSE(report.toString().empty());
}

TEST(PlatformFileTest, RoundTripPreservesEveryField)
{
    sim::PlatformConfig config;
    config.name = "round-trip";
    config.mipsOverride = 2500.0;
    config.cpuRatio = 1.5;
    config.cpusPerNode = 4;
    config.bandwidthMBps = 123.25;
    config.latencyUs = 3.5;
    config.localBandwidthMBps = 9999.0;
    config.localLatencyUs = 0.25;
    config.buses = 7;
    config.outLinksPerNode = 2;
    config.inLinksPerNode = 3;
    config.eagerThreshold = 12345;
    config.forceEagerIsend = false;
    config.rendezvousOverheadUs = 1.25;
    config.collectives.latencyFactor = 0.5;
    config.collectives.bandwidthFactor = 2.0;

    std::stringstream stream;
    sim::writePlatformConfig(config, stream);
    const auto parsed = sim::readPlatformConfig(stream);

    EXPECT_EQ(parsed.name, config.name);
    EXPECT_DOUBLE_EQ(parsed.mipsOverride, config.mipsOverride);
    EXPECT_DOUBLE_EQ(parsed.cpuRatio, config.cpuRatio);
    EXPECT_EQ(parsed.cpusPerNode, config.cpusPerNode);
    EXPECT_DOUBLE_EQ(parsed.bandwidthMBps,
                     config.bandwidthMBps);
    EXPECT_DOUBLE_EQ(parsed.latencyUs, config.latencyUs);
    EXPECT_DOUBLE_EQ(parsed.localBandwidthMBps,
                     config.localBandwidthMBps);
    EXPECT_DOUBLE_EQ(parsed.localLatencyUs,
                     config.localLatencyUs);
    EXPECT_EQ(parsed.buses, config.buses);
    EXPECT_EQ(parsed.outLinksPerNode, config.outLinksPerNode);
    EXPECT_EQ(parsed.inLinksPerNode, config.inLinksPerNode);
    EXPECT_EQ(parsed.eagerThreshold, config.eagerThreshold);
    EXPECT_EQ(parsed.forceEagerIsend, config.forceEagerIsend);
    EXPECT_DOUBLE_EQ(parsed.rendezvousOverheadUs,
                     config.rendezvousOverheadUs);
    EXPECT_DOUBLE_EQ(parsed.collectives.latencyFactor,
                     config.collectives.latencyFactor);
    EXPECT_DOUBLE_EQ(parsed.collectives.bandwidthFactor,
                     config.collectives.bandwidthFactor);
}

TEST(PlatformFileTest, CommentsAndDefaults)
{
    std::stringstream stream(
        "# a comment\n"
        "\n"
        "bandwidth_mbps = 64\n"
        "  latency_us   =  2.5  \n");
    const auto parsed = sim::readPlatformConfig(stream);
    EXPECT_DOUBLE_EQ(parsed.bandwidthMBps, 64.0);
    EXPECT_DOUBLE_EQ(parsed.latencyUs, 2.5);
    // Untouched fields keep their defaults.
    EXPECT_EQ(parsed.cpusPerNode, 1);
}

TEST(PlatformFileTest, RejectsUnknownKeysAndGarbage)
{
    std::stringstream unknown("frobnication_level = 9\n");
    EXPECT_THROW(sim::readPlatformConfig(unknown), FatalError);

    std::stringstream garbage("bandwidth_mbps 64\n");
    EXPECT_THROW(sim::readPlatformConfig(garbage), FatalError);

    std::stringstream invalid("bandwidth_mbps = -4\n");
    EXPECT_THROW(sim::readPlatformConfig(invalid), FatalError);
}

TEST(PlatformFileTest, FileRoundTrip)
{
    const std::string path =
        ::testing::TempDir() + "ovl_platform.cfg";
    auto config = sim::platforms::contendedCluster(4, 2);
    config.bandwidthMBps = 777.0;
    sim::writePlatformConfigFile(config, path);
    const auto parsed = sim::readPlatformConfigFile(path);
    EXPECT_DOUBLE_EQ(parsed.bandwidthMBps, 777.0);
    EXPECT_EQ(parsed.buses, 4);
    EXPECT_EQ(parsed.cpusPerNode, 2);
}

TEST(PlatformFileTest, LoadedConfigDrivesSimulation)
{
    std::stringstream stream("bandwidth_mbps = 256\n"
                             "latency_us = 8\n");
    const auto platform = sim::readPlatformConfig(stream);
    const auto bundle = testing::traceOf(
        2, testing::packedExchange(64 * 1024, 100'000));
    const auto from_file = sim::simulate(bundle.traces, platform);
    const auto from_code = sim::simulate(
        bundle.traces, sim::platforms::defaultCluster());
    EXPECT_EQ(from_file.totalTime.ns(),
              from_code.totalTime.ns());
}

} // namespace
} // namespace ovlsim
