/**
 * @file
 * Determinism guards for the replay engine's container rewrite.
 *
 * The engine's matching and request bookkeeping moved from ordered
 * std::map/std::set to hash-ordered flat structures; nothing about a
 * replay may depend on that iteration order. These tests assert that
 * (a) replaying the same trace repeatedly is bit-identical, and
 * (b) results are invariant under legal reorderings of record
 * streams (permuting non-blocking posts to distinct channels on an
 * uncontended platform), which is exactly where container-order
 * tie-break bugs would surface.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apps/app.hh"
#include "helpers.hh"
#include "sim/engine.hh"
#include "sim/platform.hh"
#include "trace/trace.hh"

namespace ovlsim {
namespace {

using sim::SimResult;
using trace::CpuBurst;
using trace::IRecvRec;
using trace::ISendRec;
using trace::RecvRec;
using trace::SendRec;
using trace::TraceSet;
using trace::WaitAllRec;

using testing::expectIdentical;

TEST(EngineDeterminismTest, RepeatedReplayIsBitIdentical)
{
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(64 * 1024, 500'000, 6));
    for (const double bandwidth : {16.0, 256.0, 4096.0}) {
        const auto platform = testing::platformAt(bandwidth);
        const auto first = simulate(bundle.traces, platform);
        const auto second = simulate(bundle.traces, platform);
        expectIdentical(first, second);
    }
}

TEST(EngineDeterminismTest, RepeatedReplayAcrossPrograms)
{
    const std::vector<vm::RankProgram> programs{
        testing::producerConsumer(256 * 1024, 1'000'000),
        testing::packedExchange(128 * 1024, 800'000),
    };
    for (const auto &program : programs) {
        const auto bundle = testing::traceOf(2, program);
        const auto platform = testing::platformAt(256.0);
        expectIdentical(simulate(bundle.traces, platform),
                        simulate(bundle.traces, platform));
    }
}

TEST(EngineDeterminismTest, ContendedPlatformIsDeterministic)
{
    const auto bundle = testing::traceOf(
        6, testing::ringExchange(128 * 1024, 250'000, 4));
    auto platform = sim::platforms::contendedCluster(2, 2);
    platform.bandwidthMBps = 64.0;
    expectIdentical(simulate(bundle.traces, platform),
                    simulate(bundle.traces, platform));
}

/** Deterministic in-place Fisher-Yates with a local xorshift. */
template <typename T>
void
shuffleBySeed(std::vector<T> &items, std::uint64_t seed)
{
    std::uint64_t state = seed | 1;
    auto next = [&state]() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };
    for (std::size_t i = items.size(); i > 1; --i)
        std::swap(items[i - 1], items[next() % i]);
}

/**
 * Hub trace: rank 0 posts one irecv per peer (distinct channels) in
 * `order`, computes, then waits for all; each peer computes then
 * sends. On a platform without link contention, the posting order of
 * receives to distinct channels is semantically irrelevant, so every
 * permutation must replay to the identical result; only the
 * engine's container iteration order varies.
 */
TraceSet
hubTrace(int peers, const std::vector<int> &order)
{
    TraceSet traces("hub", peers + 1);
    auto &hub = traces.rankTrace(0);
    for (const int p : order) {
        hub.append(IRecvRec{p + 1, 40 + p,
                            Bytes(32 * 1024) * (p % 3 + 1),
                            std::uint64_t(p + 1),
                            std::uint64_t(100 + p)});
    }
    hub.append(CpuBurst{400'000});
    hub.append(WaitAllRec{});
    for (int p = 0; p < peers; ++p) {
        auto &peer = traces.rankTrace(p + 1);
        peer.append(CpuBurst{50'000 + 10'000 * Instr(p)});
        peer.append(SendRec{0, 40 + p,
                            Bytes(32 * 1024) * (p % 3 + 1),
                            std::uint64_t(p + 1)});
    }
    return traces;
}

TEST(EngineDeterminismTest, IrecvPostOrderInvariantWithoutContention)
{
    constexpr int peers = 12;
    std::vector<int> order;
    for (int p = 0; p < peers; ++p)
        order.push_back(p);

    auto platform = sim::platforms::defaultCluster();
    platform.buses = 0;
    platform.outLinksPerNode = 0;
    platform.inLinksPerNode = 0;

    const auto baseline =
        simulate(hubTrace(peers, order), platform);
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        auto shuffled = order;
        shuffleBySeed(shuffled, seed * 0x9e3779b97f4a7c15ULL);
        const auto result =
            simulate(hubTrace(peers, shuffled), platform);
        expectIdentical(baseline, result);
    }
}

/** Same invariance for non-blocking sends fanning out of one rank. */
TraceSet
fanoutTrace(int peers, const std::vector<int> &order)
{
    TraceSet traces("fanout", peers + 1);
    auto &root = traces.rankTrace(0);
    for (const int p : order) {
        root.append(ISendRec{p + 1, 60 + p, Bytes(16 * 1024),
                             std::uint64_t(p + 1),
                             std::uint64_t(200 + p)});
    }
    root.append(CpuBurst{300'000});
    root.append(WaitAllRec{});
    for (int p = 0; p < peers; ++p) {
        auto &peer = traces.rankTrace(p + 1);
        peer.append(RecvRec{0, 60 + p, Bytes(16 * 1024),
                            std::uint64_t(p + 1)});
    }
    return traces;
}

TEST(EngineDeterminismTest, IsendPostOrderInvariantWithoutContention)
{
    constexpr int peers = 10;
    std::vector<int> order;
    for (int p = 0; p < peers; ++p)
        order.push_back(p);

    auto platform = sim::platforms::idealNetwork();
    const auto baseline =
        simulate(fanoutTrace(peers, order), platform);
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        auto shuffled = order;
        shuffleBySeed(shuffled, seed * 0xdeadbeefcafeULL);
        const auto result =
            simulate(fanoutTrace(peers, shuffled), platform);
        expectIdentical(baseline, result);
    }
}

TEST(EngineDeterminismTest, WaitQueueStaysFifoUnderReentrantPosts)
{
    // Regression: when a transfer injection releases a contended
    // resource and the unblocked rank posts a *new* transfer before
    // the wait queue is rescanned, the new transfer must not
    // overtake older queued ones. Golden values come from the seed
    // engine (std::deque wait queue) on this 4-rank scenario: rank 0
    // sends 1MB rendezvous to rank 1 then 1KB eager to rank 2 while
    // rank 3's 1MB rendezvous send to rank 2 is queued on the single
    // bus.
    TraceSet traces("fifo", 4);
    traces.rankTrace(0).append(SendRec{1, 1, 1'000'000, 1});
    traces.rankTrace(0).append(SendRec{2, 2, 1'000, 2});
    traces.rankTrace(1).append(RecvRec{0, 1, 1'000'000, 1});
    traces.rankTrace(3).append(SendRec{2, 3, 1'000'000, 3});
    traces.rankTrace(2).append(RecvRec{3, 3, 1'000'000, 3});
    traces.rankTrace(2).append(RecvRec{0, 2, 1'000, 2});

    auto platform = sim::platforms::defaultCluster();
    platform.buses = 1;
    platform.eagerThreshold = 4096;
    const auto result = simulate(traces, platform);

    // Rank 3's queued transfer starts when the bus frees, ahead of
    // rank 0's later eager send.
    EXPECT_EQ(result.perRank[3].sendBlockedTime.ns(), 7'812'500);
    EXPECT_EQ(result.perRank[3].endTime.ns(), 7'812'500);
    EXPECT_EQ(result.perRank[0].endTime.ns(), 3'906'250);
    EXPECT_EQ(result.perRank[2].recvBlockedTime.ns(), 7'824'406);
    EXPECT_EQ(result.totalTime.ns(), 7'824'406);
    EXPECT_EQ(result.eventsProcessed, 10u);
}

TEST(EngineDeterminismTest, CollectiveHeavyAppsAreDeterministic)
{
    // Collective completion is released by a single broadcast event
    // that wakes every rank in rank order, replacing one rankResume
    // per rank (see Engine::handleRelease for the equivalence
    // argument). nas-cg and alya are the collective-heavy proxies;
    // repeated replays, session reuse and the compiled-program path
    // must all agree bit for bit, on contended and uncontended
    // platforms.
    for (const char *name : {"nas-cg", "alya"}) {
        const auto &app = apps::findApp(name);
        auto params = app.defaults();
        params.iterations = 2;
        tracer::TracerConfig config;
        config.appName = name;
        const auto bundle = tracer::traceApplication(
            params.ranks, app.program(params), config);
        const auto program = sim::compileShared(bundle.traces);

        auto contended = sim::platforms::contendedCluster(2, 2);
        contended.bandwidthMBps = 64.0;
        sim::ReplaySession session;
        for (const auto &platform :
             {testing::platformAt(16.0),
              testing::platformAt(1024.0), contended}) {
            const auto fresh = simulate(bundle.traces, platform);
            expectIdentical(fresh,
                            simulate(bundle.traces, platform));
            expectIdentical(fresh,
                            session.run(*program, platform));
            expectIdentical(fresh,
                            session.run(*program, platform));
        }
    }
}

TEST(EngineDeterminismTest, SessionReuseIsBitIdentical)
{
    // A ReplaySession keeps the engine arenas across runs; replaying
    // interleaved trace sets and platforms through one session must
    // match fresh-engine replays bit for bit (the reset() contract:
    // no state other than memory reservations survives a run).
    const auto ring = testing::traceOf(
        4, testing::ringExchange(64 * 1024, 500'000, 6));
    const auto packed = testing::traceOf(
        2, testing::packedExchange(128 * 1024, 800'000));

    sim::ReplaySession session;
    for (int round = 0; round < 2; ++round) {
        for (const double bandwidth : {16.0, 256.0, 4096.0}) {
            const auto platform = testing::platformAt(bandwidth);
            expectIdentical(session.run(ring.traces, platform),
                            simulate(ring.traces, platform));
            expectIdentical(session.run(packed.traces, platform),
                            simulate(packed.traces, platform));
        }
    }
}

TEST(EngineDeterminismTest, SessionSurvivesFailedReplay)
{
    // A run that throws (deadlocked trace) must not poison the
    // session for subsequent runs.
    TraceSet stuck("stuck", 1);
    stuck.rankTrace(0).append(RecvRec{0, 1, 64, 1});

    const auto ring = testing::traceOf(
        2, testing::ringExchange(32 * 1024, 200'000, 3));
    const auto platform = testing::platformAt(256.0);

    sim::ReplaySession session;
    EXPECT_THROW(session.run(stuck, platform), FatalError);
    expectIdentical(session.run(ring.traces, platform),
                    simulate(ring.traces, platform));
}

TEST(EngineDeterminismTest, RejectsWildcardSentinels)
{
    // anyRank/anyTag are unsupported: the engine must fail fast
    // with a clear FatalError instead of silently never matching.
    const auto platform = testing::platformAt(256.0);
    {
        TraceSet traces("wild", 2);
        traces.rankTrace(0).append(SendRec{1, 5, 64, 1});
        traces.rankTrace(1).append(RecvRec{anyRank, 5, 64, 1});
        EXPECT_THROW(simulate(traces, platform), FatalError);
    }
    {
        TraceSet traces("wild", 2);
        traces.rankTrace(0).append(SendRec{1, anyTag, 64, 1});
        traces.rankTrace(1).append(RecvRec{0, 5, 64, 1});
        EXPECT_THROW(simulate(traces, platform), FatalError);
    }
    {
        TraceSet traces("wild", 2);
        traces.rankTrace(0).append(
            IRecvRec{0, anyTag, 64, 1, 7});
        EXPECT_THROW(simulate(traces, platform), FatalError);
    }
}

TEST(EngineDeterminismTest, SimulateValidatesPlatformUpFront)
{
    // cpusPerNode = 0 must be rejected by PlatformConfig::validate()
    // before the engine computes node counts (guards the satellite
    // fix for the unchecked division in Engine::run).
    TraceSet traces("t", 1);
    traces.rankTrace(0).append(CpuBurst{1000});
    auto platform = sim::platforms::defaultCluster();
    platform.cpusPerNode = 0;
    EXPECT_THROW(simulate(traces, platform), FatalError);
}

} // namespace
} // namespace ovlsim
