/**
 * @file
 * Tests for the binary trace format: round trips, cross-format
 * equivalence with the text format, and corruption rejection.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "tests/helpers.hh"
#include "trace/binary_io.hh"
#include "trace/trace_io.hh"
#include "trace/validate.hh"
#include "util/logging.hh"

namespace ovlsim::trace {
namespace {

tracer::TraceBundle
sampleBundle()
{
    return ovlsim::testing::traceOf(
        4, ovlsim::testing::ringExchange(64 * 1024, 300'000, 2));
}

std::string
textOf(const TraceSet &traces)
{
    std::ostringstream os;
    writeTraceText(traces, os);
    return os.str();
}

TEST(BinaryIoTest, TraceRoundTripIsLossless)
{
    const auto bundle = sampleBundle();
    std::stringstream stream(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeTraceBinary(bundle.traces, stream);
    const auto parsed = readTraceBinary(stream);
    // Cross-check through the canonical text rendering.
    EXPECT_EQ(textOf(parsed), textOf(bundle.traces));
    EXPECT_TRUE(validateTraceSet(parsed).valid());
}

TEST(BinaryIoTest, EveryRecordKindSurvives)
{
    TraceSet traces("kinds", 2, 1234.5);
    auto &r0 = traces.rankTrace(0);
    r0.append(CpuBurst{42});
    r0.append(SendRec{1, 3, 100, 7});
    r0.append(ISendRec{1, 4, 200, 8, 11});
    r0.append(WaitRec{11});
    r0.append(WaitAllRec{});
    r0.append(CollectiveRec{CollOp::allToAll, 64, 128, 1});
    auto &r1 = traces.rankTrace(1);
    r1.append(RecvRec{0, 3, 100, 7});
    r1.append(IRecvRec{0, 4, 200, 8, 21});
    r1.append(WaitRec{21});
    r1.append(CollectiveRec{CollOp::allToAll, 64, 128, 1});

    std::stringstream stream(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeTraceBinary(traces, stream);
    const auto parsed = readTraceBinary(stream);
    EXPECT_EQ(textOf(parsed), textOf(traces));
    EXPECT_DOUBLE_EQ(parsed.mips(), 1234.5);
    EXPECT_EQ(parsed.name(), "kinds");
}

TEST(BinaryIoTest, OverlapRoundTripIsLossless)
{
    const auto bundle = sampleBundle();
    std::stringstream stream(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeOverlapBinary(bundle.overlap, stream);
    const auto parsed = readOverlapBinary(stream);

    ASSERT_EQ(parsed.size(), bundle.overlap.size());
    for (const auto &[id, info] : bundle.overlap.all()) {
        const auto &p = parsed.get(id);
        EXPECT_EQ(p.src, info.src);
        EXPECT_EQ(p.dst, info.dst);
        EXPECT_EQ(p.bytes, info.bytes);
        EXPECT_EQ(p.sendInstr, info.sendInstr);
        EXPECT_EQ(p.recvInstr, info.recvInstr);
        EXPECT_EQ(p.prodWindowBegin, info.prodWindowBegin);
        EXPECT_EQ(p.consWindowEnd, info.consWindowEnd);
        EXPECT_EQ(p.blockLastStore, info.blockLastStore);
        EXPECT_EQ(p.blockFirstLoad, info.blockFirstLoad);
    }
}

TEST(BinaryIoTest, FileRoundTrip)
{
    const auto bundle = sampleBundle();
    const std::string dir = ::testing::TempDir();
    const std::string trace_path = dir + "ovl_bin_trace.bin";
    const std::string overlap_path = dir + "ovl_bin_overlap.bin";

    writeTraceBinaryFile(bundle.traces, trace_path);
    writeOverlapBinaryFile(bundle.overlap, overlap_path);

    const auto traces = readTraceBinaryFile(trace_path);
    const auto overlap = readOverlapBinaryFile(overlap_path);
    EXPECT_EQ(textOf(traces), textOf(bundle.traces));
    EXPECT_EQ(overlap.size(), bundle.overlap.size());
}

TEST(BinaryIoTest, RejectsBadMagic)
{
    std::stringstream stream(std::ios::in | std::ios::out |
                             std::ios::binary);
    stream.write("NOPE0000", 8);
    EXPECT_THROW(readTraceBinary(stream), FatalError);
}

TEST(BinaryIoTest, RejectsTruncatedStream)
{
    const auto bundle = sampleBundle();
    std::ostringstream os(std::ios::binary);
    writeTraceBinary(bundle.traces, os);
    const std::string full = os.str();

    // Cut the stream at several points; every cut must be detected.
    for (const std::size_t cut :
         {full.size() / 7, full.size() / 3, full.size() - 1}) {
        std::istringstream is(full.substr(0, cut),
                              std::ios::binary);
        EXPECT_THROW(readTraceBinary(is), FatalError)
            << "cut at " << cut;
    }
}

TEST(BinaryIoTest, RejectsCorruptedCollectiveOp)
{
    TraceSet traces("bad", 1);
    traces.rankTrace(0).append(
        CollectiveRec{CollOp::barrier, 0, 0, 0});
    std::ostringstream os(std::ios::binary);
    writeTraceBinary(traces, os);
    std::string data = os.str();
    // The collective op byte is right after the record kind tag;
    // smash it to an invalid value.
    const auto pos = data.size() - sizeof(std::uint64_t) * 2 -
        sizeof(std::int32_t) - 1;
    data[pos] = static_cast<char>(0x7f);
    std::istringstream is(data, std::ios::binary);
    EXPECT_THROW(readTraceBinary(is), FatalError);
}

TEST(BinaryIoTest, LargeTraceRoundTrips)
{
    // A trace with thousands of records and large field values.
    TraceSet traces("large", 8, 3200.0);
    for (Rank r = 0; r < 8; ++r) {
        auto &rt = traces.rankTrace(r);
        for (int i = 0; i < 500; ++i) {
            rt.append(CpuBurst{
                static_cast<Instr>(1'234'567'890ull + i)});
            rt.append(SendRec{
                (r + 1) % 8, 1000 + i,
                static_cast<Bytes>(1ull << 33),
                static_cast<MessageId>(r * 1000 + i + 1)});
            rt.append(RecvRec{
                (r + 7) % 8, 1000 + i,
                static_cast<Bytes>(1ull << 33),
                static_cast<MessageId>(((r + 7) % 8) * 1000 +
                                       i + 1)});
        }
    }
    std::stringstream stream(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeTraceBinary(traces, stream);
    const auto parsed = readTraceBinary(stream);
    EXPECT_EQ(textOf(parsed), textOf(traces));
    EXPECT_EQ(parsed.totalRecords(), traces.totalRecords());
}

} // namespace
} // namespace ovlsim::trace
