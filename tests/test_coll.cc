/**
 * @file
 * The algorithmic collective engine: schedule compilation, the
 * structural properties every compiled schedule must satisfy,
 * platform-file coverage of the collective-model keys, and the
 * engine's schedule-execution seam.
 *
 * Key contracts pinned here:
 *  - deadlock-freedom by construction: every compiled schedule is
 *    topologically executable under the engine's semantics (sends
 *    always injectable, recvs wait on their pre-matched slot),
 *  - byte semantics: each schedule moves exactly the bytes the
 *    operation requires per rank (binomial trees deliver one
 *    payload per non-root, rings and recursive doubling move
 *    (P-1)/P-shaped totals, alltoall exchanges (P-1) blocks, ...),
 *  - slot consistency: recv slots are dense and pre-matched
 *    one-to-one with sends of equal size between the same pair,
 *  - analytic default: platforms that never mention the collective
 *    model replay bit-identically through the classic closed-form
 *    path, and analytic-vs-algorithmic agree exactly on an
 *    uncontended fabric where the algorithms' critical paths are
 *    the closed forms (barrier, two-rank broadcast),
 *  - determinism: algorithmic replays are bit-identical across
 *    repeats, sessions and topologies.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "coll/coll.hh"
#include "coll/schedule.hh"
#include "core/analysis.hh"
#include "helpers.hh"
#include "obs/stats.hh"
#include "sim/engine.hh"
#include "sim/platform_file.hh"
#include "sim/program.hh"
#include "util/mathutil.hh"

namespace ovlsim {
namespace {

using coll::Algorithm;
using coll::CollectiveModel;
using coll::Schedule;
using trace::CollOp;
using testing::expectIdentical;

constexpr CollOp allOps[] = {
    CollOp::barrier,  CollOp::broadcast, CollOp::reduce,
    CollOp::allReduce, CollOp::gather,   CollOp::allGather,
    CollOp::scatter,  CollOp::allToAll,
};

TEST(CollConfigTest, NamesRoundTrip)
{
    for (const auto model : {CollectiveModel::analytic,
                             CollectiveModel::algorithmic}) {
        EXPECT_EQ(coll::collectiveModelFromName(
                      coll::collectiveModelName(model)),
                  model);
    }
    EXPECT_THROW(coll::collectiveModelFromName("quantum"),
                 FatalError);

    for (const auto algorithm :
         {Algorithm::automatic, Algorithm::linear,
          Algorithm::binomialTree, Algorithm::recursiveDoubling,
          Algorithm::ring, Algorithm::pairwise,
          Algorithm::dissemination}) {
        EXPECT_EQ(coll::algorithmFromName(
                      coll::algorithmName(algorithm)),
                  algorithm);
    }
    EXPECT_THROW(coll::algorithmFromName("butterfly"), FatalError);
}

TEST(CollConfigTest, SelectionFollowsTheCutoffs)
{
    EXPECT_EQ(coll::selectAlgorithm(CollOp::barrier, 8, 0),
              Algorithm::dissemination);
    EXPECT_EQ(coll::selectAlgorithm(CollOp::broadcast, 8, 1024),
              Algorithm::binomialTree);
    EXPECT_EQ(coll::selectAlgorithm(CollOp::allReduce, 8, 1024),
              Algorithm::recursiveDoubling);
    EXPECT_EQ(coll::selectAlgorithm(CollOp::allReduce, 8,
                                    coll::ringCutoffBytes + 1),
              Algorithm::ring);
    // Recursive-doubling allgather needs a power-of-two count.
    EXPECT_EQ(coll::selectAlgorithm(CollOp::allGather, 8, 1024),
              Algorithm::recursiveDoubling);
    EXPECT_EQ(coll::selectAlgorithm(CollOp::allGather, 6, 1024),
              Algorithm::ring);
    EXPECT_EQ(coll::selectAlgorithm(CollOp::allToAll, 8, 1024),
              Algorithm::pairwise);
    // Pins win; unsupported pins are fatal.
    EXPECT_EQ(coll::selectAlgorithm(CollOp::allReduce, 8, 1024,
                                    Algorithm::ring),
              Algorithm::ring);
    EXPECT_THROW(coll::selectAlgorithm(CollOp::barrier, 8, 0,
                                       Algorithm::ring),
                 FatalError);
    EXPECT_THROW(
        coll::compileSchedule(CollOp::allGather, 6, 0, 1024,
                              Algorithm::recursiveDoubling),
        FatalError);
}

/**
 * Execute a schedule topologically under the engine's semantics:
 * sends are always injectable (injection never depends on any
 * cursor), recvs retire once their pre-matched slot was posted.
 * Every schedule must run to completion — deadlock-freedom by
 * construction.
 */
void
expectExecutable(const Schedule &sched)
{
    const int ranks = sched.ranks();
    std::vector<std::size_t> cursor(
        static_cast<std::size_t>(ranks), 0);
    std::vector<char> posted(sched.recvSlots(), 0);
    std::size_t retired = 0;
    bool progress = true;
    while (progress) {
        progress = false;
        for (Rank r = 0; r < ranks; ++r) {
            const auto steps = sched.stepsOf(r);
            auto &cur = cursor[static_cast<std::size_t>(r)];
            while (cur < steps.size()) {
                const coll::Step &step = steps[cur];
                if (step.isSend) {
                    posted[step.slot] = 1;
                } else if (!posted[step.slot]) {
                    break;
                }
                ++cur;
                ++retired;
                progress = true;
            }
        }
    }
    EXPECT_EQ(retired, sched.totalSteps())
        << trace::collOpName(sched.op()) << " over "
        << sched.ranks() << " ranks via "
        << coll::algorithmName(sched.algorithm())
        << " deadlocks";
}

/** Every slot pre-matches exactly one send and one recv, equal
 * bytes, mirrored endpoints. */
void
expectSlotsConsistent(const Schedule &sched)
{
    struct End
    {
        int count = 0;
        Rank rank = -1;
        Rank peer = -1;
        Bytes bytes = 0;
    };
    std::vector<End> sends(sched.recvSlots());
    std::vector<End> recvs(sched.recvSlots());
    for (Rank r = 0; r < sched.ranks(); ++r) {
        for (const coll::Step &step : sched.stepsOf(r)) {
            ASSERT_LT(step.slot, sched.recvSlots());
            End &end =
                (step.isSend ? sends : recvs)[step.slot];
            ++end.count;
            end.rank = r;
            end.peer = step.peer;
            end.bytes = step.bytes;
        }
    }
    for (std::uint32_t s = 0; s < sched.recvSlots(); ++s) {
        EXPECT_EQ(sends[s].count, 1) << "slot " << s;
        EXPECT_EQ(recvs[s].count, 1) << "slot " << s;
        EXPECT_EQ(sends[s].rank, recvs[s].peer) << "slot " << s;
        EXPECT_EQ(sends[s].peer, recvs[s].rank) << "slot " << s;
        EXPECT_EQ(sends[s].bytes, recvs[s].bytes) << "slot " << s;
    }
}

struct RankTally
{
    Bytes in = 0;
    Bytes out = 0;
    std::size_t sends = 0;
    std::size_t recvs = 0;
};

std::vector<RankTally>
tally(const Schedule &sched)
{
    std::vector<RankTally> tallies(
        static_cast<std::size_t>(sched.ranks()));
    for (Rank r = 0; r < sched.ranks(); ++r) {
        for (const coll::Step &step : sched.stepsOf(r)) {
            auto &t = tallies[static_cast<std::size_t>(r)];
            if (step.isSend) {
                t.out += step.bytes;
                ++t.sends;
            } else {
                t.in += step.bytes;
                ++t.recvs;
            }
        }
    }
    return tallies;
}

/** Per-op byte-movement laws the schedules must satisfy exactly. */
void
expectOpSemantics(const Schedule &sched, CollOp op, int ranks,
                  Rank root, Bytes bytes)
{
    const auto tallies = tally(sched);
    const auto b = [&](int r) {
        return tallies[static_cast<std::size_t>(r)];
    };
    const auto p = static_cast<Bytes>(ranks);
    switch (op) {
      case CollOp::barrier:
        // Notification only: zero payload, everyone participates.
        EXPECT_EQ(sched.totalBytes(), 0u);
        for (int r = 0; r < ranks; ++r) {
            EXPECT_GE(b(r).sends, 1u) << "rank " << r;
            EXPECT_GE(b(r).recvs, 1u) << "rank " << r;
        }
        break;
      case CollOp::broadcast:
        // Every non-root receives the payload exactly once.
        for (int r = 0; r < ranks; ++r) {
            EXPECT_EQ(b(r).in, r == root ? 0 : bytes)
                << "rank " << r;
        }
        EXPECT_EQ(sched.totalBytes(), (p - 1) * bytes);
        break;
      case CollOp::reduce:
        // Every non-root forwards its contribution exactly once.
        for (int r = 0; r < ranks; ++r) {
            EXPECT_EQ(b(r).out, r == root ? 0 : bytes)
                << "rank " << r;
        }
        EXPECT_EQ(sched.totalBytes(), (p - 1) * bytes);
        break;
      case CollOp::allReduce:
        if (sched.algorithm() == Algorithm::recursiveDoubling &&
            isPowerOfTwo(static_cast<std::uint64_t>(ranks))) {
            const auto steps = static_cast<Bytes>(
                log2Ceil(static_cast<std::uint64_t>(ranks)));
            for (int r = 0; r < ranks; ++r) {
                EXPECT_EQ(b(r).in, steps * bytes) << "rank " << r;
                EXPECT_EQ(b(r).out, steps * bytes) << "rank " << r;
            }
        } else if (sched.algorithm() == Algorithm::ring) {
            // Each of the 2(P-1) rounds moves the payload once;
            // per rank, the 2(P-1) chunks sent (and received) are
            // all within one byte of B/P of each other.
            EXPECT_EQ(sched.totalBytes(), 2 * (p - 1) * bytes);
            const Bytes lo = 2 * (p - 1) * (bytes / p);
            const Bytes hi =
                2 * (p - 1) * ((bytes + p - 1) / p);
            for (int r = 0; r < ranks; ++r) {
                EXPECT_GE(b(r).in, lo) << "rank " << r;
                EXPECT_LE(b(r).in, hi) << "rank " << r;
                EXPECT_GE(b(r).out, lo) << "rank " << r;
                EXPECT_LE(b(r).out, hi) << "rank " << r;
            }
        }
        break;
      case CollOp::allGather:
        // Every rank ends up with everyone's block.
        for (int r = 0; r < ranks; ++r) {
            EXPECT_EQ(b(r).in, (p - 1) * bytes) << "rank " << r;
            EXPECT_EQ(b(r).out, (p - 1) * bytes) << "rank " << r;
        }
        break;
      case CollOp::gather:
        for (int r = 0; r < ranks; ++r) {
            EXPECT_EQ(b(r).out, r == root ? 0 : bytes)
                << "rank " << r;
            EXPECT_EQ(b(r).in, r == root ? (p - 1) * bytes : 0)
                << "rank " << r;
        }
        break;
      case CollOp::scatter:
        for (int r = 0; r < ranks; ++r) {
            EXPECT_EQ(b(r).in, r == root ? 0 : bytes)
                << "rank " << r;
            EXPECT_EQ(b(r).out, r == root ? (p - 1) * bytes : 0)
                << "rank " << r;
        }
        break;
      case CollOp::allToAll:
        // One block to every peer.
        for (int r = 0; r < ranks; ++r) {
            EXPECT_EQ(b(r).in, (p - 1) * bytes) << "rank " << r;
            EXPECT_EQ(b(r).out, (p - 1) * bytes) << "rank " << r;
        }
        break;
    }
}

TEST(ScheduleTest, EveryShapeIsDeadlockFreeAndMovesTheRightBytes)
{
    for (const CollOp op : allOps) {
        for (const int ranks : {1, 2, 3, 4, 5, 7, 8, 16}) {
            for (const Bytes bytes :
                 {Bytes(1000), Bytes(1) << 20}) {
                for (const Rank root :
                     {Rank(0), static_cast<Rank>(ranks - 1)}) {
                    const auto sched = coll::compileSchedule(
                        op, ranks, root, bytes);
                    ASSERT_NE(sched, nullptr);
                    EXPECT_NE(sched->algorithm(),
                              Algorithm::automatic);
                    EXPECT_EQ(sched->ranks(), ranks);
                    if (ranks == 1) {
                        EXPECT_EQ(sched->totalSteps(), 0u);
                        continue;
                    }
                    expectExecutable(*sched);
                    expectSlotsConsistent(*sched);
                    expectOpSemantics(*sched, op, ranks, root,
                                      op == CollOp::barrier
                                          ? 0
                                          : bytes);
                }
            }
        }
    }
}

TEST(ScheduleTest, RingAllReduceSplitsOddPayloadsExactly)
{
    // 1003 bytes over 5 ranks: chunks 201/201/201/200/200; the
    // conservation laws must hold to the byte.
    const auto sched = coll::compileSchedule(
        CollOp::allReduce, 5, 0, 1003, Algorithm::ring);
    expectExecutable(*sched);
    expectSlotsConsistent(*sched);
    EXPECT_EQ(sched->totalBytes(), Bytes(2) * 4 * 1003);
}

TEST(ScheduleTest, CacheSharesOneScheduleAcrossCallers)
{
    const auto a = coll::compileSchedule(CollOp::allReduce, 8, 0,
                                         4096);
    const auto b = coll::compileSchedule(CollOp::allReduce, 8, 0,
                                         4096);
    EXPECT_EQ(a.get(), b.get());
    // Non-rooted ops normalize the root away.
    const auto c = coll::compileSchedule(CollOp::allReduce, 8, 3,
                                         4096);
    EXPECT_EQ(a.get(), c.get());
    // Rooted ops key on it.
    const auto r0 = coll::compileSchedule(CollOp::broadcast, 8, 0,
                                          4096);
    const auto r3 = coll::compileSchedule(CollOp::broadcast, 8, 3,
                                          4096);
    EXPECT_NE(r0.get(), r3.get());
    const obs::CacheReportRow sched_cache = obs::cacheReport()[2];
    EXPECT_EQ(sched_cache.name, "schedule");
    EXPECT_GT(sched_cache.entries, 0u);
}

TEST(CollPlatformFileTest, ModelAndPinsRoundTrip)
{
    auto config = sim::platforms::defaultCluster();
    config.collectiveModel = CollectiveModel::algorithmic;
    config.collectiveAlgorithms.set(CollOp::allReduce,
                                    Algorithm::ring);
    config.collectiveAlgorithms.set(CollOp::broadcast,
                                    Algorithm::linear);

    std::stringstream stream;
    sim::writePlatformConfig(config, stream);
    const auto parsed = sim::readPlatformConfig(stream);
    EXPECT_EQ(parsed.collectiveModel,
              CollectiveModel::algorithmic);
    EXPECT_TRUE(parsed.collectiveAlgorithms ==
                config.collectiveAlgorithms);
}

TEST(CollPlatformFileTest, RejectsBadCollectiveValues)
{
    // Unknown model name.
    std::stringstream model("collective_model = quantum\n");
    EXPECT_THROW(sim::readPlatformConfig(model), FatalError);

    // Unknown algorithm name.
    std::stringstream algo(
        "collective_algorithm_allreduce = butterfly\n");
    EXPECT_THROW(sim::readPlatformConfig(algo), FatalError);

    // Unknown op inside the key.
    std::stringstream op(
        "collective_algorithm_frobnicate = ring\n");
    EXPECT_THROW(sim::readPlatformConfig(op), FatalError);

    // Algorithm that cannot lower the op.
    std::stringstream pair(
        "collective_algorithm_barrier = ring\n");
    EXPECT_THROW(sim::readPlatformConfig(pair), FatalError);

    // Algorithmic mode on a platform it does not support: the
    // analytic scale factors have no algorithmic meaning.
    std::stringstream scaled(
        "collective_model = algorithmic\n"
        "collective_latency_factor = 2\n");
    EXPECT_THROW(sim::readPlatformConfig(scaled), FatalError);
}

/** A collective-heavy program touching every operation. */
vm::RankProgram
collectiveMix(Bytes bytes, Instr instr)
{
    return [bytes, instr](vm::VmContext &ctx) {
        ctx.compute(instr);
        ctx.allReduce(bytes);
        ctx.compute(instr / 2);
        ctx.broadcast(bytes, 0);
        ctx.barrier();
        ctx.allGather(bytes / 4 + 1);
        ctx.compute(instr / 2);
        ctx.reduce(bytes, ctx.ranks() - 1);
        ctx.allToAll(bytes / 8 + 1);
        ctx.gather(bytes / 2, 0);
        ctx.scatter(bytes / 2, 0);
        ctx.compute(instr);
    };
}

TEST(CollEngineTest, AnalyticModelStaysTheDefaultPath)
{
    // A platform that spells collective_model = analytic is the
    // same struct as one that predates the field; both must replay
    // through the classic closed-form path bit-identically.
    const auto bundle =
        testing::traceOf(4, collectiveMix(64 * 1024, 400'000));
    const auto plain = testing::platformAt(512.0);
    auto tagged = plain;
    tagged.collectiveModel = CollectiveModel::analytic;
    expectIdentical(simulate(bundle.traces, tagged),
                    simulate(bundle.traces, plain));
}

TEST(CollEngineTest, BarrierMatchesAnalyticOnUncontendedFabrics)
{
    // A barrier moves zero payload, so its algorithmic critical
    // path is exactly the analytic closed form: ceil(lg P) rounds
    // of one flight latency, on any uncontended fabric.
    for (const int ranks : {2, 3, 4, 8}) {
        const auto bundle = testing::traceOf(
            ranks, [](vm::VmContext &ctx) {
                ctx.compute(500'000);
                ctx.barrier();
            });
        for (const bool tree : {false, true}) {
            auto analytic = testing::platformAt(1000.0);
            if (tree)
                analytic.topology = net::topologies::fatTree(4);
            auto algorithmic = analytic;
            algorithmic.collectiveModel =
                CollectiveModel::algorithmic;
            EXPECT_EQ(
                simulate(bundle.traces, analytic).totalTime.ns(),
                simulate(bundle.traces, algorithmic)
                    .totalTime.ns())
                << ranks << " ranks, tree=" << tree;
        }
    }
}

TEST(CollEngineTest, TwoRankBroadcastMatchesAnalyticExactly)
{
    // P = 2 broadcast is one transfer: serialization + latency on
    // both models. 1000 MB/s = 1 B/ns keeps the rounding exact.
    const auto bundle = testing::traceOf(
        2, [](vm::VmContext &ctx) {
            ctx.compute(800'000);
            ctx.broadcast(256 * 1024, 0);
        });
    auto analytic = testing::platformAt(1000.0);
    analytic.topology = net::topologies::fatTree(4);
    auto algorithmic = analytic;
    algorithmic.collectiveModel = CollectiveModel::algorithmic;
    EXPECT_EQ(simulate(bundle.traces, analytic).totalTime.ns(),
              simulate(bundle.traces, algorithmic).totalTime.ns());
}

TEST(CollEngineTest, UncontendedAllReduceIsInTheAnalyticBallpark)
{
    // The schedules differ from the closed forms in shape, not in
    // magnitude: on an uncontended full-bisection fabric the
    // algorithmic allreduce must land within a small factor of the
    // analytic estimate.
    const auto bundle = testing::traceOf(
        8, [](vm::VmContext &ctx) {
            ctx.compute(200'000);
            ctx.allReduce(64 * 1024);
        });
    auto analytic = testing::platformAt(1000.0);
    analytic.topology = net::topologies::fatTree(4);
    auto algorithmic = analytic;
    algorithmic.collectiveModel = CollectiveModel::algorithmic;
    const auto a =
        simulate(bundle.traces, analytic).totalTime.ns();
    const auto b =
        simulate(bundle.traces, algorithmic).totalTime.ns();
    EXPECT_GT(b, 0);
    EXPECT_LT(static_cast<double>(b), 4.0 * static_cast<double>(a));
    EXPECT_GT(static_cast<double>(b),
              0.25 * static_cast<double>(a));
}

TEST(CollEngineTest, CollectiveTrafficContendsOnTaperedLinks)
{
    // The whole point of the subsystem: a large allreduce must get
    // slower when the fabric tapers, which the analytic model can
    // never show (it prices collectives off-network).
    const auto bundle = testing::traceOf(
        8, [](vm::VmContext &ctx) {
            ctx.compute(100'000);
            ctx.allReduce(Bytes(1) << 20);
        });
    auto full = testing::platformAt(1000.0);
    full.collectiveModel = CollectiveModel::algorithmic;
    auto tapered = full;
    full.topology = net::topologies::fatTree(2);
    tapered.topology = net::topologies::taperedFatTree(2, 0.25);
    const auto full_time =
        simulate(bundle.traces, full).totalTime.ns();
    const auto tapered_time =
        simulate(bundle.traces, tapered).totalTime.ns();
    EXPECT_GT(tapered_time, full_time);

    // And the analytic model is blind to the taper by design.
    auto analytic_full = full;
    auto analytic_tapered = tapered;
    analytic_full.collectiveModel = CollectiveModel::analytic;
    analytic_tapered.collectiveModel = CollectiveModel::analytic;
    EXPECT_EQ(
        simulate(bundle.traces, analytic_full).totalTime.ns(),
        simulate(bundle.traces, analytic_tapered).totalTime.ns());
}

TEST(CollEngineTest, EngineMovesExactlyTheScheduledBytes)
{
    // Engine-level conservation: an algorithmic replay's per-rank
    // message/byte counters are exactly the compiled schedules'
    // tallies (collective steps are real transfers, p2p-free app).
    const int ranks = 6;
    const Bytes bytes = 48 * 1024;
    const auto bundle = testing::traceOf(
        ranks, [bytes](vm::VmContext &ctx) {
            ctx.compute(100'000);
            ctx.allReduce(bytes);
            ctx.broadcast(bytes, 2);
            ctx.barrier();
        });
    auto platform = testing::platformAt(512.0);
    platform.collectiveModel = CollectiveModel::algorithmic;
    const auto result = simulate(bundle.traces, platform);

    const auto allreduce = coll::compileSchedule(
        CollOp::allReduce, ranks, 0, bytes);
    const auto bcast = coll::compileSchedule(CollOp::broadcast,
                                             ranks, 2, bytes);
    const auto barrier =
        coll::compileSchedule(CollOp::barrier, ranks, 0, 0);
    for (int r = 0; r < ranks; ++r) {
        Bytes out = 0;
        std::uint64_t sends = 0;
        std::uint64_t recvs = 0;
        for (const auto *sched :
             {allreduce.get(), bcast.get(), barrier.get()}) {
            for (const coll::Step &step : sched->stepsOf(r)) {
                if (step.isSend) {
                    out += step.bytes;
                    ++sends;
                } else {
                    ++recvs;
                }
            }
        }
        const auto &rr =
            result.perRank[static_cast<std::size_t>(r)];
        EXPECT_EQ(rr.bytesSent, out) << "rank " << r;
        EXPECT_EQ(rr.messagesSent, sends) << "rank " << r;
        EXPECT_EQ(rr.messagesReceived, recvs) << "rank " << r;
    }
}

TEST(CollEngineTest, AlgorithmicReplaysAreDeterministic)
{
    const auto bundle =
        testing::traceOf(8, collectiveMix(96 * 1024, 250'000));
    for (const auto &spec : core::standardTopologies()) {
        auto platform = testing::platformAt(512.0);
        platform.topology = spec.topology;
        platform.collectiveModel = CollectiveModel::algorithmic;
        const auto reference = simulate(bundle.traces, platform);
        EXPECT_GT(reference.totalTime.ns(), 0) << spec.name;
        expectIdentical(simulate(bundle.traces, platform),
                        reference);
        sim::ReplaySession session;
        expectIdentical(session.run(bundle.traces, platform),
                        reference);
        expectIdentical(session.run(bundle.traces, platform),
                        reference);
    }
}

TEST(CollEngineTest, PinnedAlgorithmsReplayAndDiffer)
{
    // Ring and recursive doubling lower the same allreduce into
    // different traffic; both must replay deterministically, and
    // on a multi-node fabric their times must not be accidentally
    // coupled (they may only coincide by arithmetic luck, so pin
    // determinism, not inequality).
    const auto bundle = testing::traceOf(
        8, [](vm::VmContext &ctx) {
            ctx.compute(150'000);
            ctx.allReduce(512 * 1024);
        });
    for (const auto algorithm :
         {Algorithm::ring, Algorithm::recursiveDoubling}) {
        auto platform = testing::platformAt(1000.0);
        platform.topology = net::topologies::taperedFatTree(4);
        platform.collectiveModel = CollectiveModel::algorithmic;
        platform.collectiveAlgorithms.set(CollOp::allReduce,
                                          algorithm);
        const auto reference = simulate(bundle.traces, platform);
        EXPECT_GT(reference.totalTime.ns(), 0);
        expectIdentical(simulate(bundle.traces, platform),
                        reference);
    }
}

TEST(CollEngineTest, RootDisagreementIsFatalInAlgorithmicMode)
{
    // Hand-built trace whose ranks disagree on the broadcast root:
    // the analytic model never reads the root and must keep
    // replaying it; the algorithmic model cannot lower it.
    trace::TraceSet traces("bad-root", 2, 1000.0);
    traces.rankTrace(0).append(trace::CollectiveRec{
        CollOp::broadcast, 1024, 1024, 0});
    traces.rankTrace(1).append(trace::CollectiveRec{
        CollOp::broadcast, 1024, 1024, 1});

    const auto analytic = testing::platformAt(256.0);
    EXPECT_GT(simulate(traces, analytic).totalTime.ns(), 0);

    auto algorithmic = analytic;
    algorithmic.collectiveModel = CollectiveModel::algorithmic;
    EXPECT_THROW(simulate(traces, algorithmic), FatalError);
}

TEST(CollEngineTest, MultiRankNodesUseLocalLinksForCollectives)
{
    // With several ranks per node, schedule steps between
    // node-mates take the intra-node path (local bandwidth, no
    // fabric links) while cross-node steps contend as usual; the
    // replay must stay deterministic and strictly cheaper than the
    // all-remote placement on a congested fabric.
    const auto bundle =
        testing::traceOf(8, collectiveMix(128 * 1024, 200'000));
    auto spread = testing::platformAt(256.0);
    spread.topology = net::topologies::taperedFatTree(2, 0.5);
    spread.collectiveModel = CollectiveModel::algorithmic;
    auto packed = spread;
    packed.cpusPerNode = 4;

    const auto spread_ref = simulate(bundle.traces, spread);
    const auto packed_ref = simulate(bundle.traces, packed);
    expectIdentical(simulate(bundle.traces, packed), packed_ref);
    sim::ReplaySession session;
    expectIdentical(session.run(bundle.traces, packed),
                    packed_ref);
    EXPECT_LT(packed_ref.totalTime.ns(),
              spread_ref.totalTime.ns());
}

TEST(CollEngineTest, TimelineCaptureCoversAlgorithmicReplays)
{
    // Capture keeps a meta entry per transfer (collective steps
    // included, so the arenas stay parallel) and records the
    // blocked-in-collective intervals; timing must be identical
    // with capture on and off.
    const auto bundle =
        testing::traceOf(4, collectiveMix(64 * 1024, 300'000));
    auto platform = testing::platformAt(256.0);
    platform.topology = net::topologies::taperedFatTree(2, 0.5);
    platform.collectiveModel = CollectiveModel::algorithmic;
    const auto plain = simulate(bundle.traces, platform);
    platform.captureTimeline = true;
    const auto captured = simulate(bundle.traces, platform);
    expectIdentical(captured, plain);
    bool saw_collective = false;
    for (Rank r = 0; r < 4; ++r) {
        for (const auto &iv : captured.timeline.intervals(r)) {
            if (iv.state == sim::RankState::collective)
                saw_collective = true;
        }
    }
    EXPECT_TRUE(saw_collective);
}

TEST(CollEngineTest, SessionSweepsAcrossModelsAndTopologies)
{
    // One session alternating models, topologies and bandwidths
    // (the collectiveSweep pattern): the schedule cache must never
    // leak state between runs.
    const auto bundle =
        testing::traceOf(4, collectiveMix(32 * 1024, 200'000));
    sim::ReplaySession session;
    for (const double bandwidth : {64.0, 1024.0}) {
        for (const auto model : {CollectiveModel::analytic,
                                 CollectiveModel::algorithmic}) {
            for (const auto &spec : core::standardTopologies()) {
                auto platform = testing::platformAt(bandwidth);
                platform.topology = spec.topology;
                platform.collectiveModel = model;
                expectIdentical(
                    session.run(bundle.traces, platform),
                    simulate(bundle.traces, platform));
            }
        }
    }
}

TEST(CollEngineTest, CollectiveSweepPairsAnalyticAndAlgorithmic)
{
    const auto bundle =
        testing::traceOf(4, collectiveMix(64 * 1024, 300'000));
    const auto base = sim::platforms::defaultCluster();
    const std::vector<double> grid{16.0, 256.0};
    const auto variants = core::standardVariants(4);
    const std::vector<core::TopologySpec> topologies{
        {"flat-bus", net::topologies::flatBus()},
        {"tapered", net::topologies::taperedFatTree(2, 0.5)},
    };
    const auto campaign = core::collectiveSweep(
        bundle, base, grid, variants, topologies, 1);
    ASSERT_EQ(campaign.analytic.size(), topologies.size());
    ASSERT_EQ(campaign.algorithmic.size(), topologies.size());
    for (std::size_t t = 0; t < topologies.size(); ++t) {
        ASSERT_EQ(campaign.analytic[t].points.size(),
                  grid.size());
        ASSERT_EQ(campaign.algorithmic[t].points.size(),
                  grid.size());
        for (std::size_t i = 0; i < grid.size(); ++i) {
            EXPECT_GT(campaign.analytic[t]
                          .points[i]
                          .originalTime.ns(),
                      0);
            EXPECT_GT(campaign.algorithmic[t]
                          .points[i]
                          .originalTime.ns(),
                      0);
        }
    }
}

} // namespace
} // namespace ovlsim
