/**
 * @file
 * Tests for the synthetic workload generators (src/gen/):
 * structural pins per family, byte conservation, seed determinism
 * across repeats/sessions/thread counts, config-file round trips
 * (CounterRng-driven fuzz), and the by-construction guarantees —
 * every generated trace validates, compiles, and replays
 * deadlock-free on flat and tapered fabrics.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "core/analysis.hh"
#include "core/transform.hh"
#include "gen/gen.hh"
#include "gen/workload_file.hh"
#include "net/topology.hh"
#include "sim/engine.hh"
#include "sim/platform.hh"
#include "sim/program.hh"
#include "trace/trace_io.hh"
#include "trace/validate.hh"
#include "util/counter_rng.hh"
#include "util/logging.hh"

namespace ovlsim::gen {
namespace {

WorkloadConfig
configOfKind(WorkloadKind kind)
{
    WorkloadConfig config;
    config.kind = kind;
    config.ranks = 24;
    config.iterations = 3;
    // Exercise the stochastic paths everywhere they exist.
    config.computeJitter = 0.2;
    config.gradientBuckets = 4;
    return config;
}

const WorkloadKind allKinds[] = {
    WorkloadKind::stencil,
    WorkloadKind::mlTraining,
    WorkloadKind::fanIn,
    WorkloadKind::dht,
};

std::string
traceText(const trace::TraceSet &traces)
{
    std::ostringstream os;
    trace::writeTraceText(traces, os);
    return os.str();
}

/** Destinations of rank r's blocking sends. */
std::set<Rank>
sendPeers(const trace::TraceSet &traces, Rank r)
{
    std::set<Rank> peers;
    for (const auto &rec : traces.rankTrace(r).records()) {
        if (const auto *s = std::get_if<trace::SendRec>(&rec))
            peers.insert(s->dst);
    }
    return peers;
}

// -- structural pins -------------------------------------------------

TEST(GenStencil, GridFactorizationIsNearSquare)
{
    EXPECT_EQ(stencilGridDims(16, 2), (std::vector<int>{4, 4}));
    EXPECT_EQ(stencilGridDims(24, 3), (std::vector<int>{4, 3, 2}));
    EXPECT_EQ(stencilGridDims(7, 2), (std::vector<int>{7, 1}));
    EXPECT_EQ(stencilGridDims(64, 3), (std::vector<int>{4, 4, 4}));
    EXPECT_EQ(stencilGridDims(1024, 2),
              (std::vector<int>{32, 32}));
}

TEST(GenStencil, NeighborSetsMatchTheProcessGrid)
{
    WorkloadConfig config = configOfKind(WorkloadKind::stencil);
    config.ranks = 16; // 4x4 grid, row-major
    config.stencilDims = 2;
    const auto traces = generateTrace(config, 1);

    // Interior rank (1,1): four neighbours.
    EXPECT_EQ(sendPeers(traces, 5), (std::set<Rank>{1, 4, 6, 9}));
    // Corner rank (0,0): two neighbours.
    EXPECT_EQ(sendPeers(traces, 0), (std::set<Rank>{1, 4}));
    // Edge rank (0,2): three neighbours.
    EXPECT_EQ(sendPeers(traces, 2), (std::set<Rank>{1, 3, 6}));

    // Every exchange carries exactly haloBytes.
    for (const auto &rt : traces.all()) {
        for (const auto &rec : rt.records()) {
            if (const auto *s =
                    std::get_if<trace::SendRec>(&rec)) {
                EXPECT_EQ(s->bytes, config.haloBytes);
            }
        }
    }
}

TEST(GenMlTraining, BucketedAllreducePayloadsSumToGradient)
{
    WorkloadConfig config =
        configOfKind(WorkloadKind::mlTraining);
    config.gradientBytes = 10;
    config.gradientBuckets = 4;
    config.iterations = 2;
    const auto traces = generateTrace(config, 7);

    for (const auto &rt : traces.all()) {
        std::vector<Bytes> payloads;
        for (const auto &rec : rt.records()) {
            if (const auto *g =
                    std::get_if<trace::CollectiveRec>(&rec)) {
                EXPECT_EQ(g->op, trace::CollOp::allReduce);
                payloads.push_back(g->sendBytes);
            }
        }
        // iterations x buckets allreduces; the remainder rides on
        // the last bucket of each step.
        ASSERT_EQ(payloads.size(), 8u);
        EXPECT_EQ(payloads[0], 2u);
        EXPECT_EQ(payloads[3], 4u);
        Bytes step_total = 0;
        for (std::size_t b = 0; b < 4; ++b)
            step_total += payloads[b];
        EXPECT_EQ(step_total, config.gradientBytes);
    }
}

TEST(GenFanIn, DegreesMatchTheRequestSchedule)
{
    WorkloadConfig config = configOfKind(WorkloadKind::fanIn);
    config.ranks = 12;
    config.servers = 3;
    config.requestsPerClient = 4;
    config.iterations = 2;
    const auto traces = generateTrace(config, 3);

    const int clients = config.ranks - config.servers;
    std::size_t server_recvs = 0;
    for (Rank s = 0; s < config.servers; ++s) {
        for (const auto &rec : traces.rankTrace(s).records()) {
            if (std::holds_alternative<trace::RecvRec>(rec))
                ++server_recvs;
        }
        // Servers only ever talk to clients.
        for (const Rank peer : sendPeers(traces, s))
            EXPECT_GE(peer, config.servers);
    }
    EXPECT_EQ(server_recvs,
              static_cast<std::size_t>(
                  clients * config.requestsPerClient *
                  config.iterations));

    // Every client issues exactly requestsPerClient requests per
    // round, all to server ranks.
    for (Rank c = config.servers; c < config.ranks; ++c) {
        std::size_t sends = 0;
        for (const auto &rec : traces.rankTrace(c).records()) {
            if (const auto *s =
                    std::get_if<trace::SendRec>(&rec)) {
                EXPECT_LT(s->dst, config.servers);
                ++sends;
            }
        }
        EXPECT_EQ(sends,
                  static_cast<std::size_t>(
                      config.requestsPerClient *
                      config.iterations));
    }
}

TEST(GenDht, RoutesTouchOnlyActiveNodesAndReplyToOrigin)
{
    WorkloadConfig config = configOfKind(WorkloadKind::dht);
    config.ranks = 16;
    config.churnProbability = 0.3;
    const auto traces = generateTrace(config, 11);

    // Every rank's sends go to other ranks (no self-traffic) and
    // the trace carries some forwarding traffic.
    std::size_t messages = 0;
    for (const auto &rt : traces.all()) {
        for (const auto &rec : rt.records()) {
            if (const auto *s =
                    std::get_if<trace::SendRec>(&rec)) {
                EXPECT_NE(s->dst, rt.rank());
                ++messages;
            }
        }
    }
    EXPECT_GT(messages, 0u);
}

// -- by-construction guarantees --------------------------------------

TEST(Gen, EveryFamilyValidatesLinksAndConservesBytes)
{
    for (const auto kind : allKinds) {
        const auto config = configOfKind(kind);
        const auto traces = generateTrace(config, 5);
        const auto report = trace::validateTraceSet(traces);
        EXPECT_TRUE(report.issues.empty())
            << workloadKindName(kind) << ":\n"
            << report.toString();

        Bytes sent = 0;
        Bytes received = 0;
        std::set<trace::MessageId> ids;
        for (const auto &rt : traces.all()) {
            for (const auto &rec : rt.records()) {
                if (const auto *s =
                        std::get_if<trace::SendRec>(&rec)) {
                    sent += s->bytes;
                    EXPECT_NE(s->message,
                              trace::invalidMessageId);
                    ids.insert(s->message);
                } else if (const auto *r =
                               std::get_if<trace::RecvRec>(
                                   &rec)) {
                    received += r->bytes;
                }
            }
        }
        EXPECT_EQ(sent, received) << workloadKindName(kind);
        // Linked ids are dense and unique across the trace.
        EXPECT_EQ(ids.size(), traces.totalMessages())
            << workloadKindName(kind);
    }
}

TEST(Gen, EveryFamilyCompilesAndReplaysOnFlatAndTaperedFabrics)
{
    const auto flat = sim::platforms::defaultCluster();
    const auto tapered = sim::platforms::topologyCluster(
        net::topologies::taperedFatTree(4, 0.5));
    for (const auto kind : allKinds) {
        const auto config = configOfKind(kind);
        const auto traces = generateTrace(config, 17);
        const auto program = sim::compileTrace(traces);
        const auto on_flat = sim::simulate(program, flat);
        const auto on_tapered = sim::simulate(program, tapered);
        EXPECT_GT(on_flat.totalTime.ns(), 0)
            << workloadKindName(kind);
        EXPECT_GT(on_tapered.totalTime.ns(), 0)
            << workloadKindName(kind);
    }
}

TEST(Gen, OverlapMetadataSatisfiesTransformInvariants)
{
    for (const auto kind : allKinds) {
        const auto config = configOfKind(kind);
        const auto bundle = generateWorkload(config, 23);
        for (const auto &[id, info] : bundle.overlap.all()) {
            EXPECT_GE(info.sendInstr, info.prodWindowBegin);
            EXPECT_GE(info.consWindowEnd, info.recvInstr);
            EXPECT_GT(info.blockBytes, 0u);
            EXPECT_GE(info.blockBytes * info.blocks(),
                      info.bytes);
            for (std::size_t b = 0; b < info.blocks(); ++b) {
                EXPECT_GE(info.blockLastStore[b],
                          info.prodWindowBegin);
                EXPECT_LE(info.blockLastStore[b],
                          info.sendInstr);
                EXPECT_GE(info.blockFirstLoad[b],
                          info.recvInstr);
                EXPECT_LE(info.blockFirstLoad[b],
                          info.consWindowEnd);
            }
        }
        // The transform accepts the synthesized profiles and
        // chunks every profiled message.
        core::TransformConfig tc;
        const auto built = core::buildOverlappedTrace(
            bundle.traces, bundle.overlap, tc);
        EXPECT_EQ(built.chunkedMessages, bundle.overlap.size())
            << workloadKindName(kind);
        const auto report =
            trace::validateTraceSet(built.traces);
        EXPECT_TRUE(report.issues.empty())
            << workloadKindName(kind) << ":\n"
            << report.toString();
    }
}

// -- determinism -----------------------------------------------------

TEST(Gen, SameSeedIsBitIdenticalAcrossRepeats)
{
    for (const auto kind : allKinds) {
        const auto config = configOfKind(kind);
        const auto a = traceText(generateTrace(config, 42));
        const auto b = traceText(generateTrace(config, 42));
        EXPECT_EQ(a, b) << workloadKindName(kind);
        const auto c = traceText(generateTrace(config, 43));
        EXPECT_NE(a, c) << workloadKindName(kind);
    }
}

TEST(Gen, KnownSeedPinsAcrossSessions)
{
    // Cross-session pin: a fixed (config, seed) must produce this
    // exact shape forever — a change here means generation is no
    // longer stable across hosts or versions.
    WorkloadConfig config = configOfKind(WorkloadKind::fanIn);
    const auto traces = generateTrace(config, 2026);
    EXPECT_EQ(traces.totalRecords(), 1440u);
    EXPECT_EQ(traces.totalMessages(), 480u);
    const auto first_peers = sendPeers(traces, config.servers);
    EXPECT_FALSE(first_peers.empty());
    // The routing draw itself is pinned: CounterRng is a pure
    // function of (seed, stream, counter).
    EXPECT_EQ(CounterRng(2026, 0).at(0),
              CounterRng(2026, 0).at(0));
}

TEST(Gen, ScalingSweepIsBitIdenticalAcrossThreadCounts)
{
    WorkloadConfig config = configOfKind(WorkloadKind::stencil);
    config.iterations = 2;
    const auto platform = sim::platforms::defaultCluster();
    const std::vector<int> grid{8, 12, 16, 24};
    const auto variants = core::standardVariants(4);

    const auto t1 = core::scalingSweep(config, 9, platform, grid,
                                       variants, 1);
    for (const int threads : {2, 8}) {
        const auto tn = core::scalingSweep(config, 9, platform,
                                           grid, variants,
                                           threads);
        ASSERT_EQ(tn.points.size(), t1.points.size());
        for (std::size_t i = 0; i < t1.points.size(); ++i) {
            EXPECT_EQ(tn.points[i].ranks, t1.points[i].ranks);
            EXPECT_EQ(tn.points[i].messages,
                      t1.points[i].messages);
            EXPECT_EQ(tn.points[i].originalTime.ns(),
                      t1.points[i].originalTime.ns())
                << "threads=" << threads << " point " << i;
            ASSERT_EQ(tn.points[i].variantTimes.size(),
                      t1.points[i].variantTimes.size());
            for (std::size_t v = 0;
                 v < t1.points[i].variantTimes.size(); ++v) {
                EXPECT_EQ(tn.points[i].variantTimes[v].ns(),
                          t1.points[i].variantTimes[v].ns())
                    << "threads=" << threads << " point " << i
                    << " variant " << v;
            }
        }
    }
    // The sweep grows the machine; the original time must move
    // with it (the points are genuinely different workloads).
    EXPECT_NE(t1.points.front().originalTime.ns(),
              t1.points.back().originalTime.ns());
}

// -- campaign drivers ------------------------------------------------

TEST(Gen, GeneratedWorkloadsRunThroughExistingCampaignDrivers)
{
    // The acceptance bar: generated bundles drop into the existing
    // campaign layer unchanged.
    const auto bundle =
        generateWorkload(configOfKind(WorkloadKind::stencil), 31);
    const auto platform = sim::platforms::defaultCluster();
    const std::vector<double> bandwidths{64.0, 1024.0};
    const auto variants = core::standardVariants(4);

    const auto sweep = core::bandwidthSweep(bundle, platform,
                                            bandwidths, variants);
    ASSERT_EQ(sweep.points.size(), bandwidths.size());
    for (const auto &point : sweep.points) {
        EXPECT_GT(point.originalTime.ns(), 0);
        ASSERT_EQ(point.variantTimes.size(), variants.size());
    }

    const auto dht =
        generateWorkload(configOfKind(WorkloadKind::dht), 31);
    const std::vector<core::TopologySpec> topologies{
        {"flat-bus", net::topologies::flatBus()},
        {"fat-tree-taper2",
         net::topologies::taperedFatTree(4, 0.5)},
    };
    const auto topo = core::topologySweep(
        dht, platform, bandwidths, variants, topologies);
    ASSERT_EQ(topo.sweeps.size(), topologies.size());
    for (const auto &s : topo.sweeps)
        EXPECT_EQ(s.points.size(), bandwidths.size());
}

// -- config validation and file round trips --------------------------

TEST(GenConfig, InvalidParametersAreRejectedByKey)
{
    WorkloadConfig config;
    config.ranks = 1;
    EXPECT_THROW(config.validate(), FatalError);
    try {
        config.validate();
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("'ranks'"),
                  std::string::npos);
    }

    config = configOfKind(WorkloadKind::fanIn);
    config.servers = config.ranks;
    try {
        config.validate();
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("'servers'"),
                  std::string::npos);
    }

    config = configOfKind(WorkloadKind::stencil);
    config.stencilDims = 5;
    EXPECT_THROW(config.validate(), FatalError);
    config = configOfKind(WorkloadKind::dht);
    config.churnProbability = 1.0;
    EXPECT_THROW(config.validate(), FatalError);
    config = configOfKind(WorkloadKind::mlTraining);
    config.gradientBytes = 2;
    config.gradientBuckets = 4;
    EXPECT_THROW(config.validate(), FatalError);
}

TEST(GenConfig, KindNamesRoundTrip)
{
    for (const auto kind : allKinds)
        EXPECT_EQ(workloadKindFromName(workloadKindName(kind)),
                  kind);
    EXPECT_THROW(workloadKindFromName("mapreduce"), FatalError);
}

TEST(GenConfig, FileParserInheritsKeyValueRobustness)
{
    // Duplicate keys are fatal with file+line, like platform files.
    std::istringstream dup("ranks = 8\nranks = 16\n");
    try {
        readWorkloadConfig(dup, "dup.wl");
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("dup.wl line 2"), std::string::npos);
        EXPECT_NE(what.find("duplicate key 'ranks'"),
                  std::string::npos);
    }

    std::istringstream unknown("frobnicate = 1\n");
    EXPECT_THROW(readWorkloadConfig(unknown, "u.wl"), FatalError);
    std::istringstream nan_mips("mips = nan\n");
    EXPECT_THROW(readWorkloadConfig(nan_mips, "n.wl"),
                 FatalError);
    std::istringstream neg("halo_bytes = -4\n");
    EXPECT_THROW(readWorkloadConfig(neg, "neg.wl"), FatalError);
    std::istringstream bad_kind("kind = mapreduce\n");
    EXPECT_THROW(readWorkloadConfig(bad_kind, "k.wl"),
                 FatalError);
}

TEST(GenConfig, RoundTripFuzz)
{
    // CounterRng-driven fuzz: any valid config must survive a
    // write/read round trip with every field bit-exact.
    CounterRng rng(0xf00d);
    for (int i = 0; i < 64; ++i) {
        auto draws = rng.substream(static_cast<std::uint64_t>(i));
        WorkloadConfig config;
        config.kind = allKinds[draws.nextBelow(4)];
        config.name = "fuzz-" + std::to_string(i);
        config.ranks = static_cast<int>(draws.nextInRange(2, 96));
        config.iterations =
            static_cast<int>(draws.nextInRange(1, 6));
        config.mips = draws.nextDouble(100.0, 4000.0);
        config.stencilDims =
            static_cast<int>(draws.nextInRange(1, 4));
        config.haloBytes =
            static_cast<Bytes>(draws.nextInRange(1, 1 << 20));
        config.computePerIteration = static_cast<Instr>(
            draws.nextInRange(0, 10'000'000));
        config.computeJitter = draws.nextDouble(0.0, 0.99);
        config.gradientBuckets =
            static_cast<int>(draws.nextInRange(1, 8));
        config.gradientBytes = static_cast<Bytes>(
            draws.nextInRange(config.gradientBuckets, 1 << 26));
        config.stepInstr = static_cast<Instr>(
            draws.nextInRange(0, 100'000'000));
        config.servers = static_cast<int>(
            draws.nextInRange(1, config.ranks - 1));
        config.requestsPerClient =
            static_cast<int>(draws.nextInRange(1, 8));
        config.requestBytes =
            static_cast<Bytes>(draws.nextInRange(1, 65536));
        config.replyBytes =
            static_cast<Bytes>(draws.nextInRange(1, 1 << 20));
        config.clientInstr =
            static_cast<Instr>(draws.nextInRange(0, 1'000'000));
        config.serverInstr =
            static_cast<Instr>(draws.nextInRange(0, 1'000'000));
        config.churnProbability = draws.nextDouble(0.0, 0.99);
        config.opsPerRound =
            static_cast<int>(draws.nextInRange(1, 6));
        config.storeFraction = draws.nextDouble(0.0, 1.0);
        config.keyBytes =
            static_cast<Bytes>(draws.nextInRange(1, 4096));
        config.valueBytes =
            static_cast<Bytes>(draws.nextInRange(1, 1 << 20));
        config.hopInstr =
            static_cast<Instr>(draws.nextInRange(0, 500'000));

        std::ostringstream os;
        writeWorkloadConfig(config, os);
        std::istringstream is(os.str());
        const auto back = readWorkloadConfig(is, "fuzz.wl");

        EXPECT_EQ(back.kind, config.kind);
        EXPECT_EQ(back.name, config.name);
        EXPECT_EQ(back.ranks, config.ranks);
        EXPECT_EQ(back.iterations, config.iterations);
        EXPECT_EQ(back.mips, config.mips);
        EXPECT_EQ(back.stencilDims, config.stencilDims);
        EXPECT_EQ(back.haloBytes, config.haloBytes);
        EXPECT_EQ(back.computePerIteration,
                  config.computePerIteration);
        EXPECT_EQ(back.computeJitter, config.computeJitter);
        EXPECT_EQ(back.gradientBytes, config.gradientBytes);
        EXPECT_EQ(back.gradientBuckets, config.gradientBuckets);
        EXPECT_EQ(back.stepInstr, config.stepInstr);
        EXPECT_EQ(back.servers, config.servers);
        EXPECT_EQ(back.requestsPerClient,
                  config.requestsPerClient);
        EXPECT_EQ(back.requestBytes, config.requestBytes);
        EXPECT_EQ(back.replyBytes, config.replyBytes);
        EXPECT_EQ(back.clientInstr, config.clientInstr);
        EXPECT_EQ(back.serverInstr, config.serverInstr);
        EXPECT_EQ(back.churnProbability,
                  config.churnProbability);
        EXPECT_EQ(back.opsPerRound, config.opsPerRound);
        EXPECT_EQ(back.storeFraction, config.storeFraction);
        EXPECT_EQ(back.keyBytes, config.keyBytes);
        EXPECT_EQ(back.valueBytes, config.valueBytes);
        EXPECT_EQ(back.hopInstr, config.hopInstr);
    }
}

TEST(GenConfig, WithRankCountPreservesShape)
{
    WorkloadConfig config = configOfKind(WorkloadKind::fanIn);
    config.ranks = 12;
    config.servers = 3; // 1:4 server:rank ratio
    const auto grown = withRankCount(config, 48);
    EXPECT_EQ(grown.ranks, 48);
    EXPECT_EQ(grown.servers, 12);
    const auto shrunk = withRankCount(config, 4);
    EXPECT_EQ(shrunk.ranks, 4);
    EXPECT_EQ(shrunk.servers, 1);

    WorkloadConfig stencil =
        configOfKind(WorkloadKind::stencil);
    const auto big = withRankCount(stencil, 1024);
    EXPECT_EQ(big.ranks, 1024);
    // And the re-targeted workload actually generates.
    const auto traces = generateTrace(withRankCount(stencil, 36),
                                      1);
    EXPECT_EQ(traces.ranks(), 36);
}

} // namespace
} // namespace ovlsim::gen
