/**
 * @file
 * The trace-lowering compiler (sim/program.hh).
 *
 * Pins three contracts. (1) Lossless lowering: compile -> decode
 * reproduces the source trace set record for record, across
 * hand-written traces covering every record kind and across
 * tracer/transform-generated traces (including chunked overlap
 * variants, the largest programs campaigns compile). (2) Replay
 * equivalence: replaying a compiled program is bit-identical to the
 * compile-on-entry simulate() path on fresh engines and reused
 * sessions alike. (3) Compile-time validation: the lowering rejects
 * exactly what the engine used to reject at replay (wildcards, bad
 * peers, disagreeing collectives, request misuse) with the same
 * error taxonomy, while incomplete traces still compile and
 * deadlock at replay with the engine's diagnosis.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/analysis.hh"
#include "core/transform.hh"
#include "helpers.hh"
#include "sim/engine.hh"
#include "sim/program.hh"
#include "trace/record.hh"
#include "trace/trace.hh"

namespace ovlsim {
namespace {

using trace::CollectiveRec;
using trace::CollOp;
using trace::CpuBurst;
using trace::IRecvRec;
using trace::ISendRec;
using trace::Record;
using trace::RecvRec;
using trace::SendRec;
using trace::TraceSet;
using trace::WaitAllRec;
using trace::WaitRec;

using testing::expectIdentical;

/** Record-for-record equality via the canonical rendering (covers
 * every field of every alternative). */
void
expectSameTraces(const TraceSet &a, const TraceSet &b)
{
    EXPECT_EQ(a.name(), b.name());
    EXPECT_EQ(a.mips(), b.mips());
    ASSERT_EQ(a.ranks(), b.ranks());
    for (Rank r = 0; r < a.ranks(); ++r) {
        const auto &ra = a.rankTrace(r).records();
        const auto &rb = b.rankTrace(r).records();
        ASSERT_EQ(ra.size(), rb.size()) << "rank " << r;
        for (std::size_t i = 0; i < ra.size(); ++i) {
            EXPECT_EQ(ra[i].index(), rb[i].index())
                << "rank " << r << " record " << i;
            EXPECT_EQ(trace::recordToString(ra[i]),
                      trace::recordToString(rb[i]))
                << "rank " << r << " record " << i;
        }
    }
}

/**
 * A trace exercising every record kind plus the representational
 * corner cases: request-id reuse after Wait, registers recycled
 * through WaitAll, rooted collectives whose per-rank byte counts
 * differ (the compiler maxes them cross-rank for the cost table but
 * must decode the per-rank originals), and distinct tags/sizes per
 * channel.
 */
TraceSet
everyKindTrace()
{
    TraceSet traces("every-kind", 3, 1250.0);
    auto &r0 = traces.rankTrace(0);
    r0.append(CpuBurst{123'456});
    r0.append(ISendRec{1, 7, 4096, 11, 5});
    r0.append(IRecvRec{2, 9, 512, 12, 6});
    r0.append(CpuBurst{1'000});
    r0.append(WaitRec{5});
    r0.append(ISendRec{1, 7, 8192, 13, 5}); // id 5 reused after wait
    r0.append(WaitRec{6});
    r0.append(WaitRec{5});
    r0.append(CollectiveRec{CollOp::gather, 2048, 0, 1});
    r0.append(SendRec{2, 3, 64, 14});
    r0.append(CollectiveRec{CollOp::barrier, 0, 0, 0});

    auto &r1 = traces.rankTrace(1);
    r1.append(RecvRec{0, 7, 4096, 11});
    r1.append(RecvRec{0, 7, 8192, 13});
    r1.append(CollectiveRec{CollOp::gather, 2048, 6144, 1});
    r1.append(ISendRec{2, 2, 256, 15, 40});
    r1.append(ISendRec{2, 2, 128, 16, 41});
    r1.append(WaitAllRec{});
    r1.append(ISendRec{2, 2, 32, 17, 40}); // register recycled
    r1.append(WaitRec{40});
    r1.append(CollectiveRec{CollOp::barrier, 0, 0, 0});

    auto &r2 = traces.rankTrace(2);
    r2.append(CpuBurst{50'000});
    r2.append(ISendRec{0, 9, 512, 12, 8});
    r2.append(CollectiveRec{CollOp::gather, 1024, 0, 1});
    r2.append(RecvRec{1, 2, 256, 15});
    r2.append(RecvRec{1, 2, 128, 16});
    r2.append(RecvRec{1, 2, 32, 17});
    r2.append(RecvRec{0, 3, 64, 14});
    r2.append(WaitRec{8});
    r2.append(CollectiveRec{CollOp::barrier, 0, 0, 0});
    return traces;
}

TEST(ProgramCompileTest, RoundTripPreservesEveryRecordKind)
{
    const auto traces = everyKindTrace();
    const auto program = sim::compileTrace(traces);
    EXPECT_EQ(program.totalOps(), traces.totalRecords());
    EXPECT_EQ(program.totalSends(), traces.totalMessages());
    expectSameTraces(program.decode(), traces);
}

TEST(ProgramCompileTest, RoundTripOnGeneratedTraces)
{
    // Tracer-generated bundles and their chunked overlap variants
    // (the latter are the biggest programs campaigns compile).
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(64 * 1024, 400'000, 5));
    expectSameTraces(
        sim::compileTrace(bundle.traces).decode(), bundle.traces);

    for (const auto &variant : core::standardVariants(8)) {
        const auto overlapped =
            core::buildOverlappedTrace(bundle.traces,
                                       bundle.overlap,
                                       variant.config)
                .traces;
        expectSameTraces(sim::compileTrace(overlapped).decode(),
                         overlapped);
    }
}

TEST(ProgramCompileTest, CollectiveTableMaxesBytesAcrossRanks)
{
    const auto traces = everyKindTrace();
    const auto program = sim::compileTrace(traces);
    ASSERT_EQ(program.collectives().size(), 2u);
    const auto &gather = program.collectives()[0];
    EXPECT_EQ(gather.op, CollOp::gather);
    EXPECT_EQ(gather.sendBytes, 2048u); // max(2048, 2048, 1024)
    EXPECT_EQ(gather.recvBytes, 6144u); // max(0, 6144, 0)
    EXPECT_EQ(program.collectives()[1].op, CollOp::barrier);
}

TEST(ProgramCompileTest, RegistersAreRecycled)
{
    // Rank 1 posts two concurrent requests, retires both through
    // WaitAll, then posts another: the register table must stay at
    // the high-water mark of two, not grow per post.
    const auto program = sim::compileTrace(everyKindTrace());
    EXPECT_EQ(program.registerCount(1), 2u);
    EXPECT_EQ(program.registerCount(0), 2u);
    EXPECT_EQ(program.registerCount(2), 1u);
}

TEST(ProgramReplayTest, CompiledReplayMatchesCompileOnEntry)
{
    const auto traces = everyKindTrace();
    const auto program = sim::compileShared(traces);
    sim::ReplaySession session;
    for (const double bandwidth : {16.0, 256.0, 4096.0}) {
        const auto platform = testing::platformAt(bandwidth);
        const auto via_traces = simulate(traces, platform);
        expectIdentical(simulate(*program, platform), via_traces);
        expectIdentical(session.run(*program, platform),
                        via_traces);
    }
}

TEST(ProgramReplayTest, BatchAcceptsPreCompiledPrograms)
{
    const auto bundle = testing::traceOf(
        2, testing::producerConsumer(256 * 1024, 800'000));
    const auto program = sim::compileShared(bundle.traces);

    std::vector<sim::SimJob> jobs;
    for (const double bandwidth : {32.0, 512.0}) {
        jobs.emplace_back(program,
                          testing::platformAt(bandwidth));
        jobs.emplace_back(&bundle.traces,
                          testing::platformAt(bandwidth));
    }
    const auto results = simulateBatch(jobs, 2);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); i += 2) {
        // Program-carrying and trace-carrying jobs of the same
        // platform must agree exactly.
        expectIdentical(results[i], results[i + 1]);
        expectIdentical(results[i],
                        simulate(*program, jobs[i].platform));
    }
}

TEST(ProgramCompileTest, RejectsWildcardsAndBadPeers)
{
    const auto compile = [](const TraceSet &traces) {
        return sim::compileTrace(traces);
    };
    {
        TraceSet traces("wild", 2);
        traces.rankTrace(0).append(SendRec{anyRank, 5, 64, 1});
        EXPECT_THROW(compile(traces), FatalError);
    }
    {
        TraceSet traces("wild", 2);
        traces.rankTrace(1).append(IRecvRec{0, anyTag, 64, 1, 7});
        EXPECT_THROW(compile(traces), FatalError);
    }
    {
        TraceSet traces("bad-peer", 2);
        traces.rankTrace(0).append(SendRec{5, 1, 64, 1});
        EXPECT_THROW(compile(traces), FatalError);
    }
}

TEST(ProgramCompileTest, RejectsRequestMisuse)
{
    {
        // Wait on a request that was never posted: the engine used
        // to panic mid-replay; the compiler keeps the taxonomy.
        TraceSet traces("t", 1);
        traces.rankTrace(0).append(WaitRec{99});
        EXPECT_THROW(sim::compileTrace(traces), PanicError);
    }
    {
        // Reposting a request id while it is still live.
        TraceSet traces("t", 2);
        auto &r0 = traces.rankTrace(0);
        r0.append(ISendRec{1, 1, 64, 1, 7});
        r0.append(ISendRec{1, 1, 64, 2, 7});
        EXPECT_THROW(sim::compileTrace(traces), FatalError);
    }
    {
        // Disagreeing collective sequences.
        TraceSet traces("t", 2);
        traces.rankTrace(0).append(
            CollectiveRec{CollOp::barrier, 0, 0, 0});
        traces.rankTrace(1).append(
            CollectiveRec{CollOp::allReduce, 8, 8, 0});
        EXPECT_THROW(sim::compileTrace(traces), FatalError);
    }
}

TEST(ProgramCompileTest, IncompleteTracesCompileAndDeadlock)
{
    // Structural completeness is the replay engine's job: a recv
    // with no matching send must lower fine and then deadlock with
    // the engine's diagnosis.
    TraceSet traces("stuck", 2);
    traces.rankTrace(0).append(RecvRec{1, 1, 100, 1});
    traces.rankTrace(1).append(CpuBurst{1'000});
    const auto program = sim::compileTrace(traces);
    try {
        simulate(program, testing::platformAt(256.0));
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("deadlock"),
                  std::string::npos);
    }
}

} // namespace
} // namespace ovlsim
