/**
 * @file
 * Unit tests for the virtual machine and the tracing tool.
 */

#include <gtest/gtest.h>

#include <vector>

#include "tests/helpers.hh"
#include "trace/validate.hh"
#include "tracer/tracer.hh"
#include "util/logging.hh"
#include "vm/vm.hh"

namespace ovlsim {
namespace {

using tracer::profileBlockSize;
using tracer::TracerConfig;
using tracer::traceApplication;

/** Observer that records every callback kind for inspection. */
class RecordingObserver : public vm::VmObserver
{
  public:
    struct Access
    {
        Rank rank;
        Instr at;
        bool store;
        Bytes offset;
        Bytes len;
    };

    std::vector<Access> accesses;
    Instr computed = 0;

    void
    onCompute(Rank, Instr, Instr n) override
    {
        computed += n;
    }
    void
    onStore(Rank r, Instr at, vm::Buffer, Bytes offset,
            Bytes len) override
    {
        accesses.push_back(Access{r, at, true, offset, len});
    }
    void
    onLoad(Rank r, Instr at, vm::Buffer, Bytes offset,
           Bytes len) override
    {
        accesses.push_back(Access{r, at, false, offset, len});
    }
};

TEST(VmTest, InstructionCounterAdvances)
{
    RecordingObserver observer;
    vm::VmContext ctx(0, 1, observer);
    EXPECT_EQ(ctx.now(), 0u);
    ctx.compute(100);
    ctx.compute(0); // no-op
    ctx.compute(23);
    EXPECT_EQ(ctx.now(), 123u);
    EXPECT_EQ(observer.computed, 123u);
}

TEST(VmTest, BufferRangeChecks)
{
    RecordingObserver observer;
    vm::VmContext ctx(0, 2, observer);
    const auto buf = ctx.allocBuffer("b", 100);
    EXPECT_NO_THROW(ctx.touchStore(buf, 0, 100));
    EXPECT_NO_THROW(ctx.touchStore(buf, 99, 1));
    EXPECT_THROW(ctx.touchStore(buf, 0, 101), FatalError);
    EXPECT_THROW(ctx.touchStore(buf, 100, 1), FatalError);
    EXPECT_THROW(ctx.touchStore(buf, 0, 0), FatalError);
    EXPECT_THROW(ctx.touchLoad(vm::Buffer{99, 10}, 0, 1),
                 FatalError);
    EXPECT_THROW(ctx.allocBuffer("empty", 0), FatalError);
}

TEST(VmTest, PeerValidation)
{
    RecordingObserver observer;
    vm::VmContext ctx(0, 2, observer);
    const auto buf = ctx.allocBuffer("b", 64);
    EXPECT_THROW(ctx.send(buf, 0, 64, 2, 1), FatalError);
    EXPECT_THROW(ctx.send(buf, 0, 64, -1, 1), FatalError);
    EXPECT_THROW(ctx.send(buf, 0, 64, 0, 1), FatalError);
    EXPECT_THROW(ctx.broadcast(8, 5), FatalError);
}

TEST(VmTest, RequestDiscipline)
{
    RecordingObserver observer;
    vm::VmContext ctx(0, 2, observer);
    const auto buf = ctx.allocBuffer("b", 64);
    const auto req = ctx.isend(buf, 0, 64, 1, 1);
    EXPECT_NO_THROW(ctx.wait(req));
    EXPECT_THROW(ctx.wait(req), FatalError); // already completed
    ctx.irecv(buf, 0, 64, 1, 2);
    EXPECT_THROW(ctx.finish(), FatalError); // outstanding request
    ctx.waitAll();
    EXPECT_NO_THROW(ctx.finish());
}

TEST(VmTest, ComputeStoreCoversRangeAndChargesInstr)
{
    RecordingObserver observer;
    vm::VmContext ctx(0, 1, observer);
    const auto buf = ctx.allocBuffer("b", 1000);
    ctx.computeStore(buf, 0, 1000, 2.0, 7);

    Bytes covered = 0;
    Bytes expected_next = 0;
    for (const auto &access : observer.accesses) {
        EXPECT_TRUE(access.store);
        EXPECT_EQ(access.offset, expected_next);
        covered += access.len;
        expected_next = access.offset + access.len;
    }
    EXPECT_EQ(covered, 1000u);
    EXPECT_NEAR(static_cast<double>(observer.computed), 2000.0,
                8.0);
    // Stores happen at strictly increasing instruction counts.
    for (std::size_t i = 1; i < observer.accesses.size(); ++i) {
        EXPECT_GT(observer.accesses[i].at,
                  observer.accesses[i - 1].at);
    }
}

TEST(VmHostTest, RunsEveryRankSequentially)
{
    RecordingObserver observer;
    std::vector<Rank> ran;
    vm::VmHost::run(
        4,
        [&ran](vm::VmContext &ctx) {
            ran.push_back(ctx.rank());
            ctx.compute(10);
        },
        observer);
    EXPECT_EQ(ran, (std::vector<Rank>{0, 1, 2, 3}));
}

TEST(ProfileBlockSizeTest, Properties)
{
    TracerConfig config;
    config.shadowBlockBytes = 256;
    config.maxProfileBlocks = 64;
    // Tiny messages collapse to one shadow-aligned block.
    EXPECT_EQ(profileBlockSize(1, config), 256u);
    EXPECT_EQ(profileBlockSize(256, config), 256u);
    // Large messages are capped at maxProfileBlocks blocks.
    const Bytes big = 10 * 1024 * 1024;
    const Bytes block = profileBlockSize(big, config);
    EXPECT_EQ(block % config.shadowBlockBytes, 0u);
    EXPECT_LE((big + block - 1) / block, config.maxProfileBlocks);
}

TEST(TracerTest, EmitsExpectedRecordSequence)
{
    const auto bundle = testing::traceOf(
        2, testing::packedExchange(64 * 1024, 1'000'000));
    const auto &r0 = bundle.traces.rankTrace(0).records();

    // Rank 0: burst (compute + pack pieces merge into bursts
    // between stores), then the send.
    ASSERT_FALSE(r0.empty());
    EXPECT_TRUE(std::holds_alternative<trace::CpuBurst>(r0[0]));
    EXPECT_TRUE(
        std::holds_alternative<trace::SendRec>(r0.back()));

    const auto &r1 = bundle.traces.rankTrace(1).records();
    EXPECT_TRUE(std::holds_alternative<trace::RecvRec>(r1[0]));
    EXPECT_TRUE(std::holds_alternative<trace::CpuBurst>(r1[1]));
}

TEST(TracerTest, BurstInstructionsArePreserved)
{
    const Instr work = 777'777;
    const auto bundle =
        testing::traceOf(2, testing::packedExchange(4096, work));
    // All computation of rank 0: main burst plus the pack loop.
    const auto traced =
        bundle.traces.rankTrace(0).totalInstructions();
    EXPECT_GE(traced, work);
    EXPECT_LT(traced, work + 4096);
}

TEST(TracerTest, ProducesValidLinkedTraces)
{
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(32 * 1024, 500'000, 3));
    EXPECT_TRUE(
        trace::validateTraceSet(bundle.traces).valid());
    // One overlap profile per message: 4 ranks x 3 iterations.
    EXPECT_EQ(bundle.overlap.size(), 12u);
    for (const auto &[id, info] : bundle.overlap.all()) {
        EXPECT_EQ(info.bytes, 32u * 1024u);
        EXPECT_GT(info.blocks(), 0u);
        EXPECT_EQ(info.blockFirstLoad.size(),
                  info.blockLastStore.size());
    }
}

TEST(TracerTest, PackAtEndYieldsLateProduction)
{
    const Instr work = 1'000'000;
    const auto bundle =
        testing::traceOf(2, testing::packedExchange(64 * 1024,
                                                    work));
    ASSERT_EQ(bundle.overlap.size(), 1u);
    const auto &info = bundle.overlap.all().begin()->second;
    // Production is confined to the pack loop at the end of the
    // producing region: every block's last store lies within the
    // final tenth of the window.
    const Instr window =
        info.sendInstr - info.prodWindowBegin;
    for (const auto p : info.blockLastStore) {
        EXPECT_GE(p, info.sendInstr - window / 10);
        EXPECT_LE(p, info.sendInstr);
    }
}

TEST(TracerTest, UniformProductionIsSpread)
{
    const Instr work = 1'000'000;
    const auto bundle = testing::traceOf(
        2, testing::producerConsumer(64 * 1024, work, 16));
    ASSERT_EQ(bundle.overlap.size(), 1u);
    const auto &info = bundle.overlap.all().begin()->second;
    // First and last block complete roughly a window apart.
    const Instr first = info.blockLastStore.front();
    const Instr last = info.blockLastStore.back();
    EXPECT_GT(last - first,
              (info.sendInstr - info.prodWindowBegin) / 2);
}

TEST(TracerTest, ConsumptionInstantsAreOrderedAndClamped)
{
    const auto bundle = testing::traceOf(
        2, testing::producerConsumer(64 * 1024, 1'000'000, 16));
    const auto &info = bundle.overlap.all().begin()->second;
    for (std::size_t b = 0; b < info.blockFirstLoad.size(); ++b) {
        EXPECT_GE(info.blockFirstLoad[b], info.recvInstr);
        EXPECT_LE(info.blockFirstLoad[b], info.consWindowEnd);
        if (b > 0) {
            EXPECT_GE(info.blockFirstLoad[b],
                      info.blockFirstLoad[b - 1]);
        }
    }
}

TEST(TracerTest, NeverLoadedBlocksDefaultToWindowEnd)
{
    const auto program = [](vm::VmContext &ctx) {
        const auto buf = ctx.allocBuffer("b", 4096);
        if (ctx.rank() == 0) {
            ctx.touchStore(buf, 0, 4096);
            ctx.send(buf, 0, 4096, 1, 1);
        } else {
            ctx.recv(buf, 0, 4096, 0, 1);
            // Consume only the first half; never read the rest.
            ctx.touchLoad(buf, 0, 2048);
            ctx.compute(10'000);
        }
    };
    tracer::TracerConfig config;
    config.shadowBlockBytes = 1024;
    config.maxProfileBlocks = 4;
    const auto bundle = traceApplication(2, program, config);
    const auto &info = bundle.overlap.all().begin()->second;
    ASSERT_EQ(info.blocks(), 4u);
    EXPECT_EQ(info.blockFirstLoad[0], info.recvInstr);
    EXPECT_EQ(info.blockFirstLoad[3], info.consWindowEnd);
    EXPECT_GT(info.consWindowEnd, info.recvInstr);
}

TEST(TracerTest, WindowAnchorSharedByBackToBackSends)
{
    // compute; send A; send B: both sends share the producing
    // region that precedes the group.
    const auto program = [](vm::VmContext &ctx) {
        const auto buf = ctx.allocBuffer("b", 1024);
        if (ctx.rank() == 0) {
            ctx.compute(100'000);
            ctx.touchStore(buf, 0, 1024);
            ctx.send(buf, 0, 1024, 1, 1);
            ctx.send(buf, 0, 1024, 1, 2);
        } else {
            ctx.recv(buf, 0, 1024, 0, 1);
            ctx.recv(buf, 0, 1024, 0, 2);
            ctx.touchLoad(buf, 0, 1024);
            ctx.compute(1000);
        }
    };
    const auto bundle = traceApplication(2, program, {});
    ASSERT_EQ(bundle.overlap.size(), 2u);
    for (const auto &[id, info] : bundle.overlap.all())
        EXPECT_EQ(info.prodWindowBegin, 0u);
}

TEST(TracerTest, MipsRateIsRecorded)
{
    tracer::TracerConfig config;
    config.mips = 2500.0;
    config.appName = "named";
    const auto bundle = traceApplication(
        2, testing::packedExchange(1024, 1000), config);
    EXPECT_DOUBLE_EQ(bundle.traces.mips(), 2500.0);
    EXPECT_EQ(bundle.traces.name(), "named");
}

TEST(TracerTest, RejectsBadConfig)
{
    tracer::TracerConfig config;
    config.mips = 0.0;
    EXPECT_THROW(traceApplication(
                     2, testing::packedExchange(1024, 1000),
                     config),
                 FatalError);
}

} // namespace
} // namespace ovlsim
