/**
 * @file
 * Tests for the proxy-application suite.
 */

#include <gtest/gtest.h>

#include <set>

#include "apps/app.hh"
#include "sim/engine.hh"
#include "tests/helpers.hh"
#include "trace/trace_stats.hh"
#include "trace/validate.hh"
#include "tracer/tracer.hh"
#include "util/logging.hh"

namespace ovlsim::apps {
namespace {

TEST(RegistryTest, ContainsTheSixPaperApplications)
{
    const auto names = appNames();
    const std::set<std::string> expected{
        "nas-bt", "nas-cg", "pop", "alya", "specfem", "sweep3d"};
    EXPECT_EQ(std::set<std::string>(names.begin(), names.end()),
              expected);
}

TEST(RegistryTest, FindAppWorksAndFailsLoudly)
{
    EXPECT_EQ(findApp("sweep3d").name(), "sweep3d");
    EXPECT_THROW(findApp("does-not-exist"), FatalError);
}

TEST(RegistryTest, DescriptionsAndDefaultsAreSane)
{
    for (const auto *app : appRegistry()) {
        EXPECT_FALSE(app->description().empty());
        const auto params = app->defaults();
        EXPECT_GE(params.ranks, 2);
        EXPECT_GE(params.iterations, 1);
        EXPECT_NO_THROW(app->validate(params));
    }
}

TEST(ParamValidationTest, RejectsBadCommonParams)
{
    const auto &app = findApp("nas-bt");
    auto params = app.defaults();
    params.ranks = 1;
    EXPECT_THROW(app.validate(params), FatalError);
    params = app.defaults();
    params.iterations = 0;
    EXPECT_THROW(app.validate(params), FatalError);
    params = app.defaults();
    params.computeScale = 0.0;
    EXPECT_THROW(app.validate(params), FatalError);
}

TEST(ParamValidationTest, CgRequiresSquareRankCount)
{
    const auto &cg = findApp("nas-cg");
    auto params = cg.defaults();
    params.ranks = 12;
    EXPECT_THROW(cg.validate(params), FatalError);
    params.ranks = 25;
    EXPECT_NO_THROW(cg.validate(params));
}

TEST(Grid2DTest, ClosestFactorsAreBalancedAndExact)
{
    for (const int ranks : {2, 4, 6, 9, 12, 16, 24, 36, 64}) {
        const auto grid = Grid2D::closestFactors(ranks);
        EXPECT_EQ(grid.px * grid.py, ranks);
        EXPECT_LE(grid.py, grid.px);
        EXPECT_GE(grid.py, 1);
    }
    const auto grid = Grid2D::closestFactors(16);
    EXPECT_EQ(grid.px, 4);
    EXPECT_EQ(grid.py, 4);
}

TEST(Grid2DTest, CoordinateRoundTrip)
{
    const auto grid = Grid2D::closestFactors(12);
    for (Rank r = 0; r < 12; ++r) {
        EXPECT_EQ(grid.at(grid.x(r), grid.y(r)), r);
        EXPECT_TRUE(grid.inside(grid.x(r), grid.y(r)));
    }
    EXPECT_FALSE(grid.inside(-1, 0));
    EXPECT_FALSE(grid.inside(grid.px, 0));
}

TEST(HelpersTest, ScaleGuards)
{
    EXPECT_EQ(scaleBytes(100, 2.0), 200u);
    EXPECT_EQ(scaleBytes(1, 0.0001), 1u);
    EXPECT_EQ(scaleInstr(100.0, 3.0), 300u);
    EXPECT_EQ(scaleInstr(0.0, 1.0), 1u);
}

/** Per-application tracing sweep. */
class AppTraceTest
    : public ::testing::TestWithParam<std::string>
{
  protected:
    tracer::TraceBundle
    traceDefaults()
    {
        const auto &app = findApp(GetParam());
        auto params = app.defaults();
        params.iterations = std::min(params.iterations, 2);
        tracer::TracerConfig config;
        config.appName = app.name();
        return tracer::traceApplication(
            params.ranks, app.program(params), config);
    }
};

TEST_P(AppTraceTest, ProducesValidTraces)
{
    const auto bundle = traceDefaults();
    const auto report = trace::validateTraceSet(bundle.traces);
    EXPECT_TRUE(report.valid()) << report.toString();
}

TEST_P(AppTraceTest, EveryRankComputesAndCommunicates)
{
    const auto bundle = traceDefaults();
    const auto stats = trace::computeTraceStats(bundle.traces);
    for (const auto &rs : stats.perRank) {
        EXPECT_GT(rs.instructions, 0u) << "rank " << rs.rank;
        EXPECT_GT(rs.sends + rs.recvs + rs.collectives, 0u)
            << "rank " << rs.rank;
    }
    EXPECT_GT(stats.totalMessages, 0u);
}

TEST_P(AppTraceTest, OverlapMetadataCoversAllMessages)
{
    const auto bundle = traceDefaults();
    EXPECT_EQ(bundle.overlap.size(),
              bundle.traces.totalMessages());
    for (const auto &[id, info] : bundle.overlap.all()) {
        EXPECT_GT(info.bytes, 0u);
        EXPECT_LE(info.prodWindowBegin, info.sendInstr);
        EXPECT_LE(info.recvInstr, info.consWindowEnd);
    }
}

TEST_P(AppTraceTest, TracingIsDeterministic)
{
    const auto a = traceDefaults();
    const auto b = traceDefaults();
    ASSERT_EQ(a.traces.ranks(), b.traces.ranks());
    for (Rank r = 0; r < a.traces.ranks(); ++r) {
        const auto &ra = a.traces.rankTrace(r).records();
        const auto &rb = b.traces.rankTrace(r).records();
        ASSERT_EQ(ra.size(), rb.size());
        for (std::size_t i = 0; i < ra.size(); ++i) {
            EXPECT_EQ(trace::recordToString(ra[i]),
                      trace::recordToString(rb[i]));
        }
    }
}

TEST_P(AppTraceTest, ReplaysWithoutDeadlock)
{
    const auto bundle = traceDefaults();
    const auto result = sim::simulate(
        bundle.traces, sim::platforms::defaultCluster());
    EXPECT_GT(result.totalTime.ns(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllApplications, AppTraceTest,
    ::testing::Values("nas-bt", "nas-cg", "pop", "alya",
                      "specfem", "sweep3d"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(AlyaTest, TopologyIsSeedDeterministic)
{
    const auto &alya = findApp("alya");
    auto params = alya.defaults();
    params.iterations = 1;

    tracer::TracerConfig config;
    const auto a = tracer::traceApplication(
        params.ranks, alya.program(params), config);
    const auto b = tracer::traceApplication(
        params.ranks, alya.program(params), config);
    EXPECT_EQ(a.traces.totalSentBytes(),
              b.traces.totalSentBytes());

    params.seed = 777;
    const auto c = tracer::traceApplication(
        params.ranks, alya.program(params), config);
    EXPECT_NE(a.traces.totalSentBytes(),
              c.traces.totalSentBytes());
}

TEST(MessageScaleTest, ScalesTrafficNotWork)
{
    const auto &app = findApp("specfem");
    auto params = app.defaults();
    params.iterations = 1;
    const auto base = tracer::traceApplication(
        params.ranks, app.program(params), {});
    params.messageScale = 2.0;
    const auto doubled = tracer::traceApplication(
        params.ranks, app.program(params), {});
    EXPECT_NEAR(static_cast<double>(
                    doubled.traces.totalSentBytes()),
                2.0 * static_cast<double>(
                          base.traces.totalSentBytes()),
                static_cast<double>(
                    base.traces.totalSentBytes()) *
                    0.01);
}

TEST(ComputeScaleTest, ScalesWork)
{
    const auto &app = findApp("nas-bt");
    auto params = app.defaults();
    params.iterations = 1;
    const auto base = tracer::traceApplication(
        params.ranks, app.program(params), {});
    params.computeScale = 2.0;
    const auto doubled = tracer::traceApplication(
        params.ranks, app.program(params), {});

    const auto base_instr =
        trace::computeTraceStats(base.traces)
            .totalInstructions;
    const auto doubled_instr =
        trace::computeTraceStats(doubled.traces)
            .totalInstructions;
    EXPECT_GT(doubled_instr,
              base_instr + base_instr / 2);
}

} // namespace
} // namespace ovlsim::apps
