/**
 * @file
 * Resilience engine: the counter-based RNG, stochastic fault
 * models, the checkpoint/restart cost model and the failure-rate
 * campaign driver.
 *
 * Key contracts pinned here:
 *  - CounterRng draw N is a pure hash of (key, stream, N): random
 *    access equals sequential draws and substreams are independent
 *    of caller order,
 *  - generateScenario is a pure function of (model, seed, horizon)
 *    and fail-stop processes emit exactly one fault,
 *  - closed-form restart accounting: with interval I, cost C and
 *    restart cost R, one fail-stop at t costs exactly the work
 *    since the last checkpoint plus R on top of the failure-free
 *    checkpointed time (132 us and 142 us pins below, worked out
 *    by hand on the integer clock),
 *  - a zero checkpoint interval keeps PR-6 fail-stop semantics
 *    (FailureError) and leaves failure-free replays bit-identical,
 *  - checkpointed replays with in-flight routed transfers roll
 *    back, conserve link occupancy (engine-internal assert) and
 *    stay bit-identical across runs,
 *  - a platform that fails faster than it recovers exhausts the
 *    restart budget and surfaces as a FailureError, not a hang,
 *  - resilienceSweep grids are bit-identical across thread counts
 *    and report dead runs as data (failedFraction), never throws,
 *  - FailureError propagates through simulateBatch and
 *    bandwidthSweep without wedging the thread pool (satellite:
 *    failure propagation).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/analysis.hh"
#include "helpers.hh"
#include "net/topology.hh"
#include "res/fault_model.hh"
#include "scen/scenario.hh"
#include "sim/engine.hh"
#include "sim/platform_file.hh"
#include "util/counter_rng.hh"

namespace ovlsim {
namespace {

using scen::FailSemantics;
using scen::ScenarioEvent;
using scen::ScenEventKind;
using scen::ScenTarget;
using testing::expectIdentical;

/** One rank computing a single `instr` burst (100'000 instructions
 * at the tracer's default 1000 MIPS = exactly 100 us). */
tracer::TraceBundle
singleBurst(Instr instr)
{
    return testing::traceOf(
        1, [instr](vm::VmContext &ctx) { ctx.compute(instr); });
}

/** Default cluster with the checkpoint/restart cost model set. */
sim::PlatformConfig
ckptPlatform(double interval_us, double cost_us, double restart_us)
{
    auto platform = sim::platforms::defaultCluster();
    platform.checkpointIntervalUs = interval_us;
    platform.checkpointCostUs = cost_us;
    platform.restartCostUs = restart_us;
    return platform;
}

ScenarioEvent
nodeFail(double us, int node)
{
    ScenarioEvent ev;
    ev.time = SimTime::fromUs(us);
    ev.kind = ScenEventKind::fail;
    ev.target = ScenTarget::node;
    ev.nodeA = node;
    ev.semantics = FailSemantics::failStop;
    return ev;
}

// ---------------------------------------------------------------
// Counter-based RNG.
// ---------------------------------------------------------------

TEST(CounterRngTest, RandomAccessMatchesSequentialDraws)
{
    CounterRng rng(42, 7);
    const CounterRng probe(42, 7);
    for (std::uint64_t n = 0; n < 64; ++n)
        EXPECT_EQ(rng.next(), probe.at(n)) << "draw " << n;

    // A fresh instance with the same address replays the sequence.
    CounterRng again(42, 7);
    EXPECT_EQ(again.next(), probe.at(0));
}

TEST(CounterRngTest, StreamsAndSubstreamsAreIndependentOfOrder)
{
    // Drawing from one stream never disturbs another, so the values
    // a consumer sees cannot depend on which lane expanded first.
    CounterRng a(1, 0);
    CounterRng b(1, 1);
    const std::uint64_t b0 = CounterRng(1, 1).at(0);
    for (int i = 0; i < 10; ++i)
        a.next();
    EXPECT_EQ(b.next(), b0);

    // substream() is a pure derivation and distinct from the parent.
    const CounterRng parent(9, 3);
    EXPECT_EQ(parent.substream(5).at(0), parent.substream(5).at(0));
    EXPECT_NE(parent.substream(5).at(0), parent.substream(6).at(0));
    EXPECT_NE(parent.substream(5).at(0), parent.at(0));
}

TEST(CounterRngTest, ExponentialDrawsArePositiveWithTheRightMean)
{
    CounterRng rng(2026, 0);
    const double mean = 500.0;
    double sum = 0.0;
    const int draws = 1 << 14;
    for (int i = 0; i < draws; ++i) {
        const double x = rng.nextExponential(mean);
        ASSERT_GT(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum / draws, mean, mean * 0.05);
}

// ---------------------------------------------------------------
// Stochastic fault models.
// ---------------------------------------------------------------

res::FaultModel
mixedModel()
{
    res::FaultModel model;
    res::FaultProcess node_fail;
    node_fail.target = ScenTarget::node;
    node_fail.nodeA = 0;
    node_fail.effect = res::FaultEffect::failStop;
    node_fail.mtbfUs = 400.0;
    model.processes.push_back(node_fail);

    res::FaultProcess link_degrade;
    link_degrade.target = ScenTarget::link;
    link_degrade.nodeA = 1;
    link_degrade.nodeB = 2;
    link_degrade.effect = res::FaultEffect::degrade;
    link_degrade.degradeFactor = 0.25;
    link_degrade.mtbfUs = 300.0;
    link_degrade.mttrUs = 50.0;
    model.processes.push_back(link_degrade);
    return model;
}

TEST(FaultModelTest, GenerateScenarioIsAPureFunction)
{
    const auto model = mixedModel();
    const SimTime horizon = SimTime::fromUs(5000.0);
    const auto a = res::generateScenario(model, 11, horizon);
    const auto b = res::generateScenario(model, 11, horizon);
    EXPECT_TRUE(a.events == b.events);
    ASSERT_FALSE(a.events.empty());

    const auto other = res::generateScenario(model, 12, horizon);
    EXPECT_FALSE(a.events == other.events);
}

TEST(FaultModelTest, FailStopProcessesEmitExactlyOneFault)
{
    res::FaultModel model;
    res::FaultProcess proc;
    proc.target = ScenTarget::node;
    proc.nodeA = 3;
    proc.effect = res::FaultEffect::failStop;
    proc.mtbfUs = 100.0; // Dozens of renewals fit the horizon.
    model.processes.push_back(proc);

    const auto config =
        res::generateScenario(model, 5, SimTime::fromUs(10000.0));
    ASSERT_EQ(config.events.size(), 1u);
    EXPECT_EQ(config.events[0].kind, ScenEventKind::fail);
    EXPECT_EQ(config.events[0].semantics, FailSemantics::failStop);
    EXPECT_EQ(config.events[0].nodeA, 3);
}

TEST(FaultModelTest, ModelFileRoundTrips)
{
    auto model = mixedModel();
    model.seed = 77;
    model.horizonUs = 12345.0;

    std::ostringstream out;
    res::writeFaultModel(model, out);
    std::istringstream in(out.str());
    const auto parsed = res::readFaultModel(in);
    EXPECT_TRUE(parsed == model);
}

// ---------------------------------------------------------------
// Checkpoint/restart cost model: closed-form pins.
//
// All pins use a single rank computing one 100 us burst at 1000
// MIPS, interval I = 60 us (or 30), cost C = 5 us, restart R = 7 us,
// worked out by hand on the integer-ns clock.
// ---------------------------------------------------------------

TEST(CheckpointRestartTest, FailureFreeRunChargesOneFreezePerCheckpoint)
{
    // I = 30, C = 5 over a 100 us burst: checkpoints at machine
    // progress 30, 60 and 90 each freeze the machine for 5 us, so
    // the rank finishes at exactly 100 + 3 * 5 = 115 us.
    const auto bundle = singleBurst(100'000);
    const auto result =
        sim::simulate(bundle.traces, ckptPlatform(30.0, 5.0, 7.0));
    EXPECT_EQ(result.totalTime.ns(), SimTime::fromUs(115.0).ns());
    EXPECT_EQ(result.checkpoints, 3u);
    EXPECT_EQ(result.restarts, 0u);
}

TEST(CheckpointRestartTest, RestartReplaysWorkSinceTheLastCheckpoint)
{
    // I = 60, C = 5, R = 7, fail-stop at machine progress 80.
    // Failure-free checkpointed time is 100 + C = 105 us (one
    // checkpoint fits the run). The failure at 80 rolls back to the
    // checkpoint cut at 60, so the replay pays the 20 us of work
    // since it plus R: 105 + 20 + 7 = 132 us.
    auto platform = ckptPlatform(60.0, 5.0, 7.0);
    platform.scenario.events.push_back(nodeFail(80.0, 0));
    const auto bundle = singleBurst(100'000);

    const auto free_run =
        sim::simulate(bundle.traces, ckptPlatform(60.0, 5.0, 7.0));
    EXPECT_EQ(free_run.totalTime.ns(), SimTime::fromUs(105.0).ns());
    EXPECT_EQ(free_run.checkpoints, 1u);

    const auto result = sim::simulate(bundle.traces, platform);
    EXPECT_EQ(result.totalTime.ns(), SimTime::fromUs(132.0).ns());
    EXPECT_EQ(result.checkpoints, 1u);
    EXPECT_EQ(result.restarts, 1u);
    // Work is charged once from the surviving run's perspective.
    ASSERT_EQ(result.perRank.size(), 1u);
    EXPECT_EQ(result.perRank[0].computeTime.ns(),
              SimTime::fromUs(100.0).ns());
}

TEST(CheckpointRestartTest, FailureBeforeTheFirstCheckpointRestartsFromZero)
{
    // The same machine failing at 30 us — before any checkpoint —
    // rolls back to time zero: 30 us wasted + R = 7, restart at 37,
    // the full burst replays and the (re-armed) checkpoint at 97
    // freezes 5 us: 37 + 100 + 5 = 142 us.
    auto platform = ckptPlatform(60.0, 5.0, 7.0);
    platform.scenario.events.push_back(nodeFail(30.0, 0));
    const auto bundle = singleBurst(100'000);

    const auto result = sim::simulate(bundle.traces, platform);
    EXPECT_EQ(result.totalTime.ns(), SimTime::fromUs(142.0).ns());
    EXPECT_EQ(result.checkpoints, 1u);
    EXPECT_EQ(result.restarts, 1u);
}

// ---------------------------------------------------------------
// Bit-identity seams around the cost model.
// ---------------------------------------------------------------

TEST(CheckpointRestartTest, ZeroIntervalKeepsFailStopSemantics)
{
    // Cost/restart values without a positive interval change
    // nothing: fail-stop still terminates with the PR-6 diagnosis.
    const auto bundle = testing::traceOf(
        2, testing::producerConsumer(256 * 1024, 400'000));
    auto platform = testing::platformAt(256.0);
    platform.checkpointCostUs = 5.0;
    platform.restartCostUs = 7.0;
    platform.scenario.events.push_back(nodeFail(10.0, 0));
    try {
        sim::simulate(bundle.traces, platform);
        FAIL() << "fail-stop without checkpointing must throw";
    } catch (const scen::FailureError &err) {
        EXPECT_EQ(err.diagnosis().time.ns(),
                  SimTime::fromUs(10.0).ns());
        EXPECT_NE(err.diagnosis().event.find("fail"),
                  std::string::npos);
    }
}

TEST(CheckpointRestartTest, IdleCostFieldsLeaveReplaysBitIdentical)
{
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(64 * 1024, 400'000, 3));
    const auto base = testing::platformAt(512.0);
    auto idle = base;
    idle.checkpointCostUs = 5.0;
    idle.restartCostUs = 7.0;
    expectIdentical(sim::simulate(bundle.traces, base),
                    sim::simulate(bundle.traces, idle));
}

TEST(CheckpointRestartTest, UnfiredCheckpointLeavesRankTimesUntouched)
{
    // An interval beyond the completion time takes no checkpoint
    // and perturbs no rank observable (the pending checkpoint event
    // itself is the only extra event processed).
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(64 * 1024, 400'000, 3));
    const auto base = testing::platformAt(512.0);
    auto late = base;
    late.checkpointIntervalUs = 1e9;

    const auto a = sim::simulate(bundle.traces, base);
    const auto b = sim::simulate(bundle.traces, late);
    EXPECT_EQ(b.checkpoints, 0u);
    EXPECT_EQ(a.totalTime.ns(), b.totalTime.ns());
    ASSERT_EQ(a.perRank.size(), b.perRank.size());
    for (std::size_t r = 0; r < a.perRank.size(); ++r) {
        EXPECT_EQ(a.perRank[r].endTime.ns(),
                  b.perRank[r].endTime.ns());
        EXPECT_EQ(a.perRank[r].computeTime.ns(),
                  b.perRank[r].computeTime.ns());
        EXPECT_EQ(a.perRank[r].bytesSent, b.perRank[r].bytesSent);
    }
}

// ---------------------------------------------------------------
// Rollback with communication in flight.
// ---------------------------------------------------------------

TEST(CheckpointRestartTest, RoutedInFlightTransfersRollBackDeterministically)
{
    // 512 KB ring payloads serialize for ~1 ms on the tapered tree,
    // so the fail-stop at 500 us lands with transfers in flight;
    // the rollback cancels them (the engine asserts the LinkNetwork
    // drains to zero occupancy) and the replay still completes.
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(512 * 1024, 400'000, 2));
    auto platform = sim::platforms::topologyCluster(
        net::topologies::taperedFatTree(2));
    platform.checkpointIntervalUs = 200.0;
    platform.checkpointCostUs = 10.0;
    platform.restartCostUs = 20.0;

    const auto nominal = sim::simulate(bundle.traces, platform);
    EXPECT_EQ(nominal.restarts, 0u);

    platform.scenario.events.push_back(nodeFail(500.0, 1));
    const auto a = sim::simulate(bundle.traces, platform);
    EXPECT_GE(a.restarts, 1u);
    EXPECT_GT(a.totalTime.ns(), nominal.totalTime.ns());

    // Restarted replays stay deterministic run to run.
    const auto b = sim::simulate(bundle.traces, platform);
    expectIdentical(a, b);
}

TEST(CheckpointRestartTest, FlatBusRollbackIsDeterministicToo)
{
    const auto bundle = testing::traceOf(
        2, testing::producerConsumer(1'000'000, 400'000));
    auto platform = ckptPlatform(150.0, 5.0, 10.0);
    platform.bandwidthMBps = 100.0; // 10 ms serialization.
    platform.scenario.events.push_back(nodeFail(400.0, 1));

    const auto a = sim::simulate(bundle.traces, platform);
    EXPECT_GE(a.restarts, 1u);
    const auto b = sim::simulate(bundle.traces, platform);
    expectIdentical(a, b);
}

// ---------------------------------------------------------------
// Guard rails.
// ---------------------------------------------------------------

TEST(CheckpointRestartTest, RestartBudgetExhaustionIsAFailureNotAHang)
{
    // Failures every microsecond against a 100 us burst: the
    // machine fails faster than it recovers and the replay must
    // surface the restart budget, not spin forever.
    auto platform = ckptPlatform(60.0, 5.0, 7.0);
    for (int i = 0; i <= 10000; ++i)
        platform.scenario.events.push_back(
            nodeFail(1.0 + static_cast<double>(i), 0));
    const auto bundle = singleBurst(100'000);
    try {
        sim::simulate(bundle.traces, platform);
        FAIL() << "restart budget exhaustion must throw";
    } catch (const scen::FailureError &err) {
        EXPECT_NE(err.diagnosis().event.find("restart limit"),
                  std::string::npos);
    }
}

TEST(CheckpointRestartTest, UnsupportedModeCombinationsAreFatal)
{
    const auto bundle = singleBurst(100'000);

    // Timeline capture cannot survive a rollback.
    auto capture = ckptPlatform(60.0, 5.0, 7.0);
    capture.captureTimeline = true;
    EXPECT_THROW(sim::simulate(bundle.traces, capture), FatalError);

    // Algorithmic collectives carry live schedules across events
    // (the restriction binds only when the trace has collectives).
    const auto coll_bundle =
        testing::traceOf(4, [](vm::VmContext &ctx) {
            ctx.compute(50'000);
            ctx.barrier();
        });
    auto algo = ckptPlatform(60.0, 5.0, 7.0);
    algo.collectiveModel = coll::CollectiveModel::algorithmic;
    EXPECT_THROW(sim::simulate(coll_bundle.traces, algo),
                 FatalError);

    // Non-fail-stop scenario events would need their active effect
    // snapshotted.
    auto degrade = ckptPlatform(60.0, 5.0, 7.0);
    ScenarioEvent ev;
    ev.kind = ScenEventKind::degrade;
    ev.target = ScenTarget::all;
    ev.time = SimTime::fromUs(1.0);
    ev.bandwidthFactor = 0.5;
    degrade.scenario.events.push_back(ev);
    EXPECT_THROW(sim::simulate(bundle.traces, degrade), FatalError);

    // An interval that rounds to zero nanoseconds cannot schedule.
    auto tiny = ckptPlatform(1e-6, 5.0, 7.0);
    EXPECT_THROW(sim::simulate(bundle.traces, tiny), FatalError);
}

// ---------------------------------------------------------------
// Failure propagation through the campaign drivers (satellite).
// ---------------------------------------------------------------

TEST(FailurePropagationTest, SimulateBatchRethrowsFailureError)
{
    const auto bundle = testing::traceOf(
        2, testing::producerConsumer(256 * 1024, 400'000));
    auto healthy = testing::platformAt(256.0);
    auto doomed = healthy;
    doomed.scenario.events.push_back(nodeFail(10.0, 0));

    std::vector<sim::SimJob> jobs;
    jobs.emplace_back(&bundle.traces, healthy);
    jobs.emplace_back(&bundle.traces, doomed);
    jobs.emplace_back(&bundle.traces, healthy);
    jobs.emplace_back(&bundle.traces, healthy);
    EXPECT_THROW(sim::simulateBatch(jobs, 2), scen::FailureError);
}

TEST(FailurePropagationTest, BandwidthSweepRethrowsFailureError)
{
    const auto bundle = testing::traceOf(
        2, testing::producerConsumer(256 * 1024, 400'000));
    auto doomed = testing::platformAt(256.0);
    doomed.scenario.events.push_back(nodeFail(10.0, 0));
    EXPECT_THROW(core::bandwidthSweep(bundle, doomed, {256.0, 512.0},
                                      core::standardVariants(), 2),
                 scen::FailureError);
}

// ---------------------------------------------------------------
// The resilience campaign driver.
// ---------------------------------------------------------------

void
expectSameResilienceResult(const core::ResilienceResult &a,
                           const core::ResilienceResult &b)
{
    EXPECT_EQ(a.seedCount, b.seedCount);
    EXPECT_EQ(a.horizon.ns(), b.horizon.ns());
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t p = 0; p < a.points.size(); ++p) {
        EXPECT_EQ(a.points[p].mtbfUs, b.points[p].mtbfUs);
        ASSERT_EQ(a.points[p].cells.size(), b.points[p].cells.size());
        for (std::size_t c = 0; c < a.points[p].cells.size(); ++c) {
            const auto &ca = a.points[p].cells[c];
            const auto &cb = b.points[p].cells[c];
            EXPECT_EQ(ca.meanTime.ns(), cb.meanTime.ns())
                << "point " << p << " cell " << c;
            EXPECT_EQ(ca.p95Time.ns(), cb.p95Time.ns())
                << "point " << p << " cell " << c;
            EXPECT_EQ(ca.failedFraction, cb.failedFraction)
                << "point " << p << " cell " << c;
            ASSERT_EQ(ca.seedTimes.size(), cb.seedTimes.size());
            for (std::size_t s = 0; s < ca.seedTimes.size(); ++s)
                EXPECT_EQ(ca.seedTimes[s].ns(), cb.seedTimes[s].ns())
                    << "point " << p << " cell " << c << " seed "
                    << s;
        }
    }
}

TEST(ResilienceSweepTest, GridIsBitIdenticalAcrossThreadCounts)
{
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(64 * 1024, 400'000, 3));
    auto base = testing::platformAt(512.0);
    base.checkpointIntervalUs = 300.0;
    base.checkpointCostUs = 5.0;
    base.restartCostUs = 10.0;

    const std::vector<double> grid = {8000.0, 1000.0};
    const auto variants = core::standardVariants();
    const auto serial =
        core::resilienceSweep(bundle, base, grid, variants, 4, 1, 1);
    for (const int threads : {2, 8}) {
        const auto parallel = core::resilienceSweep(
            bundle, base, grid, variants, 4, 1, threads);
        expectSameResilienceResult(serial, parallel);
    }

    // Shape: cell 0 is the original, then one per variant, and
    // every checkpointed cell survives its faults.
    ASSERT_EQ(serial.points.size(), grid.size());
    for (const auto &point : serial.points) {
        ASSERT_EQ(point.cells.size(), variants.size() + 1);
        for (const auto &cell : point.cells) {
            EXPECT_EQ(cell.failedFraction, 0.0);
            EXPECT_GT(cell.meanTime.ns(), 0);
            EXPECT_GE(cell.p95Time.ns(), cell.meanTime.ns());
        }
    }
}

TEST(ResilienceSweepTest, DeadRunsAreReportedAsDataNotThrown)
{
    // Without checkpointing a fail-stop kills the run; at a per-node
    // MTBF far below the runtime every seed draws at least one fault
    // inside the horizon, so the whole cell dies — as data.
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(64 * 1024, 400'000, 3));
    const auto base = testing::platformAt(512.0);

    const auto result =
        core::resilienceSweep(bundle, base, {50.0}, {}, 4, 1, 2);
    ASSERT_EQ(result.points.size(), 1u);
    ASSERT_EQ(result.points[0].cells.size(), 1u);
    const auto &cell = result.points[0].cells[0];
    EXPECT_EQ(cell.failedFraction, 1.0);
    EXPECT_EQ(cell.meanTime.ns(), 0);
    for (const SimTime t : cell.seedTimes)
        EXPECT_EQ(t.ns(), SimTime::max().ns());
}

// ---------------------------------------------------------------
// Platform-file keys (satellite: domain-checked parsing).
// ---------------------------------------------------------------

TEST(ResPlatformFileTest, CheckpointKeysRoundTripAndAreDomainChecked)
{
    auto platform = ckptPlatform(50000.0, 2000.0, 5000.0);
    std::ostringstream out;
    sim::writePlatformConfig(platform, out);
    std::istringstream in(out.str());
    const auto parsed = sim::readPlatformConfig(in);
    EXPECT_EQ(parsed.checkpointIntervalUs,
              platform.checkpointIntervalUs);
    EXPECT_EQ(parsed.checkpointCostUs, platform.checkpointCostUs);
    EXPECT_EQ(parsed.restartCostUs, platform.restartCostUs);

    for (const char *bad :
         {"checkpoint_interval_us = -1",
          "checkpoint_cost_us = nan",
          "restart_cost_us = -inf",
          "bandwidth_mbps = -5"}) {
        std::istringstream stream(bad);
        EXPECT_THROW(sim::readPlatformConfig(stream), FatalError)
            << bad;
    }
}

} // namespace
} // namespace ovlsim
