/**
 * @file
 * Resilience engine: the counter-based RNG, stochastic fault
 * models, the checkpoint/restart cost model and the failure-rate
 * campaign driver.
 *
 * Key contracts pinned here:
 *  - CounterRng draw N is a pure hash of (key, stream, N): random
 *    access equals sequential draws and substreams are independent
 *    of caller order,
 *  - generateScenario is a pure function of (model, seed, horizon)
 *    and fail-stop processes emit every renewal up to the horizon,
 *  - closed-form restart accounting: with interval I, cost C and
 *    restart cost R, one fail-stop at t costs exactly the work
 *    since the last checkpoint plus R on top of the failure-free
 *    checkpointed time (132 us and 142 us pins below, worked out
 *    by hand on the integer clock); two-level checkpointing
 *    restores machine-wide failures from the global slot at the
 *    global cost (125/137/156 us pins) and a flow finishing after
 *    a restart pays exactly the re-applied degraded capacity,
 *  - every PR-7 mode restriction is lifted: timeline capture,
 *    algorithmic collectives and non-fail-stop scenario events all
 *    replay to completion under a positive checkpoint interval,
 *    with rollback splicing first-class restart intervals into the
 *    captured timeline; only an interval that rounds to zero
 *    simulated time remains fatal,
 *  - a zero checkpoint interval keeps PR-6 fail-stop semantics
 *    (FailureError) and leaves failure-free replays bit-identical,
 *  - checkpointed replays with in-flight routed transfers roll
 *    back, conserve link occupancy (engine-internal assert) and
 *    stay bit-identical across runs; a seeded fuzz harness pits
 *    checkpointing against random fault streams and asserts the
 *    same, 200 streams deep,
 *  - a platform that fails faster than it recovers exhausts the
 *    (platform-keyed) restart_budget and surfaces as a
 *    FailureError naming the budget, not a hang,
 *  - resilienceSweep grids are bit-identical across thread counts
 *    and report dead runs as data (failedFraction plus a
 *    structured FailureDiagnosis per dead seed), never throws;
 *    protocolSweep's swept optimal interval lands within one grid
 *    step of res::dalyInterval's analytic prediction,
 *  - FailureError propagates through simulateBatch and
 *    bandwidthSweep without wedging the thread pool (satellite:
 *    failure propagation).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/analysis.hh"
#include "helpers.hh"
#include "net/topology.hh"
#include "res/fault_model.hh"
#include "scen/scenario.hh"
#include "sim/engine.hh"
#include "sim/platform_file.hh"
#include "util/counter_rng.hh"
#include "viz/ascii_gantt.hh"

namespace ovlsim {
namespace {

using scen::FailSemantics;
using scen::ScenarioEvent;
using scen::ScenEventKind;
using scen::ScenTarget;
using testing::expectIdentical;

/** One rank computing a single `instr` burst (100'000 instructions
 * at the tracer's default 1000 MIPS = exactly 100 us). */
tracer::TraceBundle
singleBurst(Instr instr)
{
    return testing::traceOf(
        1, [instr](vm::VmContext &ctx) { ctx.compute(instr); });
}

/** Default cluster with the checkpoint/restart cost model set. */
sim::PlatformConfig
ckptPlatform(double interval_us, double cost_us, double restart_us)
{
    auto platform = sim::platforms::defaultCluster();
    platform.checkpointIntervalUs = interval_us;
    platform.checkpointCostUs = cost_us;
    platform.restartCostUs = restart_us;
    return platform;
}

ScenarioEvent
nodeFail(double us, int node)
{
    ScenarioEvent ev;
    ev.time = SimTime::fromUs(us);
    ev.kind = ScenEventKind::fail;
    ev.target = ScenTarget::node;
    ev.nodeA = node;
    ev.semantics = FailSemantics::failStop;
    return ev;
}

// ---------------------------------------------------------------
// Counter-based RNG.
// ---------------------------------------------------------------

TEST(CounterRngTest, RandomAccessMatchesSequentialDraws)
{
    CounterRng rng(42, 7);
    const CounterRng probe(42, 7);
    for (std::uint64_t n = 0; n < 64; ++n)
        EXPECT_EQ(rng.next(), probe.at(n)) << "draw " << n;

    // A fresh instance with the same address replays the sequence.
    CounterRng again(42, 7);
    EXPECT_EQ(again.next(), probe.at(0));
}

TEST(CounterRngTest, StreamsAndSubstreamsAreIndependentOfOrder)
{
    // Drawing from one stream never disturbs another, so the values
    // a consumer sees cannot depend on which lane expanded first.
    CounterRng a(1, 0);
    CounterRng b(1, 1);
    const std::uint64_t b0 = CounterRng(1, 1).at(0);
    for (int i = 0; i < 10; ++i)
        a.next();
    EXPECT_EQ(b.next(), b0);

    // substream() is a pure derivation and distinct from the parent.
    const CounterRng parent(9, 3);
    EXPECT_EQ(parent.substream(5).at(0), parent.substream(5).at(0));
    EXPECT_NE(parent.substream(5).at(0), parent.substream(6).at(0));
    EXPECT_NE(parent.substream(5).at(0), parent.at(0));
}

TEST(CounterRngTest, ExponentialDrawsArePositiveWithTheRightMean)
{
    CounterRng rng(2026, 0);
    const double mean = 500.0;
    double sum = 0.0;
    const int draws = 1 << 14;
    for (int i = 0; i < draws; ++i) {
        const double x = rng.nextExponential(mean);
        ASSERT_GT(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum / draws, mean, mean * 0.05);
}

// ---------------------------------------------------------------
// Stochastic fault models.
// ---------------------------------------------------------------

res::FaultModel
mixedModel()
{
    res::FaultModel model;
    res::FaultProcess node_fail;
    node_fail.target = ScenTarget::node;
    node_fail.nodeA = 0;
    node_fail.effect = res::FaultEffect::failStop;
    node_fail.mtbfUs = 400.0;
    model.processes.push_back(node_fail);

    res::FaultProcess link_degrade;
    link_degrade.target = ScenTarget::link;
    link_degrade.nodeA = 1;
    link_degrade.nodeB = 2;
    link_degrade.effect = res::FaultEffect::degrade;
    link_degrade.degradeFactor = 0.25;
    link_degrade.mtbfUs = 300.0;
    link_degrade.mttrUs = 50.0;
    model.processes.push_back(link_degrade);
    return model;
}

TEST(FaultModelTest, GenerateScenarioIsAPureFunction)
{
    const auto model = mixedModel();
    const SimTime horizon = SimTime::fromUs(5000.0);
    const auto a = res::generateScenario(model, 11, horizon);
    const auto b = res::generateScenario(model, 11, horizon);
    EXPECT_TRUE(a.events == b.events);
    ASSERT_FALSE(a.events.empty());

    const auto other = res::generateScenario(model, 12, horizon);
    EXPECT_FALSE(a.events == other.events);
}

TEST(FaultModelTest, FailStopProcessesEmitEveryRenewalUpToTheHorizon)
{
    // Under checkpoint/restart every renewal is its own rollback,
    // so the expansion keeps the whole stream (without
    // checkpointing only the first event matters — it terminates
    // the replay before the rest can fire).
    res::FaultModel model;
    res::FaultProcess proc;
    proc.target = ScenTarget::node;
    proc.nodeA = 3;
    proc.effect = res::FaultEffect::failStop;
    proc.mtbfUs = 100.0; // Dozens of renewals fit the horizon.
    model.processes.push_back(proc);

    const SimTime horizon = SimTime::fromUs(10000.0);
    const auto config = res::generateScenario(model, 5, horizon);
    ASSERT_GT(config.events.size(), 10u);
    SimTime prev;
    for (const auto &ev : config.events) {
        EXPECT_EQ(ev.kind, ScenEventKind::fail);
        EXPECT_EQ(ev.semantics, FailSemantics::failStop);
        EXPECT_EQ(ev.nodeA, 3);
        EXPECT_LT(ev.time.ns(), horizon.ns());
        EXPECT_GT(ev.time.ns(), prev.ns());
        prev = ev.time;
    }
}

TEST(FaultModelTest, ModelFileRoundTrips)
{
    auto model = mixedModel();
    model.seed = 77;
    model.horizonUs = 12345.0;

    std::ostringstream out;
    res::writeFaultModel(model, out);
    std::istringstream in(out.str());
    const auto parsed = res::readFaultModel(in);
    EXPECT_TRUE(parsed == model);
}

TEST(FaultModelTest, MachineWideProcessesAreFailStopOnlyAndRoundTrip)
{
    // `process all` is the machine-wide crash the global level of
    // two-level checkpointing recovers from.
    std::istringstream text("process all fail-stop mtbf_us 50000\n");
    auto model = res::readFaultModel(text);
    ASSERT_EQ(model.processes.size(), 1u);
    EXPECT_EQ(model.processes[0].target, ScenTarget::all);
    EXPECT_EQ(model.processes[0].effect, res::FaultEffect::failStop);
    EXPECT_EQ(model.processes[0].mtbfUs, 50000.0);

    std::ostringstream out;
    res::writeFaultModel(model, out);
    std::istringstream in(out.str());
    EXPECT_TRUE(res::readFaultModel(in) == model);

    const auto config =
        res::generateScenario(model, 3, SimTime::fromUs(200000.0));
    ASSERT_FALSE(config.events.empty());
    EXPECT_EQ(config.events[0].target, ScenTarget::all);
    EXPECT_EQ(config.events[0].semantics, FailSemantics::failStop);

    // There is no machine-wide repair: stall/degrade (and traces)
    // on `all` are nonsense and must say so.
    auto bad = model;
    bad.processes[0].effect = res::FaultEffect::stall;
    bad.processes[0].mttrUs = 10.0;
    EXPECT_THROW(bad.validate(), FatalError);
}

TEST(FaultModelTest, DalyIntervalMatchesTheClosedForm)
{
    // tau* = sqrt(2 C M) - C: sqrt(2 * 20 * 1000) = 200, minus the
    // cost. Exact in double arithmetic.
    EXPECT_DOUBLE_EQ(res::dalyInterval(1000.0, 20.0), 180.0);
    EXPECT_DOUBLE_EQ(res::dalyInterval(50000.0, 0.0), 0.0);
    // Below the validity bound (M < C/2) the guard returns the
    // degenerate sqrt(2 C M) instead of a negative interval.
    EXPECT_DOUBLE_EQ(res::dalyInterval(10.0, 100.0),
                     std::sqrt(2000.0));
    EXPECT_THROW(res::dalyInterval(0.0, 5.0), FatalError);
    EXPECT_THROW(res::dalyInterval(100.0, -1.0), FatalError);
}

// ---------------------------------------------------------------
// Checkpoint/restart cost model: closed-form pins.
//
// All pins use a single rank computing one 100 us burst at 1000
// MIPS, interval I = 60 us (or 30), cost C = 5 us, restart R = 7 us,
// worked out by hand on the integer-ns clock.
// ---------------------------------------------------------------

TEST(CheckpointRestartTest, FailureFreeRunChargesOneFreezePerCheckpoint)
{
    // I = 30, C = 5 over a 100 us burst: checkpoints at machine
    // progress 30, 60 and 90 each freeze the machine for 5 us, so
    // the rank finishes at exactly 100 + 3 * 5 = 115 us.
    const auto bundle = singleBurst(100'000);
    const auto result =
        sim::simulate(bundle.traces, ckptPlatform(30.0, 5.0, 7.0));
    EXPECT_EQ(result.totalTime.ns(), SimTime::fromUs(115.0).ns());
    EXPECT_EQ(result.checkpoints, 3u);
    EXPECT_EQ(result.restarts, 0u);
}

TEST(CheckpointRestartTest, RestartReplaysWorkSinceTheLastCheckpoint)
{
    // I = 60, C = 5, R = 7, fail-stop at machine progress 80.
    // Failure-free checkpointed time is 100 + C = 105 us (one
    // checkpoint fits the run). The failure at 80 rolls back to the
    // checkpoint cut at 60, so the replay pays the 20 us of work
    // since it plus R: 105 + 20 + 7 = 132 us.
    auto platform = ckptPlatform(60.0, 5.0, 7.0);
    platform.scenario.events.push_back(nodeFail(80.0, 0));
    const auto bundle = singleBurst(100'000);

    const auto free_run =
        sim::simulate(bundle.traces, ckptPlatform(60.0, 5.0, 7.0));
    EXPECT_EQ(free_run.totalTime.ns(), SimTime::fromUs(105.0).ns());
    EXPECT_EQ(free_run.checkpoints, 1u);

    const auto result = sim::simulate(bundle.traces, platform);
    EXPECT_EQ(result.totalTime.ns(), SimTime::fromUs(132.0).ns());
    EXPECT_EQ(result.checkpoints, 1u);
    EXPECT_EQ(result.restarts, 1u);
    // Work is charged once from the surviving run's perspective.
    ASSERT_EQ(result.perRank.size(), 1u);
    EXPECT_EQ(result.perRank[0].computeTime.ns(),
              SimTime::fromUs(100.0).ns());
}

TEST(CheckpointRestartTest, FailureBeforeTheFirstCheckpointRestartsFromZero)
{
    // The same machine failing at 30 us — before any checkpoint —
    // rolls back to time zero: 30 us wasted + R = 7, restart at 37,
    // the full burst replays and the (re-armed) checkpoint at 97
    // freezes 5 us: 37 + 100 + 5 = 142 us.
    auto platform = ckptPlatform(60.0, 5.0, 7.0);
    platform.scenario.events.push_back(nodeFail(30.0, 0));
    const auto bundle = singleBurst(100'000);

    const auto result = sim::simulate(bundle.traces, platform);
    EXPECT_EQ(result.totalTime.ns(), SimTime::fromUs(142.0).ns());
    EXPECT_EQ(result.checkpoints, 1u);
    EXPECT_EQ(result.restarts, 1u);
}

// ---------------------------------------------------------------
// Hierarchical two-level checkpointing.
//
// Local I = 30 / C = 5 / R = 7, global I = 90 / C = 10 / R = 21
// over the 100 us burst, worked out event by event on the integer
// clock. Checkpoint chains: local freezes at wall 30, 65 and 110;
// the global event (compiled 90, shifted by the two local freezes)
// coincides with the local successor at wall 100 and wins the tie
// (earlier heap sequence), freezing 10 and imaging both slots at
// 110. Failure-free total: 100 + 5 + 5 + 10 + 5 = 125 us.
// ---------------------------------------------------------------

sim::PlatformConfig
twoLevelPlatform()
{
    auto platform = ckptPlatform(30.0, 5.0, 7.0);
    platform.checkpointGlobalIntervalUs = 90.0;
    platform.checkpointGlobalCostUs = 10.0;
    platform.restartGlobalCostUs = 21.0;
    return platform;
}

ScenarioEvent
machineFail(double us)
{
    ScenarioEvent ev;
    ev.time = SimTime::fromUs(us);
    ev.kind = ScenEventKind::fail;
    ev.target = ScenTarget::all;
    ev.semantics = FailSemantics::failStop;
    return ev;
}

TEST(TwoLevelCheckpointTest, FailureFreeRunPaysBothFreezeChains)
{
    const auto bundle = singleBurst(100'000);
    const auto result =
        sim::simulate(bundle.traces, twoLevelPlatform());
    EXPECT_EQ(result.totalTime.ns(), SimTime::fromUs(125.0).ns());
    EXPECT_EQ(result.checkpoints, 4u);
    EXPECT_EQ(result.restarts, 0u);
}

TEST(TwoLevelCheckpointTest, NodeFailureRestoresFromTheLocalSlot)
{
    // The fail compiled at 95 fires at wall 120 (after +25 us of
    // freezes); the newest local image is the one cut at machine
    // progress 90 (anchor 115). Wasted work 95 - 90 = 5 plus the
    // local restart 7 on top of the failure-free 125: 137 us.
    auto platform = twoLevelPlatform();
    platform.scenario.events.push_back(nodeFail(95.0, 0));
    const auto result =
        sim::simulate(singleBurst(100'000).traces, platform);
    EXPECT_EQ(result.totalTime.ns(), SimTime::fromUs(137.0).ns());
    EXPECT_EQ(result.checkpoints, 4u);
    EXPECT_EQ(result.restarts, 1u);
}

TEST(TwoLevelCheckpointTest, MachineWideFailureRestoresFromTheGlobalSlot)
{
    // The same failure instant machine-wide restores the *global*
    // image — same progress cut (90) but an older anchor (110), the
    // 21 us global restart, and one extra local freeze fits before
    // the finish: 125 + 5 + 21 + 5 = 156 us.
    auto platform = twoLevelPlatform();
    platform.scenario.events.push_back(machineFail(95.0));
    const auto result =
        sim::simulate(singleBurst(100'000).traces, platform);
    EXPECT_EQ(result.totalTime.ns(), SimTime::fromUs(156.0).ns());
    EXPECT_EQ(result.checkpoints, 5u);
    EXPECT_EQ(result.restarts, 1u);
}

// ---------------------------------------------------------------
// Rollback-aware timeline capture.
// ---------------------------------------------------------------

TEST(CheckpointRestartTest, TimelineSpliceRecordsWasteAndRestart)
{
    // The 132 us scenario (I = 60, C = 5, R = 7, fail compiled at
    // 80) with capture on: the fail fires at wall 85 (one freeze
    // shifts it by 5), so the ahead-recorded [0, 100] compute burst
    // is truncated at the cut and a first-class restart interval
    // [85, 92] is spliced in.
    auto platform = ckptPlatform(60.0, 5.0, 7.0);
    platform.captureTimeline = true;
    platform.scenario.events.push_back(nodeFail(80.0, 0));
    const auto bundle = singleBurst(100'000);
    const auto result = sim::simulate(bundle.traces, platform);
    EXPECT_EQ(result.totalTime.ns(), SimTime::fromUs(132.0).ns());
    EXPECT_EQ(result.restarts, 1u);

    const auto &tl = result.timeline;
    EXPECT_EQ(
        tl.timeInState(0, sim::RankState::compute).ns(),
        SimTime::fromUs(85.0).ns());
    EXPECT_EQ(
        tl.timeInState(0, sim::RankState::restart).ns(),
        SimTime::fromUs(7.0).ns());
    ASSERT_EQ(tl.intervals(0).size(), 2u);
    auto it = tl.intervals(0).begin();
    EXPECT_EQ(it->state, sim::RankState::compute);
    EXPECT_EQ(it->begin.ns(), 0);
    EXPECT_EQ(it->end.ns(), SimTime::fromUs(85.0).ns());
    ++it;
    EXPECT_EQ(it->state, sim::RankState::restart);
    EXPECT_EQ(it->begin.ns(), SimTime::fromUs(85.0).ns());
    EXPECT_EQ(it->end.ns(), SimTime::fromUs(92.0).ns());

    // The Gantt renderer shows the restart as its own glyph.
    const auto gantt = viz::renderGantt(tl);
    EXPECT_NE(gantt.find('X'), std::string::npos);
}

// ---------------------------------------------------------------
// Degrade windows across a rollback (satellite: closed form).
// ---------------------------------------------------------------

TEST(CheckpointRestartTest, RestartedFlowPaysTheReappliedDegrade)
{
    // Flat bus at 100 MB/s, checkpoint cuts every 150 us at zero
    // freeze cost, restart 50 us. A half-capacity degrade fires at
    // 100 and never recovers; rank 0 computes 200 us and then sends
    // 1 MB (20 ms at the degraded rate). The fail at 250 rolls back
    // to the cut at 150 — *before* the send began — so the restored
    // machine re-prices the transfer from scratch against the
    // re-applied degrade (restored active-window flag). The whole
    // replay is the degraded failure-free run shifted by exactly
    // wasted work (250 - 150 = 100) plus the restart (50).
    const auto bundle = testing::traceOf(
        2, testing::producerConsumer(1'000'000, 200'000));
    auto nominal_platform = testing::platformAt(100.0);
    nominal_platform.checkpointIntervalUs = 150.0;
    nominal_platform.checkpointCostUs = 0.0;
    nominal_platform.restartCostUs = 50.0;
    ScenarioEvent degrade;
    degrade.kind = ScenEventKind::degrade;
    degrade.target = ScenTarget::all;
    degrade.time = SimTime::fromUs(100.0);
    degrade.bandwidthFactor = 0.5;
    nominal_platform.scenario.events.push_back(degrade);
    const auto nominal =
        sim::simulate(bundle.traces, nominal_platform);
    EXPECT_EQ(nominal.restarts, 0u);

    auto failing = nominal_platform;
    failing.scenario.events.push_back(nodeFail(250.0, 1));
    const auto result = sim::simulate(bundle.traces, failing);
    EXPECT_EQ(result.restarts, 1u);
    EXPECT_EQ(result.totalTime.ns(),
              nominal.totalTime.ns() + SimTime::fromUs(150.0).ns());
    ASSERT_EQ(result.perRank.size(), nominal.perRank.size());
    for (std::size_t r = 0; r < result.perRank.size(); ++r) {
        EXPECT_EQ(result.perRank[r].bytesSent,
                  nominal.perRank[r].bytesSent)
            << "rank " << r;
    }
}

// ---------------------------------------------------------------
// Bit-identity seams around the cost model.
// ---------------------------------------------------------------

TEST(CheckpointRestartTest, ZeroIntervalKeepsFailStopSemantics)
{
    // Cost/restart values without a positive interval change
    // nothing: fail-stop still terminates with the PR-6 diagnosis.
    const auto bundle = testing::traceOf(
        2, testing::producerConsumer(256 * 1024, 400'000));
    auto platform = testing::platformAt(256.0);
    platform.checkpointCostUs = 5.0;
    platform.restartCostUs = 7.0;
    platform.scenario.events.push_back(nodeFail(10.0, 0));
    try {
        sim::simulate(bundle.traces, platform);
        FAIL() << "fail-stop without checkpointing must throw";
    } catch (const scen::FailureError &err) {
        EXPECT_EQ(err.diagnosis().time.ns(),
                  SimTime::fromUs(10.0).ns());
        EXPECT_NE(err.diagnosis().event.find("fail"),
                  std::string::npos);
    }
}

TEST(CheckpointRestartTest, IdleCostFieldsLeaveReplaysBitIdentical)
{
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(64 * 1024, 400'000, 3));
    const auto base = testing::platformAt(512.0);
    auto idle = base;
    idle.checkpointCostUs = 5.0;
    idle.restartCostUs = 7.0;
    expectIdentical(sim::simulate(bundle.traces, base),
                    sim::simulate(bundle.traces, idle));
}

TEST(CheckpointRestartTest, UnfiredCheckpointLeavesRankTimesUntouched)
{
    // An interval beyond the completion time takes no checkpoint
    // and perturbs no rank observable (the pending checkpoint event
    // itself is the only extra event processed).
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(64 * 1024, 400'000, 3));
    const auto base = testing::platformAt(512.0);
    auto late = base;
    late.checkpointIntervalUs = 1e9;

    const auto a = sim::simulate(bundle.traces, base);
    const auto b = sim::simulate(bundle.traces, late);
    EXPECT_EQ(b.checkpoints, 0u);
    EXPECT_EQ(a.totalTime.ns(), b.totalTime.ns());
    ASSERT_EQ(a.perRank.size(), b.perRank.size());
    for (std::size_t r = 0; r < a.perRank.size(); ++r) {
        EXPECT_EQ(a.perRank[r].endTime.ns(),
                  b.perRank[r].endTime.ns());
        EXPECT_EQ(a.perRank[r].computeTime.ns(),
                  b.perRank[r].computeTime.ns());
        EXPECT_EQ(a.perRank[r].bytesSent, b.perRank[r].bytesSent);
    }
}

// ---------------------------------------------------------------
// Rollback with communication in flight.
// ---------------------------------------------------------------

TEST(CheckpointRestartTest, RoutedInFlightTransfersRollBackDeterministically)
{
    // 512 KB ring payloads serialize for ~1 ms on the tapered tree,
    // so the fail-stop at 500 us lands with transfers in flight;
    // the rollback cancels them (the engine asserts the LinkNetwork
    // drains to zero occupancy) and the replay still completes.
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(512 * 1024, 400'000, 2));
    auto platform = sim::platforms::topologyCluster(
        net::topologies::taperedFatTree(2));
    platform.checkpointIntervalUs = 200.0;
    platform.checkpointCostUs = 10.0;
    platform.restartCostUs = 20.0;

    const auto nominal = sim::simulate(bundle.traces, platform);
    EXPECT_EQ(nominal.restarts, 0u);

    platform.scenario.events.push_back(nodeFail(500.0, 1));
    const auto a = sim::simulate(bundle.traces, platform);
    EXPECT_GE(a.restarts, 1u);
    EXPECT_GT(a.totalTime.ns(), nominal.totalTime.ns());

    // Restarted replays stay deterministic run to run.
    const auto b = sim::simulate(bundle.traces, platform);
    expectIdentical(a, b);
}

TEST(CheckpointRestartTest, FlatBusRollbackIsDeterministicToo)
{
    const auto bundle = testing::traceOf(
        2, testing::producerConsumer(1'000'000, 400'000));
    auto platform = ckptPlatform(150.0, 5.0, 10.0);
    platform.bandwidthMBps = 100.0; // 10 ms serialization.
    platform.scenario.events.push_back(nodeFail(400.0, 1));

    const auto a = sim::simulate(bundle.traces, platform);
    EXPECT_GE(a.restarts, 1u);
    const auto b = sim::simulate(bundle.traces, platform);
    expectIdentical(a, b);
}

TEST(CheckpointRestartTest, EverythingOnPlatformReplaysDeterministically)
{
    // The acceptance combination: checkpointing + algorithmic
    // collectives + degrade/recover + stall/recover + background
    // traffic + timeline capture, with a fail-stop mid-run. Every
    // one of these was a run-start fatal under PR 7.
    const auto bundle =
        testing::traceOf(4, [](vm::VmContext &ctx) {
            ctx.compute(200'000);
            ctx.barrier();
            ctx.compute(1'000'000);
            ctx.barrier();
        });
    auto platform = sim::platforms::topologyCluster(
        net::topologies::taperedFatTree(2));
    platform.checkpointIntervalUs = 150.0;
    platform.checkpointCostUs = 5.0;
    platform.restartCostUs = 15.0;
    platform.collectiveModel = coll::CollectiveModel::algorithmic;
    platform.captureTimeline = true;

    auto &events = platform.scenario.events;
    ScenarioEvent degrade;
    degrade.kind = ScenEventKind::degrade;
    degrade.target = ScenTarget::all;
    degrade.time = SimTime::fromUs(100.0);
    degrade.bandwidthFactor = 0.5;
    events.push_back(degrade);
    ScenarioEvent recover_degrade;
    recover_degrade.kind = ScenEventKind::recover;
    recover_degrade.target = ScenTarget::all;
    recover_degrade.time = SimTime::fromUs(400.0);
    events.push_back(recover_degrade);
    ScenarioEvent background;
    background.kind = ScenEventKind::background;
    background.target = ScenTarget::route;
    background.nodeA = 0;
    background.nodeB = 3;
    background.time = SimTime::fromUs(250.0);
    background.bytes = 256 * 1024;
    events.push_back(background);
    ScenarioEvent stall;
    stall.kind = ScenEventKind::fail;
    stall.target = ScenTarget::node;
    stall.nodeA = 2;
    stall.time = SimTime::fromUs(500.0);
    stall.semantics = FailSemantics::stall;
    events.push_back(stall);
    ScenarioEvent recover_stall;
    recover_stall.kind = ScenEventKind::recover;
    recover_stall.target = ScenTarget::node;
    recover_stall.nodeA = 2;
    recover_stall.time = SimTime::fromUs(550.0);
    events.push_back(recover_stall);
    events.push_back(nodeFail(700.0, 1));

    const auto a = sim::simulate(bundle.traces, platform);
    EXPECT_GE(a.restarts, 1u);
    EXPECT_GE(a.checkpoints, 3u);
    // Every surviving rank pays the spliced restart interval.
    EXPECT_EQ(
        a.timeline.timeInState(0, sim::RankState::restart).ns(),
        static_cast<std::int64_t>(a.restarts) *
            SimTime::fromUs(15.0).ns());
    EXPECT_NE(viz::renderGantt(a.timeline).find('X'),
              std::string::npos);

    // Bit-identical across repeats (each simulate() call is its own
    // session, so this is also the cross-session guarantee).
    const auto b = sim::simulate(bundle.traces, platform);
    expectIdentical(a, b);
}

// ---------------------------------------------------------------
// Seeded fuzz: checkpoints against random fault streams.
// ---------------------------------------------------------------

TEST(CheckpointFuzzTest, RandomFaultStreamsReplayDeterministically)
{
    // 200 seeded rounds of random fault models (fail-stop, stall,
    // degrade over nodes, links and the whole machine) expanded and
    // replayed twice under random checkpoint cost models, on the
    // flat bus and on a routed fabric alternately. The engine's
    // always-on conservation asserts (occupancy drained to zero on
    // cancel, restored occupancy equal to the snapshot's, sent
    // bytes never increased by a rollback) fire on every rollback;
    // the test adds the bit-identity contract on top.
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(16 * 1024, 50'000, 1));
    const auto routed_base = sim::platforms::topologyCluster(
        net::topologies::taperedFatTree(2));

    for (std::uint64_t round = 0; round < 200; ++round) {
        CounterRng rng(2026, round);
        const bool routed = (round & 1) != 0;

        res::FaultModel model;
        const std::uint64_t nprocs = 1 + rng.next() % 3;
        for (std::uint64_t p = 0; p < nprocs; ++p) {
            // One process per node (index p): recover events match
            // by scope, so a stall's repair on a node that another
            // process fail-stops would ambiguously pair with the
            // crash — a stream compileScenario rightly rejects.
            res::FaultProcess proc;
            switch (rng.next() % 4u) {
              case 0:
                proc.target = ScenTarget::node;
                proc.nodeA = static_cast<int>(p);
                proc.effect = res::FaultEffect::failStop;
                break;
              case 1:
                proc.target = ScenTarget::node;
                proc.nodeA = static_cast<int>(p);
                proc.effect = res::FaultEffect::stall;
                break;
              case 2:
                proc.target = ScenTarget::all;
                proc.effect = res::FaultEffect::failStop;
                break;
              default:
                // Node-scoped degrades hit the NIC links, which
                // every topology has (some pairs on the tapered
                // tree share a switch and own no fabric links, so a
                // bare link scope would not always resolve).
                proc.target = ScenTarget::node;
                proc.nodeA = static_cast<int>(p);
                proc.effect = res::FaultEffect::degrade;
                proc.degradeFactor =
                    0.25 + static_cast<double>(rng.next() % 50) /
                               100.0;
                break;
            }
            proc.mtbfUs =
                100.0 + static_cast<double>(rng.next() % 2000);
            if (proc.effect != res::FaultEffect::failStop)
                proc.mttrUs =
                    20.0 + static_cast<double>(rng.next() % 200);
            model.processes.push_back(proc);
        }

        auto platform =
            routed ? routed_base : testing::platformAt(256.0);
        platform.checkpointIntervalUs =
            50.0 + static_cast<double>(rng.next() % 400);
        platform.checkpointCostUs =
            static_cast<double>(rng.next() % 10);
        platform.restartCostUs =
            static_cast<double>(rng.next() % 20);
        if (rng.next() % 2 == 0) {
            platform.checkpointGlobalIntervalUs =
                2.0 * platform.checkpointIntervalUs;
            platform.checkpointGlobalCostUs =
                static_cast<double>(rng.next() % 20);
            platform.restartGlobalCostUs =
                static_cast<double>(rng.next() % 40);
        }
        platform.scenario = res::generateScenario(
            model, rng.next(), SimTime::fromUs(3000.0));

        const auto a = sim::simulate(bundle.traces, platform);
        const auto b = sim::simulate(bundle.traces, platform);
        SCOPED_TRACE("fuzz round " + std::to_string(round));
        expectIdentical(a, b);
    }
}

// ---------------------------------------------------------------
// Guard rails.
// ---------------------------------------------------------------

TEST(CheckpointRestartTest, RestartBudgetExhaustionIsAFailureNotAHang)
{
    // Failures every microsecond against a 100 us burst: the
    // machine fails faster than it recovers and the replay must
    // surface the platform's restart_budget, not spin forever.
    auto platform = ckptPlatform(60.0, 5.0, 7.0);
    platform.restartBudget = 64;
    for (int i = 0; i <= 500; ++i)
        platform.scenario.events.push_back(
            nodeFail(1.0 + static_cast<double>(i), 0));
    const auto bundle = singleBurst(100'000);
    try {
        sim::simulate(bundle.traces, platform);
        FAIL() << "restart budget exhaustion must throw";
    } catch (const scen::FailureError &err) {
        // The error names the failing knobs: the budget itself, the
        // observed MTBF and the checkpoint interval.
        EXPECT_NE(err.diagnosis().event.find("restart_budget (64)"),
                  std::string::npos)
            << err.diagnosis().event;
        EXPECT_NE(err.diagnosis().event.find("checkpoint_interval"),
                  std::string::npos);
    }
}

TEST(CheckpointRestartTest, LiftedModeRestrictionsReplayToCompletion)
{
    // PR 7 fataled on timeline capture, algorithmic collectives and
    // non-fail-stop scenario events under a positive checkpoint
    // interval; all three restrictions are lifted.
    const auto bundle = singleBurst(100'000);

    // Timeline capture rides along (115 us failure-free pin holds).
    auto capture = ckptPlatform(30.0, 5.0, 7.0);
    capture.captureTimeline = true;
    const auto captured = sim::simulate(bundle.traces, capture);
    EXPECT_EQ(captured.totalTime.ns(), SimTime::fromUs(115.0).ns());
    EXPECT_EQ(captured.checkpoints, 3u);
    EXPECT_GT(captured.timeline.span().ns(), 0);

    // Algorithmic collectives checkpoint their live schedules.
    const auto coll_bundle =
        testing::traceOf(4, [](vm::VmContext &ctx) {
            ctx.compute(50'000);
            ctx.barrier();
        });
    auto algo = ckptPlatform(60.0, 5.0, 7.0);
    algo.collectiveModel = coll::CollectiveModel::algorithmic;
    const auto a = sim::simulate(coll_bundle.traces, algo);
    EXPECT_GT(a.totalTime.ns(), 0);
    expectIdentical(a, sim::simulate(coll_bundle.traces, algo));

    // Non-fail-stop scenario events snapshot their active effect;
    // with no communication the degrade changes nothing and the
    // 115 us compute pin survives.
    auto degrade = ckptPlatform(30.0, 5.0, 7.0);
    ScenarioEvent ev;
    ev.kind = ScenEventKind::degrade;
    ev.target = ScenTarget::all;
    ev.time = SimTime::fromUs(1.0);
    ev.bandwidthFactor = 0.5;
    degrade.scenario.events.push_back(ev);
    EXPECT_EQ(sim::simulate(bundle.traces, degrade).totalTime.ns(),
              SimTime::fromUs(115.0).ns());

    // An interval that rounds to zero nanoseconds still cannot
    // schedule — the one restriction that remains.
    auto tiny = ckptPlatform(1e-6, 5.0, 7.0);
    EXPECT_THROW(sim::simulate(bundle.traces, tiny), FatalError);
}

// ---------------------------------------------------------------
// Failure propagation through the campaign drivers (satellite).
// ---------------------------------------------------------------

TEST(FailurePropagationTest, SimulateBatchRethrowsFailureError)
{
    const auto bundle = testing::traceOf(
        2, testing::producerConsumer(256 * 1024, 400'000));
    auto healthy = testing::platformAt(256.0);
    auto doomed = healthy;
    doomed.scenario.events.push_back(nodeFail(10.0, 0));

    std::vector<sim::SimJob> jobs;
    jobs.emplace_back(&bundle.traces, healthy);
    jobs.emplace_back(&bundle.traces, doomed);
    jobs.emplace_back(&bundle.traces, healthy);
    jobs.emplace_back(&bundle.traces, healthy);
    EXPECT_THROW(sim::simulateBatch(jobs, 2), scen::FailureError);
}

TEST(FailurePropagationTest, BandwidthSweepRethrowsFailureError)
{
    const auto bundle = testing::traceOf(
        2, testing::producerConsumer(256 * 1024, 400'000));
    auto doomed = testing::platformAt(256.0);
    doomed.scenario.events.push_back(nodeFail(10.0, 0));
    EXPECT_THROW(core::bandwidthSweep(bundle, doomed, {256.0, 512.0},
                                      core::standardVariants(), 2),
                 scen::FailureError);
}

// ---------------------------------------------------------------
// The resilience campaign driver.
// ---------------------------------------------------------------

void
expectSameResilienceResult(const core::ResilienceResult &a,
                           const core::ResilienceResult &b)
{
    EXPECT_EQ(a.seedCount, b.seedCount);
    EXPECT_EQ(a.horizon.ns(), b.horizon.ns());
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t p = 0; p < a.points.size(); ++p) {
        EXPECT_EQ(a.points[p].mtbfUs, b.points[p].mtbfUs);
        ASSERT_EQ(a.points[p].cells.size(), b.points[p].cells.size());
        for (std::size_t c = 0; c < a.points[p].cells.size(); ++c) {
            const auto &ca = a.points[p].cells[c];
            const auto &cb = b.points[p].cells[c];
            EXPECT_EQ(ca.meanTime.ns(), cb.meanTime.ns())
                << "point " << p << " cell " << c;
            EXPECT_EQ(ca.p95Time.ns(), cb.p95Time.ns())
                << "point " << p << " cell " << c;
            EXPECT_EQ(ca.failedFraction, cb.failedFraction)
                << "point " << p << " cell " << c;
            ASSERT_EQ(ca.seedTimes.size(), cb.seedTimes.size());
            ASSERT_EQ(ca.seedDiagnoses.size(),
                      cb.seedDiagnoses.size());
            for (std::size_t s = 0; s < ca.seedTimes.size(); ++s) {
                EXPECT_EQ(ca.seedTimes[s].ns(), cb.seedTimes[s].ns())
                    << "point " << p << " cell " << c << " seed "
                    << s;
                EXPECT_EQ(ca.seedDiagnoses[s].event,
                          cb.seedDiagnoses[s].event)
                    << "point " << p << " cell " << c << " seed "
                    << s;
            }
        }
    }
}

TEST(ResilienceSweepTest, GridIsBitIdenticalAcrossThreadCounts)
{
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(64 * 1024, 400'000, 3));
    auto base = testing::platformAt(512.0);
    base.checkpointIntervalUs = 300.0;
    base.checkpointCostUs = 5.0;
    base.restartCostUs = 10.0;

    const std::vector<double> grid = {8000.0, 1000.0};
    const auto variants = core::standardVariants();
    const auto serial =
        core::resilienceSweep(bundle, base, grid, variants, 4, 1, 1);
    for (const int threads : {2, 8}) {
        const auto parallel = core::resilienceSweep(
            bundle, base, grid, variants, 4, 1, threads);
        expectSameResilienceResult(serial, parallel);
    }

    // Shape: cell 0 is the original, then one per variant, and
    // every checkpointed cell survives its faults.
    ASSERT_EQ(serial.points.size(), grid.size());
    for (const auto &point : serial.points) {
        ASSERT_EQ(point.cells.size(), variants.size() + 1);
        for (const auto &cell : point.cells) {
            EXPECT_EQ(cell.failedFraction, 0.0);
            EXPECT_GT(cell.meanTime.ns(), 0);
            EXPECT_GE(cell.p95Time.ns(), cell.meanTime.ns());
        }
    }
}

TEST(ResilienceSweepTest, DeadRunsAreReportedAsDataNotThrown)
{
    // Without checkpointing a fail-stop kills the run; at a per-node
    // MTBF far below the runtime every seed draws at least one fault
    // inside the horizon, so the whole cell dies — as data.
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(64 * 1024, 400'000, 3));
    const auto base = testing::platformAt(512.0);

    const auto result =
        core::resilienceSweep(bundle, base, {50.0}, {}, 4, 1, 2);
    ASSERT_EQ(result.points.size(), 1u);
    ASSERT_EQ(result.points[0].cells.size(), 1u);
    const auto &cell = result.points[0].cells[0];
    EXPECT_EQ(cell.failedFraction, 1.0);
    EXPECT_EQ(cell.meanTime.ns(), 0);
    for (const SimTime t : cell.seedTimes)
        EXPECT_EQ(t.ns(), SimTime::max().ns());

    // Every dead seed carries the structured why-it-died report:
    // the fail event that fired and the ranks left unfinished.
    ASSERT_EQ(cell.seedDiagnoses.size(), cell.seedTimes.size());
    for (const auto &diag : cell.seedDiagnoses) {
        EXPECT_NE(diag.event.find("fail"), std::string::npos)
            << diag.event;
        EXPECT_FALSE(diag.blockedRanks.empty());
        EXPECT_GT(diag.time.ns(), 0);
    }
}

// ---------------------------------------------------------------
// The protocol-comparison campaign driver.
// ---------------------------------------------------------------

TEST(ProtocolSweepTest, SweptOptimumLandsWithinOneGridStepOfDaly)
{
    // One rank, one node: a 2000 us burst under exponential
    // fail-stop faults at MTBF 1000 us with checkpoint cost 20 us.
    // Daly's optimum is exactly sqrt(2 * 20 * 1000) - 20 = 180 us;
    // the sweep's argmin over a sqrt(2)-spaced grid must land
    // within one grid step of it.
    const auto bundle = singleBurst(2'000'000);
    const auto base = sim::platforms::defaultCluster();
    std::vector<double> grid;
    for (double v = 45.0; v < 800.0; v *= std::sqrt(2.0))
        grid.push_back(v);

    std::vector<core::CheckpointProtocol> protocols;
    core::CheckpointProtocol single;
    single.name = "single-level";
    single.checkpointCostUs = 20.0;
    single.restartCostUs = 40.0;
    protocols.push_back(single);
    core::CheckpointProtocol two;
    two.name = "two-level";
    two.checkpointCostUs = 20.0;
    two.restartCostUs = 40.0;
    two.globalIntervalFactor = 4.0;
    two.checkpointGlobalCostUs = 40.0;
    two.restartGlobalCostUs = 80.0;
    protocols.push_back(two);

    const auto result = core::protocolSweep(
        bundle, base, 1000.0, grid, protocols, 48, 1, 0.0, 4);
    ASSERT_EQ(result.rows.size(), 2u);
    EXPECT_EQ(result.intervalGridUs, grid);

    const auto &row = result.rows[0];
    EXPECT_DOUBLE_EQ(row.dalyIntervalUs, 180.0);
    ASSERT_EQ(row.cells.size(), grid.size());
    for (const auto &cell : row.cells) {
        EXPECT_EQ(cell.cell.failedFraction, 0.0)
            << "interval " << cell.intervalUs;
    }

    // Index of the grid point nearest the analytic optimum, and of
    // the swept argmin: at most one step apart.
    std::size_t daly_idx = 0, best_idx = 0;
    for (std::size_t k = 0; k < grid.size(); ++k) {
        if (std::abs(grid[k] - row.dalyIntervalUs) <
            std::abs(grid[daly_idx] - row.dalyIntervalUs))
            daly_idx = k;
        if (grid[k] == row.bestIntervalUs)
            best_idx = k;
    }
    EXPECT_GT(row.bestIntervalUs, 0.0);
    EXPECT_LE(best_idx > daly_idx ? best_idx - daly_idx
                                  : daly_idx - best_idx,
              1u)
        << "swept " << row.bestIntervalUs << " us vs Daly "
        << row.dalyIntervalUs << " us";

    // The two-level row shares the analytic prediction (same local
    // cost, same failure process) and also survives everywhere.
    EXPECT_DOUBLE_EQ(result.rows[1].dalyIntervalUs, 180.0);
    EXPECT_GT(result.rows[1].bestIntervalUs, 0.0);
}

TEST(ProtocolSweepTest, MachineWideFaultsFavorTheGlobalSlotAndStayDeterministic)
{
    // With machine-wide crashes in the mix the two-level protocol
    // restores them from its global snapshot; the campaign stays
    // bit-identical across thread counts.
    const auto bundle = singleBurst(1'000'000);
    const auto base = sim::platforms::defaultCluster();
    const std::vector<double> grid = {100.0, 200.0, 400.0};
    std::vector<core::CheckpointProtocol> protocols;
    core::CheckpointProtocol two;
    two.name = "two-level";
    two.checkpointCostUs = 10.0;
    two.restartCostUs = 20.0;
    two.globalIntervalFactor = 2.0;
    two.checkpointGlobalCostUs = 20.0;
    two.restartGlobalCostUs = 40.0;
    protocols.push_back(two);

    const auto serial = core::protocolSweep(
        bundle, base, 2000.0, grid, protocols, 6, 1, 3000.0, 1);
    ASSERT_EQ(serial.rows.size(), 1u);
    EXPECT_EQ(serial.machineMtbfUs, 3000.0);
    for (const auto &cell : serial.rows[0].cells)
        EXPECT_EQ(cell.cell.failedFraction, 0.0);

    for (const int threads : {2, 8}) {
        const auto parallel = core::protocolSweep(
            bundle, base, 2000.0, grid, protocols, 6, 1, 3000.0,
            threads);
        EXPECT_EQ(parallel.horizon.ns(), serial.horizon.ns());
        ASSERT_EQ(parallel.rows.size(), serial.rows.size());
        for (std::size_t k = 0; k < grid.size(); ++k) {
            const auto &ca = serial.rows[0].cells[k].cell;
            const auto &cb = parallel.rows[0].cells[k].cell;
            ASSERT_EQ(ca.seedTimes.size(), cb.seedTimes.size());
            for (std::size_t s = 0; s < ca.seedTimes.size(); ++s)
                EXPECT_EQ(ca.seedTimes[s].ns(),
                          cb.seedTimes[s].ns())
                    << "interval " << grid[k] << " seed " << s;
        }
        EXPECT_EQ(parallel.rows[0].bestIntervalUs,
                  serial.rows[0].bestIntervalUs);
    }
}

// ---------------------------------------------------------------
// Platform-file keys (satellite: domain-checked parsing).
// ---------------------------------------------------------------

TEST(ResPlatformFileTest, CheckpointKeysRoundTripAndAreDomainChecked)
{
    auto platform = ckptPlatform(50000.0, 2000.0, 5000.0);
    platform.checkpointGlobalIntervalUs = 200000.0;
    platform.checkpointGlobalCostUs = 8000.0;
    platform.restartGlobalCostUs = 15000.0;
    platform.restartBudget = 123;
    std::ostringstream out;
    sim::writePlatformConfig(platform, out);
    std::istringstream in(out.str());
    const auto parsed = sim::readPlatformConfig(in);
    EXPECT_EQ(parsed.checkpointIntervalUs,
              platform.checkpointIntervalUs);
    EXPECT_EQ(parsed.checkpointCostUs, platform.checkpointCostUs);
    EXPECT_EQ(parsed.restartCostUs, platform.restartCostUs);
    EXPECT_EQ(parsed.checkpointGlobalIntervalUs,
              platform.checkpointGlobalIntervalUs);
    EXPECT_EQ(parsed.checkpointGlobalCostUs,
              platform.checkpointGlobalCostUs);
    EXPECT_EQ(parsed.restartGlobalCostUs,
              platform.restartGlobalCostUs);
    EXPECT_EQ(parsed.restartBudget, platform.restartBudget);

    for (const char *bad :
         {"checkpoint_interval_us = -1",
          "checkpoint_cost_us = nan",
          "restart_cost_us = -inf",
          "bandwidth_mbps = -5",
          "restart_budget = 0",
          "restart_budget = -3",
          "checkpoint_global_cost_us = -1",
          "restart_global_cost_us = nan",
          // The global level rides on the local checkpoint chain,
          // so a global interval without a local one is nonsense.
          "checkpoint_global_interval_us = 50"}) {
        std::istringstream stream(bad);
        EXPECT_THROW(sim::readPlatformConfig(stream), FatalError)
            << bad;
    }
}

} // namespace
} // namespace ovlsim
