/**
 * @file
 * Tests for the observability layer (src/obs/): always-on engine
 * counters pinned on closed-form replays, cache introspection,
 * campaign aggregation that stays bit-identical across sessions and
 * thread counts, host-span recording under parallel load, and a
 * round-trip of the Chrome trace-event export through a real JSON
 * parser.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "coll/schedule.hh"
#include "core/analysis.hh"
#include "obs/chrome_trace.hh"
#include "obs/progress.hh"
#include "obs/stats.hh"
#include "sim/engine.hh"
#include "sim/platform.hh"
#include "util/thread_pool.hh"

#include "helpers.hh"

namespace ovlsim {
namespace {

using scen::FailSemantics;
using scen::ScenarioEvent;
using scen::ScenEventKind;
using scen::ScenTarget;
using trace::RecvRec;
using trace::SendRec;
using trace::TraceSet;

/** Default cluster with the checkpoint/restart cost model set. */
sim::PlatformConfig
ckptPlatform(double interval_us, double cost_us, double restart_us)
{
    auto platform = sim::platforms::defaultCluster();
    platform.checkpointIntervalUs = interval_us;
    platform.checkpointCostUs = cost_us;
    platform.restartCostUs = restart_us;
    return platform;
}

ScenarioEvent
nodeFail(double us, int node)
{
    ScenarioEvent ev;
    ev.time = SimTime::fromUs(us);
    ev.kind = ScenEventKind::fail;
    ev.target = ScenTarget::node;
    ev.nodeA = node;
    ev.semantics = FailSemantics::failStop;
    return ev;
}

// ---------------------------------------------------------------
// EngineStats: the merge algebra and the closed-form counter pins.
// ---------------------------------------------------------------

TEST(EngineStatsTest, MergeAddsCountersAndMaxesTheHighWater)
{
    obs::EngineStats a;
    a.heapPushes = 10;
    a.heapPops = 10;
    a.channelProbes = 4;
    a.arenaHighWater = 3;
    a.rollbackReworkNs = 100;
    obs::EngineStats b;
    b.heapPushes = 5;
    b.heapPops = 5;
    b.arenaHighWater = 7;
    b.collSteps = 2;

    obs::EngineStats ab = a;
    ab.merge(b);
    EXPECT_EQ(ab.heapPushes, 15u);
    EXPECT_EQ(ab.heapPops, 15u);
    EXPECT_EQ(ab.channelProbes, 4u);
    EXPECT_EQ(ab.arenaHighWater, 7u);
    EXPECT_EQ(ab.collSteps, 2u);
    EXPECT_EQ(ab.rollbackReworkNs, 100u);

    // Commutative: fold order cannot matter for campaign rows.
    obs::EngineStats ba = b;
    ba.merge(a);
    EXPECT_TRUE(ab == ba);
}

TEST(EngineStatsTest, ClosedFormPingPinsTheCounters)
{
    // One eager send/recv pair: exactly one transfer in the arena
    // and one channel probe per endpoint. No scenario, no
    // collectives, no rollbacks.
    TraceSet traces("t", 2);
    traces.rankTrace(0).append(SendRec{1, 1, 256'000, 1});
    traces.rankTrace(1).append(RecvRec{0, 1, 256'000, 1});
    const auto result =
        sim::simulate(traces, sim::platforms::defaultCluster());

    const obs::EngineStats &stats = result.stats;
    EXPECT_EQ(stats.channelProbes, 2u);
    EXPECT_EQ(stats.arenaHighWater, 1u);
    EXPECT_EQ(stats.heapPops, stats.heapPushes);
    EXPECT_GT(stats.heapPushes, 0u);
    EXPECT_EQ(stats.scenarioEvents, 0u);
    EXPECT_EQ(stats.collSteps, 0u);
    EXPECT_EQ(stats.rollbackReworkNs, 0u);

    // A replay is deterministic, so its counters are too.
    const auto again =
        sim::simulate(traces, sim::platforms::defaultCluster());
    EXPECT_TRUE(again.stats == stats);
}

TEST(EngineStatsTest, HeapBalancesOnRollbackFreeContendedReplays)
{
    // Every event pushed drains through the single pop site when no
    // rollback ever clears the heap; the link network's
    // touched-links filter splits recompute work into performed +
    // skipped on a contended fabric.
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(64 * 1024, 500'000, 4));
    auto platform = sim::platforms::defaultCluster();
    platform.topology = net::topologies::taperedFatTree(4, 0.5);

    const auto result = sim::simulate(bundle.traces, platform);
    EXPECT_EQ(result.stats.heapPops, result.stats.heapPushes);
    EXPECT_GT(result.stats.rateRecomputes, 0u);
    EXPECT_GT(result.stats.channelProbes, 0u);

    // A reusable session reports the same counters as the one-shot
    // entry point.
    sim::ReplaySession session;
    const auto viaSession = session.run(bundle.traces, platform);
    EXPECT_TRUE(viaSession.stats == result.stats);
}

TEST(EngineStatsTest, RollbackChargesReworkAndKeepsPushesAhead)
{
    // The closed-form restart pin of test_res: I = 60, C = 5,
    // R = 7 over a single 100 us burst, fail-stop at machine
    // progress 80 (wall 85). The rollback restores the checkpoint
    // imaged at wall 65 and re-enters at 85 + 7, so the rework
    // delta is exactly 27 us.
    auto platform = ckptPlatform(60.0, 5.0, 7.0);
    platform.scenario.events.push_back(nodeFail(80.0, 0));
    const auto bundle = testing::traceOf(
        1, [](vm::VmContext &ctx) { ctx.compute(100'000); });

    const auto result = sim::simulate(bundle.traces, platform);
    EXPECT_EQ(result.restarts, 1u);
    EXPECT_EQ(result.stats.rollbackReworkNs,
              static_cast<std::uint64_t>(
                  SimTime::fromUs(27.0).ns()));
    // The restart discards counted pushes with the cleared heap,
    // so pushes can only run ahead of pops, never behind.
    EXPECT_GE(result.stats.heapPushes, result.stats.heapPops);
    EXPECT_GT(result.stats.scenarioEvents, 0u);
}

// ---------------------------------------------------------------
// Cache introspection.
// ---------------------------------------------------------------

TEST(CacheStatsTest, ScheduleCacheCountsHitsMissesAndClears)
{
    coll::clearScheduleCache();
    obs::resetCacheStats();

    const auto first = coll::compileSchedule(
        trace::CollOp::allReduce, 4, 0, 4096,
        coll::Algorithm::recursiveDoubling);
    auto row = obs::cacheReport()[2];
    EXPECT_EQ(row.name, "schedule");
    EXPECT_EQ(row.misses, 1u);
    EXPECT_EQ(row.hits, 0u);
    EXPECT_EQ(row.entries, 1u);
    EXPECT_GT(row.bytes, 0u);
    EXPECT_DOUBLE_EQ(row.hitRate(), 0.0);

    const auto second = coll::compileSchedule(
        trace::CollOp::allReduce, 4, 0, 4096,
        coll::Algorithm::recursiveDoubling);
    EXPECT_EQ(first.get(), second.get());
    row = obs::cacheReport()[2];
    EXPECT_EQ(row.hits, 1u);
    EXPECT_EQ(row.misses, 1u);
    EXPECT_EQ(row.entries, 1u);
    EXPECT_DOUBLE_EQ(row.hitRate(), 0.5);

    // Clearing empties the gauges but keeps the hit/miss history,
    // and live schedules stay valid.
    coll::clearScheduleCache();
    row = obs::cacheReport()[2];
    EXPECT_EQ(row.entries, 0u);
    EXPECT_EQ(row.bytes, 0u);
    EXPECT_EQ(row.hits, 1u);
    EXPECT_EQ(row.misses, 1u);
    EXPECT_GT(first->totalSteps(), 0u);

    // A recompile is a fresh miss into the emptied cache.
    const auto third = coll::compileSchedule(
        trace::CollOp::allReduce, 4, 0, 4096,
        coll::Algorithm::recursiveDoubling);
    row = obs::cacheReport()[2];
    EXPECT_EQ(row.misses, 2u);
    EXPECT_EQ(row.entries, 1u);
    EXPECT_NE(third.get(), first.get());
}

TEST(CacheStatsTest, ReportCoversAllThreeCachesInOrder)
{
    const auto rows = obs::cacheReport();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].name, "study");
    EXPECT_EQ(rows[1].name, "topology");
    EXPECT_EQ(rows[2].name, "schedule");
    // The rendered report names every cache.
    const std::string text = obs::cacheReportString();
    EXPECT_NE(text.find("study"), std::string::npos);
    EXPECT_NE(text.find("topology"), std::string::npos);
    EXPECT_NE(text.find("schedule"), std::string::npos);
}

// ---------------------------------------------------------------
// Campaign aggregation: bit-identical stats across sessions and
// thread counts, spans and progress hooks.
// ---------------------------------------------------------------

TEST(ObsCampaignTest, SweepStatsBitIdenticalAcrossThreadCounts)
{
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(64 * 1024, 500'000, 4));
    const auto base = sim::platforms::defaultCluster();
    const auto grid = core::logBandwidthGrid(1.0, 4096.0, 2);
    const auto variants = core::standardVariants(8);

    const auto reference =
        core::bandwidthSweep(bundle, base, grid, variants, 1);
    EXPECT_GT(reference.stats.heapPushes, 0u);
    ASSERT_EQ(reference.points.size(), grid.size());

    for (const int threads : {2, 8}) {
        const auto sweep = core::bandwidthSweep(
            bundle, base, grid, variants, threads);
        EXPECT_TRUE(sweep.stats == reference.stats)
            << "threads " << threads;
        ASSERT_EQ(sweep.points.size(), reference.points.size());
        for (std::size_t i = 0; i < sweep.points.size(); ++i) {
            EXPECT_TRUE(sweep.points[i].stats ==
                        reference.points[i].stats)
                << "threads " << threads << " point " << i;
        }
    }

    // A second independent campaign (fresh sessions throughout)
    // reproduces the aggregate bit for bit.
    const auto again =
        core::bandwidthSweep(bundle, base, grid, variants, 1);
    EXPECT_TRUE(again.stats == reference.stats);
}

TEST(ObsCampaignTest, ProgressAndSpansHookIntoTheSweep)
{
    const auto bundle = testing::traceOf(
        2, testing::packedExchange(64 * 1024, 200'000));
    const auto base = sim::platforms::defaultCluster();
    const auto grid = core::logBandwidthGrid(16.0, 1024.0, 1);
    const auto variants = core::standardVariants(4);

    obs::Progress progress("test sweep", grid.size());
    core::CampaignObs cobs;
    cobs.progress = &progress;
    cobs.recordSpans = true;

    const auto sweep = core::bandwidthSweep(
        bundle, base, grid, variants, 2, &cobs);
    ASSERT_EQ(sweep.points.size(), grid.size());
    EXPECT_EQ(progress.done(), grid.size());
    progress.finish();

    // Compile spans plus one span per sweep point, all closed and
    // well-formed.
    EXPECT_GE(cobs.spans.size(), grid.size());
    for (const ThreadPool::LaneSpan &span : cobs.spans) {
        EXPECT_GE(span.endNs, span.beginNs);
        EXPECT_GE(span.lane, 0);
        EXPECT_LT(span.lane, 2);
        EXPECT_FALSE(span.name.empty());
    }
}

TEST(ObsCampaignTest, ObservedSweepMatchesTheUnobservedOne)
{
    // The observability hooks must not perturb results: a sweep
    // with progress + spans on returns the same points and stats
    // as the plain call.
    const auto bundle = testing::traceOf(
        2, testing::packedExchange(64 * 1024, 200'000));
    const auto base = sim::platforms::defaultCluster();
    const auto grid = core::logBandwidthGrid(16.0, 1024.0, 1);
    const auto variants = core::standardVariants(4);

    const auto plain =
        core::bandwidthSweep(bundle, base, grid, variants, 2);
    obs::Progress progress("test sweep", grid.size());
    core::CampaignObs cobs;
    cobs.progress = &progress;
    cobs.recordSpans = true;
    const auto observed = core::bandwidthSweep(
        bundle, base, grid, variants, 2, &cobs);

    ASSERT_EQ(observed.points.size(), plain.points.size());
    for (std::size_t i = 0; i < plain.points.size(); ++i) {
        EXPECT_EQ(observed.points[i].originalTime.ns(),
                  plain.points[i].originalTime.ns());
        EXPECT_TRUE(observed.points[i].stats ==
                    plain.points[i].stats);
    }
    EXPECT_TRUE(observed.stats == plain.stats);
}

TEST(ProgressTest, TicksAccumulateAndFinishIsIdempotent)
{
    obs::Progress progress("unit", 3);
    EXPECT_EQ(progress.total(), 3u);
    EXPECT_EQ(progress.done(), 0u);
    progress.tick();
    progress.tick(2);
    EXPECT_EQ(progress.done(), 3u);
    progress.finish();
    progress.finish();
}

// ---------------------------------------------------------------
// ThreadPool span buffers under parallel load (TSAN target via the
// parallel label).
// ---------------------------------------------------------------

TEST(ObsSpanTest, SpanBuffersStayConsistentUnderParallelLoad)
{
    ThreadPool pool(4);
    pool.enableSpans();
    std::atomic<int> ran{0};
    pool.parallelFor(64, [&](std::size_t task, int lane) {
        pool.spanBegin(lane, "task " + std::to_string(task));
        ran.fetch_add(1, std::memory_order_relaxed);
        pool.spanEnd(lane);
    });
    EXPECT_EQ(ran.load(), 64);

    const auto spans = pool.takeSpans();
    ASSERT_EQ(spans.size(), 64u);
    std::uint64_t previous = 0;
    for (const ThreadPool::LaneSpan &span : spans) {
        EXPECT_GE(span.endNs, span.beginNs);
        EXPECT_GE(span.lane, 0);
        EXPECT_LT(span.lane, pool.size());
        EXPECT_GE(span.beginNs, previous); // sorted by begin
        previous = span.beginNs;
    }

    // Buffers were drained; a second take is empty, and a fresh
    // epoch restarts cleanly.
    EXPECT_TRUE(pool.takeSpans().empty());
    pool.enableSpans();
    pool.parallelFor(4, [&](std::size_t, int lane) {
        pool.spanBegin(lane, "again");
        pool.spanEnd(lane);
    });
    EXPECT_EQ(pool.takeSpans().size(), 4u);
}

// ---------------------------------------------------------------
// Chrome trace export: validated through a real (if small) JSON
// parser — structure, matched B/E pairs, monotone per-track time.
// ---------------------------------------------------------------

/** Minimal recursive-descent JSON document model. */
struct Json
{
    enum class Kind { null, boolean, number, string, array, object };
    Kind kind = Kind::null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<Json> items;
    std::map<std::string, Json> members;

    const Json &
    at(const std::string &key) const
    {
        const auto it = members.find(key);
        if (it == members.end())
            throw std::runtime_error("missing key " + key);
        return it->second;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    Json
    parseDocument()
    {
        const Json value = parseValue();
        skipSpace();
        if (pos_ != text_.size())
            throw std::runtime_error("trailing garbage");
        return value;
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            throw std::runtime_error("unexpected end");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c) {
            throw std::runtime_error(
                std::string("expected '") + c + "' got '" +
                peek() + "'");
        }
        ++pos_;
    }

    Json
    parseValue()
    {
        skipSpace();
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return parseString();
          case 't':
          case 'f':
            return parseBool();
          case 'n':
            parseLiteral("null");
            return Json{};
          default:
            return parseNumber();
        }
    }

    Json
    parseObject()
    {
        expect('{');
        Json out;
        out.kind = Json::Kind::object;
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            return out;
        }
        while (true) {
            skipSpace();
            Json key = parseString();
            skipSpace();
            expect(':');
            out.members.emplace(key.text, parseValue());
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return out;
        }
    }

    Json
    parseArray()
    {
        expect('[');
        Json out;
        out.kind = Json::Kind::array;
        skipSpace();
        if (peek() == ']') {
            ++pos_;
            return out;
        }
        while (true) {
            out.items.push_back(parseValue());
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return out;
        }
    }

    Json
    parseString()
    {
        expect('"');
        Json out;
        out.kind = Json::Kind::string;
        while (true) {
            if (pos_ >= text_.size())
                throw std::runtime_error("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                const char esc = text_[pos_++];
                switch (esc) {
                  case '"':
                    out.text += '"';
                    break;
                  case '\\':
                    out.text += '\\';
                    break;
                  case 'n':
                    out.text += '\n';
                    break;
                  case '/':
                    out.text += '/';
                    break;
                  default:
                    throw std::runtime_error(
                        "unsupported escape");
                }
                continue;
            }
            out.text += c;
        }
    }

    Json
    parseBool()
    {
        Json out;
        out.kind = Json::Kind::boolean;
        if (peek() == 't') {
            parseLiteral("true");
            out.boolean = true;
        } else {
            parseLiteral("false");
        }
        return out;
    }

    void
    parseLiteral(const char *lit)
    {
        for (const char *c = lit; *c != '\0'; ++c) {
            if (pos_ >= text_.size() || text_[pos_] != *c)
                throw std::runtime_error("bad literal");
            ++pos_;
        }
    }

    Json
    parseNumber()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(
                    text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E')) {
            ++pos_;
        }
        if (pos_ == start)
            throw std::runtime_error("bad number");
        Json out;
        out.kind = Json::Kind::number;
        out.number =
            std::stod(text_.substr(start, pos_ - start));
        return out;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

TEST(ChromeTraceTest, ExportRoundTripsThroughTheJsonParser)
{
    // A two-rank exchange under checkpoint/restart with a mid-run
    // fail-stop: the timeline carries compute/comm/restart
    // intervals, checkpoint marks and a rollback cut. Host spans
    // come from an instrumented pool.
    auto platform = ckptPlatform(60.0, 5.0, 7.0);
    platform.captureTimeline = true;
    platform.scenario.events.push_back(nodeFail(80.0, 0));
    const auto bundle = testing::traceOf(
        2, testing::packedExchange(64 * 1024, 200'000));
    const auto result = sim::simulate(bundle.traces, platform);
    ASSERT_GE(result.restarts, 1u);
    ASSERT_GE(result.checkpoints, 1u);

    ThreadPool pool(2);
    pool.enableSpans();
    pool.parallelFor(8, [&](std::size_t task, int lane) {
        pool.spanBegin(lane,
                       "point bw=" + std::to_string(task));
        pool.spanEnd(lane);
    });
    const auto spans = pool.takeSpans();
    ASSERT_FALSE(spans.empty());

    const std::string json =
        obs::chromeTraceJson(result.timeline, spans);
    Json doc;
    ASSERT_NO_THROW(doc = JsonParser(json).parseDocument());
    ASSERT_EQ(doc.kind, Json::Kind::object);
    EXPECT_EQ(doc.at("displayTimeUnit").text, "ms");
    const Json &events = doc.at("traceEvents");
    ASSERT_EQ(events.kind, Json::Kind::array);
    ASSERT_FALSE(events.items.empty());

    // Walk the events: matched B/E pairs per (pid, tid) with
    // non-decreasing timestamps, named instants on the machine
    // track, host X spans on pid 1.
    std::map<std::pair<int, int>, std::vector<std::string>> open;
    std::map<std::pair<int, int>, double> lastTs;
    bool sawCheckpoint = false;
    bool sawRollback = false;
    bool sawHostSpan = false;
    for (const Json &ev : events.items) {
        ASSERT_EQ(ev.kind, Json::Kind::object);
        const std::string &ph = ev.at("ph").text;
        if (ph == "M")
            continue;
        const std::pair<int, int> track{
            static_cast<int>(ev.at("pid").number),
            static_cast<int>(ev.at("tid").number)};
        const double ts = ev.at("ts").number;
        const std::string &name = ev.at("name").text;
        if (ph == "B" || ph == "E") {
            const auto it = lastTs.find(track);
            if (it != lastTs.end()) {
                EXPECT_GE(ts, it->second) << "track tid "
                                          << track.second;
            }
            lastTs[track] = ts;
            if (ph == "B") {
                open[track].push_back(name);
            } else {
                ASSERT_FALSE(open[track].empty());
                EXPECT_EQ(open[track].back(), name);
                open[track].pop_back();
            }
        } else if (ph == "i") {
            EXPECT_EQ(ev.at("s").text, "p");
            if (name.rfind("checkpoint", 0) == 0)
                sawCheckpoint = true;
            if (name == "rollback")
                sawRollback = true;
        } else if (ph == "X") {
            EXPECT_EQ(track.first, 1);
            EXPECT_GE(ev.at("dur").number, 0.0);
            sawHostSpan = true;
        } else {
            FAIL() << "unexpected phase " << ph;
        }
    }
    for (const auto &[track, stack] : open)
        EXPECT_TRUE(stack.empty())
            << "unbalanced B/E on tid " << track.second;
    EXPECT_TRUE(sawCheckpoint);
    EXPECT_TRUE(sawRollback);
    EXPECT_TRUE(sawHostSpan);

    // writeChromeTrace writes exactly the rendered document.
    const std::string path =
        ::testing::TempDir() + "/ovlsim_trace_test.json";
    obs::writeChromeTrace(path, result.timeline, spans);
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream os;
    os << in.rdbuf();
    EXPECT_EQ(os.str(), json);
}

TEST(ChromeTraceTest, EmptyTimelineStillRendersValidJson)
{
    const std::string json =
        obs::chromeTraceJson(sim::Timeline{});
    Json doc;
    ASSERT_NO_THROW(doc = JsonParser(json).parseDocument());
    EXPECT_EQ(doc.at("traceEvents").kind, Json::Kind::array);
}

} // namespace
} // namespace ovlsim
