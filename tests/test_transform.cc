/**
 * @file
 * Unit and property tests for the overlap transformation.
 */

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "core/transform.hh"
#include "sim/engine.hh"
#include "tests/helpers.hh"
#include "trace/trace_stats.hh"
#include "trace/validate.hh"
#include "util/logging.hh"

namespace ovlsim::core {
namespace {

TransformConfig
makeConfig(PatternModel pattern, Mechanism mechanism,
           std::size_t chunks)
{
    TransformConfig config;
    config.pattern = pattern;
    config.mechanism = mechanism;
    config.chunks = chunks;
    return config;
}

TEST(ChunkCountTest, RespectsMinChunkBytes)
{
    TransformConfig config;
    config.chunks = 16;
    config.minChunkBytes = 1024;
    EXPECT_EQ(chunkCountFor(100, config), 1u);
    EXPECT_EQ(chunkCountFor(1024, config), 1u);
    EXPECT_EQ(chunkCountFor(4096, config), 4u);
    EXPECT_EQ(chunkCountFor(1 << 20, config), 16u);
}

TEST(ChunkCountTest, AlwaysAtLeastOne)
{
    TransformConfig config;
    config.chunks = 1;
    EXPECT_EQ(chunkCountFor(1, config), 1u);
}

TEST(TransformLabelTest, EncodesSettings)
{
    const auto config = makeConfig(PatternModel::idealLinear,
                                   Mechanism::sendSide, 8);
    EXPECT_EQ(config.label(), "ideal/send-side/8");
    EXPECT_STREQ(patternModelName(PatternModel::real), "real");
    EXPECT_STREQ(mechanismName(Mechanism::both), "both");
}

TEST(TransformTest, NoMetadataLeavesTraceIdentical)
{
    const auto bundle = testing::traceOf(
        2, testing::packedExchange(64 * 1024, 100'000));
    const trace::OverlapSet empty;
    const auto result = buildOverlappedTrace(
        bundle.traces, empty, TransformConfig{});
    EXPECT_EQ(result.chunkedMessages, 0u);
    ASSERT_EQ(result.traces.ranks(), bundle.traces.ranks());
    for (Rank r = 0; r < bundle.traces.ranks(); ++r) {
        const auto &a = bundle.traces.rankTrace(r).records();
        const auto &b = result.traces.rankTrace(r).records();
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(trace::recordToString(a[i]),
                      trace::recordToString(b[i]));
        }
    }
}

TEST(TransformTest, ChunkBytesSumToOriginal)
{
    const Bytes bytes = 100'000; // not divisible by 16
    const auto bundle = testing::traceOf(
        2, testing::producerConsumer(bytes, 500'000));
    const auto result = buildOverlappedTrace(
        bundle.traces, bundle.overlap,
        makeConfig(PatternModel::real, Mechanism::both, 16));

    Bytes chunked = 0;
    std::size_t isends = 0;
    for (const auto &rec :
         result.traces.rankTrace(0).records()) {
        if (const auto *is_ =
                std::get_if<trace::ISendRec>(&rec)) {
            chunked += is_->bytes;
            ++isends;
        }
    }
    EXPECT_EQ(chunked, bytes);
    EXPECT_EQ(isends, result.totalChunks);
}

TEST(TransformTest, InstructionTotalsPreserved)
{
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(64 * 1024, 400'000, 2));
    const auto result = buildOverlappedTrace(
        bundle.traces, bundle.overlap,
        makeConfig(PatternModel::idealLinear, Mechanism::both,
                   8));
    for (Rank r = 0; r < 4; ++r) {
        EXPECT_EQ(
            result.traces.rankTrace(r).totalInstructions(),
            bundle.traces.rankTrace(r).totalInstructions())
            << "rank " << r;
    }
}

TEST(TransformTest, TransformedTraceValidates)
{
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(64 * 1024, 400'000, 2));
    const auto result = buildOverlappedTrace(
        bundle.traces, bundle.overlap,
        makeConfig(PatternModel::real, Mechanism::both, 16));
    const auto report = trace::validateTraceSet(result.traces);
    EXPECT_TRUE(report.valid()) << report.toString();
}

TEST(TransformTest, RecvBecomesIrecvPostsPlusWaits)
{
    const auto bundle = testing::traceOf(
        2, testing::producerConsumer(64 * 1024, 500'000, 8));
    const auto result = buildOverlappedTrace(
        bundle.traces, bundle.overlap,
        makeConfig(PatternModel::real, Mechanism::both, 8));

    std::size_t irecvs = 0;
    std::size_t waits = 0;
    bool saw_blocking_recv = false;
    for (const auto &rec :
         result.traces.rankTrace(1).records()) {
        if (std::holds_alternative<trace::IRecvRec>(rec))
            ++irecvs;
        else if (std::holds_alternative<trace::WaitRec>(rec))
            ++waits;
        else if (std::holds_alternative<trace::RecvRec>(rec))
            saw_blocking_recv = true;
    }
    EXPECT_EQ(irecvs, 8u);
    EXPECT_EQ(waits, 8u);
    EXPECT_FALSE(saw_blocking_recv);
}

TEST(TransformTest, IdealWaitsSpreadAcrossConsumingBurst)
{
    const auto bundle = testing::traceOf(
        2, testing::packedExchange(64 * 1024, 1'000'000));
    const auto result = buildOverlappedTrace(
        bundle.traces, bundle.overlap,
        makeConfig(PatternModel::idealLinear, Mechanism::both,
                   8));

    // In the ideal trace the receiver's waits are separated by
    // computation bursts; in the real (pack) trace they cluster at
    // the receive point.
    bool burst_between_waits = false;
    bool prev_was_wait = false;
    for (const auto &rec :
         result.traces.rankTrace(1).records()) {
        if (std::holds_alternative<trace::WaitRec>(rec)) {
            prev_was_wait = true;
        } else if (std::holds_alternative<trace::CpuBurst>(rec)) {
            if (prev_was_wait)
                burst_between_waits = true;
            prev_was_wait = false;
        } else {
            prev_was_wait = false;
        }
    }
    EXPECT_TRUE(burst_between_waits);
}

TEST(TransformTest, AppTagsCollidingWithChunkSpaceAreRejected)
{
    const auto program = [](vm::VmContext &ctx) {
        const auto buf = ctx.allocBuffer("b", 1024);
        if (ctx.rank() == 0) {
            ctx.touchStore(buf, 0, 1024);
            ctx.send(buf, 0, 1024, 1, (1 << 20) + 5);
        } else {
            ctx.recv(buf, 0, 1024, 0, (1 << 20) + 5);
        }
    };
    const auto bundle = tracer::traceApplication(2, program, {});
    EXPECT_THROW(buildOverlappedTrace(bundle.traces,
                                      bundle.overlap,
                                      TransformConfig{}),
                 PanicError);
}

TEST(TransformBehaviorTest, UniformPatternOverlapsAtBalance)
{
    // Producer/consumer with transfer time comparable to compute:
    // chunked overlap must pipeline production, transfer and
    // consumption, giving a clear speedup.
    const Bytes bytes = 256 * 1024;
    const Instr work = 1'000'000;
    const auto bundle = testing::traceOf(
        2, testing::producerConsumer(bytes, work, 16));
    const auto platform = testing::platformAt(256.0);

    const auto original = sim::simulate(bundle.traces, platform);
    const auto real = buildOverlappedTrace(
        bundle.traces, bundle.overlap,
        makeConfig(PatternModel::real, Mechanism::both, 16));
    const auto overlapped =
        sim::simulate(real.traces, platform);

    const double speedup =
        static_cast<double>(original.totalTime.ns()) /
        static_cast<double>(overlapped.totalTime.ns());
    EXPECT_GT(speedup, 1.3);
}

TEST(TransformBehaviorTest, PackedPatternGainsLittle)
{
    const Bytes bytes = 256 * 1024;
    const Instr work = 1'000'000;
    const auto bundle = testing::traceOf(
        2, testing::packedExchange(bytes, work));
    const auto platform = testing::platformAt(256.0);

    const auto original = sim::simulate(bundle.traces, platform);
    const auto real = buildOverlappedTrace(
        bundle.traces, bundle.overlap,
        makeConfig(PatternModel::real, Mechanism::both, 16));
    const auto overlapped =
        sim::simulate(real.traces, platform);

    const double speedup =
        static_cast<double>(original.totalTime.ns()) /
        static_cast<double>(overlapped.totalTime.ns());
    EXPECT_LT(speedup, 1.10);
    EXPECT_GT(speedup, 0.90);
}

TEST(TransformBehaviorTest, IdealRescuesPackedPattern)
{
    const Bytes bytes = 256 * 1024;
    const Instr work = 1'000'000;
    const auto bundle = testing::traceOf(
        2, testing::packedExchange(bytes, work));
    const auto platform = testing::platformAt(256.0);

    const auto original = sim::simulate(bundle.traces, platform);
    const auto ideal = buildOverlappedTrace(
        bundle.traces, bundle.overlap,
        makeConfig(PatternModel::idealLinear, Mechanism::both,
                   16));
    const auto overlapped =
        sim::simulate(ideal.traces, platform);

    const double speedup =
        static_cast<double>(original.totalTime.ns()) /
        static_cast<double>(overlapped.totalTime.ns());
    EXPECT_GT(speedup, 1.3);
}

TEST(TransformBehaviorTest, MechanismsComposeAtLeastAsWell)
{
    const auto bundle = testing::traceOf(
        2, testing::producerConsumer(256 * 1024, 1'000'000, 16));
    const auto platform = testing::platformAt(256.0);

    std::map<Mechanism, double> time;
    for (const auto mechanism :
         {Mechanism::sendSide, Mechanism::recvSide,
          Mechanism::both}) {
        const auto result = buildOverlappedTrace(
            bundle.traces, bundle.overlap,
            makeConfig(PatternModel::idealLinear, mechanism,
                       16));
        time[mechanism] = static_cast<double>(
            sim::simulate(result.traces, platform)
                .totalTime.ns());
    }
    // The full mechanism is no slower than either half (small
    // tolerance for protocol rounding).
    EXPECT_LE(time[Mechanism::both],
              time[Mechanism::sendSide] * 1.02);
    EXPECT_LE(time[Mechanism::both],
              time[Mechanism::recvSide] * 1.02);
}

// ----------------------------------------------------------------
// Property sweep: every pattern x mechanism x chunk count must
// yield a structurally valid trace that preserves work and bytes
// and replays without deadlock in reasonable time.
// ----------------------------------------------------------------

using SweepParam =
    std::tuple<PatternModel, Mechanism, std::size_t>;

std::string
sweepParamName(const ::testing::TestParamInfo<SweepParam> &info)
{
    std::string name =
        patternModelName(std::get<0>(info.param));
    name += "_";
    name += mechanismName(std::get<1>(info.param));
    name += "_" + std::to_string(std::get<2>(info.param));
    for (auto &c : name) {
        if (c == '-')
            c = '_';
    }
    return name;
}

class TransformSweepTest
    : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(TransformSweepTest, PreservesInvariants)
{
    const auto [pattern, mechanism, chunks] = GetParam();
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(96 * 1024, 600'000, 2));

    const auto result = buildOverlappedTrace(
        bundle.traces, bundle.overlap,
        makeConfig(pattern, mechanism, chunks));

    // Structural validity.
    const auto report = trace::validateTraceSet(result.traces);
    ASSERT_TRUE(report.valid()) << report.toString();

    // Work and byte conservation.
    const auto before = trace::computeTraceStats(bundle.traces);
    const auto after = trace::computeTraceStats(result.traces);
    EXPECT_EQ(after.totalInstructions, before.totalInstructions);
    EXPECT_EQ(after.totalBytes, before.totalBytes);

    // Replays to completion, and not pathologically slower than
    // the original.
    const auto platform = testing::platformAt(256.0);
    const auto original = sim::simulate(bundle.traces, platform);
    const auto overlapped =
        sim::simulate(result.traces, platform);
    EXPECT_GT(overlapped.totalTime.ns(), 0);
    EXPECT_LE(static_cast<double>(overlapped.totalTime.ns()),
              static_cast<double>(original.totalTime.ns()) *
                  1.10);
}

INSTANTIATE_TEST_SUITE_P(
    PatternMechanismChunks, TransformSweepTest,
    ::testing::Combine(
        ::testing::Values(PatternModel::real,
                          PatternModel::idealLinear),
        ::testing::Values(Mechanism::sendSide,
                          Mechanism::recvSide, Mechanism::both),
        ::testing::Values(std::size_t{1}, std::size_t{4},
                          std::size_t{16}, std::size_t{64})),
    sweepParamName);

} // namespace
} // namespace ovlsim::core
