/**
 * @file
 * Unit tests for the platform model and the replay engine.
 */

#include <gtest/gtest.h>

#include "sim/engine.hh"
#include "sim/platform.hh"
#include "trace/trace.hh"
#include "util/logging.hh"

namespace ovlsim::sim {
namespace {

using trace::CollectiveRec;
using trace::CollOp;
using trace::CpuBurst;
using trace::IRecvRec;
using trace::ISendRec;
using trace::RecvRec;
using trace::SendRec;
using trace::TraceSet;
using trace::WaitRec;

/** Serialization time in ns on the default 256 MB/s cluster. */
std::int64_t
serNs(Bytes bytes, double mbps = 256.0)
{
    return static_cast<std::int64_t>(
        static_cast<double>(bytes) * 1000.0 / mbps);
}

constexpr std::int64_t latNs = 8000; // 8 us

TEST(PlatformTest, BurstDurationUsesMipsAndRatio)
{
    PlatformConfig platform;
    // 1e6 instructions at 1000 MIPS is 1 ms.
    EXPECT_EQ(platform.burstDuration(1'000'000, 1000.0).ns(),
              1'000'000);
    platform.cpuRatio = 2.0;
    EXPECT_EQ(platform.burstDuration(1'000'000, 1000.0).ns(),
              500'000);
    platform.cpuRatio = 1.0;
    platform.mipsOverride = 500.0;
    EXPECT_EQ(platform.burstDuration(1'000'000, 1000.0).ns(),
              2'000'000);
}

TEST(PlatformTest, SerializationAndLatency)
{
    const auto platform = platforms::defaultCluster();
    EXPECT_EQ(platform.serializationDelay(256'000, false).ns(),
              1'000'000);
    EXPECT_EQ(platform.flightLatency(false).ns(), latNs);
    // Local transfers use the intra-node parameters.
    EXPECT_LT(platform.serializationDelay(256'000, true).ns(),
              platform.serializationDelay(256'000, false).ns());
}

TEST(PlatformTest, ValidateRejectsNonsense)
{
    PlatformConfig platform;
    platform.bandwidthMBps = -1.0;
    EXPECT_THROW(platform.validate(), FatalError);
    platform = PlatformConfig{};
    platform.cpusPerNode = 0;
    EXPECT_THROW(platform.validate(), FatalError);
    platform = PlatformConfig{};
    platform.latencyUs = -2.0;
    EXPECT_THROW(platform.validate(), FatalError);
}

TEST(PlatformTest, CollectiveCostFormulas)
{
    auto platform = platforms::defaultCluster();
    // Barrier over 8 ranks: ceil(log2 8) = 3 latencies.
    EXPECT_EQ(collectiveCost(platform, CollOp::barrier, 8, 0, 0)
                  .ns(),
              3 * latNs);
    // Broadcast adds the serialization term per stage.
    EXPECT_EQ(collectiveCost(platform, CollOp::broadcast, 8,
                             256'000, 256'000)
                  .ns(),
              3 * (latNs + 1'000'000));
    // All-reduce is twice the broadcast cost.
    EXPECT_EQ(collectiveCost(platform, CollOp::allReduce, 8,
                             256'000, 256'000)
                  .ns(),
              6 * (latNs + 1'000'000));
    // All-to-all pays P-1 exchanges.
    EXPECT_EQ(collectiveCost(platform, CollOp::allToAll, 4,
                             256'000, 256'000)
                  .ns(),
              3 * (latNs + 1'000'000));
    // Factors scale the terms.
    platform.collectives.latencyFactor = 0.0;
    EXPECT_EQ(collectiveCost(platform, CollOp::barrier, 8, 0, 0)
                  .ns(),
              0);
}

TEST(EngineTest, ComputeOnlyRank)
{
    TraceSet traces("t", 1);
    traces.rankTrace(0).append(CpuBurst{2'000'000});
    const auto result =
        simulate(traces, platforms::defaultCluster());
    EXPECT_EQ(result.totalTime.ns(), 2'000'000);
    EXPECT_EQ(result.perRank[0].computeTime.ns(), 2'000'000);
    EXPECT_EQ(result.perRank[0].blockedTime().ns(), 0);
}

TEST(EngineTest, EagerPingArrivesAfterLatencyPlusSerialization)
{
    TraceSet traces("t", 2);
    traces.rankTrace(0).append(SendRec{1, 1, 256'000, 1});
    traces.rankTrace(1).append(RecvRec{0, 1, 256'000, 1});
    const auto result =
        simulate(traces, platforms::defaultCluster());
    // Receiver completes at latency + size/bandwidth.
    EXPECT_EQ(result.perRank[1].endTime.ns(),
              latNs + serNs(256'000));
    // Eager sender returns immediately.
    EXPECT_EQ(result.perRank[0].endTime.ns(), 0);
    EXPECT_EQ(result.perRank[1].recvBlockedTime.ns(),
              latNs + serNs(256'000));
}

TEST(EngineTest, RendezvousSenderBlocksUntilReceivePosted)
{
    TraceSet traces("t", 2);
    traces.rankTrace(0).append(SendRec{1, 1, 256'000, 1});
    traces.rankTrace(1).append(CpuBurst{1'000'000});
    traces.rankTrace(1).append(RecvRec{0, 1, 256'000, 1});

    auto platform = platforms::defaultCluster();
    platform.eagerThreshold = 0;
    const auto result = simulate(traces, platform);
    // Transfer starts when the receive posts at 1 ms; the sender
    // unblocks once the payload left (start + serialization).
    EXPECT_EQ(result.perRank[0].endTime.ns(),
              1'000'000 + serNs(256'000));
    EXPECT_EQ(result.perRank[1].endTime.ns(),
              1'000'000 + serNs(256'000) + latNs);
    EXPECT_EQ(result.perRank[0].sendBlockedTime.ns(),
              1'000'000 + serNs(256'000));
}

TEST(EngineTest, NonBlockingSendOverlapsCompute)
{
    TraceSet traces("t", 2);
    auto &r0 = traces.rankTrace(0);
    r0.append(ISendRec{1, 1, 256'000, 1, 10});
    r0.append(CpuBurst{5'000'000});
    r0.append(WaitRec{10});
    traces.rankTrace(1).append(RecvRec{0, 1, 256'000, 1});

    const auto result =
        simulate(traces, platforms::defaultCluster());
    // Eager isend: the wait is free, compute dominates.
    EXPECT_EQ(result.perRank[0].endTime.ns(), 5'000'000);
    EXPECT_EQ(result.perRank[0].waitBlockedTime.ns(), 0);
}

TEST(EngineTest, IrecvWaitCompletesAtArrival)
{
    TraceSet traces("t", 2);
    auto &r0 = traces.rankTrace(0);
    r0.append(IRecvRec{1, 1, 256'000, 1, 20});
    r0.append(CpuBurst{100'000});
    r0.append(WaitRec{20});
    traces.rankTrace(1).append(SendRec{0, 1, 256'000, 1});

    const auto result =
        simulate(traces, platforms::defaultCluster());
    const auto arrival = latNs + serNs(256'000);
    EXPECT_EQ(result.perRank[0].endTime.ns(), arrival);
    EXPECT_EQ(result.perRank[0].waitBlockedTime.ns(),
              arrival - 100'000);
    EXPECT_EQ(result.perRank[0].messagesReceived, 1u);
}

TEST(EngineTest, UnexpectedMessageMatchesLateRecv)
{
    TraceSet traces("t", 2);
    traces.rankTrace(0).append(SendRec{1, 1, 1'000, 1});
    auto &r1 = traces.rankTrace(1);
    r1.append(CpuBurst{50'000'000});
    r1.append(RecvRec{0, 1, 1'000, 1});

    const auto result =
        simulate(traces, platforms::defaultCluster());
    // The payload arrived long ago; the receive is instantaneous.
    EXPECT_EQ(result.perRank[1].endTime.ns(), 50'000'000);
    EXPECT_EQ(result.perRank[1].recvBlockedTime.ns(), 0);
}

TEST(EngineTest, FifoMatchingIsNonOvertaking)
{
    TraceSet traces("t", 2);
    auto &r0 = traces.rankTrace(0);
    r0.append(SendRec{1, 1, 1'000, 1});
    r0.append(SendRec{1, 1, 2'000, 2});
    auto &r1 = traces.rankTrace(1);
    r1.append(RecvRec{0, 1, 1'000, 1});
    r1.append(RecvRec{0, 1, 2'000, 2});
    // If matching were not FIFO the byte counts would mismatch and
    // the engine would fatal; completing proves ordering.
    EXPECT_NO_THROW(
        simulate(traces, platforms::defaultCluster()));

    auto &r1m = traces.rankTrace(1).records();
    r1m.clear();
    traces.rankTrace(1).append(RecvRec{0, 1, 2'000, 2});
    traces.rankTrace(1).append(RecvRec{0, 1, 1'000, 1});
    EXPECT_THROW(simulate(traces, platforms::defaultCluster()),
                 FatalError);
}

TEST(EngineTest, BarrierReleasesAllAtLatestArrivalPlusCost)
{
    TraceSet traces("t", 2);
    auto &r0 = traces.rankTrace(0);
    r0.append(CpuBurst{3'000'000});
    r0.append(CollectiveRec{CollOp::barrier, 0, 0, 0});
    traces.rankTrace(1).append(
        CollectiveRec{CollOp::barrier, 0, 0, 0});

    const auto result =
        simulate(traces, platforms::defaultCluster());
    const auto release = 3'000'000 + latNs; // log2(2) = 1 stage
    EXPECT_EQ(result.perRank[0].endTime.ns(), release);
    EXPECT_EQ(result.perRank[1].endTime.ns(), release);
    EXPECT_EQ(result.perRank[1].collectiveTime.ns(), release);
}

TEST(EngineTest, MismatchedCollectivesFail)
{
    TraceSet traces("t", 2);
    traces.rankTrace(0).append(
        CollectiveRec{CollOp::barrier, 0, 0, 0});
    traces.rankTrace(1).append(
        CollectiveRec{CollOp::allReduce, 8, 8, 0});
    EXPECT_THROW(simulate(traces, platforms::defaultCluster()),
                 FatalError);
}

TEST(EngineTest, BusContentionSerializesTransfers)
{
    TraceSet traces("t", 4);
    traces.rankTrace(0).append(SendRec{1, 1, 256'000, 1});
    traces.rankTrace(1).append(RecvRec{0, 1, 256'000, 1});
    traces.rankTrace(2).append(SendRec{3, 1, 256'000, 2});
    traces.rankTrace(3).append(RecvRec{2, 1, 256'000, 2});

    auto contended = platforms::contendedCluster(1);
    const auto serial = simulate(traces, contended);
    contended.buses = 2;
    const auto parallel = simulate(traces, contended);

    EXPECT_EQ(parallel.totalTime.ns(), latNs + serNs(256'000));
    EXPECT_EQ(serial.totalTime.ns(),
              latNs + 2 * serNs(256'000));
}

TEST(EngineTest, OutputLinkSerializesInjections)
{
    TraceSet traces("t", 3);
    auto &r0 = traces.rankTrace(0);
    r0.append(ISendRec{1, 1, 256'000, 1, 1});
    r0.append(ISendRec{2, 1, 256'000, 2, 2});
    r0.append(trace::WaitAllRec{});
    traces.rankTrace(1).append(RecvRec{0, 1, 256'000, 1});
    traces.rankTrace(2).append(RecvRec{0, 1, 256'000, 2});

    const auto result =
        simulate(traces, platforms::defaultCluster());
    const auto first = latNs + serNs(256'000);
    const auto second = latNs + 2 * serNs(256'000);
    EXPECT_EQ(result.perRank[1].endTime.ns(), first);
    EXPECT_EQ(result.perRank[2].endTime.ns(), second);
}

TEST(EngineTest, InputLinkSerializesReceptions)
{
    TraceSet traces("t", 3);
    traces.rankTrace(0).append(SendRec{2, 1, 256'000, 1});
    traces.rankTrace(1).append(SendRec{2, 2, 256'000, 2});
    auto &r2 = traces.rankTrace(2);
    r2.append(RecvRec{0, 1, 256'000, 1});
    r2.append(RecvRec{1, 2, 256'000, 2});

    const auto result =
        simulate(traces, platforms::defaultCluster());
    EXPECT_EQ(result.perRank[2].endTime.ns(),
              latNs + 2 * serNs(256'000));
}

TEST(EngineTest, IntraNodeTransfersBypassTheNetwork)
{
    TraceSet remote_traces("t", 2);
    remote_traces.rankTrace(0).append(SendRec{1, 1, 256'000, 1});
    remote_traces.rankTrace(1).append(RecvRec{0, 1, 256'000, 1});

    const auto remote = simulate(remote_traces,
                                 platforms::defaultCluster(1));
    const auto local = simulate(remote_traces,
                                platforms::defaultCluster(2));
    EXPECT_LT(local.totalTime.ns(), remote.totalTime.ns());
}

TEST(EngineTest, DeadlockIsDiagnosed)
{
    TraceSet traces("t", 2);
    traces.rankTrace(0).append(RecvRec{1, 1, 100, 1});
    traces.rankTrace(1).append(RecvRec{0, 1, 100, 2});
    try {
        simulate(traces, platforms::defaultCluster());
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("deadlock"),
                  std::string::npos);
    }
}

TEST(EngineTest, WaitOnUnknownRequestPanics)
{
    TraceSet traces("t", 1);
    traces.rankTrace(0).append(WaitRec{99});
    EXPECT_THROW(simulate(traces, platforms::defaultCluster()),
                 PanicError);
}

TEST(EngineTest, DeterministicAcrossRuns)
{
    TraceSet traces("t", 4);
    for (Rank r = 0; r < 4; ++r) {
        auto &rt = traces.rankTrace(r);
        rt.append(CpuBurst{static_cast<Instr>(100'000 * (r + 1))});
        rt.append(SendRec{(r + 1) % 4, 1, 10'000,
                          static_cast<trace::MessageId>(r + 1)});
        rt.append(RecvRec{(r + 3) % 4, 1, 10'000,
                          static_cast<trace::MessageId>(
                              (r + 3) % 4 + 1)});
        rt.append(CollectiveRec{CollOp::allReduce, 8, 8, 0});
    }
    const auto a = simulate(traces, platforms::defaultCluster());
    const auto b = simulate(traces, platforms::defaultCluster());
    EXPECT_EQ(a.totalTime.ns(), b.totalTime.ns());
    EXPECT_EQ(a.eventsProcessed, b.eventsProcessed);
    EXPECT_EQ(a.transfers, b.transfers);
}

TEST(EngineTest, TimelineCaptureIsConsistent)
{
    TraceSet traces("t", 2);
    auto &r0 = traces.rankTrace(0);
    r0.append(CpuBurst{1'000'000});
    r0.append(SendRec{1, 1, 256'000, 1});
    auto &r1 = traces.rankTrace(1);
    r1.append(RecvRec{0, 1, 256'000, 1});
    r1.append(CpuBurst{500'000});

    auto platform = platforms::defaultCluster();
    platform.captureTimeline = true;
    const auto result = simulate(traces, platform);

    EXPECT_EQ(result.timeline.ranks(), 2);
    EXPECT_EQ(result.timeline
                  .timeInState(0, RankState::compute)
                  .ns(),
              result.perRank[0].computeTime.ns());
    EXPECT_EQ(result.timeline
                  .timeInState(1, RankState::recvBlocked)
                  .ns(),
              result.perRank[1].recvBlockedTime.ns());
    ASSERT_EQ(result.timeline.comms().size(), 1u);
    const auto &comm = result.timeline.comms()[0];
    EXPECT_EQ(comm.src, 0);
    EXPECT_EQ(comm.dst, 1);
    EXPECT_EQ(comm.bytes, 256'000u);
    EXPECT_EQ(comm.sendPost.ns(), 1'000'000);
}

TEST(EngineTest, TimeIsMonotoneInBandwidth)
{
    TraceSet traces("t", 2);
    auto &r0 = traces.rankTrace(0);
    r0.append(CpuBurst{100'000});
    r0.append(SendRec{1, 1, 512'000, 1});
    auto &r1 = traces.rankTrace(1);
    r1.append(RecvRec{0, 1, 512'000, 1});
    r1.append(CpuBurst{100'000});

    std::int64_t previous = std::numeric_limits<
        std::int64_t>::max();
    for (const double mbps : {16.0, 64.0, 256.0, 1024.0}) {
        auto platform = platforms::defaultCluster();
        platform.bandwidthMBps = mbps;
        const auto result = simulate(traces, platform);
        EXPECT_LE(result.totalTime.ns(), previous);
        previous = result.totalTime.ns();
    }
}

TEST(EngineTest, RendezvousOverheadDelaysTransfer)
{
    TraceSet traces("t", 2);
    traces.rankTrace(0).append(SendRec{1, 1, 256'000, 1});
    traces.rankTrace(1).append(RecvRec{0, 1, 256'000, 1});

    auto platform = platforms::defaultCluster();
    platform.eagerThreshold = 0;
    platform.rendezvousOverheadUs = 100.0;
    const auto result = simulate(traces, platform);
    EXPECT_EQ(result.perRank[1].endTime.ns(),
              100'000 + serNs(256'000) + latNs);
}

} // namespace
} // namespace ovlsim::sim
