/**
 * @file
 * Integration tests: the full Figure-1 pipeline — application ->
 * tracing tool -> original + overlapped traces -> replay ->
 * visualization — including file round trips.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "apps/app.hh"
#include "core/analysis.hh"
#include "core/study.hh"
#include "sim/engine.hh"
#include "tests/helpers.hh"
#include "trace/trace_io.hh"
#include "trace/validate.hh"
#include "viz/ascii_gantt.hh"
#include "viz/paraver.hh"

namespace ovlsim {
namespace {

tracer::TraceBundle
traceApp(const std::string &name, int iterations = 2)
{
    const auto &app = apps::findApp(name);
    auto params = app.defaults();
    params.iterations = iterations;
    tracer::TracerConfig config;
    config.appName = name;
    return tracer::traceApplication(params.ranks,
                                    app.program(params), config);
}

TEST(PipelineTest, BtIdealOverlapSpeedsUpAtIntermediateBandwidth)
{
    core::OverlapStudy study(traceApp("nas-bt"));
    auto platform = sim::platforms::defaultCluster();
    platform.bandwidthMBps = core::findIntermediateBandwidth(
        study.originalTrace(), platform);

    core::TransformConfig ideal;
    ideal.pattern = core::PatternModel::idealLinear;
    core::TransformConfig real;
    real.pattern = core::PatternModel::real;

    const double ideal_speedup = study.speedup(ideal, platform);
    const double real_speedup = study.speedup(real, platform);
    // Paper R1/R2: ideal restructuring achieves a significant
    // speedup, the measured (real) pattern is negligible.
    EXPECT_GT(ideal_speedup, 1.2);
    EXPECT_LT(real_speedup, 1.15);
    EXPECT_GT(real_speedup, 0.95);
}

TEST(PipelineTest, SweepBenefitsGrowThenShrinkWithBandwidth)
{
    core::OverlapStudy study(traceApp("specfem"));
    const auto base = sim::platforms::defaultCluster();
    const auto sweep = core::bandwidthSweep(
        study.bundle(), base,
        core::logBandwidthGrid(1.0, 65536.0, 1),
        core::standardVariants());

    // At the extremes the ideal benefit vanishes (network- or
    // compute-dominated); in between it must peak visibly.
    double peak = 0.0;
    for (const auto &point : sweep.points)
        peak = std::max(peak, point.speedup(1));
    EXPECT_GT(peak, 1.3);
    EXPECT_LT(sweep.points.front().speedup(1), peak);
    EXPECT_LT(sweep.points.back().speedup(1), peak * 0.85);
}

TEST(PipelineTest, TraceFilesRoundTripThroughDisk)
{
    const auto bundle = traceApp("pop", 1);
    const std::string dir = ::testing::TempDir();
    const std::string trace_path = dir + "ovl_it_trace.txt";
    const std::string overlap_path = dir + "ovl_it_overlap.txt";

    trace::writeTraceFile(bundle.traces, trace_path);
    trace::writeOverlapFile(bundle.overlap, overlap_path);

    const auto traces = trace::readTraceFile(trace_path);
    const auto overlap = trace::readOverlapFile(overlap_path);

    EXPECT_TRUE(trace::validateTraceSet(traces).valid());
    EXPECT_EQ(overlap.size(), bundle.overlap.size());

    // Replaying the reloaded traces reproduces the same time.
    const auto platform = sim::platforms::defaultCluster();
    EXPECT_EQ(sim::simulate(traces, platform).totalTime.ns(),
              sim::simulate(bundle.traces, platform)
                  .totalTime.ns());

    // The overlapped trace built from reloaded metadata matches
    // the one built from in-memory metadata.
    core::TransformConfig config;
    const auto from_disk =
        core::buildOverlappedTrace(traces, overlap, config);
    const auto from_memory = core::buildOverlappedTrace(
        bundle.traces, bundle.overlap, config);
    EXPECT_EQ(
        sim::simulate(from_disk.traces, platform).totalTime.ns(),
        sim::simulate(from_memory.traces, platform)
            .totalTime.ns());
}

TEST(PipelineTest, WholePipelineIsDeterministic)
{
    const auto a = traceApp("alya", 1);
    const auto b = traceApp("alya", 1);
    std::ostringstream sa;
    std::ostringstream sb;
    trace::writeTraceText(a.traces, sa);
    trace::writeTraceText(b.traces, sb);
    EXPECT_EQ(sa.str(), sb.str());

    std::ostringstream oa;
    std::ostringstream ob;
    trace::writeOverlapText(a.overlap, oa);
    trace::writeOverlapText(b.overlap, ob);
    EXPECT_EQ(oa.str(), ob.str());
}

TEST(PipelineTest, TimelinesVisualizeBothExecutions)
{
    core::OverlapStudy study(traceApp("nas-bt", 1));
    auto platform = sim::platforms::defaultCluster();
    platform.bandwidthMBps = 64.0;
    platform.captureTimeline = true;

    const auto original = study.simulateOriginal(platform);
    core::TransformConfig ideal;
    ideal.pattern = core::PatternModel::idealLinear;
    const auto overlapped =
        study.simulateOverlapped(ideal, platform);

    viz::GanttOptions options;
    options.width = 72;
    const auto gantt_orig =
        viz::renderGantt(original.timeline, options);
    const auto gantt_over =
        viz::renderGantt(overlapped.timeline, options);
    EXPECT_NE(gantt_orig, gantt_over);
    EXPECT_NE(gantt_orig.find('#'), std::string::npos);

    const std::string base =
        ::testing::TempDir() + "ovl_it_paraver";
    viz::writeParaverFiles(original.timeline, base);
    std::ifstream prv(base + ".prv");
    EXPECT_TRUE(prv.good());
}

TEST(PipelineTest, EveryAppSupportsTheFullStudy)
{
    for (const auto *app : apps::appRegistry()) {
        auto params = app->defaults();
        params.iterations = 1;
        tracer::TracerConfig config;
        config.appName = app->name();
        core::OverlapStudy study(tracer::traceApplication(
            params.ranks, app->program(params), config));

        const auto platform = testing::platformAt(128.0);
        const auto original = study.simulateOriginal(platform);
        core::TransformConfig ideal;
        ideal.pattern = core::PatternModel::idealLinear;
        const auto overlapped =
            study.simulateOverlapped(ideal, platform);

        EXPECT_GT(original.totalTime.ns(), 0) << app->name();
        EXPECT_GT(overlapped.totalTime.ns(), 0) << app->name();
        EXPECT_LE(overlapped.totalTime.ns(),
                  original.totalTime.ns() * 11 / 10)
            << app->name();
    }
}

} // namespace
} // namespace ovlsim
