/**
 * @file
 * Determinism and correctness of the parallel study runtime.
 *
 * The study layer fans independent replays over a thread pool with
 * one reusable ReplaySession per lane. Nothing about a campaign's
 * results may depend on the thread count or on scheduling: every
 * parallel path must produce output bit-identical to the sequential
 * path, and repeated runs must be bit-identical to each other. These
 * tests pin that contract for simulateBatch, bandwidthSweep and
 * isoPerformance across thread counts {1, 2, 8}, and cover the
 * ThreadPool primitive itself (full task coverage, worker-local
 * lanes, exception propagation).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include "core/analysis.hh"
#include "core/study.hh"
#include "helpers.hh"
#include "sim/engine.hh"
#include "util/thread_pool.hh"

namespace ovlsim {
namespace {

using sim::SimResult;

const int threadCounts[] = {1, 2, 8};

using testing::expectIdentical;

/** Bit-exact equality of two sweep results. */
void
expectIdenticalSweep(const core::SweepResult &a,
                     const core::SweepResult &b)
{
    ASSERT_EQ(a.points.size(), b.points.size());
    ASSERT_EQ(a.variants.size(), b.variants.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        const auto &pa = a.points[i];
        const auto &pb = b.points[i];
        EXPECT_EQ(pa.bandwidthMBps, pb.bandwidthMBps)
            << "point " << i;
        EXPECT_EQ(pa.originalTime.ns(), pb.originalTime.ns())
            << "point " << i;
        EXPECT_EQ(pa.originalCommFraction,
                  pb.originalCommFraction)
            << "point " << i;
        ASSERT_EQ(pa.variantTimes.size(), pb.variantTimes.size());
        for (std::size_t v = 0; v < pa.variantTimes.size(); ++v) {
            EXPECT_EQ(pa.variantTimes[v].ns(),
                      pb.variantTimes[v].ns())
                << "point " << i << " variant " << v;
        }
    }
}

TEST(ThreadPoolTest, CoversEveryTaskExactlyOnce)
{
    for (const int threads : threadCounts) {
        ThreadPool pool(threads);
        constexpr std::size_t count = 257;
        std::vector<std::atomic<int>> hits(count);
        pool.parallelFor(count, [&](std::size_t task, int lane) {
            ASSERT_GE(lane, 0);
            ASSERT_LT(lane, pool.size());
            hits[task].fetch_add(1);
        });
        for (std::size_t i = 0; i < count; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "task " << i;
    }
}

TEST(ThreadPoolTest, ReusableAcrossJobs)
{
    ThreadPool pool(4);
    std::vector<int> values(100, 0);
    for (int round = 1; round <= 3; ++round) {
        pool.parallelFor(values.size(),
                         [&](std::size_t i, int) {
                             values[i] += round;
                         });
    }
    for (const int v : values)
        EXPECT_EQ(v, 6);
}

TEST(ThreadPoolTest, PropagatesTheFirstException)
{
    for (const int threads : {1, 4}) {
        ThreadPool pool(threads);
        EXPECT_THROW(
            pool.parallelFor(64,
                             [&](std::size_t task, int) {
                                 if (task == 13)
                                     fatal("boom on 13");
                             }),
            FatalError);
        // The pool must stay usable after a failed job.
        std::atomic<int> ran{0};
        pool.parallelFor(8, [&](std::size_t, int) { ++ran; });
        EXPECT_EQ(ran.load(), 8);
    }
}

TEST(ThreadPoolTest, WorkerLaneExceptionRethrowsOnTheCaller)
{
    // An exception on a lane other than the caller's must cross the
    // thread boundary: caught where it ran, rethrown from
    // parallelFor after every lane drains — never a deadlock on the
    // done_ wait, never a worker left inside a dead job.
    ThreadPool pool(4);
    ASSERT_GE(pool.size(), 2);
    for (int round = 0; round < 3; ++round) {
        std::atomic<bool> workerThrew{false};
        const auto deadline = std::chrono::steady_clock::now() +
            std::chrono::seconds(30);
        try {
            pool.parallelFor(256, [&](std::size_t, int lane) {
                if (lane != 0) {
                    workerThrew.store(true);
                    fatal("boom from a worker lane");
                }
                // The caller parks on its own task until a worker
                // has provably thrown, so the rethrow demonstrably
                // crosses lanes while this lane is still claiming
                // jobs. The deadline keeps a regression from
                // hanging the suite instead of failing it.
                while (!workerThrew.load() &&
                       std::chrono::steady_clock::now() < deadline)
                    std::this_thread::yield();
            });
            FAIL() << "the worker exception was not rethrown";
        } catch (const FatalError &err) {
            EXPECT_NE(
                std::string(err.what()).find("worker lane"),
                std::string::npos)
                << err.what();
        }
        EXPECT_TRUE(workerThrew.load()) << "round " << round;
    }
}

TEST(ThreadPoolTest, FailedJobsLeakNoLanes)
{
    // Back-to-back failing jobs interleaved with clean ones: every
    // clean job must still cover all tasks exactly once, proving
    // the failed rounds left no lane wedged and no counter skewed.
    ThreadPool pool(4);
    for (int round = 0; round < 5; ++round) {
        EXPECT_THROW(
            pool.parallelFor(512,
                             [&](std::size_t task, int) {
                                 if (task % 97 == 13)
                                     fatal("boom on ", task);
                             }),
            FatalError);
        constexpr std::size_t count = 128;
        std::vector<std::atomic<int>> hits(count);
        pool.parallelFor(count, [&](std::size_t task, int) {
            hits[task].fetch_add(1);
        });
        for (std::size_t i = 0; i < count; ++i)
            EXPECT_EQ(hits[i].load(), 1)
                << "round " << round << " task " << i;
    }
}

TEST(ThreadPoolTest, ResolveThreadsDefaultsToHardware)
{
    EXPECT_EQ(ThreadPool::resolveThreads(3), 3);
    EXPECT_GE(ThreadPool::resolveThreads(0), 1);
    EXPECT_GE(ThreadPool::resolveThreads(-1), 1);
}

TEST(ReplaySessionTest, ReuseMatchesFreshEngineAcrossJobs)
{
    // One session replaying different traces and platforms
    // back-to-back must match a fresh engine per replay, in any
    // order (the arena-reset contract).
    const auto ring = testing::traceOf(
        4, testing::ringExchange(64 * 1024, 400'000, 5));
    const auto pc = testing::traceOf(
        2, testing::producerConsumer(256 * 1024, 1'000'000));

    sim::ReplaySession session;
    for (const double bandwidth : {16.0, 4096.0, 64.0}) {
        const auto platform = testing::platformAt(bandwidth);
        expectIdentical(session.run(ring.traces, platform),
                        simulate(ring.traces, platform));
        expectIdentical(session.run(pc.traces, platform),
                        simulate(pc.traces, platform));
    }
}

TEST(SimulateBatchTest, MatchesSequentialAcrossThreadCounts)
{
    const auto ring = testing::traceOf(
        4, testing::ringExchange(32 * 1024, 300'000, 4));
    const auto pc = testing::traceOf(
        2, testing::packedExchange(128 * 1024, 600'000));

    std::vector<sim::SimJob> jobs;
    for (const double bandwidth : {8.0, 64.0, 512.0, 4096.0}) {
        jobs.push_back(
            {&ring.traces, testing::platformAt(bandwidth)});
        jobs.push_back(
            {&pc.traces, testing::platformAt(bandwidth)});
    }

    const auto sequential = simulateBatch(jobs, 1);
    ASSERT_EQ(sequential.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        expectIdentical(sequential[i],
                        simulate(*jobs[i].traces,
                                 jobs[i].platform));
    }
    for (const int threads : threadCounts) {
        const auto parallel = simulateBatch(jobs, threads);
        ASSERT_EQ(parallel.size(), sequential.size());
        for (std::size_t i = 0; i < jobs.size(); ++i)
            expectIdentical(parallel[i], sequential[i]);
    }
}

TEST(ParallelSweepTest, BitIdenticalAcrossThreadCountsAndRuns)
{
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(64 * 1024, 500'000, 4));
    const auto base = sim::platforms::defaultCluster();
    const auto grid = core::logBandwidthGrid(1.0, 4096.0, 2);
    const auto variants = core::standardVariants(8);

    const auto sequential =
        core::bandwidthSweep(bundle, base, grid, variants, 1);
    ASSERT_EQ(sequential.points.size(), grid.size());
    for (const int threads : threadCounts) {
        // Repeated runs at the same thread count must also agree.
        expectIdenticalSweep(core::bandwidthSweep(bundle, base,
                                                  grid, variants,
                                                  threads),
                             sequential);
        expectIdenticalSweep(core::bandwidthSweep(bundle, base,
                                                  grid, variants,
                                                  threads),
                             sequential);
    }
}

TEST(TopologySweepTest, BitIdenticalAcrossThreadCountsAndRuns)
{
    // Topology campaigns replay the same programs over compiled
    // routes from many lanes; nothing about link-shared contention
    // may depend on thread count or scheduling (TSAN builds
    // race-check the per-lane topology caches).
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(48 * 1024, 300'000, 3));
    const auto base = sim::platforms::defaultCluster();
    const auto grid = core::logBandwidthGrid(4.0, 1024.0, 1);
    const auto variants = core::standardVariants(4);
    const auto topologies = core::standardTopologies();

    const auto sequential = core::topologySweep(
        bundle, base, grid, variants, topologies, 1);
    ASSERT_EQ(sequential.sweeps.size(), topologies.size());
    for (const auto &sweep : sequential.sweeps)
        ASSERT_EQ(sweep.points.size(), grid.size());
    for (const int threads : threadCounts) {
        for (int run = 0; run < 2; ++run) {
            const auto parallel = core::topologySweep(
                bundle, base, grid, variants, topologies,
                threads);
            ASSERT_EQ(parallel.sweeps.size(),
                      sequential.sweeps.size());
            for (std::size_t t = 0; t < topologies.size(); ++t) {
                expectIdenticalSweep(parallel.sweeps[t],
                                     sequential.sweeps[t]);
            }
        }
    }
}

TEST(CollectiveSweepTest, BitIdenticalAcrossThreadCountsAndRuns)
{
    // Algorithmic collectives replay compiled schedules shared
    // through a process-wide cache from many lanes at once; like
    // programs and compiled topologies, nothing about them may
    // depend on thread count or scheduling (TSAN builds race-check
    // the schedule cache and the per-lane executors).
    const auto bundle = testing::traceOf(
        4, [](vm::VmContext &ctx) {
            const Rank right = (ctx.rank() + 1) % ctx.ranks();
            const Rank left =
                (ctx.rank() + ctx.ranks() - 1) % ctx.ranks();
            const auto sbuf =
                ctx.allocBuffer("halo", 32 * 1024);
            const auto rbuf =
                ctx.allocBuffer("halo-in", 32 * 1024);
            for (int it = 0; it < 3; ++it) {
                ctx.compute(200'000);
                ctx.computeStore(sbuf, 0, 32 * 1024, 0.2, 4);
                ctx.send(sbuf, 0, 32 * 1024, right, 5);
                ctx.recv(rbuf, 0, 32 * 1024, left, 5);
                ctx.allReduce(16 * 1024);
                ctx.barrier();
            }
            ctx.broadcast(64 * 1024, 0);
        });
    const auto base = sim::platforms::defaultCluster();
    const auto grid = core::logBandwidthGrid(4.0, 1024.0, 1);
    const auto variants = core::standardVariants(4);
    const std::vector<core::TopologySpec> topologies{
        {"flat-bus", net::topologies::flatBus()},
        {"tapered", net::topologies::taperedFatTree(2, 0.5)},
        {"torus", net::topologies::torus2d()},
    };

    const auto sequential = core::collectiveSweep(
        bundle, base, grid, variants, topologies, 1);
    ASSERT_EQ(sequential.analytic.size(), topologies.size());
    ASSERT_EQ(sequential.algorithmic.size(), topologies.size());
    for (const int threads : threadCounts) {
        for (int run = 0; run < 2; ++run) {
            const auto parallel = core::collectiveSweep(
                bundle, base, grid, variants, topologies,
                threads);
            for (std::size_t t = 0; t < topologies.size(); ++t) {
                expectIdenticalSweep(parallel.analytic[t],
                                     sequential.analytic[t]);
                expectIdenticalSweep(parallel.algorithmic[t],
                                     sequential.algorithmic[t]);
            }
        }
    }
}

TEST(TopologySweepTest, TopologiesActuallyDiverge)
{
    // The campaign is only interesting if the fabrics disagree
    // somewhere: a congested tapered tree must cost more than the
    // flat bus at some grid point.
    const auto bundle = testing::traceOf(
        8, testing::ringExchange(128 * 1024, 150'000, 3));
    const auto base = sim::platforms::defaultCluster();
    const std::vector<double> grid{64.0};
    const auto variants = core::standardVariants(4);
    const std::vector<core::TopologySpec> topologies{
        {"flat-bus", net::topologies::flatBus()},
        {"tapered", net::topologies::taperedFatTree(2, 0.25)},
    };
    const auto result = core::topologySweep(
        bundle, base, grid, variants, topologies, 2);
    ASSERT_EQ(result.sweeps.size(), 2u);
    EXPECT_GT(result.sweeps[1].points[0].originalTime.ns(),
              result.sweeps[0].points[0].originalTime.ns());
}

TEST(ParallelIsoPerformanceTest, ConcurrentBisectionsMatch)
{
    const auto bundle = testing::traceOf(
        2, testing::producerConsumer(512 * 1024, 2'000'000));
    core::TransformConfig ideal;
    ideal.pattern = core::PatternModel::idealLinear;

    const auto base = sim::platforms::defaultCluster();
    const auto sequential = core::isoPerformance(
        bundle, base, ideal, 65536.0, 0.05, 1e-2, 1);
    for (const int threads : threadCounts) {
        const auto parallel = core::isoPerformance(
            bundle, base, ideal, 65536.0, 0.05, 1e-2, threads);
        EXPECT_EQ(parallel.originalTime.ns(),
                  sequential.originalTime.ns());
        EXPECT_EQ(parallel.originalRequiredBandwidth,
                  sequential.originalRequiredBandwidth);
        EXPECT_EQ(parallel.overlappedRequiredBandwidth,
                  sequential.overlappedRequiredBandwidth);
    }
}

TEST(ParallelProgramSharingTest, OneProgramServesAllLanes)
{
    // Campaigns compile each trace variant once and hand the same
    // immutable ReplayProgram to every sweep lane. Replaying one
    // shared program concurrently from many sessions must be
    // bit-identical to sequential and to the compile-on-entry path
    // (TSAN builds race-check the sharing).
    const auto bundle = testing::traceOf(
        4, testing::ringExchange(48 * 1024, 350'000, 5));
    const auto program = sim::compileShared(bundle.traces);

    std::vector<sim::SimJob> jobs;
    for (const double bandwidth :
         {4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0}) {
        jobs.emplace_back(program,
                          testing::platformAt(bandwidth));
    }

    const auto sequential = simulateBatch(jobs, 1);
    ASSERT_EQ(sequential.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        expectIdentical(sequential[i],
                        simulate(bundle.traces,
                                 jobs[i].platform));
    }
    for (const int threads : threadCounts) {
        const auto parallel = simulateBatch(jobs, threads);
        ASSERT_EQ(parallel.size(), sequential.size());
        for (std::size_t i = 0; i < jobs.size(); ++i)
            expectIdentical(parallel[i], sequential[i]);
    }
}

TEST(ParallelProgramSharingTest, StudyProgramsAreShared)
{
    // The study cache must hand out the *same* compiled program for
    // repeated requests of one variant, from any number of lanes.
    core::OverlapStudy study(testing::traceOf(
        2, testing::producerConsumer(128 * 1024, 500'000)));
    core::TransformConfig ideal;
    ideal.pattern = core::PatternModel::idealLinear;

    std::vector<std::shared_ptr<const sim::ReplayProgram>>
        programs(16);
    ThreadPool pool(8);
    pool.parallelFor(programs.size(), [&](std::size_t i, int) {
        programs[i] = i % 2 == 0 ? study.originalProgram()
                                 : study.overlappedProgram(ideal);
    });
    for (std::size_t i = 2; i < programs.size(); ++i)
        EXPECT_EQ(programs[i], programs[i % 2]) << "slot " << i;
    EXPECT_NE(programs[0], programs[1]);

    // And the served programs replay identically to their traces.
    const auto platform = testing::platformAt(128.0);
    expectIdentical(
        simulate(*programs[0], platform),
        simulate(study.bundle().traces, platform));
    expectIdentical(
        simulate(*programs[1], platform),
        simulate(study.overlappedTrace(ideal), platform));
}

TEST(ParallelStudyTest, VariantCacheIsThreadSafe)
{
    core::OverlapStudy study(testing::traceOf(
        2, testing::producerConsumer(128 * 1024, 500'000)));

    // Hammer the cache from many lanes with a mix of distinct and
    // identical variants; every caller must observe a stable,
    // complete trace (TSAN builds race-check this path).
    std::vector<core::TransformConfig> configs;
    for (const std::size_t chunks : {2u, 4u, 8u, 16u}) {
        core::TransformConfig config;
        config.pattern = core::PatternModel::idealLinear;
        config.chunks = chunks;
        configs.push_back(config);
    }
    std::vector<std::size_t> records(32, 0);
    ThreadPool pool(8);
    pool.parallelFor(records.size(), [&](std::size_t i, int) {
        const auto &traces =
            study.overlappedTrace(configs[i % configs.size()]);
        records[i] = traces.totalRecords();
    });
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i],
                  records[i % configs.size()])
            << "slot " << i;
        EXPECT_GT(records[i], 0u) << "slot " << i;
    }
}

} // namespace
} // namespace ovlsim
