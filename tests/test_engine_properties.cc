/**
 * @file
 * Property tests for the replay engine: invariants that must hold
 * for every workload shape on every platform configuration.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "sim/engine.hh"
#include "tests/helpers.hh"
#include "trace/trace_stats.hh"
#include "tracer/tracer.hh"

namespace ovlsim::sim {
namespace {

/** Workload shapes exercised by the sweep. */
vm::RankProgram
workloadByName(const std::string &name)
{
    if (name == "producer_consumer")
        return ovlsim::testing::producerConsumer(128 * 1024,
                                                 500'000, 8);
    if (name == "packed")
        return ovlsim::testing::packedExchange(128 * 1024,
                                               500'000);
    if (name == "ring")
        return ovlsim::testing::ringExchange(64 * 1024, 300'000,
                                             3);
    return [](vm::VmContext &ctx) {
        // all-to-all style: everyone exchanges with everyone via
        // collectives plus a barrier-paced loop.
        for (int it = 0; it < 3; ++it) {
            ctx.compute(100'000);
            ctx.allToAll(4096);
            ctx.compute(50'000);
            ctx.barrier();
        }
    };
}

int
ranksFor(const std::string &workload)
{
    return workload == "producer_consumer" ||
                   workload == "packed"
               ? 2
               : 4;
}

using PropertyParam =
    std::tuple<std::string, double, double, int>;

std::string
propertyParamName(
    const ::testing::TestParamInfo<PropertyParam> &info)
{
    const auto &[workload, mbps, latency, buses] = info.param;
    std::string name = workload + "_bw" +
        std::to_string(static_cast<int>(mbps)) + "_lat" +
        std::to_string(static_cast<int>(latency * 10)) +
        "_bus" + std::to_string(buses);
    return name;
}

class EnginePropertyTest
    : public ::testing::TestWithParam<PropertyParam>
{
  protected:
    void
    SetUp() override
    {
        const auto &[workload, mbps, latency, buses] = GetParam();
        bundle_ = ovlsim::testing::traceOf(
            ranksFor(workload), workloadByName(workload),
            workload);
        platform_ = platforms::defaultCluster();
        platform_.bandwidthMBps = mbps;
        platform_.latencyUs = latency;
        platform_.buses = buses;
    }

    tracer::TraceBundle bundle_;
    PlatformConfig platform_;
};

TEST_P(EnginePropertyTest, TimeAccountingIsExact)
{
    const auto result = simulate(bundle_.traces, platform_);
    for (const auto &rr : result.perRank) {
        // Every nanosecond of a rank's lifetime is either compute
        // or one of the blocked states.
        EXPECT_EQ(rr.endTime.ns(),
                  (rr.computeTime + rr.blockedTime()).ns())
            << "rank " << rr.rank;
    }
}

TEST_P(EnginePropertyTest, TotalTimeBoundsHold)
{
    const auto result = simulate(bundle_.traces, platform_);
    // The app can never finish before its longest compute-only
    // rank would.
    SimTime longest_compute = SimTime::zero();
    for (Rank r = 0; r < bundle_.traces.ranks(); ++r) {
        const auto compute = platform_.burstDuration(
            bundle_.traces.rankTrace(r).totalInstructions(),
            bundle_.traces.mips());
        if (compute > longest_compute)
            longest_compute = compute;
    }
    EXPECT_GE(result.totalTime.ns(), longest_compute.ns());
    // And totalTime is exactly the latest rank end.
    SimTime latest = SimTime::zero();
    for (const auto &rr : result.perRank)
        latest = std::max(latest, rr.endTime);
    EXPECT_EQ(result.totalTime.ns(), latest.ns());
}

TEST_P(EnginePropertyTest, MessageConservation)
{
    const auto result = simulate(bundle_.traces, platform_);
    const auto stats =
        trace::computeTraceStats(bundle_.traces);

    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    Bytes bytes = 0;
    for (const auto &rr : result.perRank) {
        sent += rr.messagesSent;
        received += rr.messagesReceived;
        bytes += rr.bytesSent;
    }
    EXPECT_EQ(sent, stats.totalMessages);
    EXPECT_EQ(received, stats.totalMessages);
    EXPECT_EQ(bytes, stats.totalBytes);
    EXPECT_EQ(result.transfers, stats.totalMessages);
}

TEST_P(EnginePropertyTest, DeterministicReplay)
{
    const auto a = simulate(bundle_.traces, platform_);
    const auto b = simulate(bundle_.traces, platform_);
    EXPECT_EQ(a.totalTime.ns(), b.totalTime.ns());
    EXPECT_EQ(a.eventsProcessed, b.eventsProcessed);
    for (std::size_t r = 0; r < a.perRank.size(); ++r) {
        EXPECT_EQ(a.perRank[r].endTime.ns(),
                  b.perRank[r].endTime.ns());
    }
}

TEST_P(EnginePropertyTest, TimelineMatchesAccounting)
{
    auto platform = platform_;
    platform.captureTimeline = true;
    const auto result = simulate(bundle_.traces, platform);
    for (const auto &rr : result.perRank) {
        EXPECT_EQ(result.timeline
                      .timeInState(rr.rank,
                                   RankState::compute)
                      .ns(),
                  rr.computeTime.ns());
        const auto blocked =
            result.timeline.timeInState(
                rr.rank, RankState::sendBlocked) +
            result.timeline.timeInState(
                rr.rank, RankState::recvBlocked) +
            result.timeline.timeInState(
                rr.rank, RankState::waitBlocked) +
            result.timeline.timeInState(
                rr.rank, RankState::collective);
        EXPECT_EQ(blocked.ns(), rr.blockedTime().ns());
    }
}

TEST_P(EnginePropertyTest, MoreBandwidthNeverHurts)
{
    const auto base = simulate(bundle_.traces, platform_);
    auto faster = platform_;
    faster.bandwidthMBps = platform_.bandwidthMBps * 4.0;
    const auto result = simulate(bundle_.traces, faster);
    EXPECT_LE(result.totalTime.ns(), base.totalTime.ns());
}

TEST_P(EnginePropertyTest, LessLatencyNeverHurts)
{
    const auto base = simulate(bundle_.traces, platform_);
    auto faster = platform_;
    faster.latencyUs = platform_.latencyUs / 4.0;
    const auto result = simulate(bundle_.traces, faster);
    EXPECT_LE(result.totalTime.ns(), base.totalTime.ns());
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsAcrossPlatforms, EnginePropertyTest,
    ::testing::Combine(
        ::testing::Values("producer_consumer", "packed", "ring",
                          "collectives"),
        ::testing::Values(8.0, 256.0, 8192.0),
        ::testing::Values(0.5, 8.0, 50.0),
        ::testing::Values(0, 1, 4)),
    propertyParamName);

} // namespace
} // namespace ovlsim::sim
