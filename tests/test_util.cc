/**
 * @file
 * Unit tests for the util substrate.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "util/logging.hh"
#include "util/mathutil.hh"
#include "util/options.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/strings.hh"
#include "util/table.hh"
#include "util/types.hh"

namespace ovlsim {
namespace {

TEST(SimTimeTest, ConstructionAndAccessors)
{
    EXPECT_EQ(SimTime::zero().ns(), 0);
    EXPECT_EQ(SimTime::fromNs(1234).ns(), 1234);
    EXPECT_EQ(SimTime::fromUs(2.5).ns(), 2500);
    EXPECT_EQ(SimTime::fromSeconds(1e-6).ns(), 1000);
    EXPECT_DOUBLE_EQ(SimTime::fromNs(1500).toUs(), 1.5);
    EXPECT_DOUBLE_EQ(SimTime::fromNs(2'000'000'000).toSeconds(),
                     2.0);
}

TEST(SimTimeTest, Arithmetic)
{
    const auto a = SimTime::fromNs(100);
    const auto b = SimTime::fromNs(40);
    EXPECT_EQ((a + b).ns(), 140);
    EXPECT_EQ((a - b).ns(), 60);
    EXPECT_EQ((b * 3).ns(), 120);
    auto c = a;
    c += b;
    EXPECT_EQ(c.ns(), 140);
    c -= b;
    EXPECT_EQ(c.ns(), 100);
}

TEST(SimTimeTest, Comparison)
{
    EXPECT_LT(SimTime::fromNs(1), SimTime::fromNs(2));
    EXPECT_EQ(SimTime::fromNs(5), SimTime::fromNs(5));
    EXPECT_GT(SimTime::max(), SimTime::fromSeconds(1e6));
}

TEST(LoggingTest, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("boom ", 42), PanicError);
}

TEST(LoggingTest, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad input ", "x"), FatalError);
}

TEST(LoggingTest, AssertPassesAndFails)
{
    EXPECT_NO_THROW(ovlAssert(true, "fine"));
    EXPECT_THROW(ovlAssert(false, "nope"), PanicError);
}

TEST(LoggingTest, LevelsRoundTrip)
{
    const auto old = logLevel();
    setLogLevel(LogLevel::debug);
    EXPECT_EQ(logLevel(), LogLevel::debug);
    setLogLevel(old);
}

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a() == b() ? 1 : 0;
    EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
    EXPECT_THROW(rng.nextBelow(0), PanicError);
}

TEST(RngTest, NextInRangeInclusive)
{
    Rng rng(9);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.nextInRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, DoublesInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(RngTest, ExponentialMeanRoughlyCorrect)
{
    Rng rng(13);
    OnlineStats stats;
    for (int i = 0; i < 20000; ++i)
        stats.add(rng.nextExponential(5.0));
    EXPECT_NEAR(stats.mean(), 5.0, 0.25);
}

TEST(RngTest, GaussianMomentsRoughlyCorrect)
{
    Rng rng(17);
    OnlineStats stats;
    for (int i = 0; i < 20000; ++i)
        stats.add(rng.nextGaussian(10.0, 2.0));
    EXPECT_NEAR(stats.mean(), 10.0, 0.1);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(RngTest, ShuffleIsPermutation)
{
    Rng rng(19);
    std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
    auto shuffled = values;
    rng.shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, values);
}

TEST(RngTest, SplitDecorrelates)
{
    Rng a(21);
    Rng b = a.split();
    EXPECT_NE(a(), b());
}

TEST(OnlineStatsTest, MatchesDirectComputation)
{
    const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
    OnlineStats stats;
    for (const double x : xs)
        stats.add(x);
    EXPECT_EQ(stats.count(), xs.size());
    EXPECT_DOUBLE_EQ(stats.sum(), 31.0);
    EXPECT_DOUBLE_EQ(stats.mean(), 6.2);
    EXPECT_DOUBLE_EQ(stats.min(), 1.0);
    EXPECT_DOUBLE_EQ(stats.max(), 16.0);
    double var = 0.0;
    for (const double x : xs)
        var += (x - 6.2) * (x - 6.2);
    var /= static_cast<double>(xs.size());
    EXPECT_NEAR(stats.variance(), var, 1e-12);
}

TEST(OnlineStatsTest, MergeEqualsSequential)
{
    OnlineStats all;
    OnlineStats left;
    OnlineStats right;
    Rng rng(23);
    for (int i = 0; i < 500; ++i) {
        const double x = rng.nextDouble(0.0, 100.0);
        all.add(x);
        (i % 2 == 0 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(OnlineStatsTest, EmptyGuards)
{
    OnlineStats stats;
    EXPECT_EQ(stats.mean(), 0.0);
    EXPECT_THROW(stats.min(), PanicError);
    EXPECT_THROW(stats.max(), PanicError);
}

TEST(HistogramTest, BinningAndOverflow)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-1.0);
    h.add(0.0);
    h.add(3.9);
    h.add(9.999);
    h.add(10.0);
    h.add(25.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
    EXPECT_EQ(h.total(), 6u);
    EXPECT_DOUBLE_EQ(h.binLow(1), 2.0);
    EXPECT_DOUBLE_EQ(h.binHigh(1), 4.0);
    EXPECT_FALSE(h.render().empty());
}

TEST(HistogramTest, RejectsBadRanges)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 4), PanicError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), PanicError);
}

TEST(PercentileTest, InterpolatesLinearly)
{
    const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
    EXPECT_THROW(percentile({}, 50.0), PanicError);
    EXPECT_THROW(percentile(xs, 101.0), PanicError);
}

TEST(GeometricMeanTest, Basics)
{
    EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_THROW(geometricMean({}), PanicError);
    EXPECT_THROW(geometricMean({1.0, -1.0}), PanicError);
}

TEST(StringsTest, SplitPreservesEmptyFields)
{
    const auto fields = split("a,,b,", ',');
    ASSERT_EQ(fields.size(), 4u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[1], "");
    EXPECT_EQ(fields[2], "b");
    EXPECT_EQ(fields[3], "");
}

TEST(StringsTest, TrimAndCase)
{
    EXPECT_EQ(trim("  hi \t\n"), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(toLower("MiXeD"), "mixed");
    EXPECT_TRUE(startsWith("ovlsim", "ovl"));
    EXPECT_FALSE(startsWith("ovl", "ovlsim"));
    EXPECT_TRUE(endsWith("trace.prv", ".prv"));
    EXPECT_FALSE(endsWith("prv", "trace.prv"));
}

TEST(StringsTest, Strformat)
{
    EXPECT_EQ(strformat("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(strformat("%05.1f", 2.25), "002.2");
}

TEST(StringsTest, HumanReadable)
{
    EXPECT_EQ(humanBytes(512), "512 B");
    EXPECT_EQ(humanBytes(2048), "2.00 KiB");
    EXPECT_EQ(humanBytes(3 * 1024 * 1024ull), "3.00 MiB");
    EXPECT_EQ(humanTime(SimTime::fromNs(500)), "500 ns");
    EXPECT_EQ(humanTime(SimTime::fromUs(1.5)), "1.50 us");
    EXPECT_EQ(humanTime(SimTime::fromUs(2500)), "2.50 ms");
    EXPECT_EQ(humanTime(SimTime::fromSeconds(3.25)), "3.250 s");
    EXPECT_EQ(humanRate(1.5e6), "1.5 MB/s");
}

TEST(StringsTest, ParseHelpers)
{
    EXPECT_EQ(parseInt(" -17 "), -17);
    EXPECT_DOUBLE_EQ(parseDouble("2.5e3"), 2500.0);
    EXPECT_TRUE(parseBool("Yes"));
    EXPECT_FALSE(parseBool("off"));
    EXPECT_THROW(parseInt("12x"), FatalError);
    EXPECT_THROW(parseDouble(""), FatalError);
    EXPECT_THROW(parseBool("maybe"), FatalError);
}

TEST(TableTest, AlignsColumns)
{
    TablePrinter table({"name", "value"});
    table.addRow({"x", "1"});
    table.addRow({"long-name", "234"});
    const std::string out = table.toString();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("long-name"), std::string::npos);
    // Header row and underline plus two data rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TableTest, RejectsMismatchedRows)
{
    TablePrinter table({"a", "b"});
    EXPECT_THROW(table.addRow({"only-one"}), PanicError);
}

TEST(CsvTest, QuotesSpecialCharacters)
{
    const std::string path = ::testing::TempDir() + "ovl_csv.csv";
    {
        CsvWriter csv(path, {"k", "v"});
        csv.addRow({"plain", "has,comma"});
        csv.addRow({"quote\"inside", "multi\nline"});
    }
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    EXPECT_NE(text.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(text.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(OptionsTest, DefaultsAndOverrides)
{
    Options options;
    options.declare("bandwidth", "256", "network bandwidth");
    options.declare("verbose", "false", "chatty output");
    options.declare("name", "app", "application");
    const char *argv[] = {"prog", "--bandwidth=512", "--verbose",
                          "positional", "--name", "bt"};
    options.parse(6, argv);
    EXPECT_EQ(options.getInt("bandwidth"), 512);
    EXPECT_TRUE(options.getBool("verbose"));
    EXPECT_EQ(options.getString("name"), "bt");
    ASSERT_EQ(options.positional().size(), 1u);
    EXPECT_EQ(options.positional()[0], "positional");
    EXPECT_TRUE(options.supplied("bandwidth"));
}

TEST(OptionsTest, UnknownOptionFails)
{
    Options options;
    options.declare("known", "1", "known option");
    const char *argv[] = {"prog", "--unknown=2"};
    EXPECT_THROW(options.parse(2, argv), FatalError);
}

TEST(OptionsTest, MissingValueFails)
{
    Options options;
    options.declare("count", "1", "a count");
    const char *argv[] = {"prog", "--count"};
    EXPECT_THROW(options.parse(2, argv), FatalError);
}

TEST(OptionsTest, UsageMentionsAllOptions)
{
    Options options;
    options.declare("alpha", "1", "first");
    options.declare("beta", "x", "second");
    const std::string usage = options.usage("prog");
    EXPECT_NE(usage.find("--alpha"), std::string::npos);
    EXPECT_NE(usage.find("--beta"), std::string::npos);
}

TEST(MathUtilTest, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 4), 0u);
    EXPECT_EQ(ceilDiv(1, 4), 1u);
    EXPECT_EQ(ceilDiv(4, 4), 1u);
    EXPECT_EQ(ceilDiv(5, 4), 2u);
    EXPECT_EQ(ceilDiv(5, 0), 0u);
}

TEST(MathUtilTest, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(16), 4u);
    EXPECT_EQ(log2Ceil(17), 5u);
}

TEST(MathUtilTest, PowerOfTwoAndRoundUp)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(48));
    EXPECT_EQ(roundUp(13, 8), 16u);
    EXPECT_EQ(roundUp(16, 8), 16u);
}

} // namespace
} // namespace ovlsim
