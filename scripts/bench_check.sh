#!/usr/bin/env bash
# Perf regression gate for the replay engine and the study runtime.
#
# Builds Release, runs `bench_micro --json` (the M1 replay-engine
# throughput measurement on its largest configuration plus the M2
# trace-lowering, M3 overlap-transformation, M4 sweep-throughput,
# M5 contended-topology, M6 algorithmic-collective, M7
# dynamic-scenario, M8 resilience and M9 generated-workload
# measurements) and fails if any figure regressed
# more than the threshold against the checked-in baseline
# (bench/BENCH_baseline.json):
#
#   M1  events_per_sec             compiled-program replay throughput
#   M2  compile_records_per_sec    trace-lowering (compile) throughput
#   M3  transform_records_per_sec  overlap-transformation throughput
#   M4  sweep_points_per_sec       campaign (parallel sweep) throughput
#   M5  topo_events_per_sec        topology-contended replay throughput
#   M6  coll_events_per_sec        algorithmic-collective replay throughput
#   M7  scen_events_per_sec        degraded-scenario replay throughput
#   M8  res_events_per_sec         checkpoint/restart replay throughput
#   M9  gen_events_per_sec         generated-workload (gen+lower+replay) throughput
#
# A baseline that lacks any gated key is stale: the gate fails fast
# with a readable diff of the expected vs present keys instead of
# silently skipping a metric — refresh with --update.
#
# The measurement runs OVLSIM_BENCH_RUNS times (default 3) and each
# gated figure is the per-key best across runs, on the check side
# and the --update side alike. Throughput noise on a shared host is
# one-sided (interference only slows a run down), so the best-of-N
# figure tracks the machine's real capability with far less
# variance than any single run — single samples on this container
# swing +/-15%, which no 10% gate survives.
#
# Usage:
#   scripts/bench_check.sh           # check against the baseline
#   scripts/bench_check.sh --update  # refresh the baseline instead
#
# Environment:
#   OVLSIM_BENCH_THRESHOLD  allowed fractional regression (default 0.10)
#   OVLSIM_BENCH_BUILD_DIR  build directory (default build-bench)
#   OVLSIM_BENCH_THREADS    M4 worker count (default 0 = all cores)
#   OVLSIM_BENCH_RUNS       measurement repetitions (default 3)
#
# The baseline is machine-dependent; refresh it with --update when the
# benchmark host changes, and say so in the commit message.
set -euo pipefail

cd "$(dirname "$0")/.."

THRESHOLD="${OVLSIM_BENCH_THRESHOLD:-0.10}"
BUILD_DIR="${OVLSIM_BENCH_BUILD_DIR:-build-bench}"
THREADS="${OVLSIM_BENCH_THREADS:-0}"
RUNS="${OVLSIM_BENCH_RUNS:-3}"
BASELINE="bench/BENCH_baseline.json"
GATED_KEYS=(events_per_sec compile_records_per_sec
            transform_records_per_sec sweep_points_per_sec
            topo_events_per_sec coll_events_per_sec
            scen_events_per_sec res_events_per_sec
            gen_events_per_sec)
UPDATE=0
if [[ "${1:-}" == "--update" ]]; then
    UPDATE=1
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
      -DOVLSIM_BUILD_TESTS=OFF -DOVLSIM_BUILD_EXAMPLES=OFF \
      >/dev/null
cmake --build "$BUILD_DIR" --target bench_micro -j "$(nproc)" \
      >/dev/null

RESULT_JSONS=()
for ((run = 0; run < RUNS; ++run)); do
    RESULT_JSONS+=("$(mktemp)")
done
trap 'rm -f "${RESULT_JSONS[@]}"' EXIT
for ((run = 0; run < RUNS; ++run)); do
    echo "bench_check: measurement run $((run + 1))/$RUNS"
    "$BUILD_DIR/bench_micro" --json="${RESULT_JSONS[$run]}" \
                             --threads="$THREADS"
done

# Last occurrence of a numeric key in a trajectory file (the most
# recent entry carrying that key).
extract_key() { # file key
    grep -o "\"$2\": *[0-9.eE+]*" "$1" |
        tail -n 1 | grep -o '[0-9.eE+]*$'
}

# Best (max) value of a gated key across all measurement runs.
best_key() { # key
    local key="$1" file best=""
    for file in "${RESULT_JSONS[@]}"; do
        local v
        v="$(extract_key "$file" "$key")"
        if [[ -z "$best" ]]; then
            best="$v"
        else
            best="$(awk -v a="$best" -v b="$v" \
                        'BEGIN { print (b > a) ? b : a }')"
        fi
    done
    echo "$best"
}

# Fail fast with a readable key diff when `file` is missing any
# gated metric, so a stale baseline (or broken bench output) never
# silently skips a gate.
require_keys() { # file what
    local missing=()
    local key
    for key in "${GATED_KEYS[@]}"; do
        if [[ -z "$(extract_key "$1" "$key")" ]]; then
            missing+=("$key")
        fi
    done
    if [[ "${#missing[@]}" -gt 0 ]]; then
        {
            echo "bench_check: FAIL - $2 is missing metric keys"
            echo "  expected: ${GATED_KEYS[*]}"
            echo "  missing:  ${missing[*]}"
            echo "  (refresh with scripts/bench_check.sh --update)"
        } >&2
        exit 1
    fi
}

for file in "${RESULT_JSONS[@]}"; do
    require_keys "$file" "bench output"
done

if [[ "$UPDATE" == 1 || ! -f "$BASELINE" ]]; then
    # The baseline file is the last run's output with every gated
    # key rewritten to its best-of-N figure, so check and update
    # compare like with like.
    cp "${RESULT_JSONS[-1]}" "$BASELINE"
    for key in "${GATED_KEYS[@]}"; do
        best="$(best_key "$key")"
        sed -E -i "s/(\"$key\": *)[0-9.eE+]+/\1$best/" "$BASELINE"
    done
    echo "bench_check: baseline updated, best of $RUNS runs" \
         "($(extract_key "$BASELINE" events_per_sec) events/sec," \
         "$(extract_key "$BASELINE" compile_records_per_sec) compile records/sec," \
         "$(extract_key "$BASELINE" transform_records_per_sec) transform records/sec," \
         "$(extract_key "$BASELINE" sweep_points_per_sec) sweep points/sec," \
         "$(extract_key "$BASELINE" topo_events_per_sec) topo events/sec," \
         "$(extract_key "$BASELINE" coll_events_per_sec) coll events/sec," \
         "$(extract_key "$BASELINE" scen_events_per_sec) scen events/sec," \
         "$(extract_key "$BASELINE" res_events_per_sec) res events/sec," \
         "$(extract_key "$BASELINE" gen_events_per_sec) gen events/sec)"
    exit 0
fi

require_keys "$BASELINE" "baseline $BASELINE"

# Per-key delta table, printed on PASS and FAIL alike so every run
# leaves a comparable record in the log. A key fails the gate when
# the current figure dropped more than THRESHOLD below the baseline.
KEY_LABELS=("M1 events/sec" "M2 compile records/sec"
            "M3 transform records/sec" "M4 sweep points/sec"
            "M5 topo events/sec" "M6 coll events/sec"
            "M7 scen events/sec" "M8 res events/sec"
            "M9 gen events/sec")

FAILED=0
printf 'bench_check: %-26s %14s %14s %8s  %s\n' \
       metric current baseline delta verdict
for i in "${!GATED_KEYS[@]}"; do
    key="${GATED_KEYS[$i]}"
    cur="$(best_key "$key")"
    base="$(extract_key "$BASELINE" "$key")"
    row="$(awk -v label="${KEY_LABELS[$i]}" -v cur="$cur" \
               -v base="$base" -v thr="$THRESHOLD" \
    'BEGIN {
        delta = (cur / base - 1.0) * 100;
        verdict = (cur < base * (1.0 - thr)) ? "FAIL" : "ok";
        printf "bench_check: %-26s %14.0f %14.0f %+7.1f%%  %s",
               label, cur, base, delta, verdict;
    }')"
    echo "$row"
    if [[ "$row" == *FAIL ]]; then
        FAILED=1
    fi
done

if [[ "$FAILED" == 1 ]]; then
    awk -v thr="$THRESHOLD" 'BEGIN {
        printf "bench_check: FAIL - a metric regressed more than %d%% vs bench/BENCH_baseline.json\n",
               thr * 100 }' >&2
    exit 1
fi
awk -v n="${#GATED_KEYS[@]}" -v thr="$THRESHOLD" -v runs="$RUNS" \
'BEGIN {
    printf "bench_check: PASS - all %d metrics (best of %d runs) within %d%% of the baseline\n",
           n, runs, thr * 100 }'
