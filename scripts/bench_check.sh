#!/usr/bin/env bash
# Perf regression gate for the replay engine and the study runtime.
#
# Builds Release, runs `bench_micro --json` (the M1 replay-engine
# throughput measurement on its largest configuration plus the M2
# trace-lowering, M3 overlap-transformation, M4 sweep-throughput,
# M5 contended-topology, M6 algorithmic-collective, M7
# dynamic-scenario, M8 resilience and M9 generated-workload
# measurements) and fails if any figure regressed
# more than the threshold against the checked-in baseline
# (bench/BENCH_baseline.json):
#
#   M1  events_per_sec             compiled-program replay throughput
#   M2  compile_records_per_sec    trace-lowering (compile) throughput
#   M3  transform_records_per_sec  overlap-transformation throughput
#   M4  sweep_points_per_sec       campaign (parallel sweep) throughput
#   M5  topo_events_per_sec        topology-contended replay throughput
#   M6  coll_events_per_sec        algorithmic-collective replay throughput
#   M7  scen_events_per_sec        degraded-scenario replay throughput
#   M8  res_events_per_sec         checkpoint/restart replay throughput
#   M9  gen_events_per_sec         generated-workload (gen+lower+replay) throughput
#
# A baseline that lacks any gated key is stale: the gate fails fast
# with a readable diff of the expected vs present keys instead of
# silently skipping a metric — refresh with --update.
#
# Usage:
#   scripts/bench_check.sh           # check against the baseline
#   scripts/bench_check.sh --update  # refresh the baseline instead
#
# Environment:
#   OVLSIM_BENCH_THRESHOLD  allowed fractional regression (default 0.10)
#   OVLSIM_BENCH_BUILD_DIR  build directory (default build-bench)
#   OVLSIM_BENCH_THREADS    M4 worker count (default 0 = all cores)
#
# The baseline is machine-dependent; refresh it with --update when the
# benchmark host changes, and say so in the commit message.
set -euo pipefail

cd "$(dirname "$0")/.."

THRESHOLD="${OVLSIM_BENCH_THRESHOLD:-0.10}"
BUILD_DIR="${OVLSIM_BENCH_BUILD_DIR:-build-bench}"
THREADS="${OVLSIM_BENCH_THREADS:-0}"
BASELINE="bench/BENCH_baseline.json"
GATED_KEYS=(events_per_sec compile_records_per_sec
            transform_records_per_sec sweep_points_per_sec
            topo_events_per_sec coll_events_per_sec
            scen_events_per_sec res_events_per_sec
            gen_events_per_sec)
UPDATE=0
if [[ "${1:-}" == "--update" ]]; then
    UPDATE=1
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
      -DOVLSIM_BUILD_TESTS=OFF -DOVLSIM_BUILD_EXAMPLES=OFF \
      >/dev/null
cmake --build "$BUILD_DIR" --target bench_micro -j "$(nproc)" \
      >/dev/null

RESULT_JSON="$(mktemp)"
trap 'rm -f "$RESULT_JSON"' EXIT
"$BUILD_DIR/bench_micro" --json="$RESULT_JSON" --threads="$THREADS"

# Last occurrence of a numeric key in a trajectory file (the most
# recent entry carrying that key).
extract_key() { # file key
    grep -o "\"$2\": *[0-9.eE+]*" "$1" |
        tail -n 1 | grep -o '[0-9.eE+]*$'
}

# Fail fast with a readable key diff when `file` is missing any
# gated metric, so a stale baseline (or broken bench output) never
# silently skips a gate.
require_keys() { # file what
    local missing=()
    local key
    for key in "${GATED_KEYS[@]}"; do
        if [[ -z "$(extract_key "$1" "$key")" ]]; then
            missing+=("$key")
        fi
    done
    if [[ "${#missing[@]}" -gt 0 ]]; then
        {
            echo "bench_check: FAIL - $2 is missing metric keys"
            echo "  expected: ${GATED_KEYS[*]}"
            echo "  missing:  ${missing[*]}"
            echo "  (refresh with scripts/bench_check.sh --update)"
        } >&2
        exit 1
    fi
}

require_keys "$RESULT_JSON" "bench output"

if [[ "$UPDATE" == 1 || ! -f "$BASELINE" ]]; then
    cp "$RESULT_JSON" "$BASELINE"
    echo "bench_check: baseline updated" \
         "($(extract_key "$BASELINE" events_per_sec) events/sec," \
         "$(extract_key "$BASELINE" compile_records_per_sec) compile records/sec," \
         "$(extract_key "$BASELINE" transform_records_per_sec) transform records/sec," \
         "$(extract_key "$BASELINE" sweep_points_per_sec) sweep points/sec," \
         "$(extract_key "$BASELINE" topo_events_per_sec) topo events/sec," \
         "$(extract_key "$BASELINE" coll_events_per_sec) coll events/sec," \
         "$(extract_key "$BASELINE" scen_events_per_sec) scen events/sec," \
         "$(extract_key "$BASELINE" res_events_per_sec) res events/sec," \
         "$(extract_key "$BASELINE" gen_events_per_sec) gen events/sec)"
    exit 0
fi

require_keys "$BASELINE" "baseline $BASELINE"

# gate NAME CURRENT BASE — fails the script when CURRENT dropped
# more than THRESHOLD below BASE.
gate() {
    awk -v name="$1" -v cur="$2" -v base="$3" -v thr="$THRESHOLD" \
    'BEGIN {
        floor = base * (1.0 - thr);
        printf "bench_check: %s current %.0f, baseline %.0f, floor %.0f (-%d%%)\n",
               name, cur, base, floor, thr * 100;
        if (cur < floor) {
            printf "bench_check: FAIL - %s regressed %.1f%%\n",
                   name, (1.0 - cur / base) * 100;
            exit 1;
        }
        printf "bench_check: %s OK (%+.1f%% vs baseline)\n",
               name, (cur / base - 1.0) * 100;
    }'
}

gate "M1 events/sec" \
     "$(extract_key "$RESULT_JSON" events_per_sec)" \
     "$(extract_key "$BASELINE" events_per_sec)"
gate "M2 compile records/sec" \
     "$(extract_key "$RESULT_JSON" compile_records_per_sec)" \
     "$(extract_key "$BASELINE" compile_records_per_sec)"
gate "M3 transform records/sec" \
     "$(extract_key "$RESULT_JSON" transform_records_per_sec)" \
     "$(extract_key "$BASELINE" transform_records_per_sec)"
gate "M4 sweep points/sec" \
     "$(extract_key "$RESULT_JSON" sweep_points_per_sec)" \
     "$(extract_key "$BASELINE" sweep_points_per_sec)"
gate "M5 topo events/sec" \
     "$(extract_key "$RESULT_JSON" topo_events_per_sec)" \
     "$(extract_key "$BASELINE" topo_events_per_sec)"
gate "M6 coll events/sec" \
     "$(extract_key "$RESULT_JSON" coll_events_per_sec)" \
     "$(extract_key "$BASELINE" coll_events_per_sec)"
gate "M7 scen events/sec" \
     "$(extract_key "$RESULT_JSON" scen_events_per_sec)" \
     "$(extract_key "$BASELINE" scen_events_per_sec)"
gate "M8 res events/sec" \
     "$(extract_key "$RESULT_JSON" res_events_per_sec)" \
     "$(extract_key "$BASELINE" res_events_per_sec)"
gate "M9 gen events/sec" \
     "$(extract_key "$RESULT_JSON" gen_events_per_sec)" \
     "$(extract_key "$BASELINE" gen_events_per_sec)"
