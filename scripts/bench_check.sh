#!/usr/bin/env bash
# Perf regression gate for the replay engine.
#
# Builds Release, runs `bench_micro --json` (the M1 replay-engine
# throughput measurement on its largest configuration) and fails if
# events/sec regressed more than the threshold against the checked-in
# baseline (bench/BENCH_baseline.json).
#
# Usage:
#   scripts/bench_check.sh           # check against the baseline
#   scripts/bench_check.sh --update  # refresh the baseline instead
#
# Environment:
#   OVLSIM_BENCH_THRESHOLD  allowed fractional regression (default 0.10)
#   OVLSIM_BENCH_BUILD_DIR  build directory (default build-bench)
#
# The baseline is machine-dependent; refresh it with --update when the
# benchmark host changes, and say so in the commit message.
set -euo pipefail

cd "$(dirname "$0")/.."

THRESHOLD="${OVLSIM_BENCH_THRESHOLD:-0.10}"
BUILD_DIR="${OVLSIM_BENCH_BUILD_DIR:-build-bench}"
BASELINE="bench/BENCH_baseline.json"
UPDATE=0
if [[ "${1:-}" == "--update" ]]; then
    UPDATE=1
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
      -DOVLSIM_BUILD_TESTS=OFF -DOVLSIM_BUILD_EXAMPLES=OFF \
      >/dev/null
cmake --build "$BUILD_DIR" --target bench_micro -j "$(nproc)" \
      >/dev/null

RESULT_JSON="$(mktemp)"
trap 'rm -f "$RESULT_JSON"' EXIT
"$BUILD_DIR/bench_micro" --json="$RESULT_JSON"

extract_rate() {
    grep -o '"events_per_sec": *[0-9.eE+]*' "$1" |
        tail -n 1 | grep -o '[0-9.eE+]*$'
}

CURRENT="$(extract_rate "$RESULT_JSON")"
if [[ -z "$CURRENT" ]]; then
    echo "bench_check: no events_per_sec in bench output" >&2
    exit 1
fi

if [[ "$UPDATE" == 1 || ! -f "$BASELINE" ]]; then
    cp "$RESULT_JSON" "$BASELINE"
    echo "bench_check: baseline updated ($CURRENT events/sec)"
    exit 0
fi

BASE="$(extract_rate "$BASELINE")"
if [[ -z "$BASE" ]]; then
    echo "bench_check: malformed baseline $BASELINE" >&2
    exit 1
fi

awk -v cur="$CURRENT" -v base="$BASE" -v thr="$THRESHOLD" 'BEGIN {
    floor = base * (1.0 - thr);
    printf "bench_check: current %.0f events/sec, baseline %.0f, floor %.0f (-%d%%)\n",
           cur, base, floor, thr * 100;
    if (cur < floor) {
        printf "bench_check: FAIL - engine throughput regressed %.1f%%\n",
               (1.0 - cur / base) * 100;
        exit 1;
    }
    printf "bench_check: OK (%+.1f%% vs baseline)\n",
           (cur / base - 1.0) * 100;
}'
