#!/usr/bin/env bash
# Perf regression gate for the replay engine and the study runtime.
#
# Builds Release, runs `bench_micro --json` (the M1 replay-engine
# throughput measurement on its largest configuration plus the M2
# trace-lowering and M4 sweep-throughput measurements) and fails if
# any figure regressed more than the threshold against the
# checked-in baseline (bench/BENCH_baseline.json):
#
#   M1  events_per_sec           compiled-program replay throughput
#   M2  compile_records_per_sec  trace-lowering (compile) throughput
#   M4  sweep_points_per_sec     campaign (parallel sweep) throughput
#
# A baseline recorded before M2/M4 existed lacks their keys; those
# gates are then skipped with a notice — refresh with --update.
#
# Usage:
#   scripts/bench_check.sh           # check against the baseline
#   scripts/bench_check.sh --update  # refresh the baseline instead
#
# Environment:
#   OVLSIM_BENCH_THRESHOLD  allowed fractional regression (default 0.10)
#   OVLSIM_BENCH_BUILD_DIR  build directory (default build-bench)
#   OVLSIM_BENCH_THREADS    M4 worker count (default 0 = all cores)
#
# The baseline is machine-dependent; refresh it with --update when the
# benchmark host changes, and say so in the commit message.
set -euo pipefail

cd "$(dirname "$0")/.."

THRESHOLD="${OVLSIM_BENCH_THRESHOLD:-0.10}"
BUILD_DIR="${OVLSIM_BENCH_BUILD_DIR:-build-bench}"
THREADS="${OVLSIM_BENCH_THREADS:-0}"
BASELINE="bench/BENCH_baseline.json"
UPDATE=0
if [[ "${1:-}" == "--update" ]]; then
    UPDATE=1
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
      -DOVLSIM_BUILD_TESTS=OFF -DOVLSIM_BUILD_EXAMPLES=OFF \
      >/dev/null
cmake --build "$BUILD_DIR" --target bench_micro -j "$(nproc)" \
      >/dev/null

RESULT_JSON="$(mktemp)"
trap 'rm -f "$RESULT_JSON"' EXIT
"$BUILD_DIR/bench_micro" --json="$RESULT_JSON" --threads="$THREADS"

# Last occurrence of a numeric key in a trajectory file (the most
# recent entry carrying that key).
extract_key() { # file key
    grep -o "\"$2\": *[0-9.eE+]*" "$1" |
        tail -n 1 | grep -o '[0-9.eE+]*$'
}

CURRENT_M1="$(extract_key "$RESULT_JSON" events_per_sec)"
CURRENT_M2="$(extract_key "$RESULT_JSON" compile_records_per_sec)"
CURRENT_M4="$(extract_key "$RESULT_JSON" sweep_points_per_sec)"
if [[ -z "$CURRENT_M1" || -z "$CURRENT_M2" || -z "$CURRENT_M4" ]]
then
    echo "bench_check: missing figures in bench output" >&2
    exit 1
fi

if [[ "$UPDATE" == 1 || ! -f "$BASELINE" ]]; then
    cp "$RESULT_JSON" "$BASELINE"
    echo "bench_check: baseline updated ($CURRENT_M1 events/sec," \
         "$CURRENT_M2 compile records/sec," \
         "$CURRENT_M4 sweep points/sec)"
    exit 0
fi

# gate NAME CURRENT BASE — fails the script when CURRENT dropped
# more than THRESHOLD below BASE.
gate() {
    awk -v name="$1" -v cur="$2" -v base="$3" -v thr="$THRESHOLD" \
    'BEGIN {
        floor = base * (1.0 - thr);
        printf "bench_check: %s current %.0f, baseline %.0f, floor %.0f (-%d%%)\n",
               name, cur, base, floor, thr * 100;
        if (cur < floor) {
            printf "bench_check: FAIL - %s regressed %.1f%%\n",
                   name, (1.0 - cur / base) * 100;
            exit 1;
        }
        printf "bench_check: %s OK (%+.1f%% vs baseline)\n",
               name, (cur / base - 1.0) * 100;
    }'
}

BASE_M1="$(extract_key "$BASELINE" events_per_sec)"
if [[ -z "$BASE_M1" ]]; then
    echo "bench_check: malformed baseline $BASELINE" >&2
    exit 1
fi
gate "M1 events/sec" "$CURRENT_M1" "$BASE_M1"

BASE_M2="$(extract_key "$BASELINE" compile_records_per_sec)"
if [[ -n "$BASE_M2" ]]; then
    gate "M2 compile records/sec" "$CURRENT_M2" "$BASE_M2"
else
    echo "bench_check: baseline has no compile_records_per_sec;" \
         "M2 gate skipped (run scripts/bench_check.sh --update)"
fi

BASE_M4="$(extract_key "$BASELINE" sweep_points_per_sec)"
if [[ -n "$BASE_M4" ]]; then
    gate "M4 sweep points/sec" "$CURRENT_M4" "$BASE_M4"
else
    echo "bench_check: baseline has no sweep_points_per_sec;" \
         "M4 gate skipped (run scripts/bench_check.sh --update)"
fi
