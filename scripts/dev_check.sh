#!/usr/bin/env bash
# One-command pre-merge check: tier-1, ASAN, UBSAN and the
# TSAN-labeled parallel subset, each in its own build tree so the
# sanitizer toggles never contaminate the normal configuration.
#
#   1. tier-1:  default Release-ish build, full ctest suite
#   2. ASAN:    OVLSIM_ASAN build, full ctest suite, then
#               explicit serial `ctest -L res`, `ctest -L gen`
#               and `ctest -L obs` passes (the rollback arenas and
#               snapshot splices are where lifetime bugs would
#               live; generation builds large traces from raw
#               loops; the trace exporter serializes raw span
#               buffers)
#   3. UBSAN:   OVLSIM_UBSAN build, full ctest suite (signed
#               overflow and friends in the event/cost arithmetic),
#               then the same serial `ctest -L res`, `ctest -L gen`
#               and `ctest -L obs` passes (rollback deltas,
#               generator index/byte arithmetic and the counter
#               accumulations are where integer bugs would live)
#   4. TSAN:    OVLSIM_TSAN build, `ctest -L parallel` (the thread
#               pool, parallel sweeps, scenario determinism, and —
#               via test_obs's parallel label — the span buffers
#               and campaign stats folds), `ctest -L coll` (the
#               algorithmic collective engine), `ctest -L res`
#               (resilience campaigns fanning seeded fault
#               scenarios over the pool) and `ctest -L gen`
#               (scaling sweeps fanning whole generate+lower+replay
#               pipelines over the pool)
#
# Usage:
#   scripts/dev_check.sh            # run all four stages
#   scripts/dev_check.sh --fast     # tier-1 only
#
# Environment:
#   OVLSIM_DEV_BUILD_PREFIX  build directory prefix (default build-dev)
set -euo pipefail

cd "$(dirname "$0")/.."

PREFIX="${OVLSIM_DEV_BUILD_PREFIX:-build-dev}"
JOBS="$(nproc)"
FAST=0
if [[ "${1:-}" == "--fast" ]]; then
    FAST=1
fi

stage() { # name cmake-extra-args...
    local name="$1"
    shift
    local dir="$PREFIX-$name"
    echo "== dev_check: configure + build ($name) =="
    cmake -B "$dir" -S . "$@" >/dev/null
    cmake --build "$dir" -j "$JOBS" >/dev/null
}

echo "== dev_check: stage 1/4 tier-1 =="
stage tier1 -DCMAKE_BUILD_TYPE=Release
(cd "$PREFIX-tier1" && ctest --output-on-failure -j "$JOBS")

if [[ "$FAST" == 1 ]]; then
    echo "dev_check: PASS (tier-1 only)"
    exit 0
fi

echo "== dev_check: stage 2/4 ASAN (full + res/gen/obs labels) =="
stage asan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOVLSIM_ASAN=ON
(cd "$PREFIX-asan" && ctest --output-on-failure -j "$JOBS")
(cd "$PREFIX-asan" && ctest --output-on-failure -L res)
(cd "$PREFIX-asan" && ctest --output-on-failure -L gen)
(cd "$PREFIX-asan" && ctest --output-on-failure -L obs)

echo "== dev_check: stage 3/4 UBSAN (full + res/gen/obs labels) =="
stage ubsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOVLSIM_UBSAN=ON
(cd "$PREFIX-ubsan" && ctest --output-on-failure -j "$JOBS")
(cd "$PREFIX-ubsan" && ctest --output-on-failure -L res)
(cd "$PREFIX-ubsan" && ctest --output-on-failure -L gen)
(cd "$PREFIX-ubsan" && ctest --output-on-failure -L obs)

echo "== dev_check: stage 4/4 TSAN (parallel + coll + res + gen labels) =="
stage tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOVLSIM_TSAN=ON
(cd "$PREFIX-tsan" && ctest --output-on-failure -L parallel)
(cd "$PREFIX-tsan" && ctest --output-on-failure -L coll)
(cd "$PREFIX-tsan" && ctest --output-on-failure -L res)
(cd "$PREFIX-tsan" && ctest --output-on-failure -L gen)

echo "dev_check: PASS (tier-1 + ASAN + UBSAN + TSAN subsets)"
