/**
 * @file
 * The R1 bandwidth sweep under dynamic platform scenarios: does
 * overlap still pay off when the machine degrades mid-run?
 *
 * A nominal replay on the chosen topology measures the run length,
 * then three scenarios (src/scen/) are scaled to it and the sweep
 * repeats per scenario on the same fabric:
 *
 *  - mid-degrade: every link drops to a fraction of its capacity
 *    (and doubles its latency) over the middle half of the run,
 *  - nic-stall: node 0's NIC links freeze for the middle fifth —
 *    traffic touching the node stops and resumes on recovery,
 *  - background: a train of external flows crosses the fabric,
 *    contending with the app on shared links.
 *
 * The interesting read is the per-scenario speedup columns against
 * the nominal table: overlapped variants keep more of their edge on
 * a degraded machine because the extra communication time falls
 * where computation can still hide it.
 *
 *   ./degradation_study --app sweep3d [--chunks 16] [--lo 16]
 *                       [--hi 16384] [--per-decade 2]
 *                       [--degrade 0.25] [--threads N]
 *                       [--csv out.csv]
 */

#include <cstdio>
#include <iostream>

#include "apps/app.hh"
#include "bench/bench_common.hh"
#include "core/analysis.hh"
#include "scen/scenario.hh"
#include "util/options.hh"

using namespace ovlsim;

namespace {

SimTime
fractionOf(SimTime total, double fraction)
{
    return SimTime::fromNs(static_cast<std::int64_t>(
        static_cast<double>(total.ns()) * fraction));
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    options.declare("app", "sweep3d",
                    "application: nas-bt nas-cg pop alya specfem "
                    "sweep3d");
    options.declare("chunks", "16", "chunks per message");
    options.declare("lo", "16", "lowest bandwidth, MB/s");
    options.declare("hi", "16384", "highest bandwidth, MB/s");
    options.declare("per-decade", "2", "sweep points per decade");
    options.declare("degrade", "0.25",
                    "link capacity factor during the degradation");
    options.declare("threads", "0",
                    "worker threads (0 = all hardware cores)");
    options.declare("csv", "", "optional CSV output path");
    options.parse(argc, argv);

    const auto &app = apps::findApp(options.getString("app"));
    std::printf("%s: %s\n", app.name().c_str(),
                app.description().c_str());

    const auto bundle = bench::traceApp(app.name());
    auto base = sim::platforms::topologyCluster(
        net::topologies::taperedFatTree(4, 0.5));
    const auto grid = core::logBandwidthGrid(
        options.getDouble("lo"), options.getDouble("hi"),
        static_cast<int>(options.getInt("per-decade")));
    const auto variants = core::standardVariants(
        static_cast<std::size_t>(options.getInt("chunks")));
    const int threads = ThreadPool::resolveThreads(
        static_cast<int>(options.getInt("threads")));

    // Scale the scenarios to the run: one nominal replay at the
    // middle of the bandwidth range measures how long the app runs
    // on this fabric.
    sim::PlatformConfig probe = base;
    probe.bandwidthMBps = grid[grid.size() / 2];
    const SimTime nominal =
        sim::simulate(bundle.traces, probe).totalTime;
    std::printf("nominal run on %s at %.0f MB/s: %.1f us\n",
                base.name.c_str(), probe.bandwidthMBps,
                nominal.toUs());

    std::vector<core::ScenarioSpec> scenarios;
    scenarios.push_back({"nominal", {}});

    {
        scen::ScenarioConfig cfg;
        scen::ScenarioEvent degrade;
        degrade.time = fractionOf(nominal, 0.25);
        degrade.kind = scen::ScenEventKind::degrade;
        degrade.target = scen::ScenTarget::all;
        degrade.bandwidthFactor = options.getDouble("degrade");
        degrade.latencyFactor = 2.0;
        cfg.events.push_back(degrade);
        scen::ScenarioEvent recover;
        recover.time = fractionOf(nominal, 0.75);
        recover.kind = scen::ScenEventKind::recover;
        recover.target = scen::ScenTarget::all;
        cfg.events.push_back(recover);
        scenarios.push_back({"mid-degrade", cfg});
    }

    {
        scen::ScenarioConfig cfg;
        scen::ScenarioEvent stall;
        stall.time = fractionOf(nominal, 0.40);
        stall.kind = scen::ScenEventKind::fail;
        stall.target = scen::ScenTarget::node;
        stall.nodeA = 0;
        stall.semantics = scen::FailSemantics::stall;
        cfg.events.push_back(stall);
        scen::ScenarioEvent recover;
        recover.time = fractionOf(nominal, 0.60);
        recover.kind = scen::ScenEventKind::recover;
        recover.target = scen::ScenTarget::node;
        recover.nodeA = 0;
        cfg.events.push_back(recover);
        scenarios.push_back({"nic-stall", cfg});
    }

    {
        const int nodes =
            (bundle.traces.ranks() + base.cpusPerNode - 1) /
            base.cpusPerNode;
        scen::ScenarioConfig cfg;
        for (int k = 0; k < 8; ++k) {
            scen::ScenarioEvent flow;
            flow.time =
                fractionOf(nominal, 0.1 + 0.1 * k);
            flow.kind = scen::ScenEventKind::background;
            flow.target = scen::ScenTarget::route;
            flow.nodeA = k % nodes;
            flow.nodeB = (k + nodes / 2) % nodes;
            if (flow.nodeA == flow.nodeB)
                flow.nodeB = (flow.nodeB + 1) % nodes;
            flow.bytes = Bytes(1) << 20;
            cfg.events.push_back(flow);
        }
        scenarios.push_back({"background", cfg});
    }

    const auto campaign = core::degradedSweep(
        bundle, base, grid, variants, scenarios, threads);

    for (std::size_t s = 0; s < campaign.scenarios.size(); ++s) {
        const auto &spec = campaign.scenarios[s];
        const auto &sweep = campaign.sweeps[s];
        std::printf("\n== %s ==\n", spec.name.c_str());
        TablePrinter table({"MB/s", "original", "comm%",
                            "real speedup", "ideal speedup"});
        for (const auto &point : sweep.points) {
            table.addRow(
                {strformat("%.2f", point.bandwidthMBps),
                 humanTime(point.originalTime),
                 strformat("%.0f",
                           point.originalCommFraction * 100.0),
                 strformat("%+.1f%%",
                           (point.speedup(0) - 1.0) * 100.0),
                 strformat("%+.1f%%",
                           (point.speedup(1) - 1.0) * 100.0)});
        }
        table.print(std::cout);
    }

    if (!options.getString("csv").empty()) {
        CsvWriter csv(options.getString("csv"),
                      {"scenario", "bandwidth_mbps",
                       "t_original_us", "t_real_us",
                       "t_ideal_us"});
        for (std::size_t s = 0; s < campaign.scenarios.size();
             ++s) {
            for (const auto &point : campaign.sweeps[s].points) {
                csv.addRow(
                    {campaign.scenarios[s].name,
                     strformat("%.4f", point.bandwidthMBps),
                     strformat("%.3f",
                               point.originalTime.toUs()),
                     strformat("%.3f",
                               point.variantTimes[0].toUs()),
                     strformat("%.3f",
                               point.variantTimes[1].toUs())});
            }
        }
        std::printf("\nCSV written to %s\n",
                    options.getString("csv").c_str());
    }
    return 0;
}
