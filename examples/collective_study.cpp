/**
 * @file
 * The R1 bandwidth sweep under both collective models, repeated per
 * interconnect topology: what do collectives cost when they have to
 * share the fabric?
 *
 * The analytic model (the seed's Dimemas formulas) prices every
 * collective off-network — a broadcast costs the same closed form
 * whether the fabric is a full-bisection fat tree or a starved
 * torus. The algorithmic model (src/coll/) lowers each collective
 * into its classic point-to-point schedule (binomial trees,
 * recursive doubling, rings, pairwise exchange) and executes it on
 * the engine's transfer path, so collective traffic occupies links
 * and contends in the src/net/ model like any other message. For
 * every topology of the standard set the campaign prints the two
 * sweeps side by side; the interesting read is the "coll delta"
 * column — how much slower (or faster) the original run gets when
 * its collectives become real traffic, which is exactly the
 * topology effect collective-heavy apps (nas-cg, alya) cannot show
 * under the analytic model.
 *
 *   ./collective_study --app nas-cg [--chunks 16] [--lo 1]
 *                      [--hi 65536] [--per-decade 2]
 *                      [--threads N] [--csv out.csv]
 */

#include <cstdio>
#include <iostream>

#include "apps/app.hh"
#include "bench/bench_common.hh"
#include "core/analysis.hh"
#include "util/options.hh"

using namespace ovlsim;

int
main(int argc, char **argv)
{
    Options options;
    options.declare("app", "nas-cg",
                    "application: nas-bt nas-cg pop alya specfem "
                    "sweep3d");
    options.declare("chunks", "16", "chunks per message");
    options.declare("lo", "1", "lowest bandwidth, MB/s");
    options.declare("hi", "65536", "highest bandwidth, MB/s");
    options.declare("per-decade", "2", "sweep points per decade");
    options.declare("threads", "0",
                    "worker threads (0 = all hardware cores)");
    options.declare("csv", "", "optional CSV output path");
    options.parse(argc, argv);

    const auto &app = apps::findApp(options.getString("app"));
    std::printf("%s: %s\n", app.name().c_str(),
                app.description().c_str());

    const auto bundle = bench::traceApp(app.name());
    const auto base = sim::platforms::defaultCluster();
    const auto grid = core::logBandwidthGrid(
        options.getDouble("lo"), options.getDouble("hi"),
        static_cast<int>(options.getInt("per-decade")));
    const auto variants = core::standardVariants(
        static_cast<std::size_t>(options.getInt("chunks")));
    const auto topologies = core::standardTopologies();
    const int threads = ThreadPool::resolveThreads(
        static_cast<int>(options.getInt("threads")));

    const auto campaign = core::collectiveSweep(
        bundle, base, grid, variants, topologies, threads);

    for (std::size_t t = 0; t < campaign.topologies.size(); ++t) {
        const auto &spec = campaign.topologies[t];
        const auto &analytic = campaign.analytic[t];
        const auto &algorithmic = campaign.algorithmic[t];
        std::printf("\n== %s ==\n", spec.name.c_str());
        TablePrinter table({"MB/s", "analytic", "algorithmic",
                            "coll delta", "real speedup",
                            "ideal speedup"});
        for (std::size_t i = 0; i < analytic.points.size(); ++i) {
            const auto &pa = analytic.points[i];
            const auto &pb = algorithmic.points[i];
            table.addRow(
                {strformat("%.2f", pa.bandwidthMBps),
                 humanTime(pa.originalTime),
                 humanTime(pb.originalTime),
                 bench::pct(bench::speedupPct(
                     pb.originalTime, pa.originalTime)),
                 bench::pct((pb.speedup(0) - 1.0) * 100.0),
                 bench::pct((pb.speedup(1) - 1.0) * 100.0)});
        }
        table.print(std::cout);
    }

    if (!options.getString("csv").empty()) {
        CsvWriter csv(options.getString("csv"),
                      {"topology", "bandwidth_mbps",
                       "t_analytic_us", "t_algorithmic_us",
                       "t_algo_real_us", "t_algo_ideal_us"});
        for (std::size_t t = 0; t < campaign.topologies.size();
             ++t) {
            const auto &analytic = campaign.analytic[t];
            const auto &algorithmic = campaign.algorithmic[t];
            for (std::size_t i = 0; i < analytic.points.size();
                 ++i) {
                csv.addRow(
                    {campaign.topologies[t].name,
                     strformat(
                         "%.4f",
                         analytic.points[i].bandwidthMBps),
                     strformat(
                         "%.3f",
                         analytic.points[i].originalTime.toUs()),
                     strformat("%.3f", algorithmic.points[i]
                                           .originalTime.toUs()),
                     strformat("%.3f",
                               algorithmic.points[i]
                                   .variantTimes[0]
                                   .toUs()),
                     strformat("%.3f",
                               algorithmic.points[i]
                                   .variantTimes[1]
                                   .toUs())});
            }
        }
        std::printf("\nCSV written to %s\n",
                    options.getString("csv").c_str());
    }
    return 0;
}
