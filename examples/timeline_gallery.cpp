/**
 * @file
 * Timeline gallery: visually inspect the effect of overlap, the way
 * the paper uses Paraver.
 *
 * Renders the original, real-pattern and ideal-pattern executions of
 * one application as ASCII Gantt charts and writes Paraver .prv/.pcf
 * files for each, loadable in the actual BSC Paraver tool.
 *
 *   ./timeline_gallery --app nas-bt [--bandwidth 0 (=intermediate)]
 *                      [--width 100] [--prefix gallery]
 */

#include <cstdio>
#include <iostream>

#include "apps/app.hh"
#include "bench/bench_common.hh"
#include "core/study.hh"
#include "util/options.hh"
#include "viz/ascii_gantt.hh"
#include "viz/paraver.hh"
#include "viz/profile.hh"

using namespace ovlsim;

int
main(int argc, char **argv)
{
    Options options;
    options.declare("app", "nas-bt", "application to visualize");
    options.declare("bandwidth", "0",
                    "bandwidth MB/s; 0 = intermediate");
    options.declare("width", "100", "gantt width in columns");
    options.declare("prefix", "gallery",
                    "paraver output file prefix");
    options.parse(argc, argv);

    const auto &app = apps::findApp(options.getString("app"));
    core::OverlapStudy study(bench::traceApp(app.name(), 1));

    auto platform = sim::platforms::defaultCluster();
    platform.captureTimeline = true;
    double bandwidth = options.getDouble("bandwidth");
    if (bandwidth <= 0.0) {
        // The study's cached compiled program serves the bisection
        // and the replays below — the trace is lowered exactly once.
        bandwidth = core::findIntermediateBandwidth(
            *study.originalProgram(), platform);
    }
    platform.bandwidthMBps = bandwidth;
    std::printf("%s at %.2f MB/s\n\n", app.name().c_str(),
                bandwidth);

    core::TransformConfig real;
    real.pattern = core::PatternModel::real;
    core::TransformConfig ideal;
    ideal.pattern = core::PatternModel::idealLinear;

    struct Entry
    {
        std::string name;
        sim::SimResult result;
    };
    const Entry entries[] = {
        {"original", study.simulateOriginal(platform)},
        {"overlap-real",
         study.simulateOverlapped(real, platform)},
        {"overlap-ideal",
         study.simulateOverlapped(ideal, platform)},
    };

    viz::GanttOptions gantt;
    gantt.width = static_cast<std::size_t>(
        options.getInt("width"));
    const std::string prefix = options.getString("prefix");

    for (const auto &entry : entries) {
        gantt.title = entry.name + " ("
            + humanTime(entry.result.totalTime) + "):";
        gantt.legend = &entry == &entries[2];
        std::printf("%s\n",
                    viz::renderGantt(entry.result.timeline,
                                     gantt)
                        .c_str());
        const std::string base = prefix + "_" + entry.name;
        viz::writeParaverFiles(entry.result.timeline, base);
    }
    std::printf("paraver traces written with prefix '%s_*'\n\n",
                prefix.c_str());

    std::printf("state profile of the original execution:\n%s",
                viz::renderStateProfile(entries[0].result)
                    .c_str());
    return 0;
}
