/**
 * @file
 * Network dimensioning with overlap: the paper's headline systems
 * insight as a tool.
 *
 * "The biggest benefit of overlap is that it can highly relax the
 *  expensive trend of advancing network bandwidth": given a target
 *  performance (the original execution at a high reference
 *  bandwidth), report how much cheaper a network the overlapped
 *  execution could run on at the same performance.
 *
 *   ./network_dimensioning --app specfem [--reference 65536]
 *                          [--tolerance 0.05] [--chunks 16]
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "apps/app.hh"
#include "bench/bench_common.hh"
#include "core/analysis.hh"
#include "util/options.hh"

using namespace ovlsim;

int
main(int argc, char **argv)
{
    Options options;
    options.declare("app", "specfem", "application to dimension");
    options.declare("reference", "65536",
                    "reference bandwidth, MB/s");
    options.declare("tolerance", "0.05",
                    "accepted slowdown vs the reference");
    options.declare("chunks", "16", "chunks per message");
    options.parse(argc, argv);

    const auto &app = apps::findApp(options.getString("app"));
    const auto bundle = bench::traceApp(app.name());

    core::TransformConfig ideal;
    ideal.pattern = core::PatternModel::idealLinear;
    ideal.chunks =
        static_cast<std::size_t>(options.getInt("chunks"));

    const auto iso = core::isoPerformance(
        bundle, sim::platforms::defaultCluster(), ideal,
        options.getDouble("reference"),
        options.getDouble("tolerance"), 1e-2);

    std::printf("application: %s\n", app.name().c_str());
    std::printf("target: performance of the original execution "
                "at %.0f MB/s (%s), %.0f%% tolerance\n\n",
                iso.referenceBandwidth,
                humanTime(iso.originalTime).c_str(),
                iso.tolerance * 100.0);

    TablePrinter table({"execution", "needs bandwidth"});
    table.addRow({"original (non-overlapped)",
                  strformat("%.2f MB/s",
                            iso.originalRequiredBandwidth)});
    table.addRow({"overlapped (ideal pattern)",
                  strformat("%.2f MB/s",
                            iso.overlappedRequiredBandwidth)});
    table.print(std::cout);

    std::printf("\nthe overlapped execution needs %.1fx less "
                "bandwidth (%.2f orders of magnitude)\n",
                iso.reductionFactor(),
                std::log10(iso.reductionFactor()));
    return 0;
}
