/**
 * @file
 * The paper's R1 bandwidth sweep, repeated per interconnect
 * topology: does overlap still hide communication when the fabric
 * itself is congested?
 *
 * For every topology of the standard set (flat bus, full-bisection
 * fat tree, 2:1 tapered fat tree, wrapped 2-D torus, dragonfly) the
 * original execution and the real/ideal overlapped variants are
 * replayed across a log bandwidth grid, with remote transfers
 * routed over compiled per-link routes and link-shared contention
 * (src/net/). The interesting read is the rightmost columns: on a
 * congested fabric the overlapped variants keep their edge longer
 * into the high-bandwidth regime than the flat model predicts.
 *
 *   ./topology_study --app sweep3d [--chunks 16] [--lo 1]
 *                    [--hi 65536] [--per-decade 2]
 *                    [--threads N] [--csv out.csv]
 *                    [--progress] [--trace-out trace.json]
 *
 * --progress reports campaign completion to stderr; --trace-out
 * writes a Chrome trace-event JSON (ui.perfetto.dev) combining a
 * captured per-rank timeline of the original replay with the
 * campaign's host-side lane spans.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "apps/app.hh"
#include "bench/bench_common.hh"
#include "core/analysis.hh"
#include "obs/chrome_trace.hh"
#include "obs/progress.hh"
#include "util/options.hh"

using namespace ovlsim;

int
main(int argc, char **argv)
{
    Options options;
    options.declare("app", "sweep3d",
                    "application: nas-bt nas-cg pop alya specfem "
                    "sweep3d");
    options.declare("chunks", "16", "chunks per message");
    options.declare("lo", "1", "lowest bandwidth, MB/s");
    options.declare("hi", "65536", "highest bandwidth, MB/s");
    options.declare("per-decade", "2", "sweep points per decade");
    options.declare("threads", "0",
                    "worker threads (0 = all hardware cores)");
    options.declare("csv", "", "optional CSV output path");
    options.declare("progress", "false",
                    "report campaign progress to stderr");
    options.declare("trace-out", "",
                    "optional Chrome trace-event JSON output path");
    options.parse(argc, argv);

    const auto &app = apps::findApp(options.getString("app"));
    std::printf("%s: %s\n", app.name().c_str(),
                app.description().c_str());

    const auto bundle = bench::traceApp(app.name());
    const auto base = sim::platforms::defaultCluster();
    const auto grid = core::logBandwidthGrid(
        options.getDouble("lo"), options.getDouble("hi"),
        static_cast<int>(options.getInt("per-decade")));
    const auto variants = core::standardVariants(
        static_cast<std::size_t>(options.getInt("chunks")));
    const auto topologies = core::standardTopologies();
    const int threads = ThreadPool::resolveThreads(
        static_cast<int>(options.getInt("threads")));

    core::CampaignObs cobs;
    cobs.recordSpans = !options.getString("trace-out").empty();
    std::unique_ptr<obs::Progress> progress;
    if (options.getBool("progress")) {
        progress = std::make_unique<obs::Progress>(
            "topology sweep", topologies.size() * grid.size());
        cobs.progress = progress.get();
    }

    const auto campaign = core::topologySweep(
        bundle, base, grid, variants, topologies, threads, &cobs);
    if (progress != nullptr)
        progress->finish();

    for (std::size_t t = 0; t < campaign.topologies.size(); ++t) {
        const auto &spec = campaign.topologies[t];
        const auto &sweep = campaign.sweeps[t];
        std::printf("\n== %s ==\n", spec.name.c_str());
        TablePrinter table({"MB/s", "original", "comm%",
                            "real speedup", "ideal speedup"});
        for (const auto &point : sweep.points) {
            table.addRow(
                {strformat("%.2f", point.bandwidthMBps),
                 humanTime(point.originalTime),
                 strformat("%.0f",
                           point.originalCommFraction * 100.0),
                 strformat("%+.1f%%",
                           (point.speedup(0) - 1.0) * 100.0),
                 strformat("%+.1f%%",
                           (point.speedup(1) - 1.0) * 100.0)});
        }
        table.print(std::cout);
    }

    if (!options.getString("csv").empty()) {
        CsvWriter csv(options.getString("csv"),
                      {"topology", "bandwidth_mbps",
                       "t_original_us", "t_real_us",
                       "t_ideal_us"});
        for (std::size_t t = 0; t < campaign.topologies.size();
             ++t) {
            for (const auto &point : campaign.sweeps[t].points) {
                csv.addRow(
                    {campaign.topologies[t].name,
                     strformat("%.4f", point.bandwidthMBps),
                     strformat("%.3f",
                               point.originalTime.toUs()),
                     strformat("%.3f",
                               point.variantTimes[0].toUs()),
                     strformat("%.3f",
                               point.variantTimes[1].toUs())});
            }
        }
        std::printf("\nCSV written to %s\n",
                    options.getString("csv").c_str());
    }

    if (!options.getString("trace-out").empty()) {
        // Simulated tracks come from one extra replay of the
        // original execution with timeline capture on (the campaign
        // replays run capture-off to stay cheap); host tracks are
        // the campaign's recorded lane spans.
        auto tracked = base;
        tracked.captureTimeline = true;
        const auto replay = sim::simulate(bundle.traces, tracked);
        obs::writeChromeTrace(options.getString("trace-out"),
                              replay.timeline, cobs.spans);
        std::printf("\nChrome trace written to %s\n",
                    options.getString("trace-out").c_str());
    }
    return 0;
}
