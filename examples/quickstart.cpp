/**
 * @file
 * Quickstart: the whole environment in one page.
 *
 * Writes a tiny two-rank MPI-like program against the VM API, traces
 * it with the tracing tool, builds the overlapped "potential" trace,
 * replays both on a configurable platform and prints the comparison
 * — the paper's Figure-1 pipeline in miniature.
 *
 *   ./quickstart [--bandwidth <MB/s>] [--chunks <n>]
 */

#include <cstdio>
#include <iostream>

#include "core/study.hh"
#include "sim/platform.hh"
#include "util/options.hh"
#include "viz/ascii_gantt.hh"
#include "viz/profile.hh"

using namespace ovlsim;

int
main(int argc, char **argv)
{
    Options options;
    options.declare("bandwidth", "64", "network bandwidth, MB/s");
    options.declare("chunks", "16", "chunks per message");
    options.parse(argc, argv);

    // 1. An application: rank 0 produces a 256 KiB array while
    //    computing, sends it; rank 1 receives and consumes it
    //    while computing. Loads/stores on the registered buffer
    //    are tracked exactly as the paper's Valgrind tool tracks
    //    memory activity.
    const Bytes bytes = 256 * 1024;
    const Instr work = 1'000'000; // ~1 ms at 1000 MIPS
    const auto program = [&](vm::VmContext &ctx) {
        const auto buf = ctx.allocBuffer("payload", bytes);
        if (ctx.rank() == 0) {
            // Produce progressively: each eighth of the buffer is
            // stored after its share of the computation.
            ctx.computeStore(buf, 0, bytes,
                             static_cast<double>(work) / bytes,
                             8);
            ctx.send(buf, 0, bytes, 1, 42);
        } else {
            ctx.recv(buf, 0, bytes, 0, 42);
            // Consume progressively while computing.
            ctx.computeLoad(buf, 0, bytes,
                            static_cast<double>(work) / bytes,
                            8);
        }
    };

    // 2. Trace it (original trace + production/consumption
    //    profiles from one run).
    auto study = core::OverlapStudy::fromProgram(2, program);

    // 3. Configure the platform and replay the original and the
    //    overlapped execution.
    auto platform = sim::platforms::defaultCluster();
    platform.bandwidthMBps = options.getDouble("bandwidth");
    platform.captureTimeline = true;

    core::TransformConfig overlap; // real measured pattern
    overlap.chunks =
        static_cast<std::size_t>(options.getInt("chunks"));

    const auto original = study.simulateOriginal(platform);
    const auto overlapped =
        study.simulateOverlapped(overlap, platform);

    // 4. Compare, quantitatively and visually.
    std::printf("platform: %.1f MB/s, %.1f us latency\n\n",
                platform.bandwidthMBps, platform.latencyUs);
    std::printf("%s\n",
                viz::renderComparison("original", original,
                                      "overlapped", overlapped)
                    .c_str());

    viz::GanttOptions gantt;
    gantt.width = 72;
    gantt.legend = false;
    gantt.title = "original:";
    std::printf("%s\n",
                viz::renderGantt(original.timeline, gantt)
                    .c_str());
    gantt.title = "overlapped:";
    gantt.legend = true;
    std::printf("%s",
                viz::renderGantt(overlapped.timeline, gantt)
                    .c_str());
    return 0;
}
