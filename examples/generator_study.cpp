/**
 * @file
 * Overlap vs. rank count on a generated workload: the scaling
 * question recorded traces cannot answer.
 *
 * A synthetic workload (src/gen/ — default: a 2-D halo-exchange
 * stencil) is re-targeted at every rank count of a grid, generated
 * with the same seed, and replayed on the 2:1 tapered fat tree as
 * the original and the real/ideal overlapped variants. The
 * interesting read is how the overlap benefit moves as the machine
 * grows: halo traffic per rank stays constant while the tapered
 * fabric's bisection tightens, so communication — and the value of
 * hiding it — climbs with scale.
 *
 *   ./generator_study [--kind stencil|ml-training|fan-in|dht]
 *                     [--workload file.wl] [--seed 1]
 *                     [--ranks 16,32,64,128,256]
 *                     [--chunks 16] [--bandwidth 1024]
 *                     [--threads N] [--csv out.csv] [--progress]
 *
 * With --workload the grid rides on a workload file (see
 * src/gen/workload_file.hh); otherwise --kind picks a default
 * config of that family.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "bench/bench_common.hh"
#include "core/analysis.hh"
#include "gen/gen.hh"
#include "gen/workload_file.hh"
#include "net/topology.hh"
#include "obs/progress.hh"
#include "util/options.hh"
#include "util/strings.hh"

using namespace ovlsim;

namespace {

std::vector<int>
parseRankGrid(const std::string &text)
{
    std::vector<int> grid;
    for (const auto &part : split(text, ','))
        grid.push_back(
            static_cast<int>(parseInt(trim(part))));
    if (grid.empty())
        fatal("--ranks: empty rank grid");
    return grid;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    options.declare("kind", "stencil",
                    "workload family: stencil ml-training fan-in "
                    "dht");
    options.declare("workload", "",
                    "optional workload config file (overrides "
                    "--kind)");
    options.declare("seed", "1", "generation seed");
    options.declare("ranks", "16,32,64,128,256",
                    "comma-separated rank-count grid");
    options.declare("chunks", "16", "chunks per message");
    options.declare("bandwidth", "1024",
                    "link bandwidth, MB/s");
    options.declare("threads", "0",
                    "worker threads (0 = all hardware cores)");
    options.declare("csv", "", "optional CSV output path");
    options.declare("progress", "false",
                    "report campaign progress to stderr");
    options.parse(argc, argv);

    gen::WorkloadConfig workload;
    if (!options.getString("workload").empty()) {
        workload = gen::readWorkloadConfigFile(
            options.getString("workload"));
    } else {
        workload.kind = gen::workloadKindFromName(
            options.getString("kind"));
        workload.name = options.getString("kind");
    }

    auto platform = sim::platforms::topologyCluster(
        net::topologies::taperedFatTree(4, 0.5));
    platform.bandwidthMBps = options.getDouble("bandwidth");

    const auto grid =
        parseRankGrid(options.getString("ranks"));
    const auto variants = core::standardVariants(
        static_cast<std::size_t>(options.getInt("chunks")));
    const auto seed =
        static_cast<std::uint64_t>(options.getInt("seed"));
    const int threads = ThreadPool::resolveThreads(
        static_cast<int>(options.getInt("threads")));

    std::printf("workload %s (%s), seed %llu, tapered fat tree "
                "@ %.0f MB/s\n",
                workload.name.c_str(),
                gen::workloadKindName(workload.kind),
                static_cast<unsigned long long>(seed),
                platform.bandwidthMBps);

    core::CampaignObs cobs;
    std::unique_ptr<obs::Progress> progress;
    if (options.getBool("progress")) {
        progress = std::make_unique<obs::Progress>(
            "scaling sweep", grid.size());
        cobs.progress = progress.get();
    }

    const auto sweep = core::scalingSweep(
        workload, seed, platform, grid, variants, threads, &cobs);
    if (progress != nullptr)
        progress->finish();

    TablePrinter table({"ranks", "messages", "MB sent",
                        "original", "comm%", "real speedup",
                        "ideal speedup"});
    for (const auto &point : sweep.points) {
        table.addRow(
            {strformat("%d", point.ranks),
             strformat("%zu", point.messages),
             strformat("%.1f",
                       static_cast<double>(point.sentBytes) /
                           (1024.0 * 1024.0)),
             humanTime(point.originalTime),
             strformat("%.0f",
                       point.originalCommFraction * 100.0),
             strformat("%+.1f%%",
                       (point.speedup(0) - 1.0) * 100.0),
             strformat("%+.1f%%",
                       (point.speedup(1) - 1.0) * 100.0)});
    }
    table.print(std::cout);

    if (!options.getString("csv").empty()) {
        CsvWriter csv(options.getString("csv"),
                      {"ranks", "messages", "sent_bytes",
                       "t_original_us", "t_real_us",
                       "t_ideal_us"});
        for (const auto &point : sweep.points) {
            csv.addRow(
                {strformat("%d", point.ranks),
                 strformat("%zu", point.messages),
                 strformat("%llu",
                           static_cast<unsigned long long>(
                               point.sentBytes)),
                 strformat("%.3f", point.originalTime.toUs()),
                 strformat("%.3f",
                           point.variantTimes[0].toUs()),
                 strformat("%.3f",
                           point.variantTimes[1].toUs())});
        }
        std::printf("\nCSV written to %s\n",
                    options.getString("csv").c_str());
    }
    return 0;
}
