/**
 * @file
 * The paper's full study for one application: sweep the network
 * bandwidth and compare the original execution against the
 * real-pattern and ideal-pattern overlapped executions.
 *
 *   ./overlap_study --app sweep3d [--chunks 16] [--lo 1]
 *                   [--hi 65536] [--per-decade 2] [--csv out.csv]
 */

#include <cstdio>
#include <iostream>

#include "apps/app.hh"
#include "bench/bench_common.hh"
#include "core/analysis.hh"
#include "sim/platform_file.hh"
#include "util/options.hh"

using namespace ovlsim;

int
main(int argc, char **argv)
{
    Options options;
    options.declare("app", "nas-bt",
                    "application: nas-bt nas-cg pop alya specfem "
                    "sweep3d");
    options.declare("chunks", "16", "chunks per message");
    options.declare("lo", "1", "lowest bandwidth, MB/s");
    options.declare("hi", "65536", "highest bandwidth, MB/s");
    options.declare("per-decade", "2",
                    "sweep points per decade");
    options.declare("csv", "", "optional CSV output path");
    options.declare("platform", "",
                    "optional platform config file (key = value; "
                    "bandwidth is overridden by the sweep)");
    options.parse(argc, argv);

    auto base = sim::platforms::defaultCluster();
    if (!options.getString("platform").empty()) {
        base = sim::readPlatformConfigFile(
            options.getString("platform"));
    }

    const auto &app = apps::findApp(options.getString("app"));
    std::printf("%s: %s\n\n", app.name().c_str(),
                app.description().c_str());

    const auto bundle = bench::traceApp(app.name());
    const auto grid = core::logBandwidthGrid(
        options.getDouble("lo"), options.getDouble("hi"),
        static_cast<int>(options.getInt("per-decade")));
    const auto variants = core::standardVariants(
        static_cast<std::size_t>(options.getInt("chunks")));
    const auto sweep = core::bandwidthSweep(
        bundle, base, grid,
        variants);

    TablePrinter table({"MB/s", "original", "comm%",
                        "overlap-real", "real speedup",
                        "overlap-ideal", "ideal speedup"});
    for (const auto &point : sweep.points) {
        table.addRow(
            {strformat("%.2f", point.bandwidthMBps),
             humanTime(point.originalTime),
             strformat("%.0f",
                       point.originalCommFraction * 100.0),
             humanTime(point.variantTimes[0]),
             strformat("%+.1f%%",
                       (point.speedup(0) - 1.0) * 100.0),
             humanTime(point.variantTimes[1]),
             strformat("%+.1f%%",
                       (point.speedup(1) - 1.0) * 100.0)});
    }
    table.print(std::cout);

    const double ib = core::findIntermediateBandwidth(
        *sim::compileShared(bundle.traces), base);
    std::printf("\nintermediate bandwidth (comm == comp): %.2f "
                "MB/s\n", ib);

    if (!options.getString("csv").empty()) {
        CsvWriter csv(options.getString("csv"),
                      {"bandwidth_mbps", "t_original_us",
                       "t_real_us", "t_ideal_us"});
        for (const auto &point : sweep.points) {
            csv.addRow(
                {strformat("%.4f", point.bandwidthMBps),
                 strformat("%.3f", point.originalTime.toUs()),
                 strformat("%.3f",
                           point.variantTimes[0].toUs()),
                 strformat("%.3f",
                           point.variantTimes[1].toUs())});
        }
        std::printf("CSV written to %s\n",
                    options.getString("csv").c_str());
    }
    return 0;
}
