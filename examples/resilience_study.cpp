/**
 * @file
 * The resilience crossover: how unreliable can the machine get
 * before communication/computation overlap stops paying?
 *
 * Overlap hides communication behind computation, but a fail-stop
 * fault rolls the replay back to its last coordinated checkpoint —
 * and the rework a restart replays is governed by wall progress,
 * not by how cleverly that progress overlapped. As the per-node
 * MTBF shrinks, every variant pays more rework and checkpoint
 * freezes; this study sweeps a failure-rate grid x seeds
 * (core::resilienceSweep) under a checkpoint/restart cost model
 * (src/res/) and tabulates where the overlapped variants' edge
 * over the original erodes.
 *
 * Per MTBF row: mean and p95 completion over seeds, the fraction
 * of seeds that died (always 0 with checkpointing unless the
 * restart budget blows), and the real/ideal overlap speedups on
 * the means. The same generated fault scenario is applied to the
 * original and every variant of a (rate, seed) cell, so rows
 * compare like with like.
 *
 *   ./resilience_study --app sweep3d [--chunks 16]
 *                      [--mtbf-lo 2] [--mtbf-hi 200]
 *                      [--per-decade 3] [--seeds 20]
 *                      [--interval 0] [--ckpt-cost 0]
 *                      [--restart-cost 0] [--threads N]
 *                      [--csv out.csv]
 *
 * Interval/cost/restart are microseconds; 0 auto-scales them to
 * the app's nominal run (interval = nominal/6, cost = interval/50,
 * restart = interval/10). --mtbf-lo/--mtbf-hi are multiples of the
 * nominal run, so the grid tracks the app instead of hardcoding
 * microseconds: a 2x-nominal per-node MTBF is a brutal machine, a
 * 200x-nominal one is merely flaky.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "apps/app.hh"
#include "bench/bench_common.hh"
#include "core/analysis.hh"
#include "util/options.hh"

using namespace ovlsim;

namespace {

double
meanSpeedup(const core::ResiliencePoint &point, std::size_t variant)
{
    const double original =
        static_cast<double>(point.cells[0].meanTime.ns());
    const double overlapped = static_cast<double>(
        point.cells[variant + 1].meanTime.ns());
    return overlapped > 0.0 ? original / overlapped : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    options.declare("app", "sweep3d",
                    "application: nas-bt nas-cg pop alya specfem "
                    "sweep3d");
    options.declare("chunks", "16", "chunks per message");
    options.declare("mtbf-lo", "2",
                    "lowest per-node MTBF, multiples of the "
                    "nominal run");
    options.declare("mtbf-hi", "200",
                    "highest per-node MTBF, multiples of the "
                    "nominal run");
    options.declare("per-decade", "3", "grid points per decade");
    options.declare("seeds", "20", "fault scenarios per grid point");
    options.declare("seed", "1", "campaign base seed");
    options.declare("interval", "0",
                    "checkpoint interval, us (0 = nominal/6)");
    options.declare("ckpt-cost", "0",
                    "checkpoint freeze cost, us (0 = interval/50)");
    options.declare("restart-cost", "0",
                    "restart cost, us (0 = interval/10)");
    options.declare("threads", "0",
                    "worker threads (0 = all hardware cores)");
    options.declare("csv", "", "optional CSV output path");
    options.parse(argc, argv);

    const auto &app = apps::findApp(options.getString("app"));
    std::printf("%s: %s\n", app.name().c_str(),
                app.description().c_str());

    const auto bundle = bench::traceApp(app.name());
    auto base = sim::platforms::topologyCluster(
        net::topologies::taperedFatTree(4, 0.5));
    const auto variants = core::standardVariants(
        static_cast<std::size_t>(options.getInt("chunks")));
    const int threads = ThreadPool::resolveThreads(
        static_cast<int>(options.getInt("threads")));

    // Scale the cost model and the MTBF grid to this app's nominal
    // run on this fabric.
    const SimTime nominal =
        sim::simulate(bundle.traces, base).totalTime;
    double interval_us = options.getDouble("interval");
    if (interval_us <= 0.0)
        interval_us = nominal.toUs() / 6.0;
    double ckpt_cost_us = options.getDouble("ckpt-cost");
    if (ckpt_cost_us <= 0.0)
        ckpt_cost_us = interval_us / 50.0;
    double restart_cost_us = options.getDouble("restart-cost");
    if (restart_cost_us <= 0.0)
        restart_cost_us = interval_us / 10.0;
    base.checkpointIntervalUs = interval_us;
    base.checkpointCostUs = ckpt_cost_us;
    base.restartCostUs = restart_cost_us;
    std::printf("nominal run on %s: %.1f us; checkpoint every "
                "%.1f us costing %.2f us, restart %.2f us\n",
                base.name.c_str(), nominal.toUs(), interval_us,
                ckpt_cost_us, restart_cost_us);

    // Log-spaced per-node MTBF grid (the log-grid helper is not
    // bandwidth-specific), descending so the table reads from
    // reliable to brutal.
    auto grid = core::logBandwidthGrid(
        options.getDouble("mtbf-lo") * nominal.toUs(),
        options.getDouble("mtbf-hi") * nominal.toUs(),
        static_cast<int>(options.getInt("per-decade")));
    std::reverse(grid.begin(), grid.end());

    const auto campaign = core::resilienceSweep(
        bundle, base, grid, variants,
        static_cast<std::uint32_t>(options.getInt("seeds")),
        static_cast<std::uint64_t>(options.getInt("seed")),
        threads);

    TablePrinter table({"MTBF/node", "xnominal", "mean orig",
                        "p95 orig", "failed%", "real speedup",
                        "ideal speedup"});
    for (const auto &point : campaign.points) {
        const auto &orig = point.cells[0];
        table.addRow(
            {strformat("%.0f us", point.mtbfUs),
             strformat("%.1f", point.mtbfUs / nominal.toUs()),
             humanTime(orig.meanTime), humanTime(orig.p95Time),
             strformat("%.0f", orig.failedFraction * 100.0),
             strformat("%+.1f%%", (meanSpeedup(point, 0) - 1.0) *
                                      100.0),
             strformat("%+.1f%%", (meanSpeedup(point, 1) - 1.0) *
                                      100.0)});
    }
    table.print(std::cout);

    // The crossover: walking from reliable to brutal, where does
    // the real overlapped variant first stop beating the original?
    bool crossed = false;
    for (std::size_t p = 0; p < campaign.points.size(); ++p) {
        if (meanSpeedup(campaign.points[p], 0) <= 1.0) {
            std::printf("\noverlap (real) stops paying at a "
                        "per-node MTBF of ~%.0f us (%.1fx the "
                        "nominal run)\n",
                        campaign.points[p].mtbfUs,
                        campaign.points[p].mtbfUs / nominal.toUs());
            crossed = true;
            break;
        }
    }
    if (!crossed)
        std::printf("\noverlap (real) still pays at the most "
                    "brutal point of the grid (MTBF %.1fx the "
                    "nominal run)\n",
                    campaign.points.back().mtbfUs / nominal.toUs());

    if (!options.getString("csv").empty()) {
        CsvWriter csv(options.getString("csv"),
                      {"mtbf_us", "variant", "mean_us", "p95_us",
                       "failed_fraction"});
        for (const auto &point : campaign.points) {
            for (std::size_t c = 0; c < point.cells.size(); ++c) {
                const auto &cell = point.cells[c];
                csv.addRow(
                    {strformat("%.4f", point.mtbfUs),
                     c == 0 ? "original"
                            : campaign.variants[c - 1].name,
                     strformat("%.3f", cell.meanTime.toUs()),
                     strformat("%.3f", cell.p95Time.toUs()),
                     strformat("%.4f", cell.failedFraction)});
            }
        }
        std::printf("CSV written to %s\n",
                    options.getString("csv").c_str());
    }
    return 0;
}
