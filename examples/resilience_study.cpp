/**
 * @file
 * The resilience crossover: how unreliable can the machine get
 * before communication/computation overlap stops paying?
 *
 * Overlap hides communication behind computation, but a fail-stop
 * fault rolls the replay back to its last coordinated checkpoint —
 * and the rework a restart replays is governed by wall progress,
 * not by how cleverly that progress overlapped. As the per-node
 * MTBF shrinks, every variant pays more rework and checkpoint
 * freezes; this study sweeps a failure-rate grid x seeds
 * (core::resilienceSweep) under a checkpoint/restart cost model
 * (src/res/) and tabulates where the overlapped variants' edge
 * over the original erodes.
 *
 * Per MTBF row: mean and p95 completion over seeds, the fraction
 * of seeds that died (always 0 with checkpointing unless the
 * restart budget blows), and the real/ideal overlap speedups on
 * the means. The same generated fault scenario is applied to the
 * original and every variant of a (rate, seed) cell, so rows
 * compare like with like.
 *
 * Failed cells are followed by the engine's forensic report — which
 * fault event killed the run and which ranks it left unfinished
 * (the structured FailureDiagnosis each campaign cell now carries).
 *
 * A second table compares checkpointing protocols: single-level
 * vs. hierarchical two-level checkpoint/restart swept over an
 * interval grid at one failure rate (core::protocolSweep), with the
 * swept optimal interval printed next to Daly's analytic optimum
 * tau* = sqrt(2 C M) - C.
 *
 *   ./resilience_study --app sweep3d [--chunks 16]
 *                      [--mtbf-lo 2] [--mtbf-hi 200]
 *                      [--per-decade 3] [--seeds 20]
 *                      [--interval 0] [--ckpt-cost 0]
 *                      [--restart-cost 0] [--proto-mtbf 10]
 *                      [--machine-mtbf 40] [--threads N]
 *                      [--csv out.csv] [--progress]
 *
 * Interval/cost/restart are microseconds; 0 auto-scales them to
 * the app's nominal run (interval = nominal/6, cost = interval/50,
 * restart = interval/10). --mtbf-lo/--mtbf-hi (the campaign grid),
 * --proto-mtbf (the protocol table's per-node MTBF) and
 * --machine-mtbf (the machine-wide crash rate exercising the
 * two-level protocol's global restores; 0 disables it) are
 * multiples of the nominal run, so every knob tracks the app
 * instead of hardcoding microseconds: a 2x-nominal per-node MTBF
 * is a brutal machine, a 200x-nominal one is merely flaky.
 */

#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "apps/app.hh"
#include "bench/bench_common.hh"
#include "core/analysis.hh"
#include "obs/progress.hh"
#include "util/options.hh"

using namespace ovlsim;

namespace {

double
meanSpeedup(const core::ResiliencePoint &point, std::size_t variant)
{
    const double original =
        static_cast<double>(point.cells[0].meanTime.ns());
    const double overlapped = static_cast<double>(
        point.cells[variant + 1].meanTime.ns());
    return overlapped > 0.0 ? original / overlapped : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    options.declare("app", "sweep3d",
                    "application: nas-bt nas-cg pop alya specfem "
                    "sweep3d");
    options.declare("chunks", "16", "chunks per message");
    options.declare("mtbf-lo", "2",
                    "lowest per-node MTBF, multiples of the "
                    "nominal run");
    options.declare("mtbf-hi", "200",
                    "highest per-node MTBF, multiples of the "
                    "nominal run");
    options.declare("per-decade", "3", "grid points per decade");
    options.declare("seeds", "20", "fault scenarios per grid point");
    options.declare("seed", "1", "campaign base seed");
    options.declare("interval", "0",
                    "checkpoint interval, us (0 = nominal/6)");
    options.declare("ckpt-cost", "0",
                    "checkpoint freeze cost, us (0 = interval/50)");
    options.declare("restart-cost", "0",
                    "restart cost, us (0 = interval/10)");
    options.declare("proto-mtbf", "10",
                    "protocol table's per-node MTBF, multiples of "
                    "the nominal run");
    options.declare("machine-mtbf", "40",
                    "machine-wide crash MTBF, multiples of the "
                    "nominal run (0 = no machine-wide faults)");
    options.declare("threads", "0",
                    "worker threads (0 = all hardware cores)");
    options.declare("csv", "", "optional CSV output path");
    options.declare("progress", "false",
                    "report campaign progress to stderr");
    options.parse(argc, argv);

    const auto &app = apps::findApp(options.getString("app"));
    std::printf("%s: %s\n", app.name().c_str(),
                app.description().c_str());

    const auto bundle = bench::traceApp(app.name());
    auto base = sim::platforms::topologyCluster(
        net::topologies::taperedFatTree(4, 0.5));
    const auto variants = core::standardVariants(
        static_cast<std::size_t>(options.getInt("chunks")));
    const int threads = ThreadPool::resolveThreads(
        static_cast<int>(options.getInt("threads")));

    // Scale the cost model and the MTBF grid to this app's nominal
    // run on this fabric.
    const SimTime nominal =
        sim::simulate(bundle.traces, base).totalTime;
    double interval_us = options.getDouble("interval");
    if (interval_us <= 0.0)
        interval_us = nominal.toUs() / 6.0;
    double ckpt_cost_us = options.getDouble("ckpt-cost");
    if (ckpt_cost_us <= 0.0)
        ckpt_cost_us = interval_us / 50.0;
    double restart_cost_us = options.getDouble("restart-cost");
    if (restart_cost_us <= 0.0)
        restart_cost_us = interval_us / 10.0;
    base.checkpointIntervalUs = interval_us;
    base.checkpointCostUs = ckpt_cost_us;
    base.restartCostUs = restart_cost_us;
    std::printf("nominal run on %s: %.1f us; checkpoint every "
                "%.1f us costing %.2f us, restart %.2f us\n",
                base.name.c_str(), nominal.toUs(), interval_us,
                ckpt_cost_us, restart_cost_us);

    // Log-spaced per-node MTBF grid (the log-grid helper is not
    // bandwidth-specific), descending so the table reads from
    // reliable to brutal.
    auto grid = core::logBandwidthGrid(
        options.getDouble("mtbf-lo") * nominal.toUs(),
        options.getDouble("mtbf-hi") * nominal.toUs(),
        static_cast<int>(options.getInt("per-decade")));
    std::reverse(grid.begin(), grid.end());

    core::CampaignObs cobs;
    std::unique_ptr<obs::Progress> progress;
    if (options.getBool("progress")) {
        // One tick per (rate, seed) job of the campaign.
        progress = std::make_unique<obs::Progress>(
            "resilience sweep",
            grid.size() *
                static_cast<std::size_t>(options.getInt("seeds")));
        cobs.progress = progress.get();
    }

    const auto campaign = core::resilienceSweep(
        bundle, base, grid, variants,
        static_cast<std::uint32_t>(options.getInt("seeds")),
        static_cast<std::uint64_t>(options.getInt("seed")),
        threads, &cobs);
    if (progress != nullptr)
        progress->finish();

    TablePrinter table({"MTBF/node", "xnominal", "mean orig",
                        "p95 orig", "failed%", "real speedup",
                        "ideal speedup"});
    for (const auto &point : campaign.points) {
        const auto &orig = point.cells[0];
        table.addRow(
            {strformat("%.0f us", point.mtbfUs),
             strformat("%.1f", point.mtbfUs / nominal.toUs()),
             humanTime(orig.meanTime), humanTime(orig.p95Time),
             strformat("%.0f", orig.failedFraction * 100.0),
             strformat("%+.1f%%", (meanSpeedup(point, 0) - 1.0) *
                                      100.0),
             strformat("%+.1f%%", (meanSpeedup(point, 1) - 1.0) *
                                      100.0)});
    }
    table.print(std::cout);

    // The crossover: walking from reliable to brutal, where does
    // the real overlapped variant first stop beating the original?
    bool crossed = false;
    for (std::size_t p = 0; p < campaign.points.size(); ++p) {
        if (meanSpeedup(campaign.points[p], 0) <= 1.0) {
            std::printf("\noverlap (real) stops paying at a "
                        "per-node MTBF of ~%.0f us (%.1fx the "
                        "nominal run)\n",
                        campaign.points[p].mtbfUs,
                        campaign.points[p].mtbfUs / nominal.toUs());
            crossed = true;
            break;
        }
    }
    if (!crossed)
        std::printf("\noverlap (real) still pays at the most "
                    "brutal point of the grid (MTBF %.1fx the "
                    "nominal run)\n",
                    campaign.points.back().mtbfUs / nominal.toUs());

    // Failed cells carry the engine's forensic report: which fault
    // event killed the run and which ranks it left unfinished. One
    // exemplar seed per failed cell keeps the report readable.
    bool anyFailed = false;
    for (const auto &point : campaign.points) {
        for (std::size_t c = 0; c < point.cells.size(); ++c) {
            const auto &cell = point.cells[c];
            if (cell.failedFraction <= 0.0)
                continue;
            for (std::size_t s = 0; s < cell.seedTimes.size(); ++s) {
                if (cell.seedTimes[s] != SimTime::max())
                    continue;
                if (!anyFailed)
                    std::printf("\nfailed cells (one exemplar seed "
                                "each):\n");
                anyFailed = true;
                std::printf(
                    "  MTBF %.0f us, %s, seed %zu: %s\n",
                    point.mtbfUs,
                    c == 0 ? "original"
                           : campaign.variants[c - 1].name.c_str(),
                    s, cell.seedDiagnoses[s].toString().c_str());
                break;
            }
        }
    }

    // Protocol comparison: single-level vs. hierarchical two-level
    // checkpointing over an interval grid at one failure rate. The
    // two-level protocol takes a cheap local snapshot every swept
    // interval and an expensive global one every fourth, and only
    // the global one survives a machine-wide crash.
    const double proto_mtbf_us =
        options.getDouble("proto-mtbf") * nominal.toUs();
    const double machine_mtbf_us =
        options.getDouble("machine-mtbf") * nominal.toUs();
    auto intervalGrid = core::logBandwidthGrid(
        interval_us / 8.0, interval_us * 8.0, 4);
    const std::vector<core::CheckpointProtocol> protocols{
        {"single-level", ckpt_cost_us, restart_cost_us, 0.0, 0.0,
         0.0},
        {"two-level", ckpt_cost_us, restart_cost_us, 4.0,
         4.0 * ckpt_cost_us, 4.0 * restart_cost_us},
    };
    const auto proto = core::protocolSweep(
        bundle, base, proto_mtbf_us, intervalGrid, protocols,
        static_cast<std::uint32_t>(options.getInt("seeds")),
        static_cast<std::uint64_t>(options.getInt("seed")),
        machine_mtbf_us, threads);

    std::printf("\nprotocol comparison at per-node MTBF %.0f us"
                " (machine-wide %.0f us):\n",
                proto.mtbfUs, proto.machineMtbfUs);
    TablePrinter ptable({"protocol", "best interval", "Daly tau*",
                         "mean @best", "failed%"});
    for (const auto &row : proto.rows) {
        SimTime bestMean;
        double bestFailed = 0.0;
        for (const auto &cell : row.cells) {
            if (cell.intervalUs == row.bestIntervalUs) {
                bestMean = cell.cell.meanTime;
                bestFailed = cell.cell.failedFraction;
            }
        }
        ptable.addRow(
            {row.protocol.name,
             strformat("%.1f us", row.bestIntervalUs),
             strformat("%.1f us", row.dalyIntervalUs),
             humanTime(bestMean),
             strformat("%.0f", bestFailed * 100.0)});
    }
    ptable.print(std::cout);

    if (!options.getString("csv").empty()) {
        CsvWriter csv(options.getString("csv"),
                      {"mtbf_us", "variant", "mean_us", "p95_us",
                       "failed_fraction"});
        for (const auto &point : campaign.points) {
            for (std::size_t c = 0; c < point.cells.size(); ++c) {
                const auto &cell = point.cells[c];
                csv.addRow(
                    {strformat("%.4f", point.mtbfUs),
                     c == 0 ? "original"
                            : campaign.variants[c - 1].name,
                     strformat("%.3f", cell.meanTime.toUs()),
                     strformat("%.3f", cell.p95Time.toUs()),
                     strformat("%.4f", cell.failedFraction)});
            }
        }
        std::printf("CSV written to %s\n",
                    options.getString("csv").c_str());
    }
    return 0;
}
