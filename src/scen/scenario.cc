#include "scenario.hh"

#include <algorithm>
#include <fstream>
#include <istream>
#include <numeric>
#include <ostream>
#include <sstream>

#include "util/strings.hh"

namespace ovlsim::scen {

const char *
scenEventKindName(ScenEventKind kind)
{
    switch (kind) {
      case ScenEventKind::degrade: return "degrade";
      case ScenEventKind::recover: return "recover";
      case ScenEventKind::fail: return "fail";
      case ScenEventKind::background: return "background";
    }
    return "unknown";
}

const char *
scenTargetName(ScenTarget target)
{
    switch (target) {
      case ScenTarget::all: return "all";
      case ScenTarget::node: return "node";
      case ScenTarget::route: return "route";
      case ScenTarget::link: return "link";
    }
    return "unknown";
}

const char *
failSemanticsName(FailSemantics semantics)
{
    switch (semantics) {
      case FailSemantics::failStop: return "fail-stop";
      case FailSemantics::stall: return "stall";
      case FailSemantics::reroute: return "reroute";
    }
    return "unknown";
}

FailSemantics
failSemanticsFromName(const std::string &name)
{
    if (name == "fail-stop")
        return FailSemantics::failStop;
    if (name == "stall")
        return FailSemantics::stall;
    if (name == "reroute")
        return FailSemantics::reroute;
    fatal("unknown failure semantics '", name,
          "' (expected fail-stop, stall or reroute)");
}

std::string
ScenarioEvent::describe() const
{
    std::string scope;
    switch (target) {
      case ScenTarget::all:
        scope = "all";
        break;
      case ScenTarget::node:
        scope = strformat("node %d", nodeA);
        break;
      case ScenTarget::route:
        scope = strformat("route %d %d", nodeA, nodeB);
        break;
      case ScenTarget::link:
        scope = strformat("link %d %d", nodeA, nodeB);
        break;
    }
    switch (kind) {
      case ScenEventKind::degrade:
        return strformat("at %.3fus degrade %s bw %g lat %g",
                         time.toUs(), scope.c_str(),
                         bandwidthFactor, latencyFactor);
      case ScenEventKind::recover:
        return strformat("at %.3fus recover %s", time.toUs(),
                         scope.c_str());
      case ScenEventKind::fail:
        return strformat("at %.3fus fail %s %s", time.toUs(),
                         scope.c_str(),
                         failSemanticsName(semantics));
      case ScenEventKind::background:
        return strformat("at %.3fus background %d %d %llu",
                         time.toUs(), nodeA, nodeB,
                         static_cast<unsigned long long>(bytes));
    }
    return "unknown scenario event";
}

void
ScenarioConfig::validate() const
{
    for (const ScenarioEvent &ev : events) {
        if (ev.time < SimTime::zero()) {
            fatal("scenario: event times must be non-negative (",
                  ev.describe(), ")");
        }
        switch (ev.kind) {
          case ScenEventKind::degrade:
            if (ev.bandwidthFactor <= 0.0 || ev.latencyFactor <= 0.0) {
                fatal("scenario: degrade factors must be positive "
                      "(", ev.describe(),
                      "); use `fail ... stall` to freeze a link");
            }
            break;
          case ScenEventKind::background:
            if (ev.bytes == 0) {
                fatal("scenario: background flows need a payload (",
                      ev.describe(), ")");
            }
            if (ev.nodeA == ev.nodeB) {
                fatal("scenario: background flows must cross the "
                      "network (", ev.describe(), ")");
            }
            break;
          case ScenEventKind::recover:
          case ScenEventKind::fail:
            break;
        }
        if (ev.target != ScenTarget::all && ev.nodeA < 0) {
            fatal("scenario: event names no target node (",
                  ev.describe(), ")");
        }
        if ((ev.target == ScenTarget::route ||
             ev.target == ScenTarget::link) &&
            (ev.nodeB < 0 || ev.nodeA == ev.nodeB)) {
            fatal("scenario: route/link targets need two distinct "
                  "nodes (", ev.describe(), ")");
        }
    }
}

namespace {

/** Tokenize one event line on arbitrary whitespace. */
std::vector<std::string>
tokensOf(const std::string &line)
{
    std::istringstream in(line);
    std::vector<std::string> tokens;
    std::string token;
    while (in >> token)
        tokens.push_back(token);
    return tokens;
}

} // namespace

ScenarioConfig
readScenario(std::istream &in, const std::string &source)
{
    ScenarioConfig config;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const std::size_t comment = line.find('#');
        if (comment != std::string::npos)
            line.resize(comment);
        const auto tokens = tokensOf(line);
        if (tokens.empty())
            continue;
        try {
            if (tokens[0] != "at" || tokens.size() < 3) {
                fatal("expected `at <time_us> "
                      "<degrade|recover|fail|background> ...`");
            }
            ScenarioEvent ev;
            // Times are microseconds; an explicit `ns` suffix
            // bypasses the double conversion so any instant on the
            // integer-ns clock round-trips exactly.
            const std::string &when = tokens[1];
            if (when.size() > 2 &&
                when.compare(when.size() - 2, 2, "ns") == 0) {
                ev.time = SimTime::fromNs(
                    parseInt(when.substr(0, when.size() - 2)));
            } else {
                ev.time = SimTime::fromUs(parseDouble(when));
            }
            const std::string &verb = tokens[2];
            std::size_t pos = 3;
            const auto need = [&](std::size_t extra,
                                  const char *what) {
                if (pos + extra > tokens.size())
                    fatal("truncated ", verb, " event: missing ",
                          what);
            };
            const auto parseTarget = [&]() {
                need(1, "target");
                const std::string &t = tokens[pos++];
                if (t == "all") {
                    ev.target = ScenTarget::all;
                } else if (t == "node") {
                    need(1, "node id");
                    ev.target = ScenTarget::node;
                    ev.nodeA = static_cast<int>(
                        parseInt(tokens[pos++]));
                } else if (t == "route" || t == "link") {
                    need(2, "node pair");
                    ev.target = t == "route" ? ScenTarget::route
                                             : ScenTarget::link;
                    ev.nodeA = static_cast<int>(
                        parseInt(tokens[pos++]));
                    ev.nodeB = static_cast<int>(
                        parseInt(tokens[pos++]));
                } else {
                    fatal("unknown target '", t,
                          "' (expected all, node, route or link)");
                }
            };
            if (verb == "degrade") {
                ev.kind = ScenEventKind::degrade;
                parseTarget();
                while (pos < tokens.size()) {
                    const std::string &key = tokens[pos++];
                    need(1, "factor value");
                    if (key == "bw") {
                        ev.bandwidthFactor =
                            parseDouble(tokens[pos++]);
                    } else if (key == "lat") {
                        ev.latencyFactor =
                            parseDouble(tokens[pos++]);
                    } else {
                        fatal("unknown degrade key '", key,
                              "' (expected bw or lat)");
                    }
                }
            } else if (verb == "recover") {
                ev.kind = ScenEventKind::recover;
                parseTarget();
            } else if (verb == "fail") {
                ev.kind = ScenEventKind::fail;
                parseTarget();
                need(1, "failure semantics");
                ev.semantics =
                    failSemanticsFromName(tokens[pos++]);
            } else if (verb == "background") {
                ev.kind = ScenEventKind::background;
                ev.target = ScenTarget::route;
                need(3, "src dst bytes");
                ev.nodeA = static_cast<int>(parseInt(tokens[pos++]));
                ev.nodeB = static_cast<int>(parseInt(tokens[pos++]));
                ev.bytes = static_cast<Bytes>(
                    parseInt(tokens[pos++]));
            } else {
                fatal("unknown event '", verb,
                      "' (expected degrade, recover, fail or "
                      "background)");
            }
            if (pos != tokens.size())
                fatal("trailing tokens after event");
            config.events.push_back(ev);
        } catch (const FatalError &err) {
            fatal(source, " line ", line_no, ": ", err.what());
        }
    }
    config.validate();
    return config;
}

ScenarioConfig
readScenarioFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open scenario file '", path, "'");
    ScenarioConfig config = readScenario(in, path);
    config.sourcePath = path;
    return config;
}

void
writeScenario(const ScenarioConfig &config, std::ostream &out)
{
    out << "# ovlsim scenario\n";
    for (const ScenarioEvent &ev : config.events) {
        // Whole microseconds stay readable; anything finer is
        // written on the ns clock so it round-trips exactly.
        const std::int64_t ns = ev.time.ns();
        const std::string when = ns % 1000 == 0
            ? strformat("%lld", static_cast<long long>(ns / 1000))
            : strformat("%lldns", static_cast<long long>(ns));
        std::string scope;
        switch (ev.target) {
          case ScenTarget::all:
            scope = "all";
            break;
          case ScenTarget::node:
            scope = strformat("node %d", ev.nodeA);
            break;
          case ScenTarget::route:
            scope = strformat("route %d %d", ev.nodeA, ev.nodeB);
            break;
          case ScenTarget::link:
            scope = strformat("link %d %d", ev.nodeA, ev.nodeB);
            break;
        }
        switch (ev.kind) {
          case ScenEventKind::degrade:
            out << strformat("at %s degrade %s bw %.17g lat "
                             "%.17g\n",
                             when.c_str(), scope.c_str(),
                             ev.bandwidthFactor, ev.latencyFactor);
            break;
          case ScenEventKind::recover:
            out << strformat("at %s recover %s\n", when.c_str(),
                             scope.c_str());
            break;
          case ScenEventKind::fail:
            out << strformat("at %s fail %s %s\n", when.c_str(),
                             scope.c_str(),
                             failSemanticsName(ev.semantics));
            break;
          case ScenEventKind::background:
            out << strformat("at %s background %d %d %llu\n",
                             when.c_str(), ev.nodeA, ev.nodeB,
                             static_cast<unsigned long long>(
                                 ev.bytes));
            break;
        }
    }
}

CompiledScenario
compileScenario(const ScenarioConfig &config,
                const net::CompiledTopology *topo, int nodes)
{
    config.validate();
    const bool flat = topo == nullptr || topo->linkCount() == 0;

    CompiledScenario compiled;
    compiled.events_ = config.events;
    for (const ScenarioEvent &ev : compiled.events_) {
        const bool names_nodes = ev.target != ScenTarget::all;
        if (names_nodes &&
            (ev.nodeA >= nodes ||
             (ev.nodeB >= 0 && ev.nodeB >= nodes))) {
            fatal("scenario: event targets a node beyond the ",
                  nodes, "-node machine (", ev.describe(), ")");
        }
        if (flat && ev.kind == ScenEventKind::fail &&
            ev.semantics == FailSemantics::reroute) {
            fatal("scenario: reroute semantics needs a routed "
                  "topology with path diversity; the flat bus has "
                  "none (", ev.describe(), ")");
        }
    }

    // Sort by time, declaration order breaking ties — the stream
    // the engine merges into its heap.
    std::vector<std::uint32_t> order(compiled.events_.size());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return compiled.events_[a].time <
                             compiled.events_[b].time;
                     });
    {
        std::vector<ScenarioEvent> sorted;
        sorted.reserve(compiled.events_.size());
        for (const std::uint32_t i : order)
            sorted.push_back(compiled.events_[i]);
        compiled.events_ = std::move(sorted);
    }

    // Resolve link sets against the compiled topology.
    compiled.linkBegin_.assign(1, 0);
    for (const ScenarioEvent &ev : compiled.events_) {
        if (!flat && ev.kind != ScenEventKind::background) {
            std::vector<std::uint32_t> links;
            switch (ev.target) {
              case ScenTarget::all:
                links.resize(topo->linkCount());
                std::iota(links.begin(), links.end(), 0u);
                break;
              case ScenTarget::node:
                for (std::uint32_t l = 0; l < topo->linkCount();
                     ++l) {
                    const auto n =
                        static_cast<std::uint32_t>(ev.nodeA);
                    if (topo->linkFrom(l) == n ||
                        topo->linkTo(l) == n)
                        links.push_back(l);
                }
                break;
              case ScenTarget::route:
              case ScenTarget::link: {
                const auto route =
                    topo->route(ev.nodeA, ev.nodeB);
                for (const std::uint32_t l : route) {
                    if (ev.target == ScenTarget::link &&
                        topo->isHostLink(l))
                        continue;
                    links.push_back(l);
                }
                if (links.empty()) {
                    fatal("scenario: no fabric links between "
                          "nodes ", ev.nodeA, " and ", ev.nodeB,
                          " (", ev.describe(),
                          "); use `route` to include the NICs");
                }
                break;
              }
            }
            std::sort(links.begin(), links.end());
            links.erase(std::unique(links.begin(), links.end()),
                        links.end());
            compiled.linkIds_.insert(compiled.linkIds_.end(),
                                     links.begin(), links.end());
        }
        compiled.linkBegin_.push_back(
            static_cast<std::uint32_t>(compiled.linkIds_.size()));
    }

    // Match every recover with the most recent unmatched
    // degrade/fail of the same scope.
    compiled.match_.assign(compiled.events_.size(),
                           CompiledScenario::npos);
    for (std::size_t i = 0; i < compiled.events_.size(); ++i) {
        const ScenarioEvent &ev = compiled.events_[i];
        if (ev.kind != ScenEventKind::recover)
            continue;
        bool matched = false;
        for (std::size_t j = i; j-- > 0;) {
            const ScenarioEvent &prior = compiled.events_[j];
            if ((prior.kind != ScenEventKind::degrade &&
                 prior.kind != ScenEventKind::fail) ||
                !prior.sameScope(ev) ||
                compiled.match_[j] != CompiledScenario::npos)
                continue;
            if (prior.kind == ScenEventKind::fail &&
                prior.semantics == FailSemantics::failStop) {
                fatal("scenario: cannot recover a fail-stop event "
                      "(", ev.describe(), " would undo ",
                      prior.describe(), ")");
            }
            compiled.match_[i] = static_cast<std::uint32_t>(j);
            compiled.match_[j] = static_cast<std::uint32_t>(i);
            matched = true;
            break;
        }
        if (!matched) {
            fatal("scenario: recover with nothing to undo (",
                  ev.describe(), ")");
        }
    }
    return compiled;
}

std::string
FailureDiagnosis::toString() const
{
    std::string detail = strformat(
        "scenario failure `%s` fired at %.3fus with %zu rank(s) "
        "unfinished:",
        event.c_str(), time.toUs(), blockedRanks.size());
    for (const BlockedRank &r : blockedRanks) {
        detail += strformat("\n  rank %d: state=%s pc=%zu/%zu",
                            r.rank, r.state.c_str(), r.pc, r.end);
    }
    return detail;
}

FailureError::FailureError(FailureDiagnosis diagnosis)
    : FatalError(diagnosis.toString()),
      diag_(std::make_shared<const FailureDiagnosis>(
          std::move(diagnosis)))
{}

} // namespace ovlsim::scen
