/**
 * @file
 * Dynamic platform scenarios: fault injection, link degradation and
 * background traffic for the replay engine.
 *
 * A static platform answers "does overlap hide communication on
 * this machine"; real machines degrade mid-run — links slow down
 * under external usage, NICs and switches die (the dynamic-platform
 * use case SimGrid names as central). A ScenarioConfig declares a
 * timestamped list of such events, parsed from a small text format
 * (referenced from platform files via `scenario_file = ...`) or
 * built programmatically:
 *
 *     # time is in microseconds of simulated time
 *     at 1500 degrade all bw 0.5 lat 2.0
 *     at 3000 recover all
 *     at 2000 fail link 0 7 stall
 *     at 2500 recover link 0 7
 *     at 1000 fail node 3 fail-stop
 *     at  800 fail route 2 5 reroute
 *     at  500 background 0 7 1048576
 *
 * Targets: `all` (every link), `node N` (N's injection/reception
 * links), `route A B` (the full compiled A->B route including the
 * NICs), `link A B` (only the fabric links of that route). Failure
 * semantics: `fail-stop` terminates the replay with a structured
 * FailureDiagnosis naming the event and every unfinished rank
 * (mirroring the deadlock diagnosis); `stall` freezes affected
 * flows until the matching `recover`; `reroute` re-resolves routes
 * around the dead links where the topology has path diversity and
 * raises FatalError where it does not. `background <src> <dst>
 * <bytes>` injects a one-shot flow that occupies links without
 * belonging to the app.
 *
 * compileScenario() lowers a config once into a CompiledScenario —
 * events sorted by time with their link sets resolved against the
 * compiled topology and every recover matched to its event — the
 * same compile-once philosophy as sim/program.hh and
 * net::compileTopology. The engine merges the stream into its event
 * heap behind a seam next to netMode_ and applies it to both the
 * flat-bus and LinkNetwork cost paths.
 */

#ifndef OVLSIM_SCEN_SCENARIO_HH
#define OVLSIM_SCEN_SCENARIO_HH

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/topology.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace ovlsim::scen {

/** What a scenario event does. */
enum class ScenEventKind : std::uint8_t {
    /** Scale a link set's bandwidth/latency until recovered. */
    degrade,
    /** Undo the matching degrade or stall/reroute failure. */
    recover,
    /** Kill a link set with configurable semantics. */
    fail,
    /** One-shot flow occupying links without belonging to the app. */
    background,
};

/** What a degrade/fail/recover event applies to. */
enum class ScenTarget : std::uint8_t {
    /** Every link of the fabric (`all`). */
    all,
    /** Node A's injection and reception (NIC) links. */
    node,
    /** The full compiled A -> B route, NICs included. */
    route,
    /** Only the fabric links of the A -> B route. */
    link,
};

/** What happens to traffic crossing a failed link set. */
enum class FailSemantics : std::uint8_t {
    /** Terminate the replay with a FailureDiagnosis. */
    failStop,
    /** Freeze affected flows until the matching recover. */
    stall,
    /** Route around the dead links; FatalError without diversity. */
    reroute,
};

/** Stable names (scenario files, reports). */
const char *scenEventKindName(ScenEventKind kind);
const char *scenTargetName(ScenTarget target);
const char *failSemanticsName(FailSemantics semantics);
FailSemantics failSemanticsFromName(const std::string &name);

/** One timestamped scenario event. */
struct ScenarioEvent
{
    SimTime time;
    ScenEventKind kind = ScenEventKind::degrade;
    ScenTarget target = ScenTarget::all;
    /** Target node (node) or route source (route/link/background). */
    int nodeA = -1;
    /** Route destination (route/link/background). */
    int nodeB = -1;
    /** Capacity multiplier while a degrade is active. */
    double bandwidthFactor = 1.0;
    /** Latency multiplier while a degrade is active. */
    double latencyFactor = 1.0;
    FailSemantics semantics = FailSemantics::failStop;
    /** Background payload size. */
    Bytes bytes = 0;

    /** Same scope? (what a recover must name to match). */
    bool
    sameScope(const ScenarioEvent &other) const
    {
        return target == other.target && nodeA == other.nodeA &&
            nodeB == other.nodeB;
    }

    /**
     * Flat-bus scope test: does a transfer src -> dst (node ids)
     * fall under this event? `all` covers every remote transfer,
     * `node` anything touching the node, `route`/`link` exactly
     * the ordered pair.
     */
    bool
    matchesPair(int src, int dst) const
    {
        switch (target) {
          case ScenTarget::all:
            return true;
          case ScenTarget::node:
            return src == nodeA || dst == nodeA;
          case ScenTarget::route:
          case ScenTarget::link:
            return src == nodeA && dst == nodeB;
        }
        return false;
    }

    /** One-line description for diagnoses and reports. */
    std::string describe() const;

    bool operator==(const ScenarioEvent &) const = default;
};

/** A declarative scenario: an unordered bag of events. */
struct ScenarioConfig
{
    /** Where the events came from (round-trips the platform-file
     * `scenario_file` key; empty for programmatic configs). */
    std::string sourcePath;
    std::vector<ScenarioEvent> events;

    bool empty() const { return events.empty(); }

    /** Range checks; throws FatalError on nonsense values. */
    void validate() const;

    bool operator==(const ScenarioConfig &) const = default;
};

/**
 * Parse the event-list format. `source` names the stream in parse
 * errors (file name + line number).
 */
ScenarioConfig readScenario(std::istream &in,
                            const std::string &source = "scenario");

/** Parse a scenario file; remembers `path` as sourcePath. */
ScenarioConfig readScenarioFile(const std::string &path);

/** Emit a config in the readScenario() format (round-trips). */
void writeScenario(const ScenarioConfig &config, std::ostream &out);

/**
 * A scenario lowered against one compiled topology: events sorted
 * by (time, declaration order) with per-event resolved link sets
 * and recover events matched to what they undo. Immutable; the
 * engine replays any number of times against it.
 */
class CompiledScenario
{
  public:
    static constexpr std::uint32_t npos =
        std::numeric_limits<std::uint32_t>::max();

    CompiledScenario() = default;

    bool empty() const { return events_.empty(); }
    std::size_t eventCount() const { return events_.size(); }

    const ScenarioEvent &
    event(std::size_t i) const
    {
        return events_[i];
    }

    /** Sorted link ids the event covers (empty on flat-bus). */
    std::span<const std::uint32_t>
    linksOf(std::size_t i) const
    {
        return {linkIds_.data() + linkBegin_[i],
                linkIds_.data() + linkBegin_[i + 1]};
    }

    bool
    linkSetContains(std::size_t i, std::uint32_t link) const
    {
        const auto links = linksOf(i);
        return std::binary_search(links.begin(), links.end(), link);
    }

    /**
     * For a recover: the index of the degrade/fail it undoes. For a
     * degrade or stall/reroute fail: the index of its recover, npos
     * when it never recovers.
     */
    std::uint32_t matchOf(std::size_t i) const { return match_[i]; }

    /** When event i's effect ends; SimTime::max() when never. */
    SimTime
    recoveryTimeOf(std::size_t i) const
    {
        const std::uint32_t m = match_[i];
        return m == npos ? SimTime::max() : events_[m].time;
    }

  private:
    friend CompiledScenario compileScenario(
        const ScenarioConfig &config,
        const net::CompiledTopology *topo, int nodes);

    std::vector<ScenarioEvent> events_;
    /** CSR link sets, each window sorted ascending. */
    std::vector<std::uint32_t> linkBegin_;
    std::vector<std::uint32_t> linkIds_;
    std::vector<std::uint32_t> match_;
};

/**
 * Lower `config` for a machine of `nodes` nodes. `topo` is the
 * compiled topology the replay runs on, or nullptr/flat for the
 * classic bus path (link sets stay empty and events apply by node
 * scope). Throws FatalError for out-of-range nodes, recover events
 * with nothing to undo, reroute on a flat bus, or `link` targets
 * with no fabric links between the endpoints.
 */
CompiledScenario compileScenario(const ScenarioConfig &config,
                                 const net::CompiledTopology *topo,
                                 int nodes);

/** One unfinished rank at the instant a fail-stop event fired. */
struct BlockedRank
{
    Rank rank = 0;
    /** Engine rank state name ("recv-blocked", "running", ...). */
    std::string state;
    std::size_t pc = 0;
    std::size_t end = 0;
};

/**
 * Structured report of a fail-stop termination: which event fired,
 * when, and every rank left unfinished — the failure-semantics
 * mirror of the engine's deadlock diagnosis.
 */
struct FailureDiagnosis
{
    /** describe() of the fail event. */
    std::string event;
    SimTime time;
    std::vector<BlockedRank> blockedRanks;

    std::string toString() const;
};

/**
 * Thrown when a fail-stop scenario event fires. A FatalError (the
 * scenario asked for termination; the replay itself is healthy)
 * carrying the structured diagnosis.
 */
class FailureError : public FatalError
{
  public:
    explicit FailureError(FailureDiagnosis diagnosis);

    const FailureDiagnosis &diagnosis() const { return *diag_; }

  private:
    /** Shared so the exception stays nothrow-copyable. */
    std::shared_ptr<const FailureDiagnosis> diag_;
};

} // namespace ovlsim::scen

#endif // OVLSIM_SCEN_SCENARIO_HH
