/**
 * @file
 * POP (Parallel Ocean Program) proxy.
 *
 * Models one ocean time step: a baroclinic phase (deep 3D compute
 * with a four-neighbour 2D halo exchange of narrow ghost strips) and
 * a barotropic phase (an iterative 2D solver whose every inner
 * iteration performs a tiny halo exchange plus a scalar all-reduce).
 * The many small latency-bound messages and the all-reduce per inner
 * iteration make POP a case where even ideal overlap buys little,
 * matching the paper's ~10% figure.
 */

#include "apps/app.hh"

#include "util/logging.hh"

namespace ovlsim::apps {

namespace {

class Pop final : public Application
{
  public:
    std::string name() const override { return "pop"; }

    std::string
    description() const override
    {
        return "POP proxy: baroclinic 3D step + barotropic 2D "
               "solver with tiny halos and all-reduces";
    }

    AppParams
    defaults() const override
    {
        AppParams params;
        params.ranks = 16;
        params.iterations = 3;
        params.size = 128;
        return params;
    }

    void
    validate(const AppParams &params) const override
    {
        Application::validate(params);
        const Grid2D grid = Grid2D::closestFactors(params.ranks);
        if (grid.px < 2 || grid.py < 2)
            fatal(name(), ": rank count must factor into a 2D "
                          "grid with both sides >= 2");
    }

    vm::RankProgram
    program(const AppParams &params) const override
    {
        validate(params);
        return [params](vm::VmContext &ctx) { run(ctx, params); };
    }

  private:
    static void
    run(vm::VmContext &ctx, const AppParams &params)
    {
        const Grid2D grid = Grid2D::closestFactors(params.ranks);
        const int gx = grid.x(ctx.rank());
        const int gy = grid.y(ctx.rank());
        const Rank xlo =
            grid.inside(gx - 1, gy) ? grid.at(gx - 1, gy) : -1;
        const Rank xhi =
            grid.inside(gx + 1, gy) ? grid.at(gx + 1, gy) : -1;
        const Rank ylo =
            grid.inside(gx, gy - 1) ? grid.at(gx, gy - 1) : -1;
        const Rank yhi =
            grid.inside(gx, gy + 1) ? grid.at(gx, gy + 1) : -1;

        const int nx = std::max(params.size / grid.px, 4);
        const int ny = std::max(params.size / grid.py, 4);
        const int k_levels = 40;
        const double cells_2d = static_cast<double>(nx) * ny;

        // Ghost strips: 2 rows/columns of 12 3D tracer fields
        // across the vertical levels.
        const Bytes strip_x = scaleBytes(
            static_cast<Bytes>(ny) * 2 * 12 * 8 * 2,
            params.messageScale);
        const Bytes strip_y = scaleBytes(
            static_cast<Bytes>(nx) * 2 * 12 * 8 * 2,
            params.messageScale);
        // Barotropic inner halo: one row of one field.
        const Bytes inner_x = scaleBytes(
            static_cast<Bytes>(ny) * 8, params.messageScale);
        const Bytes inner_y = scaleBytes(
            static_cast<Bytes>(nx) * 8, params.messageScale);

        const Instr baroclinic = scaleInstr(
            cells_2d * k_levels * 26.0, params.computeScale);
        const Instr inner_compute =
            scaleInstr(cells_2d * 4.0, params.computeScale);
        const int inner_iters = 8;
        const double pack_ipb = 0.6;

        const auto sxl = ctx.allocBuffer("send-w", strip_x);
        const auto sxh = ctx.allocBuffer("send-e", strip_x);
        const auto rxl = ctx.allocBuffer("recv-w", strip_x);
        const auto rxh = ctx.allocBuffer("recv-e", strip_x);
        const auto syl = ctx.allocBuffer("send-s", strip_y);
        const auto syh = ctx.allocBuffer("send-n", strip_y);
        const auto ryl = ctx.allocBuffer("recv-s", strip_y);
        const auto ryh = ctx.allocBuffer("recv-n", strip_y);
        const auto bxl = ctx.allocBuffer("bt-send-w", inner_x);
        const auto bxh = ctx.allocBuffer("bt-send-e", inner_x);
        const auto cxl = ctx.allocBuffer("bt-recv-w", inner_x);
        const auto cxh = ctx.allocBuffer("bt-recv-e", inner_x);
        const auto byl = ctx.allocBuffer("bt-send-s", inner_y);
        const auto byh = ctx.allocBuffer("bt-send-n", inner_y);
        const auto cyl = ctx.allocBuffer("bt-recv-s", inner_y);
        const auto cyh = ctx.allocBuffer("bt-recv-n", inner_y);

        for (int it = 0; it < params.iterations; ++it) {
            // --- baroclinic: deep compute, then ghost update ---
            ctx.compute(baroclinic);
            if (xlo >= 0)
                ctx.computeStore(sxl, 0, strip_x, pack_ipb, 4);
            if (xhi >= 0)
                ctx.computeStore(sxh, 0, strip_x, pack_ipb, 4);
            if (ylo >= 0)
                ctx.computeStore(syl, 0, strip_y, pack_ipb, 4);
            if (yhi >= 0)
                ctx.computeStore(syh, 0, strip_y, pack_ipb, 4);
            haloExchange(ctx,
                         {{xlo, sxl, rxl, strip_x, 400, 401},
                          {xhi, sxh, rxh, strip_x, 401, 400},
                          {ylo, syl, ryl, strip_y, 402, 403},
                          {yhi, syh, ryh, strip_y, 403, 402}});
            if (xlo >= 0)
                ctx.computeLoad(rxl, 0, strip_x, pack_ipb, 4);
            if (xhi >= 0)
                ctx.computeLoad(rxh, 0, strip_x, pack_ipb, 4);
            if (ylo >= 0)
                ctx.computeLoad(ryl, 0, strip_y, pack_ipb, 4);
            if (yhi >= 0)
                ctx.computeLoad(ryh, 0, strip_y, pack_ipb, 4);

            // --- barotropic: latency-bound inner solver ---
            for (int j = 0; j < inner_iters; ++j) {
                ctx.compute(inner_compute);
                if (xlo >= 0)
                    ctx.computeStore(bxl, 0, inner_x, pack_ipb, 2);
                if (xhi >= 0)
                    ctx.computeStore(bxh, 0, inner_x, pack_ipb, 2);
                if (ylo >= 0)
                    ctx.computeStore(byl, 0, inner_y, pack_ipb, 2);
                if (yhi >= 0)
                    ctx.computeStore(byh, 0, inner_y, pack_ipb, 2);
                haloExchange(
                    ctx,
                    {{xlo, bxl, cxl, inner_x, 500, 501},
                     {xhi, bxh, cxh, inner_x, 501, 500},
                     {ylo, byl, cyl, inner_y, 502, 503},
                     {yhi, byh, cyh, inner_y, 503, 502}});
                if (xlo >= 0)
                    ctx.computeLoad(cxl, 0, inner_x, pack_ipb, 2);
                if (xhi >= 0)
                    ctx.computeLoad(cxh, 0, inner_x, pack_ipb, 2);
                if (ylo >= 0)
                    ctx.computeLoad(cyl, 0, inner_y, pack_ipb, 2);
                if (yhi >= 0)
                    ctx.computeLoad(cyh, 0, inner_y, pack_ipb, 2);
                // Global residual.
                ctx.allReduce(8);
            }
        }
    }
};

} // namespace

const Application &
popApp()
{
    static const Pop instance;
    return instance;
}

} // namespace ovlsim::apps
