/**
 * @file
 * SPECFEM3D proxy.
 *
 * Models the spectral-element seismic wave propagation code: long
 * element-kernel bursts, few neighbours on a 2D decomposition, and
 * large boundary messages (about a megabyte at default scale). The
 * shared-boundary accelerations are assembled at the very end of the
 * kernel burst (late production, inherent to FEM assembly) and are
 * added into the local field immediately after the exchange (early
 * consumption) — which is why ideal restructuring has the most to
 * offer here among the halo codes, matching the paper's 65%.
 */

#include "apps/app.hh"

#include "util/logging.hh"

namespace ovlsim::apps {

namespace {

class Specfem final : public Application
{
  public:
    std::string name() const override { return "specfem"; }

    std::string
    description() const override
    {
        return "SPECFEM3D proxy: spectral-element kernels with "
               "large boundary exchanges";
    }

    AppParams
    defaults() const override
    {
        AppParams params;
        params.ranks = 16;
        params.iterations = 3;
        params.size = 40;
        return params;
    }

    void
    validate(const AppParams &params) const override
    {
        Application::validate(params);
        const Grid2D grid = Grid2D::closestFactors(params.ranks);
        if (grid.px < 2 || grid.py < 2)
            fatal(name(), ": rank count must factor into a 2D "
                          "grid with both sides >= 2");
    }

    vm::RankProgram
    program(const AppParams &params) const override
    {
        validate(params);
        return [params](vm::VmContext &ctx) { run(ctx, params); };
    }

  private:
    static void
    run(vm::VmContext &ctx, const AppParams &params)
    {
        const Grid2D grid = Grid2D::closestFactors(params.ranks);
        const int gx = grid.x(ctx.rank());
        const int gy = grid.y(ctx.rank());
        const Rank xlo =
            grid.inside(gx - 1, gy) ? grid.at(gx - 1, gy) : -1;
        const Rank xhi =
            grid.inside(gx + 1, gy) ? grid.at(gx + 1, gy) : -1;
        const Rank ylo =
            grid.inside(gx, gy - 1) ? grid.at(gx, gy - 1) : -1;
        const Rank yhi =
            grid.inside(gx, gy + 1) ? grid.at(gx, gy + 1) : -1;

        // Boundary of spectral elements: ~1 MB at size 40.
        const Bytes face = scaleBytes(
            static_cast<Bytes>(params.size) * params.size * 640,
            params.messageScale);

        // Element kernels dominate: ~2300 instructions per surface
        // element per step.
        const auto elements = static_cast<double>(params.size) *
            params.size;
        const Instr kernel =
            scaleInstr(elements * 2300.0, params.computeScale);
        const Instr update =
            scaleInstr(elements * 700.0, params.computeScale);
        const double asm_ipb = 0.15;

        const auto sxl = ctx.allocBuffer("acc-send-w", face);
        const auto sxh = ctx.allocBuffer("acc-send-e", face);
        const auto rxl = ctx.allocBuffer("acc-recv-w", face);
        const auto rxh = ctx.allocBuffer("acc-recv-e", face);
        const auto syl = ctx.allocBuffer("acc-send-s", face);
        const auto syh = ctx.allocBuffer("acc-send-n", face);
        const auto ryl = ctx.allocBuffer("acc-recv-s", face);
        const auto ryh = ctx.allocBuffer("acc-recv-n", face);

        for (int it = 0; it < params.iterations; ++it) {
            // Element kernels; boundary accelerations assemble at
            // the very end of the burst.
            ctx.compute(kernel);
            if (xlo >= 0)
                ctx.computeStore(sxl, 0, face, asm_ipb, 6);
            if (xhi >= 0)
                ctx.computeStore(sxh, 0, face, asm_ipb, 6);
            if (ylo >= 0)
                ctx.computeStore(syl, 0, face, asm_ipb, 6);
            if (yhi >= 0)
                ctx.computeStore(syh, 0, face, asm_ipb, 6);

            haloExchange(ctx,
                         {{xlo, sxl, rxl, face, 800, 801},
                          {xhi, sxh, rxh, face, 801, 800},
                          {ylo, syl, ryl, face, 802, 803},
                          {yhi, syh, ryh, face, 803, 802}});

            // Add neighbour contributions, then the time update.
            if (xlo >= 0)
                ctx.computeLoad(rxl, 0, face, asm_ipb, 6);
            if (xhi >= 0)
                ctx.computeLoad(rxh, 0, face, asm_ipb, 6);
            if (ylo >= 0)
                ctx.computeLoad(ryl, 0, face, asm_ipb, 6);
            if (yhi >= 0)
                ctx.computeLoad(ryh, 0, face, asm_ipb, 6);
            ctx.compute(update);
            // Stability (Courant) check once per time step.
            ctx.allReduce(8);
        }
    }
};

} // namespace

const Application &
specfemApp()
{
    static const Specfem instance;
    return instance;
}

} // namespace ovlsim::apps
