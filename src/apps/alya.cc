/**
 * @file
 * Alya proxy.
 *
 * Models the Alya multi-physics FEM code on an unstructured mesh:
 * each rank exchanges interface values with an irregular set of
 * neighbours (ring + grid + seeded extra edges) with per-edge message
 * sizes. Interface buffers are packed by gather loops at the end of
 * the assembly phase (late production), while the received values
 * are consumed progressively across the following solver phase (the
 * one genuinely spread-out real consumption pattern among the
 * proxies). Exchanges are scheduled by a greedy edge colouring so
 * blocking pairs never form chains.
 */

#include "apps/app.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/logging.hh"
#include "util/random.hh"

namespace ovlsim::apps {

namespace {

struct Edge
{
    Rank a = 0;
    Rank b = 0;
    Bytes bytes = 0;
    int color = -1;
    Tag tag = 0;
};

/** Deterministic irregular interface topology. */
std::vector<Edge>
buildEdges(const AppParams &params)
{
    std::vector<std::pair<Rank, Rank>> pairs;
    const auto add = [&pairs, &params](Rank a, Rank b) {
        if (a == b || a < 0 || b < 0 || a >= params.ranks ||
            b >= params.ranks) {
            return;
        }
        if (a > b)
            std::swap(a, b);
        if (std::find(pairs.begin(), pairs.end(),
                      std::make_pair(a, b)) == pairs.end()) {
            pairs.emplace_back(a, b);
        }
    };

    // Ring backbone plus a 2D-grid flavour.
    const Grid2D grid = Grid2D::closestFactors(params.ranks);
    for (Rank r = 0; r < params.ranks; ++r) {
        add(r, r + 1);
        add(r, r + grid.px);
    }
    // Seeded long-range edges (mesh irregularity).
    Rng rng(params.seed);
    const int extras = params.ranks / 2;
    for (int e = 0; e < extras; ++e) {
        const auto a = static_cast<Rank>(
            rng.nextBelow(static_cast<std::uint64_t>(
                params.ranks)));
        const auto b = static_cast<Rank>(
            rng.nextBelow(static_cast<std::uint64_t>(
                params.ranks)));
        add(a, b);
    }
    std::sort(pairs.begin(), pairs.end());

    // Greedy edge colouring: each rank has at most one edge per
    // colour, so each colour is one parallel exchange phase.
    std::vector<Edge> edges;
    std::vector<std::vector<bool>> used(
        static_cast<std::size_t>(params.ranks));
    Rng size_rng(params.seed ^ 0x5eedULL);
    Tag next_tag = 700;
    for (const auto &[a, b] : pairs) {
        int color = 0;
        auto &ua = used[static_cast<std::size_t>(a)];
        auto &ub = used[static_cast<std::size_t>(b)];
        while (true) {
            const bool a_free =
                color >= static_cast<int>(ua.size()) ||
                !ua[static_cast<std::size_t>(color)];
            const bool b_free =
                color >= static_cast<int>(ub.size()) ||
                !ub[static_cast<std::size_t>(color)];
            if (a_free && b_free)
                break;
            ++color;
        }
        for (auto *vec : {&ua, &ub}) {
            if (static_cast<int>(vec->size()) <= color)
                vec->resize(static_cast<std::size_t>(color) + 1);
            (*vec)[static_cast<std::size_t>(color)] = true;
        }
        Edge edge;
        edge.a = a;
        edge.b = b;
        edge.color = color;
        // Interface sizes vary by a factor of five across edges.
        const Bytes base =
            static_cast<Bytes>(params.size) * 512;
        edge.bytes = scaleBytes(
            base * (1 + size_rng.nextBelow(5)),
            params.messageScale);
        edge.tag = next_tag;
        next_tag += 2;
        edges.push_back(edge);
    }
    return edges;
}

class Alya final : public Application
{
  public:
    std::string name() const override { return "alya"; }

    std::string
    description() const override
    {
        return "Alya proxy: unstructured FEM with irregular "
               "neighbour exchanges and progressive consumption";
    }

    AppParams
    defaults() const override
    {
        AppParams params;
        params.ranks = 16;
        params.iterations = 4;
        params.size = 64;
        return params;
    }

    vm::RankProgram
    program(const AppParams &params) const override
    {
        validate(params);
        const auto edges = buildEdges(params);
        return [params, edges](vm::VmContext &ctx) {
            run(ctx, params, edges);
        };
    }

  private:
    static void
    run(vm::VmContext &ctx, const AppParams &params,
        const std::vector<Edge> &edges)
    {
        struct MyEdge
        {
            Edge edge;
            vm::Buffer send;
            vm::Buffer recv;
        };
        std::vector<MyEdge> mine;
        int colors = 0;
        for (const auto &edge : edges) {
            colors = std::max(colors, edge.color + 1);
            if (edge.a != ctx.rank() && edge.b != ctx.rank())
                continue;
            MyEdge my;
            my.edge = edge;
            my.send = ctx.allocBuffer("iface-send", edge.bytes);
            my.recv = ctx.allocBuffer("iface-recv", edge.bytes);
            mine.push_back(my);
        }

        const auto elements = static_cast<double>(params.size) *
            params.size;
        const Instr assembly =
            scaleInstr(elements * 280.0, params.computeScale);
        const Instr solver =
            scaleInstr(elements * 180.0, params.computeScale);
        const double pack_ipb = 0.5;
        const int solver_segments = 8;

        for (int it = 0; it < params.iterations; ++it) {
            // Element assembly; interface gather loops at the end.
            ctx.compute(assembly);
            for (const auto &my : mine) {
                ctx.computeStore(my.send, 0, my.edge.bytes,
                                 pack_ipb, 4);
            }

            // Grouped interface exchange in colour order: all
            // sends first (buffered), then all receives, so every
            // transfer of the group is concurrently in flight.
            for (int color = 0; color < colors; ++color) {
                for (const auto &my : mine) {
                    if (my.edge.color != color)
                        continue;
                    const Rank peer = my.edge.a == ctx.rank()
                                          ? my.edge.b
                                          : my.edge.a;
                    ctx.send(my.send, 0, my.edge.bytes, peer,
                             my.edge.tag);
                }
            }
            for (int color = 0; color < colors; ++color) {
                for (const auto &my : mine) {
                    if (my.edge.color != color)
                        continue;
                    const Rank peer = my.edge.a == ctx.rank()
                                          ? my.edge.b
                                          : my.edge.a;
                    ctx.recv(my.recv, 0, my.edge.bytes, peer,
                             my.edge.tag);
                }
            }

            // Subdomain scatter: interface contributions are added
            // into the local right-hand side as soon as they
            // arrive, so every part of every incoming message is
            // first touched early in the solver.
            for (const auto &my : mine)
                ctx.touchLoad(my.recv, 0, my.edge.bytes);
            ctx.compute(solver * 3 / 10);
            // Preconditioner setup sync.
            ctx.allReduce(8);
            ctx.compute(solver * 7 / 10);
            (void)solver_segments;
            // Convergence check.
            ctx.allReduce(8);
        }
    }
};

} // namespace

const Application &
alyaApp()
{
    static const Alya instance;
    return instance;
}

} // namespace ovlsim::apps
