/**
 * @file
 * NAS-BT proxy.
 *
 * Models the Block-Tridiagonal pseudo-application: a 3D grid on a 2D
 * process grid, with one ADI-style solve per dimension and per
 * iteration. The x- and y-solves exchange faces of five solution
 * components with the axis neighbours; the z-solve is local. As in
 * the real code, outgoing faces are packed into contiguous message
 * buffers by a short copy loop at the end of the compute phase and
 * incoming halos are unpacked immediately after the exchange — the
 * "real" production/consumption pattern therefore concentrates at
 * the burst boundaries, which is exactly what limits automatic
 * overlap in practice.
 */

#include "apps/app.hh"

#include "util/logging.hh"

namespace ovlsim::apps {

namespace {

class NasBt final : public Application
{
  public:
    std::string name() const override { return "nas-bt"; }

    std::string
    description() const override
    {
        return "NAS BT proxy: 3D ADI sweeps, face exchanges on a "
               "2D process grid";
    }

    AppParams
    defaults() const override
    {
        AppParams params;
        params.ranks = 16;
        params.iterations = 4;
        params.size = 48;
        return params;
    }

    void
    validate(const AppParams &params) const override
    {
        Application::validate(params);
        const Grid2D grid = Grid2D::closestFactors(params.ranks);
        if (grid.px < 2 || grid.py < 2)
            fatal(name(), ": rank count must factor into a 2D "
                          "grid with both sides >= 2");
    }

    vm::RankProgram
    program(const AppParams &params) const override
    {
        validate(params);
        return [params](vm::VmContext &ctx) { run(ctx, params); };
    }

  private:
    static void
    run(vm::VmContext &ctx, const AppParams &params)
    {
        const Grid2D grid = Grid2D::closestFactors(params.ranks);
        const int gx = grid.x(ctx.rank());
        const int gy = grid.y(ctx.rank());
        const Rank xlo =
            grid.inside(gx - 1, gy) ? grid.at(gx - 1, gy) : -1;
        const Rank xhi =
            grid.inside(gx + 1, gy) ? grid.at(gx + 1, gy) : -1;
        const Rank ylo =
            grid.inside(gx, gy - 1) ? grid.at(gx, gy - 1) : -1;
        const Rank yhi =
            grid.inside(gx, gy + 1) ? grid.at(gx, gy + 1) : -1;

        const int nx = std::max(params.size / grid.px, 2);
        const int ny = std::max(params.size / grid.py, 2);
        const int nz = params.size;
        const auto cells =
            static_cast<double>(nx) * ny * nz;

        // Five solution components of doubles per face cell.
        const Bytes face_x = scaleBytes(
            static_cast<Bytes>(5u * 8u * ny) * nz,
            params.messageScale);
        const Bytes face_y = scaleBytes(
            static_cast<Bytes>(5u * 8u * nx) * nz,
            params.messageScale);

        // ~140 instructions per cell per directional solve.
        const Instr solve = scaleInstr(cells * 140.0,
                                       params.computeScale);
        const double pack_ipb = 0.6;

        const auto sxl = ctx.allocBuffer("send-xlo", face_x);
        const auto sxh = ctx.allocBuffer("send-xhi", face_x);
        const auto rxl = ctx.allocBuffer("recv-xlo", face_x);
        const auto rxh = ctx.allocBuffer("recv-xhi", face_x);
        const auto syl = ctx.allocBuffer("send-ylo", face_y);
        const auto syh = ctx.allocBuffer("send-yhi", face_y);
        const auto ryl = ctx.allocBuffer("recv-ylo", face_y);
        const auto ryh = ctx.allocBuffer("recv-yhi", face_y);

        for (int it = 0; it < params.iterations; ++it) {
            // --- x-solve: forward elimination, stage residual
            // sync, then back substitution which computes the
            // outgoing boundary values ---
            ctx.compute(solve * 35 / 100);
            ctx.allReduce(40);
            ctx.compute(solve * 65 / 100);
            if (xlo >= 0)
                ctx.computeStore(sxl, 0, face_x, pack_ipb, 8);
            if (xhi >= 0)
                ctx.computeStore(sxh, 0, face_x, pack_ipb, 8);
            haloExchange(ctx,
                         {{xlo, sxl, rxl, face_x, 100, 101},
                          {xhi, sxh, rxh, face_x, 101, 100}});
            if (xlo >= 0)
                ctx.computeLoad(rxl, 0, face_x, pack_ipb, 8);
            if (xhi >= 0)
                ctx.computeLoad(rxh, 0, face_x, pack_ipb, 8);

            // --- y-solve ---
            ctx.compute(solve * 35 / 100);
            ctx.allReduce(40);
            ctx.compute(solve * 65 / 100);
            if (ylo >= 0)
                ctx.computeStore(syl, 0, face_y, pack_ipb, 8);
            if (yhi >= 0)
                ctx.computeStore(syh, 0, face_y, pack_ipb, 8);
            haloExchange(ctx,
                         {{ylo, syl, ryl, face_y, 200, 201},
                          {yhi, syh, ryh, face_y, 201, 200}});
            if (ylo >= 0)
                ctx.computeLoad(ryl, 0, face_y, pack_ipb, 8);
            if (yhi >= 0)
                ctx.computeLoad(ryh, 0, face_y, pack_ipb, 8);

            // --- z-solve: the grid is not decomposed in z ---
            ctx.compute(solve);
        }
    }
};

} // namespace

const Application &
nasBtApp()
{
    static const NasBt instance;
    return instance;
}

} // namespace ovlsim::apps
