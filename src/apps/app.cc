#include "app.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ovlsim::apps {

// Defined by the individual proxy translation units.
const Application &nasBtApp();
const Application &nasCgApp();
const Application &popApp();
const Application &alyaApp();
const Application &specfemApp();
const Application &sweep3dApp();

void
Application::validate(const AppParams &params) const
{
    if (params.ranks < 2)
        fatal(name(), ": needs at least 2 ranks");
    if (params.iterations < 1)
        fatal(name(), ": needs at least 1 iteration");
    if (params.size < 4)
        fatal(name(), ": problem size too small");
    if (params.computeScale <= 0.0 || params.messageScale <= 0.0)
        fatal(name(), ": scales must be positive");
}

const std::vector<const Application *> &
appRegistry()
{
    static const std::vector<const Application *> registry = {
        &nasBtApp(),  &nasCgApp(),   &popApp(),
        &alyaApp(),   &specfemApp(), &sweep3dApp(),
    };
    return registry;
}

const Application &
findApp(std::string_view name)
{
    for (const auto *app : appRegistry()) {
        if (app->name() == name)
            return *app;
    }
    std::string available;
    for (const auto *app : appRegistry()) {
        if (!available.empty())
            available += ", ";
        available += app->name();
    }
    fatal("unknown application '", std::string(name),
          "'; available: ", available);
}

std::vector<std::string>
appNames()
{
    std::vector<std::string> names;
    for (const auto *app : appRegistry())
        names.push_back(app->name());
    return names;
}

Grid2D
Grid2D::closestFactors(int ranks)
{
    ovlAssert(ranks >= 1, "Grid2D of zero ranks");
    int best = 1;
    for (int f = 1; f * f <= ranks; ++f) {
        if (ranks % f == 0)
            best = f;
    }
    return Grid2D{ranks / best, best};
}

void
pairExchange(vm::VmContext &ctx, Rank partner, vm::Buffer send_buf,
             vm::Buffer recv_buf, Bytes bytes, Tag tag)
{
    ovlAssert(bytes > 0 && bytes <= send_buf.size &&
                  bytes <= recv_buf.size,
              "pairExchange: bad payload size");
    // Send-first on both sides: with the default buffered-send
    // model both transfers are concurrently in flight, so the
    // baseline pays one transfer delay, not two.
    ctx.send(send_buf, 0, bytes, partner, tag);
    ctx.recv(recv_buf, 0, bytes, partner, tag);
}

void
axisHaloExchange(vm::VmContext &ctx, int coord, Rank lo, Rank hi,
                 vm::Buffer send_lo, vm::Buffer recv_lo,
                 vm::Buffer send_hi, vm::Buffer recv_hi,
                 Bytes bytes, Tag tag)
{
    // Pair (c, c+1) is active in phase c % 2; within a pair the
    // lower coordinate leads. Every phase consists of disjoint
    // pairs, so blocking rendezvous sends never chain.
    for (int phase = 0; phase < 2; ++phase) {
        const bool hi_active = hi >= 0 && coord % 2 == phase;
        const bool lo_active =
            lo >= 0 && (((coord - 1) % 2) + 2) % 2 == phase;
        if (hi_active) {
            ctx.send(send_hi, 0, bytes, hi, tag);
            ctx.recv(recv_hi, 0, bytes, hi, tag + 1);
        }
        if (lo_active) {
            ctx.recv(recv_lo, 0, bytes, lo, tag);
            ctx.send(send_lo, 0, bytes, lo, tag + 1);
        }
    }
}

void
haloExchange(vm::VmContext &ctx, const std::vector<HaloOp> &ops)
{
    for (const auto &op : ops) {
        if (op.partner < 0)
            continue;
        ctx.send(op.send, 0, op.bytes, op.partner, op.sendTag);
    }
    for (const auto &op : ops) {
        if (op.partner < 0)
            continue;
        ctx.recv(op.recv, 0, op.bytes, op.partner, op.recvTag);
    }
}

Bytes
scaleBytes(Bytes bytes, double factor)
{
    const double scaled =
        std::max(1.0, static_cast<double>(bytes) * factor);
    return static_cast<Bytes>(std::llround(scaled));
}

Instr
scaleInstr(double instructions, double factor)
{
    const double scaled = std::max(1.0, instructions * factor);
    return static_cast<Instr>(std::llround(scaled));
}

} // namespace ovlsim::apps
