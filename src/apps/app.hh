/**
 * @file
 * Proxy-application framework.
 *
 * The paper evaluates six real MPI codes (NAS-BT, NAS-CG, POP, Alya,
 * SPECFEM3D, Sweep3D). This module provides proxies that reproduce,
 * for each code, the properties the study depends on: communication
 * topology, message sizes, compute/communication ratio and — most
 * importantly — the *real* memory-access pattern on the communicated
 * data (which faces are produced early or late in a sweep, whether
 * halos are consumed immediately or progressively, and so on). Each
 * proxy is an ordinary VM program, so the tracing tool observes it
 * exactly as it would observe the real application under Valgrind.
 */

#ifndef OVLSIM_APPS_APP_HH
#define OVLSIM_APPS_APP_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "vm/vm.hh"

namespace ovlsim::apps {

/** Common knobs shared by all proxies. */
struct AppParams
{
    /** Number of MPI ranks. */
    int ranks = 16;
    /** Outer iterations / time steps. */
    int iterations = 4;
    /** Characteristic problem dimension (per-app meaning). */
    int size = 48;
    /** Multiplier on every computation burst. */
    double computeScale = 1.0;
    /** Multiplier on every message size. */
    double messageScale = 1.0;
    /** Seed for irregular topologies (Alya). */
    std::uint64_t seed = 42;
};

/** One registered proxy application. */
class Application
{
  public:
    virtual ~Application() = default;

    /** Short identifier ("nas-bt", "sweep3d", ...). */
    virtual std::string name() const = 0;

    /** One-line description of what the proxy models. */
    virtual std::string description() const = 0;

    /** Sensible defaults used by the benches. */
    virtual AppParams defaults() const = 0;

    /** Reject parameter combinations the proxy cannot honour. */
    virtual void validate(const AppParams &params) const;

    /** Build the SPMD program for these parameters. */
    virtual vm::RankProgram program(const AppParams &params)
        const = 0;
};

/** All registered proxies, in a stable order. */
const std::vector<const Application *> &appRegistry();

/** Look an application up by name; throws FatalError if unknown. */
const Application &findApp(std::string_view name);

/** Names of all registered applications. */
std::vector<std::string> appNames();

// ---------------------------------------------------------------
// Shared helpers for writing proxies.
// ---------------------------------------------------------------

/** 2D process grid with near-square factorization. */
struct Grid2D
{
    int px = 1;
    int py = 1;

    static Grid2D closestFactors(int ranks);

    int x(Rank r) const { return r % px; }
    int y(Rank r) const { return r / px; }
    Rank
    at(int gx, int gy) const
    {
        return gy * px + gx;
    }
    bool
    inside(int gx, int gy) const
    {
        return gx >= 0 && gx < px && gy >= 0 && gy < py;
    }
};

/**
 * Deadlock-free blocking exchange with one partner: the lower rank
 * sends first, the higher rank receives first. Both payloads cover
 * the full given buffers.
 */
void pairExchange(vm::VmContext &ctx, Rank partner,
                  vm::Buffer send_buf, vm::Buffer recv_buf,
                  Bytes bytes, Tag tag);

/**
 * One axis of a halo exchange with optional low/high neighbours,
 * organized in two parity phases of disjoint pairs so no blocking
 * send ever waits on a chain of ranks.
 *
 * @param coord this rank's coordinate along the axis
 * @param lo rank of the coord-1 neighbour, or -1
 * @param hi rank of the coord+1 neighbour, or -1
 */
void axisHaloExchange(vm::VmContext &ctx, int coord, Rank lo,
                      Rank hi, vm::Buffer send_lo,
                      vm::Buffer recv_lo, vm::Buffer send_hi,
                      vm::Buffer recv_hi, Bytes bytes, Tag tag);

/** One leg of a grouped halo exchange. */
struct HaloOp
{
    Rank partner = -1;
    vm::Buffer send;
    vm::Buffer recv;
    Bytes bytes = 0;
    /** Tag of the outgoing message. */
    Tag sendTag = 0;
    /** Tag of the incoming message (the partner's send tag). */
    Tag recvTag = 0;
};

/**
 * Grouped halo exchange in the common legacy idiom: all sends are
 * issued first (buffered, so they return immediately under the
 * default platform model), then all receives. All transfers of the
 * group are therefore concurrently in flight — the baseline is not
 * penalized by artificial pairwise serialization. Ops whose partner
 * is negative are skipped.
 */
void haloExchange(vm::VmContext &ctx,
                  const std::vector<HaloOp> &ops);

/** Scale a byte count, keeping it positive. */
Bytes scaleBytes(Bytes bytes, double factor);

/** Scale an instruction count, keeping it positive. */
Instr scaleInstr(double instructions, double factor);

} // namespace ovlsim::apps

#endif // OVLSIM_APPS_APP_HH
