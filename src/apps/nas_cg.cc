/**
 * @file
 * NAS-CG proxy.
 *
 * Models the Conjugate Gradient benchmark: a sparse matrix-vector
 * product on a square process grid followed by a transpose exchange
 * of the partial result vector and two scalar all-reduces per
 * iteration. The exchanged segment is produced *during* the matvec
 * (stored progressively as rows complete — a genuinely good real
 * production pattern), but consumption is an indirect gather whose
 * first touch of every part of the segment happens almost
 * immediately, which defeats receiver-side overlap; the frequent
 * small all-reduces bound the achievable benefit regardless.
 */

#include "apps/app.hh"

#include <cmath>

#include "util/logging.hh"

namespace ovlsim::apps {

namespace {

class NasCg final : public Application
{
  public:
    std::string name() const override { return "nas-cg"; }

    std::string
    description() const override
    {
        return "NAS CG proxy: sparse matvec, transpose exchange, "
               "scalar all-reduces";
    }

    AppParams
    defaults() const override
    {
        AppParams params;
        params.ranks = 16;
        params.iterations = 8;
        params.size = 6;
        return params;
    }

    void
    validate(const AppParams &params) const override
    {
        Application::validate(params);
        const int q = static_cast<int>(
            std::lround(std::sqrt(params.ranks)));
        if (q * q != params.ranks)
            fatal(name(),
                  ": rank count must be a perfect square");
    }

    vm::RankProgram
    program(const AppParams &params) const override
    {
        validate(params);
        return [params](vm::VmContext &ctx) { run(ctx, params); };
    }

  private:
    static void
    run(vm::VmContext &ctx, const AppParams &params)
    {
        const int q = static_cast<int>(
            std::lround(std::sqrt(params.ranks)));
        const int gx = ctx.rank() % q;
        const int gy = ctx.rank() / q;
        // Transpose partner; diagonal ranks keep their segment.
        const Rank partner = gx * q + gy;

        const auto seg_doubles =
            static_cast<Bytes>(params.size) * 1024;
        const Bytes seg_bytes =
            scaleBytes(seg_doubles * 8, params.messageScale);

        // ~24 instructions per row of the sparse matvec (nonzeros
        // times multiply-add), ~10 for the vector updates.
        const double matvec_ipb =
            3.0 * params.computeScale; // per byte of the segment
        const Instr vec_update = scaleInstr(
            static_cast<double>(seg_doubles) * 10.0,
            params.computeScale);

        const auto send_buf =
            ctx.allocBuffer("matvec-out", seg_bytes);
        const auto recv_buf =
            ctx.allocBuffer("transpose-in", seg_bytes);

        for (int it = 0; it < params.iterations; ++it) {
            // Matvec over the local rows; the exchanged segment is
            // the product of the final partial-sum reduction loop,
            // so it materializes just before the send (the real
            // pattern the paper found to defeat sender-side
            // overlap).
            ctx.compute(scaleInstr(
                static_cast<double>(seg_bytes) * matvec_ipb,
                1.0));
            ctx.computeStore(send_buf, 0, seg_bytes, 0.5, 4);

            if (partner != ctx.rank()) {
                pairExchange(ctx, partner, send_buf, recv_buf,
                             seg_bytes, 300 + it);
            }

            // Indirect gather: every part of the incoming segment
            // is first touched very early in the consuming loop.
            const auto &consumed =
                partner != ctx.rank() ? recv_buf : send_buf;
            ctx.touchLoad(consumed, 0, seg_bytes);
            ctx.compute(vec_update);

            // rho, alpha and beta dot products.
            ctx.allReduce(16);
            ctx.compute(vec_update / 2);
            ctx.allReduce(16);
            ctx.compute(vec_update / 2);
            ctx.allReduce(16);
        }
    }
};

} // namespace

const Application &
nasCgApp()
{
    static const NasCg instance;
    return instance;
}

} // namespace ovlsim::apps
