/**
 * @file
 * Sweep3D proxy.
 *
 * Models the ASCI Sweep3D discrete-ordinates transport kernel: a 2D
 * process grid pipelining wavefronts in k-blocks. For each octant and
 * k-block a rank receives inflow faces from its upstream neighbours,
 * computes the block, and sends outflow faces downstream. The strong
 * dependency chain makes the baseline heavily pipeline-bound; chunked
 * overlap shortens the effective pipeline latency, which is why the
 * paper reports by far the largest ideal-pattern gain (160%) here.
 * As in the real code the outflow faces are buffered at the end of
 * the block computation and inflow is needed immediately, so the
 * *real* pattern again offers little.
 */

#include "apps/app.hh"

#include "util/logging.hh"

namespace ovlsim::apps {

namespace {

class Sweep3d final : public Application
{
  public:
    std::string name() const override { return "sweep3d"; }

    std::string
    description() const override
    {
        return "Sweep3D proxy: pipelined wavefront sweeps over a "
               "2D process grid";
    }

    AppParams
    defaults() const override
    {
        AppParams params;
        params.ranks = 16;
        params.iterations = 2;
        params.size = 48;
        return params;
    }

    void
    validate(const AppParams &params) const override
    {
        Application::validate(params);
        const Grid2D grid = Grid2D::closestFactors(params.ranks);
        if (grid.px < 2 || grid.py < 2)
            fatal(name(), ": rank count must factor into a 2D "
                          "grid with both sides >= 2");
    }

    vm::RankProgram
    program(const AppParams &params) const override
    {
        validate(params);
        return [params](vm::VmContext &ctx) { run(ctx, params); };
    }

  private:
    static void
    run(vm::VmContext &ctx, const AppParams &params)
    {
        const Grid2D grid = Grid2D::closestFactors(params.ranks);
        const int gx = grid.x(ctx.rank());
        const int gy = grid.y(ctx.rank());

        const int ni = std::max(params.size / grid.px, 2);
        const int nj = std::max(params.size / grid.py, 2);
        const int nk = params.size;
        const int k_blocks = 8;
        const int nkb = std::max(nk / k_blocks, 1);
        const int angles = 24;

        // Outflow faces carry the angular flux of one k-block.
        const Bytes face_i = scaleBytes(
            static_cast<Bytes>(nj) * nkb * angles * 8,
            params.messageScale);
        const Bytes face_j = scaleBytes(
            static_cast<Bytes>(ni) * nkb * angles * 8,
            params.messageScale);

        const Instr block = scaleInstr(
            static_cast<double>(ni) * nj * nkb * angles * 22.0,
            params.computeScale);
        const double pack_ipb = 0.4;

        const auto send_i = ctx.allocBuffer("flux-send-i", face_i);
        const auto recv_i = ctx.allocBuffer("flux-recv-i", face_i);
        const auto send_j = ctx.allocBuffer("flux-send-j", face_j);
        const auto recv_j = ctx.allocBuffer("flux-recv-j", face_j);

        // Two opposing octant pairs per iteration.
        struct Octant
        {
            int di;
            int dj;
        };
        const Octant octants[2] = {{+1, +1}, {-1, -1}};

        for (int it = 0; it < params.iterations; ++it) {
            for (const auto &oct : octants) {
                const Rank up_i = grid.inside(gx - oct.di, gy)
                                      ? grid.at(gx - oct.di, gy)
                                      : -1;
                const Rank down_i = grid.inside(gx + oct.di, gy)
                                        ? grid.at(gx + oct.di, gy)
                                        : -1;
                const Rank up_j = grid.inside(gx, gy - oct.dj)
                                      ? grid.at(gx, gy - oct.dj)
                                      : -1;
                const Rank down_j = grid.inside(gx, gy + oct.dj)
                                        ? grid.at(gx, gy + oct.dj)
                                        : -1;
                const Tag tag =
                    1000 + 10 * it + (oct.di > 0 ? 0 : 5);

                for (int kb = 0; kb < k_blocks; ++kb) {
                    // Inflow needed before the block can start.
                    if (up_i >= 0) {
                        ctx.recv(recv_i, 0, face_i, up_i, tag);
                        ctx.touchLoad(recv_i, 0, face_i);
                    }
                    if (up_j >= 0) {
                        ctx.recv(recv_j, 0, face_j, up_j,
                                 tag + 1);
                        ctx.touchLoad(recv_j, 0, face_j);
                    }

                    // Block computation; outflow is buffered at
                    // the end of the block.
                    ctx.compute(block);
                    if (down_i >= 0)
                        ctx.computeStore(send_i, 0, face_i,
                                         pack_ipb, 4);
                    if (down_j >= 0)
                        ctx.computeStore(send_j, 0, face_j,
                                         pack_ipb, 4);

                    if (down_i >= 0)
                        ctx.send(send_i, 0, face_i, down_i, tag);
                    if (down_j >= 0)
                        ctx.send(send_j, 0, face_j, down_j,
                                 tag + 1);
                }
            }
        }
    }
};

} // namespace

const Application &
sweep3dApp()
{
    static const Sweep3d instance;
    return instance;
}

} // namespace ovlsim::apps
