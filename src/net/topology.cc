#include "topology.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/mathutil.hh"

namespace ovlsim::net {

const char *
topologyKindName(TopologyKind kind)
{
    switch (kind) {
      case TopologyKind::flatBus:
        return "flat-bus";
      case TopologyKind::fatTree:
        return "fat-tree";
      case TopologyKind::torus:
        return "torus";
      case TopologyKind::dragonfly:
        return "dragonfly";
    }
    return "unknown";
}

TopologyKind
topologyKindFromName(const std::string &name)
{
    if (name == "flat-bus")
        return TopologyKind::flatBus;
    if (name == "fat-tree")
        return TopologyKind::fatTree;
    if (name == "torus")
        return TopologyKind::torus;
    if (name == "dragonfly")
        return TopologyKind::dragonfly;
    fatal("unknown topology name '", name,
          "' (expected flat-bus, fat-tree, torus or dragonfly)");
}

void
TopologyConfig::validate() const
{
    if (kind == TopologyKind::fatTree) {
        if (fatTreeRadix < 2) {
            fatal("topology: fat-tree radix must be at least 2, "
                  "got ", fatTreeRadix);
        }
        if (!isPowerOfTwo(static_cast<std::uint64_t>(fatTreeRadix))) {
            fatal("topology: fat-tree radix must be a power of "
                  "two, got ", fatTreeRadix);
        }
        if (fatTreeTaper <= 0.0)
            fatal("topology: fat-tree taper must be positive");
    }
    if (kind == TopologyKind::torus) {
        for (const int dim : torusDims) {
            if (dim < 1) {
                fatal("topology: torus dimensions must be "
                      "positive, got ", dim);
            }
        }
    }
    if (kind == TopologyKind::dragonfly) {
        if (dragonflyGroups < 0) {
            fatal("topology: dragonfly groups must be >= 0 "
                  "(0 = auto)");
        }
        if (dragonflyRoutersPerGroup < 1 ||
            dragonflyNodesPerRouter < 1) {
            fatal("topology: dragonfly routers/group and "
                  "nodes/router must be positive");
        }
    }
    if (linkBandwidthMBps < 0.0) {
        fatal("topology: link bandwidth must not be negative "
              "(0 = inherit platform bandwidth)");
    }
    if (hopLatencyUs < 0.0)
        fatal("topology: hop latency must be non-negative");
}

/**
 * Route accumulator: links are registered with a capacity factor
 * and routes appended row-by-row in (src, dst) order, then sealed
 * into the CSR arrays of a CompiledTopology.
 */
class TopologyBuilder
{
  public:
    explicit TopologyBuilder(int nodes)
        : nodes_(nodes), vertices_(static_cast<std::uint32_t>(nodes))
    {
        routes_.resize(static_cast<std::size_t>(nodes) *
                       static_cast<std::size_t>(nodes));
    }

    /**
     * Register a directed link `from` -> `to`. Vertex ids below the
     * node count denote nodes; callers allocate switch/router
     * vertices at `nodes + k` (see each compiler's vertex scheme).
     */
    std::uint32_t
    addLink(double factor, std::uint32_t from, std::uint32_t to)
    {
        ovlAssert(factor > 0.0, "link factor must be positive");
        factors_.push_back(factor);
        from_.push_back(from);
        to_.push_back(to);
        if (from + 1 > vertices_)
            vertices_ = from + 1;
        if (to + 1 > vertices_)
            vertices_ = to + 1;
        return static_cast<std::uint32_t>(factors_.size() - 1);
    }

    std::vector<std::uint32_t> &
    route(int src, int dst)
    {
        return routes_[static_cast<std::size_t>(src) *
                           static_cast<std::size_t>(nodes_) +
                       static_cast<std::size_t>(dst)];
    }

    CompiledTopology
    seal() &&
    {
        CompiledTopology topo;
        topo.nodes_ = nodes_;
        topo.vertices_ = vertices_;
        topo.linkFactor_ = std::move(factors_);
        topo.linkFrom_ = std::move(from_);
        topo.linkTo_ = std::move(to_);
        topo.routeBegin_.reserve(routes_.size() + 1);
        std::size_t total = 0;
        for (const auto &r : routes_)
            total += r.size();
        topo.linkIds_.reserve(total);
        topo.routeBegin_.push_back(0);
        for (const auto &r : routes_) {
            topo.linkIds_.insert(topo.linkIds_.end(), r.begin(),
                                 r.end());
            topo.routeBegin_.push_back(
                static_cast<std::uint32_t>(topo.linkIds_.size()));
            if (r.size() > topo.maxRoute_)
                topo.maxRoute_ = r.size();
        }
        return topo;
    }

  private:
    int nodes_;
    std::uint32_t vertices_;
    std::vector<double> factors_;
    std::vector<std::uint32_t> from_;
    std::vector<std::uint32_t> to_;
    std::vector<std::vector<std::uint32_t>> routes_;
};

namespace {



/** Per-node injection/reception links shared by all fabric kinds. */
struct HostLinks
{
    std::vector<std::uint32_t> up;
    std::vector<std::uint32_t> down;
};

/**
 * `attachOf(n)` names the switch/router vertex node n hangs off;
 * the injection link runs node -> switch, reception the reverse.
 */
template <typename AttachOf>
HostLinks
addHostLinks(TopologyBuilder &b, int nodes, AttachOf &&attachOf)
{
    HostLinks host;
    host.up.reserve(static_cast<std::size_t>(nodes));
    host.down.reserve(static_cast<std::size_t>(nodes));
    for (int n = 0; n < nodes; ++n) {
        const std::uint32_t node = static_cast<std::uint32_t>(n);
        const std::uint32_t attach = attachOf(n);
        host.up.push_back(b.addLink(1.0, node, attach));
        host.down.push_back(b.addLink(1.0, attach, node));
    }
    return host;
}

CompiledTopology
compileFatTree(const TopologyConfig &config, int nodes)
{
    const int radix = config.fatTreeRadix;

    // Aggregate tree: level-0 switches attach `radix` nodes each;
    // every `radix` switches of a level share one parent above.
    // Directed up/down links per switch, with level-(l+1) edges
    // carrying factor (radix * taper)^(l+1): taper == 1 reproduces
    // full bisection (an upper link matches the sum of its
    // children), taper < 1 thins the tree toward the root.
    std::vector<int> levelCounts;
    int count = static_cast<int>(
        ceilDiv(static_cast<std::uint64_t>(nodes),
                static_cast<std::uint64_t>(radix)));
    if (count < 1)
        count = 1;
    levelCounts.push_back(count);
    while (levelCounts.back() > 1) {
        levelCounts.push_back(static_cast<int>(
            ceilDiv(static_cast<std::uint64_t>(levelCounts.back()),
                    static_cast<std::uint64_t>(radix))));
    }
    const int levels = static_cast<int>(levelCounts.size());

    // Vertex scheme: level-l switch s lives at nodes + offset(l) + s.
    std::vector<std::uint32_t> levelOffset(
        static_cast<std::size_t>(levels));
    std::uint32_t vertex_cursor = static_cast<std::uint32_t>(nodes);
    for (int l = 0; l < levels; ++l) {
        levelOffset[static_cast<std::size_t>(l)] = vertex_cursor;
        vertex_cursor +=
            static_cast<std::uint32_t>(levelCounts[static_cast<std::size_t>(l)]);
    }
    const auto switchVertex = [&](int l, std::size_t s) {
        return levelOffset[static_cast<std::size_t>(l)] +
            static_cast<std::uint32_t>(s);
    };

    TopologyBuilder b(nodes);
    const HostLinks host = addHostLinks(b, nodes, [&](int n) {
        return switchVertex(0, static_cast<std::size_t>(n / radix));
    });

    // up[l][s] / down[l][s]: links between level-l switch s and its
    // level-(l+1) parent (absent for the top level).
    std::vector<std::vector<std::uint32_t>> up(
        static_cast<std::size_t>(levels));
    std::vector<std::vector<std::uint32_t>> down(
        static_cast<std::size_t>(levels));
    for (int l = 0; l + 1 < levels; ++l) {
        const double factor = std::pow(
            static_cast<double>(radix) * config.fatTreeTaper,
            static_cast<double>(l + 1));
        const auto switches =
            static_cast<std::size_t>(levelCounts[l]);
        up[l].reserve(switches);
        down[l].reserve(switches);
        for (std::size_t s = 0; s < switches; ++s) {
            const std::uint32_t child = switchVertex(l, s);
            const std::uint32_t parent =
                switchVertex(l + 1,
                             s / static_cast<std::size_t>(radix));
            up[l].push_back(b.addLink(factor, child, parent));
            down[l].push_back(b.addLink(factor, parent, child));
        }
    }

    for (int src = 0; src < nodes; ++src) {
        for (int dst = 0; dst < nodes; ++dst) {
            if (src == dst)
                continue;
            auto &route = b.route(src, dst);
            route.push_back(host.up[static_cast<std::size_t>(src)]);
            // Climb until both endpoints share a switch.
            int s = src / radix;
            int d = dst / radix;
            int level = 0;
            std::vector<std::uint32_t> descent;
            while (s != d) {
                route.push_back(
                    up[level][static_cast<std::size_t>(s)]);
                descent.push_back(
                    down[level][static_cast<std::size_t>(d)]);
                s /= radix;
                d /= radix;
                ++level;
            }
            route.insert(route.end(), descent.rbegin(),
                         descent.rend());
            route.push_back(
                host.down[static_cast<std::size_t>(dst)]);
        }
    }
    return std::move(b).seal();
}

CompiledTopology
compileTorus(const TopologyConfig &config, int nodes)
{
    std::vector<int> dims = config.torusDims;
    if (dims.empty()) {
        // Auto: near-square 2-D grid covering the node count.
        const int side = static_cast<int>(std::ceil(
            std::sqrt(static_cast<double>(nodes))));
        const int rows = static_cast<int>(
            ceilDiv(static_cast<std::uint64_t>(nodes),
                    static_cast<std::uint64_t>(side)));
        dims = {side, rows < 1 ? 1 : rows};
    }
    std::size_t capacity = 1;
    for (const int dim : dims)
        capacity *= static_cast<std::size_t>(dim);
    if (capacity < static_cast<std::size_t>(nodes)) {
        fatal("topology: torus of ", capacity,
              " positions cannot host ", nodes, " nodes");
    }
    const int ndims = static_cast<int>(dims.size());

    TopologyBuilder b(nodes);
    // Vertex scheme: the router at grid position p is nodes + p;
    // node n attaches to the router at its own position (p == n).
    const auto routerVertex = [&](std::size_t pos) {
        return static_cast<std::uint32_t>(nodes) +
            static_cast<std::uint32_t>(pos);
    };
    const HostLinks host = addHostLinks(b, nodes, [&](int n) {
        return routerVertex(static_cast<std::size_t>(n));
    });

    // Position of the neighbour one step along `dim` (dir 0 = +,
    // dir 1 = -), with wraparound (meshes never route off the edge,
    // so the wrapped neighbour is merely an unused edge there).
    const auto neighborOf = [&](std::size_t pos, int dim, int dir) {
        std::size_t stride = 1;
        for (int d = 0; d < dim; ++d)
            stride *= static_cast<std::size_t>(
                dims[static_cast<std::size_t>(d)]);
        const std::size_t size = static_cast<std::size_t>(
            dims[static_cast<std::size_t>(dim)]);
        const std::size_t coord = (pos / stride) % size;
        const std::size_t next = dir == 0
            ? (coord + 1) % size
            : (coord + size - 1) % size;
        return pos - coord * stride + next * stride;
    };

    // One router per grid position; per position, per dimension,
    // one directed link each way (dir 0 = +, dir 1 = -).
    std::vector<std::uint32_t> grid(capacity *
                                    static_cast<std::size_t>(ndims) *
                                    2);
    for (std::size_t p = 0; p < capacity; ++p) {
        for (int dim = 0; dim < ndims; ++dim) {
            for (int dir = 0; dir < 2; ++dir) {
                grid[(p * static_cast<std::size_t>(ndims) +
                      static_cast<std::size_t>(dim)) *
                         2 +
                     static_cast<std::size_t>(dir)] =
                    b.addLink(1.0, routerVertex(p),
                              routerVertex(neighborOf(p, dim, dir)));
            }
        }
    }
    const auto linkAt = [&](std::size_t pos, int dim, int dir) {
        return grid[(pos * static_cast<std::size_t>(ndims) +
                     static_cast<std::size_t>(dim)) *
                        2 +
                    static_cast<std::size_t>(dir)];
    };
    const auto coordsOf = [&](int node) {
        std::vector<int> c(static_cast<std::size_t>(ndims));
        int rest = node;
        for (int dim = 0; dim < ndims; ++dim) {
            c[static_cast<std::size_t>(dim)] =
                rest % dims[static_cast<std::size_t>(dim)];
            rest /= dims[static_cast<std::size_t>(dim)];
        }
        return c;
    };
    const auto indexOf = [&](const std::vector<int> &c) {
        std::size_t index = 0;
        for (int dim = ndims - 1; dim >= 0; --dim) {
            index = index * static_cast<std::size_t>(
                                dims[static_cast<std::size_t>(dim)]) +
                static_cast<std::size_t>(
                    c[static_cast<std::size_t>(dim)]);
        }
        return index;
    };

    for (int src = 0; src < nodes; ++src) {
        for (int dst = 0; dst < nodes; ++dst) {
            if (src == dst)
                continue;
            auto &route = b.route(src, dst);
            route.push_back(host.up[static_cast<std::size_t>(src)]);
            // Dimension-ordered routing; on a wrapped ring the
            // shorter way wins and exact ties go positive.
            std::vector<int> pos = coordsOf(src);
            const std::vector<int> goal = coordsOf(dst);
            for (int dim = 0; dim < ndims; ++dim) {
                const int size = dims[static_cast<std::size_t>(dim)];
                int delta = goal[static_cast<std::size_t>(dim)] -
                    pos[static_cast<std::size_t>(dim)];
                int dir; // 0 = +, 1 = -
                int steps;
                if (config.torusWrap) {
                    int forward = delta >= 0 ? delta : delta + size;
                    const int backward = size - forward;
                    if (forward <= backward) {
                        dir = 0;
                        steps = forward;
                    } else {
                        dir = 1;
                        steps = backward;
                    }
                } else {
                    dir = delta >= 0 ? 0 : 1;
                    steps = delta >= 0 ? delta : -delta;
                }
                for (int i = 0; i < steps; ++i) {
                    route.push_back(
                        linkAt(indexOf(pos), dim, dir));
                    int &coord = pos[static_cast<std::size_t>(dim)];
                    coord += dir == 0 ? 1 : -1;
                    if (coord < 0)
                        coord += size;
                    if (coord >= size)
                        coord -= size;
                }
            }
            route.push_back(
                host.down[static_cast<std::size_t>(dst)]);
        }
    }
    return std::move(b).seal();
}

CompiledTopology
compileDragonfly(const TopologyConfig &config, int nodes)
{
    const int a = config.dragonflyRoutersPerGroup;
    const int p = config.dragonflyNodesPerRouter;
    int groups = config.dragonflyGroups;
    if (groups == 0) {
        groups = static_cast<int>(
            ceilDiv(static_cast<std::uint64_t>(nodes),
                    static_cast<std::uint64_t>(a) *
                        static_cast<std::uint64_t>(p)));
        if (groups < 1)
            groups = 1;
    }
    const std::size_t capacity = static_cast<std::size_t>(groups) *
        static_cast<std::size_t>(a) * static_cast<std::size_t>(p);
    if (capacity < static_cast<std::size_t>(nodes)) {
        fatal("topology: dragonfly of ", capacity,
              " terminals (", groups, " groups x ", a,
              " routers x ", p, " nodes) cannot host ", nodes,
              " nodes");
    }

    TopologyBuilder b(nodes);
    // Vertex scheme: router r lives at nodes + r; node n attaches
    // to router n / p.
    const auto routerVertex = [&](int r) {
        return static_cast<std::uint32_t>(nodes) +
            static_cast<std::uint32_t>(r);
    };
    const HostLinks host = addHostLinks(b, nodes, [&](int n) {
        return routerVertex(n / p);
    });

    // Local links: one directed link per ordered router pair inside
    // each group. Global links: one directed aggregate link per
    // ordered group pair, attached at deterministic gateways.
    const int routers = groups * a;
    std::vector<std::uint32_t> local(
        static_cast<std::size_t>(routers) *
        static_cast<std::size_t>(a));
    for (int r = 0; r < routers; ++r) {
        const int group = r / a;
        for (int other = 0; other < a; ++other) {
            if (group * a + other == r)
                continue;
            local[static_cast<std::size_t>(r) *
                      static_cast<std::size_t>(a) +
                  static_cast<std::size_t>(other)] =
                b.addLink(1.0, routerVertex(r),
                          routerVertex(group * a + other));
        }
    }
    std::vector<std::uint32_t> global(
        static_cast<std::size_t>(groups) *
        static_cast<std::size_t>(groups));
    for (int g1 = 0; g1 < groups; ++g1) {
        for (int g2 = 0; g2 < groups; ++g2) {
            if (g1 == g2)
                continue;
            global[static_cast<std::size_t>(g1) *
                       static_cast<std::size_t>(groups) +
                   static_cast<std::size_t>(g2)] =
                b.addLink(1.0, routerVertex(g1 * a + g2 % a),
                          routerVertex(g2 * a + g1 % a));
        }
    }
    const auto localLink = [&](int from_router, int to_local) {
        return local[static_cast<std::size_t>(from_router) *
                         static_cast<std::size_t>(a) +
                     static_cast<std::size_t>(to_local)];
    };
    const auto globalLink = [&](int g1, int g2) {
        return global[static_cast<std::size_t>(g1) *
                          static_cast<std::size_t>(groups) +
                      static_cast<std::size_t>(g2)];
    };

    for (int src = 0; src < nodes; ++src) {
        for (int dst = 0; dst < nodes; ++dst) {
            if (src == dst)
                continue;
            auto &route = b.route(src, dst);
            route.push_back(host.up[static_cast<std::size_t>(src)]);
            const int r1 = src / p;
            const int r2 = dst / p;
            const int g1 = r1 / a;
            const int g2 = r2 / a;
            if (g1 == g2) {
                if (r1 != r2)
                    route.push_back(localLink(r1, r2 % a));
            } else {
                // Minimal route through the gateway routers that
                // hold the (g1, g2) aggregate global link.
                const int gw1 = g1 * a + g2 % a;
                const int gw2 = g2 * a + g1 % a;
                if (r1 != gw1)
                    route.push_back(localLink(r1, gw1 % a));
                route.push_back(globalLink(g1, g2));
                if (gw2 != r2)
                    route.push_back(localLink(gw2, r2 % a));
            }
            route.push_back(
                host.down[static_cast<std::size_t>(dst)]);
        }
    }
    return std::move(b).seal();
}

} // namespace

CompiledTopology
compileTopology(const TopologyConfig &config, int nodes)
{
    config.validate();
    ovlAssert(nodes > 0, "compileTopology: node count must be "
                         "positive");
    switch (config.kind) {
      case TopologyKind::flatBus:
        // The engine's classic bus pool handles flat platforms;
        // compile to an empty table so route() is well-defined.
        return std::move(TopologyBuilder(nodes)).seal();
      case TopologyKind::fatTree:
        return compileFatTree(config, nodes);
      case TopologyKind::torus:
        return compileTorus(config, nodes);
      case TopologyKind::dragonfly:
        return compileDragonfly(config, nodes);
    }
    panic("compileTopology: corrupt topology kind");
}

namespace topologies {

TopologyConfig
flatBus()
{
    return TopologyConfig{};
}

TopologyConfig
fatTree(int radix)
{
    TopologyConfig config;
    config.kind = TopologyKind::fatTree;
    config.fatTreeRadix = radix;
    config.fatTreeTaper = 1.0;
    return config;
}

TopologyConfig
taperedFatTree(int radix, double taper)
{
    TopologyConfig config = fatTree(radix);
    config.fatTreeTaper = taper;
    return config;
}

TopologyConfig
torus2d()
{
    TopologyConfig config;
    config.kind = TopologyKind::torus;
    config.torusWrap = true;
    return config;
}

TopologyConfig
dragonfly()
{
    TopologyConfig config;
    config.kind = TopologyKind::dragonfly;
    config.dragonflyGroups = 0; // auto-size
    config.dragonflyRoutersPerGroup = 2;
    config.dragonflyNodesPerRouter = 2;
    return config;
}

} // namespace topologies

} // namespace ovlsim::net
