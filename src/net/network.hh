/**
 * @file
 * Link-level contention model over compiled topologies.
 *
 * LinkNetwork tracks the set of in-flight transfers (flows) of one
 * replay. A flow occupies every link of its compiled route for its
 * whole serialization; each link's capacity is shared equally among
 * its occupants, and a flow progresses at the bandwidth of its
 * bottleneck link share — a simplified fluid model re-evaluated at
 * event granularity, in the spirit of SimGrid's flow-level network
 * models.
 *
 * The driver (sim/engine.cc) owns the event heap; LinkNetwork owns
 * bytes-remaining accounting and rate assignment:
 *
 *  - start() admits a flow and returns the finish time to schedule,
 *  - onFinishEvent() is called when a scheduled finish event fires;
 *    it either completes the flow (freeing its links and recomputing
 *    the survivors' rates) or reports the corrected finish time to
 *    reschedule — flows slow down lazily (the stale early event
 *    re-arms itself) and speed up eagerly (completions emit
 *    reschedules via pendingReschedules()).
 *
 * Scheduling stays deterministic: flows are iterated in admission
 * order, all arithmetic is event-ordered double precision, and equal
 * replays produce equal event sequences on any host or thread.
 */

#ifndef OVLSIM_NET_NETWORK_HH
#define OVLSIM_NET_NETWORK_HH

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "net/topology.hh"
#include "obs/stats.hh"
#include "util/types.hh"

namespace ovlsim::net {

class LinkNetwork
{
  public:
    LinkNetwork() = default;

    /**
     * Bind to a compiled topology with a base link bandwidth in
     * MB/s (a factor-1.0 link). Drops any in-flight flows; keeps
     * allocations, so sessions reconfigure per replay for free.
     */
    void configure(const CompiledTopology *topo, double base_mbps);

    /**
     * Aim the network's observability counters (rate recomputes
     * taken vs skipped, finish re-arms) at the owner's stats block.
     * Non-owning; null (the default) disables counting. The driver
     * re-installs the pointer after every snapshot restore — this
     * object is copied whole into checkpoint images, and the
     * counters must stay monotone across rollbacks rather than
     * follow the machine state back.
     */
    void setStats(obs::EngineStats *stats) { stats_ = stats; }

    /**
     * Admit flow `id` from `src` to `dst` nodes at `now` and return
     * the finish time the driver must schedule. Admission can only
     * slow other flows down; their already-scheduled finish events
     * re-arm lazily when they fire early. Returns SimTime::max()
     * when the route is currently frozen (a scenario stalled or
     * failed one of its links): the flow is admitted but makes no
     * progress, and a later applyScales() recovery reschedules it.
     */
    SimTime start(std::uint32_t id, int src, int dst, Bytes bytes,
                  SimTime now);

    struct FinishCheck
    {
        /** The flow completed; its links are freed. */
        bool done = false;
        /** When !done && reschedule: the corrected finish time. */
        SimTime retry;
        /**
         * When !done: whether the driver must schedule `retry` (a
         * pending event may already cover the corrected finish).
         */
        bool reschedule = false;
    };

    /**
     * A finish event for `id` fired at `now`. Completion frees the
     * flow's links, advances every surviving flow and recomputes
     * their rates; flows that sped up appear in
     * pendingReschedules() for the driver to re-arm.
     */
    FinishCheck onFinishEvent(std::uint32_t id, SimTime now);

    /**
     * (flow id, earlier finish time) pairs produced by the last
     * completion; the driver schedules each and then clears.
     */
    std::span<const std::pair<std::uint32_t, SimTime>>
    pendingReschedules() const
    {
        return reschedules_;
    }

    void clearPendingReschedules() { reschedules_.clear(); }

    /** In-flight flow count (0 when the network is drained). */
    std::uint32_t
    activeFlows() const
    {
        return static_cast<std::uint32_t>(flows_.size());
    }

    /**
     * Sum of link occupancies. Invariant pinned by tests: equals
     * the summed route lengths of the in-flight flows, and zero
     * once the network drains.
     */
    std::uint64_t totalLoad() const;

    /** Current occupancy of one link (flows crossing it). */
    std::uint32_t
    linkLoad(std::uint32_t link) const
    {
        return linkLoad_[link];
    }

    /**
     * Scenario seam: scale a link's capacity relative to its
     * configured rate. 1.0 restores the compiled capacity, values
     * in (0, 1) degrade it, 0 kills the link (flows crossing it
     * freeze at rate 0). Takes effect at the next applyScales().
     */
    void setLinkScale(std::uint32_t link, double scale);

    /** Current scenario scale of a link (1.0 when undisturbed). */
    double
    linkScale(std::uint32_t link) const
    {
        return linkScale_[link];
    }

    /**
     * Commit pending setLinkScale() changes at `now`: settle every
     * flow's progress under the old rates, then recompute the rates
     * of flows crossing a changed link through the same bottleneck
     * machinery as admission/completion. Slowdowns re-arm lazily
     * (the stale early event corrects itself); speedups — including
     * flows unfreezing after a recovery — appear in
     * pendingReschedules() for the driver.
     */
    void applyScales(SimTime now);

    /**
     * Effective route of a (src, dst) pair: the scenario reroute
     * override when one is active, else the compiled route.
     */
    std::span<const std::uint32_t>
    routeOf(int src, int dst) const
    {
        if (!overrideRoutes_.empty()) {
            const std::int32_t o = overrideIdx_[rowOf(src, dst)];
            if (o >= 0)
                return overrideRoutes_[static_cast<std::size_t>(o)];
        }
        return topo_->route(src, dst);
    }

    /**
     * Resilience seam: slide every in-flight flow's clock forward
     * by `delta` without progressing any bytes. The checkpoint
     * freeze stops simulated time for the whole machine while the
     * checkpoint is written; the driver shifts its pending events
     * by the same delta, so each flow's armed event still matches
     * its (unchanged) remaining bytes and rate.
     */
    void shiftFlowClocks(SimTime delta);

    /**
     * Resilience seam: abort in-flight flow `id` at `now` without
     * completing it (a fail-stop rollback cancels the transfer).
     * Frees the flow's links exactly like a completion — so
     * totalLoad() drops by the effective route length and the
     * occupancy invariant is conserved — then recomputes the
     * survivors' rates; speedups appear in pendingReschedules().
     */
    void cancel(std::uint32_t id, SimTime now);

    /** Cancel every in-flight flow (rollback of a whole replay
     * region). Afterwards activeFlows() and totalLoad() are 0. */
    void cancelAll(SimTime now);

    /** First unroutable pair when rerouteDeadLinks() fails. */
    struct RerouteReport
    {
        bool ok = true;
        int src = 0;
        int dst = 0;
    };

    /**
     * Re-resolve every (src, dst) pair whose effective route
     * crosses a dead (scale == 0) link: breadth-first shortest path
     * over the surviving directed links of the topology graph,
     * deterministic (links expand in id order). Pairs whose
     * compiled route no longer crosses a dead link drop back to it.
     * In-flight flows migrate — their occupancy moves from the old
     * route to the new one and every rate is recomputed, so
     * totalLoad() stays equal to the summed effective route
     * lengths. Returns {false, src, dst} for the first pair with no
     * surviving path (the topology has no diversity there); the
     * caller decides how fatal that is.
     */
    RerouteReport rerouteDeadLinks(SimTime now);

  private:
    struct Flow
    {
        std::uint32_t id = 0;
        int src = 0;
        int dst = 0;
        /** Bytes still to serialize through the bottleneck. */
        double remaining = 0.0;
        /** Current bottleneck share, bytes per ns. */
        double rate = 0.0;
        SimTime lastUpdate;
        /**
         * Time of the pending finish event believed to be the
         * earliest for this flow. Between rate changes there is
         * always one pending event at `armed`, so no completion is
         * ever missed; extra stale events re-arm or fall through
         * harmlessly.
         */
        SimTime armed;
    };

    /** Bottleneck share of one flow under current occupancies. */
    double bottleneckRate(const Flow &flow) const;

    /**
     * Recompute the rate of every flow crossing a link of the
     * current touch epoch and re-arm eagerly the ones that sped up
     * (emitting reschedules); untouched flows are provably
     * unaffected and skipped. Shared tail of completion, cancel
     * and applyScales — the decision counts feed the skip/take
     * observability counters.
     */
    void rebalanceTouched(SimTime now);

    /** Progress every flow to `now` at its current rate. */
    void advanceAll(SimTime now);

    /**
     * Mark the links of a route touched by the current join/leave
     * (bumps the touch epoch). touches() then answers whether a
     * flow's route crosses any touched link — flows that do not are
     * provably unaffected: no load on their route changed, so their
     * bottleneck share (and armed finish event) is still exact and
     * both the rate recompute and the re-arm check can be skipped.
     */
    void markTouched(int src, int dst);
    bool touches(const Flow &flow) const;

    /**
     * Finish instant of a flow at its current rate (ceil to the
     * integer-ns clock, so the event never fires with bytes left
     * from rounding alone).
     */
    static SimTime finishTime(const Flow &flow, SimTime now);

    std::size_t
    rowOf(int src, int dst) const
    {
        return static_cast<std::size_t>(src) *
            static_cast<std::size_t>(topo_->nodes()) +
            static_cast<std::size_t>(dst);
    }

    const CompiledTopology *topo_ = nullptr;
    /** Per-link capacity in bytes/ns and current occupancy. */
    std::vector<double> linkRate_;
    std::vector<std::uint32_t> linkLoad_;
    /** Configured (scale-1.0) capacity per link. */
    std::vector<double> linkBase_;
    /** Scenario capacity scale per link (1.0 = undisturbed). */
    std::vector<double> linkScale_;
    /** Links changed since the last applyScales(). */
    std::vector<std::uint32_t> scaleDirty_;
    /** Reroute overrides: per (src, dst) row, -1 or an index into
     * overrideRoutes_. Empty overrideRoutes_ = no overrides. */
    std::vector<std::int32_t> overrideIdx_;
    std::vector<std::vector<std::uint32_t>> overrideRoutes_;
    /** Links touched in the current epoch (see markTouched). */
    std::vector<std::uint32_t> linkTouch_;
    std::uint32_t touchEpoch_ = 0;
    /** In-flight flows, admission-ordered. */
    std::vector<Flow> flows_;
    std::vector<std::pair<std::uint32_t, SimTime>> reschedules_;
    /** Observability sink (see setStats); null = disabled. */
    obs::EngineStats *stats_ = nullptr;
};

} // namespace ovlsim::net

#endif // OVLSIM_NET_NETWORK_HH
