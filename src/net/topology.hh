/**
 * @file
 * Network topology descriptions and the route compiler.
 *
 * The seed platform mirrors Dimemas' machine model: a flat pool of
 * buses plus per-node injection/reception links, so every study can
 * vary only bandwidth, latency and bus count. This module adds real
 * interconnect shapes underneath the replay engine — the versatile-
 * network-model argument of SimGrid and the topology-aware design of
 * large-scale simulation work:
 *
 *  - fat-tree with configurable tapering (an aggregate tree: each
 *    up/down edge stands for all parallel physical links at that
 *    level, with `fatTreeTaper` scaling its capacity relative to
 *    full bisection),
 *  - k-ary torus/mesh with dimension-ordered routing,
 *  - dragonfly (all-to-all router groups joined by one aggregate
 *    global link per group pair).
 *
 * A TopologyConfig is a pure description. compileTopology() lowers it
 * once per (topology, node count) into a CompiledTopology: flat
 * per-(srcNode, dstNode) link-id sequences in CSR layout plus a
 * per-link capacity factor — the same compile-once philosophy as
 * sim/program.hh, so the replay hot path never walks a graph. The
 * link-level contention model that consumes these routes lives in
 * net/network.hh.
 *
 * Every route is directed and includes a per-node injection link at
 * the source and a reception link at the destination, so NIC
 * contention falls out of the same link-sharing model as switch
 * contention. The flat-bus kind compiles to an empty table: the
 * engine keeps its classic (bit-identical) bus path for it, and the
 * Dimemas bus/out-link/in-link counts only apply there.
 */

#ifndef OVLSIM_NET_TOPOLOGY_HH
#define OVLSIM_NET_TOPOLOGY_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ovlsim::net {

/** Interconnect shapes understood by the route compiler. */
enum class TopologyKind : std::uint8_t {
    /** Dimemas bus pool (the seed model; engine fast path). */
    flatBus,
    /** Tree with per-level tapering of aggregate link capacity. */
    fatTree,
    /** k-ary torus (wrap links) or mesh (no wrap). */
    torus,
    /** Groups of routers, all-to-all locally and globally. */
    dragonfly,
};

/** Stable name of a topology kind (config files, reports). */
const char *topologyKindName(TopologyKind kind);

/** Parse a topology kind name; throws FatalError on garbage. */
TopologyKind topologyKindFromName(const std::string &name);

/** Complete description of one interconnect. */
struct TopologyConfig
{
    TopologyKind kind = TopologyKind::flatBus;

    /**
     * Fat tree: nodes (and switches) per switch port group. The
     * aggregate-tree construction assumes a power-of-two radix;
     * validate() rejects others.
     */
    int fatTreeRadix = 4;

    /**
     * Capacity of a level-l aggregate link relative to full
     * bisection: factor = (radix * taper)^l. 1.0 reproduces a full
     * (non-blocking) fat tree; 0.5 is the classic 2:1 taper per
     * level, concentrating contention toward the root.
     */
    double fatTreeTaper = 1.0;

    /**
     * Torus dimensions, e.g. {4, 4, 2}. Empty means "auto": the
     * compiler picks a near-square 2-D grid covering the node
     * count.
     */
    std::vector<int> torusDims;

    /** True = torus (wrap links); false = mesh. */
    bool torusWrap = true;

    /** Dragonfly groups; 0 means "auto-size to the node count". */
    int dragonflyGroups = 0;

    /** Routers per dragonfly group (all-to-all inside a group). */
    int dragonflyRoutersPerGroup = 2;

    /** Nodes attached to each dragonfly router. */
    int dragonflyNodesPerRouter = 2;

    /**
     * Base capacity of a factor-1.0 link in MB/s; 0 means "inherit
     * the platform's remote bandwidth", which keeps bandwidth
     * sweeps meaningful across topologies.
     */
    double linkBandwidthMBps = 0.0;

    /** Extra one-way latency per hop beyond the first, in us. */
    double hopLatencyUs = 0.0;

    bool isFlat() const { return kind == TopologyKind::flatBus; }

    /** Validate ranges; throws FatalError on nonsense values. */
    void validate() const;

    bool operator==(const TopologyConfig &) const = default;
};

/**
 * A topology lowered into flat per-(srcNode, dstNode) routes.
 *
 * Routes are CSR windows into one shared link-id array; link
 * capacities are stored as factors relative to the platform's base
 * link bandwidth. Immutable after compilation; the engine caches one
 * per (topology, node count) and replays any number of platforms
 * against it.
 */
class CompiledTopology
{
  public:
    CompiledTopology() = default;

    int nodes() const { return nodes_; }
    std::uint32_t linkCount() const
    {
        return static_cast<std::uint32_t>(linkFactor_.size());
    }

    /** Longest compiled route, in links. */
    std::size_t maxRouteLength() const { return maxRoute_; }

    /** Capacity multiplier of a link vs the base bandwidth. */
    double
    linkFactor(std::uint32_t link) const
    {
        return linkFactor_[link];
    }

    /**
     * Vertices of the underlying graph: ids [0, nodes) are the
     * nodes themselves, ids >= nodes are switches/routers. Every
     * link is a directed edge between two vertices, so fault
     * handling can re-resolve routes around a dead link by
     * searching the surviving graph (scen/ reroute semantics).
     */
    std::uint32_t vertexCount() const { return vertices_; }

    /** Source vertex of a directed link. */
    std::uint32_t
    linkFrom(std::uint32_t link) const
    {
        return linkFrom_[link];
    }

    /** Destination vertex of a directed link. */
    std::uint32_t
    linkTo(std::uint32_t link) const
    {
        return linkTo_[link];
    }

    /**
     * True for per-node injection/reception (NIC) links — one
     * endpoint is a node vertex. Fabric links join two switches.
     */
    bool
    isHostLink(std::uint32_t link) const
    {
        return linkFrom_[link] < static_cast<std::uint32_t>(nodes_) ||
            linkTo_[link] < static_cast<std::uint32_t>(nodes_);
    }

    /**
     * Link ids a (src, dst) transfer occupies, in traversal order:
     * injection link, fabric links, reception link. Empty when
     * src == dst (intra-node traffic bypasses the network) and for
     * the flat-bus kind.
     */
    std::span<const std::uint32_t>
    route(int src, int dst) const
    {
        const std::size_t row =
            static_cast<std::size_t>(src) *
                static_cast<std::size_t>(nodes_) +
            static_cast<std::size_t>(dst);
        return {linkIds_.data() + routeBegin_[row],
                linkIds_.data() + routeBegin_[row + 1]};
    }

    /** Heap footprint of the compiled tables (cache accounting). */
    std::size_t
    memoryBytes() const
    {
        return linkFactor_.size() * sizeof(double) +
            (linkFrom_.size() + linkTo_.size() +
             routeBegin_.size() + linkIds_.size()) *
            sizeof(std::uint32_t);
    }

  private:
    friend CompiledTopology compileTopology(
        const TopologyConfig &config, int nodes);
    /** Route accumulator (topology.cc) that seals into this. */
    friend class TopologyBuilder;

    int nodes_ = 0;
    std::size_t maxRoute_ = 0;
    std::uint32_t vertices_ = 0;
    std::vector<double> linkFactor_;
    std::vector<std::uint32_t> linkFrom_;
    std::vector<std::uint32_t> linkTo_;
    /** CSR offsets, nodes_^2 + 1 entries. */
    std::vector<std::uint32_t> routeBegin_;
    std::vector<std::uint32_t> linkIds_;
};

/**
 * Lower `config` into per-node-pair link routes for a machine of
 * `nodes` nodes. Throws FatalError when the topology cannot host
 * the node count (torus dims or dragonfly sizing too small) — the
 * auto-sized variants (empty torusDims, dragonflyGroups == 0) always
 * fit. Deterministic: equal inputs compile to equal tables.
 */
CompiledTopology compileTopology(const TopologyConfig &config,
                                 int nodes);

/** Ready-made topology descriptions used by campaigns/examples. */
namespace topologies {

/** The seed flat bus pool (engine fast path). */
TopologyConfig flatBus();

/** Full-bisection fat tree (radix 4). */
TopologyConfig fatTree(int radix = 4);

/** 2:1-per-level tapered fat tree (radix 4). */
TopologyConfig taperedFatTree(int radix = 4, double taper = 0.5);

/** Auto-sized wrapped 2-D torus. */
TopologyConfig torus2d();

/** Auto-sized dragonfly (2 routers/group, 2 nodes/router). */
TopologyConfig dragonfly();

} // namespace topologies

} // namespace ovlsim::net

#endif // OVLSIM_NET_TOPOLOGY_HH
