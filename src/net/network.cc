#include "network.hh"

#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace ovlsim::net {

namespace {

/**
 * Residual-byte tolerance when deciding that a flow has finished.
 * finishTime() rounds up to the integer-ns clock, so at the armed
 * instant a flow's remaining bytes are <= 0 up to double rounding;
 * anything materially positive means a slowdown intervened and the
 * event fired early.
 */
constexpr double remainingEps = 1e-3;

} // namespace

void
LinkNetwork::configure(const CompiledTopology *topo,
                       double base_mbps)
{
    ovlAssert(topo != nullptr, "LinkNetwork: null topology");
    ovlAssert(base_mbps > 0.0,
              "LinkNetwork: base bandwidth must be positive");
    topo_ = topo;
    const std::size_t links = topo->linkCount();
    linkRate_.resize(links);
    for (std::size_t l = 0; l < links; ++l) {
        // MB/s = 1e6 bytes per second = 1e-3 bytes per ns.
        linkRate_[l] = topo->linkFactor(
                           static_cast<std::uint32_t>(l)) *
            base_mbps * 1e-3;
    }
    linkLoad_.assign(links, 0);
    linkTouch_.assign(links, 0);
    touchEpoch_ = 0;
    flows_.clear();
    reschedules_.clear();
}

void
LinkNetwork::markTouched(int src, int dst)
{
    ++touchEpoch_;
    for (const std::uint32_t link : topo_->route(src, dst))
        linkTouch_[link] = touchEpoch_;
}

bool
LinkNetwork::touches(const Flow &flow) const
{
    for (const std::uint32_t link :
         topo_->route(flow.src, flow.dst)) {
        if (linkTouch_[link] == touchEpoch_)
            return true;
    }
    return false;
}

double
LinkNetwork::bottleneckRate(const Flow &flow) const
{
    double rate = std::numeric_limits<double>::infinity();
    for (const std::uint32_t link :
         topo_->route(flow.src, flow.dst)) {
        const double share = linkRate_[link] /
            static_cast<double>(linkLoad_[link]);
        if (share < rate)
            rate = share;
    }
    ovlAssert(rate > 0.0 && std::isfinite(rate),
              "LinkNetwork: flow over an empty route");
    return rate;
}

void
LinkNetwork::advanceAll(SimTime now)
{
    for (Flow &flow : flows_) {
        const std::int64_t dt = (now - flow.lastUpdate).ns();
        if (dt <= 0)
            continue;
        flow.remaining -= flow.rate * static_cast<double>(dt);
        if (flow.remaining < 0.0)
            flow.remaining = 0.0;
        flow.lastUpdate = now;
    }
}

SimTime
LinkNetwork::finishTime(const Flow &flow, SimTime now)
{
    if (flow.remaining <= 0.0)
        return now;
    const double ns = std::ceil(flow.remaining / flow.rate);
    return now + SimTime::fromNs(static_cast<std::int64_t>(ns));
}

SimTime
LinkNetwork::start(std::uint32_t id, int src, int dst, Bytes bytes,
                   SimTime now)
{
    ovlAssert(topo_ != nullptr, "LinkNetwork: not configured");
    ovlAssert(src != dst,
              "LinkNetwork: intra-node traffic bypasses the "
              "network");
    // Settle everyone's progress under the pre-admission rates.
    advanceAll(now);
    for (const std::uint32_t link : topo_->route(src, dst))
        ++linkLoad_[link];
    markTouched(src, dst);

    Flow flow;
    flow.id = id;
    flow.src = src;
    flow.dst = dst;
    flow.remaining = static_cast<double>(bytes);
    flow.lastUpdate = now;
    flows_.push_back(flow);

    // Occupancy only grew, so rates can only drop: no flow's armed
    // event needs replacing — stale early events re-arm when they
    // fire. (A flow admitted mid-rendezvous-overhead may have
    // lastUpdate ahead of older flows; advanceAll clamps dt >= 0.)
    // Flows whose routes miss every link the admission loaded keep
    // their bottleneck share unchanged, so their rate is not even
    // recomputed.
    for (Flow &f : flows_) {
        if (touches(f))
            f.rate = bottleneckRate(f);
    }
    Flow &admitted = flows_.back();
    admitted.armed = finishTime(admitted, now);
    return admitted.armed;
}

LinkNetwork::FinishCheck
LinkNetwork::onFinishEvent(std::uint32_t id, SimTime now)
{
    std::size_t slot = flows_.size();
    for (std::size_t i = 0; i < flows_.size(); ++i) {
        if (flows_[i].id == id) {
            slot = i;
            break;
        }
    }
    ovlAssert(slot < flows_.size(),
              "LinkNetwork: finish event for unknown flow");

    {
        Flow &flow = flows_[slot];
        const std::int64_t dt = (now - flow.lastUpdate).ns();
        if (dt > 0) {
            flow.remaining -=
                flow.rate * static_cast<double>(dt);
            flow.lastUpdate = now;
        }
        if (flow.remaining > remainingEps) {
            // Early (stale) event: a slowdown moved the finish out.
            // Re-arm unless a pending event already covers it.
            const SimTime retry = finishTime(flow, now);
            FinishCheck check;
            check.retry = retry;
            if (retry < flow.armed || flow.armed <= now) {
                flow.armed = retry;
                check.reschedule = true;
            }
            return check;
        }
    }

    // Completed: free the links, settle the survivors under the old
    // rates, then hand out the speedups. Survivors whose routes
    // miss every freed link — or whose bottleneck sits on an
    // untouched link and keeps the same share — skip the re-arm
    // check entirely: their armed finish event is still exact
    // (ROADMAP's "O(active flows) per rate change" open item, the
    // rate-recompute/re-arm half).
    const Flow done = flows_[slot];
    advanceAll(now);
    flows_.erase(flows_.begin() +
                 static_cast<std::ptrdiff_t>(slot));
    for (const std::uint32_t link :
         topo_->route(done.src, done.dst)) {
        ovlAssert(linkLoad_[link] > 0,
                  "LinkNetwork: link occupancy underflow");
        --linkLoad_[link];
    }
    markTouched(done.src, done.dst);
    for (Flow &flow : flows_) {
        if (!touches(flow))
            continue;
        const double rate = bottleneckRate(flow);
        if (rate == flow.rate)
            continue;
        flow.rate = rate;
        const SimTime finish = finishTime(flow, now);
        if (finish < flow.armed) {
            flow.armed = finish;
            reschedules_.emplace_back(flow.id, finish);
        }
    }
    FinishCheck check;
    check.done = true;
    check.retry = now;
    return check;
}

std::uint64_t
LinkNetwork::totalLoad() const
{
    std::uint64_t total = 0;
    for (const std::uint32_t load : linkLoad_)
        total += load;
    return total;
}

} // namespace ovlsim::net
