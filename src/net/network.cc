#include "network.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace ovlsim::net {

namespace {

/**
 * Residual-byte tolerance when deciding that a flow has finished.
 * finishTime() rounds up to the integer-ns clock, so at the armed
 * instant a flow's remaining bytes are <= 0 up to double rounding;
 * anything materially positive means a slowdown intervened and the
 * event fired early.
 */
constexpr double remainingEps = 1e-3;

} // namespace

void
LinkNetwork::configure(const CompiledTopology *topo,
                       double base_mbps)
{
    ovlAssert(topo != nullptr, "LinkNetwork: null topology");
    ovlAssert(base_mbps > 0.0,
              "LinkNetwork: base bandwidth must be positive");
    topo_ = topo;
    const std::size_t links = topo->linkCount();
    linkRate_.resize(links);
    linkBase_.resize(links);
    for (std::size_t l = 0; l < links; ++l) {
        // MB/s = 1e6 bytes per second = 1e-3 bytes per ns.
        linkBase_[l] = topo->linkFactor(
                           static_cast<std::uint32_t>(l)) *
            base_mbps * 1e-3;
        linkRate_[l] = linkBase_[l];
    }
    linkScale_.assign(links, 1.0);
    scaleDirty_.clear();
    overrideIdx_.clear();
    overrideRoutes_.clear();
    linkLoad_.assign(links, 0);
    linkTouch_.assign(links, 0);
    touchEpoch_ = 0;
    flows_.clear();
    reschedules_.clear();
}

void
LinkNetwork::markTouched(int src, int dst)
{
    ++touchEpoch_;
    for (const std::uint32_t link : routeOf(src, dst))
        linkTouch_[link] = touchEpoch_;
}

bool
LinkNetwork::touches(const Flow &flow) const
{
    for (const std::uint32_t link :
         routeOf(flow.src, flow.dst)) {
        if (linkTouch_[link] == touchEpoch_)
            return true;
    }
    return false;
}

double
LinkNetwork::bottleneckRate(const Flow &flow) const
{
    double rate = std::numeric_limits<double>::infinity();
    for (const std::uint32_t link :
         routeOf(flow.src, flow.dst)) {
        const double share = linkRate_[link] /
            static_cast<double>(linkLoad_[link]);
        if (share < rate)
            rate = share;
    }
    // Rate 0 is legal: a scenario froze a link on the route and the
    // flow is parked until recovery.
    ovlAssert(rate >= 0.0 && std::isfinite(rate),
              "LinkNetwork: flow over an empty route");
    return rate;
}

void
LinkNetwork::advanceAll(SimTime now)
{
    for (Flow &flow : flows_) {
        const std::int64_t dt = (now - flow.lastUpdate).ns();
        if (dt <= 0)
            continue;
        flow.remaining -= flow.rate * static_cast<double>(dt);
        if (flow.remaining < 0.0)
            flow.remaining = 0.0;
        flow.lastUpdate = now;
    }
}

void
LinkNetwork::rebalanceTouched(SimTime now)
{
    for (Flow &flow : flows_) {
        if (!touches(flow)) {
            if (stats_) {
                ++stats_->recomputesSkipped;
                ++stats_->rearmsSkipped;
            }
            continue;
        }
        if (stats_)
            ++stats_->rateRecomputes;
        const double rate = bottleneckRate(flow);
        if (rate == flow.rate) {
            if (stats_)
                ++stats_->rearmsSkipped;
            continue;
        }
        flow.rate = rate;
        const SimTime finish = finishTime(flow, now);
        if (finish < flow.armed) {
            flow.armed = finish;
            reschedules_.emplace_back(flow.id, finish);
            if (stats_)
                ++stats_->rearmsTaken;
        } else if (stats_) {
            ++stats_->rearmsSkipped;
        }
    }
}

SimTime
LinkNetwork::finishTime(const Flow &flow, SimTime now)
{
    if (flow.remaining <= 0.0)
        return now;
    if (flow.rate <= 0.0)
        return SimTime::max(); // frozen: only a recovery re-arms
    const double ns = std::ceil(flow.remaining / flow.rate);
    return now + SimTime::fromNs(static_cast<std::int64_t>(ns));
}

SimTime
LinkNetwork::start(std::uint32_t id, int src, int dst, Bytes bytes,
                   SimTime now)
{
    ovlAssert(topo_ != nullptr, "LinkNetwork: not configured");
    ovlAssert(src != dst,
              "LinkNetwork: intra-node traffic bypasses the "
              "network");
    // Settle everyone's progress under the pre-admission rates.
    advanceAll(now);
    for (const std::uint32_t link : routeOf(src, dst))
        ++linkLoad_[link];
    markTouched(src, dst);

    Flow flow;
    flow.id = id;
    flow.src = src;
    flow.dst = dst;
    flow.remaining = static_cast<double>(bytes);
    flow.lastUpdate = now;
    flows_.push_back(flow);

    // Occupancy only grew, so rates can only drop: no flow's armed
    // event needs replacing — stale early events re-arm when they
    // fire. (A flow admitted mid-rendezvous-overhead may have
    // lastUpdate ahead of older flows; advanceAll clamps dt >= 0.)
    // Flows whose routes miss every link the admission loaded keep
    // their bottleneck share unchanged, so their rate is not even
    // recomputed.
    for (Flow &f : flows_) {
        if (touches(f)) {
            f.rate = bottleneckRate(f);
            if (stats_)
                ++stats_->rateRecomputes;
        } else if (stats_) {
            ++stats_->recomputesSkipped;
        }
    }
    Flow &admitted = flows_.back();
    admitted.armed = finishTime(admitted, now);
    return admitted.armed;
}

LinkNetwork::FinishCheck
LinkNetwork::onFinishEvent(std::uint32_t id, SimTime now)
{
    std::size_t slot = flows_.size();
    for (std::size_t i = 0; i < flows_.size(); ++i) {
        if (flows_[i].id == id) {
            slot = i;
            break;
        }
    }
    ovlAssert(slot < flows_.size(),
              "LinkNetwork: finish event for unknown flow");

    {
        Flow &flow = flows_[slot];
        const std::int64_t dt = (now - flow.lastUpdate).ns();
        if (dt > 0) {
            flow.remaining -=
                flow.rate * static_cast<double>(dt);
            flow.lastUpdate = now;
        }
        if (flow.remaining > remainingEps) {
            // Early (stale) event: a slowdown moved the finish out.
            // Re-arm unless a pending event already covers it. A
            // frozen flow (rate 0) parks instead: no event to
            // schedule, the recovery's applyScales() re-arms it.
            const SimTime retry = finishTime(flow, now);
            FinishCheck check;
            check.retry = retry;
            if (retry == SimTime::max()) {
                flow.armed = SimTime::max();
                return check;
            }
            if (retry < flow.armed || flow.armed <= now) {
                flow.armed = retry;
                check.reschedule = true;
            }
            return check;
        }
    }

    // Completed: free the links, settle the survivors under the old
    // rates, then hand out the speedups. Survivors whose routes
    // miss every freed link — or whose bottleneck sits on an
    // untouched link and keeps the same share — skip the re-arm
    // check entirely: their armed finish event is still exact
    // (ROADMAP's "O(active flows) per rate change" open item, the
    // rate-recompute/re-arm half).
    const Flow done = flows_[slot];
    advanceAll(now);
    flows_.erase(flows_.begin() +
                 static_cast<std::ptrdiff_t>(slot));
    for (const std::uint32_t link :
         routeOf(done.src, done.dst)) {
        ovlAssert(linkLoad_[link] > 0,
                  "LinkNetwork: link occupancy underflow");
        --linkLoad_[link];
    }
    markTouched(done.src, done.dst);
    rebalanceTouched(now);
    FinishCheck check;
    check.done = true;
    check.retry = now;
    return check;
}

void
LinkNetwork::shiftFlowClocks(SimTime delta)
{
    for (Flow &flow : flows_) {
        flow.lastUpdate = flow.lastUpdate + delta;
        if (flow.armed != SimTime::max())
            flow.armed = flow.armed + delta;
    }
}

void
LinkNetwork::cancel(std::uint32_t id, SimTime now)
{
    std::size_t slot = flows_.size();
    for (std::size_t i = 0; i < flows_.size(); ++i) {
        if (flows_[i].id == id) {
            slot = i;
            break;
        }
    }
    ovlAssert(slot < flows_.size(),
              "LinkNetwork: cancel for unknown flow");
    // Identical bookkeeping to a completion, minus the "bytes hit
    // zero" part: settle everyone under the old rates, free the
    // aborted flow's links, redistribute the shares.
    const Flow dead = flows_[slot];
    advanceAll(now);
    flows_.erase(flows_.begin() + static_cast<std::ptrdiff_t>(slot));
    for (const std::uint32_t link : routeOf(dead.src, dead.dst)) {
        ovlAssert(linkLoad_[link] > 0,
                  "LinkNetwork: link occupancy underflow");
        --linkLoad_[link];
    }
    markTouched(dead.src, dead.dst);
    rebalanceTouched(now);
}

void
LinkNetwork::cancelAll(SimTime now)
{
    // Free links in admission order; no rate recompute is needed
    // since no survivors remain.
    advanceAll(now);
    for (const Flow &flow : flows_) {
        for (const std::uint32_t link :
             routeOf(flow.src, flow.dst)) {
            ovlAssert(linkLoad_[link] > 0,
                      "LinkNetwork: link occupancy underflow");
            --linkLoad_[link];
        }
    }
    flows_.clear();
    reschedules_.clear();
}

std::uint64_t
LinkNetwork::totalLoad() const
{
    std::uint64_t total = 0;
    for (const std::uint32_t load : linkLoad_)
        total += load;
    return total;
}

void
LinkNetwork::setLinkScale(std::uint32_t link, double scale)
{
    ovlAssert(scale >= 0.0,
              "LinkNetwork: link scale must be non-negative");
    if (linkScale_[link] == scale)
        return;
    linkScale_[link] = scale;
    linkRate_[link] = linkBase_[link] * scale;
    scaleDirty_.push_back(link);
}

void
LinkNetwork::applyScales(SimTime now)
{
    if (scaleDirty_.empty())
        return;
    advanceAll(now);
    ++touchEpoch_;
    for (const std::uint32_t link : scaleDirty_)
        linkTouch_[link] = touchEpoch_;
    scaleDirty_.clear();
    // Speedups (including unfreezes, whose armed is "never")
    // re-arm eagerly; slowdowns wait for their stale event.
    rebalanceTouched(now);
}

LinkNetwork::RerouteReport
LinkNetwork::rerouteDeadLinks(SimTime now)
{
    ovlAssert(topo_ != nullptr, "LinkNetwork: not configured");
    advanceAll(now);
    const int nodes = topo_->nodes();
    const std::uint32_t links = topo_->linkCount();

    // Snapshot the routes whose occupancy the in-flight flows
    // currently hold, before any override changes underneath them.
    std::vector<std::vector<std::uint32_t>> held;
    held.reserve(flows_.size());
    for (const Flow &flow : flows_) {
        const auto r = routeOf(flow.src, flow.dst);
        held.emplace_back(r.begin(), r.end());
    }

    // Adjacency of the surviving directed graph, links in id order
    // so the breadth-first parents — and hence every detour — are
    // deterministic.
    std::vector<std::vector<std::uint32_t>> out(
        topo_->vertexCount());
    for (std::uint32_t l = 0; l < links; ++l) {
        if (linkScale_[l] > 0.0)
            out[topo_->linkFrom(l)].push_back(l);
    }
    const auto isDead = [&](std::span<const std::uint32_t> route) {
        for (const std::uint32_t l : route)
            if (linkScale_[l] <= 0.0)
                return true;
        return false;
    };
    constexpr std::uint32_t noParent =
        std::numeric_limits<std::uint32_t>::max();
    std::vector<std::uint32_t> parent(topo_->vertexCount());
    std::vector<std::uint32_t> queue;

    overrideRoutes_.clear();
    overrideIdx_.assign(static_cast<std::size_t>(nodes) *
                            static_cast<std::size_t>(nodes),
                        -1);
    for (int s = 0; s < nodes; ++s) {
        for (int d = 0; d < nodes; ++d) {
            if (s == d)
                continue;
            const auto compiled = topo_->route(s, d);
            if (!isDead(compiled))
                continue; // compiled route survives; no override
            // Shortest surviving path s -> d by hop count.
            parent.assign(parent.size(), noParent);
            queue.clear();
            queue.push_back(static_cast<std::uint32_t>(s));
            bool found = false;
            for (std::size_t head = 0;
                 head < queue.size() && !found; ++head) {
                const std::uint32_t v = queue[head];
                for (const std::uint32_t l : out[v]) {
                    const std::uint32_t w = topo_->linkTo(l);
                    if (w == static_cast<std::uint32_t>(s) ||
                        parent[w] != noParent)
                        continue;
                    parent[w] = l;
                    if (w == static_cast<std::uint32_t>(d)) {
                        found = true;
                        break;
                    }
                    queue.push_back(w);
                }
            }
            if (!found) {
                RerouteReport report;
                report.ok = false;
                report.src = s;
                report.dst = d;
                return report;
            }
            std::vector<std::uint32_t> path;
            for (std::uint32_t v = static_cast<std::uint32_t>(d);
                 v != static_cast<std::uint32_t>(s);
                 v = topo_->linkFrom(parent[v]))
                path.push_back(parent[v]);
            std::reverse(path.begin(), path.end());
            overrideIdx_[rowOf(s, d)] = static_cast<std::int32_t>(
                overrideRoutes_.size());
            overrideRoutes_.push_back(std::move(path));
        }
    }
    if (overrideRoutes_.empty())
        overrideIdx_.clear();

    // Migrate in-flight flows: move their occupancy from the route
    // they held to the new effective one, then recompute every
    // rate. Total load is conserved by construction: each flow
    // holds exactly one route's worth of occupancy at all times.
    for (std::size_t i = 0; i < flows_.size(); ++i) {
        Flow &flow = flows_[i];
        const auto fresh = routeOf(flow.src, flow.dst);
        const auto &old = held[i];
        if (std::equal(fresh.begin(), fresh.end(), old.begin(),
                       old.end()))
            continue;
        for (const std::uint32_t l : old) {
            ovlAssert(linkLoad_[l] > 0,
                      "LinkNetwork: link occupancy underflow");
            --linkLoad_[l];
        }
        for (const std::uint32_t l : fresh)
            ++linkLoad_[l];
    }
    for (Flow &flow : flows_) {
        // Occupancies may have moved anywhere: every rate is
        // recomputed, nothing can be proven untouched.
        if (stats_)
            ++stats_->rateRecomputes;
        const double rate = bottleneckRate(flow);
        if (rate == flow.rate) {
            if (stats_)
                ++stats_->rearmsSkipped;
            continue;
        }
        flow.rate = rate;
        const SimTime finish = finishTime(flow, now);
        if (finish < flow.armed) {
            flow.armed = finish;
            reschedules_.emplace_back(flow.id, finish);
            if (stats_)
                ++stats_->rearmsTaken;
        } else if (stats_) {
            ++stats_->rearmsSkipped;
        }
    }
    return RerouteReport{};
}

} // namespace ovlsim::net
