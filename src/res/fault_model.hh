/**
 * @file
 * Stochastic fault models expanded into ordinary scenarios.
 *
 * The scenario engine (src/scen/) replays a fixed timestamped event
 * list; resilience studies need *distributions* of such lists —
 * "links fail every 5 ms on average and take 200 us to repair", run
 * over many seeds. A res::FaultModel describes seeded per-node and
 * per-link failure processes, each either
 *
 *  - an exponential renewal process (MTBF/MTTR means, the classic
 *    memoryless failure model), or
 *  - a deterministic availability state trace in the classic SimGrid
 *    shape (PERIODICITY header + time/value pairs, repeating until
 *    the horizon),
 *
 * and generateScenario() expands a model into an ordinary
 * scen::ScenarioConfig *before* the run. The engine never sees a
 * random number: per-seed determinism, TSAN-cleanliness and the
 * bit-identical scenario-free guarantee all carry over unchanged
 * from PR 6. Generation draws through util/counter_rng.hh with one
 * substream per process, so the expansion is order-independent and
 * reproducible across thread counts — sweep lane 7 expanding cell
 * (rate, seed) gets exactly the bytes lane 0 would have.
 *
 * Model file format (referenced from platform files via
 * `fault_model_file = ...`):
 *
 *     # defaults for generateScenario(model)
 *     seed = 42
 *     horizon_us = 100000
 *     # one line per failure process
 *     process node 3 fail-stop mtbf_us 5000
 *     process node 2 stall mtbf_us 4000 mttr_us 150
 *     process link 0 7 degrade 0.25 mtbf_us 3000 mttr_us 500
 *     process link 1 2 trace link12.trace
 *     # machine-wide crash (fail-stop only; drives the global
 *     # restore level of two-level checkpointing)
 *     process all fail-stop mtbf_us 50000
 */

#ifndef OVLSIM_RES_FAULT_MODEL_HH
#define OVLSIM_RES_FAULT_MODEL_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "scen/scenario.hh"
#include "util/types.hh"

namespace ovlsim::res {

/** What a process does to its target when it fires. */
enum class FaultEffect : std::uint8_t {
    /** Fail-stop: terminate (or, with checkpointing, roll back). */
    failStop,
    /** Freeze traffic over the target until repair. */
    stall,
    /** Scale the target's bandwidth down until repair. */
    degrade,
};

const char *faultEffectName(FaultEffect effect);

/** One point of an availability state trace: at `timeUs` into the
 * period the target's capacity fraction becomes `value` (1 = fully
 * up, 0 = down, in between = degraded). */
struct AvailabilityPoint
{
    double timeUs = 0.0;
    double value = 1.0;

    bool operator==(const AvailabilityPoint &) const = default;
};

/**
 * One failure process over one node, one directed link, or the whole
 * machine. Either an exponential MTBF/MTTR renewal process (trace
 * empty) or a periodic availability trace (trace set; mtbf/mttr/
 * effect unused except that value-0 intervals always stall —
 * availability traces have no fail-stop notion).
 */
struct FaultProcess
{
    /** node (nodeA's NIC links), link (the nodeA->nodeB route's
     * fabric links), or all (machine-wide; fail-stop only — an
     * `all` crash is what the global level of two-level
     * checkpointing recovers from). */
    scen::ScenTarget target = scen::ScenTarget::node;
    int nodeA = -1;
    int nodeB = -1;

    FaultEffect effect = FaultEffect::failStop;
    /** Capacity multiplier while a degrade fault is active. */
    double degradeFactor = 0.5;
    /** Mean time between failures / to repair, microseconds. */
    double mtbfUs = 0.0;
    double mttrUs = 0.0;

    /** Availability trace (empty for an exponential process). */
    std::string tracePath;
    double periodicityUs = 0.0;
    std::vector<AvailabilityPoint> trace;

    bool usesTrace() const { return !trace.empty(); }

    /** One-line description for errors and reports. */
    std::string describe() const;

    bool operator==(const FaultProcess &) const = default;
};

/** A seeded bag of failure processes plus generation defaults. */
struct FaultModel
{
    /** Where the model came from (round-trips the platform-file
     * `fault_model_file` key; empty for programmatic models). */
    std::string sourcePath;
    /** Default seed for generateScenario(model). */
    std::uint64_t seed = 1;
    /** Default generation horizon for generateScenario(model). */
    double horizonUs = 0.0;
    std::vector<FaultProcess> processes;

    bool empty() const { return processes.empty(); }

    /** Range checks; throws FatalError on nonsense values. */
    void validate() const;

    bool operator==(const FaultModel &) const = default;
};

/**
 * Expand a fault model into a concrete scenario: draw every
 * process's fault/repair instants over [0, horizon) and emit the
 * matching degrade/fail/recover events. Pure function of (model,
 * seed, horizon) — process i draws from CounterRng(seed, i), so the
 * result is bit-identical on every host, thread and call order.
 * Repairs always land, even past the horizon, so generated stalls
 * and degrades never wedge a replay that outlives the horizon; only
 * new faults are cut off. Fail-stop processes emit every renewal up
 * to the horizon — without checkpointing only the first one matters
 * (it terminates the replay), but under checkpoint/restart each
 * renewal triggers its own rollback, which is what Daly-style
 * optimal-interval statistics are made of.
 */
scen::ScenarioConfig generateScenario(const FaultModel &model,
                                      std::uint64_t seed,
                                      SimTime horizon);

/** Expansion with the model's own seed and horizon defaults. */
scen::ScenarioConfig generateScenario(const FaultModel &model);

/**
 * Daly's first-order optimal checkpoint interval: the compute time
 * between checkpoints that minimises expected runtime under
 * exponential failures with mean `mtbf_us` and a per-checkpoint
 * cost of `checkpoint_cost_us`,
 *
 *     tau* = sqrt(2 * C * M) - C      (valid for M >= C / 2).
 *
 * Below the validity bound the machine fails faster than it can
 * checkpoint and the formula's guard returns the degenerate
 * sqrt(2*C*M) instead of a negative interval. Used by the
 * protocol-comparison sweep (core::protocolSweep) as the analytic
 * prediction next to the swept optimum.
 */
double dalyInterval(double mtbf_us, double checkpoint_cost_us);

/**
 * Parse the model format above. `source` names the stream in parse
 * errors (file name + line number). Trace paths are resolved
 * relative to `dir` when relative (pass the model file's directory;
 * empty = current directory).
 */
FaultModel readFaultModel(std::istream &in,
                          const std::string &source = "fault model",
                          const std::string &dir = "");

/** Parse a model file; remembers `path` as sourcePath. */
FaultModel readFaultModelFile(const std::string &path);

/** Emit a model in the readFaultModel() format (round-trips;
 * availability traces are referenced by path, not inlined). */
void writeFaultModel(const FaultModel &model, std::ostream &out);

/**
 * Parse a SimGrid-shaped availability trace:
 *
 *     PERIODICITY 1000
 *     0   1.0
 *     500 0.5
 *     700 0
 *
 * Times are microseconds into the period, strictly increasing and
 * below the periodicity; values are capacity fractions in [0, 1].
 * The pattern repeats every PERIODICITY microseconds.
 */
std::vector<AvailabilityPoint>
readAvailabilityTrace(std::istream &in, const std::string &source,
                      double &periodicity_us);

std::vector<AvailabilityPoint>
readAvailabilityTraceFile(const std::string &path,
                          double &periodicity_us);

} // namespace ovlsim::res

#endif // OVLSIM_RES_FAULT_MODEL_HH
