#include "fault_model.hh"

#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/counter_rng.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace ovlsim::res {

const char *
faultEffectName(FaultEffect effect)
{
    switch (effect) {
      case FaultEffect::failStop: return "fail-stop";
      case FaultEffect::stall: return "stall";
      case FaultEffect::degrade: return "degrade";
    }
    return "unknown";
}

namespace {

/** Scope word(s) of a process in the model-file spelling. */
std::string
scopeString(const FaultProcess &proc)
{
    switch (proc.target) {
      case scen::ScenTarget::all:
        return "all";
      case scen::ScenTarget::node:
        return strformat("node %d", proc.nodeA);
      default:
        return strformat("link %d %d", proc.nodeA, proc.nodeB);
    }
}

} // namespace

std::string
FaultProcess::describe() const
{
    const std::string scope = scopeString(*this);
    if (usesTrace()) {
        return strformat("process %s trace %s", scope.c_str(),
                         tracePath.c_str());
    }
    if (effect == FaultEffect::degrade) {
        return strformat("process %s degrade %g mtbf_us %g "
                         "mttr_us %g",
                         scope.c_str(), degradeFactor, mtbfUs,
                         mttrUs);
    }
    return strformat("process %s %s mtbf_us %g mttr_us %g",
                     scope.c_str(), faultEffectName(effect), mtbfUs,
                     mttrUs);
}

void
FaultModel::validate() const
{
    if (!(horizonUs >= 0.0) || !std::isfinite(horizonUs))
        fatal("fault model: horizon_us must be finite and "
              "non-negative");
    for (const FaultProcess &proc : processes) {
        if (proc.target != scen::ScenTarget::node &&
            proc.target != scen::ScenTarget::link &&
            proc.target != scen::ScenTarget::all) {
            fatal("fault model: processes target a node, a link or "
                  "the whole machine (", proc.describe(), ")");
        }
        if (proc.target == scen::ScenTarget::all &&
            (proc.effect != FaultEffect::failStop ||
             proc.usesTrace())) {
            fatal("fault model: machine-wide processes are "
                  "fail-stop only (", proc.describe(), ")");
        }
        if (proc.target != scen::ScenTarget::all && proc.nodeA < 0) {
            fatal("fault model: process names no target node (",
                  proc.describe(), ")");
        }
        if (proc.target == scen::ScenTarget::link &&
            (proc.nodeB < 0 || proc.nodeB == proc.nodeA)) {
            fatal("fault model: link processes need two distinct "
                  "nodes (", proc.describe(), ")");
        }
        if (proc.usesTrace()) {
            if (!(proc.periodicityUs > 0.0) ||
                !std::isfinite(proc.periodicityUs)) {
                fatal("fault model: trace periodicity must be "
                      "positive (", proc.describe(), ")");
            }
            double prev = -1.0;
            for (const AvailabilityPoint &pt : proc.trace) {
                if (!(pt.timeUs >= 0.0) ||
                    pt.timeUs >= proc.periodicityUs ||
                    pt.timeUs <= prev) {
                    fatal("fault model: trace times must be "
                          "strictly increasing within [0, "
                          "periodicity) (", proc.describe(), ")");
                }
                prev = pt.timeUs;
                if (!(pt.value >= 0.0) || pt.value > 1.0 ||
                    !std::isfinite(pt.value)) {
                    fatal("fault model: trace values are capacity "
                          "fractions in [0, 1] (", proc.describe(),
                          ")");
                }
            }
            continue;
        }
        if (!(proc.mtbfUs > 0.0) || !std::isfinite(proc.mtbfUs)) {
            fatal("fault model: mtbf_us must be positive (",
                  proc.describe(), ")");
        }
        if (proc.effect != FaultEffect::failStop &&
            (!(proc.mttrUs > 0.0) || !std::isfinite(proc.mttrUs))) {
            fatal("fault model: recoverable processes need a "
                  "positive mttr_us (", proc.describe(), ")");
        }
        if (proc.effect == FaultEffect::degrade &&
            (!(proc.degradeFactor > 0.0) ||
             proc.degradeFactor >= 1.0)) {
            fatal("fault model: degrade factors lie in (0, 1) (",
                  proc.describe(), ")");
        }
    }
}

namespace {

/** Event skeleton carrying one process's scope. */
scen::ScenarioEvent
scopedEvent(const FaultProcess &proc)
{
    scen::ScenarioEvent ev;
    ev.target = proc.target;
    ev.nodeA = proc.nodeA;
    ev.nodeB = proc.nodeB;
    return ev;
}

/** The fault event of an exponential process at `time`. */
scen::ScenarioEvent
faultEvent(const FaultProcess &proc, SimTime time)
{
    scen::ScenarioEvent ev = scopedEvent(proc);
    ev.time = time;
    switch (proc.effect) {
      case FaultEffect::failStop:
        ev.kind = scen::ScenEventKind::fail;
        ev.semantics = scen::FailSemantics::failStop;
        break;
      case FaultEffect::stall:
        ev.kind = scen::ScenEventKind::fail;
        ev.semantics = scen::FailSemantics::stall;
        break;
      case FaultEffect::degrade:
        ev.kind = scen::ScenEventKind::degrade;
        ev.bandwidthFactor = proc.degradeFactor;
        break;
    }
    return ev;
}

scen::ScenarioEvent
recoverEvent(const FaultProcess &proc, SimTime time)
{
    scen::ScenarioEvent ev = scopedEvent(proc);
    ev.time = time;
    ev.kind = scen::ScenEventKind::recover;
    return ev;
}

/**
 * Expand one exponential renewal process. Failure instants arrive
 * with exponential inter-arrival gaps of mean MTBF measured from
 * the end of the previous repair; repairs take exponential MTTR.
 * Faults past the horizon are cut; the matching repair of an
 * in-horizon fault always lands so no generated stall outlives the
 * scenario unrecovered. Fail-stop processes have no repair event —
 * each renewal is a fresh crash (a rollback, under checkpointing) —
 * so their clock advances by the MTBF gap alone.
 */
void
expandExponential(const FaultProcess &proc, CounterRng rng,
                  SimTime horizon,
                  std::vector<scen::ScenarioEvent> &out)
{
    double t_us = 0.0;
    const double horizon_us = static_cast<double>(horizon.ns()) *
        1e-3;
    while (true) {
        t_us += rng.nextExponential(proc.mtbfUs);
        if (!(t_us < horizon_us))
            return;
        out.push_back(
            faultEvent(proc, SimTime::fromUs(t_us)));
        if (proc.effect == FaultEffect::failStop)
            continue;
        t_us += rng.nextExponential(proc.mttrUs);
        out.push_back(
            recoverEvent(proc, SimTime::fromUs(t_us)));
    }
}

/**
 * Expand one availability-trace process: replay the periodic
 * pattern over [0, horizon), emitting a transition whenever the
 * capacity fraction changes band (up at 1, stalled at 0, degraded
 * in between). A change away from a non-up state recovers it first,
 * at the same instant — compileScenario keeps same-time events in
 * declaration order, so the recover lands before its replacement.
 */
void
expandTrace(const FaultProcess &proc, SimTime horizon,
            std::vector<scen::ScenarioEvent> &out)
{
    const double horizon_us = static_cast<double>(horizon.ns()) *
        1e-3;
    double current = 1.0; // capacity fraction in force
    SimTime last_change = SimTime::zero();
    for (std::uint64_t period = 0;; ++period) {
        const double base_us = static_cast<double>(period) *
            proc.periodicityUs;
        if (!(base_us < horizon_us))
            break;
        for (const AvailabilityPoint &pt : proc.trace) {
            const double at_us = base_us + pt.timeUs;
            if (!(at_us < horizon_us))
                break;
            if (pt.value == current)
                continue;
            const SimTime at = SimTime::fromUs(at_us);
            if (current < 1.0) {
                out.push_back(recoverEvent(proc, at));
                last_change = at;
            }
            if (pt.value >= 1.0) {
                current = 1.0;
                continue;
            }
            scen::ScenarioEvent ev = scopedEvent(proc);
            ev.time = at;
            if (pt.value <= 0.0) {
                ev.kind = scen::ScenEventKind::fail;
                ev.semantics = scen::FailSemantics::stall;
            } else {
                ev.kind = scen::ScenEventKind::degrade;
                ev.bandwidthFactor = pt.value;
            }
            out.push_back(ev);
            current = pt.value;
            last_change = at;
        }
    }
    // The horizon cut the pattern mid-outage: recover at the next
    // period boundary so the replay cannot wedge on it forever.
    if (current < 1.0) {
        const double next_up =
            (std::floor(last_change.toUs() / proc.periodicityUs) +
             1.0) *
            proc.periodicityUs;
        out.push_back(
            recoverEvent(proc, SimTime::fromUs(next_up)));
    }
}

} // namespace

scen::ScenarioConfig
generateScenario(const FaultModel &model, std::uint64_t seed,
                 SimTime horizon)
{
    model.validate();
    if (horizon <= SimTime::zero())
        fatal("fault model: generation horizon must be positive");

    scen::ScenarioConfig config;
    for (std::size_t i = 0; i < model.processes.size(); ++i) {
        const FaultProcess &proc = model.processes[i];
        if (proc.usesTrace()) {
            expandTrace(proc, horizon, config.events);
        } else {
            // One counter-based substream per process: process i's
            // draws depend only on (seed, i), never on how many
            // events its neighbours produced.
            expandExponential(
                proc, CounterRng(seed, static_cast<std::uint64_t>(i)),
                horizon, config.events);
        }
    }
    // Emission order groups by process; the compiled scenario
    // stable-sorts by time. Validate what we emit — generation bugs
    // should fail here, not deep inside a sweep worker.
    config.validate();
    return config;
}

scen::ScenarioConfig
generateScenario(const FaultModel &model)
{
    return generateScenario(model, model.seed,
                            SimTime::fromUs(model.horizonUs));
}

double
dalyInterval(double mtbf_us, double checkpoint_cost_us)
{
    if (!(mtbf_us > 0.0) || !std::isfinite(mtbf_us))
        fatal("dalyInterval: mtbf_us must be positive");
    if (!(checkpoint_cost_us >= 0.0) ||
        !std::isfinite(checkpoint_cost_us)) {
        fatal("dalyInterval: checkpoint cost must be finite and "
              "non-negative");
    }
    const double root =
        std::sqrt(2.0 * checkpoint_cost_us * mtbf_us);
    // Past the validity bound (MTBF < C/2) the first-order formula
    // goes negative; keep the positive degenerate branch rather
    // than suggesting a nonsense interval.
    return root > checkpoint_cost_us ? root - checkpoint_cost_us
                                     : root;
}

namespace {

std::vector<std::string>
tokensOf(const std::string &line)
{
    std::istringstream in(line);
    std::vector<std::string> tokens;
    std::string token;
    while (in >> token)
        tokens.push_back(token);
    return tokens;
}

std::string
joinDir(const std::string &dir, const std::string &path)
{
    if (dir.empty() || (!path.empty() && path.front() == '/'))
        return path;
    return dir + "/" + path;
}

std::string
dirOf(const std::string &path)
{
    const std::size_t slash = path.rfind('/');
    return slash == std::string::npos ? std::string()
                                      : path.substr(0, slash);
}

} // namespace

std::vector<AvailabilityPoint>
readAvailabilityTrace(std::istream &in, const std::string &source,
                      double &periodicity_us)
{
    std::vector<AvailabilityPoint> trace;
    periodicity_us = 0.0;
    bool have_period = false;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const std::size_t comment = line.find('#');
        if (comment != std::string::npos)
            line.resize(comment);
        const auto tokens = tokensOf(line);
        if (tokens.empty())
            continue;
        try {
            if (tokens[0] == "PERIODICITY") {
                if (tokens.size() != 2)
                    fatal("expected `PERIODICITY <us>`");
                periodicity_us = parseDouble(tokens[1]);
                have_period = true;
            } else {
                if (!have_period)
                    fatal("availability trace must start with "
                          "`PERIODICITY <us>`");
                if (tokens.size() != 2)
                    fatal("expected `<time_us> <value>`");
                AvailabilityPoint pt;
                pt.timeUs = parseDouble(tokens[0]);
                pt.value = parseDouble(tokens[1]);
                trace.push_back(pt);
            }
        } catch (const FatalError &err) {
            fatal(source, " line ", line_no, ": ", err.what());
        }
    }
    if (!have_period || trace.empty())
        fatal(source, ": availability trace has no points");
    return trace;
}

std::vector<AvailabilityPoint>
readAvailabilityTraceFile(const std::string &path,
                          double &periodicity_us)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open availability trace '", path, "'");
    return readAvailabilityTrace(in, path, periodicity_us);
}

FaultModel
readFaultModel(std::istream &in, const std::string &source,
               const std::string &dir)
{
    FaultModel model;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const std::size_t comment = line.find('#');
        if (comment != std::string::npos)
            line.resize(comment);
        const auto tokens = tokensOf(line);
        if (tokens.empty())
            continue;
        try {
            if (tokens.size() == 3 && tokens[1] == "=") {
                if (tokens[0] == "seed") {
                    model.seed = static_cast<std::uint64_t>(
                        parseInt(tokens[2]));
                } else if (tokens[0] == "horizon_us") {
                    model.horizonUs = parseDouble(tokens[2]);
                } else {
                    fatal("unknown fault model key '", tokens[0],
                          "' (expected seed or horizon_us)");
                }
                continue;
            }
            if (tokens[0] != "process") {
                fatal("expected `<key> = <value>` or `process "
                      "<node|link> ...`");
            }
            FaultProcess proc;
            std::size_t pos = 1;
            const auto need = [&](std::size_t extra,
                                  const char *what) {
                if (pos + extra > tokens.size())
                    fatal("truncated process: missing ", what);
            };
            need(1, "target");
            const std::string &t = tokens[pos++];
            if (t == "all") {
                proc.target = scen::ScenTarget::all;
            } else if (t == "node") {
                need(1, "node id");
                proc.target = scen::ScenTarget::node;
                proc.nodeA =
                    static_cast<int>(parseInt(tokens[pos++]));
            } else if (t == "link") {
                need(2, "node pair");
                proc.target = scen::ScenTarget::link;
                proc.nodeA =
                    static_cast<int>(parseInt(tokens[pos++]));
                proc.nodeB =
                    static_cast<int>(parseInt(tokens[pos++]));
            } else {
                fatal("unknown process target '", t,
                      "' (expected all, node or link)");
            }
            need(1, "effect");
            const std::string &effect = tokens[pos++];
            if (effect == "trace") {
                need(1, "trace path");
                proc.tracePath = tokens[pos++];
                proc.trace = readAvailabilityTraceFile(
                    joinDir(dir, proc.tracePath),
                    proc.periodicityUs);
            } else if (effect == "fail-stop") {
                proc.effect = FaultEffect::failStop;
            } else if (effect == "stall") {
                proc.effect = FaultEffect::stall;
            } else if (effect == "degrade") {
                need(1, "degrade factor");
                proc.effect = FaultEffect::degrade;
                proc.degradeFactor = parseDouble(tokens[pos++]);
            } else {
                fatal("unknown process effect '", effect,
                      "' (expected fail-stop, stall, degrade or "
                      "trace)");
            }
            while (pos < tokens.size()) {
                const std::string &key = tokens[pos++];
                need(1, "value");
                if (key == "mtbf_us") {
                    proc.mtbfUs = parseDouble(tokens[pos++]);
                } else if (key == "mttr_us") {
                    proc.mttrUs = parseDouble(tokens[pos++]);
                } else {
                    fatal("unknown process key '", key,
                          "' (expected mtbf_us or mttr_us)");
                }
            }
            model.processes.push_back(std::move(proc));
        } catch (const FatalError &err) {
            fatal(source, " line ", line_no, ": ", err.what());
        }
    }
    model.validate();
    return model;
}

FaultModel
readFaultModelFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open fault model file '", path, "'");
    FaultModel model = readFaultModel(in, path, dirOf(path));
    model.sourcePath = path;
    return model;
}

void
writeFaultModel(const FaultModel &model, std::ostream &out)
{
    out << "# ovlsim fault model\n";
    out << strformat("seed = %llu\n",
                     static_cast<unsigned long long>(model.seed));
    out << strformat("horizon_us = %.17g\n", model.horizonUs);
    for (const FaultProcess &proc : model.processes) {
        const std::string scope = scopeString(proc);
        if (proc.usesTrace()) {
            out << strformat("process %s trace %s\n", scope.c_str(),
                             proc.tracePath.c_str());
        } else if (proc.effect == FaultEffect::degrade) {
            out << strformat(
                "process %s degrade %.17g mtbf_us %.17g "
                "mttr_us %.17g\n",
                scope.c_str(), proc.degradeFactor, proc.mtbfUs,
                proc.mttrUs);
        } else if (proc.effect == FaultEffect::failStop) {
            out << strformat("process %s fail-stop mtbf_us %.17g\n",
                             scope.c_str(), proc.mtbfUs);
        } else {
            out << strformat(
                "process %s stall mtbf_us %.17g mttr_us %.17g\n",
                scope.c_str(), proc.mtbfUs, proc.mttrUs);
        }
    }
}

} // namespace ovlsim::res
