#include "platform.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/mathutil.hh"

namespace ovlsim::sim {

SimTime
PlatformConfig::burstDuration(Instr instructions,
                              double trace_mips) const
{
    const double mips = effectiveMips(trace_mips);
    ovlAssert(mips > 0.0, "platform MIPS rate must be positive");
    // MIPS = 1e6 instructions per second, i.e. instructions per us.
    const double ns =
        static_cast<double>(instructions) * 1e3 / mips;
    return SimTime::fromNs(static_cast<std::int64_t>(
        std::llround(ns)));
}

SimTime
PlatformConfig::serializationDelay(Bytes bytes, bool local) const
{
    const double mbps = local ? localBandwidthMBps : bandwidthMBps;
    ovlAssert(mbps > 0.0, "bandwidth must be positive");
    // MB/s = 1e6 bytes per second = 1e-3 bytes per ns.
    const double ns = static_cast<double>(bytes) * 1e3 / mbps;
    return SimTime::fromNs(static_cast<std::int64_t>(
        std::llround(ns)));
}

SimTime
PlatformConfig::flightLatency(bool local) const
{
    return SimTime::fromUs(local ? localLatencyUs : latencyUs);
}

void
PlatformConfig::validate() const
{
    if (cpuRatio <= 0.0)
        fatal("platform: cpuRatio must be positive");
    if (cpusPerNode <= 0)
        fatal("platform: cpusPerNode must be positive");
    if (bandwidthMBps <= 0.0 || localBandwidthMBps <= 0.0)
        fatal("platform: bandwidths must be positive");
    if (latencyUs < 0.0 || localLatencyUs < 0.0)
        fatal("platform: latencies must be non-negative");
    if (buses < 0 || outLinksPerNode < 0 || inLinksPerNode < 0)
        fatal("platform: resource counts must be non-negative");
    if (rendezvousOverheadUs < 0.0)
        fatal("platform: rendezvousOverheadUs must be >= 0");
    if (collectives.latencyFactor < 0.0 ||
        collectives.bandwidthFactor < 0.0) {
        fatal("platform: collective factors must be >= 0");
    }
    if (collectiveModel == coll::CollectiveModel::algorithmic &&
        (collectives.latencyFactor != 1.0 ||
         collectives.bandwidthFactor != 1.0)) {
        fatal("platform: the algorithmic collective model prices "
              "collectives from their point-to-point schedules; "
              "collective_latency_factor/"
              "collective_bandwidth_factor apply only to the "
              "analytic model (collective_model = analytic)");
    }
    if (!std::isfinite(checkpointIntervalUs) ||
        !std::isfinite(checkpointCostUs) ||
        !std::isfinite(restartCostUs) ||
        checkpointIntervalUs < 0.0 || checkpointCostUs < 0.0 ||
        restartCostUs < 0.0) {
        fatal("platform: checkpoint interval/cost and restart cost "
              "must be finite and non-negative");
    }
    if (!std::isfinite(checkpointGlobalIntervalUs) ||
        !std::isfinite(checkpointGlobalCostUs) ||
        !std::isfinite(restartGlobalCostUs) ||
        checkpointGlobalIntervalUs < 0.0 ||
        checkpointGlobalCostUs < 0.0 ||
        restartGlobalCostUs < 0.0) {
        fatal("platform: global checkpoint interval/cost and global "
              "restart cost must be finite and non-negative");
    }
    if (checkpointGlobalIntervalUs > 0.0 &&
        checkpointIntervalUs <= 0.0) {
        fatal("platform: checkpoint_global_interval_us requires a "
              "positive checkpoint_interval_us (the global level "
              "rides on the local checkpoint chain)");
    }
    if (restartBudget < 1)
        fatal("platform: restart_budget must be >= 1");
    coll::validateOverrides(collectiveAlgorithms);
    topology.validate();
    scenario.validate();
}

SimTime
collectiveCost(const PlatformConfig &platform, trace::CollOp op,
               int ranks, Bytes send_bytes, Bytes recv_bytes)
{
    using trace::CollOp;

    ovlAssert(ranks > 0, "collective over zero ranks");
    const auto p = static_cast<std::uint64_t>(ranks);
    const double steps = static_cast<double>(log2Ceil(p));
    const double lat_ns =
        platform.flightLatency(false).ns() == 0
            ? 0.0
            : static_cast<double>(
                  platform.flightLatency(false).ns());
    const Bytes bytes = std::max(send_bytes, recv_bytes);
    const double ser_ns = static_cast<double>(
        platform.serializationDelay(bytes, false).ns());

    const double lf = platform.collectives.latencyFactor;
    const double bf = platform.collectives.bandwidthFactor;
    const double pm1 = static_cast<double>(ranks - 1);

    double cost_ns = 0.0;
    switch (op) {
      case CollOp::barrier:
        cost_ns = steps * lat_ns * lf;
        break;
      case CollOp::broadcast:
      case CollOp::reduce:
        cost_ns = steps * (lat_ns * lf + ser_ns * bf);
        break;
      case CollOp::allReduce:
        cost_ns = 2.0 * steps * (lat_ns * lf + ser_ns * bf);
        break;
      case CollOp::gather:
      case CollOp::scatter:
      case CollOp::allGather:
        cost_ns = steps * lat_ns * lf + pm1 * ser_ns * bf;
        break;
      case CollOp::allToAll:
        cost_ns = pm1 * (lat_ns * lf + ser_ns * bf);
        break;
    }
    return SimTime::fromNs(static_cast<std::int64_t>(
        std::llround(cost_ns)));
}

namespace platforms {

PlatformConfig
defaultCluster(int cpus_per_node)
{
    PlatformConfig cfg;
    cfg.name = "default-cluster";
    cfg.cpusPerNode = cpus_per_node;
    cfg.bandwidthMBps = 256.0;
    cfg.latencyUs = 8.0;
    cfg.buses = 0;
    cfg.outLinksPerNode = 1;
    cfg.inLinksPerNode = 1;
    return cfg;
}

PlatformConfig
contendedCluster(int buses, int cpus_per_node)
{
    PlatformConfig cfg = defaultCluster(cpus_per_node);
    cfg.name = "contended-cluster";
    cfg.buses = buses;
    return cfg;
}

PlatformConfig
rendezvousCluster(Bytes eager_threshold)
{
    PlatformConfig cfg = defaultCluster();
    cfg.name = "rendezvous-cluster";
    cfg.eagerThreshold = eager_threshold;
    return cfg;
}

PlatformConfig
topologyCluster(const net::TopologyConfig &topology,
                int cpus_per_node)
{
    PlatformConfig cfg = defaultCluster(cpus_per_node);
    cfg.name = std::string("cluster-") +
        net::topologyKindName(topology.kind);
    cfg.topology = topology;
    return cfg;
}

PlatformConfig
idealNetwork()
{
    PlatformConfig cfg;
    cfg.name = "ideal-network";
    cfg.bandwidthMBps = 1e9;
    cfg.latencyUs = 0.0;
    cfg.localBandwidthMBps = 1e9;
    cfg.localLatencyUs = 0.0;
    cfg.buses = 0;
    cfg.outLinksPerNode = 0;
    cfg.inLinksPerNode = 0;
    return cfg;
}

} // namespace platforms

} // namespace ovlsim::sim
