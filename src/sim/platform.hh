/**
 * @file
 * Configurable target platform, mirroring Dimemas' machine model.
 *
 * A platform converts the abstract quantities stored in traces
 * (instructions, bytes) into simulated time: computation bursts are
 * scaled by a MIPS rate and a relative CPU ratio; transfers cost a
 * latency plus size over bandwidth and contend for a finite number of
 * buses and per-node injection/reception links; collectives follow
 * log2(P) cost models.
 */

#ifndef OVLSIM_SIM_PLATFORM_HH
#define OVLSIM_SIM_PLATFORM_HH

#include <string>

#include "coll/coll.hh"
#include "net/topology.hh"
#include "scen/scenario.hh"
#include "trace/record.hh"
#include "util/types.hh"

namespace ovlsim::sim {

/** Scale factors of the collective cost models. */
struct CollectiveModelConfig
{
    /** Multiplier on the latency term of every collective. */
    double latencyFactor = 1.0;
    /** Multiplier on the bandwidth term of every collective. */
    double bandwidthFactor = 1.0;
};

/** Complete description of the simulated machine. */
struct PlatformConfig
{
    std::string name = "default";

    /**
     * MIPS rate used to convert instructions into time. Zero means
     * "use the rate recorded in the trace" (the paper's average MIPS
     * observed in the real run).
     */
    double mipsOverride = 0.0;

    /** Relative CPU speed multiplier (2.0 = CPUs twice as fast). */
    double cpuRatio = 1.0;

    /** Ranks per node; rank r runs on node r / cpusPerNode. */
    int cpusPerNode = 1;

    /** Remote (inter-node) link bandwidth in MB/s (1 MB = 1e6 B). */
    double bandwidthMBps = 256.0;

    /** Remote one-way latency in microseconds. */
    double latencyUs = 8.0;

    /** Intra-node (shared-memory) bandwidth in MB/s. */
    double localBandwidthMBps = 8192.0;

    /** Intra-node latency in microseconds. */
    double localLatencyUs = 0.5;

    /**
     * Number of simultaneous inter-node transfers the interconnect
     * sustains (Dimemas' buses). Zero means unlimited.
     */
    int buses = 0;

    /** Per-node concurrent injections; zero means unlimited. */
    int outLinksPerNode = 1;

    /** Per-node concurrent receptions; zero means unlimited. */
    int inLinksPerNode = 1;

    /**
     * Messages up to this size use the eager protocol (the sender
     * never blocks); larger messages use rendezvous (the transfer
     * starts only once the receive is posted and a blocking sender
     * stays blocked until injection completes). The default is
     * effectively infinite, matching the simple buffered-send
     * communication model of Dimemas that the paper's environment
     * replays traces with; lower it to study protocol effects.
     */
    Bytes eagerThreshold = Bytes(1) << 40;

    /**
     * Treat every non-blocking send as eager regardless of size.
     * Automatic-overlap chunk transfers are posted through
     * asynchronous sends; this models their buffered, non-blocking
     * injection independently of the baseline protocol.
     */
    bool forceEagerIsend = true;

    /** Extra handshake delay charged to rendezvous transfers. */
    double rendezvousOverheadUs = 0.0;

    /** Record per-rank state intervals and per-message events. */
    bool captureTimeline = false;

    CollectiveModelConfig collectives;

    /**
     * How CollectiveRecs are priced (src/coll/). The default
     * analytic model keeps the classic closed-form path —
     * bit-identical to platforms that predate the field. The
     * algorithmic model lowers each collective into a compiled
     * point-to-point schedule (binomial trees, recursive doubling,
     * rings, ...) executed through the engine's ordinary transfer
     * path, so collective traffic contends for buses and topology
     * links exactly like application messages.
     */
    coll::CollectiveModel collectiveModel =
        coll::CollectiveModel::analytic;

    /**
     * Per-operation algorithm pins for the algorithmic model
     * (`automatic` everywhere by default — size-based selection).
     * Ignored by the analytic model, but validated regardless so a
     * nonsensical pin never waits for a mode switch to surface.
     */
    coll::AlgorithmOverrides collectiveAlgorithms;

    /**
     * Interconnect shape (src/net/). The default flat bus keeps the
     * engine's classic Dimemas path — bit-identical to platforms
     * that predate the field. Any other kind routes remote
     * transfers over compiled per-link routes with shared-link
     * contention; `buses`/`outLinksPerNode`/`inLinksPerNode` then
     * no longer apply (NIC contention comes from the topology's own
     * injection/reception links), while `bandwidthMBps` remains the
     * base link capacity unless the topology pins its own.
     */
    net::TopologyConfig topology;

    /**
     * Dynamic platform scenario (src/scen/): timestamped link
     * degradations, failures and background flows injected into the
     * replay. Empty (the default) keeps the engine's static-platform
     * paths bit-identical to platforms that predate the field.
     * Referenced from platform files via `scenario_file = ...`, or
     * expanded from a stochastic fault model (src/res/) via
     * `fault_model_file = ...`.
     */
    scen::ScenarioConfig scenario;

    /** Where the scenario was expanded from when it came out of a
     * fault model (round-trips the `fault_model_file` key). */
    std::string faultModelFile;

    /**
     * Checkpoint/restart cost model (src/res/). With a positive
     * interval, every rank takes a coordinated checkpoint every
     * `checkpointIntervalUs` of simulated time, freezing the whole
     * machine for `checkpointCostUs`; a fail-stop scenario event
     * then no longer terminates the replay but rolls every rank
     * back to the last checkpoint, charges `restartCostUs`, and
     * replays forward. Zero interval (the default) keeps fail-stop
     * semantics — and everything else — bit-identical to platforms
     * that predate these fields.
     */
    double checkpointIntervalUs = 0.0;

    /** Machine-wide freeze charged per checkpoint taken. */
    double checkpointCostUs = 0.0;

    /** Rollback/rejuvenation delay charged per restart. */
    double restartCostUs = 0.0;

    /**
     * Hierarchical (two-level) checkpointing. With a positive global
     * interval — which requires a positive `checkpointIntervalUs` —
     * the machine additionally takes a *global* checkpoint every
     * `checkpointGlobalIntervalUs` at `checkpointGlobalCostUs` per
     * freeze. Machine-wide fail-stop events (scenario scope `all`)
     * restore the last global checkpoint at `restartGlobalCostUs`;
     * narrower failures keep restoring the cheaper local level. A
     * global checkpoint also refreshes the local image (the newest
     * image is always at least as recent at both levels).
     */
    double checkpointGlobalIntervalUs = 0.0;

    /** Machine-wide freeze charged per global checkpoint taken. */
    double checkpointGlobalCostUs = 0.0;

    /** Rollback delay charged per restart from the global level. */
    double restartGlobalCostUs = 0.0;

    /**
     * Maximum number of restarts a replay may pay before it is
     * declared dead (the platform fails faster than it recovers).
     * Exceeding it raises a FailureError naming this key.
     */
    std::uint64_t restartBudget = 10000;

    /** Checkpointing enabled? */
    bool
    checkpointing() const
    {
        return checkpointIntervalUs > 0.0;
    }

    /** Hierarchical two-level checkpointing enabled? */
    bool
    twoLevelCheckpointing() const
    {
        return checkpointing() && checkpointGlobalIntervalUs > 0.0;
    }

    /** Effective MIPS rate given a trace's recorded rate. */
    double
    effectiveMips(double trace_mips) const
    {
        return (mipsOverride > 0.0 ? mipsOverride : trace_mips) *
            cpuRatio;
    }

    /** Node hosting a rank. */
    int
    nodeOf(Rank r) const
    {
        return cpusPerNode <= 0 ? r : r / cpusPerNode;
    }

    /** Duration of a computation burst at the given trace MIPS. */
    SimTime burstDuration(Instr instructions,
                          double trace_mips) const;

    /** Pure serialization time of a payload on a link. */
    SimTime serializationDelay(Bytes bytes, bool local) const;

    /** One-way latency. */
    SimTime flightLatency(bool local) const;

    /** Validate ranges; throws FatalError on nonsense values. */
    void validate() const;
};

/** Collective completion cost (excludes waiting for all ranks). */
SimTime collectiveCost(const PlatformConfig &platform,
                       trace::CollOp op, int ranks, Bytes send_bytes,
                       Bytes recv_bytes);

/** A few ready-made platforms used by examples and tests. */
namespace platforms {

/** Generous cluster: 256 MB/s, 8 us latency, unlimited buses. */
PlatformConfig defaultCluster(int cpus_per_node = 1);

/** Contended cluster: finite buses and links. */
PlatformConfig contendedCluster(int buses, int cpus_per_node = 1);

/** Cluster with a realistic rendezvous threshold (protocol study). */
PlatformConfig rendezvousCluster(Bytes eager_threshold = 32 * 1024);

/** Ideal network: effectively infinite bandwidth, zero latency. */
PlatformConfig idealNetwork();

/** Default cluster routed over an explicit interconnect topology. */
PlatformConfig topologyCluster(const net::TopologyConfig &topology,
                               int cpus_per_node = 1);

} // namespace platforms

} // namespace ovlsim::sim

#endif // OVLSIM_SIM_PLATFORM_HH
