/**
 * @file
 * Reconstructed time-behaviour of a replayed run.
 *
 * The timeline is the simulator's equivalent of the Paraver trace in
 * the paper's environment: per-rank state intervals plus one record
 * per message transfer, sufficient to draw Gantt charts and
 * communication lines and to compare the non-overlapped and
 * overlapped executions qualitatively.
 *
 * Intervals are stored in a chunked arena shared by all ranks: fixed
 * 512-interval chunks that are never reallocated once created, with
 * each rank's intervals threaded through the arena as an
 * index-linked list. Appending an interval is a bounds-checked store
 * plus, once every 512 appends, one chunk allocation — so
 * capture-enabled replays stay close to capture-off speed even when
 * sweeps run with timelines on.
 */

#ifndef OVLSIM_SIM_TIMELINE_HH
#define OVLSIM_SIM_TIMELINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/record.hh"
#include "util/types.hh"

namespace ovlsim::sim {

/** What a rank is doing during an interval. */
enum class RankState : std::uint8_t {
    compute,
    sendBlocked,
    recvBlocked,
    waitBlocked,
    collective,
    idle,
    /** Rolling back to a checkpoint and paying the restart cost
     * (resilience seam, src/res/); everything recorded before such
     * an interval since the checkpoint cut is wasted work. */
    restart,
};

/** Number of RankState values (sizing per-state accumulators). */
constexpr std::size_t rankStateCount = 7;

/** Short display name for a state ("comp", "sendb", ...). */
const char *rankStateName(RankState state);

/** Single-character code used by the ASCII Gantt renderer. */
char rankStateCode(RankState state);

/** One state interval on one rank. */
struct StateInterval
{
    SimTime begin;
    SimTime end;
    RankState state = RankState::idle;
};

/**
 * Machine-wide instant marker: a coordinated checkpoint committed
 * at `at` (the instant the written image is consistent). Rollbacks
 * need no marker of their own — they appear as RankState::restart
 * intervals on every surviving rank.
 */
struct CheckpointMark
{
    SimTime at;
    /** True for the global level of two-level checkpointing. */
    bool global = false;
};

/** Lifetime of one simulated message transfer. */
struct CommEvent
{
    trace::MessageId message = trace::invalidMessageId;
    Rank src = 0;
    Rank dst = 0;
    Tag tag = 0;
    Bytes bytes = 0;
    /** When the sender posted the operation. */
    SimTime sendPost;
    /** When the payload started moving (resources acquired). */
    SimTime transferStart;
    /** When the payload fully arrived at the receiver. */
    SimTime arrival;
    /** When the receiving operation completed. */
    SimTime recvComplete;
};

/** Full reconstructed behaviour of one replay. */
class Timeline
{
    struct Node
    {
        StateInterval interval;
        std::uint32_t next = nposNode;
    };

    static constexpr std::uint32_t nposNode = 0xFFFFFFFFu;
    static constexpr std::uint32_t chunkShift = 9;
    static constexpr std::uint32_t chunkCapacity = 1u << chunkShift;

  public:
    /**
     * Forward range over one rank's intervals, iterating the
     * index-linked list in append order. Valid as long as the
     * timeline it came from is alive and unmodified.
     */
    class IntervalRange
    {
      public:
        class iterator
        {
          public:
            iterator(const Timeline *timeline, std::uint32_t idx)
                : timeline_(timeline), idx_(idx)
            {}

            const StateInterval &
            operator*() const
            {
                return timeline_->node(idx_).interval;
            }

            const StateInterval *
            operator->() const
            {
                return &timeline_->node(idx_).interval;
            }

            iterator &
            operator++()
            {
                idx_ = timeline_->node(idx_).next;
                return *this;
            }

            bool
            operator==(const iterator &other) const
            {
                return idx_ == other.idx_;
            }

            bool
            operator!=(const iterator &other) const
            {
                return idx_ != other.idx_;
            }

          private:
            const Timeline *timeline_;
            std::uint32_t idx_;
        };

        IntervalRange(const Timeline *timeline, std::uint32_t head,
                      std::uint32_t count)
            : timeline_(timeline), head_(head), count_(count)
        {}

        iterator begin() const { return {timeline_, head_}; }
        iterator end() const { return {timeline_, nposNode}; }
        std::size_t size() const { return count_; }
        bool empty() const { return count_ == 0; }

      private:
        const Timeline *timeline_;
        std::uint32_t head_;
        std::uint32_t count_;
    };

    Timeline() = default;
    explicit Timeline(int ranks)
        : perRank_(static_cast<std::size_t>(ranks))
    {}

    int ranks() const { return static_cast<int>(perRank_.size()); }

    /**
     * Append an interval; merges with the previous if contiguous
     * and of equal state. Intervals on one rank never overlap: a
     * begin before the recorded tail is clamped forward to it (an
     * interval whose span was already claimed — e.g. a blocked
     * window straddling a rollback cut — contributes only its
     * unclaimed remainder).
     */
    void addInterval(Rank r, SimTime begin, SimTime end,
                     RankState state);

    /**
     * Drop everything recorded at or after `cut` and clip intervals
     * straddling it (rollback splice, src/res/): intervals recorded
     * ahead of time — compute bursts — shrink to the part the
     * machine actually executed before the failure. Recorded
     * history before the cut stays; the engine then appends the
     * restart interval and records the replayed tail after it.
     */
    void truncateAt(SimTime cut);

    void addComm(CommEvent event) { comms_.push_back(event); }

    /** Record a committed coordinated checkpoint. Marks are
     * machine-wide (the freeze stops every rank) and survive
     * rollbacks: a checkpoint that was taken stays history. */
    void
    addCheckpoint(SimTime at, bool global)
    {
        checkpoints_.push_back(CheckpointMark{at, global});
    }

    /** Rank r's intervals in append order. */
    IntervalRange intervals(Rank r) const;

    const std::vector<CommEvent> &comms() const { return comms_; }

    const std::vector<CheckpointMark> &
    checkpoints() const
    {
        return checkpoints_;
    }

    /** Latest interval end across all ranks. */
    SimTime span() const;

    /** Total time rank r spent in a state. */
    SimTime timeInState(Rank r, RankState state) const;

  private:
    /** Per-rank list endpoints into the shared node arena. */
    struct RankList
    {
        std::uint32_t head = nposNode;
        std::uint32_t tail = nposNode;
        std::uint32_t count = 0;
    };

    Node &
    node(std::uint32_t idx)
    {
        return chunks_[idx >> chunkShift]
                      [idx & (chunkCapacity - 1)];
    }

    const Node &
    node(std::uint32_t idx) const
    {
        return chunks_[idx >> chunkShift]
                      [idx & (chunkCapacity - 1)];
    }

    /** Arena slot for a new node (allocates a chunk when full). */
    std::uint32_t newNode();

    /**
     * Chunked node arena. Every inner vector is reserved to exactly
     * chunkCapacity up front and only ever push_back'd, so node
     * storage is never moved once written (growth allocates a new
     * chunk instead of reallocating).
     */
    std::vector<std::vector<Node>> chunks_;
    std::uint32_t nodeCount_ = 0;
    std::vector<RankList> perRank_;
    std::vector<CommEvent> comms_;
    std::vector<CheckpointMark> checkpoints_;
};

} // namespace ovlsim::sim

#endif // OVLSIM_SIM_TIMELINE_HH
