/**
 * @file
 * Reconstructed time-behaviour of a replayed run.
 *
 * The timeline is the simulator's equivalent of the Paraver trace in
 * the paper's environment: per-rank state intervals plus one record
 * per message transfer, sufficient to draw Gantt charts and
 * communication lines and to compare the non-overlapped and
 * overlapped executions qualitatively.
 */

#ifndef OVLSIM_SIM_TIMELINE_HH
#define OVLSIM_SIM_TIMELINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/record.hh"
#include "util/types.hh"

namespace ovlsim::sim {

/** What a rank is doing during an interval. */
enum class RankState : std::uint8_t {
    compute,
    sendBlocked,
    recvBlocked,
    waitBlocked,
    collective,
    idle,
};

/** Short display name for a state ("comp", "sendb", ...). */
const char *rankStateName(RankState state);

/** Single-character code used by the ASCII Gantt renderer. */
char rankStateCode(RankState state);

/** One state interval on one rank. */
struct StateInterval
{
    SimTime begin;
    SimTime end;
    RankState state = RankState::idle;
};

/** Lifetime of one simulated message transfer. */
struct CommEvent
{
    trace::MessageId message = trace::invalidMessageId;
    Rank src = 0;
    Rank dst = 0;
    Tag tag = 0;
    Bytes bytes = 0;
    /** When the sender posted the operation. */
    SimTime sendPost;
    /** When the payload started moving (resources acquired). */
    SimTime transferStart;
    /** When the payload fully arrived at the receiver. */
    SimTime arrival;
    /** When the receiving operation completed. */
    SimTime recvComplete;
};

/** Full reconstructed behaviour of one replay. */
class Timeline
{
  public:
    Timeline() = default;
    explicit Timeline(int ranks)
        : perRank_(static_cast<std::size_t>(ranks))
    {}

    int ranks() const { return static_cast<int>(perRank_.size()); }

    /** Append an interval; merges with the previous if contiguous
     * and of equal state. */
    void addInterval(Rank r, SimTime begin, SimTime end,
                     RankState state);

    void addComm(CommEvent event) { comms_.push_back(event); }

    const std::vector<StateInterval> &intervals(Rank r) const;
    const std::vector<CommEvent> &comms() const { return comms_; }

    /** Latest interval end across all ranks. */
    SimTime span() const;

    /** Total time rank r spent in a state. */
    SimTime timeInState(Rank r, RankState state) const;

  private:
    std::vector<std::vector<StateInterval>> perRank_;
    std::vector<CommEvent> comms_;
};

} // namespace ovlsim::sim

#endif // OVLSIM_SIM_TIMELINE_HH
