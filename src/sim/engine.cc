#include "engine.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "coll/coll.hh"
#include "coll/schedule.hh"
#include "net/network.hh"
#include "obs/stats.hh"
#include "net/topology.hh"
#include "scen/scenario.hh"
#include "sim/program.hh"
#include "trace/record.hh"
#include "util/dary_heap.hh"
#include "util/flat_map.hh"
#include "util/logging.hh"
#include "util/strings.hh"
#include "util/thread_pool.hh"
#include "util/types.hh"

namespace ovlsim::sim {

namespace {

using trace::ChannelKey;
using trace::MessageId;
using trace::RecordKind;

/** Null index for the intrusive lists threaded through the arenas. */
constexpr std::uint32_t npos32 = 0xFFFFFFFFu;

enum class EventKind : std::uint32_t {
    rankResume = 0,
    transferInjected = 1,
    transferArrived = 2,
    collectiveRelease = 3,
    /** A compiled scenario event fires (target = event index). */
    scenario = 4,
    /** A background flow finished (target = its event index). */
    backgroundFinish = 5,
    /** A coordinated checkpoint fires (resilience seam). */
    checkpoint = 6,
};

/**
 * One pending event, packed to 16 bytes so heap sifts move as little
 * memory as possible. The kind lives in the top four bits of
 * `kindTarget`; targets (rank, transfer index, collective index or
 * scenario event index) get the remaining 28 bits, and schedule()
 * asserts they fit.
 *
 * `seq` is a 32-bit tie-breaker: schedules are bounded by the 2e9
 * event limit plus the residual heap, so it cannot wrap before the
 * engine panics on a runaway simulation.
 */
struct Event
{
    SimTime time;
    std::uint32_t seq;
    std::uint32_t kindTarget;

    static constexpr std::uint32_t kindShift = 28;
    static constexpr std::uint32_t targetMask =
        (1u << kindShift) - 1;

    EventKind
    kind() const
    {
        return static_cast<EventKind>(kindTarget >> kindShift);
    }

    std::uint32_t
    target() const
    {
        return kindTarget & targetMask;
    }

    bool
    operator>(const Event &other) const
    {
        if (time != other.time)
            return time > other.time;
        return seq > other.seq;
    }
};

static_assert(sizeof(Event) == 16);

/**
 * Request reference carried by transfers: a register index into the
 * owning rank's request table (the compiler pre-assigns registers,
 * see sim/program.hh), or one of two sentinels. A reference is
 * consumed exactly once — completeRequest clears it from the
 * transfer before acting — so no generation counter is needed.
 */
constexpr std::uint32_t noRequest = npos32;

/**
 * Sentinel standing for "the issuing rank's in-flight blocking
 * receive". A rank has at most one (it blocks before posting
 * another), so blocking receives bypass the request table entirely.
 */
constexpr std::uint32_t blockingRecvReq = npos32 - 1;

/** Request-register state bits. */
enum : std::uint8_t {
    regLive = 1u << 0,
    regDone = 1u << 1,
    regAwaited = 1u << 2,
};

/** Transfer state bits (Transfer::flags). */
enum : std::uint16_t {
    tfLocal = 1u << 0,
    tfEager = 1u << 1,
    tfSenderBlocking = 1u << 2,
    tfRecvPosted = 1u << 3,
    tfQueued = 1u << 4,
    tfStarted = 1u << 5,
    tfArrived = 1u << 6,
    /** Serializing through the topology network (net mode only). */
    tfInNet = 1u << 7,
    /**
     * Step of a lowered collective schedule (algorithmic model).
     * Pre-matched at schedule compile time: sendReq holds the
     * collective table index and recvReq the recv-slot id, and the
     * transfer never touches channel matching or request registers.
     */
    tfColl = 1u << 8,
};

/**
 * One point-to-point transfer, kept to a single cache line; the
 * arena of these is the engine's hottest memory. Fields needed only
 * for timeline capture (message id, tag, post/start instants) live
 * in the parallel TransferMeta arena, which is populated only when
 * the platform requests a timeline.
 */
struct Transfer
{
    Bytes bytes = 0;
    /** When the matching receive was posted (valid if tfRecvPosted). */
    SimTime recvPostTime;
    /** Scheduled/actual arrival instant (valid once started). */
    SimTime arriveTime;
    /** Sender's request register, or a sentinel. */
    std::uint32_t sendReq = noRequest;
    /** Receiver's request register, or a sentinel. */
    std::uint32_t recvReq = noRequest;
    Rank src = 0;
    Rank dst = 0;
    /** Next unmatched send on the same channel (FIFO order). */
    std::uint32_t chanNext = npos32;
    /** Next transfer queued for interconnect resources. */
    std::uint32_t waitNext = npos32;
    std::uint16_t flags = 0;

    bool has(std::uint16_t f) const { return (flags & f) != 0; }
    void set(std::uint16_t f) { flags |= f; }
    void clear(std::uint16_t f) { flags &= static_cast<std::uint16_t>(~f); }
};

static_assert(sizeof(Transfer) <= 64);

/** Timeline-only transfer details (parallel to the transfer arena). */
struct TransferMeta
{
    MessageId message = trace::invalidMessageId;
    SimTime sendPost;
    SimTime start;
    Tag tag = 0;
};

/** An unmatched posted receive, pooled in Engine::recvPool_. */
struct RecvPost
{
    std::uint32_t req = noRequest;
    SimTime postTime;
    std::uint32_t next = npos32;
};

/**
 * Both FIFO queues of one (src, dst, tag) channel as list heads into
 * the transfer arena (unmatched sends) and the receive-post pool
 * (unmatched receives). At most one side is non-empty at a time.
 */
struct ChannelQueue
{
    std::uint32_t sendHead = npos32;
    std::uint32_t sendTail = npos32;
    std::uint32_t recvHead = npos32;
    std::uint32_t recvTail = npos32;
};

struct RankCtx
{
    Rank rank = 0;
    /** This rank's window of the program's shared flat streams. */
    const std::uint8_t *kinds = nullptr;
    const PackedOp *ops = nullptr;
    std::uint32_t pc = 0;
    std::uint32_t end = 0;
    SimTime now;
    bool blocked = false;
    bool done = false;
    RankState blockState = RankState::idle;
    SimTime blockStart;

    /**
     * Request registers, pre-sized from the program. The compiler
     * assigned every non-blocking op a register and pre-linked its
     * Wait, so replay needs no id lookup and no free list — just
     * flag updates at a known index.
     */
    std::vector<std::uint8_t> regs;
    std::uint32_t liveRegs = 0;
    /** Requests the rank is currently blocked on (0 = runnable). */
    std::uint32_t awaitingCount = 0;
    /** The current blocking receive completed before the block. */
    bool blockingRecvDone = false;
    /** The rank is blocked on its current blocking receive. */
    bool awaitingBlockingRecv = false;

    RankResult result;
};

/** Runtime half of a collective; static half in CollectiveSpec. */
struct Barrier
{
    int arrived = 0;
    SimTime latest;
    /** Pooled CollExec slot (algorithmic model), or npos32. */
    std::uint32_t exec = npos32;
};

/** Per-rank progress states of an executing schedule. */
enum : std::uint8_t {
    /** The rank has not reached the collective yet. */
    collAbsent = 0,
    /** Cursor advancing (transient inside advanceCollRank). */
    collRunning = 1,
    /** Cursor parked on a send awaiting injection completion. */
    collWaitInject = 2,
    /** Cursor parked on a recv awaiting the slot's arrival. */
    collWaitRecv = 3,
    /** All steps retired; the rank has been released. */
    collDone = 4,
};

/**
 * Execution state of one in-flight algorithmic collective: the
 * per-rank cursors into the shared compiled Schedule and the
 * arrival table of its recv slots. Pooled and reused across
 * collective instances (a rank is in at most one collective, so at
 * most nranks instances are ever live at once) so steady-state
 * replays allocate nothing.
 */
struct CollExec
{
    /** Arrival instants per recv slot (valid when slotArrived). */
    std::vector<SimTime> slotTime;
    std::vector<std::uint8_t> slotArrived;
    /** Per-rank index of the next unretired step. */
    std::vector<std::uint32_t> cursor;
    /** Per-rank local time within the schedule. */
    std::vector<SimTime> rankTime;
    std::vector<std::uint8_t> rankState;
    /** Ranks still executing; 0 returns the slot to the pool. */
    int remaining = 0;
};

/**
 * The replay engine proper. Default-constructed once (per session or
 * per simulate() call) and reused: run() resets every container to
 * its empty state while keeping the allocations, so back-to-back
 * replays never touch the allocator in steady state. Replays execute
 * compiled ReplayPrograms (sim/program.hh); the TraceSet entry
 * points compile on entry.
 */
class Engine
{
  public:
    Engine() = default;

    SimResult run(const ReplayProgram &program,
                  const PlatformConfig &platform);

  private:
    void reset();
    void schedule(SimTime t, EventKind kind, std::uint32_t target);
    void countEvent();
    void runRank(RankCtx &ctx);
    void wakeRank(Rank r, SimTime t);
    void blockRank(RankCtx &ctx, RankState state);

    void activateRegister(RankCtx &ctx, std::uint32_t reg);
    void retireRegister(RankCtx &ctx, std::uint32_t reg);
    void completeRequest(Rank r, std::uint32_t req, SimTime t);

    void completeTransferRecv(std::uint32_t idx, SimTime done);
    std::uint32_t postSend(RankCtx &ctx, const PackedOp &op,
                           std::uint32_t send_req);
    void postRecv(RankCtx &ctx, const PackedOp &op,
                  std::uint32_t req);
    void matchTransfer(std::uint32_t idx, std::uint32_t recv_req,
                       SimTime post_time);
    bool tryAcquireResources(const Transfer &transfer);
    void makeEligible(std::uint32_t idx, SimTime t);
    void tryStartQueued(SimTime t);
    void startTransfer(std::uint32_t idx, SimTime t);
    void handleInjected(std::uint32_t idx, SimTime t);
    void handleNetInjected(std::uint32_t idx, SimTime t);
    void finishInjection(std::uint32_t idx, SimTime t);
    void handleArrived(std::uint32_t idx, SimTime t);
    void handleCollective(RankCtx &ctx, const PackedOp &op);
    void handleRelease(SimTime t);

    /** Algorithmic-collective seam (see handleCollective). */
    void resolveCollSchedules();
    std::uint32_t acquireCollExec(std::uint32_t c);
    void startCollRank(std::uint32_t c, Rank r);
    void advanceCollRank(std::uint32_t c, Rank r);
    void postCollTransfer(std::uint32_t c, Rank r,
                          const coll::Step &step, SimTime t);
    void onCollSendInjected(std::uint32_t idx, SimTime t);
    void onCollArrived(std::uint32_t idx, SimTime t);
    void finishCollRank(std::uint32_t c, Rank r);
    void recordCommEvent(std::uint32_t idx, SimTime recv_complete);
    [[noreturn]] void reportDeadlock() const;

    /** Scenario seam (see handleScenarioEvent). */
    void handleScenarioEvent(std::uint32_t i, SimTime t);
    void applyScenLinkScales(std::size_t i);
    void drainNetReschedules();
    void scheduleNetFinish(std::uint32_t flow, SimTime t);
    void startBackgroundFlow(std::uint32_t i, SimTime t);
    void handleBackgroundFinish(std::uint32_t i, SimTime t);
    [[noreturn]] void reportFailStop(std::uint32_t i, SimTime t);
    scen::FailureDiagnosis failStopDiagnosis(std::uint32_t i,
                                             SimTime t) const;
    void flatScenCost(int src, int dst, Bytes bytes, SimTime begin,
                      SimTime &ser, SimTime &lat) const;
    SimTime applyFlatStalls(int src, int dst, SimTime begin,
                            SimTime finish) const;

    /** Checkpoint/restart seam (see handleCheckpoint). */
    void handleCheckpoint(std::uint32_t level, SimTime t);
    void freezeMachine(SimTime cost);
    void takeSnapshot(SimTime anchor);
    void restartFromCheckpoint(std::uint32_t i, SimTime t);

    bool
    busesLimited() const
    {
        return platform_.buses > 0;
    }
    bool
    outLimited() const
    {
        return platform_.outLinksPerNode > 0;
    }
    bool
    inLimited() const
    {
        return platform_.inLinksPerNode > 0;
    }

    std::uint32_t
    nodeOf(Rank r) const
    {
        return nodeOf_[static_cast<std::size_t>(r)];
    }

    /**
     * Burst instructions -> time, identical arithmetic to
     * PlatformConfig::burstDuration but with the effective MIPS rate
     * resolved once per replay instead of per record, and the last
     * conversion memoized (traces repeat a handful of burst sizes).
     */
    SimTime
    burstTime(Instr instructions)
    {
        if (instructions == lastBurstInstr_)
            return lastBurstDur_;
        const double ns =
            static_cast<double>(instructions) * 1e3 / mips_;
        lastBurstInstr_ = instructions;
        lastBurstDur_ = SimTime::fromNs(
            static_cast<std::int64_t>(std::llround(ns)));
        return lastBurstDur_;
    }

    /**
     * Same formula as PlatformConfig::serializationDelay, inlined
     * and memoized per link class (message sizes repeat heavily).
     */
    SimTime
    serializationTime(Bytes bytes, bool local)
    {
        const int cls = local ? 1 : 0;
        if (bytes == lastSerBytes_[cls])
            return lastSerDelay_[cls];
        const double mbps = local ? platform_.localBandwidthMBps
                                  : platform_.bandwidthMBps;
        const double ns = static_cast<double>(bytes) * 1e3 / mbps;
        lastSerBytes_[cls] = bytes;
        lastSerDelay_[cls] = SimTime::fromNs(
            static_cast<std::int64_t>(std::llround(ns)));
        return lastSerDelay_[cls];
    }

    /** Valid during run(); the compiled job being replayed. */
    const ReplayProgram *program_ = nullptr;
    int nranks_ = 0;
    PlatformConfig platform_;
    bool capture_ = false;

    /**
     * Topology-network seam. False keeps the classic Dimemas bus
     * path (bit-identical to the pre-topology engine); true routes
     * every remote transfer over the compiled topology with
     * link-shared contention. The compiled routes are cached
     * across replays of a session: sweeps vary bandwidth against
     * one (topology, node count) compilation.
     */
    bool netMode_ = false;
    net::CompiledTopology topo_;
    net::TopologyConfig topoKey_;
    int topoNodes_ = -1;
    net::LinkNetwork network_;
    SimTime hopLatency_;

    /**
     * Dynamic-scenario seam, next to netMode_. False keeps both
     * cost paths bit-identical to the scenario-free engine; true
     * merges the compiled event stream (compiled per run — the
     * lists are tiny) into the heap: one scenario event is armed at
     * a time and its handler chains the next. scenActive_ marks
     * events whose effect is currently live (and doubles as the
     * in-flight flag of background flows); on the LinkNetwork path
     * linkLatScale_ carries the per-link latency multiplier that
     * the capacity-only LinkNetwork cannot.
     */
    bool scenMode_ = false;
    scen::CompiledScenario scenario_;
    std::vector<std::uint8_t> scenActive_;
    std::vector<double> linkLatScale_;

    /**
     * Scenario bookkeeping the checkpoint seam needs. The stream
     * fires strictly in index order (each handler arms its
     * successor), so scenNextIdx_ — the index of the next event to
     * fire — says which events are history (i < scenNextIdx_) and
     * which are pending. Under ckptMode_ pending events live in the
     * heap at their compiled time plus scenShift_, the accumulated
     * uniform shift of every freeze and rollback, so the flat-bus
     * pricing can place pending stall/degrade windows in effective
     * time. scenConsumed_ marks fail-stop events whose rollback was
     * already paid; it deliberately survives rollbacks (it is not
     * part of the snapshot) — a consumed failure replayed out of
     * the restored heap re-fires as a no-op that just chains its
     * successor, so one fault never charges two restarts.
     */
    std::uint32_t scenNextIdx_ = 0;
    SimTime scenShift_;
    std::vector<std::uint8_t> scenConsumed_;

    /**
     * Checkpoint/restart seam (src/res/), next to scenMode_. False
     * keeps fail-stop semantics — and everything else —
     * bit-identical to the checkpoint-free engine; true arms a
     * coordinated-checkpoint chain whose handler freezes the whole
     * machine for ckptCost_ per checkpoint and snapshots it, and
     * reroutes fail-stop scenario events from FailureError into a
     * rollback to the last snapshot plus restartCost_. Features
     * whose state the snapshot does not cover (timeline capture,
     * algorithmic collectives, non-fail-stop scenario events) are
     * rejected at run() start.
     */
    bool ckptMode_ = false;
    SimTime ckptInterval_;
    SimTime ckptCost_;
    SimTime restartCost_;
    /** Hierarchical second level: a slower, costlier global
     * checkpoint chain whose image machine-wide (`all`) failures
     * restore; narrower failures keep the cheap local level. */
    bool ckptGlobalMode_ = false;
    SimTime ckptGlobalInterval_;
    SimTime ckptGlobalCost_;
    SimTime restartGlobalCost_;
    std::uint64_t checkpointsTaken_ = 0;
    std::uint64_t restarts_ = 0;

    /**
     * Machine image captured between two events at the last
     * checkpoint (and once at t = 0 before the event loop, so a
     * failure before the first checkpoint restarts from scratch).
     * Every member mirrors its engine counterpart; pure caches
     * (memoized conversions, compiled routes/schedules), the
     * timeline (rollbacks splice it instead — wasted work is
     * recorded history, see restartFromCheckpoint) and the
     * consumed-failure marks (which must survive rollbacks) are
     * deliberately absent.
     */
    struct Snapshot
    {
        SimTime anchor;
        DaryHeap<Event, 4, std::greater<Event>> events;
        std::uint32_t nextSeq = 0;
        std::vector<RankCtx> ranks;
        std::vector<Transfer> transfers;
        std::vector<RecvPost> recvPool;
        std::uint32_t recvPoolFree = npos32;
        std::uint32_t waitHead = npos32;
        std::uint32_t waitTail = npos32;
        bool resourcesFreed = false;
        FlatMap<ChannelKey, ChannelQueue> channels;
        std::vector<Barrier> barriers;
        int busFree = 0;
        std::vector<int> outFree;
        std::vector<int> inFree;
        int doneRanks = 0;
        net::LinkNetwork network;
        std::vector<std::uint8_t> scenActive;
        std::vector<double> linkLatScale;
        std::uint32_t scenNextIdx = 0;
        SimTime scenShift;
        std::vector<CollExec> collExecs;
        std::vector<std::uint32_t> collExecFree;
    };
    Snapshot snapshot_;
    /** Image of the last global-level checkpoint (two-level mode;
     * refreshed by every global checkpoint, restored by `all`
     * failures). */
    Snapshot snapshotGlobal_;

    /**
     * LinkNetwork flow-id offset of background flows. Transfer
     * indices are capped at Event::targetMask (28 bits), so ids at
     * and above this never collide with a transfer's.
     */
    static constexpr std::uint32_t bgIdBase = 1u << 28;

    /** Per-replay constants hoisted out of the hot loop. */
    double mips_ = 1.0;
    SimTime latencyLocal_;
    SimTime latencyRemote_;
    SimTime rendezvousOverhead_;

    /**
     * Memoized last conversions (pure functions of their inputs).
     * The zero "unset" keys are exact: zero instructions/bytes
     * genuinely convert to the default-constructed zero SimTime.
     */
    Instr lastBurstInstr_ = 0;
    SimTime lastBurstDur_;
    Bytes lastSerBytes_[2] = {0, 0};
    SimTime lastSerDelay_[2];

    DaryHeap<Event, 4, std::greater<Event>> events_;
    std::uint32_t nextSeq_ = 0;
    std::uint64_t processed_ = 0;

    /**
     * Ranks still to be woken by the collective-release broadcast
     * currently unwinding. While non-zero, burst self-wakeup
     * coalescing is suppressed so the inline wakes replay exactly
     * like the per-rank resume events they replace (see
     * handleRelease for the equivalence argument).
     */
    int broadcastPending_ = 0;

    std::vector<RankCtx> ranks_;
    /** Pre-computed node of each rank (avoids a division per use). */
    std::vector<std::uint32_t> nodeOf_;

    /** Transfer arena; indices are stable, growth is amortized. */
    std::vector<Transfer> transfers_;
    /** Timeline-only fields, parallel to transfers_ (capture only). */
    std::vector<TransferMeta> txMeta_;

    /** Pool backing the per-channel unmatched-receive lists. */
    std::vector<RecvPost> recvPool_;
    std::uint32_t recvPoolFree_ = npos32;

    /** Transfers queued for interconnect resources, FIFO. */
    std::uint32_t waitHead_ = npos32;
    std::uint32_t waitTail_ = npos32;
    /**
     * True while resources have been released since the last full
     * wait-queue scan — i.e. inside handleInjected's window between
     * freeing capacity and its rescan, where queued entries may have
     * become startable. Outside that window every queued entry is
     * provably stuck, so makeEligible may test only its own
     * transfer without breaking FIFO arbitration.
     */
    bool resourcesFreed_ = false;

    /** (src, dst, tag) -> unmatched send/receive FIFOs. */
    FlatMap<ChannelKey, ChannelQueue> channels_;

    std::vector<Barrier> barriers_;

    /**
     * Algorithmic-collective state. collSched_ holds one shared
     * compiled schedule per program collective, resolved once per
     * (program collectives, rank count, algorithm pins) and cached
     * across replays — a bandwidth sweep resolves its schedules
     * once, like the compiled-topology cache. The CollExec pool is
     * engine-lifetime; acquire re-initializes, so sessions replay
     * with warmed-up arrays.
     */
    bool algorithmic_ = false;
    std::vector<std::shared_ptr<const coll::Schedule>> collSched_;
    std::vector<CollectiveSpec> collSchedKey_;
    int collSchedRanks_ = -1;
    coll::AlgorithmOverrides collSchedPins_;
    std::vector<CollExec> collExecs_;
    std::vector<std::uint32_t> collExecFree_;

    int busFree_ = 0;
    std::vector<int> outFree_;
    std::vector<int> inFree_;

    int doneRanks_ = 0;
    Timeline timeline_;

    /**
     * Always-on observability counters (src/obs/): plain
     * increments on the paths they watch, zeroed per run, copied
     * into SimResult::stats at the end. Monotone across rollbacks
     * — rework is precisely what they exist to expose — so they
     * are NOT part of Snapshot.
     */
    obs::EngineStats stats_;
};

void
Engine::schedule(SimTime t, EventKind kind, std::uint32_t target)
{
    ovlAssert(target <= Event::targetMask,
              "event target overflows the packed representation");
    ++stats_.heapPushes;
    events_.push(Event{
        t, nextSeq_++,
        (static_cast<std::uint32_t>(kind) << Event::kindShift) |
            target});
}

void
Engine::countEvent()
{
    constexpr std::uint64_t eventLimit = 2'000'000'000ULL;
    ++processed_;
    // Check the runaway guard only every 2^20 events; the limit is
    // a safety net, not an exact budget, and this keeps the hot
    // loop's per-event work to a single increment.
    if ((processed_ & ((1u << 20) - 1)) == 0 &&
        processed_ > eventLimit) {
        panic("event limit exceeded; runaway simulation");
    }
}

/**
 * Return every container to its empty state while keeping its
 * allocation, so a session's next replay starts from warmed-up
 * arenas. Must leave the engine indistinguishable (results-wise)
 * from a freshly constructed one; the session-reuse determinism
 * tests guard this.
 */
void
Engine::reset()
{
    events_.clear();
    nextSeq_ = 0;
    processed_ = 0;
    broadcastPending_ = 0;
    ranks_.resize(static_cast<std::size_t>(nranks_));
    for (auto &ctx : ranks_) {
        ctx.kinds = nullptr;
        ctx.ops = nullptr;
        ctx.pc = 0;
        ctx.end = 0;
        ctx.now = SimTime::zero();
        ctx.blocked = false;
        ctx.done = false;
        ctx.blockState = RankState::idle;
        ctx.blockStart = SimTime::zero();
        ctx.liveRegs = 0;
        ctx.awaitingCount = 0;
        ctx.blockingRecvDone = false;
        ctx.awaitingBlockingRecv = false;
        ctx.result = RankResult{};
    }
    transfers_.clear();
    txMeta_.clear();
    recvPool_.clear();
    recvPoolFree_ = npos32;
    waitHead_ = npos32;
    waitTail_ = npos32;
    resourcesFreed_ = false;
    channels_.clear();
    barriers_.clear();
    // Every pooled CollExec is free at the start of a run (a
    // previous run that threw may have left some marked busy).
    collExecFree_.clear();
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(collExecs_.size()); ++i)
        collExecFree_.push_back(i);
    doneRanks_ = 0;
    checkpointsTaken_ = 0;
    restarts_ = 0;
    scenNextIdx_ = 0;
    scenShift_ = SimTime::zero();
    scenConsumed_.clear();
    lastBurstInstr_ = 0;
    lastBurstDur_ = SimTime::zero();
    lastSerBytes_[0] = lastSerBytes_[1] = 0;
    lastSerDelay_[0] = lastSerDelay_[1] = SimTime::zero();
    timeline_ = Timeline();
    stats_ = obs::EngineStats{};
}

SimResult
Engine::run(const ReplayProgram &program,
            const PlatformConfig &platform)
{
    program_ = &program;
    platform_ = platform;
    // Validate before anything divides by cpusPerNode.
    platform_.validate();
    nranks_ = program.ranks();
    const int nranks = nranks_;
    reset();
    const int nodes =
        (nranks + platform_.cpusPerNode - 1) / platform_.cpusPerNode;
    nodeOf_.resize(static_cast<std::size_t>(nranks));
    for (Rank r = 0; r < nranks; ++r) {
        nodeOf_[static_cast<std::size_t>(r)] =
            static_cast<std::uint32_t>(r / platform_.cpusPerNode);
    }
    busFree_ = platform_.buses;
    outFree_.assign(static_cast<std::size_t>(nodes),
                    platform_.outLinksPerNode);
    inFree_.assign(static_cast<std::size_t>(nodes),
                   platform_.inLinksPerNode);
    netMode_ = !platform_.topology.isFlat();
    if (netMode_) {
        // Compile-once seam: the route table depends only on the
        // topology description and the node count, so back-to-back
        // replays (bandwidth sweeps, bisections) reuse it.
        if (topoNodes_ != nodes ||
            !(topoKey_ == platform_.topology)) {
            obs::topologyCache().recordMiss();
            topo_ = net::compileTopology(platform_.topology, nodes);
            obs::topologyCache().recordInsert(topo_.memoryBytes());
            topoKey_ = platform_.topology;
            topoNodes_ = nodes;
        } else {
            obs::topologyCache().recordHit();
        }
        const double base_mbps =
            platform_.topology.linkBandwidthMBps > 0.0
                ? platform_.topology.linkBandwidthMBps
                : platform_.bandwidthMBps;
        network_.configure(&topo_, base_mbps);
        network_.setStats(&stats_);
        hopLatency_ =
            SimTime::fromUs(platform_.topology.hopLatencyUs);
    }
    scenMode_ = !platform_.scenario.empty();
    if (scenMode_) {
        // Compiled fresh each run: scenarios are a handful of
        // events, so unlike routes and collective schedules there
        // is nothing worth caching.
        scenario_ = scen::compileScenario(
            platform_.scenario, netMode_ ? &topo_ : nullptr,
            nodes);
        scenActive_.assign(scenario_.eventCount(), 0);
        if (netMode_)
            linkLatScale_.assign(topo_.linkCount(), 1.0);
    }
    capture_ = platform_.captureTimeline;
    if (capture_)
        timeline_ = Timeline(nranks);

    mips_ = platform_.effectiveMips(program.mips());
    ovlAssert(mips_ > 0.0, "platform MIPS rate must be positive");
    latencyLocal_ = platform_.flightLatency(true);
    latencyRemote_ = platform_.flightLatency(false);
    rendezvousOverhead_ =
        SimTime::fromUs(platform_.rendezvousOverheadUs);

    // Algorithmic collectives replace the closed-form cost with
    // compiled point-to-point schedules executed on the transfer
    // path. With one rank there is no traffic to lower; the
    // analytic path (whose cost is zero for P == 1 up to latency
    // terms) keeps replaying those.
    algorithmic_ = platform_.collectiveModel ==
            coll::CollectiveModel::algorithmic &&
        nranks_ > 1 && !program.collectives().empty();
    std::size_t coll_sends = 0;
    if (algorithmic_) {
        resolveCollSchedules();
        for (const auto &sched : collSched_)
            coll_sends += sched->sendCount();
    }

    // Checkpoint/restart seam: snapshots capture the whole machine
    // between events — in-flight transfers and collective schedule
    // cursors, link capacity modifiers and stalled/parked flows,
    // background traffic, the scenario and checkpoint chains
    // themselves — so any scenario/collective/capture combination
    // replays under a positive interval.
    ckptMode_ = platform_.checkpointing();
    if (ckptMode_) {
        ckptInterval_ =
            SimTime::fromUs(platform_.checkpointIntervalUs);
        ckptCost_ = SimTime::fromUs(platform_.checkpointCostUs);
        restartCost_ = SimTime::fromUs(platform_.restartCostUs);
        if (ckptInterval_.ns() <= 0) {
            fatal("platform: checkpoint_interval_us is positive "
                  "but rounds to zero nanoseconds");
        }
        ckptGlobalMode_ = platform_.twoLevelCheckpointing();
        if (ckptGlobalMode_) {
            ckptGlobalInterval_ = SimTime::fromUs(
                platform_.checkpointGlobalIntervalUs);
            ckptGlobalCost_ = SimTime::fromUs(
                platform_.checkpointGlobalCostUs);
            restartGlobalCost_ = SimTime::fromUs(
                platform_.restartGlobalCostUs);
            if (ckptGlobalInterval_.ns() <= 0) {
                fatal("platform: checkpoint_global_interval_us is "
                      "positive but rounds to zero nanoseconds");
            }
        }
        scenConsumed_.assign(scenario_.eventCount(), 0);
    } else {
        ckptGlobalMode_ = false;
    }

    // The compiler counted the sends, so the transfer arena (one
    // entry per transfer ever posted, indices stable) can be sized
    // exactly: no growth mid-replay (collective schedule steps
    // included — each send step posts exactly one transfer). The
    // recv-post pool is left to grow on demand: posts are recycled
    // through its free list, so it only ever holds the maximum
    // number of simultaneously unmatched receives — usually a tiny
    // fraction of the total.
    transfers_.reserve(program.totalSends() + coll_sends);
    if (capture_)
        txMeta_.reserve(program.totalSends() + coll_sends);
    events_.reserve(static_cast<std::size_t>(nranks) * 4 + 256);
    // Scale the channel table with the program so big replays do
    // not pay rehash churn.
    std::size_t chan_guess = program.totalOps() / 8;
    if (chan_guess < 256)
        chan_guess = 256;
    if (chan_guess > (1u << 16))
        chan_guess = 1u << 16;
    channels_.reserve(chan_guess);

    barriers_.assign(program.collectives().size(), Barrier{});

    for (Rank r = 0; r < nranks; ++r) {
        auto &ctx = ranks_[static_cast<std::size_t>(r)];
        ctx.rank = r;
        ctx.kinds = program.kindsOf(r);
        ctx.ops = program.opsOf(r);
        ctx.end = static_cast<std::uint32_t>(program.opCount(r));
        ctx.regs.assign(program.registerCount(r), 0);
        ctx.result.rank = r;
        schedule(SimTime::zero(), EventKind::rankResume,
                 static_cast<std::uint32_t>(r));
    }

    // Arm the scenario stream: one event pending at a time, each
    // handler chaining its successor.
    if (scenMode_)
        schedule(scenario_.event(0).time, EventKind::scenario, 0);

    // Arm the coordinated-checkpoint chain(s) and capture the
    // pristine t = 0 image a failure before the first checkpoint
    // rolls back to (a from-scratch restart). The event target
    // encodes the level: 0 local, 1 global.
    if (ckptMode_) {
        schedule(ckptInterval_, EventKind::checkpoint, 0);
        if (ckptGlobalMode_)
            schedule(ckptGlobalInterval_, EventKind::checkpoint, 1);
        takeSnapshot(SimTime::zero());
        if (ckptGlobalMode_)
            snapshotGlobal_ = snapshot_;
    }

    while (!events_.empty()) {
        const Event ev = events_.top();
        events_.pop();
        ++stats_.heapPops;
        countEvent();

        switch (ev.kind()) {
          case EventKind::rankResume:
            wakeRank(static_cast<Rank>(ev.target()), ev.time);
            break;
          case EventKind::transferInjected:
            handleInjected(ev.target(), ev.time);
            break;
          case EventKind::transferArrived:
            handleArrived(ev.target(), ev.time);
            break;
          case EventKind::collectiveRelease:
            handleRelease(ev.time);
            break;
          case EventKind::scenario:
            handleScenarioEvent(ev.target(), ev.time);
            break;
          case EventKind::backgroundFinish:
            handleBackgroundFinish(ev.target(), ev.time);
            break;
          case EventKind::checkpoint:
            handleCheckpoint(ev.target(), ev.time);
            break;
        }
    }

    if (doneRanks_ < nranks)
        reportDeadlock();

    SimResult result;
    result.perRank.reserve(ranks_.size());
    for (auto &ctx : ranks_) {
        ctx.result.endTime = ctx.now;
        if (ctx.result.endTime > result.totalTime)
            result.totalTime = ctx.result.endTime;
        result.perRank.push_back(ctx.result);
    }
    result.eventsProcessed = processed_;
    result.transfers = transfers_.size();
    result.checkpoints = checkpointsTaken_;
    result.restarts = restarts_;
    result.timeline = std::move(timeline_);
    result.stats = stats_;
    return result;
}

void
Engine::wakeRank(Rank r, SimTime t)
{
    auto &ctx = ranks_[static_cast<std::size_t>(r)];
    if (ctx.done)
        return;
    if (ctx.blocked) {
        const SimTime blocked_for = t - ctx.blockStart;
        switch (ctx.blockState) {
          case RankState::sendBlocked:
            ctx.result.sendBlockedTime += blocked_for;
            break;
          case RankState::recvBlocked:
            ctx.result.recvBlockedTime += blocked_for;
            break;
          case RankState::waitBlocked:
            ctx.result.waitBlockedTime += blocked_for;
            break;
          case RankState::collective:
            ctx.result.collectiveTime += blocked_for;
            break;
          default:
            break;
        }
        if (capture_) {
            timeline_.addInterval(r, ctx.blockStart, t,
                                  ctx.blockState);
        }
        ctx.blocked = false;
    }
    if (t > ctx.now)
        ctx.now = t;
    runRank(ctx);
}

void
Engine::blockRank(RankCtx &ctx, RankState state)
{
    ctx.blocked = true;
    ctx.blockState = state;
    ctx.blockStart = ctx.now;
}

void
Engine::activateRegister(RankCtx &ctx, std::uint32_t reg)
{
    std::uint8_t &state = ctx.regs[reg];
    ovlAssert((state & regLive) == 0,
              "rank ", ctx.rank, ": register ", reg,
              " activated while live");
    state = regLive;
    ++ctx.liveRegs;
}

void
Engine::retireRegister(RankCtx &ctx, std::uint32_t reg)
{
    ovlAssert((ctx.regs[reg] & regLive) != 0,
              "retiring dead request register");
    ctx.regs[reg] = 0;
    --ctx.liveRegs;
}

void
Engine::runRank(RankCtx &ctx)
{
    const std::uint8_t *kinds = ctx.kinds;
    const PackedOp *ops = ctx.ops;
    while (ctx.pc < ctx.end) {
        const PackedOp &op = ops[ctx.pc];

        // Dense dispatch over the compiled one-byte kind stream; no
        // variant or string access anywhere in the loop.
        switch (static_cast<RecordKind>(kinds[ctx.pc])) {
          case RecordKind::burst: {
            const SimTime dur = burstTime(op.a);
            ++ctx.pc;
            if (dur.ns() == 0)
                continue;
            ctx.result.computeTime += dur;
            if (capture_) {
                timeline_.addInterval(ctx.rank, ctx.now,
                                      ctx.now + dur,
                                      RankState::compute);
            }
            ctx.now += dur;
            // Coalesced self-wakeup: when no other event precedes
            // the burst's end, the rank would be resumed next anyway,
            // so keep running it inline instead of round-tripping a
            // rankResume through the heap. The event still counts as
            // processed so throughput metrics stay comparable.
            // Suppressed while a collective-release broadcast is
            // waking ranks: the replaced per-rank resume events kept
            // the heap top at the release instant, so the historical
            // engine never coalesced here (see handleRelease).
            if (broadcastPending_ == 0 &&
                (events_.empty() ||
                 events_.top().time > ctx.now)) {
                countEvent();
                continue;
            }
            schedule(ctx.now, EventKind::rankResume,
                     static_cast<std::uint32_t>(ctx.rank));
            return;
          }

          case RecordKind::send: {
            ++ctx.pc;
            const std::uint32_t idx =
                postSend(ctx, op, noRequest);
            Transfer &t = transfers_[idx];
            if (!t.has(tfEager)) {
                // Rendezvous blocking send: stay blocked until the
                // payload has fully left this node.
                t.set(tfSenderBlocking);
                blockRank(ctx, RankState::sendBlocked);
                return;
            }
            continue;
          }

          case RecordKind::isend: {
            ++ctx.pc;
            const std::uint32_t reg = op.c;
            activateRegister(ctx, reg);
            const std::uint32_t idx = postSend(ctx, op, reg);
            Transfer &t = transfers_[idx];
            if (t.has(tfEager)) {
                // Buffered: the request completes at the call.
                t.sendReq = noRequest;
                completeRequest(ctx.rank, reg, ctx.now);
            }
            continue;
          }

          case RecordKind::recv: {
            ++ctx.pc;
            ctx.blockingRecvDone = false;
            postRecv(ctx, op, blockingRecvReq);
            if (ctx.blockingRecvDone)
                continue;
            ctx.awaitingBlockingRecv = true;
            blockRank(ctx, RankState::recvBlocked);
            return;
          }

          case RecordKind::irecv: {
            ++ctx.pc;
            const std::uint32_t reg = op.c;
            activateRegister(ctx, reg);
            postRecv(ctx, op, reg);
            continue;
          }

          case RecordKind::wait: {
            ++ctx.pc;
            const std::uint32_t reg = op.c;
            std::uint8_t &state = ctx.regs[reg];
            ovlAssert((state & regLive) != 0,
                      "rank ", ctx.rank,
                      ": wait on dead register ", reg);
            if ((state & regDone) != 0) {
                retireRegister(ctx, reg);
                continue;
            }
            state |= regAwaited;
            ctx.awaitingCount = 1;
            blockRank(ctx, RankState::waitBlocked);
            return;
          }

          case RecordKind::waitAll: {
            ++ctx.pc;
            std::uint32_t awaiting = 0;
            if (ctx.liveRegs > 0) {
                const std::uint32_t nregs = static_cast<
                    std::uint32_t>(ctx.regs.size());
                for (std::uint32_t reg = 0; reg < nregs; ++reg) {
                    std::uint8_t &state = ctx.regs[reg];
                    if ((state & regLive) == 0)
                        continue;
                    if ((state & regDone) != 0) {
                        retireRegister(ctx, reg);
                    } else {
                        state |= regAwaited;
                        ++awaiting;
                    }
                }
            }
            if (awaiting == 0)
                continue;
            ctx.awaitingCount = awaiting;
            blockRank(ctx, RankState::waitBlocked);
            return;
          }

          case RecordKind::collective: {
            ++ctx.pc;
            handleCollective(ctx, op);
            return;
          }

          default:
            panic("rank ", ctx.rank, ": corrupt op kind");
        }
    }

    if (!ctx.done) {
        ctx.done = true;
        ++doneRanks_;
    }
}

void
Engine::completeRequest(Rank r, std::uint32_t req, SimTime t)
{
    auto &ctx = ranks_[static_cast<std::size_t>(r)];
    if (req == blockingRecvReq) {
        // Blocking receives bypass the request table: either the
        // rank is blocked on this receive (wake it) or the receive
        // completed during the posting call itself.
        if (ctx.blocked && ctx.awaitingBlockingRecv) {
            ctx.awaitingBlockingRecv = false;
            wakeRank(r, t);
        } else {
            ctx.blockingRecvDone = true;
        }
        return;
    }
    ovlAssert(req < ctx.regs.size(),
              "rank ", r, ": completing invalid request register");
    std::uint8_t &state = ctx.regs[req];
    ovlAssert((state & regLive) != 0,
              "rank ", r, ": completing dead request register");
    state |= regDone;

    if (ctx.blocked && (state & regAwaited) != 0) {
        // The Wait/WaitAll that awaited this request has already
        // been consumed, so the register can be retired here.
        retireRegister(ctx, req);
        if (--ctx.awaitingCount == 0)
            wakeRank(r, t);
    }
}

void
Engine::completeTransferRecv(std::uint32_t idx, SimTime done)
{
    Transfer &t = transfers_[idx];
    if (capture_)
        recordCommEvent(idx, done);
    ++ranks_[static_cast<std::size_t>(t.dst)]
          .result.messagesReceived;
    const Rank dst = t.dst;
    const std::uint32_t req = t.recvReq;
    t.recvReq = noRequest;
    // completeRequest can re-enter the engine and post further
    // transfers. The arena is reserved exactly (run()), so `t`
    // would stay valid, but everything needed is read — and the
    // request reference cleared against double completion — first,
    // keeping this independent of the sizing invariant.
    completeRequest(dst, req, done);
}

std::uint32_t
Engine::postSend(RankCtx &ctx, const PackedOp &op,
                 std::uint32_t send_req)
{
    // The compiler already rejected wildcard sentinels and
    // out-of-range peers, and pre-packed the channel key.
    const ChannelKey key = op.a;
    const Bytes bytes = op.b;
    const Rank dst = trace::channelDstOf(key);
    const auto idx =
        static_cast<std::uint32_t>(transfers_.size());
    Transfer &t = transfers_.emplace_back();
    if (transfers_.size() > stats_.arenaHighWater)
        stats_.arenaHighWater = transfers_.size();
    t.bytes = bytes;
    t.src = ctx.rank;
    t.dst = dst;
    if (nodeOf(ctx.rank) == nodeOf(dst))
        t.set(tfLocal);
    const bool small = bytes <= platform_.eagerThreshold;
    const bool forced =
        send_req != noRequest && platform_.forceEagerIsend;
    if (small || forced)
        t.set(tfEager);
    t.sendReq = send_req;
    if (capture_) {
        TransferMeta &meta = txMeta_.emplace_back();
        meta.message = program_->p2pMeta(op.d).message;
        meta.sendPost = ctx.now;
        meta.tag = trace::channelTagOf(key);
    }

    ++ctx.result.messagesSent;
    ctx.result.bytesSent += bytes;

    // Match against an already-posted receive, FIFO per channel.
    ++stats_.channelProbes;
    ChannelQueue &q = channels_[key];
    if (q.recvHead != npos32) {
        const std::uint32_t post_idx = q.recvHead;
        q.recvHead = recvPool_[post_idx].next;
        if (q.recvHead == npos32)
            q.recvTail = npos32;
        const RecvPost post = recvPool_[post_idx];
        recvPool_[post_idx].next = recvPoolFree_;
        recvPoolFree_ = post_idx;
        matchTransfer(idx, post.req, post.postTime);
    } else {
        if (q.sendTail == npos32)
            q.sendHead = idx;
        else
            transfers_[q.sendTail].chanNext = idx;
        q.sendTail = idx;
    }

    Transfer &stored = transfers_[idx];
    if (stored.has(tfEager) || stored.has(tfRecvPosted))
        makeEligible(idx, ctx.now);
    return idx;
}

void
Engine::postRecv(RankCtx &ctx, const PackedOp &op,
                 std::uint32_t req)
{
    const ChannelKey key = op.a;
    const Bytes bytes = op.b;
    ++stats_.channelProbes;
    ChannelQueue &q = channels_[key];
    if (q.sendHead != npos32) {
        const std::uint32_t idx = q.sendHead;
        q.sendHead = transfers_[idx].chanNext;
        if (q.sendHead == npos32)
            q.sendTail = npos32;
        Transfer &t = transfers_[idx];
        t.chanNext = npos32;
        if (t.bytes != bytes) {
            fatal("rank ", ctx.rank, ": recv of ", bytes,
                  " bytes matches send of ", t.bytes,
                  " bytes on channel ", trace::channelSrcOf(key),
                  "->", ctx.rank, " tag ",
                  trace::channelTagOf(key));
        }
        matchTransfer(idx, req, ctx.now);
    } else {
        std::uint32_t post_idx;
        if (recvPoolFree_ != npos32) {
            post_idx = recvPoolFree_;
            recvPoolFree_ = recvPool_[post_idx].next;
        } else {
            post_idx =
                static_cast<std::uint32_t>(recvPool_.size());
            recvPool_.emplace_back();
        }
        recvPool_[post_idx] = RecvPost{req, ctx.now, npos32};
        if (q.recvTail == npos32)
            q.recvHead = post_idx;
        else
            recvPool_[q.recvTail].next = post_idx;
        q.recvTail = post_idx;
    }
}

void
Engine::matchTransfer(std::uint32_t idx, std::uint32_t recv_req,
                      SimTime post_time)
{
    Transfer &t = transfers_[idx];
    ovlAssert(!t.has(tfRecvPosted), "transfer matched twice");
    t.set(tfRecvPosted);
    t.recvPostTime = post_time;
    t.recvReq = recv_req;

    if (t.has(tfArrived)) {
        const SimTime done =
            t.arriveTime > post_time ? t.arriveTime : post_time;
        completeTransferRecv(idx, done);
        return;
    }
    if (!t.has(tfEager) && !t.has(tfQueued) && !t.has(tfStarted)) {
        // Rendezvous transfer becomes eligible at the match.
        makeEligible(idx, post_time);
    }
}

/** Claim bus/out/in capacity for a remote transfer if all are free. */
inline bool
Engine::tryAcquireResources(const Transfer &transfer)
{
    const std::size_t src_node = nodeOf(transfer.src);
    const std::size_t dst_node = nodeOf(transfer.dst);
    const bool bus_ok = !busesLimited() || busFree_ > 0;
    const bool out_ok = !outLimited() || outFree_[src_node] > 0;
    const bool in_ok = !inLimited() || inFree_[dst_node] > 0;
    if (!(bus_ok && out_ok && in_ok))
        return false;
    if (busesLimited())
        --busFree_;
    if (outLimited())
        --outFree_[src_node];
    if (inLimited())
        --inFree_[dst_node];
    return true;
}

void
Engine::makeEligible(std::uint32_t idx, SimTime t)
{
    Transfer &transfer = transfers_[idx];
    if (transfer.has(tfQueued) || transfer.has(tfStarted))
        return;
    transfer.set(tfQueued);
    if (transfer.has(tfLocal)) {
        // Intra-node transfers bypass the interconnect resources.
        startTransfer(idx, t);
        return;
    }
    if (netMode_) {
        // Topology mode has no admission gate: every remote
        // transfer starts immediately and contention is expressed
        // by sharing the links of its compiled route.
        startTransfer(idx, t);
        return;
    }
    // Fast path: when no resources were freed since the last full
    // scan, every queued transfer is still stuck, so enqueue-then-
    // scan reduces to checking this transfer's resources directly
    // (an acquire only shrinks capacity and cannot unstick others).
    // Inside the release window (resourcesFreed_) older queued
    // entries may be startable and FIFO demands they go first, so
    // the full scan must run.
    if (!resourcesFreed_ && tryAcquireResources(transfer)) {
        startTransfer(idx, t);
        return;
    }
    if (waitTail_ == npos32)
        waitHead_ = idx;
    else
        transfers_[waitTail_].waitNext = idx;
    waitTail_ = idx;
    if (resourcesFreed_)
        tryStartQueued(t);
}

void
Engine::tryStartQueued(SimTime t)
{
    std::uint32_t prev = npos32;
    std::uint32_t idx = waitHead_;
    while (idx != npos32) {
        Transfer &transfer = transfers_[idx];
        const std::uint32_t nxt = transfer.waitNext;
        if (tryAcquireResources(transfer)) {
            // Unlink from the wait queue.
            if (prev == npos32)
                waitHead_ = nxt;
            else
                transfers_[prev].waitNext = nxt;
            if (waitTail_ == idx)
                waitTail_ = prev;
            transfer.waitNext = npos32;
            startTransfer(idx, t);
        } else {
            prev = idx;
        }
        idx = nxt;
    }
    // Every remaining entry was just verified stuck against the
    // current resource state.
    resourcesFreed_ = false;
}

void
Engine::startTransfer(std::uint32_t idx, SimTime t)
{
    Transfer &transfer = transfers_[idx];
    transfer.set(tfStarted);
    SimTime begin = t;
    if (!transfer.has(tfEager)) {
        begin += rendezvousOverhead_;
    }
    if (capture_)
        txMeta_[idx].start = begin;
    const bool local = transfer.has(tfLocal);
    if (netMode_ && !local) {
        // Admit the flow into the link network; its serialization
        // finish arrives as a transferInjected event whose time the
        // contention model owns (and may move as flows come and
        // go). Arrival is scheduled at injection completion.
        transfer.set(tfInNet);
        const SimTime finish = network_.start(
            idx, static_cast<int>(nodeOf(transfer.src)),
            static_cast<int>(nodeOf(transfer.dst)),
            transfer.bytes, begin);
        // A frozen route (a scenario stalled or failed one of its
        // links) admits the flow but makes no progress; the
        // recovery's applyScales reschedules it.
        if (finish != SimTime::max())
            schedule(finish, EventKind::transferInjected, idx);
        return;
    }
    if (scenMode_ && !local) {
        // Flat-bus scenario pricing: the compiled stream is static,
        // so the multipliers active at the transfer's start and
        // every future stall window are known here and the final
        // injection instant is computed analytically (degradations
        // that begin mid-serialization are charged from the start —
        // a coarser model than the link network's mid-flight
        // re-sharing, by design of the flat path).
        SimTime ser, lat;
        flatScenCost(static_cast<int>(nodeOf(transfer.src)),
                     static_cast<int>(nodeOf(transfer.dst)),
                     transfer.bytes, begin, ser, lat);
        const SimTime inject = applyFlatStalls(
            static_cast<int>(nodeOf(transfer.src)),
            static_cast<int>(nodeOf(transfer.dst)), begin,
            begin + ser);
        if (inject == SimTime::max())
            return; // stalled with no recovery: never finishes
        transfer.arriveTime = inject + lat;
        schedule(inject, EventKind::transferInjected, idx);
        schedule(transfer.arriveTime, EventKind::transferArrived,
                 idx);
        return;
    }
    const SimTime ser = serializationTime(transfer.bytes, local);
    const SimTime lat = local ? latencyLocal_ : latencyRemote_;
    transfer.arriveTime = begin + ser + lat;
    schedule(begin + ser, EventKind::transferInjected, idx);
    schedule(transfer.arriveTime, EventKind::transferArrived, idx);
}

/**
 * Sender-side consequences of a completed injection, shared by the
 * bus and topology paths: unblock a blocking rendezvous sender or
 * complete a rendezvous isend request.
 */
void
Engine::finishInjection(std::uint32_t idx, SimTime t)
{
    Transfer &transfer = transfers_[idx];
    if (transfer.has(tfColl)) {
        onCollSendInjected(idx, t);
        return;
    }
    if (transfer.has(tfSenderBlocking)) {
        const Rank src = transfer.src;
        transfer.clear(tfSenderBlocking);
        wakeRank(src, t);
    } else if (!transfer.has(tfEager) &&
               transfer.sendReq != noRequest) {
        const Rank src = transfer.src;
        const std::uint32_t req = transfer.sendReq;
        transfer.sendReq = noRequest;
        completeRequest(src, req, t);
    }
}

void
Engine::handleInjected(std::uint32_t idx, SimTime t)
{
    if (netMode_) {
        handleNetInjected(idx, t);
        return;
    }
    Transfer &transfer = transfers_[idx];
    // wakeRank/completeRequest below can re-enter postSend; the
    // exactly-reserved arena keeps `transfer` valid regardless, but
    // read what the resource release needs first so this does not
    // lean on the sizing invariant.
    const bool local = transfer.has(tfLocal);
    if (!local) {
        const std::size_t src_node = nodeOf(transfer.src);
        const std::size_t dst_node = nodeOf(transfer.dst);
        if (busesLimited())
            ++busFree_;
        if (outLimited())
            ++outFree_[src_node];
        if (inLimited())
            ++inFree_[dst_node];
        // Queued transfers may now be startable; until the rescan
        // below runs, makeEligible must not bypass the FIFO scan.
        resourcesFreed_ = true;
    }

    finishInjection(idx, t);

    if (!local) {
        if (waitHead_ != npos32)
            tryStartQueued(t); // also clears resourcesFreed_
        else
            resourcesFreed_ = false; // nothing was waiting
    }
}

/**
 * A transferInjected event in topology mode. For remote transfers
 * the event time is owned by the link-contention model: it may be a
 * stale early prediction (slowdowns re-arm lazily), the real
 * serialization finish, or a leftover after completion (ignored via
 * tfInNet). On completion the freed capacity can speed other flows
 * up; their corrected finish events are scheduled here, and the
 * transfer's arrival is scheduled after the route's flight latency.
 */
void
Engine::handleNetInjected(std::uint32_t idx, SimTime t)
{
    Transfer &transfer = transfers_[idx];
    if (!transfer.has(tfLocal)) {
        if (!transfer.has(tfInNet))
            return; // stale event after completion
        const auto check = network_.onFinishEvent(idx, t);
        if (!check.done) {
            if (check.reschedule) {
                schedule(check.retry,
                         EventKind::transferInjected, idx);
            }
            return;
        }
        transfer.clear(tfInNet);
        drainNetReschedules();

        // The effective route: a scenario reroute may have moved
        // the pair off its compiled path, changing the hop count.
        const auto route = network_.routeOf(
            static_cast<int>(nodeOf(transfer.src)),
            static_cast<int>(nodeOf(transfer.dst)));
        SimTime flight = latencyRemote_;
        if (route.size() > 1) {
            flight += hopLatency_ *
                static_cast<std::int64_t>(route.size() - 1);
        }
        if (scenMode_) {
            // Degraded latency: the whole flight is scaled by the
            // worst multiplier on the route at arrival pricing.
            double scale = 1.0;
            for (const std::uint32_t link : route) {
                if (linkLatScale_[link] > scale)
                    scale = linkLatScale_[link];
            }
            if (scale != 1.0) {
                flight = SimTime::fromNs(
                    static_cast<std::int64_t>(std::llround(
                        static_cast<double>(flight.ns()) *
                        scale)));
            }
        }
        transfer.arriveTime = t + flight;
        schedule(transfer.arriveTime, EventKind::transferArrived,
                 idx);
    }
    finishInjection(idx, t);
}

void
Engine::handleArrived(std::uint32_t idx, SimTime t)
{
    Transfer &transfer = transfers_[idx];
    transfer.set(tfArrived);
    transfer.arriveTime = t;
    if (transfer.has(tfColl)) {
        onCollArrived(idx, t);
        return;
    }
    if (transfer.has(tfRecvPosted) &&
        transfer.recvReq != noRequest) {
        const SimTime done = t > transfer.recvPostTime
                                 ? t
                                 : transfer.recvPostTime;
        completeTransferRecv(idx, done);
    }
}

void
Engine::handleCollective(RankCtx &ctx, const PackedOp &op)
{
    // The compiler verified op agreement across ranks and resolved
    // the cross-rank byte maxima into the collective table, so
    // arrival is pure counting.
    Barrier &barrier = barriers_[op.c];
    ++barrier.arrived;
    if (ctx.now > barrier.latest)
        barrier.latest = ctx.now;

    blockRank(ctx, RankState::collective);

    if (algorithmic_) {
        // Algorithmic model: the rank starts walking its compiled
        // schedule at its own arrival instant (true MPI semantics —
        // a broadcast root can leave before the leaves arrive) and
        // is released when its last step retires. The analytic
        // barrier-and-release machinery below stays untouched.
        const CollectiveSpec &spec =
            program_->collectives()[op.c];
        if (static_cast<Rank>(op.d) != spec.root) {
            fatal("rank ", ctx.rank, ": collective #", op.c,
                  " names root ", op.d, " but other ranks named ",
                  spec.root,
                  " (the algorithmic collective model requires "
                  "root agreement)");
        }
        startCollRank(op.c, ctx.rank);
        return;
    }

    if (barrier.arrived == nranks_) {
        const CollectiveSpec &spec =
            program_->collectives()[op.c];
        const SimTime release = barrier.latest +
            collectiveCost(platform_, spec.op, nranks_,
                           spec.sendBytes, spec.recvBytes);
        // One broadcast-release event replaces the historical
        // one-rankResume-per-rank fan-out (see handleRelease).
        schedule(release, EventKind::collectiveRelease, op.c);
    }
}

/**
 * Release every rank blocked on a completed collective.
 *
 * Equivalence with the replaced per-rank resume fan-out: the N
 * rankResume events all carried the release instant and consecutive
 * sequence numbers, so they popped consecutively in rank order —
 * any other event's sequence lies entirely before or after the
 * block, never inside it. Waking ranks 0..N-1 inline in that order
 * is therefore the exact event order the heap produced. While ranks
 * remain to wake, their pending resumes used to cap the heap top at
 * the release instant, which disabled burst self-wakeup coalescing;
 * broadcastPending_ reproduces that (runRank checks it), and the
 * countEvent() calls keep the processed-event accounting — and so
 * the throughput metrics and SimResult::eventsProcessed —
 * bit-identical to the fan-out.
 */
void
Engine::handleRelease(SimTime t)
{
    const int nranks = nranks_;
    for (Rank r = 0; r < nranks; ++r) {
        if (r > 0)
            countEvent();
        broadcastPending_ = nranks - 1 - r;
        wakeRank(r, t);
    }
    broadcastPending_ = 0;
}

/**
 * Resolve one shared compiled schedule per program collective.
 * Pure function of (collective table, rank count, algorithm pins),
 * so the result is cached across replays: a bandwidth sweep
 * resolves its schedules once and every sweep point reuses them,
 * and the process-wide schedule cache dedups across sessions and
 * sweep lanes.
 */
void
Engine::resolveCollSchedules()
{
    const auto specs = program_->collectives();
    if (collSchedRanks_ == nranks_ &&
        collSchedPins_ == platform_.collectiveAlgorithms &&
        collSchedKey_.size() == specs.size() &&
        std::equal(collSchedKey_.begin(), collSchedKey_.end(),
                   specs.begin()))
        return;
    collSched_.clear();
    collSched_.reserve(specs.size());
    for (const CollectiveSpec &spec : specs) {
        const Bytes bytes =
            std::max(spec.sendBytes, spec.recvBytes);
        collSched_.push_back(coll::compileSchedule(
            spec.op, nranks_, spec.root, bytes,
            platform_.collectiveAlgorithms.of(spec.op)));
    }
    collSchedKey_.assign(specs.begin(), specs.end());
    collSchedRanks_ = nranks_;
    collSchedPins_ = platform_.collectiveAlgorithms;
}

/** Pool out an execution state sized for collective `c`. */
std::uint32_t
Engine::acquireCollExec(std::uint32_t c)
{
    std::uint32_t slot;
    if (!collExecFree_.empty()) {
        slot = collExecFree_.back();
        collExecFree_.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(collExecs_.size());
        collExecs_.emplace_back();
    }
    const coll::Schedule &sched = *collSched_[c];
    CollExec &ex = collExecs_[slot];
    ex.slotTime.assign(sched.recvSlots(), SimTime());
    ex.slotArrived.assign(sched.recvSlots(), 0);
    ex.cursor.assign(static_cast<std::size_t>(nranks_), 0);
    ex.rankTime.assign(static_cast<std::size_t>(nranks_),
                       SimTime());
    ex.rankState.assign(static_cast<std::size_t>(nranks_),
                        collAbsent);
    ex.remaining = nranks_;
    return slot;
}

void
Engine::startCollRank(std::uint32_t c, Rank r)
{
    Barrier &barrier = barriers_[c];
    if (barrier.exec == npos32)
        barrier.exec = acquireCollExec(c);
    CollExec &ex = collExecs_[barrier.exec];
    ex.rankTime[static_cast<std::size_t>(r)] =
        ranks_[static_cast<std::size_t>(r)].now;
    ex.rankState[static_cast<std::size_t>(r)] = collRunning;
    advanceCollRank(c, r);
}

/**
 * Walk rank `r`'s step list as far as it can go: send steps post
 * one transfer and park the cursor until the injection completes
 * (back-to-back sends serialize through the sender, like the
 * classic algorithms assume), recv steps retire as soon as their
 * pre-matched slot has arrived. A cursor that walks off the end
 * releases the rank.
 */
void
Engine::advanceCollRank(std::uint32_t c, Rank r)
{
    const std::uint32_t exec = barriers_[c].exec;
    const auto steps = collSched_[c]->stepsOf(r);
    const auto ri = static_cast<std::size_t>(r);
    for (;;) {
        CollExec &ex = collExecs_[exec];
        const std::uint32_t cur = ex.cursor[ri];
        if (cur >= steps.size())
            break;
        const coll::Step &step = steps[cur];
        if (step.isSend) {
            ex.rankState[ri] = collWaitInject;
            postCollTransfer(c, r, step, ex.rankTime[ri]);
            return;
        }
        if (!ex.slotArrived[step.slot]) {
            ex.rankState[ri] = collWaitRecv;
            return;
        }
        if (ex.slotTime[step.slot] > ex.rankTime[ri])
            ex.rankTime[ri] = ex.slotTime[step.slot];
        ++ex.cursor[ri];
        ++stats_.collSteps;
    }
    finishCollRank(c, r);
}

void
Engine::postCollTransfer(std::uint32_t c, Rank r,
                         const coll::Step &step, SimTime t)
{
    const Rank dst = step.peer;
    const auto idx = static_cast<std::uint32_t>(transfers_.size());
    Transfer &transfer = transfers_.emplace_back();
    if (transfers_.size() > stats_.arenaHighWater)
        stats_.arenaHighWater = transfers_.size();
    transfer.bytes = step.bytes;
    transfer.src = r;
    transfer.dst = dst;
    transfer.set(tfColl);
    // Eager semantics: the schedule executor owns the sender's
    // pacing (the cursor waits for injection), so the transfer
    // itself never blocks and never enters rendezvous.
    transfer.set(tfEager);
    if (nodeOf(r) == nodeOf(dst))
        transfer.set(tfLocal);
    transfer.sendReq = c;
    transfer.recvReq = step.slot;
    if (capture_) {
        // Keep the meta arena parallel; collective steps carry no
        // trace message id or tag.
        TransferMeta &meta = txMeta_.emplace_back();
        meta.sendPost = t;
    }
    auto &result = ranks_[static_cast<std::size_t>(r)].result;
    ++result.messagesSent;
    result.bytesSent += step.bytes;
    makeEligible(idx, t);
}

/**
 * A schedule send finished injecting: the sender's cursor resumes
 * past it. Exactly one un-injected collective send exists per rank
 * at a time (the cursor waits), so the event maps back to the
 * cursor without bookkeeping.
 */
void
Engine::onCollSendInjected(std::uint32_t idx, SimTime t)
{
    const Transfer &transfer = transfers_[idx];
    const std::uint32_t c = transfer.sendReq;
    const Rank r = transfer.src;
    const auto ri = static_cast<std::size_t>(r);
    CollExec &ex = collExecs_[barriers_[c].exec];
    ovlAssert(ex.rankState[ri] == collWaitInject,
              "collective injection for a rank not waiting on one");
    if (t > ex.rankTime[ri])
        ex.rankTime[ri] = t;
    ++ex.cursor[ri];
    ++stats_.collSteps;
    ex.rankState[ri] = collRunning;
    advanceCollRank(c, r);
}

/**
 * A schedule transfer arrived: record its slot and, when the
 * receiver's cursor is parked on exactly this slot, resume it.
 * Out-of-order arrivals (a later round's payload overtaking an
 * earlier sender) just mark their slot; the cursor consumes them
 * in order when it gets there.
 */
void
Engine::onCollArrived(std::uint32_t idx, SimTime t)
{
    const Transfer &transfer = transfers_[idx];
    const std::uint32_t c = transfer.sendReq;
    const std::uint32_t slot = transfer.recvReq;
    const Rank dst = transfer.dst;
    const auto di = static_cast<std::size_t>(dst);
    CollExec &ex = collExecs_[barriers_[c].exec];
    ovlAssert(!ex.slotArrived[slot],
              "collective slot arrived twice");
    ex.slotArrived[slot] = 1;
    ex.slotTime[slot] = t;
    ++ranks_[di].result.messagesReceived;
    if (ex.rankState[di] != collWaitRecv)
        return;
    const auto steps = collSched_[c]->stepsOf(dst);
    const coll::Step &step = steps[ex.cursor[di]];
    if (step.slot != slot)
        return;
    if (t > ex.rankTime[di])
        ex.rankTime[di] = t;
    ++ex.cursor[di];
    ++stats_.collSteps;
    ex.rankState[di] = collRunning;
    advanceCollRank(c, dst);
}

/**
 * Rank `r` retired its last step: release it at its schedule-local
 * time. When the last rank finishes, the execution state returns
 * to the pool — by then every transfer of the instance has arrived
 * (a rank cannot finish before consuming all its recv slots, and
 * every send is some rank's recv slot), so no event can reference
 * the slot afterwards.
 */
void
Engine::finishCollRank(std::uint32_t c, Rank r)
{
    Barrier &barrier = barriers_[c];
    CollExec &ex = collExecs_[barrier.exec];
    const auto ri = static_cast<std::size_t>(r);
    ex.rankState[ri] = collDone;
    const SimTime done = ex.rankTime[ri];
    if (--ex.remaining == 0) {
        collExecFree_.push_back(barrier.exec);
        barrier.exec = npos32;
    }
    wakeRank(r, done);
}

void
Engine::recordCommEvent(std::uint32_t idx, SimTime recv_complete)
{
    const Transfer &t = transfers_[idx];
    const TransferMeta &meta = txMeta_[idx];
    CommEvent event;
    event.message = meta.message;
    event.src = t.src;
    event.dst = t.dst;
    event.tag = meta.tag;
    event.bytes = t.bytes;
    event.sendPost = meta.sendPost;
    event.transferStart = meta.start;
    event.arrival = t.arriveTime;
    event.recvComplete = recv_complete;
    timeline_.addComm(event);
}

/**
 * A compiled scenario event fires. The handler arms the next event
 * of the stream first, so exactly one scenario event is pending at
 * any instant, then applies this one to whichever cost path the
 * replay runs on: on the link network by scaling link capacities
 * (and rerouting around dead links), on the flat bus by flipping
 * the active flags the analytic pricing in startTransfer reads.
 */
void
Engine::handleScenarioEvent(std::uint32_t i, SimTime t)
{
    // Checkpointed replays interpret the compiled stream as
    // machine-progress time: the freeze of every checkpoint (and
    // the delta of every rollback) shifted this event along with
    // the rest of the machine, so its successor is armed by the
    // compiled inter-event gap from the instant this one actually
    // fired — identical to the absolute times of the plain path
    // when nothing froze, and exactly compiled(i+1) + scenShift_.
    if (i + 1 < scenario_.eventCount()) {
        schedule(ckptMode_
                     ? t + (scenario_.event(i + 1).time -
                            scenario_.event(i).time)
                     : scenario_.event(i + 1).time,
                 EventKind::scenario, i + 1);
    }
    scenNextIdx_ = i + 1;
    ++stats_.scenarioEvents;
    const scen::ScenarioEvent &ev = scenario_.event(i);
    switch (ev.kind) {
      case scen::ScenEventKind::degrade:
        scenActive_[i] = 1;
        if (netMode_) {
            applyScenLinkScales(i);
            network_.applyScales(t);
            drainNetReschedules();
        }
        break;

      case scen::ScenEventKind::recover: {
        const std::uint32_t m = scenario_.matchOf(i);
        const scen::ScenarioEvent &undone = scenario_.event(m);
        scenActive_[m] = 0;
        if (netMode_) {
            applyScenLinkScales(m);
            network_.applyScales(t);
            if (undone.kind == scen::ScenEventKind::fail &&
                undone.semantics ==
                    scen::FailSemantics::reroute) {
                // Restored links can only add paths back; pairs
                // whose compiled route is alive again drop their
                // detours.
                const auto report =
                    network_.rerouteDeadLinks(t);
                ovlAssert(report.ok,
                          "recovery cannot remove paths");
            }
            drainNetReschedules();
        }
        break;
      }

      case scen::ScenEventKind::fail:
        if (ev.semantics == scen::FailSemantics::failStop) {
            // Nothing left to kill once every rank finished; the
            // stream keeps chaining for any later background
            // events.
            if (doneRanks_ >= nranks_)
                break;
            if (!ckptMode_)
                reportFailStop(i, t);
            // A rollback replays the stream from the snapshot's
            // cursor, so this failure fires again out of the
            // restored heap; the consumed mark makes the re-fire a
            // no-op (chain-only) instead of a second restart.
            if (!scenConsumed_[i]) {
                scenConsumed_[i] = 1;
                restartFromCheckpoint(i, t);
            }
            break;
        }
        scenActive_[i] = 1;
        if (netMode_) {
            applyScenLinkScales(i);
            network_.applyScales(t);
            if (ev.semantics == scen::FailSemantics::reroute) {
                const auto report =
                    network_.rerouteDeadLinks(t);
                if (!report.ok) {
                    fatal("scenario event `", ev.describe(),
                          "`: no surviving route from node ",
                          report.src, " to node ", report.dst,
                          " (the topology has no path diversity "
                          "around the dead links)");
                }
            }
            drainNetReschedules();
        }
        break;

      case scen::ScenEventKind::background:
        startBackgroundFlow(i, t);
        break;
    }
}

/**
 * Recompute the capacity and latency scales of every link named by
 * scenario event `i` from the full set of currently active events:
 * concurrent degrades multiply, any active failure pins the
 * capacity to zero. Changes are staged in the network and committed
 * by the caller's applyScales().
 */
void
Engine::applyScenLinkScales(std::size_t i)
{
    for (const std::uint32_t link : scenario_.linksOf(i)) {
        double bw = 1.0;
        double lat = 1.0;
        for (std::size_t j = 0; j < scenario_.eventCount(); ++j) {
            if (!scenActive_[j] ||
                !scenario_.linkSetContains(j, link))
                continue;
            const scen::ScenarioEvent &ej = scenario_.event(j);
            if (ej.kind == scen::ScenEventKind::degrade) {
                bw *= ej.bandwidthFactor;
                lat *= ej.latencyFactor;
            } else {
                bw = 0.0; // active stall/reroute failure
            }
        }
        network_.setLinkScale(link, bw);
        linkLatScale_[link] = lat;
    }
}

void
Engine::drainNetReschedules()
{
    for (const auto &[flow, finish] :
         network_.pendingReschedules())
        scheduleNetFinish(flow, finish);
    network_.clearPendingReschedules();
}

/** Map a LinkNetwork flow id back to its finish event kind. */
void
Engine::scheduleNetFinish(std::uint32_t flow, SimTime t)
{
    if (flow >= bgIdBase) {
        schedule(t, EventKind::backgroundFinish, flow - bgIdBase);
    } else {
        schedule(t, EventKind::transferInjected, flow);
    }
}

/**
 * Start the background flow of scenario event `i`: traffic that
 * occupies the interconnect without belonging to the app. On the
 * link network it is an ordinary flow (offset id, so it shares
 * links with app transfers through the same bottleneck machinery);
 * on the flat bus it holds one bus and the endpoints' links for its
 * serialization, possibly driving the free counts negative — app
 * transfers then wait until the counts recover.
 */
void
Engine::startBackgroundFlow(std::uint32_t i, SimTime t)
{
    const scen::ScenarioEvent &ev = scenario_.event(i);
    scenActive_[i] = 1;
    if (netMode_) {
        const SimTime finish = network_.start(
            bgIdBase + i, ev.nodeA, ev.nodeB, ev.bytes, t);
        if (finish != SimTime::max())
            schedule(finish, EventKind::backgroundFinish, i);
        return;
    }
    if (busesLimited())
        --busFree_;
    if (outLimited())
        --outFree_[static_cast<std::size_t>(ev.nodeA)];
    if (inLimited())
        --inFree_[static_cast<std::size_t>(ev.nodeB)];
    SimTime ser, lat;
    flatScenCost(ev.nodeA, ev.nodeB, ev.bytes, t, ser, lat);
    const SimTime finish =
        applyFlatStalls(ev.nodeA, ev.nodeB, t, t + ser);
    if (finish == SimTime::max())
        return; // stalled forever; the resources stay held
    schedule(finish, EventKind::backgroundFinish, i);
}

void
Engine::handleBackgroundFinish(std::uint32_t i, SimTime t)
{
    if (!scenActive_[i])
        return; // stale event after completion
    if (netMode_) {
        const auto check =
            network_.onFinishEvent(bgIdBase + i, t);
        if (!check.done) {
            if (check.reschedule) {
                schedule(check.retry,
                         EventKind::backgroundFinish, i);
            }
            return;
        }
        scenActive_[i] = 0;
        drainNetReschedules();
        return;
    }
    scenActive_[i] = 0;
    const scen::ScenarioEvent &ev = scenario_.event(i);
    if (busesLimited())
        ++busFree_;
    if (outLimited())
        ++outFree_[static_cast<std::size_t>(ev.nodeA)];
    if (inLimited())
        ++inFree_[static_cast<std::size_t>(ev.nodeB)];
    resourcesFreed_ = true;
    if (waitHead_ != npos32)
        tryStartQueued(t); // also clears resourcesFreed_
    else
        resourcesFreed_ = false;
}

/** Structured where-was-everyone report of a fail-stop at `t`. */
scen::FailureDiagnosis
Engine::failStopDiagnosis(std::uint32_t i, SimTime t) const
{
    scen::FailureDiagnosis diag;
    diag.event = scenario_.event(i).describe();
    diag.time = t;
    for (const auto &ctx : ranks_) {
        if (ctx.done)
            continue;
        scen::BlockedRank blocked;
        blocked.rank = ctx.rank;
        blocked.state = ctx.blocked
            ? rankStateName(ctx.blockState)
            : "running";
        blocked.pc = static_cast<std::size_t>(ctx.pc);
        blocked.end = static_cast<std::size_t>(ctx.end);
        diag.blockedRanks.push_back(std::move(blocked));
    }
    return diag;
}

/**
 * A fail-stop event fired with ranks unfinished: terminate the
 * replay with the structured diagnosis — the failure-semantics
 * mirror of reportDeadlock.
 */
void
Engine::reportFailStop(std::uint32_t i, SimTime t)
{
    throw scen::FailureError(failStopDiagnosis(i, t));
}

/**
 * A coordinated checkpoint fires at `t`: every rank stops, the
 * machine image is written out over ckptCost_, and execution
 * resumes shifted by exactly that cost. The freeze is a uniform
 * shift of every pending instant — heap events and link-network
 * flow clocks — which preserves their relative order, so the
 * post-freeze replay is the un-frozen replay delayed by the cost.
 * Rank-local clocks are left alone: a blocked rank's wake event
 * moved, so the freeze lands in its blocked-time accounting, and a
 * self-resuming rank wakes at the shifted instant (wakeRank only
 * moves clocks forward). The snapshot is taken after the shift,
 * anchored at t + ckptCost_ — the instant the written image is
 * consistent and restartable.
 */
void
Engine::handleCheckpoint(std::uint32_t level, SimTime t)
{
    // The application finished (only drain events remain): stop
    // chaining and let the heap empty.
    if (doneRanks_ >= nranks_)
        return;
    ++checkpointsTaken_;
    const bool global = level == 1;
    const SimTime cost = global ? ckptGlobalCost_ : ckptCost_;
    freezeMachine(cost);
    // Arm the successor BEFORE imaging the machine: the snapshot
    // carries the whole heap, checkpoint chain included, so a
    // restore finds its next checkpoint pending exactly one
    // interval past the restart instant (anchor + interval + delta
    // = restore_at + interval) without any re-arming.
    schedule(t + cost +
                 (global ? ckptGlobalInterval_ : ckptInterval_),
             EventKind::checkpoint, level);
    takeSnapshot(t + cost);
    if (capture_)
        timeline_.addCheckpoint(t + cost, global);
    // A global checkpoint also refreshes the local image: the
    // newest restartable image is always at least as recent at the
    // cheap level as at the expensive one.
    if (global)
        snapshotGlobal_ = snapshot_;
}

void
Engine::freezeMachine(SimTime cost)
{
    if (cost.ns() == 0)
        return;
    // A uniform shift keeps every pair of heap keys ordered as
    // before, which is exactly the contract DaryHeap::operator[]
    // mutation demands. Stored per-transfer instants need no shift:
    // future ones (the arriveTime of an in-flight transfer) are
    // overwritten from the shifted event when it fires, and past
    // ones must stay where history put them. The pending scenario
    // event moved with the rest of the machine, so the accumulated
    // compiled-to-effective shift grows by the same cost.
    for (std::size_t k = 0; k < events_.size(); ++k)
        events_[k].time += cost;
    if (netMode_)
        network_.shiftFlowClocks(cost);
    if (scenMode_)
        scenShift_ += cost;
}

/**
 * Capture the whole machine between two events. Containers are
 * copied into the retained snapshot arenas, so steady-state
 * checkpoints only allocate while the machine grows past its
 * high-water mark.
 */
void
Engine::takeSnapshot(SimTime anchor)
{
    ovlAssert(broadcastPending_ == 0,
              "checkpoint inside a release broadcast");
    Snapshot &s = snapshot_;
    s.anchor = anchor;
    s.events = events_;
    s.nextSeq = nextSeq_;
    s.ranks = ranks_;
    s.transfers.assign(transfers_.begin(), transfers_.end());
    s.recvPool.assign(recvPool_.begin(), recvPool_.end());
    s.recvPoolFree = recvPoolFree_;
    s.waitHead = waitHead_;
    s.waitTail = waitTail_;
    s.resourcesFreed = resourcesFreed_;
    s.channels = channels_;
    s.barriers.assign(barriers_.begin(), barriers_.end());
    s.busFree = busFree_;
    s.outFree = outFree_;
    s.inFree = inFree_;
    s.doneRanks = doneRanks_;
    if (netMode_)
        s.network = network_;
    s.scenActive = scenActive_;
    s.linkLatScale = linkLatScale_;
    s.scenNextIdx = scenNextIdx_;
    s.scenShift = scenShift_;
    if (algorithmic_) {
        s.collExecs.assign(collExecs_.begin(), collExecs_.end());
        s.collExecFree = collExecFree_;
    }
}

/**
 * Fail-stop event `i` fired at `t` with checkpointing enabled:
 * roll the machine back to the last checkpoint instead of killing
 * the replay — the local image normally, the global image (at its
 * own restart cost) for machine-wide `all` failures under two-level
 * checkpointing. The restored image re-enters simulated time at
 * t + restart cost: every pending instant in the snapshot shifts
 * forward by delta = (t + cost) - anchor — non-negative, since the
 * failure fired after the snapshot it rolls back to — so the
 * replayed tail is the checkpointed tail delayed by exactly the
 * work since the checkpoint plus the restart cost (the closed-form
 * accounting the resilience tests pin). In-flight traffic caught by
 * the failure is torn down first and the link occupancy invariant
 * asserted back to zero before the snapshot's own flows are
 * reinstated.
 *
 * The heap is restored whole — scenario and checkpoint chains
 * included, shifted like everything else. The snapshot's pending
 * scenario cursor replays the stream from the checkpoint: degrades,
 * stalls and background flows re-apply (a flow finishing after the
 * restart pays the re-applied capacities), while already-consumed
 * failures re-fire as chain-only no-ops (scenConsumed_). The
 * restored pending checkpoint sits exactly one interval after the
 * restart instant, because the snapshot was anchored at the instant
 * its own successor was armed an interval out.
 *
 * Per-rank accounting keeps the counters as of the checkpoint
 * (work is charged once) while totalTime absorbs the rework;
 * processed_ keeps counting across restarts — rolled-back events
 * were still simulated work, and the runaway guard must see them.
 * The timeline is deliberately NOT restored: capture records
 * through failures, the splice below truncates ahead-recorded
 * intervals at the cut and inserts a restart interval, so a Gantt
 * of a rolled-back run shows the wasted segments as first-class
 * history.
 */
void
Engine::restartFromCheckpoint(std::uint32_t i, SimTime t)
{
    ++restarts_;
    if (restarts_ > platform_.restartBudget) {
        scen::FailureDiagnosis diag = failStopDiagnosis(i, t);
        diag.event = strformat(
            "restart_budget (%llu) exhausted: observed MTBF "
            "~%.6g us against checkpoint_interval_us = %.17g; the "
            "platform fails faster than it recovers; last "
            "failure: ",
            static_cast<unsigned long long>(
                platform_.restartBudget),
            t.toUs() / static_cast<double>(restarts_),
            platform_.checkpointIntervalUs) + diag.event;
        throw scen::FailureError(std::move(diag));
    }
    ovlAssert(broadcastPending_ == 0,
              "restart inside a release broadcast");
    const bool global = ckptGlobalMode_ &&
        scenario_.event(i).target == scen::ScenTarget::all;
    const Snapshot &s = global ? snapshotGlobal_ : snapshot_;
    const SimTime restore_at =
        t + (global ? restartGlobalCost_ : restartCost_);
    ovlAssert(restore_at >= s.anchor,
              "fail-stop fired before the checkpoint it rolls "
              "back to");
    const SimTime delta = restore_at - s.anchor;

    // Byte conservation across the rollback: restoring can only
    // discard work, never invent traffic.
    std::uint64_t bytes_before = 0;
    std::uint64_t msgs_before = 0;
    for (const auto &ctx : ranks_) {
        bytes_before += ctx.result.bytesSent;
        msgs_before += ctx.result.messagesSent;
    }

    // Splice the timeline at the cut while the pre-rollback rank
    // states are still visible: ahead-recorded compute bursts are
    // clipped to what actually executed, open blocked windows are
    // closed at the failure instant (their tails past the cut are
    // wasted work, recorded as such).
    if (capture_) {
        timeline_.truncateAt(t);
        for (const auto &ctx : ranks_) {
            if (!ctx.done && ctx.blocked && ctx.blockStart < t) {
                timeline_.addInterval(ctx.rank, ctx.blockStart, t,
                                      ctx.blockState);
            }
        }
    }

    if (netMode_) {
        // Cancel what the failure caught mid-flight; occupancy must
        // return to zero before the snapshot's flows take over.
        network_.cancelAll(t);
        ovlAssert(network_.totalLoad() == 0,
                  "cancelled in-flight flows left link occupancy "
                  "behind");
        network_.clearPendingReschedules();
        network_ = s.network;
        // The snapshot was imaged with the stats pointer embedded;
        // re-aim it at this run's live counters (monotone across
        // rollbacks, never restored).
        network_.setStats(&stats_);
        network_.shiftFlowClocks(delta);
        ovlAssert(network_.totalLoad() == s.network.totalLoad(),
                  "restore changed link occupancy");
    }

    // Rebuild the heap from the snapshot whole, shifted into the
    // restarted time frame. The vectors shrink back onto their
    // reserved arenas — restores never reallocate.
    events_.clear();
    for (std::size_t k = 0; k < s.events.size(); ++k) {
        Event ev = s.events[k];
        ev.time += delta;
        ++stats_.heapPushes;
        events_.push(ev);
    }
    nextSeq_ = s.nextSeq;
    ranks_ = s.ranks;
    transfers_.resize(s.transfers.size());
    std::copy(s.transfers.begin(), s.transfers.end(),
              transfers_.begin());
    if (capture_)
        txMeta_.resize(s.transfers.size());
    recvPool_.resize(s.recvPool.size());
    std::copy(s.recvPool.begin(), s.recvPool.end(),
              recvPool_.begin());
    recvPoolFree_ = s.recvPoolFree;
    waitHead_ = s.waitHead;
    waitTail_ = s.waitTail;
    resourcesFreed_ = s.resourcesFreed;
    channels_ = s.channels;
    barriers_.assign(s.barriers.begin(), s.barriers.end());
    busFree_ = s.busFree;
    outFree_ = s.outFree;
    inFree_ = s.inFree;
    doneRanks_ = s.doneRanks;
    scenActive_ = s.scenActive;
    linkLatScale_ = s.linkLatScale;
    scenNextIdx_ = s.scenNextIdx;
    scenShift_ = s.scenShift + delta;
    if (algorithmic_) {
        collExecs_.assign(s.collExecs.begin(), s.collExecs.end());
        collExecFree_ = s.collExecFree;
    }

    std::uint64_t bytes_after = 0;
    std::uint64_t msgs_after = 0;
    for (const auto &ctx : ranks_) {
        bytes_after += ctx.result.bytesSent;
        msgs_after += ctx.result.messagesSent;
    }
    ovlAssert(bytes_after <= bytes_before &&
                  msgs_after <= msgs_before,
              "rollback increased sent traffic");

    // Simulated time spent redoing rolled-back work plus the
    // restart cost itself — the rework this rollback added.
    stats_.rollbackReworkNs +=
        static_cast<std::uint64_t>(delta.ns());

    // The machine pays the restart: every rank alive in the
    // restored image spends [t, restore_at] rolling back.
    if (capture_) {
        for (const auto &ctx : ranks_) {
            if (!ctx.done) {
                timeline_.addInterval(ctx.rank, t, restore_at,
                                      RankState::restart);
            }
        }
    }
}

/**
 * Flat-bus scenario pricing of a remote src -> dst node transfer
 * starting at `begin`: serialization and flight latency under the
 * product of the multipliers of every degrade event active at that
 * instant.
 */
void
Engine::flatScenCost(int src, int dst, Bytes bytes, SimTime begin,
                     SimTime &ser, SimTime &lat) const
{
    double bw = 1.0;
    double latm = 1.0;
    for (std::size_t i = 0; i < scenario_.eventCount(); ++i) {
        const scen::ScenarioEvent &ev = scenario_.event(i);
        if (ev.kind != scen::ScenEventKind::degrade)
            continue;
        if (ckptMode_) {
            // Effective-time window test: a fired degrade applies
            // while its activity flag is up (its pending recovery
            // is necessarily in the future); a pending one applies
            // only at the boundary instant where its shifted
            // compiled time has been reached but the event has not
            // popped yet.
            if (i < scenNextIdx_) {
                if (!scenActive_[i])
                    continue;
            } else {
                const SimTime rec = scenario_.recoveryTimeOf(i);
                if (ev.time + scenShift_ > begin ||
                    (rec != SimTime::max() &&
                     begin >= rec + scenShift_))
                    continue;
            }
        } else if (!(ev.time <= begin &&
                     begin < scenario_.recoveryTimeOf(i))) {
            continue;
        }
        if (!ev.matchesPair(src, dst))
            continue;
        bw *= ev.bandwidthFactor;
        latm *= ev.latencyFactor;
    }
    const double ser_ns = static_cast<double>(bytes) * 1e3 /
        (platform_.bandwidthMBps * bw);
    ser = SimTime::fromNs(
        static_cast<std::int64_t>(std::llround(ser_ns)));
    lat = latm == 1.0
        ? latencyRemote_
        : SimTime::fromNs(static_cast<std::int64_t>(std::llround(
              static_cast<double>(latencyRemote_.ns()) * latm)));
}

/**
 * Extend a flat-bus serialization ending at `finish` across every
 * stall window that covers the src -> dst pair: while a window is
 * open the payload makes no progress, so each window starting
 * before the (already extended) finish pushes it out by the
 * window's remaining length. Windows are visited in start order
 * (the stream is time-sorted) and overlapping ones are merged so
 * concurrent stalls do not double-charge. Returns SimTime::max()
 * for a transfer caught by a stall that never recovers.
 */
SimTime
Engine::applyFlatStalls(int src, int dst, SimTime begin,
                        SimTime finish) const
{
    bool have = false;
    SimTime winStart, winEnd;
    const auto apply = [&]() {
        if (finish == SimTime::max() || winEnd <= begin)
            return;
        const SimTime eff =
            winStart > begin ? winStart : begin;
        if (eff >= finish)
            return;
        if (winEnd == SimTime::max()) {
            finish = SimTime::max();
            return;
        }
        finish += winEnd - eff;
    };
    for (std::size_t i = 0; i < scenario_.eventCount(); ++i) {
        const scen::ScenarioEvent &ev = scenario_.event(i);
        if (ev.kind != scen::ScenEventKind::fail ||
            ev.semantics != scen::FailSemantics::stall)
            continue;
        if (!ev.matchesPair(src, dst))
            continue;
        SimTime s = ev.time;
        SimTime r = scenario_.recoveryTimeOf(i);
        if (ckptMode_) {
            // Effective-time windows, mirroring flatScenCost: a
            // fired-and-active stall reaches the present (only its
            // remainder past `begin` matters, so `begin` is as good
            // a start as the historical one), a fired-and-recovered
            // one is spent, and a pending one sits at its shifted
            // compiled instants. Index order still visits windows
            // in non-decreasing start order: fired-active windows
            // collapse to `begin` and pending ones keep the
            // compiled time order under a uniform shift.
            if (i < scenNextIdx_) {
                if (!scenActive_[i])
                    continue;
                s = begin;
            } else {
                s = s + scenShift_;
            }
            if (r != SimTime::max())
                r = r + scenShift_;
        }
        if (have && s <= winEnd) {
            if (r > winEnd)
                winEnd = r;
            continue;
        }
        if (have)
            apply();
        winStart = s;
        winEnd = r;
        have = true;
    }
    if (have)
        apply();
    return finish;
}

void
Engine::reportDeadlock() const
{
    std::string detail;
    for (const auto &ctx : ranks_) {
        if (ctx.done)
            continue;
        detail += strformat(
            "\n  rank %d: blocked=%s state=%s pc=%zu/%zu "
            "awaiting=%u",
            ctx.rank, ctx.blocked ? "yes" : "no",
            rankStateName(ctx.blockState),
            static_cast<std::size_t>(ctx.pc),
            static_cast<std::size_t>(ctx.end), ctx.awaitingCount);
        // A rank wedged inside a lowered collective names the
        // schedule step its cursor is parked on — "blocked in a
        // collective" alone does not say which transfer of which
        // operation never completed.
        if (!algorithmic_ || !ctx.blocked ||
            ctx.blockState != RankState::collective)
            continue;
        const auto ri = static_cast<std::size_t>(ctx.rank);
        for (std::uint32_t c = 0;
             c < static_cast<std::uint32_t>(barriers_.size());
             ++c) {
            const std::uint32_t exec = barriers_[c].exec;
            if (exec == npos32)
                continue;
            const CollExec &ex = collExecs_[exec];
            const std::uint8_t st = ex.rankState[ri];
            if (st != collWaitInject && st != collWaitRecv)
                continue;
            const auto steps = collSched_[c]->stepsOf(ctx.rank);
            const coll::Step &step = steps[ex.cursor[ri]];
            detail += strformat(
                " collective=%s#%u step=%u/%zu (%s rank %d)",
                trace::collOpName(
                    program_->collectives()[c].op),
                c, ex.cursor[ri], steps.size(),
                st == collWaitInject ? "send to" : "recv from",
                step.peer);
            break;
        }
    }
    if (scenMode_) {
        // Frozen traffic with no recovery in the stream is the
        // likely culprit; say so.
        for (std::size_t i = 0; i < scenario_.eventCount(); ++i) {
            const scen::ScenarioEvent &ev = scenario_.event(i);
            if (scenActive_[i] &&
                ev.kind == scen::ScenEventKind::fail &&
                ev.semantics == scen::FailSemantics::stall &&
                scenario_.matchOf(i) == scen::CompiledScenario::npos) {
                detail += strformat(
                    "\n  note: scenario event `%s` never recovers",
                    ev.describe().c_str());
            }
        }
    }
    fatal("replay deadlocked with ", nranks_ - doneRanks_,
          " rank(s) unfinished:", detail);
}

} // namespace

struct ReplaySession::Impl
{
    Engine engine;
};

ReplaySession::ReplaySession() : impl_(std::make_unique<Impl>()) {}
ReplaySession::~ReplaySession() = default;
ReplaySession::ReplaySession(ReplaySession &&) noexcept = default;
ReplaySession &
ReplaySession::operator=(ReplaySession &&) noexcept = default;

SimResult
ReplaySession::run(const trace::TraceSet &traces,
                   const PlatformConfig &platform)
{
    return impl_->engine.run(compileTrace(traces), platform);
}

SimResult
ReplaySession::run(const ReplayProgram &program,
                   const PlatformConfig &platform)
{
    return impl_->engine.run(program, platform);
}

SimResult
simulate(const trace::TraceSet &traces,
         const PlatformConfig &platform)
{
    Engine engine;
    return engine.run(compileTrace(traces), platform);
}

SimResult
simulate(const ReplayProgram &program,
         const PlatformConfig &platform)
{
    Engine engine;
    return engine.run(program, platform);
}

std::vector<SimResult>
simulateBatch(std::span<const SimJob> jobs, int threads)
{
    std::vector<SimResult> results(jobs.size());
    // Resolve one compiled program per job. Jobs carrying an
    // explicit program share it as-is; the rest compile once per
    // distinct TraceSet pointer (driver batches typically replay a
    // handful of trace sets across many platforms).
    std::vector<std::shared_ptr<const ReplayProgram>> programs(
        jobs.size());
    std::map<const trace::TraceSet *, std::size_t> first_use;
    std::vector<std::size_t> to_compile;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (jobs[i].program != nullptr) {
            programs[i] = jobs[i].program;
            continue;
        }
        ovlAssert(jobs[i].traces != nullptr,
                  "simulateBatch: job ", i,
                  " has neither traces nor a program");
        if (first_use.emplace(jobs[i].traces, i).second)
            to_compile.push_back(i);
    }

    // Never spawn more lanes than jobs: small batches (2-3 replays)
    // are common in driver loops, where a full hardware-sized pool
    // would be pure spawn/join overhead.
    int lanes = ThreadPool::resolveThreads(threads);
    if (static_cast<std::size_t>(lanes) > jobs.size())
        lanes = jobs.empty() ? 1
                             : static_cast<int>(jobs.size());
    ThreadPool pool(lanes);
    pool.parallelFor(
        to_compile.size(), [&](std::size_t k, int) {
            const std::size_t i = to_compile[k];
            programs[i] = compileShared(*jobs[i].traces);
        });
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (programs[i] == nullptr)
            programs[i] =
                programs[first_use.at(jobs[i].traces)];
    }

    // One session per lane: lanes never share engine state, and job
    // i always lands in slot i, so the output is independent of how
    // tasks were scheduled over lanes.
    std::vector<ReplaySession> sessions(
        static_cast<std::size_t>(pool.size()));
    pool.parallelFor(jobs.size(), [&](std::size_t i, int lane) {
        results[i] = sessions[static_cast<std::size_t>(lane)].run(
            *programs[i], jobs[i].platform);
    });
    return results;
}

} // namespace ovlsim::sim
