#include "engine.hh"

#include <cmath>
#include <cstdint>
#include <vector>

#include "trace/record.hh"
#include "util/dary_heap.hh"
#include "util/flat_map.hh"
#include "util/logging.hh"
#include "util/strings.hh"
#include "util/thread_pool.hh"
#include "util/types.hh"

namespace ovlsim::sim {

namespace {

using trace::ChannelKey;
using trace::CollectiveRec;
using trace::CpuBurst;
using trace::IRecvRec;
using trace::ISendRec;
using trace::MessageId;
using trace::Record;
using trace::RecvRec;
using trace::RequestId;
using trace::SendRec;
using trace::WaitAllRec;
using trace::WaitRec;

/** Null index for the intrusive lists threaded through the arenas. */
constexpr std::uint32_t npos32 = 0xFFFFFFFFu;

/** Trace request ids must stay below this (0 is the null request). */
constexpr RequestId externalReqLimit = 1ULL << 62;

// runRank dispatches on the variant index; keep the case labels in
// sync with the Record alternative order.
static_assert(std::variant_size_v<Record> == 8);
static_assert(std::is_same_v<std::variant_alternative_t<0, Record>,
                             CpuBurst>);
static_assert(std::is_same_v<std::variant_alternative_t<1, Record>,
                             SendRec>);
static_assert(std::is_same_v<std::variant_alternative_t<2, Record>,
                             ISendRec>);
static_assert(std::is_same_v<std::variant_alternative_t<3, Record>,
                             RecvRec>);
static_assert(std::is_same_v<std::variant_alternative_t<4, Record>,
                             IRecvRec>);
static_assert(std::is_same_v<std::variant_alternative_t<5, Record>,
                             WaitRec>);
static_assert(std::is_same_v<std::variant_alternative_t<6, Record>,
                             WaitAllRec>);
static_assert(std::is_same_v<std::variant_alternative_t<7, Record>,
                             CollectiveRec>);

enum class EventKind : std::uint32_t {
    rankResume = 0,
    transferInjected = 1,
    transferArrived = 2,
};

/**
 * One pending event, packed to 16 bytes so heap sifts move as little
 * memory as possible. The kind lives in the top two bits of
 * `kindTarget`; targets (rank or transfer index) get the remaining
 * 30 bits, and schedule() asserts they fit.
 *
 * `seq` is a 32-bit tie-breaker: schedules are bounded by the 2e9
 * event limit plus the residual heap, so it cannot wrap before the
 * engine panics on a runaway simulation.
 */
struct Event
{
    SimTime time;
    std::uint32_t seq;
    std::uint32_t kindTarget;

    static constexpr std::uint32_t kindShift = 30;
    static constexpr std::uint32_t targetMask =
        (1u << kindShift) - 1;

    EventKind
    kind() const
    {
        return static_cast<EventKind>(kindTarget >> kindShift);
    }

    std::uint32_t
    target() const
    {
        return kindTarget & targetMask;
    }

    bool
    operator>(const Event &other) const
    {
        if (time != other.time)
            return time > other.time;
        return seq > other.seq;
    }
};

static_assert(sizeof(Event) == 16);

/**
 * Slot index of the sentinel handle standing for "the issuing
 * rank's in-flight blocking receive". A rank has at most one (it
 * blocks before posting another), so blocking receives bypass the
 * request table entirely.
 */
constexpr std::uint32_t blockingRecvSlot = npos32 - 1;

/**
 * Reference to one slot of a rank's request table (or the blocking
 * receive sentinel). The generation counter detects stale
 * references: a slot is recycled through the free list as soon as
 * its request retires, and the generation increments on every
 * retirement.
 */
struct ReqHandle
{
    std::uint32_t slot = npos32;
    std::uint32_t gen = 0;

    bool valid() const { return slot != npos32; }
    bool blockingRecv() const { return slot == blockingRecvSlot; }
};

/** Transfer state bits (Transfer::flags). */
enum : std::uint8_t {
    tfLocal = 1u << 0,
    tfEager = 1u << 1,
    tfSenderBlocking = 1u << 2,
    tfRecvPosted = 1u << 3,
    tfQueued = 1u << 4,
    tfStarted = 1u << 5,
    tfArrived = 1u << 6,
};

/**
 * One point-to-point transfer, kept to a single cache line; the
 * arena of these is the engine's hottest memory. Fields needed only
 * for timeline capture (message id, tag, post/start instants) live
 * in the parallel TransferMeta arena, which is populated only when
 * the platform requests a timeline.
 */
struct Transfer
{
    Bytes bytes = 0;
    /** When the matching receive was posted (valid if tfRecvPosted). */
    SimTime recvPostTime;
    /** Scheduled/actual arrival instant (valid once started). */
    SimTime arriveTime;
    ReqHandle sendReq;
    ReqHandle recvReq;
    Rank src = 0;
    Rank dst = 0;
    /** Next unmatched send on the same channel (FIFO order). */
    std::uint32_t chanNext = npos32;
    /** Next transfer queued for interconnect resources. */
    std::uint32_t waitNext = npos32;
    std::uint8_t flags = 0;

    bool has(std::uint8_t f) const { return (flags & f) != 0; }
    void set(std::uint8_t f) { flags |= f; }
    void clear(std::uint8_t f) { flags &= static_cast<std::uint8_t>(~f); }
};

static_assert(sizeof(Transfer) <= 64);

/** Timeline-only transfer details (parallel to the transfer arena). */
struct TransferMeta
{
    MessageId message = trace::invalidMessageId;
    SimTime sendPost;
    SimTime start;
    Tag tag = 0;
};

/**
 * One slot of a rank's request table. Slots are recycled through a
 * per-rank free list, so posting and retiring requests never touches
 * the allocator in steady state.
 */
struct ReqSlot
{
    /** Trace-visible request id; 0 for internal (blocking) requests. */
    RequestId externalId = 0;
    std::uint32_t gen = 1;
    std::uint32_t nextFree = npos32;
    bool live = false;
    bool done = false;
    /** The owning rank is blocked on this request completing. */
    bool awaited = false;
};

/** An unmatched posted receive, pooled in Engine::recvPool_. */
struct RecvPost
{
    ReqHandle req;
    SimTime postTime;
    std::uint32_t next = npos32;
};

/**
 * Both FIFO queues of one (src, dst, tag) channel as list heads into
 * the transfer arena (unmatched sends) and the receive-post pool
 * (unmatched receives). At most one side is non-empty at a time.
 */
struct ChannelQueue
{
    std::uint32_t sendHead = npos32;
    std::uint32_t sendTail = npos32;
    std::uint32_t recvHead = npos32;
    std::uint32_t recvTail = npos32;
};

struct RankCtx
{
    Rank rank = 0;
    const std::vector<Record> *records = nullptr;
    std::size_t pc = 0;
    SimTime now;
    bool blocked = false;
    bool done = false;
    RankState blockState = RankState::idle;
    SimTime blockStart;

    /** Request table: slot storage, free list and live accounting. */
    std::vector<ReqSlot> reqSlots;
    std::uint32_t reqFreeHead = npos32;
    std::uint32_t liveReqs = 0;
    /** Requests the rank is currently blocked on (0 = runnable). */
    std::uint32_t awaitingCount = 0;
    /** The current blocking receive completed before the block. */
    bool blockingRecvDone = false;
    /** The rank is blocked on its current blocking receive. */
    bool awaitingBlockingRecv = false;
    /** Trace request id -> live slot index. */
    FlatMap<RequestId, std::uint32_t> reqIndex;

    std::size_t collSeq = 0;

    RankResult result;
};

struct CollBarrier
{
    trace::CollOp op = trace::CollOp::barrier;
    Bytes sendBytes = 0;
    Bytes recvBytes = 0;
    int arrived = 0;
    SimTime latest;
    bool released = false;
};

/**
 * The replay engine proper. Default-constructed once (per session or
 * per simulate() call) and reused: run() resets every container to
 * its empty state while keeping the allocations, so back-to-back
 * replays never touch the allocator in steady state.
 */
class Engine
{
  public:
    Engine() = default;

    SimResult run(const trace::TraceSet &traces,
                  const PlatformConfig &platform);

  private:
    void reset(int nranks);
    void schedule(SimTime t, EventKind kind, std::uint32_t target);
    void countEvent();
    void runRank(RankCtx &ctx);
    void wakeRank(Rank r, SimTime t);
    void blockRank(RankCtx &ctx, RankState state);

    std::uint32_t allocRequest(RankCtx &ctx, RequestId external);
    void retireRequest(RankCtx &ctx, std::uint32_t slot);
    ReqHandle handleOf(const RankCtx &ctx, std::uint32_t slot) const;
    void completeRequest(Rank r, ReqHandle req, SimTime t);

    void completeTransferRecv(std::uint32_t idx, SimTime done);
    std::uint32_t postSend(RankCtx &ctx, Rank dst, Tag tag,
                           Bytes bytes, MessageId msg, bool blocking,
                           ReqHandle send_req);
    void postRecv(RankCtx &ctx, Rank src, Tag tag, Bytes bytes,
                  MessageId msg, ReqHandle req);
    void matchTransfer(std::uint32_t idx, ReqHandle recv_req,
                       SimTime post_time);
    bool tryAcquireResources(const Transfer &transfer);
    void makeEligible(std::uint32_t idx, SimTime t);
    void tryStartQueued(SimTime t);
    void startTransfer(std::uint32_t idx, SimTime t);
    void handleInjected(std::uint32_t idx, SimTime t);
    void handleArrived(std::uint32_t idx, SimTime t);
    void handleCollective(RankCtx &ctx, const CollectiveRec &rec);
    void recordCommEvent(std::uint32_t idx, SimTime recv_complete);
    [[noreturn]] void reportDeadlock() const;

    bool
    busesLimited() const
    {
        return platform_.buses > 0;
    }
    bool
    outLimited() const
    {
        return platform_.outLinksPerNode > 0;
    }
    bool
    inLimited() const
    {
        return platform_.inLinksPerNode > 0;
    }

    std::uint32_t
    nodeOf(Rank r) const
    {
        return nodeOf_[static_cast<std::size_t>(r)];
    }

    /**
     * Burst instructions -> time, identical arithmetic to
     * PlatformConfig::burstDuration but with the effective MIPS rate
     * resolved once per replay instead of per record, and the last
     * conversion memoized (traces repeat a handful of burst sizes).
     */
    SimTime
    burstTime(Instr instructions)
    {
        if (instructions == lastBurstInstr_)
            return lastBurstDur_;
        const double ns =
            static_cast<double>(instructions) * 1e3 / mips_;
        lastBurstInstr_ = instructions;
        lastBurstDur_ = SimTime::fromNs(
            static_cast<std::int64_t>(std::llround(ns)));
        return lastBurstDur_;
    }

    /**
     * Same formula as PlatformConfig::serializationDelay, inlined
     * and memoized per link class (message sizes repeat heavily).
     */
    SimTime
    serializationTime(Bytes bytes, bool local)
    {
        const int cls = local ? 1 : 0;
        if (bytes == lastSerBytes_[cls])
            return lastSerDelay_[cls];
        const double mbps = local ? platform_.localBandwidthMBps
                                  : platform_.bandwidthMBps;
        const double ns = static_cast<double>(bytes) * 1e3 / mbps;
        lastSerBytes_[cls] = bytes;
        lastSerDelay_[cls] = SimTime::fromNs(
            static_cast<std::int64_t>(std::llround(ns)));
        return lastSerDelay_[cls];
    }

    /** Valid during run(); the job's trace set. */
    const trace::TraceSet *traces_ = nullptr;
    PlatformConfig platform_;
    bool capture_ = false;

    /** Per-replay constants hoisted out of the hot loop. */
    double mips_ = 1.0;
    SimTime latencyLocal_;
    SimTime latencyRemote_;
    SimTime rendezvousOverhead_;

    /**
     * Memoized last conversions (pure functions of their inputs).
     * The zero "unset" keys are exact: zero instructions/bytes
     * genuinely convert to the default-constructed zero SimTime.
     */
    Instr lastBurstInstr_ = 0;
    SimTime lastBurstDur_;
    Bytes lastSerBytes_[2] = {0, 0};
    SimTime lastSerDelay_[2];

    DaryHeap<Event, 4, std::greater<Event>> events_;
    std::uint32_t nextSeq_ = 0;
    std::uint64_t processed_ = 0;

    std::vector<RankCtx> ranks_;
    /** Pre-computed node of each rank (avoids a division per use). */
    std::vector<std::uint32_t> nodeOf_;

    /** Transfer arena; indices are stable, growth is amortized. */
    std::vector<Transfer> transfers_;
    /** Timeline-only fields, parallel to transfers_ (capture only). */
    std::vector<TransferMeta> txMeta_;

    /** Pool backing the per-channel unmatched-receive lists. */
    std::vector<RecvPost> recvPool_;
    std::uint32_t recvPoolFree_ = npos32;

    /** Transfers queued for interconnect resources, FIFO. */
    std::uint32_t waitHead_ = npos32;
    std::uint32_t waitTail_ = npos32;
    /**
     * True while resources have been released since the last full
     * wait-queue scan — i.e. inside handleInjected's window between
     * freeing capacity and its rescan, where queued entries may have
     * become startable. Outside that window every queued entry is
     * provably stuck, so makeEligible may test only its own
     * transfer without breaking FIFO arbitration.
     */
    bool resourcesFreed_ = false;

    /** (src, dst, tag) -> unmatched send/receive FIFOs. */
    FlatMap<ChannelKey, ChannelQueue> channels_;

    std::vector<CollBarrier> barriers_;

    int busFree_ = 0;
    std::vector<int> outFree_;
    std::vector<int> inFree_;

    int doneRanks_ = 0;
    Timeline timeline_;
};

void
Engine::schedule(SimTime t, EventKind kind, std::uint32_t target)
{
    ovlAssert(target <= Event::targetMask,
              "event target overflows the packed representation");
    events_.push(Event{
        t, nextSeq_++,
        (static_cast<std::uint32_t>(kind) << Event::kindShift) |
            target});
}

void
Engine::countEvent()
{
    constexpr std::uint64_t eventLimit = 2'000'000'000ULL;
    ++processed_;
    // Check the runaway guard only every 2^20 events; the limit is
    // a safety net, not an exact budget, and this keeps the hot
    // loop's per-event work to a single increment.
    if ((processed_ & ((1u << 20) - 1)) == 0 &&
        processed_ > eventLimit) {
        panic("event limit exceeded; runaway simulation");
    }
}

/**
 * Return every container to its empty state while keeping its
 * allocation, so a session's next replay starts from warmed-up
 * arenas. Must leave the engine indistinguishable (results-wise)
 * from a freshly constructed one; the session-reuse determinism
 * tests guard this.
 */
void
Engine::reset(int nranks)
{
    events_.clear();
    nextSeq_ = 0;
    processed_ = 0;
    ranks_.resize(static_cast<std::size_t>(nranks));
    for (auto &ctx : ranks_) {
        ctx.records = nullptr;
        ctx.pc = 0;
        ctx.now = SimTime::zero();
        ctx.blocked = false;
        ctx.done = false;
        ctx.blockState = RankState::idle;
        ctx.blockStart = SimTime::zero();
        ctx.reqSlots.clear();
        ctx.reqFreeHead = npos32;
        ctx.liveReqs = 0;
        ctx.awaitingCount = 0;
        ctx.blockingRecvDone = false;
        ctx.awaitingBlockingRecv = false;
        ctx.reqIndex.clear();
        ctx.collSeq = 0;
        ctx.result = RankResult{};
    }
    transfers_.clear();
    txMeta_.clear();
    recvPool_.clear();
    recvPoolFree_ = npos32;
    waitHead_ = npos32;
    waitTail_ = npos32;
    resourcesFreed_ = false;
    channels_.clear();
    barriers_.clear();
    doneRanks_ = 0;
    lastBurstInstr_ = 0;
    lastBurstDur_ = SimTime::zero();
    lastSerBytes_[0] = lastSerBytes_[1] = 0;
    lastSerDelay_[0] = lastSerDelay_[1] = SimTime::zero();
    timeline_ = Timeline();
}

SimResult
Engine::run(const trace::TraceSet &traces,
            const PlatformConfig &platform)
{
    traces_ = &traces;
    platform_ = platform;
    // Validate before anything divides by cpusPerNode.
    platform_.validate();
    const int nranks = traces.ranks();
    reset(nranks);
    const int nodes =
        (nranks + platform_.cpusPerNode - 1) / platform_.cpusPerNode;
    nodeOf_.resize(static_cast<std::size_t>(nranks));
    for (Rank r = 0; r < nranks; ++r) {
        nodeOf_[static_cast<std::size_t>(r)] =
            static_cast<std::uint32_t>(r / platform_.cpusPerNode);
    }
    busFree_ = platform_.buses;
    outFree_.assign(static_cast<std::size_t>(nodes),
                    platform_.outLinksPerNode);
    inFree_.assign(static_cast<std::size_t>(nodes),
                   platform_.inLinksPerNode);
    capture_ = platform_.captureTimeline;
    if (capture_)
        timeline_ = Timeline(nranks);

    mips_ = platform_.effectiveMips(traces_->mips());
    ovlAssert(mips_ > 0.0, "platform MIPS rate must be positive");
    latencyLocal_ = platform_.flightLatency(true);
    latencyRemote_ = platform_.flightLatency(false);
    rendezvousOverhead_ =
        SimTime::fromUs(platform_.rendezvousOverheadUs);

    transfers_.reserve(256);
    events_.reserve(static_cast<std::size_t>(nranks) * 4 + 256);
    // Scale the channel table with the trace so big replays do not
    // pay rehash churn; totalRecords() is O(ranks).
    std::size_t chan_guess = traces_->totalRecords() / 8;
    if (chan_guess < 256)
        chan_guess = 256;
    if (chan_guess > (1u << 16))
        chan_guess = 1u << 16;
    channels_.reserve(chan_guess);

    for (Rank r = 0; r < nranks; ++r) {
        auto &ctx = ranks_[static_cast<std::size_t>(r)];
        ctx.rank = r;
        ctx.records = &traces_->rankTrace(r).records();
        ctx.result.rank = r;
        schedule(SimTime::zero(), EventKind::rankResume,
                 static_cast<std::uint32_t>(r));
    }

    while (!events_.empty()) {
        const Event ev = events_.top();
        events_.pop();
        countEvent();

        switch (ev.kind()) {
          case EventKind::rankResume:
            wakeRank(static_cast<Rank>(ev.target()), ev.time);
            break;
          case EventKind::transferInjected:
            handleInjected(ev.target(), ev.time);
            break;
          case EventKind::transferArrived:
            handleArrived(ev.target(), ev.time);
            break;
        }
    }

    if (doneRanks_ < nranks)
        reportDeadlock();

    SimResult result;
    result.perRank.reserve(ranks_.size());
    for (auto &ctx : ranks_) {
        ctx.result.endTime = ctx.now;
        if (ctx.result.endTime > result.totalTime)
            result.totalTime = ctx.result.endTime;
        result.perRank.push_back(ctx.result);
    }
    result.eventsProcessed = processed_;
    result.transfers = transfers_.size();
    result.timeline = std::move(timeline_);
    return result;
}

void
Engine::wakeRank(Rank r, SimTime t)
{
    auto &ctx = ranks_[static_cast<std::size_t>(r)];
    if (ctx.done)
        return;
    if (ctx.blocked) {
        const SimTime blocked_for = t - ctx.blockStart;
        switch (ctx.blockState) {
          case RankState::sendBlocked:
            ctx.result.sendBlockedTime += blocked_for;
            break;
          case RankState::recvBlocked:
            ctx.result.recvBlockedTime += blocked_for;
            break;
          case RankState::waitBlocked:
            ctx.result.waitBlockedTime += blocked_for;
            break;
          case RankState::collective:
            ctx.result.collectiveTime += blocked_for;
            break;
          default:
            break;
        }
        if (capture_) {
            timeline_.addInterval(r, ctx.blockStart, t,
                                  ctx.blockState);
        }
        ctx.blocked = false;
    }
    if (t > ctx.now)
        ctx.now = t;
    runRank(ctx);
}

void
Engine::blockRank(RankCtx &ctx, RankState state)
{
    ctx.blocked = true;
    ctx.blockState = state;
    ctx.blockStart = ctx.now;
}

std::uint32_t
Engine::allocRequest(RankCtx &ctx, RequestId external)
{
    std::uint32_t slot;
    if (ctx.reqFreeHead != npos32) {
        slot = ctx.reqFreeHead;
        ctx.reqFreeHead = ctx.reqSlots[slot].nextFree;
    } else {
        slot = static_cast<std::uint32_t>(ctx.reqSlots.size());
        ctx.reqSlots.emplace_back();
    }
    ReqSlot &s = ctx.reqSlots[slot];
    s.externalId = external;
    s.nextFree = npos32;
    s.live = true;
    s.done = false;
    s.awaited = false;
    ++ctx.liveReqs;
    return slot;
}

void
Engine::retireRequest(RankCtx &ctx, std::uint32_t slot)
{
    ReqSlot &s = ctx.reqSlots[slot];
    ovlAssert(s.live, "retiring dead request slot");
    s.live = false;
    s.awaited = false;
    ++s.gen;
    if (s.externalId != 0)
        ctx.reqIndex.erase(s.externalId);
    s.nextFree = ctx.reqFreeHead;
    ctx.reqFreeHead = slot;
    --ctx.liveReqs;
}

ReqHandle
Engine::handleOf(const RankCtx &ctx, std::uint32_t slot) const
{
    return ReqHandle{slot, ctx.reqSlots[slot].gen};
}

void
Engine::runRank(RankCtx &ctx)
{
    const auto &records = *ctx.records;
    while (ctx.pc < records.size()) {
        const Record &rec = records[ctx.pc];

        // Dispatch on the variant index directly; the alternatives
        // are listed in Record declaration order.
        switch (rec.index()) {
          case 0: { // CpuBurst
            const auto *burst = std::get_if<CpuBurst>(&rec);
            const SimTime dur = burstTime(burst->instructions);
            ++ctx.pc;
            if (dur.ns() == 0)
                continue;
            ctx.result.computeTime += dur;
            if (capture_) {
                timeline_.addInterval(ctx.rank, ctx.now,
                                      ctx.now + dur,
                                      RankState::compute);
            }
            ctx.now += dur;
            // Coalesced self-wakeup: when no other event precedes
            // the burst's end, the rank would be resumed next anyway,
            // so keep running it inline instead of round-tripping a
            // rankResume through the heap. The event still counts as
            // processed so throughput metrics stay comparable.
            if (events_.empty() || events_.top().time > ctx.now) {
                countEvent();
                continue;
            }
            schedule(ctx.now, EventKind::rankResume,
                     static_cast<std::uint32_t>(ctx.rank));
            return;
          }

          case 1: { // SendRec
            const auto *s = std::get_if<SendRec>(&rec);
            ++ctx.pc;
            const std::uint32_t idx =
                postSend(ctx, s->dst, s->tag, s->bytes, s->message,
                         true, ReqHandle{});
            Transfer &t = transfers_[idx];
            if (!t.has(tfEager)) {
                // Rendezvous blocking send: stay blocked until the
                // payload has fully left this node.
                t.set(tfSenderBlocking);
                blockRank(ctx, RankState::sendBlocked);
                return;
            }
            continue;
          }

          case 2: { // ISendRec
            const auto *is_ = std::get_if<ISendRec>(&rec);
            ++ctx.pc;
            ovlAssert(is_->request != 0 &&
                          is_->request < externalReqLimit,
                      "isend request id out of range");
            const std::uint32_t slot =
                allocRequest(ctx, is_->request);
            ctx.reqIndex.insertOrAssign(is_->request, slot);
            const ReqHandle handle = handleOf(ctx, slot);
            const std::uint32_t idx =
                postSend(ctx, is_->dst, is_->tag, is_->bytes,
                         is_->message, false, handle);
            Transfer &t = transfers_[idx];
            if (t.has(tfEager)) {
                // Buffered: the request completes at the call.
                t.sendReq = ReqHandle{};
                completeRequest(ctx.rank, handle, ctx.now);
            }
            continue;
          }

          case 3: { // RecvRec
            const auto *r = std::get_if<RecvRec>(&rec);
            ++ctx.pc;
            ctx.blockingRecvDone = false;
            postRecv(ctx, r->src, r->tag, r->bytes, r->message,
                     ReqHandle{blockingRecvSlot, 0});
            if (ctx.blockingRecvDone)
                continue;
            ctx.awaitingBlockingRecv = true;
            blockRank(ctx, RankState::recvBlocked);
            return;
          }

          case 4: { // IRecvRec
            const auto *ir = std::get_if<IRecvRec>(&rec);
            ++ctx.pc;
            ovlAssert(ir->request != 0 &&
                          ir->request < externalReqLimit,
                      "irecv request id out of range");
            const std::uint32_t slot =
                allocRequest(ctx, ir->request);
            ctx.reqIndex.insertOrAssign(ir->request, slot);
            postRecv(ctx, ir->src, ir->tag, ir->bytes, ir->message,
                     handleOf(ctx, slot));
            continue;
          }

          case 5: { // WaitRec
            const auto *w = std::get_if<WaitRec>(&rec);
            const std::uint32_t *slotp =
                ctx.reqIndex.find(w->request);
            if (slotp == nullptr) {
                panic("rank ", ctx.rank,
                      ": wait on unknown request ", w->request);
            }
            const std::uint32_t slot = *slotp;
            ++ctx.pc;
            ReqSlot &state = ctx.reqSlots[slot];
            if (state.done) {
                retireRequest(ctx, slot);
                continue;
            }
            state.awaited = true;
            ctx.awaitingCount = 1;
            blockRank(ctx, RankState::waitBlocked);
            return;
          }

          case 6: { // WaitAllRec
            ++ctx.pc;
            std::uint32_t awaiting = 0;
            if (ctx.liveReqs > 0) {
                const std::uint32_t nslots = static_cast<
                    std::uint32_t>(ctx.reqSlots.size());
                for (std::uint32_t slot = 0; slot < nslots;
                     ++slot) {
                    ReqSlot &state = ctx.reqSlots[slot];
                    if (!state.live)
                        continue;
                    if (state.done) {
                        retireRequest(ctx, slot);
                    } else {
                        state.awaited = true;
                        ++awaiting;
                    }
                }
            }
            if (awaiting == 0)
                continue;
            ctx.awaitingCount = awaiting;
            blockRank(ctx, RankState::waitBlocked);
            return;
          }

          case 7: { // CollectiveRec
            const auto *g = std::get_if<CollectiveRec>(&rec);
            ++ctx.pc;
            handleCollective(ctx, *g);
            return;
          }

          default:
            panic("rank ", ctx.rank, ": unhandled record kind");
        }
    }

    if (!ctx.done) {
        ctx.done = true;
        ++doneRanks_;
    }
}

void
Engine::completeRequest(Rank r, ReqHandle req, SimTime t)
{
    auto &ctx = ranks_[static_cast<std::size_t>(r)];
    if (req.blockingRecv()) {
        // Blocking receives bypass the request table: either the
        // rank is blocked on this receive (wake it) or the receive
        // completed during the posting call itself.
        if (ctx.blocked && ctx.awaitingBlockingRecv) {
            ctx.awaitingBlockingRecv = false;
            wakeRank(r, t);
        } else {
            ctx.blockingRecvDone = true;
        }
        return;
    }
    ovlAssert(req.valid() && req.slot < ctx.reqSlots.size(),
              "rank ", r, ": completing invalid request handle");
    ReqSlot &s = ctx.reqSlots[req.slot];
    ovlAssert(s.live && s.gen == req.gen,
              "rank ", r, ": completing stale request handle");
    s.done = true;

    if (ctx.blocked && s.awaited) {
        // The Wait/Recv record that awaited this request has already
        // been consumed, so the slot can be retired here.
        retireRequest(ctx, req.slot);
        if (--ctx.awaitingCount == 0)
            wakeRank(r, t);
    }
}

void
Engine::completeTransferRecv(std::uint32_t idx, SimTime done)
{
    Transfer &t = transfers_[idx];
    if (capture_)
        recordCommEvent(idx, done);
    ++ranks_[static_cast<std::size_t>(t.dst)]
          .result.messagesReceived;
    const Rank dst = t.dst;
    const ReqHandle req = t.recvReq;
    t.recvReq = ReqHandle{};
    // completeRequest can re-enter the engine and grow the transfer
    // arena; everything needed from `t` was read above.
    completeRequest(dst, req, done);
}

std::uint32_t
Engine::postSend(RankCtx &ctx, Rank dst, Tag tag, Bytes bytes,
                 MessageId msg, bool blocking, ReqHandle send_req)
{
    if (dst == anyRank || tag == anyTag) {
        fatal("rank ", ctx.rank, ": send with the ",
              dst == anyRank ? "anyRank" : "anyTag",
              " wildcard sentinel; wildcard matching is "
              "unsupported by the replay engine (run "
              "trace::validateTraceSet to locate the records)");
    }
    ovlAssert(dst >= 0 && dst < traces_->ranks(),
              "send to invalid rank ", dst);
    const auto idx =
        static_cast<std::uint32_t>(transfers_.size());
    Transfer &t = transfers_.emplace_back();
    t.bytes = bytes;
    t.src = ctx.rank;
    t.dst = dst;
    if (nodeOf(ctx.rank) == nodeOf(dst))
        t.set(tfLocal);
    const bool small = bytes <= platform_.eagerThreshold;
    const bool forced = !blocking && platform_.forceEagerIsend;
    if (small || forced)
        t.set(tfEager);
    t.sendReq = send_req;
    if (capture_) {
        TransferMeta &meta = txMeta_.emplace_back();
        meta.message = msg;
        meta.sendPost = ctx.now;
        meta.tag = tag;
    }

    ++ctx.result.messagesSent;
    ctx.result.bytesSent += bytes;

    // Match against an already-posted receive, FIFO per channel.
    ChannelQueue &q = channels_[trace::channelKey(ctx.rank, dst,
                                                  tag)];
    if (q.recvHead != npos32) {
        const std::uint32_t post_idx = q.recvHead;
        q.recvHead = recvPool_[post_idx].next;
        if (q.recvHead == npos32)
            q.recvTail = npos32;
        const RecvPost post = recvPool_[post_idx];
        recvPool_[post_idx].next = recvPoolFree_;
        recvPoolFree_ = post_idx;
        matchTransfer(idx, post.req, post.postTime);
    } else {
        if (q.sendTail == npos32)
            q.sendHead = idx;
        else
            transfers_[q.sendTail].chanNext = idx;
        q.sendTail = idx;
    }

    Transfer &stored = transfers_[idx];
    if (stored.has(tfEager) || stored.has(tfRecvPosted))
        makeEligible(idx, ctx.now);
    return idx;
}

void
Engine::postRecv(RankCtx &ctx, Rank src, Tag tag, Bytes bytes,
                 MessageId msg, ReqHandle req)
{
    (void)msg;
    if (src == anyRank || tag == anyTag) {
        fatal("rank ", ctx.rank, ": receive with the ",
              src == anyRank ? "anyRank" : "anyTag",
              " wildcard sentinel; wildcard matching is "
              "unsupported by the replay engine (run "
              "trace::validateTraceSet to locate the records)");
    }
    ovlAssert(src >= 0 && src < traces_->ranks(),
              "recv from invalid rank ", src);
    ChannelQueue &q = channels_[trace::channelKey(src, ctx.rank,
                                                  tag)];
    if (q.sendHead != npos32) {
        const std::uint32_t idx = q.sendHead;
        q.sendHead = transfers_[idx].chanNext;
        if (q.sendHead == npos32)
            q.sendTail = npos32;
        Transfer &t = transfers_[idx];
        t.chanNext = npos32;
        if (t.bytes != bytes) {
            fatal("rank ", ctx.rank, ": recv of ", bytes,
                  " bytes matches send of ", t.bytes,
                  " bytes on channel ", src, "->", ctx.rank,
                  " tag ", tag);
        }
        matchTransfer(idx, req, ctx.now);
    } else {
        std::uint32_t post_idx;
        if (recvPoolFree_ != npos32) {
            post_idx = recvPoolFree_;
            recvPoolFree_ = recvPool_[post_idx].next;
        } else {
            post_idx =
                static_cast<std::uint32_t>(recvPool_.size());
            recvPool_.emplace_back();
        }
        recvPool_[post_idx] = RecvPost{req, ctx.now, npos32};
        if (q.recvTail == npos32)
            q.recvHead = post_idx;
        else
            recvPool_[q.recvTail].next = post_idx;
        q.recvTail = post_idx;
    }
}

void
Engine::matchTransfer(std::uint32_t idx, ReqHandle recv_req,
                      SimTime post_time)
{
    Transfer &t = transfers_[idx];
    ovlAssert(!t.has(tfRecvPosted), "transfer matched twice");
    t.set(tfRecvPosted);
    t.recvPostTime = post_time;
    t.recvReq = recv_req;

    if (t.has(tfArrived)) {
        const SimTime done =
            t.arriveTime > post_time ? t.arriveTime : post_time;
        completeTransferRecv(idx, done);
        return;
    }
    if (!t.has(tfEager) && !t.has(tfQueued) && !t.has(tfStarted)) {
        // Rendezvous transfer becomes eligible at the match.
        makeEligible(idx, post_time);
    }
}

/** Claim bus/out/in capacity for a remote transfer if all are free. */
inline bool
Engine::tryAcquireResources(const Transfer &transfer)
{
    const std::size_t src_node = nodeOf(transfer.src);
    const std::size_t dst_node = nodeOf(transfer.dst);
    const bool bus_ok = !busesLimited() || busFree_ > 0;
    const bool out_ok = !outLimited() || outFree_[src_node] > 0;
    const bool in_ok = !inLimited() || inFree_[dst_node] > 0;
    if (!(bus_ok && out_ok && in_ok))
        return false;
    if (busesLimited())
        --busFree_;
    if (outLimited())
        --outFree_[src_node];
    if (inLimited())
        --inFree_[dst_node];
    return true;
}

void
Engine::makeEligible(std::uint32_t idx, SimTime t)
{
    Transfer &transfer = transfers_[idx];
    if (transfer.has(tfQueued) || transfer.has(tfStarted))
        return;
    transfer.set(tfQueued);
    if (transfer.has(tfLocal)) {
        // Intra-node transfers bypass the interconnect resources.
        startTransfer(idx, t);
        return;
    }
    // Fast path: when no resources were freed since the last full
    // scan, every queued transfer is still stuck, so enqueue-then-
    // scan reduces to checking this transfer's resources directly
    // (an acquire only shrinks capacity and cannot unstick others).
    // Inside the release window (resourcesFreed_) older queued
    // entries may be startable and FIFO demands they go first, so
    // the full scan must run.
    if (!resourcesFreed_ && tryAcquireResources(transfer)) {
        startTransfer(idx, t);
        return;
    }
    if (waitTail_ == npos32)
        waitHead_ = idx;
    else
        transfers_[waitTail_].waitNext = idx;
    waitTail_ = idx;
    if (resourcesFreed_)
        tryStartQueued(t);
}

void
Engine::tryStartQueued(SimTime t)
{
    std::uint32_t prev = npos32;
    std::uint32_t idx = waitHead_;
    while (idx != npos32) {
        Transfer &transfer = transfers_[idx];
        const std::uint32_t nxt = transfer.waitNext;
        if (tryAcquireResources(transfer)) {
            // Unlink from the wait queue.
            if (prev == npos32)
                waitHead_ = nxt;
            else
                transfers_[prev].waitNext = nxt;
            if (waitTail_ == idx)
                waitTail_ = prev;
            transfer.waitNext = npos32;
            startTransfer(idx, t);
        } else {
            prev = idx;
        }
        idx = nxt;
    }
    // Every remaining entry was just verified stuck against the
    // current resource state.
    resourcesFreed_ = false;
}

void
Engine::startTransfer(std::uint32_t idx, SimTime t)
{
    Transfer &transfer = transfers_[idx];
    transfer.set(tfStarted);
    SimTime begin = t;
    if (!transfer.has(tfEager)) {
        begin += rendezvousOverhead_;
    }
    if (capture_)
        txMeta_[idx].start = begin;
    const bool local = transfer.has(tfLocal);
    const SimTime ser = serializationTime(transfer.bytes, local);
    const SimTime lat = local ? latencyLocal_ : latencyRemote_;
    transfer.arriveTime = begin + ser + lat;
    schedule(begin + ser, EventKind::transferInjected, idx);
    schedule(transfer.arriveTime, EventKind::transferArrived, idx);
}

void
Engine::handleInjected(std::uint32_t idx, SimTime t)
{
    Transfer &transfer = transfers_[idx];
    // wakeRank/completeRequest below can grow the transfer arena
    // (re-entering postSend), so read everything needed first.
    const bool local = transfer.has(tfLocal);
    if (!local) {
        const std::size_t src_node = nodeOf(transfer.src);
        const std::size_t dst_node = nodeOf(transfer.dst);
        if (busesLimited())
            ++busFree_;
        if (outLimited())
            ++outFree_[src_node];
        if (inLimited())
            ++inFree_[dst_node];
        // Queued transfers may now be startable; until the rescan
        // below runs, makeEligible must not bypass the FIFO scan.
        resourcesFreed_ = true;
    }

    if (transfer.has(tfSenderBlocking)) {
        const Rank src = transfer.src;
        transfer.clear(tfSenderBlocking);
        wakeRank(src, t);
    } else if (!transfer.has(tfEager) && transfer.sendReq.valid()) {
        const Rank src = transfer.src;
        const ReqHandle req = transfer.sendReq;
        transfer.sendReq = ReqHandle{};
        completeRequest(src, req, t);
    }

    if (!local) {
        if (waitHead_ != npos32)
            tryStartQueued(t); // also clears resourcesFreed_
        else
            resourcesFreed_ = false; // nothing was waiting
    }
}

void
Engine::handleArrived(std::uint32_t idx, SimTime t)
{
    Transfer &transfer = transfers_[idx];
    transfer.set(tfArrived);
    transfer.arriveTime = t;
    if (transfer.has(tfRecvPosted) && transfer.recvReq.valid()) {
        const SimTime done = t > transfer.recvPostTime
                                 ? t
                                 : transfer.recvPostTime;
        completeTransferRecv(idx, done);
    }
}

void
Engine::handleCollective(RankCtx &ctx, const CollectiveRec &rec)
{
    const std::size_t index = ctx.collSeq++;
    if (index >= barriers_.size()) {
        CollBarrier barrier;
        barrier.op = rec.op;
        barrier.sendBytes = rec.sendBytes;
        barrier.recvBytes = rec.recvBytes;
        barriers_.push_back(barrier);
    }
    CollBarrier &barrier = barriers_[index];
    if (barrier.op != rec.op) {
        fatal("rank ", ctx.rank, ": collective #", index, " is ",
              trace::collOpName(rec.op), " but other ranks ran ",
              trace::collOpName(barrier.op));
    }
    barrier.sendBytes = std::max(barrier.sendBytes, rec.sendBytes);
    barrier.recvBytes = std::max(barrier.recvBytes, rec.recvBytes);
    ++barrier.arrived;
    if (ctx.now > barrier.latest)
        barrier.latest = ctx.now;

    blockRank(ctx, RankState::collective);

    if (barrier.arrived == traces_->ranks()) {
        barrier.released = true;
        const SimTime release = barrier.latest +
            collectiveCost(platform_, barrier.op, traces_->ranks(),
                           barrier.sendBytes, barrier.recvBytes);
        for (Rank r = 0; r < traces_->ranks(); ++r) {
            schedule(release, EventKind::rankResume,
                     static_cast<std::uint32_t>(r));
        }
    }
}

void
Engine::recordCommEvent(std::uint32_t idx, SimTime recv_complete)
{
    const Transfer &t = transfers_[idx];
    const TransferMeta &meta = txMeta_[idx];
    CommEvent event;
    event.message = meta.message;
    event.src = t.src;
    event.dst = t.dst;
    event.tag = meta.tag;
    event.bytes = t.bytes;
    event.sendPost = meta.sendPost;
    event.transferStart = meta.start;
    event.arrival = t.arriveTime;
    event.recvComplete = recv_complete;
    timeline_.addComm(event);
}

void
Engine::reportDeadlock() const
{
    std::string detail;
    for (const auto &ctx : ranks_) {
        if (ctx.done)
            continue;
        detail += strformat(
            "\n  rank %d: blocked=%s state=%s pc=%zu/%zu "
            "awaiting=%u",
            ctx.rank, ctx.blocked ? "yes" : "no",
            rankStateName(ctx.blockState), ctx.pc,
            ctx.records->size(), ctx.awaitingCount);
    }
    fatal("replay deadlocked with ", traces_->ranks() - doneRanks_,
          " rank(s) unfinished:", detail);
}

} // namespace

struct ReplaySession::Impl
{
    Engine engine;
};

ReplaySession::ReplaySession() : impl_(std::make_unique<Impl>()) {}
ReplaySession::~ReplaySession() = default;
ReplaySession::ReplaySession(ReplaySession &&) noexcept = default;
ReplaySession &
ReplaySession::operator=(ReplaySession &&) noexcept = default;

SimResult
ReplaySession::run(const trace::TraceSet &traces,
                   const PlatformConfig &platform)
{
    return impl_->engine.run(traces, platform);
}

SimResult
simulate(const trace::TraceSet &traces,
         const PlatformConfig &platform)
{
    Engine engine;
    return engine.run(traces, platform);
}

std::vector<SimResult>
simulateBatch(std::span<const SimJob> jobs, int threads)
{
    std::vector<SimResult> results(jobs.size());
    // Never spawn more lanes than jobs: small batches (2-3 replays)
    // are common in driver loops, where a full hardware-sized pool
    // would be pure spawn/join overhead.
    int lanes = ThreadPool::resolveThreads(threads);
    if (static_cast<std::size_t>(lanes) > jobs.size())
        lanes = jobs.empty() ? 1
                             : static_cast<int>(jobs.size());
    ThreadPool pool(lanes);
    // One session per lane: lanes never share engine state, and job
    // i always lands in slot i, so the output is independent of how
    // tasks were scheduled over lanes.
    std::vector<ReplaySession> sessions(
        static_cast<std::size_t>(pool.size()));
    pool.parallelFor(jobs.size(), [&](std::size_t i, int lane) {
        const SimJob &job = jobs[i];
        ovlAssert(job.traces != nullptr,
                  "simulateBatch: job ", i, " has no trace set");
        results[i] = sessions[static_cast<std::size_t>(lane)].run(
            *job.traces, job.platform);
    });
    return results;
}

} // namespace ovlsim::sim
