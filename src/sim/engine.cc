#include "engine.hh"

#include <deque>
#include <map>
#include <queue>
#include <set>
#include <tuple>
#include <vector>

#include "util/logging.hh"
#include "util/strings.hh"

namespace ovlsim::sim {

namespace {

using trace::CollectiveRec;
using trace::CpuBurst;
using trace::IRecvRec;
using trace::ISendRec;
using trace::MessageId;
using trace::Record;
using trace::RecvRec;
using trace::RequestId;
using trace::SendRec;
using trace::WaitAllRec;
using trace::WaitRec;

/** Internal request ids for blocking operations live above this. */
constexpr RequestId internalReqBase = 1ULL << 62;

enum class EventKind : std::uint8_t {
    rankResume,
    transferInjected,
    transferArrived,
};

struct Event
{
    SimTime time;
    std::uint64_t seq;
    EventKind kind;
    std::uint32_t target;

    bool
    operator>(const Event &other) const
    {
        if (time != other.time)
            return time > other.time;
        return seq > other.seq;
    }
};

struct Transfer
{
    MessageId message = trace::invalidMessageId;
    Rank src = 0;
    Rank dst = 0;
    Tag tag = 0;
    Bytes bytes = 0;
    bool local = false;
    bool eager = false;
    bool senderBlocking = false;
    RequestId sendReq = 0;
    RequestId recvReq = 0;
    bool sendPosted = false;
    bool recvPosted = false;
    bool queued = false;
    bool started = false;
    bool arrived = false;
    SimTime sendPostTime;
    SimTime recvPostTime;
    SimTime startTime;
    SimTime arriveTime;
};

struct ReqState
{
    bool done = false;
    SimTime doneTime;
};

struct RecvPost
{
    RequestId request = 0;
    SimTime postTime;
};

struct RankCtx
{
    Rank rank = 0;
    const std::vector<Record> *records = nullptr;
    std::size_t pc = 0;
    SimTime now;
    bool blocked = false;
    bool done = false;
    RankState blockState = RankState::idle;
    SimTime blockStart;
    std::set<RequestId> awaiting;
    std::map<RequestId, ReqState> requests;
    RequestId nextInternalReq = internalReqBase;
    std::size_t collSeq = 0;

    RankResult result;
};

struct CollBarrier
{
    trace::CollOp op = trace::CollOp::barrier;
    Bytes sendBytes = 0;
    Bytes recvBytes = 0;
    int arrived = 0;
    SimTime latest;
    bool released = false;
};

using Channel = std::tuple<Rank, Rank, Tag>;

class Engine
{
  public:
    Engine(const trace::TraceSet &traces,
           const PlatformConfig &platform)
        : traces_(traces), platform_(platform)
    {
        platform_.validate();
    }

    SimResult run();

  private:
    void schedule(SimTime t, EventKind kind, std::uint32_t target);
    void runRank(RankCtx &ctx);
    void wakeRank(Rank r, SimTime t);
    void blockRank(RankCtx &ctx, RankState state);
    void completeRequest(Rank r, RequestId req, SimTime t);
    void completeTransferRecv(Transfer &t, SimTime done);
    std::size_t postSend(RankCtx &ctx, Rank dst, Tag tag,
                         Bytes bytes, MessageId msg, bool blocking,
                         RequestId send_req);
    void postRecv(RankCtx &ctx, Rank src, Tag tag, Bytes bytes,
                  MessageId msg, RequestId req);
    void matchTransfer(std::size_t idx, RequestId recv_req,
                       SimTime post_time);
    void makeEligible(std::size_t idx, SimTime t);
    void tryStartQueued(SimTime t);
    void startTransfer(std::size_t idx, SimTime t);
    void handleInjected(std::size_t idx, SimTime t);
    void handleArrived(std::size_t idx, SimTime t);
    void handleCollective(RankCtx &ctx, const CollectiveRec &rec);
    void recordCommEvent(const Transfer &t, SimTime recv_complete);
    [[noreturn]] void reportDeadlock() const;

    bool
    busesLimited() const
    {
        return platform_.buses > 0;
    }
    bool
    outLimited() const
    {
        return platform_.outLinksPerNode > 0;
    }
    bool
    inLimited() const
    {
        return platform_.inLinksPerNode > 0;
    }

    const trace::TraceSet &traces_;
    PlatformConfig platform_;

    std::priority_queue<Event, std::vector<Event>,
                        std::greater<Event>> events_;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t processed_ = 0;

    std::vector<RankCtx> ranks_;
    std::vector<Transfer> transfers_;
    std::deque<std::size_t> waitQueue_;

    std::map<Channel, std::deque<std::size_t>> unmatchedSends_;
    std::map<Channel, std::deque<RecvPost>> unmatchedRecvs_;

    std::vector<CollBarrier> barriers_;

    int busFree_ = 0;
    std::vector<int> outFree_;
    std::vector<int> inFree_;

    int doneRanks_ = 0;
    Timeline timeline_;
};

void
Engine::schedule(SimTime t, EventKind kind, std::uint32_t target)
{
    events_.push(Event{t, nextSeq_++, kind, target});
}

SimResult
Engine::run()
{
    const int nranks = traces_.ranks();
    ranks_.resize(static_cast<std::size_t>(nranks));
    const int nodes =
        (nranks + platform_.cpusPerNode - 1) / platform_.cpusPerNode;
    busFree_ = platform_.buses;
    outFree_.assign(static_cast<std::size_t>(nodes),
                    platform_.outLinksPerNode);
    inFree_.assign(static_cast<std::size_t>(nodes),
                   platform_.inLinksPerNode);
    if (platform_.captureTimeline)
        timeline_ = Timeline(nranks);

    for (Rank r = 0; r < nranks; ++r) {
        auto &ctx = ranks_[static_cast<std::size_t>(r)];
        ctx.rank = r;
        ctx.records = &traces_.rankTrace(r).records();
        ctx.result.rank = r;
        schedule(SimTime::zero(), EventKind::rankResume,
                 static_cast<std::uint32_t>(r));
    }

    constexpr std::uint64_t eventLimit = 2'000'000'000ULL;
    while (!events_.empty()) {
        const Event ev = events_.top();
        events_.pop();
        ++processed_;
        if (processed_ > eventLimit)
            panic("event limit exceeded; runaway simulation");

        switch (ev.kind) {
          case EventKind::rankResume:
            wakeRank(static_cast<Rank>(ev.target), ev.time);
            break;
          case EventKind::transferInjected:
            handleInjected(ev.target, ev.time);
            break;
          case EventKind::transferArrived:
            handleArrived(ev.target, ev.time);
            break;
        }
    }

    if (doneRanks_ < nranks)
        reportDeadlock();

    SimResult result;
    result.perRank.reserve(ranks_.size());
    for (auto &ctx : ranks_) {
        ctx.result.endTime = ctx.now;
        if (ctx.result.endTime > result.totalTime)
            result.totalTime = ctx.result.endTime;
        result.perRank.push_back(ctx.result);
    }
    result.eventsProcessed = processed_;
    result.transfers = transfers_.size();
    result.timeline = std::move(timeline_);
    return result;
}

void
Engine::wakeRank(Rank r, SimTime t)
{
    auto &ctx = ranks_[static_cast<std::size_t>(r)];
    if (ctx.done)
        return;
    if (ctx.blocked) {
        const SimTime blocked_for = t - ctx.blockStart;
        switch (ctx.blockState) {
          case RankState::sendBlocked:
            ctx.result.sendBlockedTime += blocked_for;
            break;
          case RankState::recvBlocked:
            ctx.result.recvBlockedTime += blocked_for;
            break;
          case RankState::waitBlocked:
            ctx.result.waitBlockedTime += blocked_for;
            break;
          case RankState::collective:
            ctx.result.collectiveTime += blocked_for;
            break;
          default:
            break;
        }
        if (platform_.captureTimeline) {
            timeline_.addInterval(r, ctx.blockStart, t,
                                  ctx.blockState);
        }
        ctx.blocked = false;
    }
    if (t > ctx.now)
        ctx.now = t;
    runRank(ctx);
}

void
Engine::blockRank(RankCtx &ctx, RankState state)
{
    ctx.blocked = true;
    ctx.blockState = state;
    ctx.blockStart = ctx.now;
}

void
Engine::runRank(RankCtx &ctx)
{
    const auto &records = *ctx.records;
    while (ctx.pc < records.size()) {
        const Record &rec = records[ctx.pc];

        if (const auto *burst = std::get_if<CpuBurst>(&rec)) {
            const SimTime dur = platform_.burstDuration(
                burst->instructions, traces_.mips());
            ++ctx.pc;
            if (dur.ns() == 0)
                continue;
            ctx.result.computeTime += dur;
            if (platform_.captureTimeline) {
                timeline_.addInterval(ctx.rank, ctx.now,
                                      ctx.now + dur,
                                      RankState::compute);
            }
            ctx.now += dur;
            schedule(ctx.now, EventKind::rankResume,
                     static_cast<std::uint32_t>(ctx.rank));
            return;
        }

        if (const auto *s = std::get_if<SendRec>(&rec)) {
            ++ctx.pc;
            const std::size_t idx = postSend(
                ctx, s->dst, s->tag, s->bytes, s->message, true, 0);
            Transfer &t = transfers_[idx];
            if (!t.eager) {
                // Rendezvous blocking send: stay blocked until the
                // payload has fully left this node.
                t.senderBlocking = true;
                blockRank(ctx, RankState::sendBlocked);
                return;
            }
            continue;
        }

        if (const auto *is_ = std::get_if<ISendRec>(&rec)) {
            ++ctx.pc;
            ovlAssert(is_->request != 0 &&
                          is_->request < internalReqBase,
                      "isend request id out of range");
            ctx.requests[is_->request] = ReqState{};
            const std::size_t idx =
                postSend(ctx, is_->dst, is_->tag, is_->bytes,
                         is_->message, false, is_->request);
            Transfer &t = transfers_[idx];
            if (t.eager) {
                // Buffered: the request completes at the call.
                completeRequest(ctx.rank, is_->request, ctx.now);
            } else {
                t.sendReq = is_->request;
            }
            continue;
        }

        if (const auto *r = std::get_if<RecvRec>(&rec)) {
            ++ctx.pc;
            const RequestId req = ctx.nextInternalReq++;
            ctx.requests[req] = ReqState{};
            postRecv(ctx, r->src, r->tag, r->bytes, r->message, req);
            const auto &state = ctx.requests[req];
            if (state.done) {
                ctx.requests.erase(req);
                continue;
            }
            ctx.awaiting.insert(req);
            blockRank(ctx, RankState::recvBlocked);
            return;
        }

        if (const auto *ir = std::get_if<IRecvRec>(&rec)) {
            ++ctx.pc;
            ovlAssert(ir->request != 0 &&
                          ir->request < internalReqBase,
                      "irecv request id out of range");
            ctx.requests[ir->request] = ReqState{};
            postRecv(ctx, ir->src, ir->tag, ir->bytes, ir->message,
                     ir->request);
            continue;
        }

        if (const auto *w = std::get_if<WaitRec>(&rec)) {
            const auto it = ctx.requests.find(w->request);
            if (it == ctx.requests.end()) {
                panic("rank ", ctx.rank,
                      ": wait on unknown request ", w->request);
            }
            ++ctx.pc;
            if (it->second.done) {
                ctx.requests.erase(it);
                continue;
            }
            ctx.awaiting.insert(w->request);
            blockRank(ctx, RankState::waitBlocked);
            return;
        }

        if (std::holds_alternative<WaitAllRec>(rec)) {
            ++ctx.pc;
            for (auto it = ctx.requests.begin();
                 it != ctx.requests.end();) {
                if (it->second.done) {
                    it = ctx.requests.erase(it);
                } else {
                    ctx.awaiting.insert(it->first);
                    ++it;
                }
            }
            if (ctx.awaiting.empty())
                continue;
            blockRank(ctx, RankState::waitBlocked);
            return;
        }

        if (const auto *g = std::get_if<CollectiveRec>(&rec)) {
            ++ctx.pc;
            handleCollective(ctx, *g);
            return;
        }

        panic("rank ", ctx.rank, ": unhandled record kind");
    }

    if (!ctx.done) {
        ctx.done = true;
        ++doneRanks_;
    }
}

void
Engine::completeRequest(Rank r, RequestId req, SimTime t)
{
    auto &ctx = ranks_[static_cast<std::size_t>(r)];
    const auto it = ctx.requests.find(req);
    if (it == ctx.requests.end())
        panic("rank ", r, ": completing unknown request ", req);
    it->second.done = true;
    it->second.doneTime = t;

    if (ctx.blocked && ctx.awaiting.erase(req) > 0) {
        // The Wait/Recv record that awaited this request has already
        // been consumed, so the entry can be retired here.
        ctx.requests.erase(req);
        if (ctx.awaiting.empty())
            wakeRank(r, t);
    }
}

void
Engine::completeTransferRecv(Transfer &t, SimTime done)
{
    recordCommEvent(t, done);
    ++ranks_[static_cast<std::size_t>(t.dst)]
          .result.messagesReceived;
    const RequestId req = t.recvReq;
    t.recvReq = 0;
    completeRequest(t.dst, req, done);
}

std::size_t
Engine::postSend(RankCtx &ctx, Rank dst, Tag tag, Bytes bytes,
                 MessageId msg, bool blocking, RequestId send_req)
{
    ovlAssert(dst >= 0 && dst < traces_.ranks(),
              "send to invalid rank ", dst);
    Transfer t;
    t.message = msg;
    t.src = ctx.rank;
    t.dst = dst;
    t.tag = tag;
    t.bytes = bytes;
    t.local = platform_.nodeOf(ctx.rank) == platform_.nodeOf(dst);
    const bool small = bytes <= platform_.eagerThreshold;
    const bool forced = !blocking && platform_.forceEagerIsend;
    t.eager = small || forced;
    t.sendPosted = true;
    t.sendPostTime = ctx.now;
    t.sendReq = send_req;

    transfers_.push_back(t);
    const std::size_t idx = transfers_.size() - 1;

    ++ctx.result.messagesSent;
    ctx.result.bytesSent += bytes;

    // Match against an already-posted receive, FIFO per channel.
    const Channel channel{ctx.rank, dst, tag};
    auto rit = unmatchedRecvs_.find(channel);
    if (rit != unmatchedRecvs_.end() && !rit->second.empty()) {
        const RecvPost post = rit->second.front();
        rit->second.pop_front();
        matchTransfer(idx, post.request, post.postTime);
    } else {
        unmatchedSends_[channel].push_back(idx);
    }

    Transfer &stored = transfers_[idx];
    if (stored.eager ||
        (stored.sendPosted && stored.recvPosted)) {
        makeEligible(idx, ctx.now);
    }
    return idx;
}

void
Engine::postRecv(RankCtx &ctx, Rank src, Tag tag, Bytes bytes,
                 MessageId msg, RequestId req)
{
    (void)msg;
    ovlAssert(src >= 0 && src < traces_.ranks(),
              "recv from invalid rank ", src);
    const Channel channel{src, ctx.rank, tag};
    auto sit = unmatchedSends_.find(channel);
    if (sit != unmatchedSends_.end() && !sit->second.empty()) {
        const std::size_t idx = sit->second.front();
        sit->second.pop_front();
        const Transfer &t = transfers_[idx];
        if (t.bytes != bytes) {
            fatal("rank ", ctx.rank, ": recv of ", bytes,
                  " bytes matches send of ", t.bytes,
                  " bytes on channel ", src, "->", ctx.rank,
                  " tag ", tag);
        }
        matchTransfer(idx, req, ctx.now);
    } else {
        unmatchedRecvs_[channel].push_back(RecvPost{req, ctx.now});
    }
}

void
Engine::matchTransfer(std::size_t idx, RequestId recv_req,
                      SimTime post_time)
{
    Transfer &t = transfers_[idx];
    ovlAssert(!t.recvPosted, "transfer matched twice");
    t.recvPosted = true;
    t.recvPostTime = post_time;
    t.recvReq = recv_req;

    if (t.arrived) {
        const SimTime done =
            t.arriveTime > post_time ? t.arriveTime : post_time;
        completeTransferRecv(t, done);
        return;
    }
    if (!t.eager && !t.queued && !t.started) {
        // Rendezvous transfer becomes eligible at the match.
        makeEligible(idx, post_time);
    }
}

void
Engine::makeEligible(std::size_t idx, SimTime t)
{
    Transfer &transfer = transfers_[idx];
    if (transfer.queued || transfer.started)
        return;
    transfer.queued = true;
    if (transfer.local) {
        // Intra-node transfers bypass the interconnect resources.
        startTransfer(idx, t);
        return;
    }
    waitQueue_.push_back(idx);
    tryStartQueued(t);
}

void
Engine::tryStartQueued(SimTime t)
{
    for (auto it = waitQueue_.begin(); it != waitQueue_.end();) {
        const std::size_t idx = *it;
        Transfer &transfer = transfers_[idx];
        const auto src_node = static_cast<std::size_t>(
            platform_.nodeOf(transfer.src));
        const auto dst_node = static_cast<std::size_t>(
            platform_.nodeOf(transfer.dst));

        const bool bus_ok = !busesLimited() || busFree_ > 0;
        const bool out_ok = !outLimited() || outFree_[src_node] > 0;
        const bool in_ok = !inLimited() || inFree_[dst_node] > 0;

        if (bus_ok && out_ok && in_ok) {
            if (busesLimited())
                --busFree_;
            if (outLimited())
                --outFree_[src_node];
            if (inLimited())
                --inFree_[dst_node];
            it = waitQueue_.erase(it);
            startTransfer(idx, t);
        } else {
            ++it;
        }
    }
}

void
Engine::startTransfer(std::size_t idx, SimTime t)
{
    Transfer &transfer = transfers_[idx];
    transfer.started = true;
    SimTime begin = t;
    if (!transfer.eager) {
        begin += SimTime::fromUs(platform_.rendezvousOverheadUs);
    }
    transfer.startTime = begin;
    const SimTime ser =
        platform_.serializationDelay(transfer.bytes, transfer.local);
    const SimTime lat = platform_.flightLatency(transfer.local);
    transfer.arriveTime = begin + ser + lat;
    schedule(begin + ser, EventKind::transferInjected,
             static_cast<std::uint32_t>(idx));
    schedule(transfer.arriveTime, EventKind::transferArrived,
             static_cast<std::uint32_t>(idx));
}

void
Engine::handleInjected(std::size_t idx, SimTime t)
{
    Transfer &transfer = transfers_[idx];
    if (!transfer.local) {
        const auto src_node = static_cast<std::size_t>(
            platform_.nodeOf(transfer.src));
        const auto dst_node = static_cast<std::size_t>(
            platform_.nodeOf(transfer.dst));
        if (busesLimited())
            ++busFree_;
        if (outLimited())
            ++outFree_[src_node];
        if (inLimited())
            ++inFree_[dst_node];
    }

    if (transfer.senderBlocking) {
        transfer.senderBlocking = false;
        wakeRank(transfer.src, t);
    } else if (!transfer.eager && transfer.sendReq != 0) {
        completeRequest(transfer.src, transfer.sendReq, t);
        transfer.sendReq = 0;
    }

    if (!transfer.local)
        tryStartQueued(t);
}

void
Engine::handleArrived(std::size_t idx, SimTime t)
{
    Transfer &transfer = transfers_[idx];
    transfer.arrived = true;
    transfer.arriveTime = t;
    if (transfer.recvPosted && transfer.recvReq != 0) {
        const SimTime done = t > transfer.recvPostTime
                                 ? t
                                 : transfer.recvPostTime;
        completeTransferRecv(transfer, done);
    }
}

void
Engine::handleCollective(RankCtx &ctx, const CollectiveRec &rec)
{
    const std::size_t index = ctx.collSeq++;
    if (index >= barriers_.size()) {
        CollBarrier barrier;
        barrier.op = rec.op;
        barrier.sendBytes = rec.sendBytes;
        barrier.recvBytes = rec.recvBytes;
        barriers_.push_back(barrier);
    }
    CollBarrier &barrier = barriers_[index];
    if (barrier.op != rec.op) {
        fatal("rank ", ctx.rank, ": collective #", index, " is ",
              trace::collOpName(rec.op), " but other ranks ran ",
              trace::collOpName(barrier.op));
    }
    barrier.sendBytes = std::max(barrier.sendBytes, rec.sendBytes);
    barrier.recvBytes = std::max(barrier.recvBytes, rec.recvBytes);
    ++barrier.arrived;
    if (ctx.now > barrier.latest)
        barrier.latest = ctx.now;

    blockRank(ctx, RankState::collective);

    if (barrier.arrived == traces_.ranks()) {
        barrier.released = true;
        const SimTime release = barrier.latest +
            collectiveCost(platform_, barrier.op, traces_.ranks(),
                           barrier.sendBytes, barrier.recvBytes);
        for (Rank r = 0; r < traces_.ranks(); ++r) {
            schedule(release, EventKind::rankResume,
                     static_cast<std::uint32_t>(r));
        }
    }
}

void
Engine::recordCommEvent(const Transfer &t, SimTime recv_complete)
{
    if (!platform_.captureTimeline)
        return;
    CommEvent event;
    event.message = t.message;
    event.src = t.src;
    event.dst = t.dst;
    event.tag = t.tag;
    event.bytes = t.bytes;
    event.sendPost = t.sendPostTime;
    event.transferStart = t.startTime;
    event.arrival = t.arriveTime;
    event.recvComplete = recv_complete;
    timeline_.addComm(event);
}

void
Engine::reportDeadlock() const
{
    std::string detail;
    for (const auto &ctx : ranks_) {
        if (ctx.done)
            continue;
        detail += strformat(
            "\n  rank %d: blocked=%s state=%s pc=%zu/%zu "
            "awaiting=%zu",
            ctx.rank, ctx.blocked ? "yes" : "no",
            rankStateName(ctx.blockState), ctx.pc,
            ctx.records->size(), ctx.awaiting.size());
    }
    fatal("replay deadlocked with ", traces_.ranks() - doneRanks_,
          " rank(s) unfinished:", detail);
}

} // namespace

SimResult
simulate(const trace::TraceSet &traces,
         const PlatformConfig &platform)
{
    Engine engine(traces, platform);
    return engine.run();
}

} // namespace ovlsim::sim
