/**
 * @file
 * Compiled replay programs: traces lowered to a flat instruction
 * stream.
 *
 * The study methodology replays the same Dimemas-style trace hundreds
 * of times across platform and overlap variants. Interpreting the
 * user-facing trace model on that hot path is wasteful: every replay
 * re-walks fat std::variant records, re-hashes request ids, re-packs
 * channel keys and re-checks structural properties that can never
 * change between replays of the same trace.
 *
 * compileTrace() lowers a trace::TraceSet once into an immutable
 * ReplayProgram: one shared flat stream of 1-byte op kinds plus
 * 24-byte packed operand slots (structure-of-arrays, per-rank
 * [begin, end) windows into the shared arrays), with side tables for
 * everything the replay loop does not touch per event:
 *
 *  - point-to-point ops carry their pre-packed trace::ChannelKey,
 *    payload bytes and a pre-linked request register inline; message
 *    and request ids (capture/decode only) live in a side table,
 *  - Wait ops are pre-linked to the register their request was
 *    assigned, replacing the engine's per-replay request hash map
 *    with a direct array index,
 *  - collectives reference a per-program table holding the operation
 *    and the byte counts already maxed across ranks — the inputs of
 *    the platform cost model, pre-resolved so the engine no longer
 *    tracks the running max or re-checks op agreement per replay.
 *
 * Compilation also front-loads validation the engine previously
 * repeated every replay (wildcard sentinels, peer-rank ranges,
 * request discipline, collective-sequence agreement), so the replay
 * loop runs a dense kind-switch with no variant access and no string
 * or hash work. Structural *completeness* (every send matched, every
 * collective reached by all ranks) is deliberately not enforced here:
 * an incomplete trace compiles fine and the replay engine still
 * reports the deadlock with its usual per-rank diagnosis.
 *
 * Programs are immutable after compilation and freely shared: study
 * campaigns hold one std::shared_ptr<const ReplayProgram> per trace
 * variant and replay it from many sweep lanes concurrently.
 */

#ifndef OVLSIM_SIM_PROGRAM_HH
#define OVLSIM_SIM_PROGRAM_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "trace/record.hh"
#include "trace/trace.hh"
#include "util/types.hh"

namespace ovlsim::sim {

/** "No request register" marker in packed ops. */
inline constexpr std::uint32_t noRegister = 0xFFFFFFFFu;

/**
 * One packed operand slot, 24 bytes. Interpretation by op kind
 * (kinds reuse trace::RecordKind, one byte in the parallel kind
 * stream):
 *
 *   burst       a = instruction count
 *   send/isend  a = channel key (this rank -> dst), b = bytes,
 *               c = request register (noRegister for send),
 *               d = p2p side-table index (message/request ids)
 *   recv/irecv  a = channel key (src -> this rank), b = bytes,
 *               c = request register (noRegister for recv),
 *               d = p2p side-table index
 *   wait        c = request register, d = wait side-table index
 *               (original request id, decode only)
 *   waitAll     (no operands)
 *   collective  a = send bytes (this rank), b = recv bytes (this
 *               rank), c = collective table index, d = root rank
 *
 * The per-rank byte counts of collective ops are decode-only; the
 * engine charges costs from the cross-rank-maxed CollectiveSpec.
 */
struct PackedOp
{
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint32_t c = 0;
    std::uint32_t d = 0;
};

static_assert(sizeof(PackedOp) == 24);

/**
 * One collective of the program, shared by all ranks. Byte counts
 * are the maximum over every participating rank's record — exactly
 * the values the engine's running max used to converge to when the
 * last rank arrived, now resolved at compile time. `root` is the
 * first participating rank's root (per-rank roots stay in the op
 * stream for decoding; the analytic cost model ignores the root
 * entirely, and the algorithmic model rejects replays whose ranks
 * disagree on it).
 */
struct CollectiveSpec
{
    trace::CollOp op = trace::CollOp::barrier;
    Bytes sendBytes = 0;
    Bytes recvBytes = 0;
    Rank root = 0;

    bool operator==(const CollectiveSpec &) const = default;
};

/** Cold per-p2p-op identifiers (timeline capture and decoding). */
struct P2pMeta
{
    trace::MessageId message = trace::invalidMessageId;
    /** Original trace request id; 0 for blocking ops. */
    trace::RequestId request = 0;
};

/**
 * An immutable compiled trace set. Construction goes through
 * compileTrace()/compileShared(); replay goes through
 * ReplaySession::run(const ReplayProgram &, ...) or the simulate()
 * overload. One program may be replayed from many threads at once.
 */
class ReplayProgram
{
  public:
    ReplayProgram() = default;

    const std::string &name() const { return name_; }
    double mips() const { return mips_; }

    int
    ranks() const
    {
        // A default-constructed (never-compiled) program has no
        // offset table yet; report zero ranks so replaying it
        // yields an empty result instead of underflowing.
        return rankBegin_.empty()
                   ? 0
                   : static_cast<int>(rankBegin_.size()) - 1;
    }

    /** Total ops over all ranks (== source totalRecords()). */
    std::size_t totalOps() const { return kinds_.size(); }

    /** Total point-to-point sends; sizes the transfer arena. */
    std::size_t totalSends() const { return totalSends_; }

    /** Number of ops in rank `r`'s stream. */
    std::size_t
    opCount(Rank r) const
    {
        const auto i = static_cast<std::size_t>(r);
        return rankBegin_[i + 1] - rankBegin_[i];
    }

    /** Rank `r`'s window of the shared kind stream. */
    const std::uint8_t *
    kindsOf(Rank r) const
    {
        return kinds_.data() +
            rankBegin_[static_cast<std::size_t>(r)];
    }

    /** Rank `r`'s window of the shared operand stream. */
    const PackedOp *
    opsOf(Rank r) const
    {
        return ops_.data() + rankBegin_[static_cast<std::size_t>(r)];
    }

    /** Request registers rank `r` needs (its table size). */
    std::uint32_t
    registerCount(Rank r) const
    {
        return rankRegs_[static_cast<std::size_t>(r)];
    }

    std::span<const CollectiveSpec>
    collectives() const
    {
        return collectives_;
    }

    const P2pMeta &
    p2pMeta(std::uint32_t index) const
    {
        return p2p_[index];
    }

    /** Heap footprint of the compiled streams (cache accounting). */
    std::size_t
    memoryBytes() const
    {
        return kinds_.size() * sizeof(std::uint8_t) +
            ops_.size() * sizeof(PackedOp) +
            (rankBegin_.size() + rankRegs_.size()) *
                sizeof(std::uint32_t) +
            collectives_.size() * sizeof(CollectiveSpec) +
            p2p_.size() * sizeof(P2pMeta) +
            waitReqs_.size() * sizeof(trace::RequestId);
    }

    /** Decode op `i` of rank `r` back into the source record. */
    trace::Record decodeOp(Rank r, std::size_t i) const;

    /**
     * Reconstruct the whole source trace set (name, MIPS rate and
     * every record of every rank). compile -> decode is lossless;
     * the round-trip test pins this.
     */
    trace::TraceSet decode() const;

  private:
    friend ReplayProgram compileTrace(const trace::TraceSet &traces);

    std::string name_;
    double mips_ = 1000.0;

    /** Shared streams; rank r owns [rankBegin_[r], rankBegin_[r+1]). */
    std::vector<std::uint8_t> kinds_;
    std::vector<PackedOp> ops_;
    std::vector<std::uint32_t> rankBegin_;

    /** Request-register table size per rank. */
    std::vector<std::uint32_t> rankRegs_;

    std::vector<CollectiveSpec> collectives_;
    std::vector<P2pMeta> p2p_;
    /** Original request id of each wait op, for decoding. */
    std::vector<trace::RequestId> waitReqs_;

    std::size_t totalSends_ = 0;
};

/**
 * Lower `traces` into a ReplayProgram.
 *
 * Throws FatalError on traces the engine would reject during replay
 * (wildcard sentinels, peer ranks out of range, collective sequences
 * whose operations disagree between ranks, a request id reposted
 * while still live) and PanicError on a Wait naming an unknown
 * request, matching the engine's historical error taxonomy.
 * Incomplete traces (unmatched sends/receives, missing collective
 * participants) compile successfully and deadlock at replay with the
 * engine's diagnosis.
 */
ReplayProgram compileTrace(const trace::TraceSet &traces);

/** compileTrace, wrapped for sharing across campaign lanes. */
std::shared_ptr<const ReplayProgram>
compileShared(const trace::TraceSet &traces);

} // namespace ovlsim::sim

#endif // OVLSIM_SIM_PROGRAM_HH
