#include "program.hh"

#include <limits>

#include "util/flat_map.hh"
#include "util/logging.hh"

namespace ovlsim::sim {

namespace {

using trace::CollectiveRec;
using trace::CpuBurst;
using trace::IRecvRec;
using trace::ISendRec;
using trace::Record;
using trace::RecordKind;
using trace::RecvRec;
using trace::RequestId;
using trace::SendRec;
using trace::WaitRec;

// The compiler emits rec.index() as the op kind byte; keep the
// RecordKind values bolted to the variant alternative order.
static_assert(std::variant_size_v<Record> == 8);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(
                                     RecordKind::burst),
                                 Record>,
                             CpuBurst>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(
                                     RecordKind::send),
                                 Record>,
                             SendRec>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(
                                     RecordKind::isend),
                                 Record>,
                             ISendRec>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(
                                     RecordKind::recv),
                                 Record>,
                             RecvRec>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(
                                     RecordKind::irecv),
                                 Record>,
                             IRecvRec>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(
                                     RecordKind::wait),
                                 Record>,
                             WaitRec>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(
                                     RecordKind::waitAll),
                                 Record>,
                             trace::WaitAllRec>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(
                                     RecordKind::collective),
                                 Record>,
                             CollectiveRec>);

/** Trace request ids must stay below this (0 is the null request). */
constexpr RequestId externalReqLimit = 1ULL << 62;

/**
 * Per-rank request-register allocator. Registers replace the
 * engine's per-replay RequestId hash map: every non-blocking op is
 * assigned a small dense index at compile time, and the matching
 * Wait references the same index directly. Register identity has no
 * semantic effect on replay (only completion times do), but the
 * allocation must be deterministic so that compiling the same trace
 * twice yields byte-identical programs.
 */
class RegisterAllocator
{
  public:
    void
    reset()
    {
        liveOf_.clear();
        free_.clear();
        high_ = 0;
    }

    std::uint32_t
    allocate(Rank rank, std::size_t record, RequestId id)
    {
        if (liveOf_.contains(id)) {
            fatal("rank ", rank, " record ", record, ": request ",
                  id, " reposted while still live");
        }
        std::uint32_t reg;
        if (!free_.empty()) {
            reg = free_.back();
            free_.pop_back();
        } else {
            reg = high_++;
        }
        liveOf_.insertOrAssign(id, reg);
        return reg;
    }

    std::uint32_t
    resolveWait(Rank rank, RequestId id)
    {
        const std::uint32_t *reg = liveOf_.find(id);
        if (reg == nullptr) {
            // The engine raised PanicError for this from inside the
            // replay loop; keep the taxonomy (and the message) now
            // that the check runs at compile time.
            panic("rank ", rank, ": wait on unknown request ", id);
        }
        const std::uint32_t result = *reg;
        liveOf_.erase(id);
        free_.push_back(result);
        return result;
    }

    /**
     * WaitAll retires every live request. All registers are free
     * afterwards; refill the free list lowest-first so the next
     * allocations reuse [0, high) instead of growing the table.
     */
    void
    releaseAll()
    {
        liveOf_.clear();
        free_.clear();
        for (std::uint32_t reg = high_; reg > 0; --reg)
            free_.push_back(reg - 1);
    }

    std::uint32_t tableSize() const { return high_; }

  private:
    FlatMap<RequestId, std::uint32_t> liveOf_;
    std::vector<std::uint32_t> free_;
    std::uint32_t high_ = 0;
};

void
checkPeer(Rank rank, std::size_t record, const char *what,
          Rank peer, Tag tag, int nranks)
{
    if (peer == anyRank || tag == anyTag) {
        fatal("rank ", rank, " record ", record, ": ", what,
              " with the ", peer == anyRank ? "anyRank" : "anyTag",
              " wildcard sentinel; wildcard matching is "
              "unsupported by the replay engine (run "
              "trace::validateTraceSet to locate the records)");
    }
    if (peer < 0 || peer >= nranks) {
        fatal("rank ", rank, " record ", record, ": ", what,
              " peer rank ", peer, " outside [0, ", nranks, ")");
    }
}

void
checkRequest(Rank rank, std::size_t record, const char *what,
             RequestId id)
{
    if (id == 0 || id >= externalReqLimit) {
        fatal("rank ", rank, " record ", record, ": ", what,
              " request id ", id, " out of range");
    }
}

} // namespace

ReplayProgram
compileTrace(const trace::TraceSet &traces)
{
    const int nranks = traces.ranks();
    const std::size_t total = traces.totalRecords();
    ovlAssert(total <
                  std::numeric_limits<std::uint32_t>::max(),
              "trace too large to compile: ", total, " records");

    // Prescan the record kinds (index() only, no payload access)
    // so every array reserves its exact final size: compiled
    // programs of big chunked variants are held for whole
    // campaigns, and vector doubling would overshoot their
    // footprint by up to 2x.
    std::size_t p2p_ops = 0;
    std::size_t wait_ops = 0;
    for (const auto &rt : traces.all()) {
        for (const auto &rec : rt.records()) {
            const RecordKind kind = trace::recordKind(rec);
            if (kind == RecordKind::wait) {
                ++wait_ops;
            } else if (kind != RecordKind::burst &&
                       kind != RecordKind::waitAll &&
                       kind != RecordKind::collective) {
                ++p2p_ops;
            }
        }
    }

    ReplayProgram p;
    p.name_ = traces.name();
    p.mips_ = traces.mips();
    p.kinds_.reserve(total);
    p.ops_.reserve(total);
    p.p2p_.reserve(p2p_ops);
    p.waitReqs_.reserve(wait_ops);
    p.rankBegin_.reserve(static_cast<std::size_t>(nranks) + 1);
    p.rankRegs_.reserve(static_cast<std::size_t>(nranks));

    RegisterAllocator regs;
    for (Rank rank = 0; rank < nranks; ++rank) {
        p.rankBegin_.push_back(
            static_cast<std::uint32_t>(p.kinds_.size()));
        regs.reset();
        std::size_t coll_index = 0;

        const auto &records = traces.rankTrace(rank).records();
        for (std::size_t i = 0; i < records.size(); ++i) {
            const Record &rec = records[i];
            PackedOp op;
            switch (trace::recordKind(rec)) {
              case RecordKind::burst:
                op.a = std::get_if<CpuBurst>(&rec)->instructions;
                break;

              case RecordKind::send: {
                const auto *s = std::get_if<SendRec>(&rec);
                checkPeer(rank, i, "send", s->dst, s->tag, nranks);
                op.a = trace::channelKey(rank, s->dst, s->tag);
                op.b = s->bytes;
                op.c = noRegister;
                op.d = static_cast<std::uint32_t>(p.p2p_.size());
                p.p2p_.push_back(P2pMeta{s->message, 0});
                ++p.totalSends_;
                break;
              }

              case RecordKind::isend: {
                const auto *s = std::get_if<ISendRec>(&rec);
                checkPeer(rank, i, "isend", s->dst, s->tag,
                          nranks);
                checkRequest(rank, i, "isend", s->request);
                op.a = trace::channelKey(rank, s->dst, s->tag);
                op.b = s->bytes;
                op.c = regs.allocate(rank, i, s->request);
                op.d = static_cast<std::uint32_t>(p.p2p_.size());
                p.p2p_.push_back(P2pMeta{s->message, s->request});
                ++p.totalSends_;
                break;
              }

              case RecordKind::recv: {
                const auto *r = std::get_if<RecvRec>(&rec);
                checkPeer(rank, i, "recv", r->src, r->tag, nranks);
                op.a = trace::channelKey(r->src, rank, r->tag);
                op.b = r->bytes;
                op.c = noRegister;
                op.d = static_cast<std::uint32_t>(p.p2p_.size());
                p.p2p_.push_back(P2pMeta{r->message, 0});
                break;
              }

              case RecordKind::irecv: {
                const auto *r = std::get_if<IRecvRec>(&rec);
                checkPeer(rank, i, "irecv", r->src, r->tag,
                          nranks);
                checkRequest(rank, i, "irecv", r->request);
                op.a = trace::channelKey(r->src, rank, r->tag);
                op.b = r->bytes;
                op.c = regs.allocate(rank, i, r->request);
                op.d = static_cast<std::uint32_t>(p.p2p_.size());
                p.p2p_.push_back(P2pMeta{r->message, r->request});
                break;
              }

              case RecordKind::wait: {
                const auto *w = std::get_if<WaitRec>(&rec);
                op.c = regs.resolveWait(rank, w->request);
                op.d =
                    static_cast<std::uint32_t>(p.waitReqs_.size());
                p.waitReqs_.push_back(w->request);
                break;
              }

              case RecordKind::waitAll:
                regs.releaseAll();
                break;

              case RecordKind::collective: {
                const auto *g = std::get_if<CollectiveRec>(&rec);
                if (coll_index == p.collectives_.size()) {
                    p.collectives_.push_back(CollectiveSpec{
                        g->op, g->sendBytes, g->recvBytes,
                        g->root});
                } else {
                    CollectiveSpec &spec =
                        p.collectives_[coll_index];
                    if (spec.op != g->op) {
                        fatal("rank ", rank, ": collective #",
                              coll_index, " is ",
                              trace::collOpName(g->op),
                              " but other ranks ran ",
                              trace::collOpName(spec.op));
                    }
                    spec.sendBytes =
                        std::max(spec.sendBytes, g->sendBytes);
                    spec.recvBytes =
                        std::max(spec.recvBytes, g->recvBytes);
                }
                op.a = g->sendBytes;
                op.b = g->recvBytes;
                op.c = static_cast<std::uint32_t>(coll_index);
                op.d = static_cast<std::uint32_t>(g->root);
                ++coll_index;
                break;
              }
            }
            p.kinds_.push_back(
                static_cast<std::uint8_t>(rec.index()));
            p.ops_.push_back(op);
        }
        p.rankRegs_.push_back(regs.tableSize());
    }
    p.rankBegin_.push_back(
        static_cast<std::uint32_t>(p.kinds_.size()));
    return p;
}

std::shared_ptr<const ReplayProgram>
compileShared(const trace::TraceSet &traces)
{
    return std::make_shared<const ReplayProgram>(
        compileTrace(traces));
}

trace::Record
ReplayProgram::decodeOp(Rank r, std::size_t i) const
{
    ovlAssert(i < opCount(r), "decodeOp: op index out of range");
    const std::size_t at =
        rankBegin_[static_cast<std::size_t>(r)] + i;
    const PackedOp &op = ops_[at];
    switch (static_cast<RecordKind>(kinds_[at])) {
      case RecordKind::burst:
        return CpuBurst{op.a};
      case RecordKind::send:
        return SendRec{trace::channelDstOf(op.a),
                       trace::channelTagOf(op.a), op.b,
                       p2p_[op.d].message};
      case RecordKind::isend:
        return ISendRec{trace::channelDstOf(op.a),
                        trace::channelTagOf(op.a), op.b,
                        p2p_[op.d].message, p2p_[op.d].request};
      case RecordKind::recv:
        return RecvRec{trace::channelSrcOf(op.a),
                       trace::channelTagOf(op.a), op.b,
                       p2p_[op.d].message};
      case RecordKind::irecv:
        return IRecvRec{trace::channelSrcOf(op.a),
                        trace::channelTagOf(op.a), op.b,
                        p2p_[op.d].message, p2p_[op.d].request};
      case RecordKind::wait:
        return WaitRec{waitReqs_[op.d]};
      case RecordKind::waitAll:
        return trace::WaitAllRec{};
      case RecordKind::collective:
        return CollectiveRec{collectives_[op.c].op, op.a, op.b,
                             static_cast<Rank>(op.d)};
    }
    panic("decodeOp: corrupt op kind");
}

trace::TraceSet
ReplayProgram::decode() const
{
    trace::TraceSet traces(name_, ranks(), mips_);
    for (Rank r = 0; r < ranks(); ++r) {
        auto &rank_trace = traces.rankTrace(r);
        const std::size_t count = opCount(r);
        for (std::size_t i = 0; i < count; ++i)
            rank_trace.append(decodeOp(r, i));
    }
    return traces;
}

} // namespace ovlsim::sim
