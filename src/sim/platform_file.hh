/**
 * @file
 * Platform configuration files.
 *
 * Dimemas drives its reconstruction from a machine configuration
 * file; this module provides the same workflow: a line-oriented
 * `key = value` format covering every PlatformConfig field, so
 * experiments can be versioned and swapped without recompiling.
 *
 *   # my-cluster.cfg
 *   name = my-cluster
 *   bandwidth_mbps = 512
 *   latency_us = 4
 *   buses = 8
 *   cpus_per_node = 4
 *   eager_threshold = 32768
 *
 * Every numeric key is domain-checked at parse time (NaN, inf and
 * out-of-domain signs are fatal, naming file, line and key).
 *
 * Dynamic-platform keys:
 *
 *   # a fixed timestamped event list (src/scen/)...
 *   scenario_file = degrade.scen
 *   # ...or a stochastic fault model expanded with its own seed
 *   # and horizon into such a list at parse time (src/res/).
 *   # Mutually exclusive with scenario_file.
 *   fault_model_file = flaky.fm
 *
 * Checkpoint/restart cost model (src/res/, engine restart seam):
 *
 *   # coordinated checkpoint every 50 ms of simulated time...
 *   checkpoint_interval_us = 50000
 *   # ...freezing the machine for 2 ms per checkpoint taken
 *   checkpoint_cost_us = 2000
 *   # rollback/rejuvenation delay charged per fail-stop restart
 *   restart_cost_us = 5000
 *
 * With a positive checkpoint_interval_us a fail-stop scenario event
 * rolls the replay back to its last checkpoint instead of
 * terminating it; zero (the default) keeps PR-6 fail-stop
 * semantics bit-identical.
 */

#ifndef OVLSIM_SIM_PLATFORM_FILE_HH
#define OVLSIM_SIM_PLATFORM_FILE_HH

#include <iosfwd>
#include <string>

#include "sim/platform.hh"

namespace ovlsim::sim {

/**
 * Parse a platform config from a stream. Unknown and duplicate keys
 * are fatal; `source` names the stream in every parse error (file
 * name + line number when parsing a file).
 */
PlatformConfig readPlatformConfig(
    std::istream &is, const std::string &source = "platform config");

/** Parse a platform config file. */
PlatformConfig readPlatformConfigFile(const std::string &path);

/** Serialize a platform config in the same format. */
void writePlatformConfig(const PlatformConfig &config,
                         std::ostream &os);

/** Serialize a platform config to a file. */
void writePlatformConfigFile(const PlatformConfig &config,
                             const std::string &path);

} // namespace ovlsim::sim

#endif // OVLSIM_SIM_PLATFORM_FILE_HH
