/**
 * @file
 * Trace-driven discrete-event replay engine (the Dimemas substitute).
 *
 * The engine walks every rank's record stream, converting instruction
 * bursts into time via the platform's MIPS rate and resolving MPI
 * semantics (blocking/non-blocking point-to-point with eager and
 * rendezvous protocols, FIFO per-channel matching, collectives) while
 * transfers contend for the platform's finite buses and per-node
 * links. The result is the application's reconstructed time-behaviour
 * on the configured platform.
 */

#ifndef OVLSIM_SIM_ENGINE_HH
#define OVLSIM_SIM_ENGINE_HH

#include "sim/platform.hh"
#include "sim/result.hh"
#include "trace/trace.hh"

namespace ovlsim::sim {

/**
 * Replay a trace set on a platform.
 *
 * The trace set must be structurally valid (see
 * trace::validateTraceSet); replay of an invalid trace raises
 * FatalError, including a deadlock diagnosis when ranks block
 * forever.
 *
 * @param traces the application traces to replay
 * @param platform the machine to reconstruct the behaviour on
 * @return simulated completion time, per-rank breakdowns and, if
 *     enabled, the full timeline
 */
SimResult simulate(const trace::TraceSet &traces,
                   const PlatformConfig &platform);

} // namespace ovlsim::sim

#endif // OVLSIM_SIM_ENGINE_HH
