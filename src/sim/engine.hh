/**
 * @file
 * Trace-driven discrete-event replay engine (the Dimemas substitute).
 *
 * The engine executes compiled replay programs (sim/program.hh): the
 * trace's record streams lowered once into a flat instruction stream
 * with pre-packed channel keys, pre-linked request registers and
 * pre-resolved collective cost inputs. Replay converts instruction
 * bursts into time via the platform's MIPS rate and resolves MPI
 * semantics (blocking/non-blocking point-to-point with eager and
 * rendezvous protocols, FIFO per-channel matching, collectives) while
 * transfers contend for the platform's finite buses and per-node
 * links. The result is the application's reconstructed time-behaviour
 * on the configured platform.
 *
 * Entry points:
 *  - simulate(traces, platform) compiles on entry and replays once —
 *    the right call for one-off replays.
 *  - ReplaySession replays many jobs back-to-back, keeping the
 *    engine's arenas (channel hash table, transfer pool, request
 *    registers, event heap) alive between runs so steady-state
 *    replays allocate nothing. Its ReplayProgram overload skips
 *    compilation entirely — study campaigns compile each trace
 *    variant once and share the program across all sweep points.
 *  - simulateBatch() fans a batch of independent jobs over a thread
 *    pool with one session per lane, compiling each distinct trace
 *    set once.
 */

#ifndef OVLSIM_SIM_ENGINE_HH
#define OVLSIM_SIM_ENGINE_HH

#include <memory>
#include <span>
#include <vector>

#include "sim/platform.hh"
#include "sim/program.hh"
#include "sim/result.hh"
#include "trace/trace.hh"

namespace ovlsim::sim {

/**
 * Replay a trace set on a platform (compile-on-entry convenience
 * wrapper around the ReplayProgram overload).
 *
 * The trace set must be structurally valid: compilation raises
 * FatalError on traces the engine cannot replay (wildcard
 * anyRank/anyTag sentinels, out-of-range peers, disagreeing
 * collective sequences), and replay raises FatalError with a
 * per-rank diagnosis when ranks block forever.
 *
 * @param traces the application traces to replay
 * @param platform the machine to reconstruct the behaviour on
 * @return simulated completion time, per-rank breakdowns and, if
 *     enabled, the full timeline
 */
SimResult simulate(const trace::TraceSet &traces,
                   const PlatformConfig &platform);

/** Replay a pre-compiled program; same contract as simulate(). */
SimResult simulate(const ReplayProgram &program,
                   const PlatformConfig &platform);

/**
 * A reusable replay context.
 *
 * Owns the engine's flat-hash channel map, transfer arena, request
 * registers and event heap, and replays any number of
 * (program, platform) pairs back-to-back without reallocating them:
 * each run() resets the containers but keeps their capacity.
 * Results are bit-identical to simulate() — a session carries no
 * state between runs other than memory reservations.
 *
 * A session is single-threaded; use one session per thread (see
 * simulateBatch) for parallel campaigns. One const ReplayProgram
 * may be shared by any number of concurrent sessions.
 */
class ReplaySession
{
  public:
    ReplaySession();
    ~ReplaySession();
    ReplaySession(ReplaySession &&) noexcept;
    ReplaySession &operator=(ReplaySession &&) noexcept;

    /** Compile `traces` and replay; same contract as simulate(). */
    SimResult run(const trace::TraceSet &traces,
                  const PlatformConfig &platform);

    /** Replay a pre-compiled program (the campaign hot path). */
    SimResult run(const ReplayProgram &program,
                  const PlatformConfig &platform);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * One replay of a batch: what to replay and the platform to run it
 * on. Either `program` (preferred; shared, pre-compiled) or
 * `traces` (compiled once per distinct pointer inside
 * simulateBatch) must be set; `program` wins when both are. A
 * referenced trace set must outlive the simulateBatch call.
 */
struct SimJob
{
    SimJob() = default;

    SimJob(const trace::TraceSet *traces_in,
           PlatformConfig platform_in)
        : traces(traces_in), platform(std::move(platform_in))
    {}

    SimJob(std::shared_ptr<const ReplayProgram> program_in,
           PlatformConfig platform_in)
        : platform(std::move(platform_in)),
          program(std::move(program_in))
    {}

    const trace::TraceSet *traces = nullptr;
    PlatformConfig platform;
    std::shared_ptr<const ReplayProgram> program;
};

/**
 * Replay every job of a batch and return the results in job order.
 *
 * Jobs are independent; with `threads` > 1 they are fanned over a
 * fixed thread pool with one ReplaySession per lane, and the result
 * vector is bit-identical to running the jobs sequentially
 * (`threads` <= 0 means all hardware cores). The first error raised
 * by any job is rethrown after in-flight jobs drain.
 */
std::vector<SimResult> simulateBatch(std::span<const SimJob> jobs,
                                     int threads = 1);

} // namespace ovlsim::sim

#endif // OVLSIM_SIM_ENGINE_HH
