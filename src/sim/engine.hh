/**
 * @file
 * Trace-driven discrete-event replay engine (the Dimemas substitute).
 *
 * The engine walks every rank's record stream, converting instruction
 * bursts into time via the platform's MIPS rate and resolving MPI
 * semantics (blocking/non-blocking point-to-point with eager and
 * rendezvous protocols, FIFO per-channel matching, collectives) while
 * transfers contend for the platform's finite buses and per-node
 * links. The result is the application's reconstructed time-behaviour
 * on the configured platform.
 *
 * Two entry points are offered. simulate() replays once and is the
 * right call for one-off replays. Study campaigns (sweeps,
 * bisections) replay many (trace, platform) pairs back-to-back; a
 * ReplaySession keeps the engine's arenas — channel hash table,
 * transfer pool, request tables, event heap — alive between runs, so
 * steady-state replays allocate nothing. simulateBatch() fans a batch
 * of independent jobs over a thread pool with one session per lane.
 */

#ifndef OVLSIM_SIM_ENGINE_HH
#define OVLSIM_SIM_ENGINE_HH

#include <memory>
#include <span>
#include <vector>

#include "sim/platform.hh"
#include "sim/result.hh"
#include "trace/trace.hh"

namespace ovlsim::sim {

/**
 * Replay a trace set on a platform.
 *
 * The trace set must be structurally valid (see
 * trace::validateTraceSet); replay of an invalid trace raises
 * FatalError, including a deadlock diagnosis when ranks block
 * forever. Traces using the anyRank/anyTag wildcard sentinels are
 * rejected with FatalError: wildcard matching is unsupported.
 *
 * @param traces the application traces to replay
 * @param platform the machine to reconstruct the behaviour on
 * @return simulated completion time, per-rank breakdowns and, if
 *     enabled, the full timeline
 */
SimResult simulate(const trace::TraceSet &traces,
                   const PlatformConfig &platform);

/**
 * A reusable replay context.
 *
 * Owns the engine's flat-hash channel map, transfer/request arenas
 * and event heap, and replays any number of (trace, platform) pairs
 * back-to-back without reallocating them: each run() resets the
 * containers but keeps their capacity. Results are bit-identical to
 * simulate() — a session carries no state between runs other than
 * memory reservations.
 *
 * A session is single-threaded; use one session per thread (see
 * simulateBatch) for parallel campaigns.
 */
class ReplaySession
{
  public:
    ReplaySession();
    ~ReplaySession();
    ReplaySession(ReplaySession &&) noexcept;
    ReplaySession &operator=(ReplaySession &&) noexcept;

    /** Replay `traces` on `platform`; same contract as simulate(). */
    SimResult run(const trace::TraceSet &traces,
                  const PlatformConfig &platform);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** One replay of a batch: a trace set and the platform to run it on.
 * The referenced trace set must outlive the simulateBatch call. */
struct SimJob
{
    const trace::TraceSet *traces = nullptr;
    PlatformConfig platform;
};

/**
 * Replay every job of a batch and return the results in job order.
 *
 * Jobs are independent; with `threads` > 1 they are fanned over a
 * fixed thread pool with one ReplaySession per lane, and the result
 * vector is bit-identical to running the jobs sequentially
 * (`threads` <= 0 means all hardware cores). The first error raised
 * by any job is rethrown after in-flight jobs drain.
 */
std::vector<SimResult> simulateBatch(std::span<const SimJob> jobs,
                                     int threads = 1);

} // namespace ovlsim::sim

#endif // OVLSIM_SIM_ENGINE_HH
