#include "result.hh"

#include <sstream>

#include "util/strings.hh"

namespace ovlsim::sim {

double
SimResult::computeFraction() const
{
    if (perRank.empty() || totalTime.ns() == 0)
        return 0.0;
    double sum = 0.0;
    for (const auto &rr : perRank) {
        sum += static_cast<double>(rr.computeTime.ns()) /
            static_cast<double>(totalTime.ns());
    }
    return sum / static_cast<double>(perRank.size());
}

double
SimResult::commFraction() const
{
    if (perRank.empty() || totalTime.ns() == 0)
        return 0.0;
    double sum = 0.0;
    for (const auto &rr : perRank) {
        sum += static_cast<double>(rr.blockedTime().ns()) /
            static_cast<double>(totalTime.ns());
    }
    return sum / static_cast<double>(perRank.size());
}

SimTime
SimResult::totalComputeTime() const
{
    SimTime total = SimTime::zero();
    for (const auto &rr : perRank)
        total += rr.computeTime;
    return total;
}

SimTime
SimResult::totalBlockedTime() const
{
    SimTime total = SimTime::zero();
    for (const auto &rr : perRank)
        total += rr.blockedTime();
    return total;
}

std::string
SimResult::toString() const
{
    std::ostringstream os;
    os << "application time: " << humanTime(totalTime) << "\n";
    os << "events processed: " << eventsProcessed << "\n";
    os << "transfers: " << transfers << "\n";
    os << strformat("compute fraction: %.1f%%  comm fraction: "
                    "%.1f%%\n",
                    computeFraction() * 100.0,
                    commFraction() * 100.0);
    for (const auto &rr : perRank) {
        os << strformat(
            "  rank %3d: end %-10s comp %-10s sendb %-10s recvb "
            "%-10s waitb %-10s coll %-10s\n",
            rr.rank, humanTime(rr.endTime).c_str(),
            humanTime(rr.computeTime).c_str(),
            humanTime(rr.sendBlockedTime).c_str(),
            humanTime(rr.recvBlockedTime).c_str(),
            humanTime(rr.waitBlockedTime).c_str(),
            humanTime(rr.collectiveTime).c_str());
    }
    return os.str();
}

} // namespace ovlsim::sim
