#include "timeline.hh"

#include "util/logging.hh"

namespace ovlsim::sim {

const char *
rankStateName(RankState state)
{
    switch (state) {
      case RankState::compute: return "compute";
      case RankState::sendBlocked: return "send-blocked";
      case RankState::recvBlocked: return "recv-blocked";
      case RankState::waitBlocked: return "wait-blocked";
      case RankState::collective: return "collective";
      case RankState::idle: return "idle";
      case RankState::restart: return "restart";
    }
    panic("rankStateName: bad state");
}

char
rankStateCode(RankState state)
{
    switch (state) {
      case RankState::compute: return '#';
      case RankState::sendBlocked: return 'S';
      case RankState::recvBlocked: return 'R';
      case RankState::waitBlocked: return 'W';
      case RankState::collective: return 'C';
      case RankState::idle: return '.';
      case RankState::restart: return 'X';
    }
    panic("rankStateCode: bad state");
}

std::uint32_t
Timeline::newNode()
{
    if ((nodeCount_ & (chunkCapacity - 1)) == 0) {
        chunks_.emplace_back().reserve(chunkCapacity);
    }
    chunks_.back().emplace_back();
    return nodeCount_++;
}

void
Timeline::addInterval(Rank r, SimTime begin, SimTime end,
                      RankState state)
{
    ovlAssert(r >= 0 && r < ranks(), "timeline rank out of range");
    auto &list = perRank_[static_cast<std::size_t>(r)];
    if (list.count > 0) {
        Node &tail = node(list.tail);
        // Never overlap the recorded past: a rollback splice leaves
        // the tail at the restored cut, and the first wake after it
        // reports a blocked window that started before the cut —
        // only the remainder past the tail is new information.
        if (begin < tail.interval.end)
            begin = tail.interval.end;
        if (end <= begin)
            return;
        if (tail.interval.end == begin &&
            tail.interval.state == state) {
            tail.interval.end = end;
            return;
        }
    }
    if (end <= begin)
        return;
    const std::uint32_t idx = newNode();
    node(idx).interval = StateInterval{begin, end, state};
    if (list.count == 0)
        list.head = idx;
    else
        node(list.tail).next = idx;
    list.tail = idx;
    ++list.count;
}

void
Timeline::truncateAt(SimTime cut)
{
    for (auto &list : perRank_) {
        if (list.count == 0)
            continue;
        if (node(list.head).interval.begin >= cut) {
            // Nothing on this rank predates the cut. The orphaned
            // nodes stay in the arena (append-only storage); only
            // the list forgets them.
            list.head = list.tail = nposNode;
            list.count = 0;
            continue;
        }
        // Walk to the last interval starting before the cut; begins
        // are non-decreasing in append order, so everything after
        // it is dropped and it alone may need clipping.
        std::uint32_t idx = list.head;
        std::uint32_t kept = 1;
        while (node(idx).next != nposNode &&
               node(node(idx).next).interval.begin < cut) {
            idx = node(idx).next;
            ++kept;
        }
        Node &last = node(idx);
        if (last.interval.end > cut)
            last.interval.end = cut;
        last.next = nposNode;
        list.tail = idx;
        list.count = kept;
    }
}

Timeline::IntervalRange
Timeline::intervals(Rank r) const
{
    ovlAssert(r >= 0 && r < ranks(), "timeline rank out of range");
    const auto &list = perRank_[static_cast<std::size_t>(r)];
    return IntervalRange(this, list.head, list.count);
}

SimTime
Timeline::span() const
{
    SimTime latest = SimTime::zero();
    for (const auto &list : perRank_) {
        if (list.count == 0)
            continue;
        const SimTime end = node(list.tail).interval.end;
        if (end > latest)
            latest = end;
    }
    return latest;
}

SimTime
Timeline::timeInState(Rank r, RankState state) const
{
    SimTime total = SimTime::zero();
    for (const auto &iv : intervals(r)) {
        if (iv.state == state)
            total += iv.end - iv.begin;
    }
    return total;
}

} // namespace ovlsim::sim
