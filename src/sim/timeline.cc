#include "timeline.hh"

#include "util/logging.hh"

namespace ovlsim::sim {

const char *
rankStateName(RankState state)
{
    switch (state) {
      case RankState::compute: return "compute";
      case RankState::sendBlocked: return "send-blocked";
      case RankState::recvBlocked: return "recv-blocked";
      case RankState::waitBlocked: return "wait-blocked";
      case RankState::collective: return "collective";
      case RankState::idle: return "idle";
    }
    panic("rankStateName: bad state");
}

char
rankStateCode(RankState state)
{
    switch (state) {
      case RankState::compute: return '#';
      case RankState::sendBlocked: return 'S';
      case RankState::recvBlocked: return 'R';
      case RankState::waitBlocked: return 'W';
      case RankState::collective: return 'C';
      case RankState::idle: return '.';
    }
    panic("rankStateCode: bad state");
}

void
Timeline::addInterval(Rank r, SimTime begin, SimTime end,
                      RankState state)
{
    ovlAssert(r >= 0 && r < ranks(), "timeline rank out of range");
    if (end <= begin)
        return;
    auto &list = perRank_[static_cast<std::size_t>(r)];
    if (!list.empty() && list.back().end == begin &&
        list.back().state == state) {
        list.back().end = end;
        return;
    }
    list.push_back(StateInterval{begin, end, state});
}

const std::vector<StateInterval> &
Timeline::intervals(Rank r) const
{
    ovlAssert(r >= 0 && r < ranks(), "timeline rank out of range");
    return perRank_[static_cast<std::size_t>(r)];
}

SimTime
Timeline::span() const
{
    SimTime latest = SimTime::zero();
    for (const auto &list : perRank_) {
        if (!list.empty() && list.back().end > latest)
            latest = list.back().end;
    }
    return latest;
}

SimTime
Timeline::timeInState(Rank r, RankState state) const
{
    SimTime total = SimTime::zero();
    for (const auto &iv : intervals(r)) {
        if (iv.state == state)
            total += iv.end - iv.begin;
    }
    return total;
}

} // namespace ovlsim::sim
