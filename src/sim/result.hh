/**
 * @file
 * Replay results: application time and per-rank breakdowns.
 */

#ifndef OVLSIM_SIM_RESULT_HH
#define OVLSIM_SIM_RESULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/stats.hh"
#include "sim/timeline.hh"
#include "util/types.hh"

namespace ovlsim::sim {

/** Where one rank's simulated time went. */
struct RankResult
{
    Rank rank = 0;
    /** Instant the rank finished its trace. */
    SimTime endTime;
    SimTime computeTime;
    SimTime sendBlockedTime;
    SimTime recvBlockedTime;
    SimTime waitBlockedTime;
    SimTime collectiveTime;
    std::uint64_t messagesSent = 0;
    std::uint64_t messagesReceived = 0;
    Bytes bytesSent = 0;

    /** Everything that is not computation. */
    SimTime
    blockedTime() const
    {
        return sendBlockedTime + recvBlockedTime + waitBlockedTime +
            collectiveTime;
    }
};

/** Outcome of replaying one trace set on one platform. */
struct SimResult
{
    /** Application completion time (max over ranks). */
    SimTime totalTime;
    std::vector<RankResult> perRank;
    std::uint64_t eventsProcessed = 0;
    std::uint64_t transfers = 0;
    /**
     * Coordinated checkpoints taken and fail-stop rollbacks
     * survived (resilience seam, src/res/); both zero unless the
     * platform enables checkpointing.
     */
    std::uint64_t checkpoints = 0;
    std::uint64_t restarts = 0;
    /** Populated only when the platform enables timeline capture. */
    Timeline timeline;
    /** Always-on engine counters for this run (src/obs/). */
    obs::EngineStats stats;

    /** Mean fraction of rank time spent computing, in [0, 1]. */
    double computeFraction() const;

    /** Mean fraction of rank time spent blocked on communication. */
    double commFraction() const;

    /** Aggregate compute time over ranks. */
    SimTime totalComputeTime() const;

    /** Aggregate blocked time over ranks. */
    SimTime totalBlockedTime() const;

    /** Multi-line summary for reports. */
    std::string toString() const;
};

} // namespace ovlsim::sim

#endif // OVLSIM_SIM_RESULT_HH
