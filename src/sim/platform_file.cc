#include "platform_file.hh"

#include <fstream>
#include <sstream>

#include "coll/coll.hh"
#include "net/topology.hh"
#include "res/fault_model.hh"
#include "scen/scenario.hh"
#include "util/keyvalue.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace ovlsim::sim {

namespace {

/** Key prefix of the per-op collective algorithm pins. */
const std::string collAlgoPrefix = "collective_algorithm_";

/**
 * Parse one `collective_algorithm_<op> = <algorithm>` pin. Unknown
 * op names, unknown algorithm names and algorithms that cannot
 * lower the op all fail here with the full list of valid values,
 * mirroring the topology-key error style.
 */
void
parseCollectiveAlgorithm(PlatformConfig &config,
                         const KeyValueReader &reader)
{
    const std::string op_name =
        reader.key().substr(collAlgoPrefix.size());
    trace::CollOp op;
    try {
        op = trace::collOpFromName(op_name);
    } catch (const FatalError &) {
        reader.fail("unknown collective op '", op_name,
                    "' in key '", reader.key(),
                    "' (expected one of: barrier broadcast reduce "
                    "allreduce gather allgather scatter alltoall)");
    }
    const coll::Algorithm algorithm =
        coll::algorithmFromName(reader.value());
    if (!coll::algorithmSupports(op, algorithm)) {
        reader.fail("algorithm '", reader.value(),
                    "' cannot lower ", trace::collOpName(op),
                    " collectives");
    }
    config.collectiveAlgorithms.set(op, algorithm);
}

/** Parse torus dimensions of the form "4x4x2". */
std::vector<int>
parseTorusDims(const KeyValueReader &reader)
{
    std::vector<int> dims;
    for (const auto &field : split(reader.value(), 'x')) {
        const auto dim = parseInt(trim(field));
        if (dim < 1) {
            reader.fail("torus dimensions must be positive, got '",
                        reader.value(), "'");
        }
        dims.push_back(static_cast<int>(dim));
    }
    return dims;
}

std::string
torusDimsToString(const std::vector<int> &dims)
{
    std::string text;
    for (std::size_t i = 0; i < dims.size(); ++i) {
        if (i > 0)
            text += 'x';
        text += strformat("%d", dims[i]);
    }
    return text;
}

} // namespace

PlatformConfig
readPlatformConfig(std::istream &is, const std::string &source)
{
    PlatformConfig config;
    // The shared reader owns the surface robustness: comment/blank
    // skipping, malformed-line and duplicate-key rejection, and
    // domain-checked numerics, all with file + line in the error.
    KeyValueReader reader(is, source);

    while (reader.next()) {
        const std::string &key = reader.key();
        const std::string &value = reader.value();

        if (key == "name") {
            config.name = value;
        } else if (key == "mips") {
            // Zero means "use the trace's recorded rate".
            config.mipsOverride =
                reader.nonNegativeDouble();
        } else if (key == "cpu_ratio") {
            config.cpuRatio =
                reader.positiveDouble();
        } else if (key == "cpus_per_node") {
            config.cpusPerNode = static_cast<int>(
                reader.nonNegativeInt());
        } else if (key == "bandwidth_mbps") {
            config.bandwidthMBps =
                reader.positiveDouble();
        } else if (key == "latency_us") {
            config.latencyUs =
                reader.nonNegativeDouble();
        } else if (key == "local_bandwidth_mbps") {
            config.localBandwidthMBps =
                reader.positiveDouble();
        } else if (key == "local_latency_us") {
            config.localLatencyUs =
                reader.nonNegativeDouble();
        } else if (key == "buses") {
            config.buses = static_cast<int>(
                reader.nonNegativeInt());
        } else if (key == "out_links_per_node") {
            config.outLinksPerNode = static_cast<int>(
                reader.nonNegativeInt());
        } else if (key == "in_links_per_node") {
            config.inLinksPerNode = static_cast<int>(
                reader.nonNegativeInt());
        } else if (key == "eager_threshold") {
            config.eagerThreshold = static_cast<Bytes>(
                reader.nonNegativeInt());
        } else if (key == "force_eager_isend") {
            config.forceEagerIsend = parseBool(value);
        } else if (key == "rendezvous_overhead_us") {
            config.rendezvousOverheadUs =
                reader.nonNegativeDouble();
        } else if (key == "collective_latency_factor") {
            config.collectives.latencyFactor =
                reader.nonNegativeDouble();
        } else if (key == "collective_bandwidth_factor") {
            config.collectives.bandwidthFactor =
                reader.nonNegativeDouble();
        } else if (key == "collective_model") {
            // Unknown names fail here with the valid models.
            config.collectiveModel =
                coll::collectiveModelFromName(value);
        } else if (key.rfind(collAlgoPrefix, 0) == 0) {
            parseCollectiveAlgorithm(config, reader);
        } else if (key == "topology") {
            // Unknown names fail here with the full list of kinds.
            config.topology.kind =
                net::topologyKindFromName(value);
        } else if (key == "fat_tree_radix") {
            config.topology.fatTreeRadix = static_cast<int>(
                reader.nonNegativeInt());
        } else if (key == "fat_tree_taper") {
            config.topology.fatTreeTaper =
                reader.nonNegativeDouble();
        } else if (key == "torus_dims") {
            config.topology.torusDims =
                parseTorusDims(reader);
        } else if (key == "torus_wrap") {
            config.topology.torusWrap = parseBool(value);
        } else if (key == "dragonfly_groups") {
            config.topology.dragonflyGroups =
                static_cast<int>(parseInt(value));
        } else if (key == "dragonfly_routers_per_group") {
            config.topology.dragonflyRoutersPerGroup =
                static_cast<int>(parseInt(value));
        } else if (key == "dragonfly_nodes_per_router") {
            config.topology.dragonflyNodesPerRouter =
                static_cast<int>(parseInt(value));
        } else if (key == "link_bandwidth_mbps") {
            // Inheriting the platform bandwidth is spelled by
            // omitting the key, so an explicit zero is nonsense.
            const double mbps = parseDouble(value);
            if (mbps <= 0.0) {
                reader.fail(
                    "link_bandwidth_mbps must be positive "
                    "(omit the key to inherit bandwidth_mbps)");
            }
            config.topology.linkBandwidthMBps = mbps;
        } else if (key == "hop_latency_us") {
            config.topology.hopLatencyUs =
                reader.nonNegativeDouble();
        } else if (key == "scenario_file") {
            if (reader.seenLine("fault_model_file") != 0) {
                reader.fail(
                    "scenario_file and fault_model_file are "
                    "mutually exclusive (both define the "
                    "scenario)");
            }
            // The scenario parser names the referenced file in its
            // own errors; point at the referencing line too so a
            // bad path is traceable from the platform side.
            try {
                config.scenario = scen::readScenarioFile(value);
            } catch (const FatalError &err) {
                reader.fail(err.what());
            }
        } else if (key == "fault_model_file") {
            if (reader.seenLine("scenario_file") != 0) {
                reader.fail(
                    "scenario_file and fault_model_file are "
                    "mutually exclusive (both define the "
                    "scenario)");
            }
            // Expand the stochastic model into a concrete scenario
            // right here, with the model's own seed and horizon:
            // the engine only ever sees an ordinary event list.
            try {
                config.scenario = res::generateScenario(
                    res::readFaultModelFile(value));
            } catch (const FatalError &err) {
                reader.fail(err.what());
            }
            config.faultModelFile = value;
        } else if (key == "checkpoint_interval_us") {
            config.checkpointIntervalUs =
                reader.nonNegativeDouble();
        } else if (key == "checkpoint_cost_us") {
            config.checkpointCostUs =
                reader.nonNegativeDouble();
        } else if (key == "restart_cost_us") {
            config.restartCostUs =
                reader.nonNegativeDouble();
        } else if (key == "checkpoint_global_interval_us") {
            config.checkpointGlobalIntervalUs =
                reader.nonNegativeDouble();
        } else if (key == "checkpoint_global_cost_us") {
            config.checkpointGlobalCostUs =
                reader.nonNegativeDouble();
        } else if (key == "restart_global_cost_us") {
            config.restartGlobalCostUs =
                reader.nonNegativeDouble();
        } else if (key == "restart_budget") {
            const std::int64_t budget =
                reader.nonNegativeInt();
            if (budget < 1) {
                reader.fail(
                    "key 'restart_budget' must be >= 1, got '",
                    value, "'");
            }
            config.restartBudget =
                static_cast<std::uint64_t>(budget);
        } else {
            reader.fail("unknown key '", key, "'");
        }
    }
    config.validate();
    return config;
}

PlatformConfig
readPlatformConfigFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open platform config '", path, "'");
    return readPlatformConfig(is, path);
}

void
writePlatformConfig(const PlatformConfig &config,
                    std::ostream &os)
{
    os << "name = " << config.name << "\n";
    os << "mips = " << strformat("%.17g", config.mipsOverride)
       << "\n";
    os << "cpu_ratio = " << strformat("%.17g", config.cpuRatio)
       << "\n";
    os << "cpus_per_node = " << config.cpusPerNode << "\n";
    os << "bandwidth_mbps = "
       << strformat("%.17g", config.bandwidthMBps) << "\n";
    os << "latency_us = "
       << strformat("%.17g", config.latencyUs) << "\n";
    os << "local_bandwidth_mbps = "
       << strformat("%.17g", config.localBandwidthMBps) << "\n";
    os << "local_latency_us = "
       << strformat("%.17g", config.localLatencyUs) << "\n";
    os << "buses = " << config.buses << "\n";
    os << "out_links_per_node = " << config.outLinksPerNode
       << "\n";
    os << "in_links_per_node = " << config.inLinksPerNode
       << "\n";
    os << "eager_threshold = " << config.eagerThreshold << "\n";
    os << "force_eager_isend = "
       << (config.forceEagerIsend ? "true" : "false") << "\n";
    os << "rendezvous_overhead_us = "
       << strformat("%.17g", config.rendezvousOverheadUs)
       << "\n";
    os << "collective_latency_factor = "
       << strformat("%.17g", config.collectives.latencyFactor)
       << "\n";
    os << "collective_bandwidth_factor = "
       << strformat("%.17g",
                    config.collectives.bandwidthFactor)
       << "\n";
    os << "collective_model = "
       << coll::collectiveModelName(config.collectiveModel)
       << "\n";
    for (std::size_t i = 0; i < coll::collOpCount; ++i) {
        const auto algorithm = config.collectiveAlgorithms.byOp[i];
        if (algorithm == coll::Algorithm::automatic)
            continue;
        os << "collective_algorithm_"
           << trace::collOpName(static_cast<trace::CollOp>(i))
           << " = " << coll::algorithmName(algorithm) << "\n";
    }
    const auto &topo = config.topology;
    os << "topology = " << net::topologyKindName(topo.kind)
       << "\n";
    os << "fat_tree_radix = " << topo.fatTreeRadix << "\n";
    os << "fat_tree_taper = "
       << strformat("%.17g", topo.fatTreeTaper) << "\n";
    if (!topo.torusDims.empty()) {
        os << "torus_dims = " << torusDimsToString(topo.torusDims)
           << "\n";
    }
    os << "torus_wrap = " << (topo.torusWrap ? "true" : "false")
       << "\n";
    os << "dragonfly_groups = " << topo.dragonflyGroups << "\n";
    os << "dragonfly_routers_per_group = "
       << topo.dragonflyRoutersPerGroup << "\n";
    os << "dragonfly_nodes_per_router = "
       << topo.dragonflyNodesPerRouter << "\n";
    if (topo.linkBandwidthMBps > 0.0) {
        os << "link_bandwidth_mbps = "
           << strformat("%.17g", topo.linkBandwidthMBps) << "\n";
    }
    os << "hop_latency_us = "
       << strformat("%.17g", topo.hopLatencyUs) << "\n";
    os << "checkpoint_interval_us = "
       << strformat("%.17g", config.checkpointIntervalUs) << "\n";
    os << "checkpoint_cost_us = "
       << strformat("%.17g", config.checkpointCostUs) << "\n";
    os << "restart_cost_us = "
       << strformat("%.17g", config.restartCostUs) << "\n";
    os << "checkpoint_global_interval_us = "
       << strformat("%.17g", config.checkpointGlobalIntervalUs)
       << "\n";
    os << "checkpoint_global_cost_us = "
       << strformat("%.17g", config.checkpointGlobalCostUs)
       << "\n";
    os << "restart_global_cost_us = "
       << strformat("%.17g", config.restartGlobalCostUs) << "\n";
    os << "restart_budget = " << config.restartBudget << "\n";
    // A scenario only round-trips when it came from a file (or was
    // expanded from a fault model file); emit programmatic configs
    // with writeScenario() first.
    if (!config.faultModelFile.empty()) {
        os << "fault_model_file = " << config.faultModelFile
           << "\n";
    } else if (!config.scenario.sourcePath.empty()) {
        os << "scenario_file = " << config.scenario.sourcePath
           << "\n";
    }
}

void
writePlatformConfigFile(const PlatformConfig &config,
                        const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '", path, "' for writing");
    writePlatformConfig(config, os);
    if (!os)
        fatal("error writing platform config to '", path, "'");
}

} // namespace ovlsim::sim
