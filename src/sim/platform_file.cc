#include "platform_file.hh"

#include <fstream>
#include <sstream>

#include "util/logging.hh"
#include "util/strings.hh"

namespace ovlsim::sim {

PlatformConfig
readPlatformConfig(std::istream &is)
{
    PlatformConfig config;
    std::string line;
    std::size_t line_no = 0;

    while (std::getline(is, line)) {
        ++line_no;
        const std::string text = trim(line);
        if (text.empty() || text[0] == '#')
            continue;
        const auto eq = text.find('=');
        if (eq == std::string::npos) {
            fatal("platform config line ", line_no,
                  ": expected 'key = value', got '", text, "'");
        }
        const std::string key = trim(text.substr(0, eq));
        const std::string value = trim(text.substr(eq + 1));

        if (key == "name") {
            config.name = value;
        } else if (key == "mips") {
            config.mipsOverride = parseDouble(value);
        } else if (key == "cpu_ratio") {
            config.cpuRatio = parseDouble(value);
        } else if (key == "cpus_per_node") {
            config.cpusPerNode =
                static_cast<int>(parseInt(value));
        } else if (key == "bandwidth_mbps") {
            config.bandwidthMBps = parseDouble(value);
        } else if (key == "latency_us") {
            config.latencyUs = parseDouble(value);
        } else if (key == "local_bandwidth_mbps") {
            config.localBandwidthMBps = parseDouble(value);
        } else if (key == "local_latency_us") {
            config.localLatencyUs = parseDouble(value);
        } else if (key == "buses") {
            config.buses = static_cast<int>(parseInt(value));
        } else if (key == "out_links_per_node") {
            config.outLinksPerNode =
                static_cast<int>(parseInt(value));
        } else if (key == "in_links_per_node") {
            config.inLinksPerNode =
                static_cast<int>(parseInt(value));
        } else if (key == "eager_threshold") {
            config.eagerThreshold =
                static_cast<Bytes>(parseInt(value));
        } else if (key == "force_eager_isend") {
            config.forceEagerIsend = parseBool(value);
        } else if (key == "rendezvous_overhead_us") {
            config.rendezvousOverheadUs = parseDouble(value);
        } else if (key == "collective_latency_factor") {
            config.collectives.latencyFactor =
                parseDouble(value);
        } else if (key == "collective_bandwidth_factor") {
            config.collectives.bandwidthFactor =
                parseDouble(value);
        } else {
            fatal("platform config line ", line_no,
                  ": unknown key '", key, "'");
        }
    }
    config.validate();
    return config;
}

PlatformConfig
readPlatformConfigFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open platform config '", path, "'");
    return readPlatformConfig(is);
}

void
writePlatformConfig(const PlatformConfig &config,
                    std::ostream &os)
{
    os << "name = " << config.name << "\n";
    os << "mips = " << strformat("%.17g", config.mipsOverride)
       << "\n";
    os << "cpu_ratio = " << strformat("%.17g", config.cpuRatio)
       << "\n";
    os << "cpus_per_node = " << config.cpusPerNode << "\n";
    os << "bandwidth_mbps = "
       << strformat("%.17g", config.bandwidthMBps) << "\n";
    os << "latency_us = "
       << strformat("%.17g", config.latencyUs) << "\n";
    os << "local_bandwidth_mbps = "
       << strformat("%.17g", config.localBandwidthMBps) << "\n";
    os << "local_latency_us = "
       << strformat("%.17g", config.localLatencyUs) << "\n";
    os << "buses = " << config.buses << "\n";
    os << "out_links_per_node = " << config.outLinksPerNode
       << "\n";
    os << "in_links_per_node = " << config.inLinksPerNode
       << "\n";
    os << "eager_threshold = " << config.eagerThreshold << "\n";
    os << "force_eager_isend = "
       << (config.forceEagerIsend ? "true" : "false") << "\n";
    os << "rendezvous_overhead_us = "
       << strformat("%.17g", config.rendezvousOverheadUs)
       << "\n";
    os << "collective_latency_factor = "
       << strformat("%.17g", config.collectives.latencyFactor)
       << "\n";
    os << "collective_bandwidth_factor = "
       << strformat("%.17g",
                    config.collectives.bandwidthFactor)
       << "\n";
}

void
writePlatformConfigFile(const PlatformConfig &config,
                        const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '", path, "' for writing");
    writePlatformConfig(config, os);
    if (!os)
        fatal("error writing platform config to '", path, "'");
}

} // namespace ovlsim::sim
