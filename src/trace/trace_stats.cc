#include "trace_stats.hh"

#include <sstream>

#include "util/strings.hh"

namespace ovlsim::trace {

double
TraceSetStats::avgMessageBytes() const
{
    if (totalMessages == 0)
        return 0.0;
    return static_cast<double>(totalBytes) /
        static_cast<double>(totalMessages);
}

std::string
TraceSetStats::toString() const
{
    std::ostringstream os;
    os << "ranks: " << perRank.size() << "\n";
    os << "total instructions: " << totalInstructions << "\n";
    os << "total p2p messages: " << totalMessages << "\n";
    os << "total p2p bytes: " << humanBytes(totalBytes) << "\n";
    os << "avg message size: "
       << humanBytes(static_cast<Bytes>(avgMessageBytes())) << "\n";
    os << "total collectives (rank-ops): " << totalCollectives
       << "\n";
    for (const auto &rs : perRank) {
        os << strformat(
            "  rank %3d: %12llu instr, %6zu sends (%s), %6zu recvs "
            "(%s), %4zu colls\n",
            rs.rank,
            static_cast<unsigned long long>(rs.instructions),
            rs.sends, humanBytes(rs.sentBytes).c_str(), rs.recvs,
            humanBytes(rs.receivedBytes).c_str(), rs.collectives);
    }
    return os.str();
}

TraceSetStats
computeTraceStats(const TraceSet &traces)
{
    TraceSetStats stats;
    stats.perRank.reserve(static_cast<std::size_t>(traces.ranks()));

    for (const auto &rt : traces.all()) {
        RankTraceStats rs;
        rs.rank = rt.rank();
        for (const auto &rec : rt.records()) {
            if (const auto *burst = std::get_if<CpuBurst>(&rec)) {
                rs.instructions += burst->instructions;
            } else if (const auto *s = std::get_if<SendRec>(&rec)) {
                ++rs.sends;
                rs.sentBytes += s->bytes;
                stats.commMatrix[{rt.rank(), s->dst}] += s->bytes;
            } else if (const auto *is_ =
                           std::get_if<ISendRec>(&rec)) {
                ++rs.sends;
                rs.sentBytes += is_->bytes;
                stats.commMatrix[{rt.rank(), is_->dst}] +=
                    is_->bytes;
            } else if (const auto *r = std::get_if<RecvRec>(&rec)) {
                ++rs.recvs;
                rs.receivedBytes += r->bytes;
            } else if (const auto *ir =
                           std::get_if<IRecvRec>(&rec)) {
                ++rs.recvs;
                rs.receivedBytes += ir->bytes;
            } else if (std::holds_alternative<CollectiveRec>(rec)) {
                ++rs.collectives;
            }
        }
        stats.totalInstructions += rs.instructions;
        stats.totalMessages += rs.sends;
        stats.totalBytes += rs.sentBytes;
        stats.totalCollectives += rs.collectives;
        stats.perRank.push_back(rs);
    }
    return stats;
}

} // namespace ovlsim::trace
