/**
 * @file
 * Trace record model.
 *
 * A trace is, per rank, a sequence of records of two families, exactly
 * as in the paper's Dimemas traces:
 *  - computation records giving the length of a computation burst in
 *    *instructions* (converted to time by the platform's MIPS rate
 *    only at replay), and
 *  - communication records giving the parameters of MPI operations.
 *
 * Point-to-point records carry a `messageId` that links both sides of
 * a transfer and keys the overlap metadata (production/consumption
 * profiles) recorded by the tracing tool.
 */

#ifndef OVLSIM_TRACE_RECORD_HH
#define OVLSIM_TRACE_RECORD_HH

#include <cstdint>
#include <string>
#include <variant>

#include "util/logging.hh"
#include "util/types.hh"

namespace ovlsim::trace {

/** Identifier linking the two endpoints of one application message. */
using MessageId = std::uint64_t;

/** Sentinel for "not yet linked" message ids. */
inline constexpr MessageId invalidMessageId = 0;

/** Request handle for non-blocking operations, unique per rank. */
using RequestId = std::uint64_t;

/**
 * A point-to-point channel (src, dst, tag) packed into one 64-bit
 * key: 17 bits per rank endpoint and 30 bits of tag. Packing keeps
 * channel identity a single integer compare/hash on the engine's
 * matching fast path instead of a lexicographic tuple walk. The
 * packing is exact (no hashing), so distinct channels can never
 * collide; the range limits are asserted (128K ranks, and the tag
 * limit matches the overlap transform's own 1<<30 chunk-tag ceiling).
 */
using ChannelKey = std::uint64_t;

inline constexpr int channelRankBits = 17;
inline constexpr int channelTagBits = 30;

inline ChannelKey
channelKey(Rank src, Rank dst, Tag tag)
{
    ovlAssert(src >= 0 && src < (Rank(1) << channelRankBits),
              "channel src rank out of range: ", src);
    ovlAssert(dst >= 0 && dst < (Rank(1) << channelRankBits),
              "channel dst rank out of range: ", dst);
    ovlAssert(tag >= 0 && tag < (Tag(1) << channelTagBits),
              "channel tag out of range: ", tag);
    return (static_cast<ChannelKey>(src)
            << (channelRankBits + channelTagBits)) |
        (static_cast<ChannelKey>(dst) << channelTagBits) |
        static_cast<ChannelKey>(tag);
}

/**
 * Exact inverses of channelKey's packing. The replay-program
 * compiler stores only the packed key per point-to-point op; these
 * recover the endpoints and tag for replay (node lookups, results)
 * and decoding.
 */
inline constexpr Rank
channelSrcOf(ChannelKey key)
{
    return static_cast<Rank>(key >>
                             (channelRankBits + channelTagBits));
}

inline constexpr Rank
channelDstOf(ChannelKey key)
{
    return static_cast<Rank>(
        (key >> channelTagBits) &
        ((ChannelKey(1) << channelRankBits) - 1));
}

inline constexpr Tag
channelTagOf(ChannelKey key)
{
    return static_cast<Tag>(key &
                            ((ChannelKey(1) << channelTagBits) - 1));
}

/** Collective operations supported by the replay engine. */
enum class CollOp : std::uint8_t {
    barrier,
    broadcast,
    reduce,
    allReduce,
    gather,
    allGather,
    scatter,
    allToAll,
};

/** Name of a collective op, for serialization and reports. */
const char *collOpName(CollOp op);

/** Parse a collective op name; throws FatalError on garbage. */
CollOp collOpFromName(const std::string &name);

/** A computation burst of `instructions` virtual instructions. */
struct CpuBurst
{
    Instr instructions = 0;
};

/** Blocking send of one message. */
struct SendRec
{
    Rank dst = 0;
    Tag tag = 0;
    Bytes bytes = 0;
    MessageId message = invalidMessageId;
};

/** Non-blocking send; completes at Wait/WaitAll on `request`. */
struct ISendRec
{
    Rank dst = 0;
    Tag tag = 0;
    Bytes bytes = 0;
    MessageId message = invalidMessageId;
    RequestId request = 0;
};

/** Blocking receive of one message. */
struct RecvRec
{
    Rank src = 0;
    Tag tag = 0;
    Bytes bytes = 0;
    MessageId message = invalidMessageId;
};

/** Non-blocking receive post; completes at Wait/WaitAll. */
struct IRecvRec
{
    Rank src = 0;
    Tag tag = 0;
    Bytes bytes = 0;
    MessageId message = invalidMessageId;
    RequestId request = 0;
};

/** Wait for a single outstanding request. */
struct WaitRec
{
    RequestId request = 0;
};

/** Wait for all outstanding requests of this rank. */
struct WaitAllRec
{
};

/** Collective over COMM_WORLD. */
struct CollectiveRec
{
    CollOp op = CollOp::barrier;
    Bytes sendBytes = 0;
    Bytes recvBytes = 0;
    Rank root = 0;
};

/** One trace record. */
using Record = std::variant<CpuBurst, SendRec, ISendRec, RecvRec,
                            IRecvRec, WaitRec, WaitAllRec,
                            CollectiveRec>;

/**
 * Dense record discriminator, numerically equal to the Record
 * variant index (static-asserted where both are consumed). The
 * replay-program compiler lowers each record to this one-byte kind
 * plus a packed operand slot.
 */
enum class RecordKind : std::uint8_t {
    burst = 0,
    send = 1,
    isend = 2,
    recv = 3,
    irecv = 4,
    wait = 5,
    waitAll = 6,
    collective = 7,
};

inline RecordKind
recordKind(const Record &rec)
{
    return static_cast<RecordKind>(rec.index());
}

/** True if the record is an MPI (non-computation) record. */
bool isCommRecord(const Record &rec);

/**
 * True if the record can block the issuing rank (used to delimit the
 * production/consumption windows of the overlap transformation).
 */
bool isBlockingRecord(const Record &rec);

/** One-line human-readable rendering, used by dumps and tests. */
std::string recordToString(const Record &rec);

} // namespace ovlsim::trace

#endif // OVLSIM_TRACE_RECORD_HH
