#include "record.hh"

#include "util/logging.hh"
#include "util/strings.hh"

namespace ovlsim::trace {

const char *
collOpName(CollOp op)
{
    switch (op) {
      case CollOp::barrier: return "barrier";
      case CollOp::broadcast: return "broadcast";
      case CollOp::reduce: return "reduce";
      case CollOp::allReduce: return "allreduce";
      case CollOp::gather: return "gather";
      case CollOp::allGather: return "allgather";
      case CollOp::scatter: return "scatter";
      case CollOp::allToAll: return "alltoall";
    }
    panic("collOpName: bad CollOp value");
}

CollOp
collOpFromName(const std::string &name)
{
    const std::string s = toLower(name);
    if (s == "barrier") return CollOp::barrier;
    if (s == "broadcast" || s == "bcast") return CollOp::broadcast;
    if (s == "reduce") return CollOp::reduce;
    if (s == "allreduce") return CollOp::allReduce;
    if (s == "gather") return CollOp::gather;
    if (s == "allgather") return CollOp::allGather;
    if (s == "scatter") return CollOp::scatter;
    if (s == "alltoall") return CollOp::allToAll;
    fatal("unknown collective op '", name, "'");
}

bool
isCommRecord(const Record &rec)
{
    return !std::holds_alternative<CpuBurst>(rec);
}

bool
isBlockingRecord(const Record &rec)
{
    return std::holds_alternative<SendRec>(rec) ||
        std::holds_alternative<RecvRec>(rec) ||
        std::holds_alternative<WaitRec>(rec) ||
        std::holds_alternative<WaitAllRec>(rec) ||
        std::holds_alternative<CollectiveRec>(rec);
}

namespace {

struct ToStringVisitor
{
    std::string
    operator()(const CpuBurst &r) const
    {
        return strformat("cpu %llu",
                         static_cast<unsigned long long>(
                             r.instructions));
    }
    std::string
    operator()(const SendRec &r) const
    {
        return strformat("send dst=%d tag=%d bytes=%llu msg=%llu",
                         r.dst, r.tag,
                         static_cast<unsigned long long>(r.bytes),
                         static_cast<unsigned long long>(r.message));
    }
    std::string
    operator()(const ISendRec &r) const
    {
        return strformat(
            "isend dst=%d tag=%d bytes=%llu msg=%llu req=%llu",
            r.dst, r.tag,
            static_cast<unsigned long long>(r.bytes),
            static_cast<unsigned long long>(r.message),
            static_cast<unsigned long long>(r.request));
    }
    std::string
    operator()(const RecvRec &r) const
    {
        return strformat("recv src=%d tag=%d bytes=%llu msg=%llu",
                         r.src, r.tag,
                         static_cast<unsigned long long>(r.bytes),
                         static_cast<unsigned long long>(r.message));
    }
    std::string
    operator()(const IRecvRec &r) const
    {
        return strformat(
            "irecv src=%d tag=%d bytes=%llu msg=%llu req=%llu",
            r.src, r.tag,
            static_cast<unsigned long long>(r.bytes),
            static_cast<unsigned long long>(r.message),
            static_cast<unsigned long long>(r.request));
    }
    std::string
    operator()(const WaitRec &r) const
    {
        return strformat("wait req=%llu",
                         static_cast<unsigned long long>(r.request));
    }
    std::string operator()(const WaitAllRec &) const
    {
        return "waitall";
    }
    std::string
    operator()(const CollectiveRec &r) const
    {
        return strformat("%s send=%llu recv=%llu root=%d",
                         collOpName(r.op),
                         static_cast<unsigned long long>(r.sendBytes),
                         static_cast<unsigned long long>(r.recvBytes),
                         r.root);
    }
};

} // namespace

std::string
recordToString(const Record &rec)
{
    return std::visit(ToStringVisitor{}, rec);
}

} // namespace ovlsim::trace
