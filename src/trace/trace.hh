/**
 * @file
 * Per-rank traces and whole-application trace sets.
 */

#ifndef OVLSIM_TRACE_TRACE_HH
#define OVLSIM_TRACE_TRACE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "trace/record.hh"
#include "util/types.hh"

namespace ovlsim::trace {

/**
 * The ordered record stream of one simulated process.
 */
class RankTrace
{
  public:
    RankTrace() = default;
    explicit RankTrace(Rank rank) : rank_(rank) {}

    Rank rank() const { return rank_; }
    void setRank(Rank rank) { rank_ = rank; }

    /** Append a record at the end of the stream. */
    void
    append(Record rec)
    {
        records_.push_back(std::move(rec));
    }

    const std::vector<Record> &records() const { return records_; }
    std::vector<Record> &records() { return records_; }

    std::size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }

    /** Sum of all computation-burst instruction counts. */
    Instr totalInstructions() const;

    /** Number of communication (non-burst) records. */
    std::size_t commRecordCount() const;

  private:
    Rank rank_ = 0;
    std::vector<Record> records_;
};

/**
 * The complete trace of one application run: one RankTrace per
 * process plus the metadata needed to replay it (application name and
 * the MIPS rate observed in the real run, which converts instruction
 * counts into time on the nominal platform).
 */
class TraceSet
{
  public:
    TraceSet() = default;

    /** Create an empty trace set with `ranks` empty rank traces. */
    TraceSet(std::string name, int ranks, double mips = 1000.0);

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /** MIPS rate observed in the traced run (instructions / us). */
    double mips() const { return mips_; }
    void setMips(double mips) { mips_ = mips; }

    int ranks() const { return static_cast<int>(ranks_.size()); }

    const RankTrace &rankTrace(Rank r) const;
    RankTrace &rankTrace(Rank r);

    const std::vector<RankTrace> &all() const { return ranks_; }
    std::vector<RankTrace> &all() { return ranks_; }

    /** Total records across all ranks. */
    std::size_t totalRecords() const;

    /** Total point-to-point payload bytes (counted on send side). */
    Bytes totalSentBytes() const;

    /** Total point-to-point message count (send side). */
    std::size_t totalMessages() const;

  private:
    std::string name_ = "unnamed";
    double mips_ = 1000.0;
    std::vector<RankTrace> ranks_;
};

} // namespace ovlsim::trace

#endif // OVLSIM_TRACE_TRACE_HH
