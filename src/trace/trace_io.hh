/**
 * @file
 * Text serialization of trace sets and overlap metadata.
 *
 * The format plays the role of Dimemas' trace files in the paper's
 * environment: the tracer writes them, the replay simulator (and any
 * external tool) reads them back. The format is line-oriented and
 * stable:
 *
 *   #OVLSIM-TRACE 1
 *   name <application name>
 *   mips <double>
 *   ranks <n>
 *   rank <r>
 *   c <instr>
 *   s  <dst> <tag> <bytes> <msgid>
 *   is <dst> <tag> <bytes> <msgid> <req>
 *   r  <src> <tag> <bytes> <msgid>
 *   ir <src> <tag> <bytes> <msgid> <req>
 *   w  <req>
 *   wa
 *   g <op> <sendbytes> <recvbytes> <root>
 *
 * and for overlap metadata:
 *
 *   #OVLSIM-OVERLAP 1
 *   msg  <id> <src> <dst> <tag> <bytes> <sendI> <recvI> <pBegin>
 *        <cEnd> <blockBytes>
 *   prod <id> <n> <p0> ... <pn-1>
 *   cons <id> <n> <c0> ... <cn-1>
 */

#ifndef OVLSIM_TRACE_TRACE_IO_HH
#define OVLSIM_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "trace/overlap_info.hh"
#include "trace/trace.hh"

namespace ovlsim::trace {

/** Serialize a trace set to a stream. */
void writeTraceText(const TraceSet &traces, std::ostream &os);

/** Serialize a trace set to a file; throws FatalError on IO error. */
void writeTraceFile(const TraceSet &traces, const std::string &path);

/** Parse a trace set from a stream; throws FatalError on bad input. */
TraceSet readTraceText(std::istream &is);

/** Parse a trace set from a file; throws FatalError on IO error. */
TraceSet readTraceFile(const std::string &path);

/** Serialize overlap metadata to a stream. */
void writeOverlapText(const OverlapSet &overlap, std::ostream &os);

/** Serialize overlap metadata to a file. */
void writeOverlapFile(const OverlapSet &overlap,
                      const std::string &path);

/** Parse overlap metadata from a stream. */
OverlapSet readOverlapText(std::istream &is);

/** Parse overlap metadata from a file. */
OverlapSet readOverlapFile(const std::string &path);

} // namespace ovlsim::trace

#endif // OVLSIM_TRACE_TRACE_IO_HH
