#include "overlap_info.hh"

#include "util/logging.hh"

namespace ovlsim::trace {

void
OverlapSet::add(MessageOverlapInfo info)
{
    ovlAssert(info.id != invalidMessageId,
              "overlap info needs a valid message id");
    ovlAssert(!infos_.count(info.id),
              "duplicate overlap info for message ", info.id);
    infos_.emplace(info.id, std::move(info));
}

const MessageOverlapInfo &
OverlapSet::get(MessageId id) const
{
    const auto it = infos_.find(id);
    if (it == infos_.end())
        panic("no overlap info for message ", id);
    return it->second;
}

MessageOverlapInfo &
OverlapSet::getMutable(MessageId id)
{
    const auto it = infos_.find(id);
    if (it == infos_.end())
        panic("no overlap info for message ", id);
    return it->second;
}

} // namespace ovlsim::trace
