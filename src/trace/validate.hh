/**
 * @file
 * Structural validation of trace sets.
 *
 * Replaying a malformed trace (unmatched sends, reused requests,
 * mismatched collectives) would deadlock the simulator, so every
 * trace passes through this validator before replay; the tracer also
 * uses it as a self-check on freshly generated traces.
 */

#ifndef OVLSIM_TRACE_VALIDATE_HH
#define OVLSIM_TRACE_VALIDATE_HH

#include <string>
#include <vector>

#include "trace/trace.hh"

namespace ovlsim::trace {

/** Result of validating a trace set. */
struct ValidationReport
{
    /** Human-readable problems; empty means the trace is valid. */
    std::vector<std::string> issues;

    bool valid() const { return issues.empty(); }

    /** All issues joined into one newline-separated string. */
    std::string toString() const;
};

/**
 * Validate a trace set.
 *
 * Checks, per rank: request ids are unique and non-zero, every Wait
 * references a live request, every non-blocking operation is
 * eventually completed by a Wait or WaitAll, and no point-to-point
 * record uses the anyRank/anyTag wildcard sentinels (the replay
 * engine has no wildcard matching and rejects such traces).
 *
 * Checks, across ranks: on every (src, dst, tag) channel the
 * send-side and receive-side byte sequences agree element-wise (FIFO
 * matching), and all ranks execute an identical sequence of
 * collectives.
 */
ValidationReport validateTraceSet(const TraceSet &traces);

} // namespace ovlsim::trace

#endif // OVLSIM_TRACE_VALIDATE_HH
