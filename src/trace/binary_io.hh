/**
 * @file
 * Binary serialization of trace sets and overlap metadata.
 *
 * The text format (trace_io.hh) is the interchange format; this
 * binary format is the fast path for large traces (fixed-width
 * little-endian fields, one fwrite-friendly stream, ~10x smaller and
 * faster to parse). Both formats are lossless and interchangeable.
 *
 * Layout (all integers little-endian):
 *   magic "OVLB" | u32 version | u32 name length | name bytes
 *   | f64 mips | u32 ranks
 *   per rank: u32 rank | u64 record count | records
 *   record: u8 kind | kind-specific fixed-width fields
 */

#ifndef OVLSIM_TRACE_BINARY_IO_HH
#define OVLSIM_TRACE_BINARY_IO_HH

#include <iosfwd>
#include <string>

#include "trace/overlap_info.hh"
#include "trace/trace.hh"

namespace ovlsim::trace {

/** Serialize a trace set to a binary stream. */
void writeTraceBinary(const TraceSet &traces, std::ostream &os);

/** Serialize a trace set to a binary file. */
void writeTraceBinaryFile(const TraceSet &traces,
                          const std::string &path);

/** Parse a binary trace stream; throws FatalError on bad input. */
TraceSet readTraceBinary(std::istream &is);

/** Parse a binary trace file. */
TraceSet readTraceBinaryFile(const std::string &path);

/** Serialize overlap metadata to a binary stream. */
void writeOverlapBinary(const OverlapSet &overlap,
                        std::ostream &os);

/** Serialize overlap metadata to a binary file. */
void writeOverlapBinaryFile(const OverlapSet &overlap,
                            const std::string &path);

/** Parse binary overlap metadata. */
OverlapSet readOverlapBinary(std::istream &is);

/** Parse a binary overlap file. */
OverlapSet readOverlapBinaryFile(const std::string &path);

} // namespace ovlsim::trace

#endif // OVLSIM_TRACE_BINARY_IO_HH
