#include "trace.hh"

#include "util/logging.hh"

namespace ovlsim::trace {

Instr
RankTrace::totalInstructions() const
{
    Instr total = 0;
    for (const auto &rec : records_) {
        if (const auto *burst = std::get_if<CpuBurst>(&rec))
            total += burst->instructions;
    }
    return total;
}

std::size_t
RankTrace::commRecordCount() const
{
    std::size_t count = 0;
    for (const auto &rec : records_)
        count += isCommRecord(rec) ? 1 : 0;
    return count;
}

TraceSet::TraceSet(std::string name, int ranks, double mips)
    : name_(std::move(name)), mips_(mips)
{
    ovlAssert(ranks > 0, "TraceSet needs at least one rank");
    ovlAssert(mips > 0.0, "TraceSet MIPS rate must be positive");
    ranks_.reserve(static_cast<std::size_t>(ranks));
    for (Rank r = 0; r < ranks; ++r)
        ranks_.emplace_back(r);
}

const RankTrace &
TraceSet::rankTrace(Rank r) const
{
    ovlAssert(r >= 0 && r < ranks(), "rank ", r, " out of range");
    return ranks_[static_cast<std::size_t>(r)];
}

RankTrace &
TraceSet::rankTrace(Rank r)
{
    ovlAssert(r >= 0 && r < ranks(), "rank ", r, " out of range");
    return ranks_[static_cast<std::size_t>(r)];
}

std::size_t
TraceSet::totalRecords() const
{
    std::size_t total = 0;
    for (const auto &rt : ranks_)
        total += rt.size();
    return total;
}

Bytes
TraceSet::totalSentBytes() const
{
    Bytes total = 0;
    for (const auto &rt : ranks_) {
        for (const auto &rec : rt.records()) {
            if (const auto *s = std::get_if<SendRec>(&rec))
                total += s->bytes;
            else if (const auto *is = std::get_if<ISendRec>(&rec))
                total += is->bytes;
        }
    }
    return total;
}

std::size_t
TraceSet::totalMessages() const
{
    std::size_t total = 0;
    for (const auto &rt : ranks_) {
        for (const auto &rec : rt.records()) {
            if (std::holds_alternative<SendRec>(rec) ||
                std::holds_alternative<ISendRec>(rec)) {
                ++total;
            }
        }
    }
    return total;
}

} // namespace ovlsim::trace
