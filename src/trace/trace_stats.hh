/**
 * @file
 * Aggregate statistics over a trace set, used in reports and tests.
 */

#ifndef OVLSIM_TRACE_TRACE_STATS_HH
#define OVLSIM_TRACE_TRACE_STATS_HH

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "trace/trace.hh"
#include "util/types.hh"

namespace ovlsim::trace {

/** Per-rank trace summary. */
struct RankTraceStats
{
    Rank rank = 0;
    Instr instructions = 0;
    std::size_t sends = 0;
    std::size_t recvs = 0;
    std::size_t collectives = 0;
    Bytes sentBytes = 0;
    Bytes receivedBytes = 0;
};

/** Whole trace-set summary. */
struct TraceSetStats
{
    std::vector<RankTraceStats> perRank;
    /** (src, dst) -> total bytes, over all tags. */
    std::map<std::pair<Rank, Rank>, Bytes> commMatrix;
    Instr totalInstructions = 0;
    std::size_t totalMessages = 0;
    Bytes totalBytes = 0;
    std::size_t totalCollectives = 0;

    /** Mean point-to-point message size (0 when no messages). */
    double avgMessageBytes() const;

    /** Multi-line human-readable rendering. */
    std::string toString() const;
};

/** Compute statistics for a trace set. */
TraceSetStats computeTraceStats(const TraceSet &traces);

} // namespace ovlsim::trace

#endif // OVLSIM_TRACE_TRACE_STATS_HH
