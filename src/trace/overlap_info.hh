/**
 * @file
 * Overlap metadata recorded by the tracing tool.
 *
 * For every point-to-point message the tracer measures, at a fixed
 * block granularity, *when* (in absolute instructions on the owning
 * rank's timeline) each block of the payload was last stored before
 * the send (production) and first loaded after the receive
 * (consumption). The overlap transformation later aggregates blocks
 * into chunks and injects partial transfers at these instants — this
 * is precisely the information the paper's Valgrind tool extracts by
 * tracking memory loads and stores.
 */

#ifndef OVLSIM_TRACE_OVERLAP_INFO_HH
#define OVLSIM_TRACE_OVERLAP_INFO_HH

#include <cstddef>
#include <map>
#include <vector>

#include "trace/record.hh"
#include "util/types.hh"

namespace ovlsim::trace {

/**
 * Production/consumption profile of one application message.
 *
 * Instruction positions are absolute on the owning rank's
 * computation-instruction timeline (the running sum of CpuBurst
 * lengths at the point of interest).
 */
struct MessageOverlapInfo
{
    MessageId id = invalidMessageId;
    Rank src = 0;
    Rank dst = 0;
    Tag tag = 0;
    Bytes bytes = 0;

    /** Absolute instr position of the Send record on the sender. */
    Instr sendInstr = 0;
    /** Absolute instr position of the Recv record on the receiver. */
    Instr recvInstr = 0;

    /**
     * Earliest instr at which partial sends may be injected: the
     * position of the previous blocking MPI record on the sender.
     */
    Instr prodWindowBegin = 0;
    /**
     * Latest instr at which partial waits may be placed: the position
     * of the next blocking MPI record on the receiver.
     */
    Instr consWindowEnd = 0;

    /** Payload bytes covered by one profile block. */
    Bytes blockBytes = 0;

    /**
     * Per block, absolute instr of the last store before the send.
     * Blocks never stored inside the window report prodWindowBegin
     * (the data was ready when the window opened).
     */
    std::vector<Instr> blockLastStore;

    /**
     * Per block, absolute instr of the first load after the recv.
     * Blocks never loaded report consWindowEnd (their wait can be
     * deferred to the end of the window).
     */
    std::vector<Instr> blockFirstLoad;

    /** Number of profile blocks. */
    std::size_t blocks() const { return blockLastStore.size(); }
};

/**
 * All per-message overlap profiles of one traced run, keyed by
 * MessageId.
 */
class OverlapSet
{
  public:
    /** Insert a profile; the id must be fresh. */
    void add(MessageOverlapInfo info);

    /** True if a profile exists for the message. */
    bool contains(MessageId id) const { return infos_.count(id) > 0; }

    /** Profile for a message; throws PanicError if missing. */
    const MessageOverlapInfo &get(MessageId id) const;

    /** Mutable profile access (used by the trace linker). */
    MessageOverlapInfo &getMutable(MessageId id);

    std::size_t size() const { return infos_.size(); }

    const std::map<MessageId, MessageOverlapInfo> &
    all() const
    {
        return infos_;
    }

  private:
    std::map<MessageId, MessageOverlapInfo> infos_;
};

} // namespace ovlsim::trace

#endif // OVLSIM_TRACE_OVERLAP_INFO_HH
