/**
 * @file
 * Trace linker: pairs the two endpoints of every message.
 *
 * The tracer runs each rank's virtual machine independently, so the
 * sender and receiver of one application message initially carry
 * private provisional ids. The linker matches sends to receives in
 * FIFO order per (src, dst, tag) channel — MPI's non-overtaking rule
 * — assigns a shared MessageId to both records, and fuses the
 * sender-side production profile with the receiver-side consumption
 * profile into a single MessageOverlapInfo.
 */

#ifndef OVLSIM_TRACE_LINK_HH
#define OVLSIM_TRACE_LINK_HH

#include <cstddef>

#include "trace/overlap_info.hh"
#include "trace/trace.hh"

namespace ovlsim::trace {

/** Outcome of linking a trace set. */
struct LinkResult
{
    /** Number of messages successfully paired. */
    std::size_t linkedMessages = 0;
};

/**
 * Link all point-to-point records in `traces` in place, rewriting
 * their `message` fields with fresh shared ids (1-based, dense).
 *
 * @param traces trace set to link; message ids are overwritten
 * @param sender_infos per-provisional-id sender-side profiles keyed
 *     by the provisional id found in the send records, or nullptr
 * @param receiver_infos like sender_infos, for receive records
 * @param merged output overlap set receiving fused profiles; may be
 *     nullptr when only id assignment is wanted
 *
 * @return link statistics
 *
 * Throws FatalError if any channel has unmatched sends or receives
 * or mismatched message sizes.
 */
LinkResult linkTraceSet(TraceSet &traces,
                        const OverlapSet *sender_infos,
                        const OverlapSet *receiver_infos,
                        OverlapSet *merged);

} // namespace ovlsim::trace

#endif // OVLSIM_TRACE_LINK_HH
