#include "link.hh"

#include <deque>
#include <map>
#include <tuple>

#include "util/logging.hh"
#include "util/strings.hh"

namespace ovlsim::trace {

namespace {

/** Pointer to one endpoint record awaiting its partner. */
struct Endpoint
{
    Bytes bytes = 0;
    MessageId provisional = invalidMessageId;
    MessageId *slot = nullptr;
};

using Channel = std::tuple<Rank, Rank, Tag>;

} // namespace

LinkResult
linkTraceSet(TraceSet &traces, const OverlapSet *sender_infos,
             const OverlapSet *receiver_infos, OverlapSet *merged)
{
    std::map<Channel, std::deque<Endpoint>> pending_sends;
    std::map<Channel, std::deque<Endpoint>> pending_recvs;

    // Collect endpoints in per-rank program order, which is exactly
    // the FIFO order MPI guarantees per channel.
    for (auto &rt : traces.all()) {
        const Rank rank = rt.rank();
        for (auto &rec : rt.records()) {
            if (auto *s = std::get_if<SendRec>(&rec)) {
                pending_sends[{rank, s->dst, s->tag}].push_back(
                    Endpoint{s->bytes, s->message, &s->message});
            } else if (auto *is_ = std::get_if<ISendRec>(&rec)) {
                pending_sends[{rank, is_->dst, is_->tag}].push_back(
                    Endpoint{is_->bytes, is_->message,
                             &is_->message});
            } else if (auto *r = std::get_if<RecvRec>(&rec)) {
                pending_recvs[{r->src, rank, r->tag}].push_back(
                    Endpoint{r->bytes, r->message, &r->message});
            } else if (auto *ir = std::get_if<IRecvRec>(&rec)) {
                pending_recvs[{ir->src, rank, ir->tag}].push_back(
                    Endpoint{ir->bytes, ir->message, &ir->message});
            }
        }
    }

    LinkResult result;
    MessageId next_id = 1;

    for (auto &[channel, sends] : pending_sends) {
        const auto &[src, dst, tag] = channel;
        auto rit = pending_recvs.find(channel);
        if (rit == pending_recvs.end()) {
            fatal("link: channel ", src, "->", dst, " tag ", tag,
                  " has sends but no receives");
        }
        auto &recvs = rit->second;
        if (sends.size() != recvs.size()) {
            fatal("link: channel ", src, "->", dst, " tag ", tag,
                  " has ", sends.size(), " sends but ",
                  recvs.size(), " receives");
        }
        for (std::size_t k = 0; k < sends.size(); ++k) {
            Endpoint &se = sends[k];
            Endpoint &re = recvs[k];
            if (se.bytes != re.bytes) {
                fatal("link: channel ", src, "->", dst, " tag ",
                      tag, " message ", k, ": send of ", se.bytes,
                      " bytes matched with recv of ", re.bytes,
                      " bytes");
            }
            const MessageId id = next_id++;
            *se.slot = id;
            *re.slot = id;
            ++result.linkedMessages;

            if (merged != nullptr) {
                MessageOverlapInfo info;
                info.id = id;
                info.src = src;
                info.dst = dst;
                info.tag = tag;
                info.bytes = se.bytes;

                if (sender_infos != nullptr &&
                    sender_infos->contains(se.provisional)) {
                    const auto &sp =
                        sender_infos->get(se.provisional);
                    info.sendInstr = sp.sendInstr;
                    info.prodWindowBegin = sp.prodWindowBegin;
                    info.blockBytes = sp.blockBytes;
                    info.blockLastStore = sp.blockLastStore;
                }
                if (receiver_infos != nullptr &&
                    receiver_infos->contains(re.provisional)) {
                    const auto &rp =
                        receiver_infos->get(re.provisional);
                    info.recvInstr = rp.recvInstr;
                    info.consWindowEnd = rp.consWindowEnd;
                    info.blockFirstLoad = rp.blockFirstLoad;
                    if (info.blockBytes == 0)
                        info.blockBytes = rp.blockBytes;
                }
                merged->add(std::move(info));
            }
        }
        recvs.clear();
    }

    for (const auto &[channel, recvs] : pending_recvs) {
        if (!recvs.empty()) {
            const auto &[src, dst, tag] = channel;
            fatal("link: channel ", src, "->", dst, " tag ", tag,
                  " has ", recvs.size(), " receives but no sends");
        }
    }

    return result;
}

} // namespace ovlsim::trace
