#include "validate.hh"

#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "util/strings.hh"

namespace ovlsim::trace {

namespace {

using Channel = std::tuple<Rank, Rank, Tag>;

struct ChannelFlow
{
    std::vector<Bytes> sendBytes;
    std::vector<Bytes> recvBytes;
};

} // namespace

std::string
ValidationReport::toString() const
{
    std::ostringstream os;
    for (const auto &issue : issues)
        os << issue << "\n";
    return os.str();
}

ValidationReport
validateTraceSet(const TraceSet &traces)
{
    ValidationReport report;
    auto issue = [&report](const std::string &msg) {
        report.issues.push_back(msg);
    };

    std::map<Channel, ChannelFlow> channels;
    std::vector<std::vector<std::string>> collectives(
        static_cast<std::size_t>(traces.ranks()));

    for (const auto &rt : traces.all()) {
        const Rank rank = rt.rank();
        std::set<RequestId> live;
        std::set<RequestId> used;

        for (std::size_t i = 0; i < rt.records().size(); ++i) {
            const auto &rec = rt.records()[i];

            // The replay engine has no wildcard matching; flag the
            // anyRank/anyTag sentinels explicitly (replay would
            // otherwise reject them with a less precise FatalError).
            const auto flagWildcards = [&](const char *what,
                                           Rank peer, Tag tag) {
                if (peer == anyRank) {
                    issue(strformat(
                        "rank %d record %zu: %s uses the anyRank "
                        "wildcard; wildcard matching is unsupported",
                        rank, i, what));
                }
                if (tag == anyTag) {
                    issue(strformat(
                        "rank %d record %zu: %s uses the anyTag "
                        "wildcard; wildcard matching is unsupported",
                        rank, i, what));
                }
            };

            if (const auto *s = std::get_if<SendRec>(&rec)) {
                flagWildcards("send", s->dst, s->tag);
                if (s->dst == anyRank || s->tag == anyTag)
                    continue;
                if (s->dst < 0 || s->dst >= traces.ranks()) {
                    issue(strformat(
                        "rank %d record %zu: send to invalid rank %d",
                        rank, i, s->dst));
                    continue;
                }
                channels[{rank, s->dst, s->tag}].sendBytes.push_back(
                    s->bytes);
            } else if (const auto *is_ = std::get_if<ISendRec>(&rec)) {
                flagWildcards("isend", is_->dst, is_->tag);
                if (is_->dst == anyRank || is_->tag == anyTag)
                    continue;
                if (is_->dst < 0 || is_->dst >= traces.ranks()) {
                    issue(strformat(
                        "rank %d record %zu: isend to invalid rank "
                        "%d", rank, i, is_->dst));
                    continue;
                }
                channels[{rank, is_->dst, is_->tag}]
                    .sendBytes.push_back(is_->bytes);
                if (is_->request == 0) {
                    issue(strformat(
                        "rank %d record %zu: isend with request 0",
                        rank, i));
                } else if (!used.insert(is_->request).second) {
                    issue(strformat(
                        "rank %d record %zu: request %llu reused",
                        rank, i,
                        static_cast<unsigned long long>(
                            is_->request)));
                } else {
                    live.insert(is_->request);
                }
            } else if (const auto *r = std::get_if<RecvRec>(&rec)) {
                flagWildcards("recv", r->src, r->tag);
                if (r->src == anyRank || r->tag == anyTag)
                    continue;
                if (r->src < 0 || r->src >= traces.ranks()) {
                    issue(strformat(
                        "rank %d record %zu: recv from invalid rank "
                        "%d", rank, i, r->src));
                    continue;
                }
                channels[{r->src, rank, r->tag}].recvBytes.push_back(
                    r->bytes);
            } else if (const auto *ir = std::get_if<IRecvRec>(&rec)) {
                flagWildcards("irecv", ir->src, ir->tag);
                if (ir->src == anyRank || ir->tag == anyTag)
                    continue;
                if (ir->src < 0 || ir->src >= traces.ranks()) {
                    issue(strformat(
                        "rank %d record %zu: irecv from invalid rank "
                        "%d", rank, i, ir->src));
                    continue;
                }
                channels[{ir->src, rank, ir->tag}]
                    .recvBytes.push_back(ir->bytes);
                if (ir->request == 0) {
                    issue(strformat(
                        "rank %d record %zu: irecv with request 0",
                        rank, i));
                } else if (!used.insert(ir->request).second) {
                    issue(strformat(
                        "rank %d record %zu: request %llu reused",
                        rank, i,
                        static_cast<unsigned long long>(
                            ir->request)));
                } else {
                    live.insert(ir->request);
                }
            } else if (const auto *w = std::get_if<WaitRec>(&rec)) {
                if (!live.erase(w->request)) {
                    issue(strformat(
                        "rank %d record %zu: wait on unknown request "
                        "%llu", rank, i,
                        static_cast<unsigned long long>(
                            w->request)));
                }
            } else if (std::holds_alternative<WaitAllRec>(rec)) {
                live.clear();
            } else if (const auto *g =
                           std::get_if<CollectiveRec>(&rec)) {
                collectives[static_cast<std::size_t>(rank)]
                    .push_back(strformat("%s/%llu/%llu/%d",
                                         collOpName(g->op),
                                         static_cast<unsigned long
                                                     long>(
                                             g->sendBytes),
                                         static_cast<unsigned long
                                                     long>(
                                             g->recvBytes),
                                         g->root));
            }
        }

        if (!live.empty()) {
            issue(strformat(
                "rank %d: %zu non-blocking requests never completed",
                rank, live.size()));
        }
    }

    for (const auto &[channel, flow] : channels) {
        const auto &[src, dst, tag] = channel;
        if (flow.sendBytes.size() != flow.recvBytes.size()) {
            issue(strformat(
                "channel %d->%d tag %d: %zu sends but %zu receives",
                src, dst, tag, flow.sendBytes.size(),
                flow.recvBytes.size()));
            continue;
        }
        for (std::size_t k = 0; k < flow.sendBytes.size(); ++k) {
            if (flow.sendBytes[k] != flow.recvBytes[k]) {
                issue(strformat(
                    "channel %d->%d tag %d message %zu: send %llu "
                    "bytes vs recv %llu bytes",
                    src, dst, tag, k,
                    static_cast<unsigned long long>(
                        flow.sendBytes[k]),
                    static_cast<unsigned long long>(
                        flow.recvBytes[k])));
            }
        }
    }

    for (Rank r = 1; r < traces.ranks(); ++r) {
        const auto &a = collectives[0];
        const auto &b = collectives[static_cast<std::size_t>(r)];
        if (a.size() != b.size()) {
            issue(strformat(
                "rank %d executes %zu collectives but rank 0 "
                "executes %zu", r, b.size(), a.size()));
            continue;
        }
        for (std::size_t k = 0; k < a.size(); ++k) {
            // Root-dependent byte counts legitimately differ between
            // ranks for rooted collectives; compare op and root only.
            const auto op_of = [](const std::string &sig) {
                return sig.substr(0, sig.find('/'));
            };
            const auto root_of = [](const std::string &sig) {
                return sig.substr(sig.rfind('/'));
            };
            if (op_of(a[k]) != op_of(b[k]) ||
                root_of(a[k]) != root_of(b[k])) {
                issue(strformat(
                    "collective %zu differs between rank 0 (%s) and "
                    "rank %d (%s)", k, a[k].c_str(), r,
                    b[k].c_str()));
            }
        }
    }

    return report;
}

} // namespace ovlsim::trace
